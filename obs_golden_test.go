package pccsim_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pccsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPerfettoGolden locks the exporter's output for the canonical
// producer-consumer program: field renames, track reshuffles, or event
// reordering all show up as a byte diff. The simulator is deterministic
// and the exporter sorts its output, so the file is stable.
// Regenerate with: go test -run PerfettoGolden -update .
func TestPerfettoGolden(t *testing.T) {
	cfg := pccsim.DefaultConfig().With(
		pccsim.WithRAC(32),
		pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(0))
	cfg.Nodes = 4

	m, err := pccsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es := m.Observe(-1)
	if _, err := m.Run(pcProgram(4, 6)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := es.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}

	// Whatever happens to the golden file, the output must stay valid
	// trace-event JSON.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emits invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exporter emitted no trace events")
	}

	golden := filepath.Join("testdata", "perfetto_pc.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto output differs from %s (%d vs %d bytes); rerun with -update and review the diff",
			golden, buf.Len(), len(want))
	}
}

// TestWithMechanismsCompat pins the deprecated positional constructor to
// the functional-options path: both must configure the identical machine,
// verified by comparing the full Stats of the same run.
func TestWithMechanismsCompat(t *testing.T) {
	run := func(cfg pccsim.Config) *pccsim.Stats {
		t.Helper()
		cfg.Nodes = 8
		st, err := pccsim.RunWorkload(cfg, "mg", pccsim.WorkloadParams{Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	//lint:ignore SA1019 the deprecated wrapper's behavior is exactly what this test pins down
	old := run(pccsim.DefaultConfig().WithMechanisms(32*1024, 32, true))
	new_ := run(pccsim.DefaultConfig().With(
		pccsim.WithRAC(32),
		pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(0)))

	if !reflect.DeepEqual(old, new_) {
		t.Errorf("deprecated WithMechanisms and functional options diverge:\nold: %+v\nnew: %+v", old, new_)
	}
}
