// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (see DESIGN.md §3 for the index). Each reports the paper's
// metrics via b.ReportMetric so `go test -bench=. -benchmem` prints the
// series the figures plot; cmd/pccbench prints the same data as tables at
// full scale.
package pccsim_test

import (
	"fmt"
	"strings"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/harness"
	"pccsim/internal/mcheck"
	"pccsim/internal/workload"
)

// benchOpts keeps benchmark iterations fast while exercising the full
// 16-node machine.
func benchOpts() harness.Options { return harness.Options{Nodes: 16, Scale: 1, Iters: 4} }

// BenchmarkTable1SystemConfig measures the cost of building the Table 1
// machine itself (construction is on every experiment's path).
func BenchmarkTable1SystemConfig(b *testing.B) {
	cfg := core.DefaultConfig().With(core.WithRAC(1024), core.WithDelegation(1024), core.WithSpeculativeUpdates(0))
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSystem(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Workloads measures building each benchmark's op streams
// (Table 2's applications at our scaled problem sizes).
func BenchmarkTable2Workloads(b *testing.B) {
	for _, wl := range workload.All() {
		b.Run(wl.Name, func(b *testing.B) {
			p := workload.Params{Nodes: 16, Scale: 1}
			ops := 0
			for i := 0; i < b.N; i++ {
				streams := wl.Build(p)
				ops = 0
				for _, s := range streams {
					ops += len(s)
				}
			}
			b.ReportMetric(float64(ops), "ops")
		})
	}
}

// BenchmarkTable3ConsumerDistribution regenerates the consumer-count
// distribution, reporting each application's dominant bucket share.
func BenchmarkTable3ConsumerDistribution(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		dist, err := harness.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, wl := range workload.All() {
				d := dist[wl.Name]
				b.ReportMetric(d[0], wl.Name+"_pct1")
				b.ReportMetric(d[4], wl.Name+"_pct4plus")
			}
		}
	}
}

// BenchmarkFig7 regenerates the headline comparison: for each application
// and each of the six machine configurations, the speedup, normalized
// traffic and normalized remote misses.
func BenchmarkFig7(b *testing.B) {
	opts := benchOpts()
	base := core.DefaultConfig()
	base.Nodes = opts.Nodes
	for _, wl := range workload.All() {
		for _, spec := range harness.Fig7Configs() {
			b.Run(wl.Name+"/"+spec.Label, func(b *testing.B) {
				var st = harness.MustRun(base, wl, workload.Params{Nodes: opts.Nodes, Iters: opts.Iters})
				baseCycles := st.ExecCycles
				baseMsgs := st.TotalMessages()
				baseMiss := st.RemoteMisses()
				for i := 0; i < b.N; i++ {
					st = harness.MustRun(spec.Apply(base), wl,
						workload.Params{Nodes: opts.Nodes, Iters: opts.Iters})
				}
				b.ReportMetric(float64(baseCycles)/float64(st.ExecCycles), "speedup")
				if baseMsgs > 0 {
					b.ReportMetric(float64(st.TotalMessages())/float64(baseMsgs), "msg-ratio")
				}
				if baseMiss > 0 {
					b.ReportMetric(float64(st.RemoteMisses())/float64(baseMiss), "rmiss-ratio")
				}
			})
		}
	}
}

// BenchmarkFig8EqualArea regenerates the smarter-vs-larger cache
// comparison.
func BenchmarkFig8EqualArea(b *testing.B) {
	opts := benchOpts()
	var rows []harness.Fig8Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.Fig8(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch {
		case r.Config == "Base (64K L2)":
		case r.Config[0] == 'S': // smarter: mechanisms added
			b.ReportMetric(r.Speedup, r.App+"-smart")
		default: // larger: equal-silicon bigger L2
			b.ReportMetric(r.Speedup, r.App+"-larger")
		}
	}
}

// BenchmarkFig9InterventionDelay regenerates the delay sensitivity sweep
// for em3d (the most delay-sensitive application).
func BenchmarkFig9InterventionDelay(b *testing.B) {
	opts := benchOpts()
	wl, _ := workload.ByName("em3d")
	for _, d := range harness.Fig9Delays() {
		label := fmt.Sprint(uint64(d))
		if d == core.NoIntervention {
			label = "infinite"
		}
		b.Run("delay="+label, func(b *testing.B) {
			cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
			cfg.Nodes = opts.Nodes
			cfg.InterventionDelay = d
			var cycles uint64
			for i := 0; i < b.N; i++ {
				st := harness.MustRun(cfg, wl, workload.Params{Nodes: opts.Nodes, Iters: opts.Iters})
				cycles = st.ExecCycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkFig10HopLatency regenerates the hop-latency sensitivity.
func BenchmarkFig10HopLatency(b *testing.B) {
	opts := benchOpts()
	var rows []harness.Fig10Row
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.Fig10(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, fmt.Sprintf("speedup@%dns", r.HopNsec))
	}
}

// BenchmarkFig11DelegateSize regenerates the delegate-cache size sweep (MG).
func BenchmarkFig11DelegateSize(b *testing.B) {
	opts := benchOpts()
	opts.Iters = 0 // MG needs its full V-cycles for table pressure
	var rows []harness.SweepRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.Fig11(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows[1:] {
		b.ReportMetric(r.Speedup, metricName(r.Config))
	}
}

// BenchmarkFig12RACSize regenerates the RAC size sweep (Appbt).
func BenchmarkFig12RACSize(b *testing.B) {
	opts := benchOpts()
	opts.Iters = 0 // Appbt needs its full timesteps for RAC pressure
	var rows []harness.SweepRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.Fig12(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows[1:] {
		b.ReportMetric(r.Speedup, metricName(r.Config))
	}
}

// BenchmarkAblationDelegationOnly regenerates the §3.2 delegation-only
// comparison.
func BenchmarkAblationDelegationOnly(b *testing.B) {
	opts := benchOpts()
	var rows []harness.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.Ablation(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.DelegSpeedup, r.App+"-deleg")
		b.ReportMetric(r.FullSpeedup, r.App+"-full")
	}
}

// BenchmarkVerifyReachability measures the §2.5 model-checker run (the
// Murphi-equivalent verification) on the unit-test configuration.
func BenchmarkVerifyReachability(b *testing.B) {
	cfg := mcheck.DefaultConfig()
	cfg.MaxWrites = 2
	cfg.MaxIssues = 2
	cfg.DetThresh = 1
	for i := 0; i < b.N; i++ {
		res := mcheck.Explore(cfg, 0)
		if !res.Ok() {
			b.Fatal("verification failed")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}

// metricName turns a config label into a ReportMetric unit (no spaces).
func metricName(label string) string {
	out := strings.ReplaceAll(label, " ", "")
	out = strings.ReplaceAll(out, "&", "+")
	if len(out) > 24 {
		out = out[:24]
	}
	return out
}

// BenchmarkExtensions runs the §5 future-work ablation (adaptive delay,
// two-writer detector).
func BenchmarkExtensions(b *testing.B) {
	opts := benchOpts()
	var rows []harness.ExtRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.Extensions(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Adaptive, r.App+"-adaptive")
	}
}

// BenchmarkRelatedWork runs the dynamic-self-invalidation comparison.
func BenchmarkRelatedWork(b *testing.B) {
	opts := benchOpts()
	var rows []harness.RelatedRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = harness.RelatedWork(opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SelfInval, r.App+"-dsi")
		b.ReportMetric(r.DelegUpd, r.App+"-upd")
	}
}
