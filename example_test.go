package pccsim_test

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"pccsim"
)

// pcProgram builds the canonical producer-consumer round: node 0 writes a
// line that nodes 1 and 2 read, repeatedly, with the home at node 3.
func pcProgram(nodes, rounds int) *pccsim.Program {
	prog := pccsim.NewProgram(nodes)
	const line = pccsim.Addr(0x4000)
	prog.Load(3, line) // first touch places the home at node 3
	prog.Barrier()
	for r := 0; r < rounds; r++ {
		prog.Store(0, line)
		prog.Barrier()
		prog.Load(1, line)
		prog.Load(2, line)
		prog.Barrier()
	}
	return prog
}

func ExampleRunWorkload() {
	cfg := pccsim.DefaultConfig().With(
		pccsim.WithRAC(32),
		pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(0))
	cfg.Nodes = 8

	st, err := pccsim.RunWorkload(cfg, "em3d", pccsim.WorkloadParams{Iters: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("finished:", st.ExecCycles > 0)
	fmt.Println("coherence traffic:", st.TotalMessages() > 0)
	// Output:
	// finished: true
	// coherence traffic: true
}

func ExampleNew() {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 4

	// The options are the paper's three mechanisms; an inconsistent
	// combination (delegation without a RAC) fails with ErrBadConfig.
	m, err := pccsim.New(cfg,
		pccsim.WithRAC(32),
		pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(100))
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(pcProgram(4, 6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("producer-consumer lines detected:", st.PCLinesMarked)
	fmt.Println("delegations:", st.Delegations)
	// Output:
	// producer-consumer lines detected: 1
	// delegations: 1
}

func ExampleWithProtocol() {
	// The directory's sharing policy is pluggable: the same program runs
	// under the paper's adaptive protocol (the default) or any other
	// registered protocol. "hybrid" pushes updates to stable sharer sets
	// instead of invalidating them.
	fmt.Println("protocols:", pccsim.Protocols())

	cfg := pccsim.DefaultConfig().With(pccsim.WithProtocol("hybrid"))
	cfg.Nodes = 4
	m, err := pccsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(pcProgram(4, 12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("updates pushed:", st.UpdatesSent > 0)

	_, err = pccsim.New(pccsim.DefaultConfig(), pccsim.WithProtocol("mosi"))
	fmt.Println("unknown protocol:", errors.Is(err, pccsim.ErrUnknownProtocol))
	// Output:
	// protocols: [adaptive dsi hybrid mesi]
	// updates pushed: true
	// unknown protocol: true
}

func ExampleNewProgram() {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 2

	prog := pccsim.NewProgram(2)
	prog.Store(0, 0x1000) // node 0 produces
	prog.Barrier()
	prog.Load(1, 0x1000) // node 1 consumes
	fmt.Println("ops:", prog.Len(), "nodes:", prog.Nodes())

	m, err := pccsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loads:", st.Loads, "stores:", st.Stores)
	// Output:
	// ops: 4 nodes: 2
	// loads: 1 stores: 1
}

func ExampleMachine_Observe() {
	cfg := pccsim.DefaultConfig().With(
		pccsim.WithRAC(32),
		pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(0))
	cfg.Nodes = 4

	m, err := pccsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	es := m.Observe(-1) // retain every event
	st, err := m.Run(pcProgram(4, 6))
	if err != nil {
		log.Fatal(err)
	}

	// The observer's traffic accounting matches the run's Stats exactly:
	// both count every packet at network injection.
	met := es.Metrics()
	fmt.Println("bytes match stats:", met.TotalBytes() == st.TotalBytes())
	fmt.Println("complete delegations:", met.CompleteDelegations())

	var buf bytes.Buffer
	if err := es.WritePerfetto(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("perfetto trace written:", buf.Len() > 0)
	// Output:
	// bytes match stats: true
	// complete delegations: 0
	// perfetto trace written: true
}
