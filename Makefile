GO ?= go

.PHONY: check vet build test smoke soak bench bench-smoke compare-smoke check-mcheck fuzz-smoke fuzz clean

check: vet build test smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A fast end-to-end run of the benchmark CLI on the worker pool.
smoke:
	$(GO) run ./cmd/pccbench -exp fig7 -parallel 4 > /dev/null
	@echo "smoke: pccbench -exp fig7 -parallel 4 OK"

# The `pccsim serve` soak harness: builds the real binary, hammers one
# server with 8 concurrent clients, and asserts the service contract
# (memoized duplicates, byte-identity with the CLI, graceful SIGTERM
# drain). CI runs this as its own job.
soak:
	PCCSIM_SOAK=1 PCCSIM_SOAK_CLIENTS=8 $(GO) test -count=1 -v -run TestSoak ./cmd/pccsim

# Micro- and macro-benchmarks. The go benches cover the event engine, the
# network delivery pipeline, the directory tables, and the bit-vector ops;
# pccperf then refreshes BENCH_pr2.json with engine throughput and the
# full-suite wall time.
bench:
	$(GO) test -bench=. -benchmem ./internal/sim/... ./internal/network/... \
		./internal/directory/... ./internal/addrtab/... ./internal/msg/... \
		./internal/obs/... .
	$(GO) run ./cmd/pccperf -o BENCH_pr2.json
	$(GO) run ./cmd/pccperf -shards-sweep -shards-o BENCH_pr8.json
	$(GO) run ./cmd/pccperf -mcheck-sweep -mcheck-o BENCH_pr9.json
	$(GO) run ./cmd/pccperf -protocols -protocols-o BENCH_pr10.json

# One-iteration bench smoke for CI: compiles and runs every benchmark
# once, then gates the engine and suite numbers against the committed
# baseline (2x tolerance absorbs runner noise; the gate catches hot-loop
# regressions, not wobbles). The ZeroAlloc pass pins the observability
# layer's disabled path (and the enabled Emit itself) at 0 allocs/op.
bench-smoke: compare-smoke
	$(GO) test -bench=. -benchtime=1x ./internal/sim/... ./internal/network/... ./internal/obs/...
	$(GO) test -run ZeroAlloc -count=1 ./internal/sim/... ./internal/network/... \
		./internal/addrtab/... ./internal/obs/...
	$(GO) run ./cmd/pccperf -check BENCH_pr2.json
	$(GO) run ./cmd/pccperf -check-shards BENCH_pr8.json
	$(GO) run ./cmd/pccperf -check-mcheck BENCH_pr9.json
	$(GO) run ./cmd/pccperf -check-protocols BENCH_pr10.json

# The protocol bake-off gate: the -compare table and the fig9/fig10
# sweeps must reproduce the committed goldens byte for byte — the
# fig9/fig10 diffs prove the paper's protocol is unchanged behind the
# plugin interface, the compare diff pins every contender. (Output is
# worker-count invariant, so -parallel only affects wall time.)
compare-smoke:
	$(GO) run ./cmd/pccbench -compare -format csv -parallel 4 | diff -u testdata/compare.golden.csv -
	$(GO) run ./cmd/pccbench -exp fig9 -format csv -parallel 4 | diff -u testdata/fig9.golden.csv -
	$(GO) run ./cmd/pccbench -exp fig10 -format csv -parallel 4 | diff -u testdata/fig10.golden.csv -
	@echo "compare-smoke: goldens reproduced byte-identically"

# The model-checker gate: worker-count invariance and litmus equivalence
# under the race detector, the corpus counterexamples replayed, and the
# exploration-throughput baseline checked. CI runs this plus a bounded
# deep-configuration exploration as its own job.
check-mcheck:
	$(GO) test -race -count=1 ./internal/mcheck/... ./internal/fault/...
	$(GO) run ./cmd/pccperf -check-mcheck BENCH_pr9.json

# Seeded fuzzing under fault injection. fuzz-smoke is the quick PR gate;
# fuzz is the long campaign the nightly workflow runs.
fuzz-smoke:
	$(GO) run -race ./cmd/pccfuzz -seed 1 -n 500 -t 2m -o fuzz-failures
	$(GO) run -race ./cmd/pccfuzz -seed 2 -n 100 -t 1m -protocol hybrid -o fuzz-failures
	$(GO) run -race ./cmd/pccfuzz -seed 3 -n 100 -t 1m -protocol dsi -o fuzz-failures

fuzz:
	$(GO) run -race ./cmd/pccfuzz -seed $$(date +%Y%m%d) -t 20m -n 0 -o fuzz-failures

clean:
	$(GO) clean ./...
