GO ?= go

.PHONY: check vet build test smoke bench bench-smoke clean

check: vet build test smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A fast end-to-end run of the benchmark CLI on the worker pool.
smoke:
	$(GO) run ./cmd/pccbench -exp fig7 -parallel 4 > /dev/null
	@echo "smoke: pccbench -exp fig7 -parallel 4 OK"

# Micro- and macro-benchmarks. The go benches cover the event engine, the
# network delivery pipeline, the directory tables, and the bit-vector ops;
# pccperf then refreshes BENCH_pr2.json with engine throughput and the
# full-suite wall time.
bench:
	$(GO) test -bench=. -benchmem ./internal/sim/... ./internal/network/... \
		./internal/directory/... ./internal/addrtab/... ./internal/msg/... .
	$(GO) run ./cmd/pccperf -o BENCH_pr2.json

# One-iteration bench smoke for CI: compiles and runs every benchmark once.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./internal/sim/... ./internal/network/...

clean:
	$(GO) clean ./...
