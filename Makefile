GO ?= go

.PHONY: check vet build test smoke bench clean

check: vet build test smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A fast end-to-end run of the benchmark CLI on the worker pool.
smoke:
	$(GO) run ./cmd/pccbench -exp fig7 -parallel 4 > /dev/null
	@echo "smoke: pccbench -exp fig7 -parallel 4 OK"

bench:
	$(GO) test -bench=. -benchmem

clean:
	$(GO) clean ./...
