package pccsim_test

import (
	"errors"
	"strings"
	"testing"

	"pccsim"
)

func TestWorkloadsList(t *testing.T) {
	names := pccsim.Workloads()
	want := []string{"barnes", "ocean", "em3d", "lu", "cg", "mg", "appbt"}
	if len(names) != len(want) {
		t.Fatalf("Workloads() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Workloads()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRunWorkloadBaseline(t *testing.T) {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 8
	st, err := pccsim.RunWorkload(cfg, "ocean", pccsim.WorkloadParams{Nodes: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCycles == 0 || st.Loads == 0 || st.Stores == 0 {
		t.Fatal("empty run")
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	_, err := pccsim.RunWorkload(pccsim.DefaultConfig(), "quake3", pccsim.WorkloadParams{})
	if !errors.Is(err, pccsim.ErrUnknownWorkload) {
		t.Fatalf("unknown workload not rejected with ErrUnknownWorkload: %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "quake3") {
		t.Fatalf("error does not name the bad workload: %v", err)
	}
}

func TestBadConfigSentinel(t *testing.T) {
	// Delegation without a RAC is inconsistent; New must classify it.
	_, err := pccsim.New(pccsim.DefaultConfig(), pccsim.WithDelegation(32))
	if !errors.Is(err, pccsim.ErrBadConfig) {
		t.Fatalf("inconsistent config not rejected with ErrBadConfig: %v", err)
	}
}

func TestRunawaySentinel(t *testing.T) {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 4
	cfg.WatchdogSteps = 10
	m, err := pccsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := pccsim.NewProgram(4)
	for n := 0; n < 4; n++ {
		prog.Store(n, 0x1000)
	}
	_, err = m.Run(prog)
	if !errors.Is(err, pccsim.ErrRunaway) {
		t.Fatalf("watchdog abort not classified as ErrRunaway: %v", err)
	}
	var runaway *pccsim.RunawayError
	if !errors.As(err, &runaway) || runaway.Pending == 0 {
		t.Fatalf("ErrRunaway without diagnostics: %v", err)
	}
}

func TestRunWorkloadNodeMismatch(t *testing.T) {
	cfg := pccsim.DefaultConfig() // 16 nodes
	_, err := pccsim.RunWorkload(cfg, "ocean", pccsim.WorkloadParams{Nodes: 4})
	if err == nil {
		t.Fatal("node-count mismatch not rejected")
	}
}

func TestMechanismsImprovePCWorkload(t *testing.T) {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 8
	params := pccsim.WorkloadParams{Nodes: 8}
	base, err := pccsim.RunWorkload(cfg, "em3d", params)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := pccsim.RunWorkload(cfg.With(pccsim.WithRAC(32), pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(0)), "em3d", params)
	if err != nil {
		t.Fatal(err)
	}
	if mech.ExecCycles >= base.ExecCycles {
		t.Fatalf("mechanisms did not speed up em3d: %d >= %d", mech.ExecCycles, base.ExecCycles)
	}
	if mech.RemoteMisses() >= base.RemoteMisses() {
		t.Fatalf("mechanisms did not reduce remote misses: %d >= %d",
			mech.RemoteMisses(), base.RemoteMisses())
	}
	if mech.UpdatesSent == 0 {
		t.Fatal("no speculative updates sent")
	}
}

func TestProgramAPI(t *testing.T) {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 4
	cfg.CheckInvariants = true
	m, err := pccsim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pccsim.NewProgram(4)
	if p.Nodes() != 4 {
		t.Fatalf("Nodes() = %d", p.Nodes())
	}
	p.Store(0, 0x1000)
	p.Barrier()
	p.Load(1, 0x1000)
	p.Load(2, 0x1000)
	p.Compute(3, 100)
	p.Barrier()
	if p.Len() != 4+8 { // 4 memory/compute ops + 2 barriers x 4 nodes
		t.Fatalf("Len() = %d", p.Len())
	}
	st, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loads != 2 || st.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", st.Loads, st.Stores)
	}
}

func TestProgramMachineMismatch(t *testing.T) {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 4
	m, err := pccsim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(pccsim.NewProgram(8)); err == nil {
		t.Fatal("program/machine node mismatch not rejected")
	}
}

func TestCustomProducerConsumer(t *testing.T) {
	// The paper's pattern via the public API: detection, delegation,
	// updates, local consumer hits.
	cfg := pccsim.DefaultConfig().With(pccsim.WithRAC(32), pccsim.WithDelegation(32),
		pccsim.WithSpeculativeUpdates(0))
	cfg.Nodes = 4
	cfg.CheckInvariants = true
	m, err := pccsim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pccsim.NewProgram(4)
	p.Store(3, 0x4000) // home = 3
	p.Barrier()
	for round := 0; round < 8; round++ {
		p.Store(0, 0x4000)
		p.Barrier()
		p.Load(1, 0x4000)
		p.Load(2, 0x4000)
		p.Barrier()
	}
	st, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delegations == 0 {
		t.Fatal("pattern never delegated")
	}
	if st.UpdatesSent == 0 || st.RACMisses() == 0 {
		t.Fatalf("updates did not localize consumer reads: sent=%d racHits=%d",
			st.UpdatesSent, st.RACMisses())
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	bad := pccsim.DefaultConfig()
	bad.EnableUpdates = true // without RAC/delegation
	if _, err := pccsim.NewMachine(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}
