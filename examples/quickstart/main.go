// Quickstart: run one benchmark on the baseline machine and on a machine
// with the paper's mechanisms, and compare what they did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pccsim"
)

func main() {
	const workload = "em3d"
	params := pccsim.WorkloadParams{Nodes: 16, Scale: 1}

	// The baseline Table 1 machine: plain directory write-invalidate.
	base := pccsim.DefaultConfig()
	baseStats, err := pccsim.RunWorkload(base, workload, params)
	if err != nil {
		log.Fatal(err)
	}

	// The same machine with a 32 KB RAC, a 32-entry delegate cache, and
	// speculative updates — the paper's small configuration.
	mech := base.With(pccsim.WithRAC(32), pccsim.WithDelegation(32), pccsim.WithSpeculativeUpdates(0))
	mechStats, err := pccsim.RunWorkload(mech, workload, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s on %d nodes\n\n", workload, params.Nodes)
	fmt.Printf("%-28s %15s %15s\n", "", "baseline", "with mechanisms")
	row := func(name string, b, m uint64) {
		fmt.Printf("%-28s %15d %15d\n", name, b, m)
	}
	row("execution cycles", baseStats.ExecCycles, mechStats.ExecCycles)
	row("remote misses", baseStats.RemoteMisses(), mechStats.RemoteMisses())
	row("network messages", baseStats.TotalMessages(), mechStats.TotalMessages())
	row("network bytes", baseStats.TotalBytes(), mechStats.TotalBytes())
	row("updates pushed", baseStats.UpdatesSent, mechStats.UpdatesSent)

	fmt.Printf("\nspeedup:               %.3f\n",
		float64(baseStats.ExecCycles)/float64(mechStats.ExecCycles))
	fmt.Printf("remote miss reduction: %.1f%%\n",
		100*(1-float64(mechStats.RemoteMisses())/float64(baseStats.RemoteMisses())))
	fmt.Printf("traffic reduction:     %.1f%%\n",
		100*(1-float64(mechStats.TotalMessages())/float64(baseStats.TotalMessages())))
	fmt.Printf("update accuracy:       %.1f%%\n", 100*mechStats.UpdateAccuracy())
}
