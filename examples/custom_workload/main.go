// custom_workload shows how to build your own shared-memory program with
// the Program API: a 4-stage software pipeline where each stage writes a
// buffer the next stage reads — producer-consumer chains the detector
// discovers stage by stage. It also demonstrates per-run protocol
// introspection: delegations, undelegations, update accuracy.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"pccsim"
)

const (
	stages     = 4
	bufLines   = 16
	lineBytes  = 128
	iterations = 10
	bufBase    = pccsim.Addr(0x2000_0000)
	bufStride  = pccsim.Addr(0x10000) // distinct pages per buffer
)

// buffer i is written by stage i and read by stage i+1.
func bufLine(buf, i int) pccsim.Addr {
	return bufBase + pccsim.Addr(buf)*bufStride + pccsim.Addr(i)*lineBytes
}

func buildPipeline(nodes int) *pccsim.Program {
	p := pccsim.NewProgram(nodes)
	// First touch: every buffer is initialized by stage 0 (a serial
	// setup loop), so stages 1..3 produce into remote-homed pages —
	// which is what directory delegation later repairs.
	for b := 0; b < stages-1; b++ {
		for i := 0; i < bufLines; i++ {
			p.Store(0, bufLine(b, i))
		}
	}
	p.Barrier()

	for it := 0; it < iterations; it++ {
		for s := 0; s < stages; s++ {
			if s > 0 { // consume the upstream buffer
				for i := 0; i < bufLines; i++ {
					p.Load(s, bufLine(s-1, i))
					p.Compute(s, 30)
				}
			}
			if s < stages-1 { // produce the downstream buffer
				for i := 0; i < bufLines; i++ {
					p.Compute(s, 20)
					p.Store(s, bufLine(s, i))
				}
			}
		}
		p.Barrier()
	}
	return p
}

func main() {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = stages
	cfg.CheckInvariants = true

	for _, mech := range []struct {
		label string
		cfg   pccsim.Config
	}{
		{"baseline write-invalidate", cfg},
		{"with delegation + updates", cfg.With(pccsim.WithRAC(32), pccsim.WithDelegation(32), pccsim.WithSpeculativeUpdates(0))},
	} {
		m, err := pccsim.NewMachine(mech.cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run(buildPipeline(mech.cfg.Nodes))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", mech.label)
		fmt.Printf("  cycles            %d\n", st.ExecCycles)
		fmt.Printf("  remote misses     %d (3-hop %d, 2-hop %d, RAC-local %d)\n",
			st.RemoteMisses(), st.Remote3HopMisses(), st.Remote2HopMisses(), st.RACMisses())
		fmt.Printf("  messages          %d (%d NACKs)\n", st.TotalMessages(), st.Nacks())
		fmt.Printf("  PC lines marked   %d\n", st.PCLinesMarked)
		fmt.Printf("  delegations       %d (undelegations %d)\n", st.Delegations, st.TotalUndelegations())
		fmt.Printf("  updates           %d sent, accuracy %.0f%%\n\n",
			st.UpdatesSent, 100*st.UpdateAccuracy())
	}
}
