// producer_consumer builds the paper's canonical sharing pattern by hand
// with the Program API — one producer, two consumers, repeated rounds —
// and shows the protocol adapting: the first rounds pay 3-hop misses,
// the detector saturates, the home delegates the line to the producer,
// and speculative updates finally turn consumer misses into local hits.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"

	"pccsim"
)

const (
	producer  = 0
	consumerA = 1
	consumerB = 2
	homeNode  = 3
	line      = pccsim.Addr(0x10000)
)

// buildRounds constructs `rounds` producer-write / consumers-read rounds.
// The home node touches the page first, so the producer is remote from the
// home — the case directory delegation exists for.
func buildRounds(nodes, rounds int) *pccsim.Program {
	p := pccsim.NewProgram(nodes)
	p.Store(homeNode, line) // first touch: page homed at node 3
	p.Barrier()
	for r := 0; r < rounds; r++ {
		p.Store(producer, line)
		p.Store(producer, line+32) // a short write burst within the line
		p.Barrier()
		p.Load(consumerA, line)
		p.Load(consumerB, line)
		p.Compute(consumerA, 200)
		p.Compute(consumerB, 200)
		p.Barrier()
	}
	return p
}

func run(cfg pccsim.Config, rounds int) *pccsim.Stats {
	m, err := pccsim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(buildRounds(cfg.Nodes, rounds))
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	cfg := pccsim.DefaultConfig()
	cfg.Nodes = 4
	cfg.CheckInvariants = true // the runtime coherence checks of §2.5

	fmt.Println("one producer, two consumers, one remote home — 12 rounds")
	fmt.Println()
	fmt.Printf("%-34s %8s %8s %8s %8s %8s\n",
		"configuration", "cycles", "3-hop", "2-hop", "localRAC", "updates")

	show := func(label string, st *pccsim.Stats) {
		fmt.Printf("%-34s %8d %8d %8d %8d %8d\n", label, st.ExecCycles,
			st.Remote3HopMisses(), st.Remote2HopMisses(), st.RACMisses(), st.UpdatesSent)
	}

	// Plain write-invalidate: every consumer read after a write is a
	// 3-hop miss (home forwards an intervention to the producer).
	show("baseline", run(cfg, 12))

	// Delegation only: after 3 rounds the line is delegated and consumer
	// reads go directly to the producer (2 hops).
	show("delegation", run(cfg.With(pccsim.WithRAC(32), pccsim.WithDelegation(32)), 12))

	// Delegation + speculative updates: after each write burst the hub
	// downgrades the line and pushes it into the consumers' RACs; their
	// reads become local.
	show("delegation + updates", run(cfg.With(pccsim.WithRAC(32), pccsim.WithDelegation(32), pccsim.WithSpeculativeUpdates(0)), 12))

	fmt.Println()
	fmt.Println("miss classes: 3-hop = via home + owner; 2-hop = direct to (delegated) home;")
	fmt.Println("localRAC = satisfied by the node's own remote access cache (pushed updates).")
}
