// em3d_study reproduces the paper's headline case study in miniature: em3d
// across the six Figure 7 machine configurations, plus the intervention
// delay sweep of Figure 9 for this workload. Em3d is the paper's best case
// (33-40% speedup) because communication dominates and the post-barrier
// "reload flurry" of NACKs disappears under speculative updates.
//
//	go run ./examples/em3d_study
package main

import (
	"fmt"
	"log"

	"pccsim"
)

func run(cfg pccsim.Config) *pccsim.Stats {
	st, err := pccsim.RunWorkload(cfg, "em3d", pccsim.WorkloadParams{Nodes: cfg.Nodes})
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	base := pccsim.DefaultConfig()
	baseline := run(base)

	fmt.Println("em3d, 16 nodes — the six Figure 7 configurations")
	fmt.Printf("%-30s %10s %8s %8s %8s\n", "config", "cycles", "speedup", "msgs", "rmisses")
	show := func(label string, st *pccsim.Stats) {
		fmt.Printf("%-30s %10d %8.3f %7.1f%% %7.1f%%\n", label, st.ExecCycles,
			float64(baseline.ExecCycles)/float64(st.ExecCycles),
			100*float64(st.TotalMessages())/float64(baseline.TotalMessages()),
			100*float64(st.RemoteMisses())/float64(baseline.RemoteMisses()))
	}
	show("base", baseline)
	show("32K RAC", run(base.With(pccsim.WithRAC(32))))
	show("32-entry deledc & 32K RAC", run(base.With(pccsim.WithRAC(32), pccsim.WithDelegation(32), pccsim.WithSpeculativeUpdates(0))))
	show("1K-entry deledc & 1M RAC", run(base.With(pccsim.WithRAC(1024), pccsim.WithDelegation(1024), pccsim.WithSpeculativeUpdates(0))))
	show("1K-entry deledc & 32K RAC", run(base.With(pccsim.WithRAC(32), pccsim.WithDelegation(1024), pccsim.WithSpeculativeUpdates(0))))
	show("32-entry deledc & 1M RAC", run(base.With(pccsim.WithRAC(1024), pccsim.WithDelegation(32), pccsim.WithSpeculativeUpdates(0))))

	fmt.Println()
	fmt.Println("sensitivity to intervention delay (normalized to 5 cycles, Figure 9)")
	var first uint64
	for _, d := range []pccsim.Time{5, 50, 500, 5000, 50000, pccsim.NoIntervention} {
		cfg := base.With(pccsim.WithRAC(32), pccsim.WithDelegation(32), pccsim.WithSpeculativeUpdates(0))
		cfg.InterventionDelay = d
		st := run(cfg)
		if first == 0 {
			first = st.ExecCycles
		}
		label := fmt.Sprint(d)
		if d == pccsim.NoIntervention {
			label = "infinite"
		}
		fmt.Printf("  delay %-10s %10d cycles   %.3f   (updates sent: %d)\n",
			label, st.ExecCycles, float64(st.ExecCycles)/float64(first), st.UpdatesSent)
	}
}
