// Command pccfuzz fuzzes the coherence protocol under fault injection:
// random small machines × random synthetic workloads × random fault
// schedules, each run on a private engine with every runtime invariant
// check armed. Failures are shrunk to minimal reproductions and written as
// replayable JSON corpus files.
//
// Usage:
//
//	pccfuzz -seed 1 -n 500              # run 500 seeded cases
//	pccfuzz -seed 1 -t 2m               # run until the time budget expires
//	pccfuzz -replay repro.json          # replay one corpus file
//	pccfuzz -replay internal/fault/testdata/corpus  # replay a directory
//
// Exit status is 0 when every case passes, 1 on any failure (shrunk
// reproductions are written under -o), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pccsim/internal/cli"
	"pccsim/internal/fault"
	"pccsim/internal/protocol"
)

func main() {
	fs := flag.NewFlagSet("pccfuzz", flag.ExitOnError)
	var (
		seed    = fs.Int64("seed", 1, "base seed; case i runs with seed+i")
		n       = fs.Int("n", 0, "number of cases (0 = until -t expires)")
		budget  = fs.Duration("t", 0, "wall-clock budget (0 = until -n cases)")
		replay  = fs.String("replay", "", "replay a corpus file or directory instead of fuzzing")
		outDir  = fs.String("o", "fuzz-failures", "directory for shrunk failure reproductions")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent cases")
		shrink  = fs.Int("shrink", 2000, "max re-runs spent shrinking each failure (0 = off)")
		maxFail = fs.Int("max-failures", 5, "stop after this many failures (0 = no limit)")
		proto   = fs.String("protocol", "", "pin generation to one protocol: "+strings.Join(protocol.Names(), "|")+" (default: mixed)")
		verbose = fs.Bool("v", false, "per-case output during replay")
	)
	if err := cli.Parse(fs, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pccfuzz:", err)
		os.Exit(2)
	}
	if *proto != "" {
		if _, err := protocol.Lookup(*proto); err != nil {
			fmt.Fprintln(os.Stderr, "pccfuzz:", err)
			os.Exit(2)
		}
	}

	if *replay != "" {
		os.Exit(replayPath(*replay, *verbose, *shrink))
	}
	if *n == 0 && *budget == 0 {
		*n = 200 // a quick default smoke
	}

	cr := fault.RunCampaign(fault.CampaignOpts{
		Seed:        *seed,
		Cases:       *n,
		Budget:      *budget,
		Workers:     *workers,
		ShrinkRuns:  *shrink,
		MaxFailures: *maxFail,
		Gen:         fault.GenOpts{Protocol: *proto},
		Log:         os.Stderr,
	})

	fmt.Printf("pccfuzz: %d cases, %d perturbed, %d engine events, %d failures, %s\n",
		cr.Cases, cr.Perturbed, cr.Events, len(cr.Failures), cr.Wall.Round(time.Millisecond))
	if len(cr.Failures) == 0 {
		return
	}
	for _, f := range cr.Failures {
		name := filepath.Join(*outDir, fmt.Sprintf("seed%d.json", f.Seed))
		f.Shrunk.Note = fmt.Sprintf("shrunk from seed %d: %s", f.Seed, f.Result.Failure)
		if err := fault.WriteCase(name, f.Shrunk); err != nil {
			fmt.Fprintf(os.Stderr, "pccfuzz: writing %s: %v\n", name, err)
		}
		fmt.Printf("FAIL seed %d: %s\n     shrunk %d -> %d ops (%d runs) -> %s\n",
			f.Seed, f.Result.Failure, len(f.Case.Ops), f.ShrunkOps, f.ShrinkRuns, name)
	}
	os.Exit(1)
}

// replayPath replays one corpus file or every *.json in a directory. A
// still-failing single file is re-shrunk in place when shrinkRuns > 0
// (useful after improving the shrinker or simplifying a case by hand).
func replayPath(path string, verbose bool, shrinkRuns int) int {
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pccfuzz: %v\n", err)
		return 2
	}
	var cases []fault.Case
	var names []string
	if info.IsDir() {
		cases, names, err = fault.LoadCorpus(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pccfuzz: %v\n", err)
			return 2
		}
	} else {
		c, err := fault.ReadCase(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pccfuzz: %v\n", err)
			return 2
		}
		cases, names = []fault.Case{c}, []string{filepath.Base(path)}
	}

	failures := 0
	for i, c := range cases {
		res := c.Run()
		if !res.Ok && !info.IsDir() && shrinkRuns > 0 {
			shrunk, runs := fault.Shrink(c, shrinkRuns)
			if len(shrunk.Ops) < len(c.Ops) {
				shrunk.Trace = shrunk.TraceTail(fault.TraceTailEvents)
				if err := fault.WriteCase(path, shrunk); err != nil {
					fmt.Fprintf(os.Stderr, "pccfuzz: rewriting %s: %v\n", path, err)
				} else {
					fmt.Printf("%s: re-shrunk %d -> %d ops (%d runs)\n",
						path, len(c.Ops), len(shrunk.Ops), runs)
				}
			}
		}
		status := "ok"
		if !res.Ok {
			status = "FAIL: " + res.Failure
			failures++
		}
		if verbose || !res.Ok {
			fmt.Printf("%-30s %d ops, %d events, %d cycles, %d perturbations: %s\n",
				names[i], res.Ops, res.Events, res.Cycles, res.Perturbations, status)
		}
	}
	fmt.Printf("pccfuzz: replayed %d case(s), %d failure(s)\n", len(cases), failures)
	if failures > 0 {
		return 1
	}
	return 0
}
