// Command pccverify reproduces the paper's §2.5 verification: exhaustive
// explicit-state reachability over an abstract model of the protocol (the
// Murphi role), checking the DASH-style invariants — single writer,
// directory consistency — plus data-value coherence and deadlock freedom;
// and a suite of litmus tests for per-location ordering. Exploration runs
// on the parallel work-stealing engine with canonical state hashing;
// verdicts and state counts are identical at any -workers value.
//
//	pccverify                  # litmus suite + base-protocol reachability
//	pccverify -deep            # the ROADMAP target: 4 nodes × 2 lines, delegation + updates
//	pccverify -full            # delegation+updates at the flag-specified bounds (slow)
//	pccverify -writes 3        # deeper value bound
//	pccverify -workers 4       # exploration worker count (0 = GOMAXPROCS)
//	pccverify -nodes 3 -queue 1 -det 1   # custom config (skips the standard suite)
//	pccverify ... -repro-dir D # emit counterexamples as replayable JSON into D
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pccsim/internal/fault"
	"pccsim/internal/mcheck"
)

func main() {
	full := flag.Bool("full", false, "run the full delegation+updates reachability (large)")
	deep := flag.Bool("deep", false, "run the 4-node x 2-line deep configuration")
	deepOnly := flag.Bool("deep-only", false, "run only the deep configuration (skip litmus + base reachability)")
	writes := flag.Int("writes", 2, "bound on writes (data versions)")
	issues := flag.Int("issues", 3, "bound on per-node request issues")
	workers := flag.Int("workers", 0, "exploration workers (0 = GOMAXPROCS)")
	maxStates := flag.Int("max-states", 0, "state-budget safety net (0 = unbounded; exceeding it fails)")
	serial := flag.Bool("serial", false, "use the serial map-based reference checker")
	nocanon := flag.Bool("nocanon", false, "disable symmetry reduction")
	nodes := flag.Int("nodes", 0, "custom config: node count (enables custom mode)")
	lines := flag.Int("lines", 0, "custom config: cache lines")
	queue := flag.Int("queue", 0, "custom config: per-channel queue depth")
	det := flag.Int("det", 0, "custom config: detector threshold")
	tot := flag.Int("tot", 0, "custom config: global issue budget (0 = unbounded)")
	reproDir := flag.String("repro-dir", "", "write counterexamples as replayable JSON into this directory")
	progress := flag.Bool("v", false, "print exploration progress")
	flag.Parse()

	failed := false

	if *progress {
		mcheck.Progress = func(states, frontier, visited int) {
			fmt.Printf("  ... %dM states (frontier %d, visited %d)\n", states/1_000_000, frontier, visited)
		}
	}

	opt := mcheck.Options{Workers: *workers, NoCanon: *nocanon, MaxStates: *maxStates}

	run := func(label string, cfg mcheck.Config) {
		t0 := time.Now()
		var res *mcheck.Result
		if *serial {
			res = mcheck.ExploreSerial(cfg, *maxStates)
		} else {
			res = mcheck.ExploreOpts(cfg, opt)
		}
		el := time.Since(t0)
		status := "ok"
		if !res.Ok() {
			status = "FAIL"
			failed = true
		}
		rate := float64(res.States) / el.Seconds()
		dedup := 0.0
		if res.Transitions > 0 {
			dedup = float64(res.DedupHits) / float64(res.Transitions)
		}
		fmt.Printf("  %-28s %s in %v  %s\n", label, res, el.Round(time.Millisecond), status)
		fmt.Printf("    workers=%d states/s=%.0f dedup=%.3f peak-frontier=%d\n",
			res.Workers, rate, dedup, res.PeakFrontier)
		for i, v := range res.Violations {
			if i >= 3 {
				break
			}
			fmt.Printf("    violation: %s\n      %s\n", v.Invariant, v.State)
		}
		for i, d := range res.Deadlocks {
			if i >= 3 {
				break
			}
			fmt.Printf("    deadlock: %s\n", d.State)
		}
		if *reproDir != "" && !res.Ok() {
			emitRepros(cfg, res, *reproDir)
		}
	}

	// Custom mode: explore exactly the flag-specified configuration.
	if *nodes > 0 || *lines > 0 || *queue > 0 || *det > 0 || *tot > 0 {
		cfg := mcheck.DefaultConfig()
		cfg.MaxWrites = *writes
		cfg.MaxIssues = int8(*issues)
		if *nodes > 0 {
			cfg.Nodes = *nodes
		}
		if *lines > 0 {
			cfg.Lines = *lines
		}
		if *queue > 0 {
			cfg.QueueDepth = *queue
		}
		if *det > 0 {
			cfg.DetThresh = int8(*det)
		}
		if *tot > 0 {
			cfg.MaxTotalIssues = int8(*tot)
		}
		fmt.Println("== custom reachability ==")
		run(fmt.Sprintf("%dn x %dl w=%d q=%d det=%d tot=%d", cfg.Nodes, cfg.Lines, cfg.MaxWrites, cfg.QueueDepth, cfg.DetThresh, cfg.MaxTotalIssues), cfg)
		if failed {
			os.Exit(1)
		}
		fmt.Println("all checks passed")
		return
	}

	if *deepOnly {
		fmt.Println("== deep reachability ==")
		run("deep: 4n x 2 lines", mcheck.DeepConfig())
		if failed {
			os.Exit(1)
		}
		fmt.Println("all checks passed")
		return
	}

	fmt.Println("== litmus tests (all interleavings, coherence ordering) ==")
	for _, f := range mcheck.StandardLitmusTests() {
		res := f()
		status := "ok"
		if res.Err != nil {
			status = "FAIL: " + res.Err.Error()
			failed = true
		}
		fmt.Printf("  %-28s %8d states %5d outcomes  %s\n", res.Name, res.States, res.Outcomes, status)
	}

	fmt.Println("== exhaustive reachability ==")
	base := mcheck.DefaultConfig()
	base.MaxWrites = *writes
	base.MaxIssues = int8(*issues)

	noDel := base
	noDel.Delegation = false
	run("base protocol", noDel)

	// Delegation needs DetThresh+1 same-producer writes to trigger; a
	// threshold of 1 reaches it within small write bounds.
	del := base
	del.DetThresh = 1
	if *full {
		run("delegation + updates", del)
	} else {
		del.MaxWrites = 2
		del.MaxIssues = 2
		run("delegation + updates (w=2,i=2)", del)
	}

	if *deep {
		run("deep: 4n x 2 lines", mcheck.DeepConfig())
	} else if !*full {
		fmt.Println("  (use -deep for the 4-node x 2-line target, -full for the flag-specified bounds)")
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

// emitRepros writes the result's counterexamples (already deterministically
// selected: lowest canonical state wins) as replayable corpus JSON.
func emitRepros(cfg mcheck.Config, res *mcheck.Result, dir string) {
	emit := func(kind string, v *mcheck.Violation, idx int) {
		trace := mcheck.TraceTo(cfg, v.State)
		if trace == nil && idx >= 0 {
			fmt.Printf("    repro: no trace reconstructed for %s #%d\n", kind, idx)
			return
		}
		c := fault.MCheckCase{
			Note: fmt.Sprintf("checker-emitted: %s under %dn x %dl (w=%d q=%d det=%d iss=%d tot=%d)",
				v.Invariant, cfg.Nodes, cfg.Lines, cfg.MaxWrites, cfg.QueueDepth, cfg.DetThresh, cfg.MaxIssues, cfg.MaxTotalIssues),
			Nodes: cfg.Nodes, Lines: cfg.Lines, MaxWrites: cfg.MaxWrites,
			QueueDepth: cfg.QueueDepth, Delegation: cfg.Delegation,
			DetThresh: cfg.DetThresh, MaxIssues: cfg.MaxIssues,
			MaxTotalIssues: cfg.MaxTotalIssues,
			Invariant:      v.Invariant, Trace: trace,
		}
		cat := v.Invariant
		if i := strings.IndexAny(cat, " ("); i > 0 {
			cat = cat[:i]
		}
		cat = strings.ReplaceAll(cat, ":", "-")
		nl := cfg.Lines
		if nl <= 0 {
			nl = 1
		}
		name := fmt.Sprintf("%s-%dn%dl-q%d-%d.json", cat, cfg.Nodes, nl, cfg.QueueDepth, idx)
		path := filepath.Join(dir, name)
		if err := fault.WriteMCheckCase(path, c); err != nil {
			fmt.Fprintf(os.Stderr, "    repro: %v\n", err)
			return
		}
		if err := fault.ReplayMCheckCase(c); err != nil {
			fmt.Fprintf(os.Stderr, "    repro %s does NOT replay: %v\n", name, err)
			return
		}
		fmt.Printf("    repro written and replay-verified: %s (%d steps)\n", path, len(trace))
	}
	for i, v := range res.Violations {
		if i >= 2 {
			break
		}
		emit("violation", v, i)
	}
	for i, d := range res.Deadlocks {
		if i >= 2 {
			break
		}
		emit("deadlock", d, i)
	}
}
