// Command pccverify reproduces the paper's §2.5 verification: exhaustive
// explicit-state reachability over an abstract model of the protocol (the
// Murphi role), checking the DASH-style invariants — single writer,
// directory consistency — plus data-value coherence and deadlock freedom;
// and a suite of litmus tests for per-location ordering.
//
//	pccverify                  # litmus suite + base-protocol reachability
//	pccverify -full            # also the delegation+updates reachability (slow, GBs of RAM)
//	pccverify -writes 3        # deeper value bound
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pccsim/internal/mcheck"
)

func main() {
	full := flag.Bool("full", false, "run the full delegation+updates reachability (large)")
	writes := flag.Int("writes", 2, "bound on writes (data versions)")
	issues := flag.Int("issues", 3, "bound on per-node request issues")
	progress := flag.Bool("v", false, "print exploration progress")
	flag.Parse()

	failed := false

	fmt.Println("== litmus tests (all interleavings, coherence ordering) ==")
	for _, f := range mcheck.StandardLitmusTests() {
		res := f()
		status := "ok"
		if res.Err != nil {
			status = "FAIL: " + res.Err.Error()
			failed = true
		}
		fmt.Printf("  %-28s %8d states %5d outcomes  %s\n", res.Name, res.States, res.Outcomes, status)
	}

	if *progress {
		mcheck.Progress = func(states, frontier, visited int) {
			fmt.Printf("  ... %dM states (frontier %d, visited %d)\n", states/1_000_000, frontier, visited)
		}
	}

	run := func(label string, cfg mcheck.Config) {
		t0 := time.Now()
		res := mcheck.Explore(cfg, 0)
		status := "ok"
		if !res.Ok() {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %-28s %s in %v  %s\n", label, res, time.Since(t0).Round(time.Millisecond), status)
		for i, v := range res.Violations {
			if i >= 3 {
				break
			}
			fmt.Printf("    violation: %s\n      %s\n", v.Invariant, v.State)
		}
		for i, d := range res.Deadlocks {
			if i >= 3 {
				break
			}
			fmt.Printf("    deadlock: %s\n", d.State)
		}
	}

	fmt.Println("== exhaustive reachability ==")
	base := mcheck.DefaultConfig()
	base.MaxWrites = *writes
	base.MaxIssues = int8(*issues)

	noDel := base
	noDel.Delegation = false
	run("base protocol", noDel)

	// Delegation needs DetThresh+1 same-producer writes to trigger; a
	// threshold of 1 reaches it within small write bounds.
	del := base
	del.DetThresh = 1
	if *full {
		run("delegation + updates", del)
	} else {
		del.MaxWrites = 2
		del.MaxIssues = 2
		run("delegation + updates (w=2,i=2)", del)
		fmt.Println("  (use -full for the flag-specified bounds; needs GBs of RAM and hours)")
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}
