// Command pccperf records the simulator's performance envelope into a
// small JSON file (BENCH_pr2.json by default): raw event-engine throughput
// on the protocol's latency mix, and the wall time and event count of the
// full pccbench experiment suite. The file is the PR-over-PR performance
// record the Makefile's bench target refreshes. The measurement and gate
// logic lives in internal/perf so `pccsim serve` can run the same
// benchmarks as HTTP jobs.
//
//	pccperf                       # writes BENCH_pr2.json
//	pccperf -o - -quick           # print to stdout, small suite run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pccsim/internal/cli"
	"pccsim/internal/perf"
)

func main() {
	fs := flag.NewFlagSet("pccperf", flag.ExitOnError)
	out := fs.String("o", "BENCH_pr2.json", "output file (- for stdout)")
	events := fs.Uint64("events", 20_000_000, "engine microbenchmark event count")
	chains := fs.Int("chains", 64, "concurrent event chains in the engine microbenchmark")
	parallel := fs.Int("parallel", 0, "suite worker-pool size (0 = GOMAXPROCS)")
	scale := fs.Int("scale", 1, "suite workload problem-size multiplier")
	quick := fs.Bool("quick", false, "skip the full suite; engine microbenchmark only")
	check := fs.String("check", "", "regression-gate mode: compare a fresh run against this baseline file instead of writing")
	tolerance := fs.Float64("tolerance", 2.0, "with -check: fail if a metric is worse than baseline by more than this factor")
	shardsSweep := fs.Bool("shards-sweep", false, "run the sharded-engine scaling sweep instead of the engine/suite benchmarks")
	shardsOut := fs.String("shards-o", "BENCH_pr8.json", "with -shards-sweep: output file (- for stdout)")
	checkShardsFile := fs.String("check-shards", "", "gate mode: run a reduced shard sweep against this baseline file")
	mcheckSweep := fs.Bool("mcheck-sweep", false, "run the model-checker exploration-throughput sweep instead of the engine/suite benchmarks")
	mcheckOut := fs.String("mcheck-o", "BENCH_pr9.json", "with -mcheck-sweep: output file (- for stdout)")
	checkMCheckFile := fs.String("check-mcheck", "", "gate mode: run a reduced mcheck sweep against this baseline file")
	protoBench := fs.Bool("protocols", false, "run the per-protocol simulation-cost benchmark instead of the engine/suite benchmarks")
	protoOut := fs.String("protocols-o", "BENCH_pr10.json", "with -protocols: output file (- for stdout)")
	checkProtoFile := fs.String("check-protocols", "", "gate mode: run the per-protocol benchmark against this baseline file")
	if err := cli.Parse(fs, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		os.Exit(2)
	}

	if *shardsSweep {
		rep, err := perf.RunShardSweep(perf.SweepNodeCounts(), perf.SweepShardCounts(), os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccperf:", err)
			os.Exit(1)
		}
		os.Exit(emit(*shardsOut, rep))
	}
	if *checkShardsFile != "" {
		if !perf.CheckShards(*checkShardsFile, *tolerance, os.Stderr) {
			os.Exit(1)
		}
		return
	}
	if *mcheckSweep {
		rep, err := perf.RunMCheckBench(perf.MCheckWorkerCounts(), os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccperf:", err)
			os.Exit(1)
		}
		os.Exit(emit(*mcheckOut, rep))
	}
	if *checkMCheckFile != "" {
		if !perf.CheckMCheck(*checkMCheckFile, *tolerance, os.Stderr) {
			os.Exit(1)
		}
		return
	}
	if *protoBench {
		rep, err := perf.RunProtocolBench(os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccperf:", err)
			os.Exit(1)
		}
		os.Exit(emit(*protoOut, rep))
	}
	if *checkProtoFile != "" {
		if !perf.CheckProtocols(*checkProtoFile, *tolerance, os.Stderr) {
			os.Exit(1)
		}
		return
	}

	rep, err := perf.Measure(perf.Options{
		Events: *events, Chains: *chains,
		Parallel: *parallel, Scale: *scale, Quick: *quick,
	}, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		os.Exit(1)
	}

	if *check != "" {
		if !perf.CheckBaseline(*check, rep, *tolerance, *quick, os.Stderr) {
			os.Exit(1)
		}
		return
	}
	os.Exit(emit(*out, rep))
}

// emit writes v as indented JSON to path ("-" = stdout).
func emit(path string, v any) int {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		return 1
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return 0
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		return 1
	}
	return 0
}
