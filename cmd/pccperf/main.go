// Command pccperf records the simulator's performance envelope into a
// small JSON file (BENCH_pr2.json by default): raw event-engine throughput
// on the protocol's latency mix, and the wall time and event count of the
// full pccbench experiment suite. The file is the PR-over-PR performance
// record the Makefile's bench target refreshes.
//
//	pccperf                       # writes BENCH_pr2.json
//	pccperf -o - -quick           # print to stdout, small suite run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"pccsim/internal/cli"
	"pccsim/internal/harness"
	"pccsim/internal/msg"
	"pccsim/internal/runner"
	"pccsim/internal/sim"
)

// report is the schema of BENCH_pr2.json.
type report struct {
	// Engine is the single-cell event-engine microbenchmark: a pure
	// schedule/step churn over the protocol's characteristic delays.
	Engine struct {
		Events       uint64  `json:"events"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
		NsPerEvent   float64 `json:"ns_per_event"`
	} `json:"engine"`
	// Suite is the full pccbench -exp all run (all experiment cells).
	Suite struct {
		Cells        int     `json:"cells"`
		Events       uint64  `json:"events"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
		Parallel     int     `json:"parallel"`
		Scale        int     `json:"scale"`
	} `json:"suite"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Timestamp string `json:"timestamp"`
}

// churnMix mirrors the protocol's characteristic event delays (crossbar,
// hop, directory, DRAM) — the same mix BenchmarkEngineChurn in
// internal/sim uses, so the two numbers are comparable.
var churnMix = [8]sim.Time{20, 100, 50, 200, 100, 20, 100, 10}

// churner is a self-rescheduling MsgHandler: each handled event schedules
// its successor, exercising the typed, pooled hot path end to end.
type churner struct {
	eng  *sim.Engine
	n    uint64
	quit uint64
}

func (c *churner) HandleMsgEvent(op uint8, m *msg.Message) {
	c.n++
	if c.n >= c.quit {
		c.eng.FreeMsg(m)
		return
	}
	c.eng.AfterMsg(churnMix[c.n&7], c, op, m)
}

// benchEngine measures raw engine throughput over total events with k
// independent event chains in flight.
func benchEngine(total uint64, k int) (uint64, time.Duration) {
	eng := sim.NewEngine()
	c := &churner{eng: eng, quit: total}
	for i := 0; i < k; i++ {
		m := eng.NewMsg()
		m.Addr = msg.Addr(i) * 128
		eng.AfterMsg(churnMix[i&7], c, 0, m)
	}
	start := time.Now()
	for eng.Pending() > 0 {
		eng.Step()
	}
	return c.n, time.Since(start)
}

func main() {
	fs := flag.NewFlagSet("pccperf", flag.ExitOnError)
	out := fs.String("o", "BENCH_pr2.json", "output file (- for stdout)")
	events := fs.Uint64("events", 20_000_000, "engine microbenchmark event count")
	chains := fs.Int("chains", 64, "concurrent event chains in the engine microbenchmark")
	parallel := fs.Int("parallel", 0, "suite worker-pool size (0 = GOMAXPROCS)")
	scale := fs.Int("scale", 1, "suite workload problem-size multiplier")
	quick := fs.Bool("quick", false, "skip the full suite; engine microbenchmark only")
	check := fs.String("check", "", "regression-gate mode: compare a fresh run against this baseline file instead of writing")
	tolerance := fs.Float64("tolerance", 2.0, "with -check: fail if a metric is worse than baseline by more than this factor")
	shardsSweep := fs.Bool("shards-sweep", false, "run the sharded-engine scaling sweep instead of the engine/suite benchmarks")
	shardsOut := fs.String("shards-o", "BENCH_pr7.json", "with -shards-sweep: output file (- for stdout)")
	checkShardsFile := fs.String("check-shards", "", "gate mode: run a reduced shard sweep against this baseline file")
	if err := cli.Parse(fs, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		os.Exit(2)
	}

	if *shardsSweep {
		os.Exit(writeShardSweep(*shardsOut))
	}
	if *checkShardsFile != "" {
		os.Exit(checkShards(*checkShardsFile, *tolerance))
	}

	var rep report
	rep.GoVersion = runtime.Version()
	rep.CPUs = runtime.NumCPU()
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	n, wall := benchEngine(*events, *chains)
	rep.Engine.Events = n
	rep.Engine.WallSeconds = wall.Seconds()
	rep.Engine.EventsPerSec = float64(n) / wall.Seconds()
	rep.Engine.NsPerEvent = float64(wall.Nanoseconds()) / float64(n)
	fmt.Fprintf(os.Stderr, "pccperf: engine %d events in %v (%.1f Mev/s)\n",
		n, wall.Round(time.Millisecond), rep.Engine.EventsPerSec/1e6)

	if !*quick {
		var cells atomic.Int64
		var suiteEvents atomic.Uint64
		opts := harness.Options{
			Nodes: 16, Scale: *scale, Parallel: *parallel,
			Progress: func(ev runner.Event) {
				if ev.Done && ev.Err == nil && !ev.Cached {
					cells.Add(1)
					suiteEvents.Add(ev.Events)
				}
			},
		}
		start := time.Now()
		if _, err := harness.RunAll(opts); err != nil {
			fmt.Fprintln(os.Stderr, "pccperf:", err)
			os.Exit(1)
		}
		suiteWall := time.Since(start)
		rep.Suite.Cells = int(cells.Load())
		rep.Suite.Events = suiteEvents.Load()
		rep.Suite.WallSeconds = suiteWall.Seconds()
		rep.Suite.EventsPerSec = float64(rep.Suite.Events) / suiteWall.Seconds()
		rep.Suite.Parallel = *parallel
		rep.Suite.Scale = *scale
		fmt.Fprintf(os.Stderr, "pccperf: suite %d cells, %d events in %v (%.1f Mev/s)\n",
			rep.Suite.Cells, rep.Suite.Events, suiteWall.Round(time.Millisecond),
			rep.Suite.EventsPerSec/1e6)
	}

	if *check != "" {
		os.Exit(checkBaseline(*check, &rep, *tolerance, *quick))
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		os.Exit(1)
	}
}

// checkBaseline is the bench-regression gate: the fresh measurements in
// rep must not be worse than the committed baseline by more than the
// tolerance factor. Engine ns/event and suite wall time gate; event-count
// drift (the workload itself changed) only warns, since a different
// workload makes wall-time comparison advisory anyway. The generous
// default tolerance absorbs machine-to-machine and CI-runner noise — the
// gate exists to catch order-of-magnitude hot-loop regressions, not 10%
// wobbles.
func checkBaseline(path string, rep *report, tol float64, quick bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccperf:", err)
		return 1
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "pccperf: %s: %v\n", path, err)
		return 1
	}

	fail := 0
	gate := func(name string, got, want float64) {
		switch {
		case want <= 0:
			fmt.Fprintf(os.Stderr, "pccperf: check %-16s baseline missing; skipped\n", name)
		case got > want*tol:
			fmt.Fprintf(os.Stderr, "pccperf: check %-16s FAIL: %.2f vs baseline %.2f (> %.1fx)\n",
				name, got, want, tol)
			fail = 1
		default:
			fmt.Fprintf(os.Stderr, "pccperf: check %-16s ok: %.2f vs baseline %.2f (%.2fx)\n",
				name, got, want, got/want)
		}
	}
	gate("engine-ns/event", rep.Engine.NsPerEvent, base.Engine.NsPerEvent)
	if !quick {
		gate("suite-wall-s", rep.Suite.WallSeconds, base.Suite.WallSeconds)
		if base.Suite.Events != 0 && rep.Suite.Events != base.Suite.Events {
			fmt.Fprintf(os.Stderr, "pccperf: check suite-events       warn: %d vs baseline %d (workload changed; wall gate is advisory)\n",
				rep.Suite.Events, base.Suite.Events)
		}
	}
	if fail == 0 {
		fmt.Fprintf(os.Stderr, "pccperf: check OK against %s (tolerance %.1fx)\n", path, tol)
	}
	return fail
}
