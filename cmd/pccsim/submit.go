package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pccsim/internal/cli"
	"pccsim/internal/fault"
)

// submitMain implements `pccsim submit`, the thin HTTP client the nightly
// workflow (and anyone else) uses to run simulations through a `pccsim
// serve` instance: post a job spec, optionally wait for the terminal
// state, and write the result body to stdout or a file. Exit codes: 0 on
// success, 1 when the job fails, is cancelled, or a fuzz/bench result
// reports ok=false, 2 on usage or transport errors.
func submitMain(args []string) int {
	fs := flag.NewFlagSet("pccsim submit", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8344", "base URL of a pccsim serve instance")
	tenant := fs.String("tenant", "", "tenant name sent as the X-Tenant header")
	spec := fs.String("spec", "", "job spec JSON file (- = stdin)")
	inline := fs.String("json", "", "job spec JSON given inline (alternative to -spec)")
	wait := fs.Bool("wait", true, "poll until the job is terminal and fetch its result")
	follow := fs.Bool("follow", false, "wait via the server's live event stream (SSE) instead of polling")
	poll := fs.Duration("poll", 500*time.Millisecond, "status poll interval while waiting")
	timeout := fs.Duration("timeout", 0, "overall wait budget (0 = no limit)")
	out := fs.String("o", "-", "result destination (- = stdout)")
	reproDir := fs.String("repro-dir", "", "write shrunk fuzz-failure cases into this directory as replayable corpus files")
	progress := fs.Bool("progress", false, "log job state transitions to stderr while waiting")
	if err := cli.Parse(fs, args); err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}

	body, err := specBody(*spec, *inline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}
	base := strings.TrimRight(*server, "/")

	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}
	req.Header.Set("Content-Type", "application/json")
	if *tenant != "" {
		req.Header.Set("X-Tenant", *tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "pccsim submit: server rejected job: %s: %s\n", resp.Status, strings.TrimSpace(string(payload)))
		return 1
	}
	var st jobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		fmt.Fprintf(os.Stderr, "pccsim submit: bad submit response: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "pccsim submit: job %s (%s) accepted\n", st.ID, st.Kind)
	if !*wait && !*follow {
		fmt.Println(st.ID)
		return 0
	}

	if *follow {
		st, err = followTerminal(base, st.ID, *timeout, *progress)
	} else {
		st, err = waitTerminal(base, st.ID, *poll, *timeout, *progress)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}
	switch st.State {
	case "failed":
		fmt.Fprintf(os.Stderr, "pccsim submit: job %s failed: %s\n", st.ID, st.Error)
		return 1
	case "cancelled":
		fmt.Fprintf(os.Stderr, "pccsim submit: job %s was cancelled\n", st.ID)
		return 1
	}

	result, ctype, err := fetchResult(base, st.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}
	if err := writeResult(*out, result); err != nil {
		fmt.Fprintln(os.Stderr, "pccsim submit:", err)
		return 2
	}
	return verdict(result, ctype, *reproDir)
}

// jobStatus mirrors the server's Status wire format; only the fields the
// client acts on are decoded.
type jobStatus struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Error     string `json:"error"`
	ObsEvents uint64 `json:"obs_events"`
	SimTime   uint64 `json:"sim_time"`
}

func specBody(path, inline string) ([]byte, error) {
	switch {
	case path != "" && inline != "":
		return nil, fmt.Errorf("-spec and -json are mutually exclusive")
	case inline != "":
		return []byte(inline), nil
	case path == "-":
		return io.ReadAll(os.Stdin)
	case path != "":
		return os.ReadFile(path)
	}
	return nil, fmt.Errorf("a job spec is required: -spec FILE or -json '{...}'")
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

func waitTerminal(base, id string, poll, timeout time.Duration, progress bool) (jobStatus, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	var last jobStatus
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return last, err
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return last, fmt.Errorf("status poll: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
		}
		var st jobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			return last, fmt.Errorf("bad status response: %v", err)
		}
		if progress && st != last {
			fmt.Fprintf(os.Stderr, "pccsim submit: job %s %s (events=%d simtime=%d)\n", st.ID, st.State, st.ObsEvents, st.SimTime)
		}
		last = st
		if terminal(st.State) {
			return st, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(poll)
	}
}

// followTerminal consumes the server's SSE stream (GET /v1/jobs/{id}/events)
// instead of polling: the server pushes a `progress` event on every status
// change and one final `done` event when the job is terminal, so a single
// long-lived request replaces poll-interval-bounded latency and the
// per-poll request overhead. The stream closing before a `done` event is
// an error unless the last status seen was already terminal.
func followTerminal(base, id string, timeout time.Duration, progress bool) (jobStatus, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return jobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return jobStatus{}, fmt.Errorf("event stream: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}

	var last jobStatus
	event, data := "", ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "": // blank line = dispatch
			var st jobStatus
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				return last, fmt.Errorf("bad event payload: %v", err)
			}
			if progress && st != last {
				fmt.Fprintf(os.Stderr, "pccsim submit: job %s %s (events=%d simtime=%d)\n", st.ID, st.State, st.ObsEvents, st.SimTime)
			}
			last = st
			if event == "done" {
				return st, nil
			}
			event, data = "", ""
		}
	}
	if ctx.Err() != nil {
		return last, fmt.Errorf("job %s still %s after %s", id, last.State, timeout)
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	if terminal(last.State) {
		return last, nil
	}
	return last, fmt.Errorf("event stream for job %s closed while %s", id, last.State)
}

func fetchResult(base, id string) ([]byte, string, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("result fetch: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	return payload, resp.Header.Get("Content-Type"), nil
}

func writeResult(path string, body []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(body)
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

// verdict inspects JSON results that carry their own pass/fail bit (fuzz
// campaigns and bench gates): the job completes as "done" either way, so
// the verdict lives in the body. Fuzz failures are optionally written out
// as replayable corpus files for `pccfuzz -replay`.
func verdict(body []byte, ctype, reproDir string) int {
	if !strings.HasPrefix(ctype, "application/json") {
		return 0
	}
	var res struct {
		Ok       *bool `json:"ok"`
		Failures []struct {
			Seed    int64      `json:"seed"`
			Failure string     `json:"failure"`
			Shrunk  fault.Case `json:"shrunk"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(body, &res); err != nil || res.Ok == nil {
		return 0
	}
	if reproDir != "" {
		for _, f := range res.Failures {
			path := filepath.Join(reproDir, fmt.Sprintf("seed-%d.json", f.Seed))
			if err := fault.WriteCase(path, f.Shrunk); err != nil {
				fmt.Fprintf(os.Stderr, "pccsim submit: writing repro %s: %v\n", path, err)
			} else {
				fmt.Fprintf(os.Stderr, "pccsim submit: wrote repro %s (%s)\n", path, f.Failure)
			}
		}
	}
	if !*res.Ok {
		fmt.Fprintf(os.Stderr, "pccsim submit: job completed but reported ok=false (%d failures)\n", len(res.Failures))
		return 1
	}
	return 0
}
