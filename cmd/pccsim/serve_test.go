package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestParseServeConfigPrecedence pins the flag > config-file > default
// resolution order for the server's own knobs, the same contract every
// pccsim tool gets from internal/cli.
func TestParseServeConfigPrecedence(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "serve.json")
	if err := os.WriteFile(file, []byte(`{
		"addr": "127.0.0.1:9999",
		"queue": 7,
		"quota": 3,
		"drain-timeout": "30s"
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("defaults", func(t *testing.T) {
		cfg, err := parseServeConfig(nil)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Addr != "127.0.0.1:8344" || cfg.QueueDepth != 64 || cfg.Workers != 2 ||
			cfg.TenantQuota != 8 || cfg.DrainTimeout != 2*time.Minute {
			t.Errorf("defaults = %+v", cfg)
		}
	})

	t.Run("file overrides defaults", func(t *testing.T) {
		cfg, err := parseServeConfig([]string{"-config", file})
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Addr != "127.0.0.1:9999" || cfg.QueueDepth != 7 ||
			cfg.TenantQuota != 3 || cfg.DrainTimeout != 30*time.Second {
			t.Errorf("file-loaded config = %+v", cfg)
		}
		if cfg.Workers != 2 {
			t.Errorf("workers = %d, want built-in default 2 (file does not set it)", cfg.Workers)
		}
	})

	t.Run("explicit flag beats file", func(t *testing.T) {
		cfg, err := parseServeConfig([]string{"-config", file, "-queue", "5", "-addr", "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		if cfg.QueueDepth != 5 || cfg.Addr != "127.0.0.1:0" {
			t.Errorf("explicit flags lost to the file: %+v", cfg)
		}
		if cfg.TenantQuota != 3 {
			t.Errorf("quota = %d, want 3 from the file (flag not given)", cfg.TenantQuota)
		}
	})

	t.Run("unknown file key errors", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte(`{"qeueu": 7}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := parseServeConfig([]string{"-config", bad}); err == nil {
			t.Error("typoed config key was accepted silently")
		}
	})
}
