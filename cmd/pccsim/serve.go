package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pccsim/internal/cli"
	"pccsim/internal/serve"
)

// parseServeConfig resolves the serve subcommand's configuration with the
// shared flag > config-file > default precedence. Factored from serveMain
// so the precedence of the server flags is unit-testable.
func parseServeConfig(args []string) (serve.Config, error) {
	fs := flag.NewFlagSet("pccsim serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; :0 picks a free port)")
	queue := fs.Int("queue", 64, "bounded job-queue depth (full queue returns 429)")
	workers := fs.Int("workers", 2, "concurrent job executors")
	quota := fs.Int("quota", 8, "per-tenant active-job quota (<0 = unlimited)")
	simWorkers := fs.Int("sim-workers", 0, "shared simulation worker pool for experiment batches (0 = GOMAXPROCS)")
	drain := fs.Duration("drain-timeout", 2*time.Minute, "graceful-drain budget before in-flight jobs are interrupted")
	if err := cli.Parse(fs, args); err != nil {
		return serve.Config{}, err
	}
	return serve.Config{
		Addr:          *addr,
		QueueDepth:    *queue,
		Workers:       *workers,
		TenantQuota:   *quota,
		RunnerWorkers: *simWorkers,
		DrainTimeout:  *drain,
	}, nil
}

// serveMain implements `pccsim serve`: run the job service until SIGTERM
// or SIGINT, then drain gracefully — refuse new submissions, let queued
// and running jobs finish (interrupting them only if the drain budget
// expires), and only then close the listener so attached event streams
// observe their jobs' completion.
func serveMain(args []string) int {
	cfg, err := parseServeConfig(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim serve:", err)
		return 2
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	cfg.Log = logger

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim serve:", err)
		return 1
	}
	srv := serve.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	// The listening line is the startup handshake: the soak harness and
	// CI scripts parse the actual address from it (relevant with :0).
	logger.Printf("pccsim serve: listening on http://%s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pccsim serve:", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logger.Printf("pccsim serve: signal received; draining")

	dctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	srv.Drain(dctx)
	cancel()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Printf("pccsim serve: shutdown: %v", err)
		hs.Close()
		return 1
	}
	logger.Printf("pccsim serve: bye")
	return 0
}
