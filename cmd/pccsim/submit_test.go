package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pccsim/internal/serve"
)

// TestFollowTerminal runs `submit -follow`'s SSE consumer against a live
// in-process server: a real serve.Server behind httptest, streaming real
// progress/done events over HTTP. The stream must deliver the terminal
// status without any client-side polling.
func TestFollowTerminal(t *testing.T) {
	s := serve.New(serve.Config{Log: log.New(io.Discard, "", 0)})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(spec string) jobStatus {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %s: %s", resp.Status, payload)
		}
		var st jobStatus
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	t.Run("done", func(t *testing.T) {
		st := post(`{"workload":"em3d","nodes":8,"scale":1,"iters":2}`)
		got, err := followTerminal(ts.URL, st.ID, 30*time.Second, false)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != "done" {
			t.Fatalf("followed job ended %q, want done: %+v", got.State, got)
		}
		if got.ID != st.ID {
			t.Fatalf("stream reported job %s, submitted %s", got.ID, st.ID)
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		// A duplicate of a slow spec queued behind itself would be flaky;
		// instead cancel a fresh slow job and follow it — the stream's
		// done event must carry the cancelled state.
		st := post(`{"workload":"em3d","nodes":8,"scale":8,"iters":64}`)
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
		got, err := followTerminal(ts.URL, st.ID, 30*time.Second, false)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != "cancelled" && got.State != "done" {
			t.Fatalf("cancelled job streamed terminal state %q", got.State)
		}
	})

	t.Run("unknown job", func(t *testing.T) {
		if _, err := followTerminal(ts.URL, "no-such-job", time.Second, false); err == nil {
			t.Fatal("following a nonexistent job did not error")
		}
	})
}
