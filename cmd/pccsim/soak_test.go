package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSoak exercises the built pccsim binary end to end the way CI's
// soak job does: k concurrent clients hammer one server with a small
// set of duplicate-heavy job specs, and the test asserts the service
// contract — every job completes, duplicate submissions are memoized
// and byte-identical, an HTTP result matches the equivalent CLI run
// byte for byte (including under -shards -adaptive-windows), and a
// SIGTERM drains gracefully without dropping accepted jobs.
//
// Opt-in (it builds and forks the real binary): set PCCSIM_SOAK=1.
// PCCSIM_SOAK_CLIENTS overrides the client count (default 8) and
// PCCSIM_SOAK_LOGDIR keeps the server log where CI can attach it as a
// failure artifact.
func TestSoak(t *testing.T) {
	if os.Getenv("PCCSIM_SOAK") == "" {
		t.Skip("soak test is opt-in: set PCCSIM_SOAK=1")
	}
	k := 8
	if v := os.Getenv("PCCSIM_SOAK_CLIENTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad PCCSIM_SOAK_CLIENTS=%q", v)
		}
		k = n
	}
	logDir := os.Getenv("PCCSIM_SOAK_LOGDIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(logDir, "serve.log")

	bin := filepath.Join(t.TempDir(), "pccsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pccsim: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-queue", "128", "-quota", "-1", "-workers", "4")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Process.Kill()
		srv.Wait()
		if t.Failed() {
			data, _ := os.ReadFile(logPath)
			t.Logf("server log (%s):\n%s", logPath, data)
		}
	})

	// The startup handshake: the first log line names the actual address
	// (we listen on :0). Everything the server says lands in logPath so a
	// failing CI job has the full history to attach.
	sc := bufio.NewScanner(io.TeeReader(stderr, logFile))
	base := ""
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatal("server never logged its listening address")
	}
	logDone := make(chan struct{})
	go func() {
		defer close(logDone)
		for sc.Scan() {
		}
		logFile.Close()
	}()

	// Four distinct specs across k*4 jobs guarantees heavy duplication.
	// One spec runs sharded with adaptive windows: the determinism
	// contract explicitly covers the parallel scheduler.
	specs := []string{
		`{"workload":"em3d","nodes":8,"scale":1,"iters":2}`,
		`{"workload":"em3d","nodes":16,"scale":1,"iters":2,"shards":4,"adaptive_windows":true}`,
		`{"workload":"mg","nodes":8,"scale":1}`,
		`{"workload":"cg","nodes":8,"scale":1}`,
	}
	cliEquiv := map[int][]string{
		0: {"-workload", "em3d", "-nodes", "8", "-scale", "1", "-iters", "2"},
		1: {"-workload", "em3d", "-nodes", "16", "-scale", "1", "-iters", "2", "-shards", "4", "-adaptive-windows"},
	}

	const jobsPerClient = 4
	bodies := make([][][]byte, len(specs)) // spec index -> result bodies
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, k*jobsPerClient)
	for c := 0; c < k; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("client-%d", c)
			for i := 0; i < jobsPerClient; i++ {
				si := (c + i) % len(specs)
				body, err := runJobHTTP(base, tenant, specs[si])
				if err != nil {
					errs <- fmt.Errorf("%s job %d: %w", tenant, i, err)
					continue
				}
				mu.Lock()
				bodies[si] = append(bodies[si], body)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Duplicate submissions must be byte-identical, across clients.
	for si, got := range bodies {
		if len(got) != k*jobsPerClient/len(specs) {
			t.Errorf("spec %d: %d results, want %d", si, len(got), k*jobsPerClient/len(specs))
		}
		for _, b := range got {
			if !bytes.Equal(b, got[0]) {
				t.Errorf("spec %d: duplicate submissions returned different bytes", si)
				break
			}
		}
	}

	// The duplicates must have come from the memo, not been re-simulated.
	var stats struct {
		JobsDone   uint64 `json:"jobs_done"`
		JobsCached uint64 `json:"jobs_cached"`
		MemoHits   uint64 `json:"memo_hits"`
	}
	if err := getJSON(base+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	if stats.JobsDone != uint64(k*jobsPerClient) {
		t.Errorf("jobs_done = %d, want %d", stats.JobsDone, k*jobsPerClient)
	}
	if stats.MemoHits == 0 || stats.JobsCached == 0 {
		t.Errorf("no memoization under duplicate load: hits=%d cached=%d", stats.MemoHits, stats.JobsCached)
	}

	// HTTP result == CLI stdout, byte for byte.
	for si, args := range cliEquiv {
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("CLI run %v: %v", args, err)
		}
		if !bytes.Equal(out, bodies[si][0]) {
			t.Errorf("spec %d: HTTP result differs from CLI stdout (%d vs %d bytes)", si, len(bodies[si][0]), len(out))
		}
	}

	// Graceful drain: accept a last batch — including a never-seen spec
	// that must actually simulate during the drain — then SIGTERM.
	drainIDs := []string{}
	drainSpecs := append(specs[:2:2], `{"workload":"em3d","nodes":8,"scale":4,"iters":16}`)
	for _, sp := range drainSpecs {
		id, err := submitHTTP(base, "drain-client", sp)
		if err != nil {
			t.Fatalf("drain-batch submit: %v", err)
		}
		drainIDs = append(drainIDs, id)
	}
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("server exit after SIGTERM: %v (want clean exit 0)", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("server did not exit within 120s of SIGTERM")
	}
	<-logDone

	// No dropped in-flight jobs: every accepted job must appear in the
	// log with a terminal "done" line, and the drain must have completed.
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	logText := string(logData)
	if !strings.Contains(logText, "serve: drained") {
		t.Error("server log lacks the drain-completed line")
	}
	for _, id := range drainIDs {
		marker := "job " + id + " ("
		line := ""
		for _, l := range strings.Split(logText, "\n") {
			if strings.Contains(l, marker) {
				line = l
			}
		}
		if !strings.Contains(line, " done ") {
			t.Errorf("job %s accepted before SIGTERM did not finish: %q", id, line)
		}
	}
}

func submitHTTP(base, tenant, spec string) (string, error) {
	req, err := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		return "", err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %s: %s", resp.Status, payload)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// runJobHTTP submits a spec, waits for the terminal state, and returns
// the result body.
func runJobHTTP(base, tenant, spec string) ([]byte, error) {
	id, err := submitHTTP(base, tenant, spec)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := getJSON(base+"/v1/jobs/"+id, &st); err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("result: %s", resp.Status)
			}
			return io.ReadAll(resp.Body)
		case "failed", "cancelled":
			return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after 120s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, payload)
	}
	return json.Unmarshal(payload, v)
}
