// Command pccsim runs one benchmark on one machine configuration and
// prints the full statistics report.
//
//	pccsim -workload em3d -rac 32768 -deledc 32 -updates
//	pccsim -workload mg -nodes 16 -scale 2 -hop 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pccsim"
)

func main() {
	wl := flag.String("workload", "em3d", "benchmark: "+strings.Join(pccsim.Workloads(), "|"))
	nodes := flag.Int("nodes", 16, "processor count")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	iters := flag.Int("iters", 0, "iteration override (0 = workload default)")
	racKB := flag.Int("rac", 0, "remote access cache size in bytes (0 = none)")
	deledc := flag.Int("deledc", 0, "delegate cache entries (0 = delegation off)")
	updates := flag.Bool("updates", false, "enable speculative updates")
	delay := flag.Uint64("delay", 50, "intervention delay in cycles")
	hop := flag.Uint64("hop", 100, "network hop latency in cycles")
	check := flag.Bool("check", false, "enable runtime coherence invariant checks")
	traceN := flag.Int("trace", 0, "dump the last N coherence messages after the run")
	traceLine := flag.Uint64("trace-line", 0, "restrict tracing to one line address")
	flag.Parse()

	cfg := pccsim.DefaultConfig()
	cfg.Nodes = *nodes
	cfg = cfg.WithMechanisms(*racKB, *deledc, *updates)
	cfg.InterventionDelay = pccsim.Time(*delay)
	cfg.Network.HopLatency = pccsim.Time(*hop)
	cfg.CheckInvariants = *check

	var rec *pccsim.TraceRecorder
	var st *pccsim.Stats
	var err error
	if *traceN > 0 {
		var m *pccsim.Machine
		m, err = pccsim.NewMachine(cfg)
		if err == nil {
			rec = m.Trace(*traceN, pccsim.Addr(*traceLine))
			st, err = runOn(m, cfg, *wl, *nodes, *scale, *iters)
		}
	} else {
		st, err = pccsim.RunWorkload(cfg, *wl, pccsim.WorkloadParams{
			Nodes: *nodes, Scale: *scale, Iters: *iters,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s on %d nodes (scale %d)\n", *wl, *nodes, *scale)
	st.Dump(os.Stdout)
	if rec != nil {
		fmt.Printf("\n== last %d coherence messages (%d recorded) ==\n", *traceN, rec.Total())
		rec.Dump(os.Stdout)
		fmt.Println("\n== per-line stories ==")
		rec.DumpStories(os.Stdout)
	}
}

// runOn builds the workload and executes it on an existing machine (so a
// tracer can be attached first).
func runOn(m *pccsim.Machine, cfg pccsim.Config, wl string, nodes, scale, iters int) (*pccsim.Stats, error) {
	prog, err := pccsim.BuildWorkload(wl, pccsim.WorkloadParams{Nodes: nodes, Scale: scale, Iters: iters})
	if err != nil {
		return nil, err
	}
	return m.Run(prog)
}
