// Command pccsim runs one benchmark on one machine configuration and
// prints the full statistics report.
//
//	pccsim -workload em3d -rac 32768 -deledc 32 -updates
//	pccsim -workload mg -nodes 16 -scale 2 -hop 200
//
// The trace subcommand runs one observed benchmark — mechanisms on by
// default — and writes its protocol event stream as Perfetto/Chrome
// trace-event JSON (open in ui.perfetto.dev):
//
//	pccsim trace -workload em3d > em3d.json
//	pccsim trace -workload em3d -out em3d.json -delay 100
//
// The serve subcommand turns the simulator into a multi-tenant job
// service (run/experiment/fuzz/bench jobs over HTTP with memoized
// results and streaming progress), and submit is its thin client:
//
//	pccsim serve -addr :8344 -queue 64 -quota 8
//	pccsim submit -server http://127.0.0.1:8344 -json '{"workload":"em3d","nodes":16}'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pccsim"
	"pccsim/internal/cli"
	"pccsim/internal/harness"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			os.Exit(traceMain(os.Args[2:]))
		case "serve":
			os.Exit(serveMain(os.Args[2:]))
		case "submit":
			os.Exit(submitMain(os.Args[2:]))
		}
	}

	fs := flag.NewFlagSet("pccsim", flag.ExitOnError)
	wl := fs.String("workload", "em3d", "benchmark: "+strings.Join(pccsim.Workloads(), "|"))
	proto := fs.String("protocol", "", "coherence protocol: "+strings.Join(pccsim.Protocols(), "|")+" (default adaptive)")
	nodes := fs.Int("nodes", 16, "processor count")
	scale := fs.Int("scale", 1, "problem-size multiplier")
	iters := fs.Int("iters", 0, "iteration override (0 = workload default)")
	racB := fs.Int("rac", 0, "remote access cache size in bytes (0 = none)")
	deledc := fs.Int("deledc", 0, "delegate cache entries (0 = delegation off)")
	updates := fs.Bool("updates", false, "enable speculative updates")
	delay := fs.Uint64("delay", 50, "intervention delay in cycles")
	hop := fs.Uint64("hop", 100, "network hop latency in cycles")
	check := fs.Bool("check", false, "enable runtime coherence invariant checks")
	shards := fs.Int("shards", 0, "engine shards (0 = single engine; >1 runs the parallel scheduler)")
	deterministic := fs.Bool("deterministic", false, "with -shards: serial round-robin shard scheduler")
	adaptive := fs.Bool("adaptive-windows", false, "with -shards: widen conservative windows while no cross-shard traffic is in flight (identical results, fewer barriers)")
	traceN := fs.Int("trace", 0, "dump the last N coherence messages after the run")
	traceLine := fs.Uint64("trace-line", 0, "restrict tracing to one line address")
	if err := cli.Parse(fs, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pccsim:", err)
		os.Exit(2)
	}

	cfg := pccsim.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Protocol = *proto
	cfg.RACBytes = *racB
	cfg.DelegateEntries = *deledc
	cfg.EnableUpdates = *updates && *racB > 0 && *deledc > 0
	cfg.InterventionDelay = pccsim.Time(*delay)
	cfg.Network.HopLatency = pccsim.Time(*hop)
	cfg.CheckInvariants = *check
	if *deterministic {
		cfg = cfg.With(pccsim.WithDeterministicShards(*shards))
	} else {
		cfg = cfg.With(pccsim.WithShards(*shards))
	}
	if *adaptive {
		cfg = cfg.With(pccsim.WithAdaptiveWindows())
	}

	var rec *pccsim.TraceRecorder
	var st *pccsim.Stats
	var err error
	if *traceN > 0 {
		var m *pccsim.Machine
		m, err = pccsim.New(cfg)
		if err == nil {
			rec = m.Trace(*traceN, pccsim.Addr(*traceLine))
			st, err = runOn(m, *wl, *nodes, *scale, *iters)
		}
	} else {
		st, err = pccsim.RunWorkload(cfg, *wl, pccsim.WorkloadParams{
			Nodes: *nodes, Scale: *scale, Iters: *iters,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim:", err)
		os.Exit(1)
	}
	harness.WriteRunReport(os.Stdout, *wl, *nodes, *scale, st)
	if rec != nil {
		fmt.Printf("\n== last %d coherence messages (%d recorded) ==\n", *traceN, rec.Total())
		rec.Dump(os.Stdout)
		fmt.Println("\n== per-line stories ==")
		rec.DumpStories(os.Stdout)
	}
}

// traceMain implements `pccsim trace`: one observed run, exported as
// Perfetto JSON. Unlike the root command, the mechanisms default ON —
// the trace exists to show the delegation lifecycle.
func traceMain(args []string) int {
	fs := flag.NewFlagSet("pccsim trace", flag.ExitOnError)
	wl := fs.String("workload", "em3d", "benchmark: "+strings.Join(pccsim.Workloads(), "|"))
	proto := fs.String("protocol", "", "coherence protocol: "+strings.Join(pccsim.Protocols(), "|")+" (default adaptive)")
	out := fs.String("out", "-", "output file (- = stdout)")
	nodes := fs.Int("nodes", 16, "processor count")
	scale := fs.Int("scale", 1, "problem-size multiplier")
	iters := fs.Int("iters", 0, "iteration override (0 = workload default)")
	racKB := fs.Int("rac-kb", 32, "remote access cache size in KB (0 = none)")
	deledc := fs.Int("deledc", 32, "delegate cache entries (0 = delegation off)")
	updates := fs.Bool("updates", true, "enable speculative updates")
	delay := fs.Uint64("delay", 50, "intervention delay in cycles")
	window := fs.Int("window", 1<<18, "event-window capacity (-1 = retain everything)")
	shards := fs.Int("shards", 0, "engine shards (0 = single engine; >1 runs the parallel scheduler)")
	deterministic := fs.Bool("deterministic", false, "with -shards: serial round-robin shard scheduler")
	if err := cli.Parse(fs, args); err != nil {
		fmt.Fprintln(os.Stderr, "pccsim trace:", err)
		return 2
	}

	cfg := pccsim.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Protocol = *proto
	cfg.RACBytes = *racKB * 1024
	cfg.DelegateEntries = *deledc
	cfg.EnableUpdates = *updates && *racKB > 0 && *deledc > 0
	cfg.InterventionDelay = pccsim.Time(*delay)
	if *deterministic {
		cfg = cfg.With(pccsim.WithDeterministicShards(*shards))
	} else {
		cfg = cfg.With(pccsim.WithShards(*shards))
	}

	m, err := pccsim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim trace:", err)
		return 1
	}
	es := m.Observe(*window)
	st, err := runOn(m, *wl, *nodes, *scale, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccsim trace:", err)
		return 1
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccsim trace:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := es.WritePerfetto(w); err != nil {
		fmt.Fprintln(os.Stderr, "pccsim trace:", err)
		return 1
	}

	// Cross-check: the observer's per-class byte accounting must equal
	// the run's Stats traffic counters exactly — both count every packet
	// at network injection.
	met := es.Metrics()
	if met.TotalMessages() != st.TotalMessages() || met.TotalBytes() != st.TotalBytes() {
		fmt.Fprintf(os.Stderr, "pccsim trace: BUG: observer saw %d msgs / %d bytes, stats %d / %d\n",
			met.TotalMessages(), met.TotalBytes(), st.TotalMessages(), st.TotalBytes())
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"pccsim trace: %s: %d events (%d retained), %d msgs / %d bytes (matches stats), %d delegations (%d complete), avg %.2f hops\n",
		*wl, es.Total(), len(es.Events()), met.TotalMessages(), met.TotalBytes(),
		met.Delegations, met.CompleteDelegations(), met.AvgHops())
	return 0
}

// runOn builds the workload and executes it on an existing machine (so an
// observer or tracer can be attached first).
func runOn(m *pccsim.Machine, wl string, nodes, scale, iters int) (*pccsim.Stats, error) {
	prog, err := pccsim.BuildWorkload(wl, pccsim.WorkloadParams{Nodes: nodes, Scale: scale, Iters: iters})
	if err != nil {
		return nil, err
	}
	return m.Run(prog)
}
