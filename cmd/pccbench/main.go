// Command pccbench regenerates the paper's evaluation: every table and
// figure, selected with -exp. See DESIGN.md for the experiment index.
//
//	pccbench -exp fig7                  # the headline comparison
//	pccbench -exp all -scale 2          # everything at double problem size
//	pccbench -exp all -parallel 8       # eight simulation workers
//	pccbench -exp all -progress         # per-cell progress on stderr
//	pccbench -config nightly.json       # flag defaults from a JSON file
//	pccbench -exp fig7 -trace-out t.json  # also export a Perfetto trace
//
// Independent simulation cells run concurrently on a worker pool
// (default GOMAXPROCS; -parallel overrides) and identical cells recurring
// across figures are simulated once per invocation. Output is
// byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"pccsim"
	"pccsim/internal/cli"
	"pccsim/internal/core"
	"pccsim/internal/harness"
	"pccsim/internal/perf"
	"pccsim/internal/protocol"
	"pccsim/internal/runner"
)

// csvExperiments lists the experiments with a CSV writer, in the
// experiment index's order.
var csvExperiments = []string{"table3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation", "compare"}

func main() {
	fs := flag.NewFlagSet("pccbench", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment: table1|table2|table3|fig7|fig8|fig9|fig10|fig11|fig12|ablation|extensions|related|compare|all")
	compare := fs.Bool("compare", false, "shorthand for -exp compare: the head-to-head protocol bake-off")
	mcheckBench := fs.Bool("mcheck", false, "benchmark the model checker's exploration engine instead of running experiments")
	nodes := fs.Int("nodes", 16, "processor count")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	iters := fs.Int("iters", 0, "workload iteration override (0 = defaults)")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "engine shards per simulated machine (0 = single engine)")
	deterministic := fs.Bool("deterministic", false, "with -shards: serial round-robin shard scheduler (bit-for-bit reference mode)")
	adaptive := fs.Bool("adaptive-windows", false, "with -shards: widen conservative windows while no cross-shard traffic is in flight (identical results, fewer barriers)")
	progress := fs.Bool("progress", false, "report per-cell start/finish on stderr")
	format := fs.String("format", "table", "output format: table|csv|json (csv supports "+joinList(csvExperiments)+"; json runs everything)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := fs.String("trace-out", "", "also run one observed cell and write a Perfetto trace to this file")
	traceWl := fs.String("trace-workload", "em3d", "workload of the observed cell (-trace-out)")
	protoName := fs.String("protocol", "", "coherence protocol of the observed cell (-trace-out); mechanisms degrade to the protocol's capabilities (default adaptive)")
	if err := cli.Parse(fs, os.Args[1:]); err != nil {
		fail(err)
	}
	if *compare {
		*exp = "compare"
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // flush accumulated allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fail(err)
			}
		}()
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, *traceWl, *protoName, *nodes, *scale, *iters); err != nil {
			fail(err)
		}
	}

	if *mcheckBench {
		if err := runMCheckBench(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	opts := harness.Options{
		Nodes: *nodes, Scale: *scale, Iters: *iters, Parallel: *parallel,
		Shards: *shards, Deterministic: *deterministic, AdaptiveWindows: *adaptive,
	}
	if *progress {
		opts.Progress = progressPrinter()
	}
	out := os.Stdout
	sess := harness.NewSession(opts)

	switch *format {
	case "json":
		rep, err := harness.RunAll(opts)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteJSON(out); err != nil {
			fail(err)
		}
		return
	case "csv":
		var err error
		switch *exp {
		case "table3":
			var dist map[string][5]float64
			if dist, err = sess.Table3(); err == nil {
				err = harness.WriteTable3CSV(out, dist)
			}
		case "fig7":
			var rows []harness.Row
			if rows, err = sess.Fig7(); err == nil {
				err = harness.WriteFig7CSV(out, rows)
			}
		case "fig8":
			var rows []harness.Fig8Row
			if rows, err = sess.Fig8(); err == nil {
				err = harness.WriteFig8CSV(out, rows)
			}
		case "fig9":
			var rows []harness.Fig9Row
			if rows, err = sess.Fig9(); err == nil {
				err = harness.WriteFig9CSV(out, rows)
			}
		case "fig10":
			var rows []harness.Fig10Row
			if rows, err = sess.Fig10(); err == nil {
				err = harness.WriteFig10CSV(out, rows)
			}
		case "fig11":
			var rows []harness.SweepRow
			if rows, err = sess.Fig11(); err == nil {
				err = harness.WriteSweepCSV(out, rows)
			}
		case "fig12":
			var rows []harness.SweepRow
			if rows, err = sess.Fig12(); err == nil {
				err = harness.WriteSweepCSV(out, rows)
			}
		case "ablation":
			var rows []harness.AblationRow
			if rows, err = sess.Ablation(); err == nil {
				err = harness.WriteAblationCSV(out, rows)
			}
		case "compare":
			var rows []harness.CompareRow
			if rows, err = sess.Compare(); err == nil {
				err = harness.WriteCompareCSV(out, rows)
			}
		default:
			fmt.Fprintf(os.Stderr, "pccbench: no CSV writer for experiment %q; csv supports: %s\n",
				*exp, joinList(csvExperiments))
			os.Exit(2)
		}
		if err != nil {
			fail(err)
		}
		return
	case "table":
	default:
		fmt.Fprintf(os.Stderr, "pccbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	run := func(name string) error {
		switch name {
		case "table1":
			fmt.Fprintln(out, "== Table 1: system configuration (large config shown) ==")
			cfg := core.DefaultConfig().With(core.WithRAC(1024), core.WithDelegation(1024), core.WithSpeculativeUpdates(0))
			cfg.Nodes = *nodes
			harness.PrintTable1(out, cfg)
		case "table2":
			fmt.Fprintln(out, "== Table 2: applications and data sets ==")
			harness.PrintTable2(out, opts)
		case "table3":
			dist, err := sess.Table3()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Table 3: number of consumers in producer-consumer patterns ==")
			harness.PrintTable3(out, dist)
		case "fig7":
			rows, err := sess.Fig7()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Figure 7: speedup, network messages, remote misses ==")
			harness.PrintFig7(out, rows)
		case "fig8":
			rows, err := sess.Fig8()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Figure 8: equal silicon area (smarter vs larger caches) ==")
			harness.PrintFig8(out, rows)
		case "fig9":
			rows, err := sess.Fig9()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Figure 9: sensitivity to intervention delay ==")
			harness.PrintFig9(out, rows)
		case "fig10":
			rows, err := sess.Fig10()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Figure 10: sensitivity to network hop latency (Appbt) ==")
			harness.PrintFig10(out, rows)
		case "fig11":
			rows, err := sess.Fig11()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Figure 11: sensitivity to delegate cache size (MG) ==")
			harness.PrintSweep(out, rows)
		case "fig12":
			rows, err := sess.Fig12()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Figure 12: sensitivity to RAC size (Appbt) ==")
			harness.PrintSweep(out, rows)
		case "ablation":
			rows, err := sess.Ablation()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Ablation: delegation-only vs delegation+updates (§3.2) ==")
			harness.PrintAblation(out, rows)
		case "extensions":
			rows, err := sess.Extensions()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== §5 extensions: adaptive delay, 2-writer detector, accuracy bound ==")
			harness.PrintExtensions(out, rows)
		case "related":
			rows, err := sess.RelatedWork()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Related work: dynamic self-invalidation vs delegation+updates ==")
			harness.PrintRelated(out, rows)
		case "compare":
			rows, err := sess.Compare()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Protocol bake-off: every registered protocol, head to head ==")
			harness.PrintCompare(out, rows)
		default:
			fmt.Fprintf(os.Stderr, "pccbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(out)
		return nil
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "table2", "table3", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "ablation", "extensions", "related", "compare"} {
			if err := run(e); err != nil {
				fail(err)
			}
		}
		return
	}
	if err := run(*exp); err != nil {
		fail(err)
	}
}

// runMCheckBench prints the model checker's exploration-throughput stats
// — the same measurement pccperf -mcheck-sweep records in BENCH_pr9.json:
// the serial map-based checker, the work-stealing engine at several
// worker counts (state counts verified identical), and one canonical run
// showing the symmetry-reduction factor.
func runMCheckBench(out *os.File) error {
	rep, err := perf.RunMCheckBench(perf.MCheckWorkerCounts(), nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== model checker: exploration throughput (%s, %d CPUs) ==\n", rep.Config, rep.CPUs)
	for _, c := range rep.Cells {
		label := c.Mode
		switch {
		case c.Canonical:
			label = "engine canonical"
		case c.Mode == "engine":
			label = fmt.Sprintf("engine workers=%d", c.Workers)
		}
		fmt.Fprintf(out, "  %-20s states=%-8d states/s=%-9.0f dedup=%.3f peak-frontier=%d",
			label, c.States, c.StatesPerSec, c.DedupRatio, c.PeakFrontier)
		if c.Speedup > 0 {
			fmt.Fprintf(out, " speedup=%.2fx match=%v", c.Speedup, c.MatchesSerial)
		}
		if c.Reduction > 0 {
			fmt.Fprintf(out, " reduction=%.2fx", c.Reduction)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// writeTrace runs one observed cell — the named workload under the named
// protocol, on the full mechanism set the protocol's capabilities allow
// (the paper's 32K-RAC / 32-entry configuration for adaptive) — and
// exports its event stream as Perfetto JSON. The observed run is separate
// from the experiment cells, whose outputs stay byte-identical.
func writeTrace(path, workloadName, protoName string, nodes, scale, iters int) error {
	p, err := protocol.Lookup(protoName)
	if err != nil {
		return err
	}
	cfg := harness.CompareConfig(pccsim.DefaultConfig(), p)
	cfg.Nodes = nodes
	m, err := pccsim.New(cfg)
	if err != nil {
		return err
	}
	es := m.Observe(1 << 18)
	prog, err := pccsim.BuildWorkload(workloadName,
		pccsim.WorkloadParams{Nodes: nodes, Scale: scale, Iters: iters})
	if err != nil {
		return err
	}
	st, err := m.Run(prog)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := es.WritePerfetto(f); err != nil {
		return err
	}
	met := es.Metrics()
	fmt.Fprintf(os.Stderr, "pccbench: trace %s: %d events, %d msgs / %d bytes (stats: %d / %d) -> %s\n",
		workloadName, es.Total(), met.TotalMessages(), met.TotalBytes(),
		st.TotalMessages(), st.TotalBytes(), path)
	return f.Close()
}

// progressPrinter reports cell lifecycle events on stderr. It is called
// from multiple simulation workers; each event prints as one atomic line.
func progressPrinter() runner.ProgressFunc {
	var seq atomic.Uint64
	return func(ev runner.Event) {
		n := seq.Add(1)
		switch {
		case ev.Err != nil:
			fmt.Fprintf(os.Stderr, "[%4d] %-40s FAILED: %v\n", n, ev.Label, ev.Err)
		case ev.Cached:
			fmt.Fprintf(os.Stderr, "[%4d] %-40s cached\n", n, ev.Label)
		case ev.Done:
			fmt.Fprintf(os.Stderr, "[%4d] %-40s done: %d events in %v\n",
				n, ev.Label, ev.Events, ev.Wall.Round(time.Millisecond))
		default:
			fmt.Fprintf(os.Stderr, "[%4d] %-40s start\n", n, ev.Label)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pccbench:", err)
	os.Exit(1)
}

func joinList(items []string) string {
	out := ""
	for i, s := range items {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
