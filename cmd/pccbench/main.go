// Command pccbench regenerates the paper's evaluation: every table and
// figure, selected with -exp. See DESIGN.md for the experiment index.
//
//	pccbench -exp fig7            # the headline comparison
//	pccbench -exp all -scale 2    # everything at double problem size
package main

import (
	"flag"
	"fmt"
	"os"

	"pccsim/internal/core"
	"pccsim/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|table3|fig7|fig8|fig9|fig10|fig11|fig12|ablation|extensions|related|all")
	nodes := flag.Int("nodes", 16, "processor count")
	scale := flag.Int("scale", 1, "workload problem-size multiplier")
	iters := flag.Int("iters", 0, "workload iteration override (0 = defaults)")
	format := flag.String("format", "table", "output format: table|csv|json (csv supports fig7/fig9/fig10/fig11/fig12; json runs everything)")
	flag.Parse()

	opts := harness.Options{Nodes: *nodes, Scale: *scale, Iters: *iters}
	out := os.Stdout

	switch *format {
	case "json":
		rep := harness.RunAll(opts)
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			os.Exit(1)
		}
		return
	case "csv":
		var err error
		switch *exp {
		case "fig7":
			err = harness.WriteFig7CSV(out, harness.Fig7(opts))
		case "fig9":
			err = harness.WriteFig9CSV(out, harness.Fig9(opts))
		case "fig10":
			err = harness.WriteFig10CSV(out, harness.Fig10(opts))
		case "fig11":
			err = harness.WriteSweepCSV(out, harness.Fig11(opts))
		case "fig12":
			err = harness.WriteSweepCSV(out, harness.Fig12(opts))
		default:
			err = fmt.Errorf("no CSV writer for experiment %q", *exp)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			os.Exit(1)
		}
		return
	case "table":
	default:
		fmt.Fprintf(os.Stderr, "pccbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	run := func(name string) {
		switch name {
		case "table1":
			fmt.Fprintln(out, "== Table 1: system configuration (large config shown) ==")
			cfg := core.DefaultConfig().WithMechanisms(1024*1024, 1024, true)
			cfg.Nodes = *nodes
			harness.PrintTable1(out, cfg)
		case "table2":
			fmt.Fprintln(out, "== Table 2: applications and data sets ==")
			harness.PrintTable2(out, opts)
		case "table3":
			fmt.Fprintln(out, "== Table 3: number of consumers in producer-consumer patterns ==")
			harness.PrintTable3(out, harness.Table3(opts))
		case "fig7":
			fmt.Fprintln(out, "== Figure 7: speedup, network messages, remote misses ==")
			harness.PrintFig7(out, harness.Fig7(opts))
		case "fig8":
			fmt.Fprintln(out, "== Figure 8: equal silicon area (smarter vs larger caches) ==")
			harness.PrintFig8(out, harness.Fig8(opts))
		case "fig9":
			fmt.Fprintln(out, "== Figure 9: sensitivity to intervention delay ==")
			harness.PrintFig9(out, harness.Fig9(opts))
		case "fig10":
			fmt.Fprintln(out, "== Figure 10: sensitivity to network hop latency (Appbt) ==")
			harness.PrintFig10(out, harness.Fig10(opts))
		case "fig11":
			fmt.Fprintln(out, "== Figure 11: sensitivity to delegate cache size (MG) ==")
			harness.PrintSweep(out, harness.Fig11(opts))
		case "fig12":
			fmt.Fprintln(out, "== Figure 12: sensitivity to RAC size (Appbt) ==")
			harness.PrintSweep(out, harness.Fig12(opts))
		case "ablation":
			fmt.Fprintln(out, "== Ablation: delegation-only vs delegation+updates (§3.2) ==")
			harness.PrintAblation(out, harness.Ablation(opts))
		case "extensions":
			fmt.Fprintln(out, "== §5 extensions: adaptive delay, 2-writer detector, accuracy bound ==")
			harness.PrintExtensions(out, harness.Extensions(opts))
		case "related":
			fmt.Fprintln(out, "== Related work: dynamic self-invalidation vs delegation+updates ==")
			harness.PrintRelated(out, harness.RelatedWork(opts))
		default:
			fmt.Fprintf(os.Stderr, "pccbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(out)
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "table2", "table3", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "ablation", "extensions", "related"} {
			run(e)
		}
		return
	}
	run(*exp)
}
