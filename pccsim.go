// Package pccsim is a simulator of the adaptive cache coherence protocol of
// Cheng, Carter and Dai, "An Adaptive Cache Coherence Protocol Optimized
// for Producer-Consumer Sharing" (HPCA 2007).
//
// It models a 16-node SGI-style cc-NUMA multiprocessor — fat-tree
// interconnect, per-node L1/L2 caches, directory-based write-invalidate
// coherence with NACK/retry — extended with the paper's three mechanisms:
// a producer-consumer sharing detector in the directory cache, directory
// delegation to the producer node, and speculative updates driven by
// delayed interventions that land in remote access caches.
//
// Quick start:
//
//	cfg := pccsim.DefaultConfig().WithMechanisms(32*1024, 32, true)
//	st, err := pccsim.RunWorkload(cfg, "em3d", pccsim.WorkloadParams{Nodes: cfg.Nodes})
//	fmt.Println(st.ExecCycles, st.RemoteMisses())
//
// Custom programs are built from per-node operation streams:
//
//	prog := pccsim.NewProgram(cfg.Nodes)
//	prog.Store(0, 0x1000)  // node 0 produces
//	prog.Barrier()
//	prog.Load(1, 0x1000)   // node 1 consumes
//	m, _ := pccsim.NewMachine(cfg)
//	st, _ := m.Run(prog)
package pccsim

import (
	"fmt"
	"io"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/msg"
	"pccsim/internal/node"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
	"pccsim/internal/trace"
	"pccsim/internal/workload"
)

// Config describes the simulated machine; see DefaultConfig for the
// paper's Table 1 parameters.
type Config = core.Config

// Stats holds the counters of one run; see its methods for the derived
// metrics the paper reports (remote misses, traffic, update accuracy).
type Stats = stats.Stats

// WorkloadParams sizes a benchmark build.
type WorkloadParams = workload.Params

// Addr is a physical byte address.
type Addr = msg.Addr

// Time is a duration in 2 GHz processor cycles.
type Time = sim.Time

// NoIntervention disables the delayed intervention (the "infinite delay"
// point of the paper's Figure 9).
const NoIntervention = core.NoIntervention

// DefaultConfig returns the Table 1 baseline system (no RAC, no
// delegation, no updates). Use Config.WithMechanisms to enable the paper's
// hardware.
func DefaultConfig() Config { return core.DefaultConfig() }

// Workloads lists the seven benchmark generators in the paper's order.
func Workloads() []string {
	all := workload.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// Machine is a ready-to-run simulated multiprocessor. A Machine runs one
// program; build a fresh one per experiment so caches start cold.
type Machine struct {
	inner *node.Machine
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	m, err := node.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{inner: m}, nil
}

// TraceRecorder captures the machine's coherence-message timeline for
// debugging; see Machine.Trace.
type TraceRecorder struct {
	inner *trace.Recorder
}

// Dump writes the retained message timeline.
func (t *TraceRecorder) Dump(w io.Writer) { t.inner.Dump(w) }

// DumpStories writes per-line lifecycle summaries (message counts,
// delegation history).
func (t *TraceRecorder) DumpStories(w io.Writer) { t.inner.DumpStories(w) }

// Total reports how many messages were recorded.
func (t *TraceRecorder) Total() uint64 { return t.inner.Total() }

// Trace attaches a message recorder keeping the most recent capacity
// events. line restricts recording to one cache line (0 = all lines).
// Call before Run.
func (m *Machine) Trace(capacity int, line Addr) *TraceRecorder {
	var f *trace.Filter
	if line != 0 {
		f = &trace.Filter{Addr: line, Node: -1}
	}
	r := trace.NewRecorder(capacity, f)
	r.Attach(m.inner.Sys.Net)
	return &TraceRecorder{inner: r}
}

// Run executes the program to completion and returns its statistics.
func (m *Machine) Run(p *Program) (*Stats, error) {
	if len(p.ops) != m.inner.Sys.Cfg.Nodes {
		return nil, fmt.Errorf("pccsim: program built for %d nodes, machine has %d",
			len(p.ops), m.inner.Sys.Cfg.Nodes)
	}
	streams := make([]cpu.Stream, len(p.ops))
	for i := range p.ops {
		streams[i] = &cpu.SliceStream{Ops: p.ops[i]}
	}
	return m.inner.Run(streams)
}

// SynthParams parameterizes BuildSynthetic; see workload.SynthParams.
type SynthParams = workload.SynthParams

// DefaultSynthParams returns a communication-heavy synthetic shape.
func DefaultSynthParams(nodes int) SynthParams { return workload.DefaultSynthParams(nodes) }

// BuildSynthetic constructs a generic producer-consumer program with
// explicit knobs for working-set size, consumer-set size, remote-home
// fraction and compute intensity — the generalization of the seven fixed
// benchmarks, for exploring the mechanisms on arbitrary sharing shapes.
func BuildSynthetic(p SynthParams) (*Program, error) {
	ops, err := workload.Synthetic(p)
	if err != nil {
		return nil, err
	}
	return &Program{ops: ops}, nil
}

// BuildWorkload constructs the named benchmark as a Program, for running
// on a Machine you configure yourself (e.g. with a tracer attached).
func BuildWorkload(name string, p WorkloadParams) (*Program, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("pccsim: unknown workload %q (have %v)", name, Workloads())
	}
	if p.Nodes <= 0 {
		return nil, fmt.Errorf("pccsim: BuildWorkload needs WorkloadParams.Nodes")
	}
	return &Program{ops: w.Build(p)}, nil
}

// RunWorkload builds the named benchmark and runs it on a fresh machine.
func RunWorkload(cfg Config, name string, p WorkloadParams) (*Stats, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("pccsim: unknown workload %q (have %v)", name, Workloads())
	}
	if p.Nodes == 0 {
		p.Nodes = cfg.Nodes
	}
	if p.Nodes != cfg.Nodes {
		return nil, fmt.Errorf("pccsim: workload sized for %d nodes, config has %d", p.Nodes, cfg.Nodes)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(&Program{ops: w.Build(p)})
}

// Program is a per-node sequence of memory operations, compute delays and
// barriers — the unit a Machine executes.
type Program struct {
	ops   [][]cpu.Op
	barID int
}

// NewProgram creates an empty program over the given node count.
func NewProgram(nodes int) *Program {
	return &Program{ops: make([][]cpu.Op, nodes)}
}

// Nodes returns the program's node count.
func (p *Program) Nodes() int { return len(p.ops) }

// Len returns the total operation count across nodes.
func (p *Program) Len() int {
	n := 0
	for _, s := range p.ops {
		n += len(s)
	}
	return n
}

// Load appends a blocking read of addr on node n.
func (p *Program) Load(n int, addr Addr) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Load, Addr: addr})
}

// Store appends a buffered write of addr on node n.
func (p *Program) Store(n int, addr Addr) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Store, Addr: addr})
}

// Compute appends a pure-compute delay on node n.
func (p *Program) Compute(n int, cycles Time) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Compute, Cycles: cycles})
}

// Barrier appends a global barrier across every node.
func (p *Program) Barrier() {
	id := p.barID
	p.barID++
	for n := range p.ops {
		p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Barrier, Bar: id})
	}
}
