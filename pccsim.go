// Package pccsim is a simulator of the adaptive cache coherence protocol of
// Cheng, Carter and Dai, "An Adaptive Cache Coherence Protocol Optimized
// for Producer-Consumer Sharing" (HPCA 2007).
//
// It models a 16-node SGI-style cc-NUMA multiprocessor — fat-tree
// interconnect, per-node L1/L2 caches, directory-based write-invalidate
// coherence with NACK/retry — extended with the paper's three mechanisms:
// a producer-consumer sharing detector in the directory cache, directory
// delegation to the producer node, and speculative updates driven by
// delayed interventions that land in remote access caches.
//
// # Configuring a machine
//
// DefaultConfig is the paper's Table 1 baseline. The mechanisms are
// enabled with functional options, either at machine construction or by
// deriving a Config:
//
//	m, err := pccsim.New(pccsim.DefaultConfig(),
//	    pccsim.WithRAC(32),               // 32 KB remote access cache
//	    pccsim.WithDelegation(32),        // 32-entry delegate cache
//	    pccsim.WithSpeculativeUpdates(0)) // updates, default 50-cycle delay
//
//	st, err := pccsim.RunWorkload(
//	    pccsim.DefaultConfig().With(pccsim.WithRAC(32), pccsim.WithDelegation(32)),
//	    "em3d", pccsim.WorkloadParams{})
//
// # Programs
//
// Custom programs are built from per-node operation streams:
//
//	prog := pccsim.NewProgram(cfg.Nodes)
//	prog.Store(0, 0x1000)  // node 0 produces
//	prog.Barrier()
//	prog.Load(1, 0x1000)   // node 1 consumes
//	m, _ := pccsim.New(cfg)
//	st, _ := m.Run(prog)
//
// # Observability
//
// Machine.Observe attaches a structured event stream before a run: every
// message injected into the fabric (with hop count and wire size), every
// miss with its MSHR occupancy and outcome class, and the full delegation
// lifecycle (detect → delegate → install → undelegate with the paper's
// §2.3.3 cause). The stream aggregates Metrics live — so totals are exact
// even after the event ring wraps — and exports Chrome/Perfetto trace
// JSON. With no observer attached the simulator pays one nil pointer
// check per potential event and allocates nothing; results are identical
// either way.
//
//	es := m.Observe(1 << 16)
//	st, _ := m.Run(prog)
//	es.WritePerfetto(file)           // open in ui.perfetto.dev
//	fmt.Println(es.Metrics().AvgHops())
//
// Machine.Trace remains the plain-text timeline view; it rides the same
// stream, and both may be attached at once.
//
// # Errors
//
// Failures are classified by sentinel: ErrUnknownWorkload (bad benchmark
// name), ErrUnknownProtocol (bad coherence-protocol name), ErrBadConfig
// (Config.Validate rejection), ErrRunaway (watchdog abort on a livelocked
// run; errors.As recovers the *RunawayError diagnostics). All are matched
// with errors.Is through any wrapping.
//
// # Protocols
//
// The directory's sharing policy is pluggable. Protocols lists the
// registered coherence protocols and WithProtocol selects one; the
// default, "adaptive", is the paper's protocol. "mesi" is the plain
// write-invalidate baseline, "hybrid" pushes updates to stable sharer
// sets (Dovgopol & Rosonke), and "dsi" is the dynamic self-invalidation
// related work. Config.Validate rejects mechanisms outside the selected
// protocol's capabilities (e.g. WithDelegation under "mesi").
package pccsim

import (
	"fmt"
	"io"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/msg"
	"pccsim/internal/node"
	"pccsim/internal/obs"
	"pccsim/internal/protocol"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
	"pccsim/internal/trace"
	"pccsim/internal/workload"
)

// Config describes the simulated machine; see DefaultConfig for the
// paper's Table 1 parameters.
type Config = core.Config

// Stats holds the counters of one run; see its methods for the derived
// metrics the paper reports (remote misses, traffic, update accuracy).
type Stats = stats.Stats

// WorkloadParams sizes a benchmark build.
type WorkloadParams = workload.Params

// Addr is a physical byte address.
type Addr = msg.Addr

// NodeID identifies one processor/hub node.
type NodeID = msg.NodeID

// Time is a duration in 2 GHz processor cycles.
type Time = sim.Time

// NoIntervention disables the delayed intervention (the "infinite delay"
// point of the paper's Figure 9).
const NoIntervention = core.NoIntervention

// Option mutates a Config; pass options to New or Config.With. Each
// option enables one of the paper's mechanisms.
type Option = core.Option

// WithRAC enables the remote access cache, sized in kilobytes (Figure 7
// uses 32).
func WithRAC(kiloBytes int) Option { return core.WithRAC(kiloBytes) }

// WithDelegation enables directory delegation with the given producer
// table size; requires WithRAC.
func WithDelegation(entries int) Option { return core.WithDelegation(entries) }

// WithSpeculativeUpdates enables speculative updates via delayed
// interventions. delay is the intervention interval in cycles (0 = keep
// the configured default of 50; NoIntervention = never fire). Requires
// delegation and a RAC.
func WithSpeculativeUpdates(delay Time) Option { return core.WithSpeculativeUpdates(delay) }

// WithSelfInvalidation selects the related-work self-invalidation
// baseline instead of delegation/updates.
func WithSelfInvalidation() Option { return core.WithSelfInvalidation() }

// WithAdaptiveDelay enables the §5 per-line learned intervention delay.
func WithAdaptiveDelay() Option { return core.WithAdaptiveDelay() }

// WithProtocol selects the coherence protocol by name; see Protocols for
// the registered set. The empty name keeps the default ("adaptive", the
// paper's protocol). New fails with ErrUnknownProtocol for names not in
// Protocols, and with ErrBadConfig when an enabled mechanism lies
// outside the selected protocol's capabilities.
func WithProtocol(name string) Option { return core.WithProtocol(name) }

// WithShards partitions the simulated machine into n engine shards run
// on worker goroutines, synchronized by conservative time windows (the
// fast scheduler). n <= 1 keeps the classic single engine; n must not
// exceed the node count. Sharded runs produce slightly different timings
// than unsharded ones, but the parallel and serial shard schedulers are
// guaranteed to agree with each other.
func WithShards(n int) Option { return core.WithShards(n) }

// WithDeterministicShards partitions like WithShards but keeps the
// serial round-robin scheduler: same shard topology, same results, one
// goroutine. This is the reference the fast mode is validated against
// and the mode to use when reproducing a parallel-run failure.
func WithDeterministicShards(n int) Option { return core.WithDeterministicShards(n) }

// WithAdaptiveWindows lets a sharded run widen its conservative windows
// while no cross-shard traffic is in flight, cutting the barrier count
// of compute-heavy phases without changing any simulated timing: results
// are identical with or without it, only scheduler overhead drops. A
// no-op without shards; growth is also suppressed under speculative
// updates and non-default barrier latencies (see core.Config.AdaptiveWindows).
func WithAdaptiveWindows() Option { return core.WithAdaptiveWindows() }

// Typed error classes; see the package comment's Errors section.
var (
	// ErrUnknownWorkload reports a benchmark name not in Workloads.
	ErrUnknownWorkload = workload.ErrUnknown
	// ErrUnknownProtocol reports a protocol name not in Protocols.
	ErrUnknownProtocol = protocol.ErrUnknown
	// ErrBadConfig reports a Config that fails validation.
	ErrBadConfig = core.ErrBadConfig
	// ErrRunaway reports a watchdog abort; errors.As against
	// *pccsim.RunawayError recovers the queue census.
	ErrRunaway = sim.ErrRunaway
)

// RunawayError carries the watchdog diagnostics of a run that exhausted
// its step budget (see Config.WatchdogSteps).
type RunawayError = sim.RunawayError

// DefaultConfig returns the Table 1 baseline system (no RAC, no
// delegation, no updates). Enable the paper's hardware with the With*
// options.
func DefaultConfig() Config { return core.DefaultConfig() }

// Workloads lists the seven benchmark generators in the paper's order.
func Workloads() []string {
	all := workload.All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// Protocols lists the registered coherence protocols in sorted order;
// pass a name to WithProtocol.
func Protocols() []string { return protocol.Names() }

// Machine is a ready-to-run simulated multiprocessor. A Machine runs one
// program; build a fresh one per experiment so caches start cold.
type Machine struct {
	inner *node.Machine
}

// New builds a machine from cfg with the options applied. It fails with
// ErrBadConfig if the resulting configuration is inconsistent (e.g.
// delegation without a RAC).
func New(cfg Config, opts ...Option) (*Machine, error) {
	m, err := node.New(cfg.With(opts...))
	if err != nil {
		return nil, err
	}
	return &Machine{inner: m}, nil
}

// NewMachine builds a machine from cfg. It is New without options, kept
// for existing callers.
func NewMachine(cfg Config) (*Machine, error) { return New(cfg) }

// Event is one structured protocol event; Kind says what happened and
// which of the fields carry meaning (see the Kind constants).
type Event = obs.Event

// Kind classifies an Event.
type Kind = obs.Kind

// Metrics aggregates every event ever emitted to a stream: traffic by
// message class, hop histogram, miss outcomes, MSHR peak, the delegation
// ledger and per-line timelines.
type Metrics = obs.Metrics

// Event kinds, re-exported for filtering in EventStream taps.
const (
	KindSend             = obs.KindSend
	KindMissStart        = obs.KindMissStart
	KindMissEnd          = obs.KindMissEnd
	KindPCDetect         = obs.KindPCDetect
	KindDelegate         = obs.KindDelegate
	KindDelegateInstall  = obs.KindDelegateInstall
	KindUndelegate       = obs.KindUndelegate
	KindUndelegateCommit = obs.KindUndelegateCommit
	KindIntervention     = obs.KindIntervention
	KindUpdatePush       = obs.KindUpdatePush
	KindUpdateHit        = obs.KindUpdateHit
	KindUpdateWaste      = obs.KindUpdateWaste
)

// EventStream is a live view of one machine's protocol events; see
// Machine.Observe.
type EventStream struct {
	sink *obs.Sink
}

// Events returns the retained event window in emission order.
func (e *EventStream) Events() []Event { return e.sink.Events() }

// Metrics returns the live aggregates; unlike Events they cover the
// whole run even when the ring has wrapped.
func (e *EventStream) Metrics() *Metrics { return &e.sink.M }

// Total reports how many events were emitted, including any that have
// already been overwritten in the ring.
func (e *EventStream) Total() uint64 { return e.sink.Total() }

// OnEvent registers fn to run on every event as it is emitted, after any
// previously registered function. The callback runs inside the simulation
// hot path: keep it allocation-light.
func (e *EventStream) OnEvent(fn func(Event)) {
	prev := e.sink.Tap
	if prev == nil {
		e.sink.Tap = fn
		return
	}
	e.sink.Tap = func(ev Event) { prev(ev); fn(ev) }
}

// WritePerfetto exports the stream as Chrome trace-event JSON, loadable
// in ui.perfetto.dev or chrome://tracing: one track per node (messages,
// misses, MSHR occupancy counters) and one per cache line (the
// delegation lifecycle). Timestamps are simulated cycles written into
// the microsecond field.
func (e *EventStream) WritePerfetto(w io.Writer) error {
	return obs.WritePerfetto(w, e.sink)
}

// Observe attaches a structured event stream retaining the most recent
// capacity events (capacity < 0 retains everything; 0 keeps metrics
// only). Call before Run. Attaching an observer never changes simulation
// results — only records them.
func (m *Machine) Observe(capacity int) *EventStream {
	s := obs.NewSink(capacity)
	m.inner.Sys.AttachObs(s)
	return &EventStream{sink: s}
}

// TraceRecorder captures the machine's coherence-message timeline for
// debugging; see Machine.Trace.
type TraceRecorder struct {
	inner *trace.Recorder
}

// Dump writes the retained message timeline.
func (t *TraceRecorder) Dump(w io.Writer) { t.inner.Dump(w) }

// DumpStories writes per-line lifecycle summaries (message counts,
// delegation history).
func (t *TraceRecorder) DumpStories(w io.Writer) { t.inner.DumpStories(w) }

// Total reports how many messages were recorded.
func (t *TraceRecorder) Total() uint64 { return t.inner.Total() }

// Trace attaches a message recorder keeping the most recent capacity
// events. line restricts recording to one cache line (0 = all lines).
// Call before Run. Trace and Observe share the machine's event stream
// and compose in either order.
func (m *Machine) Trace(capacity int, line Addr) *TraceRecorder {
	var f *trace.Filter
	if line != 0 {
		f = &trace.Filter{Addr: line, Node: -1}
	}
	// A sharded machine emits into per-shard staging buffers that only
	// flow once a sink is attached through AttachObs; ensure one exists
	// so the recorder's tap sees the merged stream instead of silence.
	if m.inner.Sys.Sharded() && m.inner.Sys.Obs == nil {
		m.inner.Sys.AttachObs(obs.NewSink(0))
	}
	r := trace.NewRecorder(capacity, f)
	r.Attach(m.inner.Sys.Net)
	return &TraceRecorder{inner: r}
}

// Run executes the program to completion and returns its statistics.
func (m *Machine) Run(p *Program) (*Stats, error) {
	if len(p.ops) != m.inner.Sys.Cfg.Nodes {
		return nil, fmt.Errorf("pccsim: program built for %d nodes, machine has %d",
			len(p.ops), m.inner.Sys.Cfg.Nodes)
	}
	streams := make([]cpu.Stream, len(p.ops))
	for i := range p.ops {
		streams[i] = &cpu.SliceStream{Ops: p.ops[i]}
	}
	return m.inner.Run(streams)
}

// SynthParams parameterizes BuildSynthetic; see workload.SynthParams.
type SynthParams = workload.SynthParams

// DefaultSynthParams returns a communication-heavy synthetic shape.
func DefaultSynthParams(nodes int) SynthParams { return workload.DefaultSynthParams(nodes) }

// BuildSynthetic constructs a generic producer-consumer program with
// explicit knobs for working-set size, consumer-set size, remote-home
// fraction and compute intensity — the generalization of the seven fixed
// benchmarks, for exploring the mechanisms on arbitrary sharing shapes.
func BuildSynthetic(p SynthParams) (*Program, error) {
	ops, err := workload.Synthetic(p)
	if err != nil {
		return nil, err
	}
	return &Program{ops: ops}, nil
}

// BuildWorkload constructs the named benchmark as a Program, for running
// on a Machine you configure yourself (e.g. with an observer attached).
// Unknown names fail with ErrUnknownWorkload.
func BuildWorkload(name string, p WorkloadParams) (*Program, error) {
	w, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	if p.Nodes <= 0 {
		return nil, fmt.Errorf("pccsim: BuildWorkload needs WorkloadParams.Nodes")
	}
	return &Program{ops: w.Build(p)}, nil
}

// RunWorkload builds the named benchmark and runs it on a fresh machine.
// p.Nodes == 0 means cfg.Nodes. Unknown names fail with
// ErrUnknownWorkload.
func RunWorkload(cfg Config, name string, p WorkloadParams) (*Stats, error) {
	w, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	if p.Nodes == 0 {
		p.Nodes = cfg.Nodes
	}
	if p.Nodes != cfg.Nodes {
		return nil, fmt.Errorf("pccsim: workload sized for %d nodes, config has %d", p.Nodes, cfg.Nodes)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(&Program{ops: w.Build(p)})
}

// Program is a per-node sequence of memory operations, compute delays and
// barriers — the unit a Machine executes.
type Program struct {
	ops   [][]cpu.Op
	barID int
}

// NewProgram creates an empty program over the given node count.
func NewProgram(nodes int) *Program {
	return &Program{ops: make([][]cpu.Op, nodes)}
}

// Nodes returns the program's node count.
func (p *Program) Nodes() int { return len(p.ops) }

// Len returns the total operation count across nodes.
func (p *Program) Len() int {
	n := 0
	for _, s := range p.ops {
		n += len(s)
	}
	return n
}

// Load appends a blocking read of addr on node n.
func (p *Program) Load(n int, addr Addr) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Load, Addr: addr})
}

// Store appends a buffered write of addr on node n.
func (p *Program) Store(n int, addr Addr) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Store, Addr: addr})
}

// Compute appends a pure-compute delay on node n.
func (p *Program) Compute(n int, cycles Time) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Compute, Cycles: cycles})
}

// Barrier appends a global barrier across every node.
func (p *Program) Barrier() {
	id := p.barID
	p.barID++
	for n := range p.ops {
		p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Barrier, Bar: id})
	}
}
