// Package network models the system interconnect: a NUMALink-4-style
// fat-tree with eight children per non-leaf router (§3.1). Per the paper we
// do not model contention inside routers, but we do model hub port
// contention: each node's network interface serializes packets at a finite
// bandwidth. Message latency is the hop count between nodes (1 within a
// leaf router's group, 2 across the root) times the configurable hop
// latency, 100 processor cycles by default (50 ns at 2 GHz).
package network

import (
	"fmt"

	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Config holds interconnect timing parameters.
type Config struct {
	// Nodes is the number of hubs attached to the fabric.
	Nodes int
	// Radix is the number of children per non-leaf router (8 on
	// NUMALink-4).
	Radix int
	// HopLatency is the per-hop latency in processor cycles (Table 1:
	// 100 cycles = 50 ns).
	HopLatency sim.Time
	// LocalLatency is the hub-internal crossbar latency for messages a
	// node sends to itself (delegated home on the producer, RAC fills).
	LocalLatency sim.Time
	// PortBytesPerCycle is the NI serialization bandwidth in bytes per
	// processor cycle (Table 1: 16 B per hub cycle at 500 MHz hub /
	// 2 GHz core = 4 B per core cycle; we default to 8 to account for
	// the dual channels).
	PortBytesPerCycle int
}

// DefaultConfig mirrors Table 1 for a 16-node system.
func DefaultConfig() Config {
	return Config{
		Nodes:             16,
		Radix:             8,
		HopLatency:        100,
		LocalLatency:      20,
		PortBytesPerCycle: 8,
	}
}

// Handler receives delivered messages at a node.
type Handler func(*msg.Message)

// Verdict is a fault-injection decision about a message that reached its
// destination port (see Chaos).
type Verdict uint8

const (
	// Deliver hands the message to the node's handler (the normal path).
	Deliver Verdict = iota
	// Bounce converts a request into a NACK back to its requester without
	// the destination ever seeing it — the spurious-NACK fault. NACKs are
	// always a legal response to a request in this protocol (the requester
	// just retries), so bouncing perturbs timing and races but never
	// correctness. Non-request messages cannot be bounced; a Bounce
	// verdict for one is treated as Deliver.
	Bounce
	// Drop silently discards the message. Losing a coherence packet is
	// NOT a legal fault on a reliable fabric — Drop exists so tests can
	// inject known protocol bugs and prove the fuzzer catches them.
	Drop
)

// Chaos is the fault-injection hook: a deterministic adversary that
// perturbs message delivery. Both methods are called from the single
// simulation goroutine in event order, so a seeded implementation is fully
// deterministic. A nil Chaos (the default) costs one pointer check per
// message; the zero-fault path is otherwise untouched.
type Chaos interface {
	// Jitter returns extra in-flight cycles for m, sampled once when m is
	// injected. Returning 0 leaves the deterministic fat-tree timing.
	// Jitter delays one message without holding back later ones on the
	// same route, so it is also the bounded-reordering knob: messages can
	// overtake each other by at most the jitter bound.
	Jitter(now sim.Time, m *msg.Message) sim.Time
	// Verdict decides the fate of m as it reaches its destination.
	Verdict(now sim.Time, m *msg.Message) Verdict
}

// Network routes coherence messages between hubs with deterministic timing.
type Network struct {
	cfg      Config
	eng      *sim.Engine
	st       *stats.Stats
	handlers []Handler
	egress   []sim.Time // next cycle each node's output port is free
	ingress  []sim.Time // next cycle each node's input port is free
	inFlight int
	// Obs, when non-nil, receives a KindSend event for every packet
	// injected into the fabric, carrying its hop count and wire size.
	// Like Chaos, a nil Obs (the default) costs one pointer check per
	// message and nothing else.
	Obs *obs.Sink
	// Chaos, when non-nil, perturbs delivery for fault-injection runs.
	Chaos Chaos

	// Sharded-mode state (nil on a single-engine network): the shard
	// owning each node, and per-shard interconnect slices. See shard.go.
	shardOf []int
	sh      []*shardEnv
}

// New creates a network over eng collecting into st.
func New(eng *sim.Engine, cfg Config, st *stats.Stats) *Network {
	if cfg.Nodes <= 0 {
		panic("network: config needs at least one node")
	}
	if cfg.Radix < 2 {
		cfg.Radix = 2
	}
	if cfg.PortBytesPerCycle <= 0 {
		cfg.PortBytesPerCycle = 8
	}
	return &Network{
		cfg:      cfg,
		eng:      eng,
		st:       st,
		handlers: make([]Handler, cfg.Nodes),
		egress:   make([]sim.Time, cfg.Nodes),
		ingress:  make([]sim.Time, cfg.Nodes),
	}
}

// Register installs the delivery handler for node n. Every node must
// register before any message addressed to it is delivered.
func (n *Network) Register(id msg.NodeID, h Handler) {
	n.handlers[id] = h
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// InFlight reports the number of messages currently traveling (summed
// over shards in sharded mode, including staged mailbox entries).
func (n *Network) InFlight() int {
	if n.sh != nil {
		t := 0
		for _, e := range n.sh {
			t += e.inFlight
		}
		return t
	}
	return n.inFlight
}

// Hops returns the number of router-to-router hops between two nodes in
// the fat tree: 0 for a node to itself, 1 between nodes under the same leaf
// router, 2 through the root otherwise. (The paper's 16-node system has two
// leaf routers of eight nodes each.)
func (n *Network) Hops(a, b msg.NodeID) int {
	if a == b {
		return 0
	}
	if int(a)/n.cfg.Radix == int(b)/n.cfg.Radix {
		return 1
	}
	return 2
}

// Engine event opcodes for the two delivery stages (see Send). Scheduling
// through (handler, opcode, message) instead of a closure keeps the
// per-message event footprint flat and allocation free — message delivery
// is the simulation's single busiest scheduler.
const (
	opArrive  uint8 = iota // reserve the destination ingress port
	opDeliver              // hand the message to the node's handler
)

// serTime is the NI serialization time for m at the configured port width.
func (n *Network) serTime(m *msg.Message) sim.Time {
	return sim.Time((m.Bytes() + n.cfg.PortBytesPerCycle - 1) / n.cfg.PortBytesPerCycle)
}

// HandleMsgEvent advances a message through the delivery pipeline; it is
// the sim.MsgHandler the engine calls for events Send schedules.
func (n *Network) HandleMsgEvent(op uint8, m *msg.Message) {
	switch op {
	case opArrive:
		// Destination port reservation happens on arrival so that port
		// time reflects actual arrival order.
		eng := n.eng
		if n.sh != nil {
			eng = n.envAt(m.Dst).eng
		}
		ser := n.serTime(m)
		at := maxTime(eng.Now(), n.ingress[m.Dst])
		n.ingress[m.Dst] = at + ser
		eng.ScheduleMsg(at+ser, n, opDeliver, m)
	case opDeliver:
		n.deliver(m)
	}
}

// Send injects m into the fabric. Delivery is scheduled on the engine after
// serialization at the source port, hop latency, and serialization at the
// destination port. Messages between a node and itself use the hub-internal
// crossbar (LocalLatency) and skip the NI ports.
func (n *Network) Send(m *msg.Message) {
	if int(m.Dst) < 0 || int(m.Dst) >= n.cfg.Nodes {
		panic(fmt.Sprintf("network: message to invalid node: %s", m))
	}
	if n.sh != nil {
		n.sendSharded(m)
		return
	}
	n.st.RecordMsg(m)
	n.st.RecordHops(n.Hops(m.Src, m.Dst))
	now := n.eng.Now()
	if n.Obs != nil {
		n.Obs.Emit(obs.Event{
			At: now, Kind: obs.KindSend, Node: m.Src, Addr: m.Addr,
			Hops: uint8(n.Hops(m.Src, m.Dst)), Bytes: uint32(m.Bytes()), Msg: *m,
		})
	}
	n.inFlight++
	if m.Src == m.Dst {
		n.eng.ScheduleMsg(now+n.cfg.LocalLatency, n, opDeliver, m)
		return
	}
	ser := n.serTime(m)
	depart := maxTime(now, n.egress[m.Src])
	n.egress[m.Src] = depart + ser
	arrive := depart + ser + sim.Time(n.Hops(m.Src, m.Dst))*n.cfg.HopLatency
	if n.Chaos != nil {
		arrive += n.Chaos.Jitter(now, m)
	}
	n.eng.ScheduleMsg(arrive, n, opArrive, m)
}

func (n *Network) deliver(m *msg.Message) {
	// In sharded mode the destination shard's env supplies the clock,
	// fault injector and in-flight counter.
	eng, ch := n.eng, n.Chaos
	var e *shardEnv
	if n.sh != nil {
		e = n.envAt(m.Dst)
		eng, ch = e.eng, e.chaos
	}
	if ch != nil {
		switch ch.Verdict(eng.Now(), m) {
		case Bounce:
			if m.Type.IsRequest() {
				// Reuse the in-flight packet as the NACK: same address,
				// requester and transaction number, source and
				// destination swapped to the bouncing port and the
				// requester. The requester cannot tell this apart from
				// a busy-home NACK, so it retries — the legal
				// resolution of every race in this protocol.
				n.decInFlight(e)
				from := m.Dst
				m.Type = msg.Nack
				m.Src, m.Dst = from, m.Requester
				n.Send(m)
				return
			}
		case Drop:
			n.decInFlight(e)
			eng.FreeMsg(m)
			return
		}
	}
	n.decInFlight(e)
	h := n.handlers[m.Dst]
	if h == nil {
		panic(fmt.Sprintf("network: no handler registered for node %d (msg %s)", m.Dst, m))
	}
	h(m)
}

// decInFlight retires one traveling message: on the destination shard's
// counter when sharded (e non-nil), else the global one.
func (n *Network) decInFlight(e *shardEnv) {
	if e != nil {
		e.inFlight--
		return
	}
	n.inFlight--
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
