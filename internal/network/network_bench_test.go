package network

import (
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// BenchmarkNetworkSend measures the full remote delivery pipeline —
// Send, port reservation at arrival, and handler delivery — with pooled
// messages, the way the hubs drive it. The handler returns each message to
// the engine's free list, so steady state allocates nothing.
func BenchmarkNetworkSend(b *testing.B) {
	eng := sim.NewEngine()
	st := stats.New()
	cfg := DefaultConfig()
	n := New(eng, cfg, st)
	for id := 0; id < cfg.Nodes; id++ {
		n.Register(msg.NodeID(id), func(m *msg.Message) { eng.FreeMsg(m) })
	}
	// Warm the message pool.
	for i := 0; i < 64; i++ {
		eng.FreeMsg(&msg.Message{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := eng.NewMsg()
		*m = msg.Message{
			Type: msg.GetShared, Src: msg.NodeID(i & 7), Dst: msg.NodeID(8 + i&7),
			Addr: msg.Addr(i) * 128, Requester: msg.NodeID(i & 7),
		}
		n.Send(m)
		for eng.Pending() > 0 {
			eng.Step()
		}
	}
}

// BenchmarkNetworkSendLocal measures the crossbar self-delivery path.
func BenchmarkNetworkSendLocal(b *testing.B) {
	eng := sim.NewEngine()
	st := stats.New()
	cfg := DefaultConfig()
	n := New(eng, cfg, st)
	for id := 0; id < cfg.Nodes; id++ {
		n.Register(msg.NodeID(id), func(m *msg.Message) { eng.FreeMsg(m) })
	}
	for i := 0; i < 64; i++ {
		eng.FreeMsg(&msg.Message{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := eng.NewMsg()
		*m = msg.Message{Type: msg.Update, Src: 3, Dst: 3, Addr: msg.Addr(i) * 128}
		n.Send(m)
		for eng.Pending() > 0 {
			eng.Step()
		}
	}
}

// TestNetworkSendPooledZeroAlloc pins down the allocation-free claim for
// the pooled delivery path benchmarked above.
func TestNetworkSendPooledZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New()
	cfg := DefaultConfig()
	n := New(eng, cfg, st)
	for id := 0; id < cfg.Nodes; id++ {
		n.Register(msg.NodeID(id), func(m *msg.Message) { eng.FreeMsg(m) })
	}
	for i := 0; i < 64; i++ {
		eng.FreeMsg(&msg.Message{})
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		m := eng.NewMsg()
		*m = msg.Message{
			Type: msg.GetShared, Src: msg.NodeID(i & 7), Dst: msg.NodeID(8 + i&7),
			Addr: msg.Addr(i) * 128,
		}
		i++
		n.Send(m)
		for eng.Pending() > 0 {
			eng.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled Send+deliver allocated %v allocs/op, want 0", allocs)
	}
}
