// Sharded operation: the network is the only layer that moves work
// between shards, so it owns the cross-shard mailboxes and the lookahead
// bound that makes the group's conservative windows sound.
//
// Every node belongs to exactly one shard (shardOf). Node-indexed port
// state (egress, ingress) needs no synchronization: egress[i] is touched
// only when node i sends and ingress[i] only when a message arrives at
// node i, and both happen on node i's owning shard. Everything else that
// a Send touches is per-shard (stats, obs buffer, chaos, inFlight,
// outbound mailboxes), so the fast path takes no locks at all.
//
// A cross-shard message is priced exactly like an intra-shard one — the
// departure time, port reservations and hop latency are computed at Send
// on the source shard — but instead of being scheduled into the remote
// engine immediately (a data race), it is staged in a per-(src,dst)
// mailbox lane. The group barrier drains every lane single-threaded in a
// fixed order (source-major, destination, staging order), so the
// sequence numbers the destination engine assigns are identical whether
// the preceding window ran serially or in parallel — this is what makes
// the two schedulers bit-for-bit equivalent at the same shard count.
package network

import (
	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// shardEnv is one shard's slice of the interconnect state. During a
// window it is read and written only by its owning shard's goroutine;
// at barriers, only by the coordinator.
type shardEnv struct {
	eng *sim.Engine
	st  *stats.Stats
	// obs, when non-nil, stages this shard's KindSend events (a
	// NewBuffer sink; the core layer merges them at barriers).
	obs *obs.Sink
	// chaos is this shard's fault injector: consulted for Jitter when
	// the shard's nodes send and for Verdict when they receive.
	chaos Chaos
	// inFlight is this shard's contribution to the global in-flight
	// count. Sends increment on the source shard and deliveries
	// decrement on the destination shard, so an individual counter can
	// go negative; only the sum is meaningful.
	inFlight int
	// mail[d] stages messages bound for shard d until the next barrier.
	mail [][]mailEntry
}

type mailEntry struct {
	at sim.Time
	m  *msg.Message
}

// NewSharded creates a network partitioned across grp's shards. shardOf
// maps every node to its owning shard; sts provides one stats collector
// per shard (per-shard so concurrent Sends never
// contend; the caller keeps the slice and folds it after the run). The group's lookahead must not exceed
// MinLookahead(cfg, shardOf); NewSharded registers the mailbox drain as
// a barrier hook on grp.
func NewSharded(grp *sim.Group, cfg Config, shardOf []int, sts []*stats.Stats) *Network {
	if len(shardOf) != cfg.Nodes {
		panic("network: shardOf must map every node to a shard")
	}
	if len(sts) != grp.Shards() {
		panic("network: need one stats collector per shard")
	}
	n := New(grp.Engine(0), cfg, sts[0])
	// The single-engine fields stay nil in sharded mode; every path
	// that uses them branches through the per-shard env instead.
	n.eng, n.st = nil, nil
	n.shardOf = shardOf
	n.sh = make([]*shardEnv, grp.Shards())
	for i := range n.sh {
		n.sh[i] = &shardEnv{
			eng:  grp.Engine(i),
			st:   sts[i],
			mail: make([][]mailEntry, grp.Shards()),
		}
	}
	grp.OnBarrier(n.drainMail)
	return n
}

// Sharded reports whether the network runs over a shard group.
func (n *Network) Sharded() bool { return n.sh != nil }

// SetShardObs points each shard's send-side event emission at its
// staging buffer (obs.NewBuffer sinks). The caller owns the buffers and
// merges them into the user-facing sink at window barriers; the exported
// Obs field is ignored while sharded.
func (n *Network) SetShardObs(bufs []*obs.Sink) {
	for i, e := range n.sh {
		e.obs = bufs[i]
	}
}

// SetShardChaos installs shard s's fault injector. Each shard needs its
// own injector instance (its RNG and counters are touched from that
// shard's goroutine); the exported Chaos field is ignored while sharded.
func (n *Network) SetShardChaos(s int, c Chaos) { n.sh[s].chaos = c }

// envAt returns the shard env owning node id (sharded mode only).
func (n *Network) envAt(id msg.NodeID) *shardEnv { return n.sh[n.shardOf[id]] }

// MinLookahead returns the widest conservative window the fat-tree
// timing model permits for a node-to-shard partition: a lower bound on
// the latency of any cross-shard message. Hops are 1 inside a radix
// group and 2 across the root, and every packet serializes for at least
// one cycle at the source port, so the bound is minHops*HopLatency + 1:
// a message sent at time T can arrive no earlier than T + minHops*hop +
// 1, strictly after the window [T, T+minHops*hop] it was sent in.
func MinLookahead(cfg Config, shardOf []int) sim.Time {
	radix := cfg.Radix
	if radix < 2 {
		radix = 2
	}
	minHops := 2
	for base := 0; base < len(shardOf); base += radix {
		end := base + radix
		if end > len(shardOf) {
			end = len(shardOf)
		}
		for i := base + 1; i < end; i++ {
			if shardOf[i] != shardOf[base] {
				// A radix group split across shards: 1-hop messages
				// cross shards, tightening the window.
				minHops = 1
			}
		}
	}
	return sim.Time(minHops)*cfg.HopLatency + 1
}

// sendSharded is Send's sharded path: identical pricing, per-shard
// state, and a mailbox detour for cross-shard destinations.
func (n *Network) sendSharded(m *msg.Message) {
	src := n.shardOf[m.Src]
	e := n.sh[src]
	e.st.RecordMsg(m)
	e.st.RecordHops(n.Hops(m.Src, m.Dst))
	now := e.eng.Now()
	if e.obs != nil {
		e.obs.Emit(obs.Event{
			At: now, Kind: obs.KindSend, Node: m.Src, Addr: m.Addr,
			Hops: uint8(n.Hops(m.Src, m.Dst)), Bytes: uint32(m.Bytes()), Msg: *m,
		})
	}
	e.inFlight++
	if m.Src == m.Dst {
		e.eng.ScheduleMsg(now+n.cfg.LocalLatency, n, opDeliver, m)
		return
	}
	ser := n.serTime(m)
	depart := maxTime(now, n.egress[m.Src])
	n.egress[m.Src] = depart + ser
	arrive := depart + ser + sim.Time(n.Hops(m.Src, m.Dst))*n.cfg.HopLatency
	if e.chaos != nil {
		arrive += e.chaos.Jitter(now, m)
	}
	if dst := n.shardOf[m.Dst]; dst != src {
		e.mail[dst] = append(e.mail[dst], mailEntry{at: arrive, m: m})
		return
	}
	e.eng.ScheduleMsg(arrive, n, opArrive, m)
}

// drainMail moves every staged cross-shard message into its destination
// shard's engine. It runs at window barriers on the coordinator, with
// all shards parked, in a fixed order — so destination sequence numbers
// (and therefore event order) do not depend on how the previous window
// was executed.
func (n *Network) drainMail() {
	for _, e := range n.sh {
		for d := range e.mail {
			lane := e.mail[d]
			if len(lane) == 0 {
				continue
			}
			dst := n.sh[d].eng
			for i := range lane {
				dst.ScheduleMsg(lane[i].at, n, opArrive, lane[i].m)
				lane[i] = mailEntry{}
			}
			e.mail[d] = lane[:0]
		}
	}
}
