package network

import (
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

func newNet(t *testing.T, nodes int) (*sim.Engine, *Network, *stats.Stats) {
	t.Helper()
	eng := sim.NewEngine()
	st := stats.New()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	n := New(eng, cfg, st)
	return eng, n, st
}

func TestHopsFatTree(t *testing.T) {
	_, n, _ := newNet(t, 16)
	if n.Hops(3, 3) != 0 {
		t.Fatal("self hops should be 0")
	}
	if n.Hops(0, 7) != 1 {
		t.Fatal("same leaf group should be 1 hop")
	}
	if n.Hops(0, 8) != 2 {
		t.Fatal("cross-root should be 2 hops")
	}
	if n.Hops(8, 15) != 1 {
		t.Fatal("second leaf group should be 1 hop")
	}
}

func TestDeliveryLatency(t *testing.T) {
	eng, n, _ := newNet(t, 16)
	var deliveredAt sim.Time
	n.Register(8, func(m *msg.Message) { deliveredAt = eng.Now() })
	n.Register(0, func(m *msg.Message) {})
	m := &msg.Message{Type: msg.GetShared, Src: 0, Dst: 8}
	n.Send(m)
	eng.Run()
	// 32-byte header / 8 B/cycle = 4 cycles serialization each end,
	// 2 hops * 100 = 200 cycles.
	want := sim.Time(4 + 200 + 4)
	if deliveredAt != want {
		t.Fatalf("delivered at %d, want %d", deliveredAt, want)
	}
}

func TestLocalDeliveryUsesCrossbar(t *testing.T) {
	eng, n, _ := newNet(t, 4)
	var at sim.Time
	n.Register(2, func(m *msg.Message) { at = eng.Now() })
	n.Send(&msg.Message{Type: msg.Update, Src: 2, Dst: 2})
	eng.Run()
	if at != n.Config().LocalLatency {
		t.Fatalf("local delivery at %d, want %d", at, n.Config().LocalLatency)
	}
}

func TestPortContentionSerializes(t *testing.T) {
	eng, n, _ := newNet(t, 16)
	var times []sim.Time
	n.Register(1, func(m *msg.Message) { times = append(times, eng.Now()) })
	// Two max-size messages from node 0 at the same cycle must leave the
	// egress port back to back.
	n.Send(&msg.Message{Type: msg.SharedReply, Src: 0, Dst: 1})
	n.Send(&msg.Message{Type: msg.SharedReply, Src: 0, Dst: 1})
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(times))
	}
	ser := sim.Time((msg.HeaderBytes + msg.LineBytes) / 8) // 20 cycles
	if times[1]-times[0] != ser {
		t.Fatalf("second delivery %d cycles after first, want %d", times[1]-times[0], ser)
	}
}

func TestIngressContention(t *testing.T) {
	eng, n, _ := newNet(t, 16)
	var times []sim.Time
	n.Register(2, func(m *msg.Message) { times = append(times, eng.Now()) })
	// Messages from two different sources arrive at the same ingress.
	n.Send(&msg.Message{Type: msg.GetShared, Src: 0, Dst: 2})
	n.Send(&msg.Message{Type: msg.GetShared, Src: 1, Dst: 2})
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(times))
	}
	if times[0] == times[1] {
		t.Fatal("ingress port did not serialize simultaneous arrivals")
	}
}

func TestStatsRecorded(t *testing.T) {
	eng, n, st := newNet(t, 16)
	n.Register(5, func(m *msg.Message) {})
	n.Send(&msg.Message{Type: msg.GetExcl, Src: 0, Dst: 5})
	n.Send(&msg.Message{Type: msg.ExclReply, Src: 5, Dst: 0})
	n.Register(0, func(m *msg.Message) {})
	eng.Run()
	if st.TotalMessages() != 2 {
		t.Fatalf("TotalMessages = %d, want 2", st.TotalMessages())
	}
	if st.MsgCount[msg.GetExcl] != 1 || st.MsgCount[msg.ExclReply] != 1 {
		t.Fatal("per-type counts wrong")
	}
}

func TestInFlightTracking(t *testing.T) {
	eng, n, _ := newNet(t, 16)
	n.Register(1, func(m *msg.Message) {
		if n.InFlight() != 0 {
			t.Fatalf("InFlight = %d during delivery, want 0", n.InFlight())
		}
	})
	n.Send(&msg.Message{Type: msg.GetShared, Src: 0, Dst: 1})
	if n.InFlight() != 1 {
		t.Fatalf("InFlight = %d after send, want 1", n.InFlight())
	}
	eng.Run()
}

func TestObsSinkInvoked(t *testing.T) {
	eng, n, _ := newNet(t, 4)
	n.Register(1, func(m *msg.Message) {})
	n.Obs = obs.NewSink(16)
	n.Send(&msg.Message{Type: msg.GetShared, Src: 0, Dst: 1})
	eng.Run()
	if n.Obs.Total() != 1 {
		t.Fatalf("sink saw %d events, want 1", n.Obs.Total())
	}
	evs := n.Obs.Events()
	if len(evs) != 1 || evs[0].Kind != obs.KindSend || evs[0].Hops == 0 ||
		evs[0].Bytes != uint32((&msg.Message{Type: msg.GetShared}).Bytes()) {
		t.Fatalf("bad send event: %+v", evs)
	}
	if n.Obs.M.MsgCount[msg.GetShared] != 1 {
		t.Fatalf("metrics missed the send: %+v", n.Obs.M.MsgCount)
	}
}

func TestHopLatencyScaling(t *testing.T) {
	for _, hop := range []sim.Time{25, 50, 100, 200} {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.HopLatency = hop
		n := New(eng, cfg, stats.New())
		var at sim.Time
		n.Register(15, func(m *msg.Message) { at = eng.Now() })
		n.Send(&msg.Message{Type: msg.GetShared, Src: 0, Dst: 15})
		eng.Run()
		want := sim.Time(4) + 2*hop + 4
		if at != want {
			t.Fatalf("hop=%d: delivered at %d, want %d", hop, at, want)
		}
	}
}

// Property: all messages are delivered exactly once, to the right node,
// never before the minimum possible latency.
func TestPropertyDelivery(t *testing.T) {
	f := func(pairs []struct{ S, D uint8 }) bool {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		n := New(eng, cfg, stats.New())
		got := make([]int, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			id := msg.NodeID(i)
			n.Register(id, func(m *msg.Message) {
				if m.Dst != id {
					t.Errorf("node %d received message for %d", id, m.Dst)
				}
				got[id]++
			})
		}
		want := make([]int, cfg.Nodes)
		sent := 0
		for _, p := range pairs {
			src := msg.NodeID(int(p.S) % cfg.Nodes)
			dst := msg.NodeID(int(p.D) % cfg.Nodes)
			n.Send(&msg.Message{Type: msg.GetShared, Src: src, Dst: dst})
			want[dst]++
			sent++
		}
		eng.Run()
		if n.InFlight() != 0 {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: messages between the same (src, dst) pair are delivered in the
// order they were sent, regardless of sizes and interleaving with other
// traffic. The coherence protocol depends on this (invalidations must not
// overtake the updates pushed before them; replies must not overtake the
// interventions queued ahead — see internal/core and DESIGN.md §4).
func TestPropertyPairwiseFIFO(t *testing.T) {
	f := func(plan []struct {
		S, D  uint8
		Big   bool
		Burst uint8
	}) bool {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		n := New(eng, cfg, stats.New())
		type rec struct{ seq int }
		nextSeq := map[[2]msg.NodeID]int{}
		wantSeq := map[[2]msg.NodeID]int{}
		okAll := true
		for i := 0; i < cfg.Nodes; i++ {
			id := msg.NodeID(i)
			n.Register(id, func(m *msg.Message) {
				key := [2]msg.NodeID{m.Src, m.Dst}
				if int(m.Version) != wantSeq[key] {
					okAll = false
				}
				wantSeq[key]++
			})
		}
		// Issue sends in bursts at staggered times; Version carries the
		// per-pair sequence number.
		at := sim.Time(0)
		for _, p := range plan {
			src := msg.NodeID(int(p.S) % cfg.Nodes)
			dst := msg.NodeID(int(p.D) % cfg.Nodes)
			if src == dst {
				continue
			}
			ty := msg.GetShared
			if p.Big {
				ty = msg.SharedReply
			}
			burst := int(p.Burst%3) + 1
			for b := 0; b < burst; b++ {
				key := [2]msg.NodeID{src, dst}
				seq := nextSeq[key]
				nextSeq[key]++
				m := &msg.Message{Type: ty, Src: src, Dst: dst, Version: uint64(seq)}
				eng.Schedule(at, func() { n.Send(m) })
			}
			at += sim.Time(p.Burst % 7)
		}
		eng.Run()
		for key, want := range nextSeq {
			if wantSeq[key] != want {
				return false // lost messages
			}
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
