package msg

import "testing"

// TestVectorOpsZeroAlloc proves the core vector operations never allocate.
// The multi-word widening must not reintroduce allocations on the pooled
// message path: a Vector is a fixed-size array value, so Set/Clear/Or/
// AndNot/ClearLowest return copies on the stack and Only/Count/Lowest
// walk words in registers.
func TestVectorOpsZeroAlloc(t *testing.T) {
	v := Vector{}.Set(7)
	full := fullMap(16)
	wide := Vector{}.Set(3).Set(70).Set(200)
	var n NodeID
	var c int
	allocs := testing.AllocsPerRun(1000, func() {
		n = v.Only("zero-alloc bench")
		c = full.Count()
		c += wide.Or(v).AndNot(full).Count()
		for w := wide; !w.Empty(); w = w.ClearLowest() {
			n = w.Lowest()
		}
	})
	if allocs != 0 {
		t.Fatalf("vector ops allocated %v allocs/op, want 0", allocs)
	}
	if n != 200 || c != 16+2 {
		t.Fatalf("n=%d c=%d, want 200 and 18", n, c)
	}
}

func TestVectorLowest(t *testing.T) {
	if got := (Vector{}.Set(3).Set(9)).Lowest(); got != 3 {
		t.Fatalf("Lowest = %d, want 3", got)
	}
	// Iteration idiom visits members in ascending order, across words.
	var got []NodeID
	for w := (Vector{}.Set(1).Set(5).Set(15).Set(77).Set(250)); !w.Empty(); w = w.ClearLowest() {
		got = append(got, w.Lowest())
	}
	want := []NodeID{1, 5, 15, 77, 250}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
}

func fullMap(n int) Vector {
	var v Vector
	for i := NodeID(0); int(i) < n; i++ {
		v = v.Set(i)
	}
	return v
}

// The single-word path: a ≤64-node machine only ever populates word 0.
// These benchmarks gate the tentpole's "no regression at ≤64 nodes" claim
// next to the wide-path numbers.
func BenchmarkVectorOnly(b *testing.B) {
	v := Vector{}.Set(13)
	b.ReportAllocs()
	var n NodeID
	for i := 0; i < b.N; i++ {
		n = v.Only("bench")
	}
	_ = n
}

func BenchmarkVectorOnlyWide(b *testing.B) {
	v := Vector{}.Set(170)
	b.ReportAllocs()
	var n NodeID
	for i := 0; i < b.N; i++ {
		n = v.Only("bench")
	}
	_ = n
}

func BenchmarkVectorCount(b *testing.B) {
	v := Vector{0x5A5A, 0, 0, 0}
	b.ReportAllocs()
	var c int
	for i := 0; i < b.N; i++ {
		c = v.Count()
	}
	_ = c
}

func BenchmarkVectorCountWide(b *testing.B) {
	v := Vector{0x5A5A, 0xF0F0, 1, 1 << 63}
	b.ReportAllocs()
	var c int
	for i := 0; i < b.N; i++ {
		c = v.Count()
	}
	_ = c
}

// BenchmarkVectorIterate measures the member-iteration idiom on a 16-node
// sharer set (the paper's machine size): the hot pattern in
// invalidateSharers and pushUpdates.
func BenchmarkVectorIterate(b *testing.B) {
	v := fullMap(16)
	b.ReportAllocs()
	var sum NodeID
	for i := 0; i < b.N; i++ {
		for w := v; !w.Empty(); w = w.ClearLowest() {
			sum += w.Lowest()
		}
	}
	_ = sum
}

func BenchmarkVectorSetClearHas(b *testing.B) {
	b.ReportAllocs()
	var v Vector
	for i := 0; i < b.N; i++ {
		v = v.Set(NodeID(i & 63)).Clear(NodeID((i + 7) & 63))
		if v.Has(NodeID(i & 63)) {
			v = v.Set(NodeID((i + 1) & 63))
		}
	}
	_ = v
}
