package msg

import "testing"

// TestVectorOpsZeroAlloc proves Only and Count never allocate (they
// previously materialized a []NodeID via Nodes and walked the vector
// twice).
func TestVectorOpsZeroAlloc(t *testing.T) {
	v := Vector(0).Set(7)
	full := Vector(0xFFFF)
	var n NodeID
	var c int
	allocs := testing.AllocsPerRun(1000, func() {
		n = v.Only()
		c = full.Count()
	})
	if allocs != 0 {
		t.Fatalf("Only+Count allocated %v allocs/op, want 0", allocs)
	}
	if n != 7 || c != 16 {
		t.Fatalf("Only=%d Count=%d, want 7 and 16", n, c)
	}
}

func TestVectorLowest(t *testing.T) {
	if got := (Vector(0).Set(3).Set(9)).Lowest(); got != 3 {
		t.Fatalf("Lowest = %d, want 3", got)
	}
	// Iteration idiom visits members in ascending order.
	var got []NodeID
	for w := Vector(0).Set(1).Set(5).Set(15); w != 0; w &= w - 1 {
		got = append(got, w.Lowest())
	}
	want := []NodeID{1, 5, 15}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
}

func BenchmarkVectorOnly(b *testing.B) {
	v := Vector(0).Set(13)
	b.ReportAllocs()
	var n NodeID
	for i := 0; i < b.N; i++ {
		n = v.Only()
	}
	_ = n
}

func BenchmarkVectorCount(b *testing.B) {
	v := Vector(0x5A5A)
	b.ReportAllocs()
	var c int
	for i := 0; i < b.N; i++ {
		c = v.Count()
	}
	_ = c
}
