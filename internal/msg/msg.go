// Package msg defines the coherence message vocabulary exchanged between
// hubs, mirroring the protocol of the paper: a conventional SGI-style
// directory write-invalidate protocol (requests, interventions, replies,
// NACK/retry) extended with directory-delegation messages (DELEGATE,
// UNDELEGATE, new-home hints) and speculative-update pushes.
//
// Packets are sized like NUMALink-4 packets: a 32-byte minimum (header)
// packet, plus the cache line payload for data-bearing messages.
package msg

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a node (hub) in the system. Nodes are numbered from 0.
type NodeID int

// HomeMem is a pseudo-node used as the source of messages that originate in
// a home node's memory/directory rather than a cache.
const None NodeID = -1

// Addr is a physical byte address. Protocol messages always carry
// line-aligned addresses.
type Addr uint64

// Vector is a sharing bit vector over nodes (supports up to 64 nodes; the
// paper models 16).
type Vector uint64

// Set returns v with node n added.
func (v Vector) Set(n NodeID) Vector { return v | 1<<uint(n) }

// Clear returns v with node n removed.
func (v Vector) Clear(n NodeID) Vector { return v &^ (1 << uint(n)) }

// Has reports whether node n is in the vector.
func (v Vector) Has(n NodeID) bool { return v&(1<<uint(n)) != 0 }

// Count returns the number of nodes in the vector.
func (v Vector) Count() int { return bits.OnesCount64(uint64(v)) }

// Nodes returns the members of the vector in ascending order.
func (v Vector) Nodes() []NodeID {
	out := make([]NodeID, 0, v.Count())
	for i := NodeID(0); v != 0; i++ {
		if v&1 != 0 {
			out = append(out, i)
		}
		v >>= 1
	}
	return out
}

// Only returns the single member of the vector; it panics if the vector
// does not contain exactly one node (a directory-consistency bug).
func (v Vector) Only() NodeID {
	if v&(v-1) != 0 || v == 0 {
		panic(fmt.Sprintf("msg: Vector %b does not have exactly one member", v))
	}
	return NodeID(bits.TrailingZeros64(uint64(v)))
}

// Lowest returns the lowest-numbered member of the vector (64 when empty).
// It is the allocation-free building block for iterating members:
//
//	for w := v; w != 0; w &= w - 1 {
//		n := w.Lowest()
//		...
//	}
func (v Vector) Lowest() NodeID { return NodeID(bits.TrailingZeros64(uint64(v))) }

// Type enumerates coherence message types.
type Type uint8

const (
	// Requests (requester -> home, or requester -> delegated home).
	GetShared Type = iota // read miss: request a read-only copy
	GetExcl               // write miss: request an exclusive copy
	Upgrade               // write hit on SHARED: request ownership, no data
	Writeback             // evict dirty EXCL line back to home
	// Interventions (home -> owner/sharers).
	Intervention // downgrade EXCL owner to SHARED, forward data
	Invalidate   // invalidate a SHARED copy
	TransferReq  // forwarded GETX: owner passes exclusive copy to requester
	// Replies.
	SharedReply     // home -> requester: data, read-only
	ExclReply       // home -> requester: data + pending InvAck count
	UpgradeAck      // home -> requester: ownership granted + InvAck count
	SharedResponse  // owner -> requester: data, read-only (3-hop read)
	ExclResponse    // owner -> requester: data, exclusive (3-hop write)
	SharedWriteback // owner -> home: downgraded data copy (3-hop read)
	TransferAck     // owner -> home: ownership moved to requester
	InvAck          // sharer -> requester: invalidation done
	WBAck           // home -> evictor: writeback accepted
	Nack            // try again later (busy home, races)
	NackNotHome     // delegated node no longer home: drop hint, retry at home
	// Delegation (the paper's §2.3).
	Delegate      // home -> producer: directory entry handed over
	Undelegate    // producer -> home: directory entry handed back
	UndelegateAck // home -> producer: undelegation committed
	NewHomeHint   // home -> requester: line is delegated, use new home
	// Speculative updates (the paper's §2.4).
	Update    // producer -> consumer RAC: pushed fresh data
	UpdateAck // consumer -> producer: push accepted (keeps vector fresh)
	// Dynamic self-invalidation (the related-work baseline of Lebeck &
	// Wood / Lai & Falsafi the paper compares against): the owner
	// eagerly downgrades after its write burst and sends the data home,
	// converting later 3-hop reads into 2-hop home hits.
	EagerWriteback // owner -> home: voluntary downgrade data
)

var typeNames = [...]string{
	GetShared:       "GetShared",
	GetExcl:         "GetExcl",
	Upgrade:         "Upgrade",
	Writeback:       "Writeback",
	Intervention:    "Intervention",
	Invalidate:      "Invalidate",
	TransferReq:     "TransferReq",
	SharedReply:     "SharedReply",
	ExclReply:       "ExclReply",
	UpgradeAck:      "UpgradeAck",
	SharedResponse:  "SharedResponse",
	ExclResponse:    "ExclResponse",
	SharedWriteback: "SharedWriteback",
	TransferAck:     "TransferAck",
	InvAck:          "InvAck",
	WBAck:           "WBAck",
	Nack:            "Nack",
	NackNotHome:     "NackNotHome",
	Delegate:        "Delegate",
	Undelegate:      "Undelegate",
	UndelegateAck:   "UndelegateAck",
	NewHomeHint:     "NewHomeHint",
	Update:          "Update",
	UpdateAck:       "UpdateAck",
	EagerWriteback:  "EagerWriteback",
}

// NumTypes is the number of distinct message types.
const NumTypes = len(typeNames)

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a message-type name (as produced by Type.String) back
// to its value. Fault schedules and replay corpora name types textually so
// the JSON stays readable and stable across protocol-enum reordering.
func ParseType(name string) (Type, bool) {
	for t, n := range typeNames {
		if n == name {
			return Type(t), true
		}
	}
	return 0, false
}

// CarriesData reports whether messages of this type carry a cache-line
// payload (and therefore pay the line-size cost on the wire).
func (t Type) CarriesData() bool {
	switch t {
	case SharedReply, ExclReply, SharedResponse, ExclResponse,
		SharedWriteback, Writeback, Update, Delegate, Undelegate,
		EagerWriteback:
		return true
	}
	return false
}

// IsRequest reports whether this type is an initial request subject to
// NACK/retry.
func (t Type) IsRequest() bool {
	switch t {
	case GetShared, GetExcl, Upgrade:
		return true
	}
	return false
}

// HeaderBytes is the minimum NUMALink packet size (Table 1 / §3.1).
const HeaderBytes = 32

// Message is one coherence packet in flight.
type Message struct {
	Type Type
	Src  NodeID // sending hub
	Dst  NodeID // receiving hub
	Addr Addr   // line-aligned address

	// Requester is the node on whose behalf a forwarded message travels
	// (interventions, transfers) or that a reply ultimately serves.
	Requester NodeID

	// AckCount is the number of InvAcks the requester must collect
	// (ExclReply, UpgradeAck, Delegate).
	AckCount int

	// Sharers carries directory state in Delegate/Undelegate messages.
	Sharers Vector

	// Owner carries the owner field of a directory entry in
	// Delegate/Undelegate messages, and the new home in NewHomeHint.
	Owner NodeID

	// Version is the abstract data value carried by data-bearing
	// messages: every store to a line increments the line's version.
	// The simulator uses versions to check coherence invariants at
	// runtime (§2.5's "invariant checking applied to the simulator").
	Version uint64

	// Dirty marks Undelegate/Writeback payloads that must be written to
	// memory.
	Dirty bool

	// Fwd carries the type of a request being handed back to the home
	// inside an Undelegate message (§2.3.3: "the UNDELE message includes
	// the identity of this node and the original home node can handle
	// the request").
	Fwd Type

	// PCHint marks a grant (ExclReply/UpgradeAck) for a line the home's
	// detector classified producer-consumer; under dynamic
	// self-invalidation the owner arms an eager downgrade for it.
	PCHint bool

	// GrantTxn is the ownership epoch an Intervention or TransferReq
	// refers to: the Txn of the request that made the current owner
	// exclusive. Owners act only on interventions matching the epoch of
	// their copy (or of their in-flight grant) and drop stale ones —
	// those belong to an ownership already ended by a crossing
	// writeback, which the home completes from instead.
	GrantTxn uint64

	// Txn is the requester's transaction number (the hardware analogue
	// is the CRB/TNUM of SGI hubs). Replies, NACKs and invalidation
	// acknowledgements echo the number of the request they answer, so a
	// requester can discard responses to superseded attempts — e.g. the
	// data reply made redundant when a speculative update satisfied the
	// miss first.
	Txn uint64
}

// LineBytes is the coherence granularity (L2 line size, Table 1).
const LineBytes = 128

// Bytes returns the on-wire size of the message.
func (m *Message) Bytes() int {
	if m.Type.CarriesData() {
		return HeaderBytes + LineBytes
	}
	return HeaderBytes
}

func (m *Message) String() string {
	return fmt.Sprintf("%s %d->%d addr=%#x req=%d acks=%d v=%d",
		m.Type, m.Src, m.Dst, uint64(m.Addr), m.Requester, m.AckCount, m.Version)
}
