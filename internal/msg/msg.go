// Package msg defines the coherence message vocabulary exchanged between
// hubs, mirroring the protocol of the paper: a conventional SGI-style
// directory write-invalidate protocol (requests, interventions, replies,
// NACK/retry) extended with directory-delegation messages (DELEGATE,
// UNDELEGATE, new-home hints) and speculative-update pushes.
//
// Packets are sized like NUMALink-4 packets: a 32-byte minimum (header)
// packet, plus the cache line payload for data-bearing messages.
package msg

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a node (hub) in the system. Nodes are numbered from 0.
type NodeID int

// HomeMem is a pseudo-node used as the source of messages that originate in
// a home node's memory/directory rather than a cache.
const None NodeID = -1

// Addr is a physical byte address. Protocol messages always carry
// line-aligned addresses.
type Addr uint64

// VectorWords is the number of 64-bit words backing a Vector. It is the
// single width parameter for the full-map sharing vector: machines of up
// to 64*VectorWords nodes are legal.
const VectorWords = 4

// MaxNodes is the largest legal node count. The directory keeps one
// presence bit per node, so the machine size is capped by the vector
// width (the paper models 16 nodes; the sharded engine sweeps to 256).
const MaxNodes = 64 * VectorWords

// Vector is a full-map sharing bit vector over nodes. It is a fixed-size
// array value: comparable with ==, copyable, and allocation-free on the
// pooled message path. The zero value Vector{} is the empty vector.
//
// Machines of 64 or fewer nodes only ever populate word 0, and every
// operation takes a single-word fast path in that case — the multi-word
// generality costs nothing measurable there (benchmark-gated against the
// old uint64 implementation).
type Vector [VectorWords]uint64

// Set returns v with node n added.
func (v Vector) Set(n NodeID) Vector {
	v[uint(n)>>6] |= 1 << (uint(n) & 63)
	return v
}

// Clear returns v with node n removed.
func (v Vector) Clear(n NodeID) Vector {
	v[uint(n)>>6] &^= 1 << (uint(n) & 63)
	return v
}

// Has reports whether node n is in the vector.
func (v Vector) Has(n NodeID) bool { return v[uint(n)>>6]&(1<<(uint(n)&63)) != 0 }

// Empty reports whether no node is in the vector.
func (v Vector) Empty() bool { return v[0]|v[1]|v[2]|v[3] == 0 }

// Count returns the number of nodes in the vector.
func (v Vector) Count() int {
	return bits.OnesCount64(v[0]) + bits.OnesCount64(v[1]) +
		bits.OnesCount64(v[2]) + bits.OnesCount64(v[3])
}

// Or returns the union of v and w.
func (v Vector) Or(w Vector) Vector {
	for i := range v {
		v[i] |= w[i]
	}
	return v
}

// AndNot returns the members of v that are not in w.
func (v Vector) AndNot(w Vector) Vector {
	for i := range v {
		v[i] &^= w[i]
	}
	return v
}

// Nodes returns the members of the vector in ascending order.
func (v Vector) Nodes() []NodeID {
	out := make([]NodeID, 0, v.Count())
	for i, w := range v {
		for ; w != 0; w &= w - 1 {
			out = append(out, NodeID(i*64+bits.TrailingZeros64(w)))
		}
	}
	return out
}

// String renders the vector as its member list, e.g. [1 5 64].
func (v Vector) String() string { return fmt.Sprint(v.Nodes()) }

// NotSingletonError reports a sharing vector that was required to hold
// exactly one node but did not — in a consistent directory this means
// corrupted owner state. Single returns it; Only panics with it.
type NotSingletonError struct{ V Vector }

func (e *NotSingletonError) Error() string {
	return fmt.Sprintf("sharing vector %v has %d members (machine max %d nodes), want exactly one",
		e.V.Nodes(), e.V.Count(), MaxNodes)
}

// Single returns the single member of the vector, or a *NotSingletonError
// when the vector does not contain exactly one node. It is the recoverable
// form of Only for callers that report rather than crash.
func (v Vector) Single() (NodeID, error) {
	n := None
	for i, w := range v {
		if w == 0 {
			continue
		}
		if w&(w-1) != 0 || n != None {
			return None, &NotSingletonError{V: v}
		}
		n = NodeID(i*64 + bits.TrailingZeros64(w))
	}
	if n == None {
		return None, &NotSingletonError{V: v}
	}
	return n, nil
}

// Only returns the single member of the vector; it panics if the vector
// does not contain exactly one node (a directory-consistency bug). The
// context string names the call site so the panic locates the violated
// invariant without a stack dive.
func (v Vector) Only(context string) NodeID {
	if w := v[0]; w != 0 && w&(w-1) == 0 && v[1]|v[2]|v[3] == 0 {
		return NodeID(bits.TrailingZeros64(w))
	}
	n, err := v.Single()
	if err != nil {
		panic(fmt.Sprintf("msg: %s: %v", context, err))
	}
	return n
}

// Lowest returns the lowest-numbered member of the vector (MaxNodes when
// empty). With ClearLowest it is the allocation-free building block for
// iterating members:
//
//	for w := v; !w.Empty(); w = w.ClearLowest() {
//		n := w.Lowest()
//		...
//	}
func (v Vector) Lowest() NodeID {
	if v[0] != 0 {
		return NodeID(bits.TrailingZeros64(v[0]))
	}
	for i := 1; i < VectorWords; i++ {
		if v[i] != 0 {
			return NodeID(i*64 + bits.TrailingZeros64(v[i]))
		}
	}
	return MaxNodes
}

// ClearLowest returns v with its lowest-numbered member removed (v
// unchanged when empty).
func (v Vector) ClearLowest() Vector {
	for i, w := range v {
		if w != 0 {
			v[i] = w & (w - 1)
			return v
		}
	}
	return v
}

// Type enumerates coherence message types.
type Type uint8

const (
	// Requests (requester -> home, or requester -> delegated home).
	GetShared Type = iota // read miss: request a read-only copy
	GetExcl               // write miss: request an exclusive copy
	Upgrade               // write hit on SHARED: request ownership, no data
	Writeback             // evict dirty EXCL line back to home
	// Interventions (home -> owner/sharers).
	Intervention // downgrade EXCL owner to SHARED, forward data
	Invalidate   // invalidate a SHARED copy
	TransferReq  // forwarded GETX: owner passes exclusive copy to requester
	// Replies.
	SharedReply     // home -> requester: data, read-only
	ExclReply       // home -> requester: data + pending InvAck count
	UpgradeAck      // home -> requester: ownership granted + InvAck count
	SharedResponse  // owner -> requester: data, read-only (3-hop read)
	ExclResponse    // owner -> requester: data, exclusive (3-hop write)
	SharedWriteback // owner -> home: downgraded data copy (3-hop read)
	TransferAck     // owner -> home: ownership moved to requester
	InvAck          // sharer -> requester: invalidation done
	WBAck           // home -> evictor: writeback accepted
	Nack            // try again later (busy home, races)
	NackNotHome     // delegated node no longer home: drop hint, retry at home
	// Delegation (the paper's §2.3).
	Delegate      // home -> producer: directory entry handed over
	Undelegate    // producer -> home: directory entry handed back
	UndelegateAck // home -> producer: undelegation committed
	NewHomeHint   // home -> requester: line is delegated, use new home
	// Speculative updates (the paper's §2.4).
	Update    // producer -> consumer RAC: pushed fresh data
	UpdateAck // consumer -> producer: push accepted (keeps vector fresh)
	// Dynamic self-invalidation (the related-work baseline of Lebeck &
	// Wood / Lai & Falsafi the paper compares against): the owner
	// eagerly downgrades after its write burst and sends the data home,
	// converting later 3-hop reads into 2-hop home hits.
	EagerWriteback // owner -> home: voluntary downgrade data
	// Hybrid update/invalidate (Dovgopol & Rosonke, arXiv:1502.00101):
	// the home commits a shared write in place and pushes the fresh
	// data to the sharers instead of invalidating them. Sharers
	// acknowledge to the home (Kept reports whether they retained the
	// copy); the home grants the writer once the round completes.
	UpdateData  // home -> sharer: pushed fresh data for a shared write
	UpdateGrant // home -> writer: hybrid shared write committed
)

var typeNames = [...]string{
	GetShared:       "GetShared",
	GetExcl:         "GetExcl",
	Upgrade:         "Upgrade",
	Writeback:       "Writeback",
	Intervention:    "Intervention",
	Invalidate:      "Invalidate",
	TransferReq:     "TransferReq",
	SharedReply:     "SharedReply",
	ExclReply:       "ExclReply",
	UpgradeAck:      "UpgradeAck",
	SharedResponse:  "SharedResponse",
	ExclResponse:    "ExclResponse",
	SharedWriteback: "SharedWriteback",
	TransferAck:     "TransferAck",
	InvAck:          "InvAck",
	WBAck:           "WBAck",
	Nack:            "Nack",
	NackNotHome:     "NackNotHome",
	Delegate:        "Delegate",
	Undelegate:      "Undelegate",
	UndelegateAck:   "UndelegateAck",
	NewHomeHint:     "NewHomeHint",
	Update:          "Update",
	UpdateAck:       "UpdateAck",
	EagerWriteback:  "EagerWriteback",
	UpdateData:      "UpdateData",
	UpdateGrant:     "UpdateGrant",
}

// NumTypes is the number of distinct message types.
const NumTypes = len(typeNames)

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a message-type name (as produced by Type.String) back
// to its value. Fault schedules and replay corpora name types textually so
// the JSON stays readable and stable across protocol-enum reordering.
func ParseType(name string) (Type, bool) {
	for t, n := range typeNames {
		if n == name {
			return Type(t), true
		}
	}
	return 0, false
}

// CarriesData reports whether messages of this type carry a cache-line
// payload (and therefore pay the line-size cost on the wire).
func (t Type) CarriesData() bool {
	switch t {
	case SharedReply, ExclReply, SharedResponse, ExclResponse,
		SharedWriteback, Writeback, Update, Delegate, Undelegate,
		EagerWriteback, UpdateData, UpdateGrant:
		return true
	}
	return false
}

// IsRequest reports whether this type is an initial request subject to
// NACK/retry.
func (t Type) IsRequest() bool {
	switch t {
	case GetShared, GetExcl, Upgrade:
		return true
	}
	return false
}

// HeaderBytes is the minimum NUMALink packet size (Table 1 / §3.1).
const HeaderBytes = 32

// Message is one coherence packet in flight.
type Message struct {
	Type Type
	Src  NodeID // sending hub
	Dst  NodeID // receiving hub
	Addr Addr   // line-aligned address

	// Requester is the node on whose behalf a forwarded message travels
	// (interventions, transfers) or that a reply ultimately serves.
	Requester NodeID

	// AckCount is the number of InvAcks the requester must collect
	// (ExclReply, UpgradeAck, Delegate).
	AckCount int

	// Sharers carries directory state in Delegate/Undelegate messages.
	Sharers Vector

	// Owner carries the owner field of a directory entry in
	// Delegate/Undelegate messages, and the new home in NewHomeHint.
	Owner NodeID

	// Version is the abstract data value carried by data-bearing
	// messages: every store to a line increments the line's version.
	// The simulator uses versions to check coherence invariants at
	// runtime (§2.5's "invariant checking applied to the simulator").
	Version uint64

	// Dirty marks Undelegate/Writeback payloads that must be written to
	// memory.
	Dirty bool

	// Fwd carries the type of a request being handed back to the home
	// inside an Undelegate message (§2.3.3: "the UNDELE message includes
	// the identity of this node and the original home node can handle
	// the request").
	Fwd Type

	// PCHint marks a grant (ExclReply/UpgradeAck) for a line the home's
	// detector classified producer-consumer; under dynamic
	// self-invalidation the owner arms an eager downgrade for it.
	PCHint bool

	// GrantTxn is the ownership epoch an Intervention or TransferReq
	// refers to: the Txn of the request that made the current owner
	// exclusive. Owners act only on interventions matching the epoch of
	// their copy (or of their in-flight grant) and drop stale ones —
	// those belong to an ownership already ended by a crossing
	// writeback, which the home completes from instead.
	GrantTxn uint64

	// Kept reports, in a hybrid UpdateAck, whether the sharer retained
	// its copy after applying (or dropping) the pushed update; the home
	// clears the sharer's presence bit when false.
	Kept bool

	// Txn is the requester's transaction number (the hardware analogue
	// is the CRB/TNUM of SGI hubs). Replies, NACKs and invalidation
	// acknowledgements echo the number of the request they answer, so a
	// requester can discard responses to superseded attempts — e.g. the
	// data reply made redundant when a speculative update satisfied the
	// miss first.
	Txn uint64
}

// LineBytes is the coherence granularity (L2 line size, Table 1).
const LineBytes = 128

// Bytes returns the on-wire size of the message.
func (m *Message) Bytes() int {
	if m.Type.CarriesData() {
		return HeaderBytes + LineBytes
	}
	return HeaderBytes
}

func (m *Message) String() string {
	return fmt.Sprintf("%s %d->%d addr=%#x req=%d acks=%d v=%d",
		m.Type, m.Src, m.Dst, uint64(m.Addr), m.Requester, m.AckCount, m.Version)
}
