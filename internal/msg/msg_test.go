package msg

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorSetClearHas(t *testing.T) {
	var v Vector
	v = v.Set(3).Set(7).Set(0)
	for _, n := range []NodeID{0, 3, 7} {
		if !v.Has(n) {
			t.Fatalf("vector missing node %d", n)
		}
	}
	if v.Has(1) || v.Has(15) {
		t.Fatal("vector has nodes never set")
	}
	v = v.Clear(3)
	if v.Has(3) {
		t.Fatal("Clear(3) did not remove node 3")
	}
	if v.Count() != 2 {
		t.Fatalf("Count = %d, want 2", v.Count())
	}
}

func TestVectorNodesSorted(t *testing.T) {
	v := Vector{}.Set(9).Set(1).Set(14)
	nodes := v.Nodes()
	want := []NodeID{1, 9, 14}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}

func TestVectorOnly(t *testing.T) {
	v := Vector{}.Set(5)
	if v.Only("test") != 5 {
		t.Fatalf("Only = %d, want 5", v.Only("test"))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Only on 2-member vector did not panic")
		}
		// The panic must name the call site and the member count so a
		// directory-corruption report is actionable without a stack dive.
		s, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, frag := range []string{"TestVectorOnly call site", "2 members", "[1 2]"} {
			if !strings.Contains(s, frag) {
				t.Fatalf("panic %q missing %q", s, frag)
			}
		}
	}()
	Vector{}.Set(1).Set(2).Only("TestVectorOnly call site")
}

func TestVectorSingleTypedError(t *testing.T) {
	if n, err := (Vector{}.Set(130)).Single(); err != nil || n != 130 {
		t.Fatalf("Single = %d, %v; want 130, nil", n, err)
	}
	for _, v := range []Vector{{}, Vector{}.Set(1).Set(2), Vector{}.Set(63).Set(64)} {
		n, err := v.Single()
		if err == nil {
			t.Fatalf("Single(%v) = %d, nil; want error", v, n)
		}
		var nse *NotSingletonError
		if !errors.As(err, &nse) {
			t.Fatalf("Single(%v) error %T, want *NotSingletonError", v, err)
		}
		if nse.V != v {
			t.Fatalf("error vector = %v, want %v", nse.V, v)
		}
	}
}

// TestVectorBoundaries exercises nodes straddling the 64-bit word
// boundaries that the old uint64 vector could not represent.
func TestVectorBoundaries(t *testing.T) {
	for _, n := range []NodeID{0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 254, 255} {
		v := Vector{}.Set(n)
		if !v.Has(n) {
			t.Fatalf("Set(%d): Has = false", n)
		}
		if v.Count() != 1 {
			t.Fatalf("Set(%d): Count = %d, want 1", n, v.Count())
		}
		if got := v.Only("boundary"); got != n {
			t.Fatalf("Set(%d): Only = %d", n, got)
		}
		if got := v.Lowest(); got != n {
			t.Fatalf("Set(%d): Lowest = %d", n, got)
		}
		if !v.ClearLowest().Empty() {
			t.Fatalf("Set(%d): ClearLowest not empty", n)
		}
		if !v.Clear(n).Empty() {
			t.Fatalf("Set(%d).Clear(%d) not empty", n, n)
		}
		for _, other := range []NodeID{0, 63, 64, 65, 128, 255} {
			if other != n && v.Has(other) {
				t.Fatalf("Set(%d): spurious Has(%d)", n, other)
			}
		}
	}
	// A 65-node machine's full sharer set: the first wide case.
	var v Vector
	for n := NodeID(0); n < 65; n++ {
		v = v.Set(n)
	}
	if v.Count() != 65 {
		t.Fatalf("65-node full map Count = %d", v.Count())
	}
	if v.Clear(64).Count() != 64 || v.Clear(0).Lowest() != 1 {
		t.Fatal("65-node Clear/Lowest across the word boundary broken")
	}
	if (Vector{}).Lowest() != MaxNodes {
		t.Fatalf("empty Lowest = %d, want MaxNodes=%d", (Vector{}).Lowest(), MaxNodes)
	}
}

// TestVectorReferenceModel drives a long random op sequence against a
// map[NodeID]bool reference model and checks every accessor after every
// step, across the full 256-node range (weighted toward the word
// boundaries where the multi-word arithmetic can go wrong).
func TestVectorReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pick := func() NodeID {
		if rng.Intn(4) == 0 { // boundary bias
			edges := []NodeID{0, 63, 64, 65, 127, 128, 129, 191, 192, 255}
			return edges[rng.Intn(len(edges))]
		}
		return NodeID(rng.Intn(MaxNodes))
	}
	var v Vector
	ref := map[NodeID]bool{}
	for step := 0; step < 20000; step++ {
		n := pick()
		switch rng.Intn(5) {
		case 0, 1:
			v = v.Set(n)
			ref[n] = true
		case 2:
			v = v.Clear(n)
			delete(ref, n)
		case 3:
			v = v.ClearLowest()
			low := NodeID(MaxNodes)
			for m := range ref {
				if m < low {
					low = m
				}
			}
			if low < MaxNodes {
				delete(ref, low)
			}
		case 4:
			w := Vector{}.Set(pick()).Set(pick())
			if rng.Intn(2) == 0 {
				v = v.Or(w)
				for _, m := range w.Nodes() {
					ref[m] = true
				}
			} else {
				v = v.AndNot(w)
				for _, m := range w.Nodes() {
					delete(ref, m)
				}
			}
		}

		if v.Count() != len(ref) {
			t.Fatalf("step %d: Count = %d, ref %d", step, v.Count(), len(ref))
		}
		if v.Empty() != (len(ref) == 0) {
			t.Fatalf("step %d: Empty = %v, ref %d members", step, v.Empty(), len(ref))
		}
		if v.Has(n) != ref[n] {
			t.Fatalf("step %d: Has(%d) = %v, ref %v", step, n, v.Has(n), ref[n])
		}
		low := NodeID(MaxNodes)
		for m := range ref {
			if m < low {
				low = m
			}
		}
		if v.Lowest() != low {
			t.Fatalf("step %d: Lowest = %d, ref %d", step, v.Lowest(), low)
		}
		if step%97 == 0 { // full-membership scan, amortized
			nodes := v.Nodes()
			if len(nodes) != len(ref) {
				t.Fatalf("step %d: Nodes len %d, ref %d", step, len(nodes), len(ref))
			}
			for i, m := range nodes {
				if !ref[m] {
					t.Fatalf("step %d: Nodes contains %d not in ref", step, m)
				}
				if i > 0 && nodes[i-1] >= m {
					t.Fatalf("step %d: Nodes not ascending: %v", step, nodes)
				}
			}
			n, err := v.Single()
			if (err == nil) != (len(ref) == 1) {
				t.Fatalf("step %d: Single err=%v with %d members", step, err, len(ref))
			}
			if err == nil && !ref[n] {
				t.Fatalf("step %d: Single = %d not in ref", step, n)
			}
		}
	}
}

// Property: Count always equals the length of Nodes, and every node in
// Nodes satisfies Has.
func TestPropertyVectorConsistency(t *testing.T) {
	f := func(words [VectorWords]uint64) bool {
		v := Vector(words)
		nodes := v.Nodes()
		if len(nodes) != v.Count() {
			return false
		}
		for _, n := range nodes {
			if !v.Has(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Set then Clear is identity for nodes not previously present.
func TestPropertySetClearIdentity(t *testing.T) {
	f := func(words [VectorWords]uint64, n uint8) bool {
		node := NodeID(int(n) % MaxNodes)
		v := Vector(words)
		if v.Has(node) {
			return v.Set(node) == v
		}
		return v.Set(node).Clear(node) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageBytes(t *testing.T) {
	data := &Message{Type: SharedReply}
	if data.Bytes() != HeaderBytes+LineBytes {
		t.Fatalf("data message bytes = %d, want %d", data.Bytes(), HeaderBytes+LineBytes)
	}
	ctrl := &Message{Type: Invalidate}
	if ctrl.Bytes() != HeaderBytes {
		t.Fatalf("control message bytes = %d, want %d", ctrl.Bytes(), HeaderBytes)
	}
}

func TestCarriesDataClasses(t *testing.T) {
	wantData := []Type{SharedReply, ExclReply, SharedResponse, ExclResponse,
		SharedWriteback, Writeback, Update, Delegate, Undelegate}
	for _, ty := range wantData {
		if !ty.CarriesData() {
			t.Errorf("%v should carry data", ty)
		}
	}
	wantCtrl := []Type{GetShared, GetExcl, Upgrade, Invalidate, InvAck, Nack,
		NackNotHome, NewHomeHint, UpdateAck, UndelegateAck, TransferAck, WBAck,
		Intervention, TransferReq, UpgradeAck}
	for _, ty := range wantCtrl {
		if ty.CarriesData() {
			t.Errorf("%v should not carry data", ty)
		}
	}
}

func TestIsRequest(t *testing.T) {
	for _, ty := range []Type{GetShared, GetExcl, Upgrade} {
		if !ty.IsRequest() {
			t.Errorf("%v should be a request", ty)
		}
	}
	for _, ty := range []Type{SharedReply, Invalidate, Update, Writeback} {
		if ty.IsRequest() {
			t.Errorf("%v should not be a request", ty)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := Type(0); int(ty) < NumTypes; ty++ {
		s := ty.String()
		if s == "" {
			t.Fatalf("type %d has empty name", ty)
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Fatalf("out-of-range string = %q", Type(200).String())
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Type: GetShared, Src: 1, Dst: 2, Addr: 0x1000}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestNotSingletonErrorPaths pins every way Single can reject a vector —
// empty, two bits in one word, one bit in each of two words (the
// cross-word n != None branch), and multi-bit words beyond word 0 where
// the fast scan never looks — plus the error text operators grep for.
func TestNotSingletonErrorPaths(t *testing.T) {
	cases := []struct {
		v       Vector
		members int
	}{
		{Vector{}, 0},
		{Vector{}.Set(1).Set(2), 2},              // two bits, word 0
		{Vector{}.Set(70).Set(71), 2},            // two bits, word 1 only
		{Vector{}.Set(1).Set(130), 2},            // one bit per word, cross-word
		{Vector{}.Set(63).Set(64).Set(200), 3},   // straddles three words
		{Vector{}.Set(192).Set(193).Set(255), 3}, // all in the last word
	}
	for _, tc := range cases {
		n, err := tc.v.Single()
		if err == nil {
			t.Fatalf("Single(%v) = %d, nil; want *NotSingletonError", tc.v, n)
		}
		var nse *NotSingletonError
		if !errors.As(err, &nse) {
			t.Fatalf("Single(%v) error %T, want *NotSingletonError", tc.v, err)
		}
		if nse.V != tc.v {
			t.Fatalf("error carries vector %v, want %v", nse.V, tc.v)
		}
		if got := nse.V.Count(); got != tc.members {
			t.Fatalf("error vector %v has %d members, want %d", nse.V, got, tc.members)
		}
		msg := err.Error()
		for _, frag := range []string{
			fmt.Sprintf("has %d members", tc.members),
			"want exactly one",
			fmt.Sprint(tc.v.Nodes()),
		} {
			if !strings.Contains(msg, frag) {
				t.Fatalf("error %q missing %q", msg, frag)
			}
		}
		// A wrapped chain still exposes the typed error.
		wrapped := fmt.Errorf("directory corrupt: %w", err)
		nse = nil
		if !errors.As(wrapped, &nse) || nse.V != tc.v {
			t.Fatalf("errors.As through a wrap lost the typed error for %v", tc.v)
		}
	}
}

// TestVectorOnlySlowPathPanic covers Only's non-fast path: a member
// outside word 0 skips the single-word fast return and must still
// resolve via Single — and a multi-word violation must panic with the
// call-site context.
func TestVectorOnlySlowPathPanic(t *testing.T) {
	if got := (Vector{}.Set(200)).Only("upper word"); got != 200 {
		t.Fatalf("Only on upper-word singleton = %d, want 200", got)
	}
	defer func() {
		s, ok := recover().(string)
		if !ok {
			t.Fatalf("recover() = %T, want string panic", s)
		}
		for _, frag := range []string{"slow path site", "2 members"} {
			if !strings.Contains(s, frag) {
				t.Fatalf("panic %q missing %q", s, frag)
			}
		}
	}()
	Vector{}.Set(70).Set(200).Only("slow path site")
}
