package msg

import (
	"testing"
	"testing/quick"
)

func TestVectorSetClearHas(t *testing.T) {
	var v Vector
	v = v.Set(3).Set(7).Set(0)
	for _, n := range []NodeID{0, 3, 7} {
		if !v.Has(n) {
			t.Fatalf("vector missing node %d", n)
		}
	}
	if v.Has(1) || v.Has(15) {
		t.Fatal("vector has nodes never set")
	}
	v = v.Clear(3)
	if v.Has(3) {
		t.Fatal("Clear(3) did not remove node 3")
	}
	if v.Count() != 2 {
		t.Fatalf("Count = %d, want 2", v.Count())
	}
}

func TestVectorNodesSorted(t *testing.T) {
	v := Vector(0).Set(9).Set(1).Set(14)
	nodes := v.Nodes()
	want := []NodeID{1, 9, 14}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}

func TestVectorOnly(t *testing.T) {
	v := Vector(0).Set(5)
	if v.Only() != 5 {
		t.Fatalf("Only = %d, want 5", v.Only())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Only on 2-member vector did not panic")
		}
	}()
	Vector(0).Set(1).Set(2).Only()
}

// Property: Count always equals the length of Nodes, and every node in
// Nodes satisfies Has.
func TestPropertyVectorConsistency(t *testing.T) {
	f := func(bits uint16) bool {
		v := Vector(bits)
		nodes := v.Nodes()
		if len(nodes) != v.Count() {
			return false
		}
		for _, n := range nodes {
			if !v.Has(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Set then Clear is identity for nodes not previously present.
func TestPropertySetClearIdentity(t *testing.T) {
	f := func(bits uint16, n uint8) bool {
		node := NodeID(n % 64)
		v := Vector(bits)
		if v.Has(node) {
			return v.Set(node) == v
		}
		return v.Set(node).Clear(node) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageBytes(t *testing.T) {
	data := &Message{Type: SharedReply}
	if data.Bytes() != HeaderBytes+LineBytes {
		t.Fatalf("data message bytes = %d, want %d", data.Bytes(), HeaderBytes+LineBytes)
	}
	ctrl := &Message{Type: Invalidate}
	if ctrl.Bytes() != HeaderBytes {
		t.Fatalf("control message bytes = %d, want %d", ctrl.Bytes(), HeaderBytes)
	}
}

func TestCarriesDataClasses(t *testing.T) {
	wantData := []Type{SharedReply, ExclReply, SharedResponse, ExclResponse,
		SharedWriteback, Writeback, Update, Delegate, Undelegate}
	for _, ty := range wantData {
		if !ty.CarriesData() {
			t.Errorf("%v should carry data", ty)
		}
	}
	wantCtrl := []Type{GetShared, GetExcl, Upgrade, Invalidate, InvAck, Nack,
		NackNotHome, NewHomeHint, UpdateAck, UndelegateAck, TransferAck, WBAck,
		Intervention, TransferReq, UpgradeAck}
	for _, ty := range wantCtrl {
		if ty.CarriesData() {
			t.Errorf("%v should not carry data", ty)
		}
	}
}

func TestIsRequest(t *testing.T) {
	for _, ty := range []Type{GetShared, GetExcl, Upgrade} {
		if !ty.IsRequest() {
			t.Errorf("%v should be a request", ty)
		}
	}
	for _, ty := range []Type{SharedReply, Invalidate, Update, Writeback} {
		if ty.IsRequest() {
			t.Errorf("%v should not be a request", ty)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := Type(0); int(ty) < NumTypes; ty++ {
		s := ty.String()
		if s == "" {
			t.Fatalf("type %d has empty name", ty)
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Fatalf("out-of-range string = %q", Type(200).String())
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Type: GetShared, Src: 1, Dst: 2, Addr: 0x1000}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
