package cpu

import (
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
	"pccsim/internal/sim"
)

// fakeHub records accesses and completes them after a fixed latency.
type fakeHub struct {
	eng     *sim.Engine
	latency sim.Time
	loads   []msg.Addr
	stores  []msg.Addr
}

func (f *fakeHub) Access(addr msg.Addr, write bool, done func()) {
	if write {
		f.stores = append(f.stores, addr)
	} else {
		f.loads = append(f.loads, addr)
	}
	f.eng.After(f.latency, done)
}

func run1(t *testing.T, ops []Op, latency sim.Time, maxStore int) (*CPU, *fakeHub, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	hub := &fakeHub{eng: eng, latency: latency}
	bars := NewBarrierSet(eng, 1, 10)
	c := New(eng, 0, hub, &SliceStream{Ops: ops}, bars, maxStore)
	c.Start()
	eng.Run()
	if !c.Done() {
		t.Fatal("program did not finish")
	}
	return c, hub, eng
}

func TestLoadsBlock(t *testing.T) {
	c, hub, eng := run1(t, []Op{
		{Kind: Load, Addr: 0x100},
		{Kind: Load, Addr: 0x200},
	}, 50, 8)
	if len(hub.loads) != 2 {
		t.Fatalf("loads = %d, want 2", len(hub.loads))
	}
	// Two blocking loads at 50 cycles each: finish >= 100.
	if eng.Now() < 100 || c.Finish() < 100 {
		t.Fatalf("loads overlapped: finished at %d", c.Finish())
	}
}

func TestStoresOverlap(t *testing.T) {
	c, hub, _ := run1(t, []Op{
		{Kind: Store, Addr: 0x100},
		{Kind: Store, Addr: 0x200},
		{Kind: Store, Addr: 0x300},
	}, 50, 8)
	if len(hub.stores) != 3 {
		t.Fatalf("stores = %d, want 3", len(hub.stores))
	}
	// Issued one per cycle; the program part ends at ~3 cycles, stores
	// retire in background by 50+2; well under the serial 150.
	if c.Finish() > 10 {
		t.Fatalf("stores did not overlap: program finished at %d", c.Finish())
	}
}

func TestStoreBufferStalls(t *testing.T) {
	// With a 1-entry buffer the second store waits for the first.
	_, _, eng := run1(t, []Op{
		{Kind: Store, Addr: 0x100},
		{Kind: Store, Addr: 0x200},
	}, 50, 1)
	if eng.Now() < 100 {
		t.Fatalf("1-deep store buffer overlapped stores: drained at %d", eng.Now())
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	c, _, _ := run1(t, []Op{
		{Kind: Compute, Cycles: 1000},
	}, 1, 8)
	if c.Finish() != 1000 {
		t.Fatalf("finish = %d, want 1000", c.Finish())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng := sim.NewEngine()
	hub := &fakeHub{eng: eng, latency: 10}
	bars := NewBarrierSet(eng, 2, 10)
	fast := New(eng, 0, hub, &SliceStream{Ops: []Op{
		{Kind: Barrier, Bar: 1},
		{Kind: Load, Addr: 0x100},
	}}, bars, 8)
	slow := New(eng, 1, hub, &SliceStream{Ops: []Op{
		{Kind: Compute, Cycles: 500},
		{Kind: Barrier, Bar: 1},
	}}, bars, 8)
	fast.Start()
	slow.Start()
	eng.Run()
	if !fast.Done() || !slow.Done() {
		t.Fatal("deadlock at barrier")
	}
	// fast must not pass the barrier before slow arrives at 500.
	if fast.Finish() < 500 {
		t.Fatalf("fast finished at %d, before slow reached the barrier", fast.Finish())
	}
	if fast.Barriers() != 1 || slow.Barriers() != 1 {
		t.Fatal("barrier counts wrong")
	}
}

func TestBarrierDrainsStoreBuffer(t *testing.T) {
	// A store issued right before a barrier must retire before the core
	// arrives (memory fence semantics).
	eng := sim.NewEngine()
	hub := &fakeHub{eng: eng, latency: 200}
	bars := NewBarrierSet(eng, 1, 0)
	c := New(eng, 0, hub, &SliceStream{Ops: []Op{
		{Kind: Store, Addr: 0x100},
		{Kind: Barrier, Bar: 7},
	}}, bars, 8)
	c.Start()
	eng.Run()
	if c.Finish() < 200 {
		t.Fatalf("barrier crossed at %d before the store retired", c.Finish())
	}
}

func TestBarrierReusable(t *testing.T) {
	eng := sim.NewEngine()
	hub := &fakeHub{eng: eng, latency: 1}
	bars := NewBarrierSet(eng, 2, 5)
	mk := func(id msg.NodeID) *CPU {
		var ops []Op
		for i := 0; i < 5; i++ {
			ops = append(ops, Op{Kind: Compute, Cycles: sim.Time(10 * (int(id) + 1))})
			ops = append(ops, Op{Kind: Barrier, Bar: i})
		}
		return New(eng, id, hub, &SliceStream{Ops: ops}, bars, 8)
	}
	a, b := mk(0), mk(1)
	a.Start()
	b.Start()
	eng.Run()
	if !a.Done() || !b.Done() {
		t.Fatal("reused barriers deadlocked")
	}
	if a.Barriers() != 5 || b.Barriers() != 5 {
		t.Fatal("wrong barrier counts")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Op, bool) {
		if n >= 3 {
			return Op{}, false
		}
		n++
		return Op{Kind: Compute, Cycles: 1}, true
	})
	eng := sim.NewEngine()
	c := New(eng, 0, &fakeHub{eng: eng, latency: 1}, s, NewBarrierSet(eng, 1, 0), 8)
	c.Start()
	eng.Run()
	if !c.Done() || c.Finish() != 3 {
		t.Fatalf("FuncStream run: done=%v finish=%d", c.Done(), c.Finish())
	}
}

func TestEmptyProgram(t *testing.T) {
	c, _, _ := run1(t, nil, 1, 8)
	if c.Finish() != 0 {
		t.Fatalf("empty program finished at %d", c.Finish())
	}
}

// Property: for random programs, every operation is eventually executed
// exactly once — counts at the hub match the program — and the core
// finishes, for any store-buffer depth.
func TestPropertyRandomProgramsComplete(t *testing.T) {
	f := func(kinds []uint8, depth uint8) bool {
		eng := sim.NewEngine()
		hub := &fakeHub{eng: eng, latency: 7}
		bars := NewBarrierSet(eng, 1, 3)
		var ops []Op
		wantLoads, wantStores := 0, 0
		barID := 0
		for _, k := range kinds {
			switch k % 4 {
			case 0:
				ops = append(ops, Op{Kind: Load, Addr: msg.Addr(k) * 32})
				wantLoads++
			case 1:
				ops = append(ops, Op{Kind: Store, Addr: msg.Addr(k) * 32})
				wantStores++
			case 2:
				ops = append(ops, Op{Kind: Compute, Cycles: sim.Time(k % 16)})
			case 3:
				ops = append(ops, Op{Kind: Barrier, Bar: barID})
				barID++
			}
		}
		c := New(eng, 0, hub, &SliceStream{Ops: ops}, bars, int(depth%8)+1)
		c.Start()
		eng.Run()
		return c.Done() && len(hub.loads) == wantLoads && len(hub.stores) == wantStores
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
