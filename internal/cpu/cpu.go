// Package cpu models the processors driving the coherence simulator: an
// in-order core with blocking loads, a store buffer that overlaps store
// misses (Table 1: up to 16 outstanding L2 misses), compute delays, and
// barrier synchronization. The paper's gains come from eliminating exposed
// remote read latency, which this timing model surfaces directly.
package cpu

import (
	"fmt"
	"sort"
	"sync"

	"pccsim/internal/msg"
	"pccsim/internal/sim"
)

// OpKind enumerates program operations.
type OpKind uint8

const (
	// Load reads an address; the core blocks until data returns.
	Load OpKind = iota
	// Store writes an address; the core continues after issue and the
	// store completes in the background (store buffer).
	Store
	// Compute advances local time without memory traffic.
	Compute
	// Barrier synchronizes all cores after draining the store buffer.
	Barrier
)

// Op is one program operation.
type Op struct {
	Kind   OpKind
	Addr   msg.Addr
	Cycles sim.Time // Compute duration
	Bar    int      // Barrier identifier
}

// Stream supplies a core's operations lazily, so workloads need not
// materialize multi-million-op traces.
type Stream interface {
	Next() (Op, bool)
}

// SliceStream replays a fixed op list.
type SliceStream struct {
	Ops []Op
	i   int
}

// Next returns the next operation.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.i]
	s.i++
	return op, true
}

// FuncStream adapts a generator function to a Stream.
type FuncStream func() (Op, bool)

// Next calls the generator.
func (f FuncStream) Next() (Op, bool) { return f() }

// BarrierSet materializes barrier objects per identifier. A single-engine
// set (NewBarrierSet) releases immediately in arrival order; a sharded
// set (NewShardedBarrierSet) accepts arrivals from any shard goroutine
// under a mutex and defers releases to Flush, which the machine runs at
// every window barrier.
type BarrierSet struct {
	eng     *sim.Engine
	parties int
	latency sim.Time
	bars    map[int]*barrier

	// Sharded mode: engFor maps a core to its shard's engine (nil on a
	// single engine); mu guards bars and releases between shards.
	// onComplete, if set, runs inside the arrival that completes a
	// barrier (see SetOnComplete).
	engFor     func(msg.NodeID) *sim.Engine
	mu         sync.Mutex
	releases   []release
	onComplete func(core msg.NodeID)
}

type barrier struct {
	arrived int
	maxAt   sim.Time
	waiters []waiter
}

type waiter struct {
	core   msg.NodeID
	resume func()
}

// release is one completed barrier awaiting Flush: every party has
// arrived, the latest arrival was at time at.
type release struct {
	id      int
	at      sim.Time
	waiters []waiter
}

// NewBarrierSet creates barriers over parties cores with the given
// release latency (an idealized synchronization primitive; the reload
// flurry the paper discusses comes from the data accesses that follow).
func NewBarrierSet(eng *sim.Engine, parties int, latency sim.Time) *BarrierSet {
	return &BarrierSet{eng: eng, parties: parties, latency: latency, bars: make(map[int]*barrier)}
}

// NewShardedBarrierSet creates a barrier set for a sharded machine:
// arrivals come from different shard goroutines, so they synchronize on
// a mutex, and releases are deferred to Flush (register it as a window-
// barrier hook). Resumes are scheduled at the latest arrival time plus
// the release latency — the same instant the single-engine set releases
// at — ordered by core id, so the serial and parallel schedulers release
// identically.
func NewShardedBarrierSet(engFor func(msg.NodeID) *sim.Engine, parties int, latency sim.Time) *BarrierSet {
	return &BarrierSet{engFor: engFor, parties: parties, latency: latency, bars: make(map[int]*barrier)}
}

// Arrive registers core at barrier id; resume runs once all parties have
// arrived. Barriers are reusable: the generation resets on release.
func (s *BarrierSet) Arrive(id int, core msg.NodeID, resume func()) {
	if s.engFor == nil {
		b := s.bars[id]
		if b == nil {
			b = &barrier{}
			s.bars[id] = b
		}
		b.arrived++
		b.waiters = append(b.waiters, waiter{core: core, resume: resume})
		if b.arrived < s.parties {
			return
		}
		waiters := b.waiters
		b.arrived = 0
		b.waiters = nil
		for _, w := range waiters {
			s.eng.After(s.latency, w.resume)
		}
		return
	}
	now := s.engFor(core).Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bars[id]
	if b == nil {
		b = &barrier{}
		s.bars[id] = b
	}
	b.arrived++
	if now > b.maxAt {
		b.maxAt = now
	}
	b.waiters = append(b.waiters, waiter{core: core, resume: resume})
	if b.arrived < s.parties {
		return
	}
	s.releases = append(s.releases, release{id: id, at: b.maxAt, waiters: b.waiters})
	b.arrived, b.maxAt, b.waiters = 0, 0, nil
	if s.onComplete != nil {
		s.onComplete(core)
	}
}

// SetOnComplete registers fn to run, in sharded mode, inside the Arrive
// call that completes a barrier, with core the last-arriving party. It
// executes on that core's shard goroutine while s.mu is held, so fn must
// be cheap and touch only that shard's state. The adaptive scheduler uses
// it to cut the completing shard's window: the release Flush will
// schedule lands at the last arrival time plus the barrier latency, and
// only the shard that executed the completing arrival could run past that
// instant before the next window barrier.
func (s *BarrierSet) SetOnComplete(fn func(core msg.NodeID)) { s.onComplete = fn }

// Flush schedules the resumes of every barrier completed during the last
// window. It must run at a window barrier (no shard executing); a core's
// resume lands on its own shard's engine at the release time, which that
// engine clamps into its present if it has already advanced past it.
func (s *BarrierSet) Flush() {
	s.mu.Lock()
	rel := s.releases
	s.releases = nil
	s.mu.Unlock()
	if len(rel) == 0 {
		return
	}
	// Arrival order within a window is scheduler-dependent; (barrier id,
	// core id) order is not. Same-id entries cannot collide: a barrier's
	// next generation needs every resumed core to run again first, which
	// can only happen in a later window.
	sort.SliceStable(rel, func(i, j int) bool { return rel[i].id < rel[j].id })
	for _, r := range rel {
		ws := r.waiters
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].core < ws[j].core })
		for _, w := range ws {
			s.engFor(w.core).Schedule(r.at+s.latency, w.resume)
		}
	}
}

// Accessor is the hub interface a CPU drives.
type Accessor interface {
	Access(addr msg.Addr, write bool, done func())
}

// CPU is one in-order core executing a Stream.
type CPU struct {
	id       msg.NodeID
	eng      *sim.Engine
	hub      Accessor
	stream   Stream
	bars     *BarrierSet
	maxStore int

	outstanding int
	pendingOp   *Op  // store stalled on a full buffer
	fencing     bool // waiting for the store buffer to drain at a barrier
	fenceBar    int

	done      bool
	finish    sim.Time
	barriers  uint64
	computeCy sim.Time

	// stepFn and retireFn are the hoisted method values for step and
	// storeRetired: binding them once here keeps the per-operation
	// continuation passing allocation free (a method value used inline
	// allocates its bound closure on every use).
	stepFn   func()
	retireFn func()
}

// New creates a core. maxStore bounds outstanding store misses.
func New(eng *sim.Engine, id msg.NodeID, hub Accessor, stream Stream,
	bars *BarrierSet, maxStore int) *CPU {
	if maxStore < 1 {
		maxStore = 1
	}
	c := &CPU{id: id, eng: eng, hub: hub, stream: stream, bars: bars, maxStore: maxStore}
	c.stepFn = c.step
	c.retireFn = c.storeRetired
	return c
}

// Start schedules the core's first instruction.
func (c *CPU) Start() { c.eng.After(0, c.stepFn) }

// Done reports whether the program finished.
func (c *CPU) Done() bool { return c.done }

// Finish returns the completion time (valid once Done).
func (c *CPU) Finish() sim.Time { return c.finish }

// Barriers returns how many barriers the core has crossed.
func (c *CPU) Barriers() uint64 { return c.barriers }

// step executes operations until the core blocks or the program ends.
func (c *CPU) step() {
	for {
		op, ok := c.stream.Next()
		if !ok {
			c.done = true
			c.finish = c.eng.Now()
			return
		}
		switch op.Kind {
		case Compute:
			c.computeCy += op.Cycles
			c.eng.After(op.Cycles, c.stepFn)
			return
		case Load:
			c.hub.Access(op.Addr, false, c.stepFn)
			return
		case Store:
			if c.outstanding >= c.maxStore {
				op := op
				c.pendingOp = &op
				return // stalled until a store retires
			}
			c.issueStore(op)
			c.eng.After(1, c.stepFn)
			return
		case Barrier:
			c.barriers++
			if c.outstanding > 0 {
				c.fencing = true
				c.fenceBar = op.Bar
				return // the last store retirement arrives at the barrier
			}
			c.bars.Arrive(op.Bar, c.id, c.stepFn)
			return
		default:
			panic(fmt.Sprintf("cpu: core %d got unknown op kind %d", c.id, op.Kind))
		}
	}
}

func (c *CPU) issueStore(op Op) {
	c.outstanding++
	c.hub.Access(op.Addr, true, c.retireFn)
}

func (c *CPU) storeRetired() {
	c.outstanding--
	if c.pendingOp != nil && c.outstanding < c.maxStore {
		op := *c.pendingOp
		c.pendingOp = nil
		c.issueStore(op)
		c.eng.After(1, c.stepFn)
		return
	}
	if c.fencing && c.outstanding == 0 {
		c.fencing = false
		c.bars.Arrive(c.fenceBar, c.id, c.stepFn)
	}
}
