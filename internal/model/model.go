// Package model is the "simple analytical model" the paper mentions in §5
// (used there to derive the 1/(1-accuracy) speedup limit): execution-time
// predictions from first principles — miss counts times per-class
// latencies — validated against the simulator. It exists for two reasons:
// sanity-checking simulator results (a measured speedup far from the
// model's prediction signals a bug or an unmodeled effect), and exploring
// parameter regions without simulating.
package model

import (
	"math"

	"pccsim/internal/core"
	"pccsim/internal/stats"
)

// ClassLatency is the modeled round-trip latency of each miss class, in
// processor cycles.
type ClassLatency struct {
	LocalRAC   float64
	LocalHome  float64
	Remote2Hop float64
	Remote3Hop float64
}

// Latencies derives per-class latencies from a machine configuration.
// Network legs use the expected hop count of the fat tree (for 16 nodes:
// 8 of 15 peers are 1 hop away, 7 are 2 hops).
func Latencies(cfg core.Config) ClassLatency {
	hop := float64(cfg.Network.HopLatency)
	ser := float64(2 * (32 / max(1, cfg.Network.PortBytesPerCycle))) // header serialization both ends
	leg := avgHops(cfg)*hop + ser
	dir := float64(cfg.DirLatency)
	dram := float64(cfg.DRAMLatency)
	l2 := float64(cfg.L2Latency)
	return ClassLatency{
		LocalRAC:   l2 + dir,
		LocalHome:  l2 + dir + dram,
		Remote2Hop: l2 + 2*leg + dir + dram/2, // data often comes from a cache, not DRAM
		Remote3Hop: l2 + 3*leg + 2*dir,
	}
}

// avgHops is the expected router hops between two distinct nodes.
func avgHops(cfg core.Config) float64 {
	n := cfg.Nodes
	if n <= 1 {
		return 0
	}
	radix := cfg.Network.Radix
	if radix <= 0 {
		radix = 8
	}
	same := radix - 1
	if same > n-1 {
		same = n - 1
	}
	cross := (n - 1) - same
	return (float64(same)*1 + float64(cross)*2) / float64(n-1)
}

// StallCycles estimates the per-node memory stall time of a run: the
// miss-class counts weighted by their latencies, averaged over nodes.
// Stores overlap in the store buffer, so only a fraction of miss latency
// is exposed; loads block fully. The blocking factor folds both together.
func StallCycles(cfg core.Config, st *stats.Stats) float64 {
	lat := Latencies(cfg)
	total := float64(st.Misses[stats.MissLocalRAC])*lat.LocalRAC +
		float64(st.Misses[stats.MissLocalHome])*lat.LocalHome +
		float64(st.Misses[stats.MissRemote2Hop])*lat.Remote2Hop +
		float64(st.Misses[stats.MissRemote3Hop])*lat.Remote3Hop
	const blockingFactor = 0.8 // loads block, stores partially overlap
	return blockingFactor * total / float64(cfg.Nodes)
}

// PredictSpeedup predicts the mechanism configuration's speedup from the
// two runs' miss profiles: the base execution time minus the modeled
// reduction in per-node stall time.
func PredictSpeedup(cfg core.Config, base, mech *stats.Stats) float64 {
	saved := StallCycles(cfg, base) - StallCycles(cfg, mech)
	b := float64(base.ExecCycles)
	if b <= 0 || saved >= b {
		return math.Inf(1)
	}
	return b / (b - saved)
}

// LatencyLimit is the §5 bound: with update accuracy a and a fraction f of
// base execution time spent on removable remote misses, speedup approaches
// 1/(1-a*f) as network latency grows; with f -> 1 this is the paper's
// 1/(1-accuracy).
func LatencyLimit(accuracy, remoteFraction float64) float64 {
	x := accuracy * remoteFraction
	if x >= 1 {
		return math.Inf(1)
	}
	if x < 0 {
		x = 0
	}
	return 1 / (1 - x)
}

// RemoteFraction estimates f for LatencyLimit from a base run: the share
// of execution time the model attributes to remote misses.
func RemoteFraction(cfg core.Config, base *stats.Stats) float64 {
	lat := Latencies(cfg)
	remote := float64(base.Misses[stats.MissRemote2Hop])*lat.Remote2Hop +
		float64(base.Misses[stats.MissRemote3Hop])*lat.Remote3Hop
	f := 0.8 * remote / float64(cfg.Nodes) / float64(base.ExecCycles)
	if f > 1 {
		f = 1
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
