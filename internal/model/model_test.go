package model

import (
	"math"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/harness"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

func TestLatenciesOrdering(t *testing.T) {
	lat := Latencies(core.DefaultConfig())
	if !(lat.LocalRAC < lat.LocalHome) {
		t.Fatalf("RAC (%f) should beat local memory (%f)", lat.LocalRAC, lat.LocalHome)
	}
	if !(lat.Remote2Hop < lat.Remote3Hop) {
		t.Fatalf("2-hop (%f) should beat 3-hop (%f)", lat.Remote2Hop, lat.Remote3Hop)
	}
	if !(lat.LocalRAC < lat.Remote2Hop) {
		t.Fatal("local RAC should beat any remote miss")
	}
}

func TestLatenciesScaleWithHop(t *testing.T) {
	slow := core.DefaultConfig()
	slow.Network.HopLatency = 400
	l1 := Latencies(core.DefaultConfig())
	l2 := Latencies(slow)
	if l2.Remote3Hop <= l1.Remote3Hop {
		t.Fatal("remote latency did not scale with hop latency")
	}
	if l2.LocalRAC != l1.LocalRAC {
		t.Fatal("local latency should not depend on hop latency")
	}
}

func TestAvgHops(t *testing.T) {
	cfg := core.DefaultConfig() // 16 nodes, radix 8
	got := avgHops(cfg)
	want := (7.0*1 + 8.0*2) / 15.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("avgHops = %f, want %f", got, want)
	}
	one := cfg
	one.Nodes = 1
	if avgHops(one) != 0 {
		t.Fatal("single node should have 0 hops")
	}
}

func TestLatencyLimit(t *testing.T) {
	if got := LatencyLimit(0, 1); got != 1 {
		t.Fatalf("zero accuracy limit = %f, want 1", got)
	}
	if got := LatencyLimit(0.5, 1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("a=0.5 limit = %f, want 2", got)
	}
	if !math.IsInf(LatencyLimit(1, 1), 1) {
		t.Fatal("perfect accuracy limit should be infinite")
	}
	if got := LatencyLimit(1, 0.5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("a=1,f=0.5 limit = %f, want 2", got)
	}
}

// The model must predict the simulator's measured speedups within a loose
// band (it is a back-of-envelope model, not a second simulator) and always
// get the direction right.
func TestModelPredictsSimulatorSpeedups(t *testing.T) {
	opts := harness.Options{Nodes: 16, Scale: 1}
	base := core.DefaultConfig()
	base.Nodes = opts.Nodes
	mechCfg := base.With(core.WithRAC(1024), core.WithDelegation(1024), core.WithSpeculativeUpdates(0))

	for _, wl := range workload.All() {
		bst := harness.MustRun(base, wl, workload.Params{Nodes: 16})
		mst := harness.MustRun(mechCfg, wl, workload.Params{Nodes: 16})
		measured := float64(bst.ExecCycles) / float64(mst.ExecCycles)
		predicted := PredictSpeedup(base, bst, mst)
		t.Logf("%-8s measured %.3f predicted %.3f", wl.Name, measured, predicted)

		if (measured > 1.02) != (predicted > 1.02) && measured > 1.05 {
			t.Errorf("%s: model missed the direction: measured %.3f predicted %.3f",
				wl.Name, measured, predicted)
		}
		// Loose band: the prediction must capture the magnitude within
		// a factor of ~2 on the improvement part.
		mImp, pImp := measured-1, predicted-1
		if mImp > 0.05 && (pImp < mImp/3 || pImp > mImp*3) {
			t.Errorf("%s: prediction off by >3x: measured +%.1f%% predicted +%.1f%%",
				wl.Name, 100*mImp, 100*pImp)
		}
	}
}

// The latency limit must upper-bound what the simulator achieves at any
// hop latency for the RAC-starved Appbt configuration.
func TestLatencyLimitBoundsAppbt(t *testing.T) {
	wl, _ := workload.ByName("appbt")
	base := core.DefaultConfig()
	base.Network.HopLatency = 400 // deep in the latency-dominated regime
	bst := harness.MustRun(base, wl, workload.Params{Nodes: 16})

	mech := base.With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
	mst := harness.MustRun(mech, wl, workload.Params{Nodes: 16})

	measured := float64(bst.ExecCycles) / float64(mst.ExecCycles)
	f := RemoteFraction(base, bst)
	// In the limit the removable share is bounded by how many remote
	// misses the mechanisms eliminated at all.
	removed := 1 - float64(mst.RemoteMisses())/float64(bst.RemoteMisses())
	limit := LatencyLimit(removed+0.15, f) // slack: 2-hop conversions also save time
	if measured > limit {
		t.Fatalf("measured speedup %.3f exceeds the analytic limit %.3f (f=%.2f removed=%.2f)",
			measured, limit, f, removed)
	}
}

func TestStallCyclesMonotoneInMisses(t *testing.T) {
	cfg := core.DefaultConfig()
	a, b := stats.New(), stats.New()
	a.Misses[stats.MissRemote3Hop] = 100
	b.Misses[stats.MissRemote3Hop] = 100
	b.Misses[stats.MissRemote2Hop] = 50
	if StallCycles(cfg, b) <= StallCycles(cfg, a) {
		t.Fatal("more misses should mean more stall")
	}
}

func TestPredictSpeedupDegenerate(t *testing.T) {
	cfg := core.DefaultConfig()
	base := stats.New()
	base.ExecCycles = 0
	if !math.IsInf(PredictSpeedup(cfg, base, stats.New()), 1) {
		t.Fatal("zero base cycles should predict infinity")
	}
}
