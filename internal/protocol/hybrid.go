package protocol

func init() { Register(hybrid{}) }

// hybridStreakLimit is how many consecutive pushed updates a sharer
// absorbs without reading any of them before it self-invalidates and
// drops out of the update set. Dovgopol & Rosonke's hybrid schemes key
// the update/invalidate choice on sharer stability; a small saturating
// per-copy counter is the hardware-plausible form of that test.
const hybridStreakLimit = 4

// hybrid is a hybrid update/invalidate directory protocol after Dovgopol
// & Rosonke (arXiv:1502.00101): writes to lines the detector classifies
// producer-consumer commit at the home and push the fresh data to the
// current sharers instead of invalidating them, so stable consumers read
// locally without a miss. Sharers that let updates pile up unread
// self-invalidate after hybridStreakLimit pushes, degrading the line
// back toward write-invalidate — the "adaptive hybrid" rule. Writes to
// lines without producer-consumer evidence invalidate classically.
type hybrid struct{}

func (hybrid) Name() string { return "hybrid" }

func (hybrid) Description() string {
	return "hybrid update/invalidate (pushes updates to stable sharers, per Dovgopol & Rosonke)"
}

func (hybrid) Capabilities() Capabilities {
	return Capabilities{HybridUpdates: true}
}

// SharedWrite pushes updates when the detector sees a producer-consumer
// pattern and there are sharers to push to; otherwise it invalidates.
func (hybrid) SharedWrite(v WriteView) WriteDecision {
	if v.IsPC && !v.Targets.Empty() {
		return PushUpdates
	}
	return Invalidate
}

func (hybrid) UpdateStreakLimit() int { return hybridStreakLimit }
