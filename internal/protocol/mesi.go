package protocol

func init() { Register(mesi{}) }

// mesi is the plain MESI-style write-invalidate directory protocol — the
// paper's own comparison base (an SGI-Origin-like home-based protocol
// with NACK/retry, no silent exclusive grants). It declares no optional
// capabilities, so configurations that enable delegation, updates, or
// self-invalidation are rejected up front and every shared write
// invalidates.
type mesi struct{}

func (mesi) Name() string { return "mesi" }

func (mesi) Description() string {
	return "MESI-style write-invalidate directory baseline (SGI-Origin-like, no adaptive mechanisms)"
}

func (mesi) Capabilities() Capabilities { return Capabilities{} }

func (mesi) SharedWrite(v WriteView) WriteDecision { return Invalidate }

func (mesi) UpdateStreakLimit() int { return 0 }
