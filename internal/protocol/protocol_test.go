package protocol

import (
	"errors"
	"sort"
	"testing"

	"pccsim/internal/msg"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := []string{"adaptive", "dsi", "hybrid", "mesi"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, p.Name())
		}
		if p.Description() == "" {
			t.Errorf("%s: empty description", name)
		}
	}

	p, err := Lookup("")
	if err != nil {
		t.Fatalf("Lookup(\"\"): %v", err)
	}
	if p.Name() != Default {
		t.Fatalf("Lookup(\"\") = %q, want default %q", p.Name(), Default)
	}

	if _, err := Lookup("mosi"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Lookup(mosi) err = %v, want ErrUnknown", err)
	}
}

func TestAllMatchesNames(t *testing.T) {
	all := All()
	names := Names()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries, Names() %d", len(all), len(names))
	}
	for i, p := range all {
		if p.Name() != names[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, p.Name(), names[i])
		}
	}
}

// TestAdaptiveDecision pins the paper protocol's shared-write rule to
// the pre-plugin simulator's: delegate exactly when delegation is on,
// the line is producer-consumer, and the writer is remote.
func TestAdaptiveDecision(t *testing.T) {
	p, _ := Lookup("adaptive")
	cases := []struct {
		name string
		v    WriteView
		want WriteDecision
	}{
		{"remote-pc-delegation-on", WriteView{Requester: 1, Home: 0, IsPC: true, DelegationOn: true}, Delegate},
		{"local-writer", WriteView{Requester: 0, Home: 0, IsPC: true, DelegationOn: true}, Invalidate},
		{"not-pc", WriteView{Requester: 1, Home: 0, IsPC: false, DelegationOn: true}, Invalidate},
		{"delegation-off", WriteView{Requester: 1, Home: 0, IsPC: true, DelegationOn: false}, Invalidate},
	}
	for _, c := range cases {
		if got := p.SharedWrite(c.v); got != c.want {
			t.Errorf("%s: SharedWrite = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHybridDecision(t *testing.T) {
	p, _ := Lookup("hybrid")
	if !p.Capabilities().HybridUpdates {
		t.Fatal("hybrid must declare HybridUpdates")
	}
	if p.UpdateStreakLimit() <= 0 {
		t.Fatal("hybrid must have a positive update streak limit")
	}
	targets := msg.Vector{}.Set(2).Set(3)
	if got := p.SharedWrite(WriteView{Requester: 1, IsPC: true, Targets: targets}); got != PushUpdates {
		t.Fatalf("hybrid PC write with sharers: got %v, want PushUpdates", got)
	}
	if got := p.SharedWrite(WriteView{Requester: 1, IsPC: true}); got != Invalidate {
		t.Fatalf("hybrid PC write without sharers: got %v, want Invalidate", got)
	}
	if got := p.SharedWrite(WriteView{Requester: 1, IsPC: false, Targets: targets}); got != Invalidate {
		t.Fatalf("hybrid non-PC write: got %v, want Invalidate", got)
	}
}

// TestDecisionLegality checks the interface contract: only protocols
// declaring a capability may return the decision that needs it.
func TestDecisionLegality(t *testing.T) {
	targets := msg.Vector{}.Set(2)
	views := []WriteView{
		{},
		{Requester: 1, Home: 0, IsPC: true, DelegationOn: true, Targets: targets},
		{Requester: 1, Home: 0, IsPC: true, Targets: targets},
		{Requester: 0, Home: 0, IsPC: false, DelegationOn: true, Targets: targets},
	}
	for _, p := range All() {
		caps := p.Capabilities()
		for _, v := range views {
			switch d := p.SharedWrite(v); d {
			case Delegate:
				if !caps.Delegation {
					t.Errorf("%s returned Delegate without the Delegation capability", p.Name())
				}
				if !v.DelegationOn {
					t.Errorf("%s returned Delegate with delegation disabled", p.Name())
				}
			case PushUpdates:
				if !caps.HybridUpdates {
					t.Errorf("%s returned PushUpdates without the HybridUpdates capability", p.Name())
				}
			case Invalidate:
			default:
				t.Errorf("%s returned unknown decision %v", p.Name(), d)
			}
		}
	}
}

func TestWriteDecisionString(t *testing.T) {
	if Invalidate.String() != "Invalidate" || Delegate.String() != "Delegate" || PushUpdates.String() != "PushUpdates" {
		t.Fatal("WriteDecision.String mismatch")
	}
	if WriteDecision(99).String() != "WriteDecision(99)" {
		t.Fatal("unknown WriteDecision.String mismatch")
	}
}
