// Package protocol defines the pluggable coherence-protocol interface
// and its registry. The simulator core (internal/core) owns the event
// machinery — message delivery, directory entries, MSHRs, timing — and
// consults a Protocol at the decision points where registered protocols
// legitimately differ: what to do when a write hits a Shared line with
// other sharers, and which optional mechanisms (delegation, speculative
// updates, self-invalidation, hybrid update pushes) the configuration
// may enable.
//
// A Protocol implementation is a set of pure decision functions: it must
// not schedule events, send messages, or mutate directory state. That
// discipline is what lets the paper's adaptive protocol run through this
// interface byte-identically to the pre-plugin simulator (the fig9/fig10
// golden CSVs and the Perfetto golden pin that equivalence), while the
// MESI baseline and the hybrid update/invalidate rival plug in beside it.
package protocol

import (
	"errors"
	"fmt"
	"sort"

	"pccsim/internal/directory"
	"pccsim/internal/msg"
)

// Capabilities declares which optional mechanisms a protocol supports.
// Config validation rejects configurations that switch on a mechanism
// the selected protocol does not implement, so a capability bit being
// false means the corresponding machinery in the core is unreachable —
// not merely unused — under that protocol.
type Capabilities struct {
	// Delegation: the protocol may hand a directory entry to the
	// producer node (the paper's §2.3). Requires a RAC to host the
	// delegated master copy.
	Delegation bool

	// SpeculativeUpdates: the protocol may push updates to the previous
	// readers via delayed interventions (the paper's §2.4). Requires
	// delegation in this implementation (updates ride the producer
	// table's intervention timer).
	SpeculativeUpdates bool

	// SelfInvalidation: owners of detected producer-consumer lines may
	// eagerly downgrade after their write burst (the dynamic
	// self-invalidation baseline the paper compares against).
	SelfInvalidation bool

	// AdaptiveDelay: the delayed-intervention interval may adapt per
	// line instead of staying fixed (§2.4.1's tuning knob).
	AdaptiveDelay bool

	// HybridUpdates: shared-write hits push data updates to the current
	// sharers instead of invalidating them (Dovgopol & Rosonke's hybrid
	// update/invalidate family, arXiv:1502.00101). Mutually exclusive
	// with the mechanisms above: it replaces the invalidate-on-write
	// rule itself rather than layering on top of it.
	HybridUpdates bool
}

// WriteDecision is a protocol's verdict on a write that reached the home
// directory in the Shared state with other sharers present.
type WriteDecision uint8

const (
	// Invalidate runs the classic write-invalidate flow: invalidate the
	// sharers, grant exclusivity to the writer.
	Invalidate WriteDecision = iota

	// Delegate hands the directory entry to the writer (the paper's
	// §2.3.1 delegation decision) along with invalidating sharers.
	Delegate

	// PushUpdates commits the write at the home and pushes the new data
	// to the current sharers, leaving the line Shared (hybrid
	// update/invalidate).
	PushUpdates
)

func (d WriteDecision) String() string {
	switch d {
	case Invalidate:
		return "Invalidate"
	case Delegate:
		return "Delegate"
	case PushUpdates:
		return "PushUpdates"
	}
	return fmt.Sprintf("WriteDecision(%d)", uint8(d))
}

// WriteView is the read-only evidence a protocol may consult when
// deciding a Shared-state write. The Entry pointer is live directory
// state: implementations must treat it as immutable.
type WriteView struct {
	Entry        *directory.Entry
	Requester    msg.NodeID // the writing node
	Home         msg.NodeID // the home (or delegated home) making the decision
	Targets      msg.Vector // current sharers minus the requester
	IsPC         bool       // the detector classifies the line producer-consumer
	DelegationOn bool       // the run's configuration enables delegation
}

// Protocol is one registered coherence protocol. Implementations must be
// stateless (safe for concurrent use by every hub of every run) and
// must confine themselves to returning decisions: the core performs all
// state changes and message sends itself, in a fixed order, so that a
// protocol returning the same decisions as another produces bit-identical
// simulations.
type Protocol interface {
	// Name is the registry key ("adaptive", "mesi", ...).
	Name() string

	// Description is a one-line summary for listings.
	Description() string

	// Capabilities declares the optional mechanisms configurations may
	// enable under this protocol.
	Capabilities() Capabilities

	// SharedWrite decides a write request that found the line Shared at
	// the (possibly delegated) home with other sharers present. A
	// protocol may only return PushUpdates if its Capabilities declare
	// HybridUpdates, and only Delegate if they declare Delegation and
	// the view's DelegationOn is set.
	SharedWrite(v WriteView) WriteDecision

	// UpdateStreakLimit is the number of consecutive unread update
	// pushes a sharer tolerates before self-invalidating its copy
	// (leaving the update set). Only consulted when HybridUpdates is
	// set; others return 0.
	UpdateStreakLimit() int
}

// ErrUnknown is wrapped by Lookup failures, so callers can classify a
// bad protocol name with errors.Is instead of matching message text.
var ErrUnknown = errors.New("protocol: unknown protocol")

var registry = map[string]Protocol{}

// Register adds a protocol to the registry. It panics on a duplicate or
// empty name — registration happens from init functions, where a clash
// is a programming error.
func Register(p Protocol) {
	name := p.Name()
	if name == "" {
		panic("protocol: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protocol: Register called twice for %q", name))
	}
	registry[name] = p
}

// Lookup resolves a protocol by name. The empty name resolves to the
// default (the paper's adaptive protocol). Failures wrap ErrUnknown and
// list the valid names.
func Lookup(name string) (Protocol, error) {
	if name == "" {
		name = Default
	}
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknown, name, Names())
}

// Default is the name resolved when no protocol is selected.
const Default = "adaptive"

// Names returns the registered protocol names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered protocols in name order.
func All() []Protocol {
	names := Names()
	out := make([]Protocol, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}
