package protocol

func init() { Register(adaptive{}) }

// adaptive is the paper's protocol: a write-invalidate directory base
// whose producer-consumer detector steers directory delegation (§2.3),
// speculative updates via delayed interventions (§2.4), and dynamic
// self-invalidation — all individually enabled by configuration. It is
// the default protocol, and the reference implementation the fig9/fig10
// goldens pin: its SharedWrite reproduces the pre-plugin simulator's
// decision rule exactly.
type adaptive struct{}

func (adaptive) Name() string { return "adaptive" }

func (adaptive) Description() string {
	return "paper's adaptive producer-consumer protocol (delegation, speculative updates, self-invalidation)"
}

func (adaptive) Capabilities() Capabilities {
	return Capabilities{
		Delegation:         true,
		SpeculativeUpdates: true,
		SelfInvalidation:   true,
		AdaptiveDelay:      true,
	}
}

// SharedWrite delegates the directory entry to a remote writer of a
// detected producer-consumer line when delegation is on (§2.3.1's
// decision rule, verbatim from the pre-plugin home FSM); every other
// shared write invalidates.
func (adaptive) SharedWrite(v WriteView) WriteDecision {
	if v.DelegationOn && v.IsPC && v.Requester != v.Home {
		return Delegate
	}
	return Invalidate
}

func (adaptive) UpdateStreakLimit() int { return 0 }
