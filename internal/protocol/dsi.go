package protocol

func init() { Register(dsi{}) }

// dsi is the dynamic self-invalidation baseline (Lebeck & Wood / Lai &
// Falsafi, the related work the paper's §5 compares against): the
// write-invalidate base where owners of detected producer-consumer
// lines eagerly downgrade after their write burst, converting later
// 3-hop reads into 2-hop home hits. It has no delegation and no update
// pushes; its only capability is the self-invalidation timer.
type dsi struct{}

func (dsi) Name() string { return "dsi" }

func (dsi) Description() string {
	return "write-invalidate + dynamic self-invalidation of producer-consumer lines"
}

func (dsi) Capabilities() Capabilities {
	return Capabilities{SelfInvalidation: true}
}

func (dsi) SharedWrite(v WriteView) WriteDecision { return Invalidate }

func (dsi) UpdateStreakLimit() int { return 0 }
