package runner

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/workload"
)

func testParams() workload.Params { return workload.Params{Nodes: 8, Scale: 1, Iters: 2} }

func testJob(label string, cfg core.Config) Job {
	wl, _ := workload.ByName("em3d")
	return Job{Label: label, Cfg: cfg, Workload: wl, Params: testParams()}
}

func baseCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = 8
	return cfg
}

// mutate bumps one field (selected by path) in place: ints +1, uints +1,
// bools flipped. It reports the field's dotted name.
func mutate(v reflect.Value, fieldPath []int, t *testing.T) string {
	typ := v.Type()
	name := ""
	for _, i := range fieldPath[:len(fieldPath)-1] {
		name += typ.Field(i).Name + "."
		v = v.Field(i)
		typ = v.Type()
	}
	last := fieldPath[len(fieldPath)-1]
	name += typ.Field(last).Name
	f := v.Field(last)
	switch f.Kind() {
	case reflect.Int, reflect.Int64:
		f.SetInt(f.Int() + 1)
	case reflect.Uint, reflect.Uint64:
		f.SetUint(f.Uint() + 1)
	case reflect.Bool:
		f.SetBool(!f.Bool())
	case reflect.String:
		f.SetString(f.String() + "x")
	default:
		t.Fatalf("field %s has unsupported kind %s — teach this test (and check Fingerprint handles it)",
			name, f.Kind())
	}
	return name
}

// fieldPaths enumerates every leaf field of a struct type, recursing into
// nested structs.
func fieldPaths(typ reflect.Type, prefix []int) [][]int {
	var out [][]int
	for i := 0; i < typ.NumField(); i++ {
		path := append(append([]int{}, prefix...), i)
		if typ.Field(i).Type.Kind() == reflect.Struct {
			out = append(out, fieldPaths(typ.Field(i).Type, path)...)
			continue
		}
		out = append(out, path)
	}
	return out
}

// TestFingerprintDistinguishesEveryConfigField mutates every single field
// of core.Config — the way a ConfigSpec.Mutate hook would — and requires a
// distinct memo key each time. A collision here would silently merge two
// different experiment cells.
func TestFingerprintDistinguishesEveryConfigField(t *testing.T) {
	base := baseCfg()
	ref := Fingerprint(base, "em3d", testParams())
	seen := map[string]string{ref: "base"}
	for _, path := range fieldPaths(reflect.TypeOf(base), nil) {
		spec := struct{ Mutate func(*core.Config) string }{
			Mutate: func(c *core.Config) string {
				return mutate(reflect.ValueOf(c).Elem(), path, t)
			},
		}
		cfg := base // ConfigSpec.Apply semantics: copy, then mutate
		name := spec.Mutate(&cfg)
		key := Fingerprint(cfg, "em3d", testParams())
		if key == ref {
			t.Errorf("mutating Config.%s did not change the fingerprint", name)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("Config.%s collides with %s", name, prev)
		}
		seen[key] = "Config." + name
	}
}

// TestFingerprintDistinguishesWorkloadAndParams covers the non-config
// parts of the cell identity.
func TestFingerprintDistinguishesWorkloadAndParams(t *testing.T) {
	base := baseCfg()
	ref := Fingerprint(base, "em3d", testParams())
	if Fingerprint(base, "ocean", testParams()) == ref {
		t.Error("workload name not part of the key")
	}
	p := reflect.ValueOf(testParams())
	for _, path := range fieldPaths(p.Type(), nil) {
		params := testParams()
		name := mutate(reflect.ValueOf(&params).Elem(), path, t)
		if Fingerprint(base, "em3d", params) == ref {
			t.Errorf("mutating Params.%s did not change the fingerprint", name)
		}
	}
}

// TestMemoizationHitsAndSharesStats runs the same cell twice (plus a
// distinct one): the duplicate must not simulate again and must return the
// same stats.
func TestMemoizationHitsAndSharesStats(t *testing.T) {
	var mu sync.Mutex
	simulated, cached := 0, 0
	r := New(2, func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if !ev.Done {
			return
		}
		if ev.Cached {
			cached++
		} else {
			simulated++
		}
	})
	mech := baseCfg().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
	jobs := []Job{
		testJob("a", baseCfg()),
		testJob("b", mech),
		testJob("a-again", baseCfg()),
	}
	res, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != res[2] {
		t.Fatal("identical cells did not share the memoized stats")
	}
	if !reflect.DeepEqual(*res[0], *res[2]) {
		t.Fatal("cached stats not equal")
	}
	if res[0] == res[1] || res[0].ExecCycles == 0 {
		t.Fatal("distinct cells merged, or empty run")
	}
	if simulated != 2 || cached != 1 {
		t.Fatalf("simulated=%d cached=%d, want 2/1", simulated, cached)
	}
	if r.Cells() != 2 {
		t.Fatalf("Cells() = %d, want 2", r.Cells())
	}
	// A later Run on the same Runner still hits the memo (cross-figure
	// reuse is the whole point).
	res2, err := r.Run([]Job{testJob("a-later", baseCfg())})
	if err != nil {
		t.Fatal(err)
	}
	if res2[0] != res[0] {
		t.Fatal("memo not shared across Run calls")
	}
}

// TestParallelMatchesSequential proves result assembly is deterministic:
// any worker count produces identical stats in identical (submission)
// order.
func TestParallelMatchesSequential(t *testing.T) {
	mkJobs := func() []Job {
		var jobs []Job
		for _, name := range []string{"em3d", "ocean", "lu"} {
			wl, _ := workload.ByName(name)
			jobs = append(jobs,
				Job{Label: name + "/base", Cfg: baseCfg(), Workload: wl, Params: testParams()},
				Job{Label: name + "/mech", Cfg: baseCfg().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0)),
					Workload: wl, Params: testParams()})
		}
		return jobs
	}
	seq, err := New(1, nil).Run(mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(4, nil).Run(mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("length mismatch %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(*seq[i], *par[i]) {
			t.Fatalf("job %d diverged between 1 and 4 workers", i)
		}
	}
}

// TestErrorPropagation: a failing cell must surface as an error naming the
// job (never a panic), other cells must still produce results, and the
// earliest failing job by submission order wins.
func TestErrorPropagation(t *testing.T) {
	bad := baseCfg()
	bad.Nodes = 4 // workload builds 8 streams -> node.Run error
	jobs := []Job{
		testJob("good-one", baseCfg()),
		testJob("bad-cell", bad),
		testJob("good-two", baseCfg().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))),
	}
	res, err := New(2, nil).Run(jobs)
	if err == nil {
		t.Fatal("failing cell produced no error")
	}
	if !strings.Contains(err.Error(), "bad-cell") {
		t.Fatalf("error does not name the job: %v", err)
	}
	if res[1] != nil {
		t.Fatal("failed job has non-nil stats")
	}
	if res[0] == nil || res[2] == nil {
		t.Fatal("healthy cells lost their results")
	}
	// The memoized error is shared by later identical jobs.
	if _, err2 := New(2, nil).Run([]Job{testJob("x", bad)}); err2 == nil {
		t.Fatal("second runner accepted the bad cell")
	}
}

// TestProgressEvents checks the observer protocol: one start + one done
// per simulated cell, threaded through node.New into the core event loop
// (so Events and Wall are real measurements).
func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	r := New(1, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if _, err := r.Run([]Job{testJob("cell", baseCfg())}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want start+done", len(events))
	}
	if events[0].Done || events[0].Label != "cell" || events[0].Fingerprint == "" {
		t.Fatalf("bad start event %+v", events[0])
	}
	done := events[1]
	if !done.Done || done.Cached || done.Err != nil {
		t.Fatalf("bad done event %+v", done)
	}
	if done.Events == 0 {
		t.Fatal("done event reports zero engine events")
	}
	if done.Wall <= 0 {
		t.Fatal("done event reports no wall time")
	}
}
