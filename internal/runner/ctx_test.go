package runner

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pccsim/internal/node"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
	"pccsim/internal/workload"
)

// slowJob is a cell big enough that a cancel issued at run start lands
// mid-simulation (a few hundred thousand engine events).
func slowJob(label string) Job {
	wl, _ := workload.ByName("em3d")
	cfg := baseCfg()
	return Job{Label: label, Cfg: cfg, Workload: wl,
		Params: workload.Params{Nodes: 8, Scale: 4, Iters: 8}}
}

func TestRunOneCtxCancelMidRun(t *testing.T) {
	r := New(1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	job := slowJob("cancel")
	started := make(chan struct{})
	job.Attach = func(*node.Machine) { close(started) }
	go func() {
		<-started
		cancel()
	}()
	_, cached, err := r.RunOneCtx(ctx, job)
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("RunOneCtx = (cached=%v, %v), want ErrInterrupted", cached, err)
	}
	// The interrupted cell must not be memoized: the same fingerprint
	// resubmitted with a live context simulates fresh and succeeds.
	st, cached, err := r.RunOneCtx(context.Background(), slowJob("retry"))
	if err != nil {
		t.Fatalf("resubmit after cancel: %v", err)
	}
	if cached {
		t.Fatal("resubmit was served from an interrupted cell")
	}
	if st == nil || st.ExecCycles == 0 {
		t.Fatalf("resubmit produced empty stats: %+v", st)
	}
	// And it must match an untouched runner bit-for-bit.
	want, err := New(1, nil).RunOne(slowJob("ref"))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	var got, ref bytes.Buffer
	st.Dump(&got)
	want.Dump(&ref)
	if got.String() != ref.String() {
		t.Fatalf("post-cancel rerun diverged from reference:\n%s\nvs\n%s",
			got.String(), ref.String())
	}
}

func TestRunOneCtxWaiterDetaches(t *testing.T) {
	r := New(1, nil)
	job := slowJob("owner")
	release := make(chan struct{})
	ownerDone := make(chan struct{})
	ownJob := job
	ownJob.Attach = func(*node.Machine) {
		close(release) // owner has claimed the cell and is about to run
	}
	go func() {
		defer close(ownerDone)
		if _, _, err := r.RunOneCtx(context.Background(), ownJob); err != nil {
			t.Errorf("owner run: %v", err)
		}
	}()
	<-release
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.RunOneCtx(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	<-ownerDone
	// The owner's result survived the waiter's departure.
	st, cached, err := r.RunOneCtx(context.Background(), job)
	if err != nil || !cached || st == nil {
		t.Fatalf("post-run claim = (%v, cached=%v, %v), want cached hit", st, cached, err)
	}
}

func TestRunOneCtxMemoAndStats(t *testing.T) {
	r := New(1, nil)
	job := testJob("a", baseCfg())
	st1, cached, err := r.RunOneCtx(context.Background(), job)
	if err != nil || cached {
		t.Fatalf("first run = (cached=%v, %v)", cached, err)
	}
	st2, cached, err := r.RunOneCtx(context.Background(), job)
	if err != nil || !cached {
		t.Fatalf("second run = (cached=%v, %v), want cache hit", cached, err)
	}
	if st1 != st2 {
		t.Fatal("duplicate submissions returned distinct stats objects")
	}
	hits, misses := r.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("CacheStats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestAttachObserves pins the Attach contract: the hook sees the live
// machine (here: counting obs events), fires only on the owning
// simulation, and changes nothing about the result.
func TestAttachObserves(t *testing.T) {
	plain, err := New(1, nil).RunOne(testJob("plain", baseCfg()))
	if err != nil {
		t.Fatal(err)
	}
	r := New(1, nil)
	var events atomic.Uint64
	job := testJob("tapped", baseCfg())
	job.Attach = func(m *node.Machine) {
		sink := obs.NewSink(0)
		sink.Tap = func(obs.Event) { events.Add(1) }
		m.Sys.AttachObs(sink)
	}
	st, _, err := r.RunOneCtx(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Fatal("attached sink saw no events")
	}
	var a, b bytes.Buffer
	plain.Dump(&a)
	st.Dump(&b)
	if a.String() != b.String() {
		t.Fatal("attaching an obs sink changed the stats")
	}
	// Duplicate submission: served from memo, Attach not invoked.
	before := events.Load()
	dup := job
	dup.Attach = func(*node.Machine) { t.Error("Attach fired on a cached cell") }
	if _, cached, err := r.RunOneCtx(context.Background(), dup); err != nil || !cached {
		t.Fatalf("dup = (cached=%v, %v)", cached, err)
	}
	if events.Load() != before {
		t.Fatal("cached cell emitted events")
	}
}

// TestRunCtxCancelMidBatch pins the batch-cancel contract: cancelling
// mid-batch interrupts the cell currently simulating and fails the jobs
// not yet dispatched with the context error, so a long experiment batch
// stops within one cell's interrupt latency.
func TestRunCtxCancelMidBatch(t *testing.T) {
	r := New(1, nil) // one worker => strictly sequential dispatch
	ctx, cancel := context.WithCancel(context.Background())
	first := slowJob("first")
	first.Attach = func(*node.Machine) { cancel() } // fires as cell 0 starts
	jobs := []Job{
		first,
		testJob("second", baseCfg()),
		testJob("third", baseCfg()),
	}
	res, err := r.RunCtx(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if !errors.Is(err, sim.ErrInterrupted) && !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want interrupt or context.Canceled", err)
	}
	for i, st := range res {
		if st != nil {
			t.Fatalf("job %d produced stats after mid-batch cancel", i)
		}
	}
	// The runner survives the cancel: the same batch on a live context
	// simulates everything (the interrupted cell was forgotten, not
	// poisoned).
	res, err = r.RunCtx(context.Background(), []Job{
		slowJob("first"), testJob("second", baseCfg()), testJob("third", baseCfg()),
	})
	if err != nil {
		t.Fatalf("resubmitted batch: %v", err)
	}
	for i, st := range res {
		if st == nil || st.ExecCycles == 0 {
			t.Fatalf("resubmitted job %d has empty stats", i)
		}
	}
}

func TestRunOneCtxDeadlineNoFire(t *testing.T) {
	// A context that expires long after the run finishes must not
	// perturb anything — the watcher goroutine exits via the stop chan.
	r := New(1, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, _, err := r.RunOneCtx(ctx, testJob("fast", baseCfg())); err != nil {
		t.Fatal(err)
	}
}
