// Package runner is the concurrent experiment scheduler behind the
// harness: it executes independent (configuration, workload) simulation
// cells on a worker pool, memoizes each unique cell so cross-figure
// repeats (the Base configuration alone recurs in Figure 7, the Figure 8
// baseline, the ablation, ...) simulate exactly once per Runner, and
// assembles results deterministically in job-submission order regardless
// of completion order.
//
// Parallelism is strictly *across* simulations: every cell owns a private
// sim.Engine and stats.Stats, so each simulation stays bit-for-bit
// deterministic and the assembled results are byte-identical whether the
// pool has one worker or many.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/node"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// Job is one simulation cell: a concrete machine configuration running
// one workload build.
type Job struct {
	// Label identifies the cell in progress events and errors, e.g.
	// "fig7/em3d/32K RAC".
	Label string
	// Cfg is the fully applied machine configuration (after any
	// ConfigSpec mutation).
	Cfg core.Config
	// Workload generates the op streams.
	Workload *workload.Workload
	// Params sizes the workload build.
	Params workload.Params
	// Attach, when non-nil, receives the freshly built machine before it
	// runs — the place to hang an observability sink for live progress.
	// It is not part of the cell's fingerprint and fires only when this
	// job actually simulates (a duplicate served from the memo never
	// builds a machine), so it must not change simulation results;
	// attaching an obs sink satisfies that by construction.
	Attach func(*node.Machine)
}

// Event is one progress notification. Each cell that actually simulates
// emits a start event (Done=false) and a finish event (Done=true) carrying
// the engine event count and host wall time; a cell satisfied from the
// memo emits a single Done event with Cached=true.
type Event struct {
	Label       string
	Fingerprint string
	Done        bool
	Cached      bool
	Events      uint64 // engine events executed (0 for cached cells)
	Wall        time.Duration
	Err         error
}

// ProgressFunc receives Events. It may be called from multiple worker
// goroutines concurrently and must be safe for that.
type ProgressFunc func(Event)

// Fingerprint canonically identifies a simulation cell: any difference in
// any configuration field (including ones touched by a ConfigSpec.Mutate
// hook), in the workload name, or in the build parameters yields a
// distinct key. It relies on Config and Params being plain value structs
// (no pointers, funcs or maps), which Go's %#v renders canonically.
func Fingerprint(cfg core.Config, workloadName string, p workload.Params) string {
	return fmt.Sprintf("%s|%#v|%#v", workloadName, cfg, p)
}

// Runner schedules jobs over a worker pool with cross-call memoization.
// The zero value is not ready; use New. A Runner may be reused across many
// Run calls (the harness shares one per report so cells recur for free)
// and is safe for concurrent use.
type Runner struct {
	workers  int
	progress ProgressFunc
	cells    *cache
}

// New returns a Runner with the given worker-pool size (0 or negative
// means GOMAXPROCS) and optional progress hook (nil for silent runs).
func New(workers int, progress ProgressFunc) *Runner {
	return &Runner{
		workers:  workers,
		progress: progress,
		cells:    newCache(),
	}
}

// Workers resolves the effective pool size.
func (r *Runner) Workers() int {
	if r.workers > 0 {
		return r.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Cells reports how many unique cells have been simulated (or are in
// flight) so far.
func (r *Runner) Cells() int { return r.cells.len() }

// CacheStats reports memo traffic since construction: hits counts claims
// satisfied by an existing cell (including in-flight ones the claimant
// waited on), misses counts cells this Runner had to simulate.
func (r *Runner) CacheStats() (hits, misses uint64) { return r.cells.stats() }

// Run executes every job and returns their statistics in submission
// order, independent of completion order. Duplicate cells — within this
// call or from any earlier Run on the same Runner — simulate once and
// share one *stats.Stats (treat results as immutable). If any job fails,
// Run still finishes the rest and then returns the error of the earliest
// failed job by submission order, wrapped with that job's label; the
// returned slice holds nil at failed positions.
func (r *Runner) Run(jobs []Job) ([]*stats.Stats, error) {
	return r.RunCtx(context.Background(), jobs)
}

// RunCtx is Run under a context. Cancelling ctx interrupts the cells
// currently simulating (cooperatively, via each machine's interrupt
// flag — see RunOneCtx) and fails jobs not yet dispatched with ctx.Err()
// instead of simulating them, so a large experiment batch stops within
// one cell's interrupt latency rather than running to completion. The
// earliest error by submission order — which after a cancel may be a
// ctx.Err() — is returned wrapped with that job's label.
func (r *Runner) RunCtx(ctx context.Context, jobs []Job) ([]*stats.Stats, error) {
	results := make([]*stats.Stats, len(jobs))
	errs := make([]error, len(jobs))

	workers := r.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], _, errs[i] = r.RunOneCtx(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("runner: %s: %w", jobs[i].Label, err)
		}
	}
	return results, nil
}

// RunOne executes a single job through the memo (a convenience for
// callers outside a batch).
func (r *Runner) RunOne(job Job) (*stats.Stats, error) {
	st, _, err := r.RunOneCtx(context.Background(), job)
	return st, err
}

// RunOneCtx executes a single job through the memo under a context.
// cached reports whether the result came from an existing cell rather
// than a simulation owned by this call. Cancelling ctx stops the call:
// a waiter detaches immediately with ctx.Err() (the owning simulation,
// which other claimants may still want, keeps running), while an owner
// interrupts its machine cooperatively and returns an error wrapping
// sim.ErrInterrupted. An interrupted cell is forgotten — it holds no
// result — so a later submission of the same fingerprint simulates
// fresh. Deterministic failures (bad config, deadlock) stay memoized
// like they always were.
func (r *Runner) RunOneCtx(ctx context.Context, job Job) (st *stats.Stats, cached bool, err error) {
	key := Fingerprint(job.Cfg, job.Workload.Name, job.Params)
	c, owned := r.cells.claim(key)
	if !owned {
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		r.notify(Event{Label: job.Label, Fingerprint: key, Done: true,
			Cached: true, Err: c.err})
		return c.st, true, c.err
	}
	c.st, c.steps, c.err = r.simulate(ctx, job, key)
	if c.err != nil && (errors.Is(c.err, sim.ErrInterrupted) || ctx.Err() != nil) {
		r.cells.forget(key, c)
	}
	close(c.done)
	return c.st, false, c.err
}

// simulate runs one cell on a private machine, threading the progress
// hook through node.New into the core.System event loop. A cancellable
// ctx gets a watcher goroutine that interrupts the machine when it
// fires; the interrupt is cooperative and never perturbs event order,
// so a run that finishes first is identical to an unwatched one.
func (r *Runner) simulate(ctx context.Context, job Job, key string) (*stats.Stats, uint64, error) {
	var steps uint64
	obs := core.Observer{
		Start: func(*core.System) {
			r.notify(Event{Label: job.Label, Fingerprint: key})
		},
		Done: func(_ *core.System, n uint64, wall time.Duration) {
			steps = n
			r.notify(Event{Label: job.Label, Fingerprint: key, Done: true,
				Events: n, Wall: wall})
		},
	}
	m, err := node.New(job.Cfg, node.WithObserver(obs))
	if err != nil {
		return nil, 0, err
	}
	if job.Attach != nil {
		job.Attach(m)
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				m.Interrupt()
			case <-stop:
			}
		}()
	}
	ops := job.Workload.Build(job.Params)
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	st, err := m.Run(streams)
	if err != nil {
		r.notify(Event{Label: job.Label, Fingerprint: key, Done: true, Err: err})
		return nil, steps, err
	}
	return st, steps, nil
}

func (r *Runner) notify(ev Event) {
	if r.progress != nil {
		r.progress(ev)
	}
}
