package runner

import (
	"sync"

	"pccsim/internal/stats"
)

// cell is one memoized simulation: the first job to claim a fingerprint
// runs it and closes done; identical jobs wait and share the result.
type cell struct {
	done  chan struct{}
	st    *stats.Stats
	steps uint64
	err   error
}

// cache is the Runner's fingerprint-keyed result memo. It is shared by
// every Run/RunOne/RunOneCtx on a Runner, so duplicate cells across
// calls — and across concurrently served HTTP jobs — simulate once.
type cache struct {
	mu     sync.Mutex
	cells  map[string]*cell
	hits   uint64
	misses uint64
}

func newCache() *cache {
	return &cache{cells: make(map[string]*cell)}
}

// claim resolves key to its cell and reports whether the caller owns it.
// The first claimant for a key gets a fresh cell with owned=true and must
// eventually fill it and close done (or forget it); later claimants get
// owned=false and wait on done. A claim on an existing cell counts as a
// hit even while the owner is still simulating — the work is shared
// either way.
func (ca *cache) claim(key string) (c *cell, owned bool) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if c, ok := ca.cells[key]; ok {
		ca.hits++
		return c, false
	}
	ca.misses++
	c = &cell{done: make(chan struct{})}
	ca.cells[key] = c
	return c, true
}

// forget drops key's entry if it still maps to c, so the next claim runs
// fresh. The owner calls it when a cell ends without a reusable result
// (an interrupted run is not a result). Comparing against c keeps a slow
// forget from evicting a successor cell.
func (ca *cache) forget(key string, c *cell) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if ca.cells[key] == c {
		delete(ca.cells, key)
	}
}

func (ca *cache) len() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return len(ca.cells)
}

func (ca *cache) stats() (hits, misses uint64) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.hits, ca.misses
}
