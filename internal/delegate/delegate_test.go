package delegate

import (
	"testing"
	"testing/quick"

	"pccsim/internal/directory"
	"pccsim/internal/msg"
)

func TestProducerInsertLookup(t *testing.T) {
	pt := NewProducerTable(32)
	dir := directory.Entry{State: directory.Excl, Owner: 3}
	e, victim := pt.Insert(0x1000, dir)
	if victim != nil {
		t.Fatal("insert into empty table evicted")
	}
	if e.Dir.Owner != 3 {
		t.Fatal("dir entry not stored")
	}
	if pt.Lookup(0x1000) != e {
		t.Fatal("lookup failed")
	}
	if pt.Lookup(0x2000) != nil {
		t.Fatal("lookup of absent succeeded")
	}
	if pt.Len() != 1 || pt.Cap() != 32 {
		t.Fatalf("Len=%d Cap=%d", pt.Len(), pt.Cap())
	}
}

func TestProducerCapacityEvictsOldest(t *testing.T) {
	pt := NewProducerTable(2)
	pt.Insert(0x100, directory.Entry{})
	pt.Insert(0x200, directory.Entry{})
	pt.Lookup(0x100) // refresh
	_, victim := pt.Insert(0x300, directory.Entry{})
	if victim == nil || victim.Addr != 0x200 {
		t.Fatalf("victim = %+v, want 0x200", victim)
	}
	if pt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pt.Len())
	}
	if pt.Peek(0x100) == nil {
		t.Fatal("recently used entry evicted")
	}
}

func TestProducerInsertExistingUpdatesInPlace(t *testing.T) {
	pt := NewProducerTable(1)
	pt.Insert(0x100, directory.Entry{State: directory.Excl})
	e, victim := pt.Insert(0x100, directory.Entry{State: directory.Shared})
	if victim != nil {
		t.Fatal("in-place update evicted")
	}
	if e.Dir.State != directory.Shared {
		t.Fatal("in-place update lost new state")
	}
}

func TestProducerRemove(t *testing.T) {
	pt := NewProducerTable(4)
	pt.Insert(0x100, directory.Entry{})
	if !pt.Remove(0x100) {
		t.Fatal("Remove of present entry failed")
	}
	if pt.Remove(0x100) {
		t.Fatal("double Remove succeeded")
	}
	if pt.Len() != 0 {
		t.Fatal("entry survived Remove")
	}
}

func TestProducerForEach(t *testing.T) {
	pt := NewProducerTable(4)
	pt.Insert(0x100, directory.Entry{})
	pt.Insert(0x200, directory.Entry{})
	n := 0
	pt.ForEach(func(e *ProducerEntry) { n++ })
	if n != 2 {
		t.Fatalf("ForEach visited %d", n)
	}
}

func TestConsumerInsertLookup(t *testing.T) {
	ct := NewConsumerTable(64)
	ct.Insert(0x1000, 5)
	home, ok := ct.Lookup(0x1000)
	if !ok || home != 5 {
		t.Fatalf("Lookup = %d,%v", home, ok)
	}
	if _, ok := ct.Lookup(0x2000); ok {
		t.Fatal("absent lookup succeeded")
	}
}

func TestConsumerUpdateInPlace(t *testing.T) {
	ct := NewConsumerTable(64)
	ct.Insert(0x1000, 5)
	ct.Insert(0x1000, 9)
	home, _ := ct.Lookup(0x1000)
	if home != 9 {
		t.Fatalf("home = %d, want 9", home)
	}
	if ct.Count() != 1 {
		t.Fatalf("Count = %d, want 1", ct.Count())
	}
}

func TestConsumerRemove(t *testing.T) {
	ct := NewConsumerTable(64)
	ct.Insert(0x1000, 5)
	ct.Remove(0x1000)
	if _, ok := ct.Lookup(0x1000); ok {
		t.Fatal("hint survived Remove")
	}
	ct.Remove(0x9999) // absent: must not panic
}

func TestConsumerRandomReplacementBounded(t *testing.T) {
	ct := NewConsumerTable(16) // 4 sets x 4 ways
	// Fill one set beyond capacity: addresses with identical set index.
	for i := 0; i < 10; i++ {
		addr := msg.Addr(i) * 4 * 128 // stride keeps the same set (4 sets)
		ct.Insert(addr<<0, msg.NodeID(i%8))
	}
	if ct.Count() > 16 {
		t.Fatalf("Count = %d exceeds capacity", ct.Count())
	}
}

func TestConsumerStaleHintScenario(t *testing.T) {
	// The protocol drops hints when told NackNotHome; the table must
	// tolerate remove-then-reinsert cycles.
	ct := NewConsumerTable(64)
	for i := 0; i < 100; i++ {
		ct.Insert(0x4000, msg.NodeID(i%16))
		ct.Remove(0x4000)
	}
	if ct.Count() != 0 {
		t.Fatalf("Count = %d after balanced insert/remove", ct.Count())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewProducerTable(0) },
		func() { NewConsumerTable(3) },
		func() { NewConsumerTable(6) },
		func() { NewConsumerTable(12) }, // 3 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

// Property: the producer table never exceeds capacity, and the victim
// stream plus live entries always account for every insert.
func TestPropertyProducerAccounting(t *testing.T) {
	f := func(addrs []uint16) bool {
		pt := NewProducerTable(8)
		live := map[msg.Addr]bool{}
		for _, a := range addrs {
			addr := msg.Addr(a) << 7
			_, victim := pt.Insert(addr, directory.Entry{})
			if victim != nil {
				if !live[victim.Addr] {
					return false // evicted something not live
				}
				delete(live, victim.Addr)
			}
			live[addr] = true
			if pt.Len() > pt.Cap() || pt.Len() != len(live) {
				return false
			}
		}
		for a := range live {
			if pt.Peek(a) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: consumer table lookups only ever return what was inserted for
// that address (hints may be lost, never corrupted).
func TestPropertyConsumerHintsNeverCorrupt(t *testing.T) {
	f := func(ops []struct {
		A uint16
		H uint8
	}) bool {
		ct := NewConsumerTable(32)
		lastHome := map[msg.Addr]msg.NodeID{}
		for _, op := range ops {
			addr := msg.Addr(op.A) << 7
			home := msg.NodeID(op.H % 16)
			ct.Insert(addr, home)
			lastHome[addr] = home
		}
		for addr, want := range lastHome {
			if got, ok := ct.Lookup(addr); ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
