// Package delegate implements the delegate cache of §2.3: a producer table
// tracking the directory state of lines delegated *to* this node, and a
// consumer table of hints mapping lines to their delegated home nodes.
//
// Producer entries (Figure 3: valid, 37-bit tag, 2-bit age, 32-bit
// DirEntry — 10 bytes) limit how many lines can be delegated to a node at
// once; we use the age field as an LRU clock so that accepting a new
// delegation when full evicts (undelegates) the oldest entry. Consumer
// entries (valid, tag, owner — 6 bytes) are pure hints: the table is 4-way
// set associative with random replacement, and stale or evicted entries
// only cost extra messages (NACK-and-retry through the real home).
package delegate

import (
	"math/rand"

	"pccsim/internal/directory"
	"pccsim/internal/msg"
)

// ProducerEntry is one delegated directory entry held at the producer.
// Dir carries the full delegated directory information, including the
// speculative-update fields of directory.Entry.
type ProducerEntry struct {
	Addr msg.Addr
	Dir  directory.Entry
	age  uint64
}

// ProducerTable tracks lines delegated to the local node. It is fully
// associative (the paper's tables are small: 32 or 1024 entries).
type ProducerTable struct {
	cap      int
	entries  map[msg.Addr]*ProducerEntry
	ageClock uint64
}

// NewProducerTable creates a producer table with the given entry capacity.
func NewProducerTable(capacity int) *ProducerTable {
	if capacity <= 0 {
		panic("delegate: producer table capacity must be positive")
	}
	return &ProducerTable{cap: capacity, entries: make(map[msg.Addr]*ProducerEntry, capacity)}
}

// Cap returns the table capacity.
func (t *ProducerTable) Cap() int { return t.cap }

// Len returns the number of live entries.
func (t *ProducerTable) Len() int { return len(t.entries) }

// Lookup returns the entry for addr (refreshing its age), or nil.
func (t *ProducerTable) Lookup(addr msg.Addr) *ProducerEntry {
	e := t.entries[addr]
	if e != nil {
		t.ageClock++
		e.age = t.ageClock
	}
	return e
}

// Peek returns the entry without refreshing recency.
func (t *ProducerTable) Peek(addr msg.Addr) *ProducerEntry { return t.entries[addr] }

// Insert adds a delegated entry. If the table is full, the oldest entry is
// removed and returned as victim (the caller must undelegate it: §2.3.3
// reason 1). Inserting an existing address overwrites it in place.
func (t *ProducerTable) Insert(addr msg.Addr, dir directory.Entry) (e *ProducerEntry, victim *ProducerEntry) {
	if old := t.entries[addr]; old != nil {
		t.ageClock++
		old.Dir = dir
		old.age = t.ageClock
		return old, nil
	}
	if len(t.entries) >= t.cap {
		victim = t.oldest()
		delete(t.entries, victim.Addr)
	}
	t.ageClock++
	e = &ProducerEntry{Addr: addr, Dir: dir, age: t.ageClock}
	t.entries[addr] = e
	return e, victim
}

func (t *ProducerTable) oldest() *ProducerEntry {
	var v *ProducerEntry
	for _, e := range t.entries {
		if v == nil || e.age < v.age || (e.age == v.age && e.Addr < v.Addr) {
			v = e
		}
	}
	return v
}

// Oldest returns the least recently used entry satisfying pred, or nil.
// The delegation-install path uses it to pick an undelegation victim whose
// speculative updates have drained.
func (t *ProducerTable) Oldest(pred func(*ProducerEntry) bool) *ProducerEntry {
	var v *ProducerEntry
	for _, e := range t.entries {
		if pred != nil && !pred(e) {
			continue
		}
		if v == nil || e.age < v.age || (e.age == v.age && e.Addr < v.Addr) {
			v = e
		}
	}
	return v
}

// Remove deletes the entry for addr, reporting whether it existed.
func (t *ProducerTable) Remove(addr msg.Addr) bool {
	if _, ok := t.entries[addr]; !ok {
		return false
	}
	delete(t.entries, addr)
	return true
}

// ForEach visits every entry.
func (t *ProducerTable) ForEach(fn func(*ProducerEntry)) {
	for _, e := range t.entries {
		fn(e)
	}
}

// ConsumerTable caches new-home hints: addr -> delegated home node. 4-way
// set associative with (deterministically seeded) random replacement.
type ConsumerTable struct {
	numSets int
	ways    int
	addrs   []msg.Addr
	homes   []msg.NodeID
	valid   []bool
	rng     *rand.Rand
}

// NewConsumerTable creates a consumer table with the given total entry
// count; entries/4 must be a power of two.
func NewConsumerTable(entries int) *ConsumerTable {
	const ways = 4
	if entries < ways || entries%ways != 0 {
		panic("delegate: consumer table entries must be a multiple of 4")
	}
	numSets := entries / ways
	if numSets&(numSets-1) != 0 {
		panic("delegate: consumer table set count must be a power of two")
	}
	return &ConsumerTable{
		numSets: numSets,
		ways:    ways,
		addrs:   make([]msg.Addr, entries),
		homes:   make([]msg.NodeID, entries),
		valid:   make([]bool, entries),
		rng:     rand.New(rand.NewSource(0x5eed)),
	}
}

// Entries returns the table capacity.
func (t *ConsumerTable) Entries() int { return t.numSets * t.ways }

func (t *ConsumerTable) setBase(addr msg.Addr) int {
	return int((uint64(addr)>>7)&uint64(t.numSets-1)) * t.ways
}

// Lookup returns the hinted delegated home for addr.
func (t *ConsumerTable) Lookup(addr msg.Addr) (msg.NodeID, bool) {
	base := t.setBase(addr)
	for i := base; i < base+t.ways; i++ {
		if t.valid[i] && t.addrs[i] == addr {
			return t.homes[i], true
		}
	}
	return msg.None, false
}

// Insert records that addr's acting home is home, replacing a random way
// if the set is full.
func (t *ConsumerTable) Insert(addr msg.Addr, home msg.NodeID) {
	base := t.setBase(addr)
	slot := -1
	for i := base; i < base+t.ways; i++ {
		if t.valid[i] && t.addrs[i] == addr {
			slot = i // update in place
			break
		}
		if slot < 0 && !t.valid[i] {
			slot = i
		}
	}
	if slot < 0 {
		slot = base + t.rng.Intn(t.ways)
	}
	t.addrs[slot] = addr
	t.homes[slot] = home
	t.valid[slot] = true
}

// Remove drops the hint for addr (e.g. after a NackNotHome).
func (t *ConsumerTable) Remove(addr msg.Addr) {
	base := t.setBase(addr)
	for i := base; i < base+t.ways; i++ {
		if t.valid[i] && t.addrs[i] == addr {
			t.valid[i] = false
			return
		}
	}
}

// Count returns the number of valid hints.
func (t *ConsumerTable) Count() int {
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}
