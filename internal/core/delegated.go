package core

import (
	"fmt"

	"pccsim/internal/cache"
	"pccsim/internal/delegate"
	"pccsim/internal/directory"
	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/stats"
)

// localDelegated services the producer's own access to a line delegated to
// this node: the read-exclusive flow of Figure 6, run entirely in the local
// hub against the producer-table directory entry.
func (h *Hub) localDelegated(m *mshr, reqType msg.Type) {
	pe := h.prod.Lookup(m.addr)
	if pe == nil {
		// Undelegated while the request sat in the hub queue: reroute.
		h.issue(m)
		return
	}
	e := &pe.Dir

	if !m.wantExcl {
		// Producer re-reading its own delegated line after losing the
		// L2 copy: the pinned RAC entry is the surrogate memory.
		rl := h.rc.Lookup(m.addr)
		if rl == nil {
			panic(fmt.Sprintf("core: node %d delegated line %#x has no RAC master copy",
				h.id, uint64(m.addr)))
		}
		m.dataReady = true
		m.fillState = cache.Shared
		m.version = rl.Version
		m.viaRAC = true
		m.acksNeeded = 0
		h.tryComplete(m)
		return
	}

	if e.UpdatesInFlight > 0 {
		// Writes stay ordered behind outstanding update pushes.
		h.retry(m)
		return
	}

	switch {
	case e.State == directory.Shared:
		h.adaptDelayUpIfRewrite(e)
		consumers := e.Sharers.Clear(h.id)
		h.st.RecordConsumers(consumers.Count())
		e.State = directory.Excl
		e.Owner = h.id
		e.OwnerID = h.id
		e.OwnerTxn = m.txn
		e.Sharers = consumers // §2.4.2: preserve the old sharing vector
		e.UpdateSet = consumers
		h.invalidateSharers(m.addr, consumers, h.id, m.txn)
		m.dataReady = true
		m.fillState = cache.Excl
		m.version = h.producerVersion(m.addr, e, true)
		m.acksNeeded = consumers.Count()
		m.invalsRemote = !consumers.Empty()
		h.tryComplete(m)

	case e.State == directory.Excl && e.Owner == h.id:
		// Still exclusive here (intervention has not fired, or the
		// line bounced through the RAC): silent refill.
		rl := h.rc.Lookup(m.addr)
		if rl == nil {
			panic(fmt.Sprintf("core: node %d delegated EXCL line %#x lost its data",
				h.id, uint64(m.addr)))
		}
		m.dataReady = true
		m.fillState = cache.Excl
		m.version = rl.Version
		m.viaRAC = true
		m.acksNeeded = 0
		h.tryComplete(m)

	default:
		panic(fmt.Sprintf("core: delegated entry %#x in state %s owner=%d at node %d",
			uint64(m.addr), e.State, e.Owner, h.id))
	}
}

// delegatedRequest services a remote node's request arriving at the
// delegated home (directly via a consumer-table hint, or forwarded by the
// original home while the line is in DELE).
func (h *Hub) delegatedRequest(req *msg.Message, pe *delegate.ProducerEntry) {
	if h.mshr(req.Addr) != nil {
		// The producer's own write is mid-flight: NACK and retry.
		h.nack(req, false)
		return
	}
	e := &pe.Dir

	switch req.Type {
	case msg.GetShared:
		h.delegatedRead(req, pe)
	case msg.GetExcl, msg.Upgrade:
		// Another node wants ownership: undelegation reason 3
		// (§2.3.3); the request travels home inside the UNDELE.
		if e.UpdatesInFlight > 0 {
			h.nack(req, false)
			return
		}
		h.undelegate(pe, stats.UndelRemoteWrite, 0, req)
	default:
		panic(fmt.Sprintf("core: delegatedRequest got %s", req))
	}
}

// delegatedRead serves a consumer read at the delegated home: the 2-hop
// path delegation exists to create.
func (h *Hub) delegatedRead(req *msg.Message, pe *delegate.ProducerEntry) {
	e := &pe.Dir
	switch {
	case e.State == directory.Shared:
		e.Sharers = e.Sharers.Set(req.Requester)
		v := h.producerVersion(req.Addr, e, true)
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.SharedResponse, Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, Version: v, Txn: req.Txn,
		})

	case e.State == directory.Excl && e.Owner == h.id:
		// Consumer read before the delayed intervention fired: the
		// hub downgrades the processor's copy immediately. A pending
		// intervention timer will still push updates to consumers
		// that have not re-read (fireIntervention's Shared arm).
		h.st.Interventions++
		if o := h.obs; o != nil {
			o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindIntervention, Node: h.id,
				Addr: req.Addr, Arg: uint64(h.id), Arg2: 2})
		}
		h.adaptDelayDown(e) // the delay was too long for this line
		v := h.downgradeLocal(req.Addr, e)
		e.State = directory.Shared
		e.Sharers = msg.Vector{}.Set(h.id).Set(req.Requester)
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.SharedResponse, Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, Version: v, Txn: req.Txn,
		})

	default:
		panic(fmt.Sprintf("core: delegatedRead %#x state %s owner=%d",
			uint64(req.Addr), e.State, e.Owner))
	}
}

// downgradeLocal moves the producer's exclusive copy to Shared and lands
// the data in the pinned RAC entry (the surrogate memory), returning the
// current version.
func (h *Hub) downgradeLocal(addr msg.Addr, e *directory.Entry) uint64 {
	var v uint64
	if l2l := h.l2.Lookup(addr); l2l != nil && l2l.State == cache.Excl {
		l2l.State = cache.Shared
		v = l2l.Version
	} else if rl := h.rc.Lookup(addr); rl != nil {
		return rl.Version // already resident in the RAC
	} else {
		panic(fmt.Sprintf("core: node %d downgrade of %#x found no data", h.id, uint64(addr)))
	}
	if rl, rv, ok := h.rc.Insert(addr, cache.Shared); ok {
		rl.Version = v
		rl.Dirty = true
		h.handleRACVictim(rv)
	}
	return v
}

// armIntervention schedules the delayed intervention for a delegated line
// the producer just wrote (§2.4.1). A fixed, configurable delay stands in
// for a last-write predictor: we simply assume the write burst is over.
func (h *Hub) armIntervention(pe *delegate.ProducerEntry) {
	e := &pe.Dir
	if e.UpdateSet.Clear(h.id).Empty() {
		return // nobody consumed the last round; nothing to push
	}
	e.WriteSeq++
	e.UpdatePending = true
	seq := e.WriteSeq
	addr := pe.Addr
	h.eng.After(h.delayFor(e), func() {
		if h.prod.Peek(addr) != pe {
			return // undelegated in the meantime
		}
		h.fireIntervention(addr, &pe.Dir, seq, true)
	})
}

// installDelegation handles a DELEGATE message: the home detected a stable
// producer-consumer pattern on our write and handed us the directory entry
// (§2.3.1). The message doubles as the exclusive reply for the write.
func (h *Hub) installDelegation(m *msg.Message) {
	ms := h.mshr(m.Addr)
	if ms == nil || !ms.wantExcl || ms.txn != m.Txn {
		panic(fmt.Sprintf("core: node %d got unsolicited Delegate for %#x", h.id, uint64(m.Addr)))
	}

	canHost := true
	if h.prod.Len() >= h.prod.Cap() {
		// Make room by undelegating the oldest drained entry
		// (undelegation reason 1).
		victim := h.prod.Oldest(func(pe *delegate.ProducerEntry) bool {
			return pe.Dir.UpdatesInFlight == 0 && h.mshr(pe.Addr) == nil
		})
		if victim == nil {
			canHost = false
		} else {
			h.undelegate(victim, stats.UndelCapacity, 0, nil)
		}
	}

	if canHost {
		pe, evicted := h.prod.Insert(m.Addr, directory.Entry{
			State: directory.Excl, Owner: h.id, OwnerID: h.id,
			Sharers: m.Sharers, UpdateSet: m.Sharers,
			MemVersion: m.Version, PC: true, Pending: msg.None,
		})
		if evicted != nil {
			panic("core: producer table evicted after making room")
		}
		if o := h.obs; o != nil {
			o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindDelegateInstall, Node: h.id,
				Addr: m.Addr, Arg: uint64(h.prod.Len())})
		}
		// Pin the surrogate-memory RAC entry (§2.3.1: "pins the
		// corresponding RAC entry so that there is a place to put the
		// data should it be flushed from the processor caches").
		if rl, rv, ok := h.rc.Insert(m.Addr, cache.Shared); ok {
			rl.Version = m.Version
			h.rc.Pin(m.Addr)
			h.handleRACVictim(rv)
		} else {
			// The RAC set is fully pinned: accept the write but
			// hand the delegation straight back (reason 2).
			ms.undelegateOnDone = true
		}
		_ = pe
	} else {
		// No producer-table entry could be freed: complete the write
		// and undelegate immediately afterwards.
		ms.undelegateOnDone = true
	}

	// Complete as an exclusive reply. If we held a Shared copy (upgrade
	// path) its version equals memory's: the home only delegates from
	// the SHARED directory state, where memory is clean.
	ms.dataReady = true
	ms.fillState = cache.Excl
	ms.version = m.Version
	if l2l := h.l2.Lookup(m.Addr); l2l != nil && l2l.State == cache.Shared {
		ms.version = l2l.Version
	}
	ms.acksNeeded = m.AckCount
	h.tryComplete(ms)
}

// undelegate hands a delegated line back to its home (§2.3.3). The
// producer's copy is downgraded to Shared first so the reported directory
// state is always SHARED{holders}; pendingReq, when non-nil, is a remote
// write that travels home inside the UNDELE message.
func (h *Hub) undelegate(pe *delegate.ProducerEntry, reason stats.UndelegateReason,
	fallbackVersion uint64, pendingReq *msg.Message) {

	e := &pe.Dir
	e.UpdatePending = false // cancel any armed intervention

	wasExcl := e.State == directory.Excl && e.Owner == h.id
	v := fallbackVersion
	if l2l := h.l2.Lookup(pe.Addr); l2l != nil {
		if l2l.State == cache.Excl {
			l2l.State = cache.Shared
		}
		v = l2l.Version
	} else if rl := h.rc.Lookup(pe.Addr); rl != nil {
		v = rl.Version
	}

	haveCopy := h.l2.Lookup(pe.Addr) != nil || h.rc.Lookup(pe.Addr) != nil
	var holders msg.Vector
	if !wasExcl {
		holders = e.Sharers.Clear(h.id)
	}
	if haveCopy {
		holders = holders.Set(h.id)
	}

	// The RAC copy stops being the surrogate memory; keep it as an
	// ordinary clean shared copy, refreshed to the current version (it
	// may predate the last write burst, whose data lives in L2 — and a
	// silent L2 eviction would otherwise expose the stale copy).
	if rl := h.rc.Lookup(pe.Addr); rl != nil {
		rl.Pinned = false
		rl.State = cache.Shared
		rl.Dirty = false
		rl.Version = v
	}

	h.prod.Remove(pe.Addr)
	h.st.RecordUndelegation(reason)
	if o := h.obs; o != nil {
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUndelegate, Node: h.id,
			Addr: pe.Addr, Arg: uint64(reason)})
	}

	um := h.newMsg()
	*um = msg.Message{
		Type: msg.Undelegate, Src: h.id, Dst: h.home(pe.Addr), Addr: pe.Addr,
		Requester: msg.None, Version: v, Dirty: true, Sharers: holders,
	}
	if pendingReq != nil {
		um.Requester = pendingReq.Requester
		um.Fwd = pendingReq.Type
		um.Txn = pendingReq.Txn
	}
	h.sendAfter(h.cfg.DirLatency, um)
}

// undelegateNoEntry restores a delegation that was never installed (the
// producer table was saturated with undrained entries when the DELEGATE
// arrived): the freshly written line is downgraded and sent home.
func (h *Hub) undelegateNoEntry(addr msg.Addr, version uint64) {
	var holders msg.Vector
	if l2l := h.l2.Lookup(addr); l2l != nil {
		if l2l.State == cache.Excl {
			l2l.State = cache.Shared
		}
		version = l2l.Version
		holders = holders.Set(h.id)
	}
	h.st.RecordUndelegation(stats.UndelCapacity)
	if o := h.obs; o != nil {
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUndelegate, Node: h.id,
			Addr: addr, Arg: uint64(stats.UndelCapacity), Arg2: 1})
	}
	h.emitAfter(h.cfg.DirLatency, msg.Message{
		Type: msg.Undelegate, Src: h.id, Dst: h.home(addr), Addr: addr,
		Requester: msg.None, Version: version, Dirty: true, Sharers: holders,
	})
}
