package core

import (
	"fmt"
	"sort"
	"sync"

	"pccsim/internal/msg"
)

// global holds system-wide simulation state shared by all hubs: the
// abstract data-version oracle used for runtime coherence checking. Every
// store to a line advances its version; the protocol carries versions in
// data-bearing messages, and the invariant checker verifies that no node
// ever observes versions moving backwards and that a writer always holds
// the latest version when it writes (the simulator-side checks of §2.5).
//
// On a sharded system hubs on different shards write concurrently, so the
// oracle takes a mutex — but only when sharing is enabled, keeping the
// single-engine hot path lock-free.
type global struct {
	mu       sync.Mutex
	shared   bool
	latest   map[msg.Addr]uint64
	observed map[observedKey]uint64 // highest version each node has seen, per line
	check    bool
}

type observedKey struct {
	node msg.NodeID
	addr msg.Addr
}

func newGlobal(check bool) *global {
	g := &global{latest: make(map[msg.Addr]uint64), check: check}
	if check {
		g.observed = make(map[observedKey]uint64)
	}
	return g
}

// enableSharing arms the mutex; call before any concurrent access.
func (g *global) enableSharing() { g.shared = true }

// write records a store by node to addr whose cached copy held version
// held, returning the new version. Under SWMR the writer must hold the
// latest version; a mismatch is a coherence bug.
func (g *global) write(node msg.NodeID, addr msg.Addr, held uint64) uint64 {
	if g.shared {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	if g.check && held != g.latest[addr] {
		panic(fmt.Sprintf("core: node %d writes %#x holding version %d, latest is %d (stale-write coherence violation)",
			node, uint64(addr), held, g.latest[addr]))
	}
	g.latest[addr]++
	return g.latest[addr]
}

// observe records that node read version v of addr and checks monotonicity:
// a node that has seen version n must never later read version < n.
func (g *global) observe(node msg.NodeID, addr msg.Addr, v uint64) {
	if !g.check {
		return
	}
	if g.shared {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	k := observedKey{node, addr}
	if prev, ok := g.observed[k]; ok && v < prev {
		panic(fmt.Sprintf("core: node %d observed version %d of %#x after version %d (coherence went backwards)",
			node, v, uint64(addr), prev))
	}
	g.observed[k] = v
}

// latestVersion reports the newest written version of addr (0 if never
// written).
func (g *global) latestVersion(addr msg.Addr) uint64 {
	if g.shared {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	return g.latest[addr]
}

// writtenLines returns every line the oracle has seen written, in address
// order (deterministic for error reporting).
func (g *global) writtenLines() []msg.Addr {
	if g.shared {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	out := make([]msg.Addr, 0, len(g.latest))
	for a := range g.latest {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
