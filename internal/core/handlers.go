package core

import (
	"fmt"

	"pccsim/internal/cache"
	"pccsim/internal/msg"
)

// dispatch is the hub's message handler: every packet delivered to this
// node (and every hub-internal self-send) lands here. Messages are pooled:
// once the protocol handlers are done with one it returns to the engine's
// free list, unless a handler retained it (a deferred intervention or
// transfer parked in an MSHR until our own fill completes).
func (h *Hub) dispatch(m *msg.Message) {
	if h.handle(m) {
		h.eng.FreeMsg(m)
	}
}

// handle runs the protocol action for m and reports whether the message is
// finished (true: return it to the pool).
func (h *Hub) handle(m *msg.Message) bool {
	switch m.Type {
	case msg.GetShared, msg.GetExcl, msg.Upgrade:
		h.request(m)
	case msg.Intervention:
		return !h.ownerIntervention(m)
	case msg.TransferReq:
		return !h.ownerTransfer(m)
	case msg.Invalidate:
		h.ownerInvalidate(m)
	case msg.InvAck:
		if ms := h.mshr(m.Addr); ms != nil && ms.txn == m.Txn {
			ms.acksGot++
			h.tryComplete(ms)
		}
	case msg.SharedReply, msg.SharedResponse:
		h.replyData(m, cache.Shared, 0)
	case msg.ExclReply:
		h.replyData(m, cache.Excl, m.AckCount)
	case msg.ExclResponse:
		h.replyData(m, cache.Excl, 0)
	case msg.UpgradeAck:
		h.upgradeAck(m)
	case msg.SharedWriteback:
		h.homeSharedWriteback(m)
	case msg.TransferAck:
		h.homeTransferAck(m)
	case msg.Writeback:
		h.homeWriteback(m)
	case msg.EagerWriteback:
		h.homeEagerWriteback(m)
	case msg.WBAck:
		// Writebacks are fire-and-forget in this model.
	case msg.Nack:
		if ms := h.mshr(m.Addr); ms != nil && ms.txn == m.Txn {
			h.retry(ms)
		}
	case msg.NackNotHome:
		if h.cons != nil {
			h.cons.Remove(m.Addr)
		}
		if ms := h.mshr(m.Addr); ms != nil && ms.txn == m.Txn {
			h.retry(ms)
		}
	case msg.Delegate:
		h.installDelegation(m)
	case msg.Undelegate:
		h.homeUndelegate(m)
	case msg.UndelegateAck:
		// The producer already dropped its entry when it undelegated.
	case msg.NewHomeHint:
		if h.cons != nil {
			h.cons.Insert(m.Addr, m.Owner)
		}
	case msg.Update:
		h.consumerUpdate(m)
	case msg.UpdateData:
		h.hybridUpdateData(m)
	case msg.UpdateAck:
		h.homeUpdateAck(m)
	case msg.UpdateGrant:
		h.hybridUpdateGrant(m)
	default:
		panic(fmt.Sprintf("core: node %d cannot dispatch %s", h.id, m))
	}
	return true
}

// request routes an incoming coherence request: delegated lines are served
// by the local delegate cache, locally homed lines by the directory, and
// anything else is NACKed (stale consumer-table hint or a request that
// crossed an undelegation).
func (h *Hub) request(m *msg.Message) {
	if h.prod != nil {
		if pe := h.prod.Peek(m.Addr); pe != nil {
			h.delegatedRequest(m, pe)
			return
		}
	}
	if home, ok := h.mm.HomeIfPlaced(m.Addr); ok && home == h.id {
		h.homeRequest(m)
		return
	}
	// Stale hint (direct request): tell the requester to drop it.
	// A request forwarded by the home (src != requester) raced an
	// in-flight DELEGATE or UNDELEGATE: plain NACK, the retry resolves.
	h.nack(m, m.Src == m.Requester)
}

// ownerIntervention downgrades our exclusive copy for a 3-hop read: data
// goes to the requester and, as a shared writeback, to the home (Figure 1).
// It reports whether the message was retained (parked in an MSHR).
func (h *Hub) ownerIntervention(m *msg.Message) bool {
	if ms := h.mshr(m.Addr); ms != nil && ms.wantExcl && ms.txn == m.GrantTxn {
		// The intervention refers to the very ownership our in-flight
		// fill establishes (the home serialized us first): service it
		// right after the fill lands.
		ms.deferred = m
		return true
	}
	var v uint64
	have := false
	if l2l := h.l2.Lookup(m.Addr); l2l != nil && l2l.State == cache.Excl && l2l.Grant == m.GrantTxn {
		l2l.State = cache.Shared
		l2l.Dirty = false // the shared writeback cleans it
		v = l2l.Version
		have = true
	} else if h.rc != nil {
		if rl := h.rc.Lookup(m.Addr); rl != nil && rl.State == cache.Excl && !rl.Pinned &&
			rl.Grant == m.GrantTxn {
			rl.State = cache.Shared
			rl.Dirty = false
			v = rl.Version
			have = true
		}
	}
	if !have {
		// The intervention refers to an ownership epoch already ended
		// by our crossing writeback; the home completes the pending
		// request from the written-back data.
		return false
	}
	h.emit(msg.Message{
		Type: msg.SharedResponse, Src: h.id, Dst: m.Requester, Addr: m.Addr,
		Requester: m.Requester, Version: v, Txn: m.Txn,
	})
	h.emit(msg.Message{
		Type: msg.SharedWriteback, Src: h.id, Dst: m.Src, Addr: m.Addr,
		Requester: m.Requester, Version: v,
	})
	return false
}

// ownerTransfer hands our exclusive copy to a new owner (3-hop write); it
// reports whether the message was retained (parked in an MSHR).
func (h *Hub) ownerTransfer(m *msg.Message) bool {
	if ms := h.mshr(m.Addr); ms != nil && ms.wantExcl && ms.txn == m.GrantTxn {
		ms.deferred = m
		return true
	}
	var v uint64
	have := false
	if l2l := h.l2.Lookup(m.Addr); l2l != nil && l2l.State == cache.Excl && l2l.Grant == m.GrantTxn {
		v = l2l.Version
		h.l1.InvalidateRange(m.Addr, h.cfg.L2LineBytes)
		h.l2.Invalidate(m.Addr)
		have = true
	} else if h.rc != nil {
		if rl := h.rc.Lookup(m.Addr); rl != nil && rl.State == cache.Excl && !rl.Pinned &&
			rl.Grant == m.GrantTxn {
			v = rl.Version
			h.rc.Invalidate(m.Addr)
			have = true
		}
	}
	if !have {
		return false // stale epoch: a writeback resolved it; home completes from that
	}
	h.emit(msg.Message{
		Type: msg.ExclResponse, Src: h.id, Dst: m.Requester, Addr: m.Addr,
		Requester: m.Requester, Version: v, Txn: m.Txn,
	})
	h.emit(msg.Message{
		Type: msg.TransferAck, Src: h.id, Dst: m.Src, Addr: m.Addr,
		Requester: m.Requester, Txn: m.Txn,
	})
	return false
}

// ownerInvalidate drops our shared copy and acknowledges directly to the
// writer collecting the acks.
func (h *Hub) ownerInvalidate(m *msg.Message) {
	if l2l := h.l2.Lookup(m.Addr); l2l != nil {
		if l2l.State == cache.Excl && h.cfg.CheckInvariants {
			panic(fmt.Sprintf("core: node %d got Invalidate for EXCL line %#x", h.id, uint64(m.Addr)))
		}
		h.l1.InvalidateRange(m.Addr, h.cfg.L2LineBytes)
		h.l2.Invalidate(m.Addr)
	}
	if h.rc != nil {
		if rl := h.rc.Lookup(m.Addr); rl != nil && !rl.Pinned {
			v := h.rc.Invalidate(m.Addr)
			if v.FromUpdate && !v.Consumed {
				h.noteUpdateWasted(m.Addr)
			}
		}
	}
	if ms := h.mshr(m.Addr); ms != nil && !ms.wantExcl {
		// The data reply racing this invalidation may still be used
		// once but must not be cached (see mshr.invalidated).
		ms.invalidated = true
	}
	h.emit(msg.Message{
		Type: msg.InvAck, Src: h.id, Dst: m.Requester, Addr: m.Addr,
		Requester: m.Requester, Txn: m.Txn,
	})
}

// replyData lands a data reply in the waiting MSHR. A reply arriving from
// somewhere other than where the request was sent means the (delegated)
// home forwarded it to a third-party owner: one extra network leg.
func (h *Hub) replyData(m *msg.Message, st cache.State, acks int) {
	ms := h.mshr(m.Addr)
	if ms == nil || ms.txn != m.Txn {
		return // satisfied earlier (e.g. by a speculative update)
	}
	ms.dataReady = true
	ms.version = m.Version
	ms.fillState = st
	ms.pcHint = m.PCHint
	if ms.acksNeeded < 0 {
		ms.acksNeeded = 0
	}
	if acks > 0 {
		ms.acksNeeded = acks
	}
	if m.Src != ms.target {
		ms.ownerForwarded = true
	}
	h.tryComplete(ms)
}

// upgradeAck grants ownership over the Shared copy we already hold.
func (h *Hub) upgradeAck(m *msg.Message) {
	ms := h.mshr(m.Addr)
	if ms == nil || ms.txn != m.Txn {
		return
	}
	// No invalidation can target us between the home's grant and this
	// ack, but our own L2 may have evicted the Shared copy: the MSHR's
	// stashed version is then authoritative (it equals memory's — the
	// home only grants upgrades from the clean SHARED state).
	ver := ms.upgVer
	if l2l := h.l2.Lookup(m.Addr); l2l != nil {
		if l2l.State != cache.Shared {
			panic(fmt.Sprintf("core: node %d UpgradeAck for %#x in state %s",
				h.id, uint64(m.Addr), l2l.State))
		}
		ver = l2l.Version
	}
	ms.dataReady = true
	ms.version = ver
	ms.fillState = cache.Excl
	ms.pcHint = m.PCHint
	if ms.acksNeeded < 0 {
		ms.acksNeeded = 0
	}
	if m.AckCount > 0 {
		ms.acksNeeded = m.AckCount
	}
	h.tryComplete(ms)
}

// consumerUpdate lands a speculative push in the local RAC (§2.4.3: "Upon
// receipt of an update, a consumer places the incoming data in the local
// RAC. If the consumer processor has already requested the data, the
// update message is treated as the response.").
func (h *Hub) consumerUpdate(m *msg.Message) {
	// Link-level delivery notification: the producer's hub learns its
	// push was consumed without a protocol-level message (NUMALink-class
	// fabrics acknowledge at the link layer). This is what keeps further
	// writes to the line ordered behind outstanding pushes. It is also
	// the one direct hub-to-hub touch in the protocol: when the producer
	// lives on another shard the call is staged and injected at the next
	// window barrier instead of mutating remote state mid-window.
	if src := h.sys.Hubs[m.Src]; src.eng == h.eng {
		defer src.updateDelivered(m)
	} else {
		h.sys.deferUpdateDelivered(h.id, m.Src, m.Addr)
	}

	if ms := h.mshr(m.Addr); ms != nil {
		if !ms.wantExcl {
			h.noteUpdateUseful(m.Addr, m.Version)
			ms.dataReady = true
			ms.version = m.Version
			ms.fillState = cache.Shared
			if ms.acksNeeded < 0 {
				ms.acksNeeded = 0
			}
			h.tryComplete(ms)
			return
		}
		// A pending write: the push refreshes the stashed copy an
		// in-flight Upgrade would otherwise complete against. The home
		// may have invalidated our SHARED copy and then re-added us to
		// the sharing vector with this very push — in which case it
		// will grant the (delayed) upgrade, and the pushed version,
		// not the stale stash, is the copy that grant covers.
		if m.Version > ms.upgVer {
			ms.upgVer = m.Version
		}
	}
	if l2l := h.l2.Lookup(m.Addr); l2l != nil {
		return // already re-read it: the push was unnecessary
	}
	if h.rc == nil {
		h.noteUpdateWasted(m.Addr)
		return
	}
	rl, rv, ok := h.rc.Insert(m.Addr, cache.Shared)
	if !ok {
		h.noteUpdateWasted(m.Addr)
		return
	}
	rl.Version = m.Version
	rl.FromUpdate = true
	h.handleRACVictim(rv)
}

// hybridUpdateData applies a hybrid update push at a sharer and
// acknowledges to the home, reporting whether this node still holds a
// copy. Every delivery acks exactly once — the home's round accounting
// (directory.Entry.UpdatesInFlight) depends on it.
func (h *Hub) hybridUpdateData(m *msg.Message) {
	if ms := h.mshr(m.Addr); ms != nil {
		if !ms.wantExcl {
			// A pending read: the push is the response, and the
			// freshest one — a data reply racing it carries an older
			// version and is dropped by its transaction number.
			h.noteUpdateUseful(m.Addr, m.Version)
			ms.dataReady = true
			ms.version = m.Version
			ms.fillState = cache.Shared
			if ms.acksNeeded < 0 {
				ms.acksNeeded = 0
			}
			h.hybridAck(m, true)
			h.tryComplete(ms)
			return
		}
		// A pending write that lost the race to this round: refresh the
		// stashed copy a later grant would complete against.
		if m.Version > ms.upgVer {
			ms.upgVer = m.Version
		}
	}
	kept := false
	if l2l := h.l2.Lookup(m.Addr); l2l != nil && l2l.State == cache.Shared {
		if m.Version > l2l.Version {
			l2l.Version = m.Version
			l2l.Streak++
		}
		if limit := h.proto.UpdateStreakLimit(); limit > 0 && int(l2l.Streak) >= limit {
			// Nothing between these pushes was read locally: this node
			// is not consuming the line. Self-invalidate and leave the
			// update set, degrading the line back toward
			// write-invalidate for us.
			h.st.UpdatesWasted += uint64(l2l.Streak)
			h.l1.InvalidateRange(m.Addr, h.cfg.L2LineBytes)
			h.l2.Invalidate(m.Addr)
		} else {
			kept = true
		}
	} else if h.rc != nil {
		if rl := h.rc.Lookup(m.Addr); rl != nil && !rl.Pinned {
			// A victim-cached copy: drop it with the presence bit
			// rather than track streaks in the RAC — keeping it stale
			// after the bit clears would orphan it.
			rv := h.rc.Invalidate(m.Addr)
			if rv.FromUpdate && !rv.Consumed {
				h.noteUpdateWasted(m.Addr)
			}
		}
	}
	h.hybridAck(m, kept)
}

// hybridAck acknowledges a hybrid update push to the home.
func (h *Hub) hybridAck(m *msg.Message, kept bool) {
	h.emit(msg.Message{
		Type: msg.UpdateAck, Src: h.id, Dst: m.Src, Addr: m.Addr,
		Requester: m.Requester, Txn: m.Txn, Kept: kept,
	})
}

// hybridUpdateGrant completes the writer's hybrid shared write: the
// store already committed at the home, so the fill is a clean Shared
// copy of the new version — no local store, no ownership epoch.
func (h *Hub) hybridUpdateGrant(m *msg.Message) {
	ms := h.mshr(m.Addr)
	if ms == nil || ms.txn != m.Txn {
		return
	}
	ms.updateWrite = true
	ms.dataReady = true
	ms.version = m.Version
	ms.fillState = cache.Shared
	if ms.acksNeeded < 0 {
		ms.acksNeeded = 0
	}
	h.tryComplete(ms)
}

// updateDelivered retires one in-flight update push (link-level, see
// consumerUpdate).
func (h *Hub) updateDelivered(m *msg.Message) { h.updateDeliveredLine(m.Addr) }

// updateDeliveredLine is updateDelivered by line address — the form the
// cross-shard barrier injection uses (the message itself is long since
// back in its pool by then).
func (h *Hub) updateDeliveredLine(addr msg.Addr) {
	if h.prod != nil {
		if pe := h.prod.Peek(addr); pe != nil {
			if pe.Dir.UpdatesInFlight > 0 {
				pe.Dir.UpdatesInFlight--
			}
			return
		}
	}
	if home, ok := h.mm.HomeIfPlaced(addr); ok && home == h.id {
		e := h.dir.Entry(addr)
		if e.UpdatesInFlight > 0 {
			e.UpdatesInFlight--
		}
	}
	// Otherwise the line was undelegated while the push was in flight;
	// homeUndelegate already reset the counter.
}
