package core

import (
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/stats"
)

// Tests for the §5 future-work extensions: adaptive intervention delay and
// the two-writer detector.

// With a far-too-long fixed delay and consumers reading a fixed 2000
// cycles after each write, the intervention always loses the race and no
// update ever lands. The adaptive extension halves the line's delay every
// time a consumer read beats it, so updates start landing within a few
// rounds. (The driver chains rounds through simulated time rather than
// draining the event queue, which would let any timer "win".)
func TestAdaptiveDelayRecoversFromTooLong(t *testing.T) {
	run := func(adaptive bool) uint64 {
		cfg := testConfig().WithMechanisms(32*1024, 32, true)
		cfg.InterventionDelay = 200_000 // hopeless fixed choice
		cfg.AdaptiveDelay = adaptive
		sys := newTestSystem(t, cfg)
		addr := msg.Addr(0x8000)
		pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1, 2}, 4) // detect + delegate
		preamble := sys.Aggregate().Misses[stats.MissLocalRAC]

		const rounds = 16
		finished := 0
		var round func(r int)
		round = func(r int) {
			if r == rounds {
				finished = rounds
				return
			}
			sys.Access(0, addr, true, func() {
				sys.Eng.After(2000, func() {
					pending := 2
					rdone := func() {
						pending--
						if pending == 0 {
							round(r + 1)
						}
					}
					sys.Access(1, addr, false, rdone)
					sys.Access(2, addr, false, rdone)
				})
			})
		}
		round(0)
		sys.Run()
		if finished != rounds {
			t.Fatal("round chain did not complete")
		}
		sys.CheckAll()
		return sys.Aggregate().Misses[stats.MissLocalRAC] - preamble
	}
	fixed := run(false)
	adaptive := run(true)
	if fixed != 0 {
		t.Fatalf("fixed 200k delay should never deliver updates in time, got %d RAC hits", fixed)
	}
	if adaptive == 0 {
		t.Fatal("adaptive delay never recovered from the bad initial value")
	}
}

// With a far-too-short delay, the intervention interrupts write bursts
// (two stores 80 simulated cycles apart) and every burst continuation pays
// an extra ownership transaction. The adaptive extension doubles the
// line's delay on immediate rewrites until bursts survive.
func TestAdaptiveDelayGrowsOnBurstInterruption(t *testing.T) {
	run := func(adaptive bool) *stats.Stats {
		cfg := testConfig().WithMechanisms(32*1024, 32, true)
		cfg.InterventionDelay = 5
		cfg.AdaptiveDelay = adaptive
		sys := newTestSystem(t, cfg)
		addr := msg.Addr(0x9000)
		pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1, 2}, 4) // detect + delegate

		const rounds = 16
		finished := false
		var round func(r int)
		round = func(r int) {
			if r == rounds {
				finished = true
				return
			}
			sys.Access(0, addr, true, func() {
				// Burst continuation 80 cycles later: with delay 5
				// the downgrade already happened, forcing a fresh
				// ownership transaction.
				sys.Eng.After(80, func() {
					sys.Access(0, addr, true, func() {
						sys.Eng.After(2000, func() {
							pending := 2
							rdone := func() {
								pending--
								if pending == 0 {
									round(r + 1)
								}
							}
							sys.Access(1, addr, false, rdone)
							sys.Access(2, addr, false, rdone)
						})
					})
				})
			})
		}
		round(0)
		sys.Run()
		if !finished {
			t.Fatal("round chain did not complete")
		}
		sys.CheckAll()
		return sys.Aggregate()
	}
	fixed := run(false)
	adaptive := run(true)
	// Interrupted bursts cost extra L2-miss transactions; once the hint
	// outgrows the 80-cycle gap the second store becomes a silent hit.
	if adaptive.TotalMisses() >= fixed.TotalMisses() {
		t.Fatalf("adaptive delay did not reduce burst-interruption misses: fixed=%d adaptive=%d",
			fixed.TotalMisses(), adaptive.TotalMisses())
	}
}

// The two-writer detector delegates lines that alternate between a stable
// pair of producers; the classic detector never does.
func TestPairDetectorDelegatesAlternatingWriters(t *testing.T) {
	run := func(writers int) *stats.Stats {
		cfg := testConfig().WithMechanisms(32*1024, 32, true)
		cfg.DetectorWriters = writers
		sys := newTestSystem(t, cfg)
		addr := msg.Addr(0xa000)
		access(t, sys, 3, addr, false) // home = 3
		for round := 0; round < 10; round++ {
			producer := msg.NodeID(round % 2) // writers 0 and 1 alternate
			access(t, sys, producer, addr, true)
			access(t, sys, 5, addr, false) // stable consumer
		}
		sys.CheckAll()
		return sys.Aggregate()
	}
	classic := run(0)
	pair := run(2)
	if classic.Delegations != 0 {
		t.Fatalf("classic detector delegated an alternating-writer line %d times", classic.Delegations)
	}
	if pair.Delegations == 0 {
		t.Fatal("pair detector never delegated the alternating-writer line")
	}
	if pair.PCLinesMarked == 0 {
		t.Fatal("pair detector never marked the line")
	}
}

// Alternating writers force remote-write undelegations under the pair
// detector; the system must stay coherent throughout (every access checked
// by the runtime invariants).
func TestPairDetectorUndelegationChurnIsCoherent(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	cfg.DetectorWriters = 2
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0xb000)
	access(t, sys, 3, addr, false)
	for round := 0; round < 20; round++ {
		access(t, sys, msg.NodeID(round%2), addr, true)
		access(t, sys, 5, addr, false)
		access(t, sys, 6, addr, false)
	}
	st := sys.Aggregate()
	if st.Undelegations[stats.UndelRemoteWrite] == 0 {
		t.Fatal("alternating writers never forced a remote-write undelegation")
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorWritersValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectorWriters = 3
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("DetectorWriters=3 accepted")
	}
}

// Adaptive delay under random traffic must not break coherence.
func TestAdaptiveDelayStress(t *testing.T) {
	cfg := testConfig().WithMechanisms(4*1024, 8, true)
	cfg.Nodes = 6
	cfg.AdaptiveDelay = true
	cfg.InterventionDelay = 500
	sys := newTestSystem(t, cfg)
	issued, completed := 0, 0
	for step := 0; step < 3000; step++ {
		n := msg.NodeID(step * 7 % cfg.Nodes)
		addr := msg.Addr(step*13%40) * 128
		write := step%3 == 0
		issued++
		sys.Access(n, addr, write, func() { completed++ })
		if step%4 == 0 {
			sys.Run()
		}
	}
	sys.Run()
	if completed != issued {
		t.Fatalf("%d of %d accesses completed", completed, issued)
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}
