package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/stats"
)

// testConfig returns a small, fully checked configuration. Mechanisms
// default off; tests enable them per scenario.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	return cfg
}

func newTestSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// access issues one operation and drains the system, failing the test if
// the operation never completes.
func access(t *testing.T, sys *System, n msg.NodeID, addr msg.Addr, write bool) {
	t.Helper()
	done := false
	sys.Access(n, addr, write, func() { done = true })
	sys.Run()
	if !done {
		t.Fatalf("node %d %s of %#x never completed", n, rw(write), uint64(addr))
	}
}

func rw(write bool) string {
	if write {
		return "store"
	}
	return "load"
}

// pcRounds drives the canonical producer-consumer pattern: producer writes,
// every consumer reads, repeated rounds times. The line is first touched by
// homeNode so the home is where we want it.
func pcRounds(t *testing.T, sys *System, addr msg.Addr, home, producer msg.NodeID,
	consumers []msg.NodeID, rounds int) {
	t.Helper()
	access(t, sys, home, addr, false) // first touch places the page
	for r := 0; r < rounds; r++ {
		access(t, sys, producer, addr, true)
		for _, c := range consumers {
			access(t, sys, c, addr, false)
		}
	}
}

func TestLocalHomeReadWrite(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0x1000, false)
	access(t, sys, 0, 0x1000, true)
	st := sys.Aggregate()
	if st.RemoteMisses() != 0 {
		t.Fatalf("local accesses caused %d remote misses", st.RemoteMisses())
	}
	if st.Misses[stats.MissLocalHome] == 0 {
		t.Fatal("no local-home miss recorded")
	}
	if st.TotalMessages() != 0 {
		t.Fatalf("local accesses sent %d network messages", st.TotalMessages())
	}
}

func TestCacheHitsAfterFill(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0x1000, false)
	before := sys.Aggregate().TotalMisses()
	access(t, sys, 0, 0x1000, false) // L1 hit
	access(t, sys, 0, 0x1010, false) // within L2 line, different L1 line
	st := sys.Aggregate()
	if st.TotalMisses() != before {
		t.Fatalf("hits generated misses: %d -> %d", before, st.TotalMisses())
	}
	if st.L1Hits == 0 {
		t.Fatal("no L1 hits recorded")
	}
}

func TestRemote2HopRead(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 3, 0x2000, true)  // first touch: home = 3, now EXCL at 3
	access(t, sys, 3, 0x2000, false) // keep it warm
	access(t, sys, 7, 0x2000, false) // remote read; owner == home -> 2 hops
	st := sys.Aggregate()
	if st.Misses[stats.MissRemote2Hop] == 0 {
		t.Fatalf("expected a 2-hop miss, got %v", st.Misses)
	}
	if st.Misses[stats.MissRemote3Hop] != 0 {
		t.Fatalf("unexpected 3-hop miss: %v", st.Misses)
	}
}

func TestRemote3HopRead(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 1, 0x3000, false) // home = 1
	access(t, sys, 2, 0x3000, true)  // node 2 becomes exclusive owner
	access(t, sys, 5, 0x3000, false) // read must intervene at 2 via home 1
	st := sys.Aggregate()
	if st.Misses[stats.MissRemote3Hop] == 0 {
		t.Fatalf("expected a 3-hop read, got %v", st.Misses)
	}
	if st.MsgCount[msg.Intervention] == 0 || st.MsgCount[msg.SharedWriteback] == 0 {
		t.Fatal("3-hop read did not use intervention + shared writeback")
	}
}

func TestRemote3HopWrite(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 1, 0x4000, false) // home = 1
	access(t, sys, 2, 0x4000, true)  // owner = 2
	access(t, sys, 5, 0x4000, true)  // ownership transfer 2 -> 5
	st := sys.Aggregate()
	if st.MsgCount[msg.TransferReq] == 0 || st.MsgCount[msg.TransferAck] == 0 {
		t.Fatal("3-hop write did not use ownership transfer")
	}
	// Node 2 must no longer be able to read silently its stale copy.
	access(t, sys, 2, 0x4000, false)
	sys.CheckAll()
}

func TestWriteInvalidatesSharers(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0x5000, false) // home = 0
	for _, n := range []msg.NodeID{1, 2, 3} {
		access(t, sys, n, 0x5000, false)
	}
	access(t, sys, 4, 0x5000, true)
	st := sys.Aggregate()
	if st.MsgCount[msg.Invalidate] < 3 {
		t.Fatalf("expected >=3 invalidations, got %d", st.MsgCount[msg.Invalidate])
	}
	if st.MsgCount[msg.InvAck] < 3 {
		t.Fatalf("expected >=3 inv acks, got %d", st.MsgCount[msg.InvAck])
	}
	sys.CheckAll()
}

func TestUpgradePath(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0x6000, false) // home = 0
	access(t, sys, 2, 0x6000, false) // node 2 has a Shared copy
	access(t, sys, 2, 0x6000, true)  // upgrade in place
	st := sys.Aggregate()
	if st.MsgCount[msg.Upgrade] == 0 || st.MsgCount[msg.UpgradeAck] == 0 {
		t.Fatalf("upgrade path not used: upg=%d ack=%d",
			st.MsgCount[msg.Upgrade], st.MsgCount[msg.UpgradeAck])
	}
	sys.CheckAll()
}

func TestVersionsPropagate(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	addr := msg.Addr(0x7000)
	access(t, sys, 0, addr, false)
	for i := 0; i < 5; i++ {
		access(t, sys, 1, addr, true)
		access(t, sys, 2, addr, false) // the monotonic observe check runs inside
	}
	if v := sys.LatestVersion(addr); v != 5 {
		t.Fatalf("latest version = %d, want 5", v)
	}
	sys.CheckAll()
}

func TestDetectionAndDelegation(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, false)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0x8000, 3, 0, []msg.NodeID{1, 2}, 5)
	st := sys.Aggregate()
	if st.PCLinesMarked == 0 {
		t.Fatal("producer-consumer pattern never detected")
	}
	if st.Delegations == 0 {
		t.Fatal("stable pattern never delegated")
	}
	if st.MsgCount[msg.Delegate] == 0 {
		t.Fatal("no DELEGATE message sent")
	}
	// The producer table at node 0 must now hold the line.
	if sys.Hubs[0].prod.Peek(0x8000) == nil {
		t.Fatal("producer table has no entry after delegation")
	}
	sys.CheckAll()
}

func TestDelegationConverts3HopTo2Hop(t *testing.T) {
	// Producer 0, home 3: consumer reads are 3-hop before delegation
	// (home -> owner intervention), 2-hop after.
	cfg := testConfig().WithMechanisms(32*1024, 32, false)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0x9000, 3, 0, []msg.NodeID{1, 2}, 4)
	st := sys.Aggregate()
	before3 := st.Misses[stats.MissRemote3Hop]
	if before3 == 0 {
		t.Fatal("expected 3-hop misses before delegation")
	}
	// Post-delegation rounds: consumer reads go straight to producer 0.
	for r := 0; r < 4; r++ {
		access(t, sys, 0, 0x9000, true)
		access(t, sys, 1, 0x9000, false)
		access(t, sys, 2, 0x9000, false)
	}
	st2 := sys.Aggregate()
	if st2.Misses[stats.MissRemote3Hop] != before3 {
		t.Fatalf("3-hop misses grew after delegation: %d -> %d",
			before3, st2.Misses[stats.MissRemote3Hop])
	}
	if st2.MsgCount[msg.SharedResponse] == 0 {
		t.Fatal("no direct producer responses after delegation")
	}
	sys.CheckAll()
}

func TestSpeculativeUpdatesEliminateRemoteMisses(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0xa000, 3, 0, []msg.NodeID{1, 2}, 4) // detect + delegate
	// Steady state: producer writes, intervention fires, updates land.
	for r := 0; r < 3; r++ {
		access(t, sys, 0, 0xa000, true) // Run drains: intervention + updates
		access(t, sys, 1, 0xa000, false)
		access(t, sys, 2, 0xa000, false)
	}
	st := sys.Aggregate()
	if st.UpdatesSent == 0 {
		t.Fatal("no speculative updates sent")
	}
	if st.Misses[stats.MissLocalRAC] == 0 {
		t.Fatal("updates never turned consumer reads into local misses")
	}
	if st.UpdatesUseful == 0 {
		t.Fatal("no update was marked useful")
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesPreserveDataValues(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0xb000)
	pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1, 2}, 8)
	// global.observe inside every consumer read already asserts
	// monotonicity; additionally the final version must be 8 writes.
	if v := sys.LatestVersion(addr); v != 8 {
		t.Fatalf("latest version = %d, want 8", v)
	}
}

func TestUndelegationOnRemoteWrite(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0xc000, 3, 0, []msg.NodeID{1, 2}, 5)
	if sys.Hubs[0].prod.Peek(0xc000) == nil {
		t.Fatal("precondition: line not delegated")
	}
	access(t, sys, 9, 0xc000, true) // foreign write forces undelegation
	st := sys.Aggregate()
	if st.Undelegations[stats.UndelRemoteWrite] == 0 {
		t.Fatal("no remote-write undelegation recorded")
	}
	if sys.Hubs[0].prod.Peek(0xc000) != nil {
		t.Fatal("producer entry survived undelegation")
	}
	// Node 9 must have a working exclusive copy; node 1 reads the value.
	access(t, sys, 1, 0xc000, false)
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestUndelegationOnCapacity(t *testing.T) {
	cfg := testConfig().WithMechanisms(64*1024, 2, false) // 2-entry producer table
	sys := newTestSystem(t, cfg)
	// Delegate three distinct lines to node 0 (homes at 3, 4, 5).
	for i, home := range []msg.NodeID{3, 4, 5} {
		addr := msg.Addr(0x10000 * (i + 1))
		pcRounds(t, sys, addr, home, 0, []msg.NodeID{1, 2}, 5)
	}
	st := sys.Aggregate()
	if st.Delegations < 3 {
		t.Fatalf("expected 3 delegations, got %d", st.Delegations)
	}
	if st.Undelegations[stats.UndelCapacity] == 0 {
		t.Fatal("no capacity undelegation despite 2-entry table")
	}
	if got := sys.Hubs[0].prod.Len(); got > 2 {
		t.Fatalf("producer table holds %d entries, cap 2", got)
	}
	sys.CheckAll()
}

func TestWritebackOnEviction(t *testing.T) {
	cfg := testConfig()
	cfg.L2Bytes = 2 * 128 // two lines only: force evictions
	cfg.L2Ways = 1
	cfg.L1Bytes = 64
	cfg.L1Ways = 1
	sys := newTestSystem(t, cfg)
	access(t, sys, 1, 0x0, false) // home of everything = 1
	// Node 2 writes conflicting lines; evictions must write back home.
	access(t, sys, 2, 0x0000, true)
	access(t, sys, 2, 0x0100, true) // same set, evicts 0x0 (direct mapped)
	access(t, sys, 2, 0x0200, true)
	st := sys.Aggregate()
	if st.MsgCount[msg.Writeback] == 0 {
		t.Fatal("dirty evictions never wrote back")
	}
	// The written-back data must be visible at another node.
	access(t, sys, 3, 0x0000, false)
	sys.CheckAll()
}

func TestRACVictimCaching(t *testing.T) {
	cfg := testConfig()
	cfg.L2Bytes = 2 * 128
	cfg.L2Ways = 1
	cfg.L1Bytes = 64
	cfg.L1Ways = 1
	cfg.RACBytes = 32 * 1024
	sys := newTestSystem(t, cfg)
	access(t, sys, 1, 0x0, false) // home = 1
	access(t, sys, 2, 0x0000, false)
	access(t, sys, 2, 0x0100, false) // evicts 0x0 into the RAC
	base := sys.Aggregate().RemoteMisses()
	access(t, sys, 2, 0x0000, false) // RAC hit: no new remote miss
	st := sys.Aggregate()
	if st.RemoteMisses() != base {
		t.Fatalf("RAC victim hit still went remote: %d -> %d", base, st.RemoteMisses())
	}
	if st.Misses[stats.MissLocalRAC] == 0 {
		t.Fatal("no local RAC miss recorded")
	}
}

func TestNackRetryUnderContention(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0xd000, false) // home = 0
	// Eight nodes write the same line simultaneously.
	done := 0
	for n := msg.NodeID(1); n <= 8; n++ {
		sys.Access(n, 0xd000, true, func() { done++ })
	}
	sys.Run()
	if done != 8 {
		t.Fatalf("%d of 8 concurrent writes completed", done)
	}
	if sys.Aggregate().Nacks() == 0 {
		t.Fatal("contention produced no NACKs")
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestReloadFlurry(t *testing.T) {
	// After a producer write, many consumers reload the same line at
	// once — the em3d "reload flurry". All must complete.
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0xe000, false)
	for n := msg.NodeID(1); n < 16; n++ {
		access(t, sys, n, 0xe000, false)
	}
	access(t, sys, 0, 0xe000, true) // invalidates all 15
	done := 0
	for n := msg.NodeID(1); n < 16; n++ {
		sys.Access(n, 0xe000, false, func() { done++ })
	}
	sys.Run()
	if done != 15 {
		t.Fatalf("%d of 15 flurry reads completed", done)
	}
	sys.CheckAll()
}

func TestConsumerTableHintsUsed(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, false)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0xf000, 3, 0, []msg.NodeID{1, 2}, 5)
	// Consumer 1 now has a hint; its next read goes straight to node 0.
	hint, ok := sys.Hubs[1].cons.Lookup(0xf000)
	if !ok || hint != 0 {
		t.Fatalf("consumer table hint = %d,%v; want node 0", hint, ok)
	}
}

func TestStaleHintRecovery(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, false)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0x11000, 3, 0, []msg.NodeID{1, 2}, 5)
	access(t, sys, 9, 0x11000, true) // undelegates
	// Consumer 1 still hints node 0; its read must recover via
	// NackNotHome and complete through the home.
	access(t, sys, 1, 0x11000, false)
	st := sys.Aggregate()
	if st.MsgCount[msg.NackNotHome] == 0 {
		t.Fatal("stale hint never produced NackNotHome")
	}
	if _, ok := sys.Hubs[1].cons.Lookup(0x11000); ok {
		t.Fatal("stale hint not dropped")
	}
	sys.CheckAll()
}

func TestDelegationOnlyAblation(t *testing.T) {
	// With updates disabled, delegated consumer reads are 2-hop (served
	// by the producer), never local.
	cfg := testConfig().WithMechanisms(32*1024, 32, false)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0x12000, 3, 0, []msg.NodeID{1, 2}, 8)
	st := sys.Aggregate()
	if st.UpdatesSent != 0 {
		t.Fatalf("delegation-only config sent %d updates", st.UpdatesSent)
	}
	if st.Misses[stats.MissLocalRAC] != 0 {
		t.Fatal("impossible local RAC hits without updates")
	}
}

func TestInterventionDelayInfinite(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	cfg.InterventionDelay = NoIntervention
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0x13000, 3, 0, []msg.NodeID{1, 2}, 8)
	st := sys.Aggregate()
	if st.UpdatesSent != 0 {
		t.Fatalf("infinite delay still sent %d updates", st.UpdatesSent)
	}
	sys.CheckAll()
}

func TestTable3ConsumerDistribution(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	sys := newTestSystem(t, cfg)
	pcRounds(t, sys, 0x14000, 3, 0, []msg.NodeID{1, 2, 4, 5}, 8)
	st := sys.Aggregate()
	var total uint64
	for _, c := range st.ConsumerDist {
		total += c
	}
	if total == 0 {
		t.Fatal("no consumer-count samples recorded")
	}
	if st.ConsumerDist[3] == 0 {
		t.Fatalf("expected 4-consumer samples, dist=%v", st.ConsumerDist)
	}
}

// TestRandomStress drives random reads/writes from all nodes over a small
// line set with all mechanisms enabled and every invariant check on. Any
// SWMR violation, stale write, backwards read, or stuck transaction fails.
func TestRandomStress(t *testing.T) {
	for _, mech := range []struct {
		name string
		rac  int
		del  int
		upd  bool
	}{
		{"baseline", 0, 0, false},
		{"rac-only", 32 * 1024, 0, false},
		{"delegation", 32 * 1024, 32, false},
		{"updates", 32 * 1024, 32, true},
		{"tiny-tables", 4 * 1024, 2, true},
	} {
		t.Run(mech.name, func(t *testing.T) {
			cfg := testConfig().WithMechanisms(mech.rac, mech.del, mech.upd)
			cfg.Nodes = 8
			sys := newTestSystem(t, cfg)
			rng := rand.New(rand.NewSource(12345))
			lines := []msg.Addr{0x0, 0x80, 0x1000, 0x2000, 0x40000, 0x40080}
			issued, completed := 0, 0
			for step := 0; step < 4000; step++ {
				n := msg.NodeID(rng.Intn(cfg.Nodes))
				addr := lines[rng.Intn(len(lines))] + msg.Addr(rng.Intn(4)*32)
				write := rng.Intn(3) == 0
				issued++
				sys.Access(n, addr, write, func() { completed++ })
				if rng.Intn(4) == 0 {
					sys.Run() // drain sometimes; otherwise overlap
				}
			}
			sys.Run()
			if completed != issued {
				t.Fatalf("%d of %d accesses completed", completed, issued)
			}
			sys.CheckAll()
			if err := sys.QuiesceCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRandomStressManyLines exercises eviction paths across many seeds:
// small caches, many lines, random traffic, every invariant check enabled.
func TestRandomStressManyLines(t *testing.T) {
	seeds := []int64{1, 7, 42, 777, 4096, 31337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := testConfig().WithMechanisms(2*1024, 8, true)
			cfg.Nodes = 4
			cfg.L2Bytes = 4 * 128
			cfg.L2Ways = 2
			cfg.L1Bytes = 128
			cfg.L1Ways = 2
			cfg.L1LineBytes = 32
			sys := newTestSystem(t, cfg)
			rng := rand.New(rand.NewSource(seed))
			issued, completed := 0, 0
			for step := 0; step < 3000; step++ {
				n := msg.NodeID(rng.Intn(cfg.Nodes))
				addr := msg.Addr(rng.Intn(64)) * 128
				write := rng.Intn(3) == 0
				issued++
				sys.Access(n, addr, write, func() { completed++ })
				if rng.Intn(3) == 0 {
					sys.Run()
				}
			}
			sys.Run()
			if completed != issued {
				t.Fatalf("%d of %d accesses completed", completed, issued)
			}
			sys.CheckAll()
			if err := sys.QuiesceCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Nodes = 0
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	bad = DefaultConfig()
	bad.DelegateEntries = 32 // delegation without RAC
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("delegation without RAC accepted")
	}
	bad = DefaultConfig()
	bad.EnableUpdates = true
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("updates without delegation accepted")
	}
	good := DefaultConfig().WithMechanisms(32*1024, 32, true)
	if _, err := NewSystem(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAggregateExecCycles(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	access(t, sys, 0, 0x1000, false)
	st := sys.Aggregate()
	if st.ExecCycles == 0 {
		t.Fatal("ExecCycles not set from engine time")
	}
}
