// Package core implements the paper's coherence protocol: a directory-based
// write-invalidate protocol in the SGI Origin family extended with
// producer-consumer sharing detection (§2.2), directory delegation (§2.3)
// and speculative updates via delayed intervention (§2.4). Every mechanism
// lives in the hub (directory controller); the modeled processor is
// unmodified, exactly as the paper requires.
package core

import (
	"errors"
	"fmt"

	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/protocol"
	"pccsim/internal/sim"
)

// Config describes one simulated machine. The zero value is not valid; use
// DefaultConfig (Table 1) and modify.
type Config struct {
	// Nodes is the number of processor/hub nodes (the paper models 16).
	Nodes int

	// Protocol selects the registered coherence protocol by name; the
	// empty string selects the default (the paper's "adaptive"
	// protocol). Validate resolves the name and rejects configurations
	// that enable a mechanism the protocol's capabilities do not cover
	// (see internal/protocol).
	Protocol string

	// L1 data cache geometry (Table 1: 2-way, 32 KB, 32 B lines).
	L1Bytes, L1Ways, L1LineBytes int
	// L2 unified cache geometry (Table 1: 4-way, 2 MB, 128 B lines).
	// The L2 line size is the coherence granularity.
	L2Bytes, L2Ways, L2LineBytes int

	// RACBytes is the remote access cache capacity; 0 disables the RAC
	// (the baseline system). RACWays is its associativity.
	RACBytes, RACWays int

	// DelegateEntries is the producer/consumer table size of the
	// delegate cache; 0 disables delegation (and therefore updates).
	DelegateEntries int
	// ConsumerEntries is the consumer-table size; defaults to
	// 4*DelegateEntries when 0 (hints are cheap, 6 bytes each).
	ConsumerEntries int

	// DirCacheEntries is the directory cache size whose entries carry
	// the sharing detector (8k entries on SGI Altix).
	DirCacheEntries int

	// EnableUpdates turns on speculative updates (requires delegation
	// and a RAC). Disabling it with delegation on gives the paper's
	// "delegation-only" ablation.
	EnableUpdates bool

	// InterventionDelay is the delayed-intervention interval in cycles
	// (§2.4.1, default 50; Figure 9 sweeps 5..500M). A zero value means
	// the default; use NoIntervention for the "infinite" point.
	InterventionDelay sim.Time

	// AdaptiveDelay enables the §5 extension: each producer-consumer
	// line learns its own intervention delay — halved when a consumer
	// read beats the intervention (delay too long), doubled when the
	// producer rewrites the line right after a downgrade (delay too
	// short). InterventionDelay seeds the per-line hints.
	AdaptiveDelay bool

	// DetectorWriters selects the sharing detector: 1 (default, the
	// paper's single-producer detector) or 2 (the §5 extension that
	// tolerates a stable pair of alternating writers).
	DetectorWriters int

	// SelfInvalidate enables the related-work baseline the paper
	// contrasts with (Lebeck & Wood dynamic self-invalidation, with Lai
	// & Falsafi's last-touch timing approximated by the same delayed
	// intervention): owners of detected producer-consumer lines eagerly
	// downgrade after the write burst and push the data home, so
	// consumer reads become 2-hop home hits instead of 3-hop
	// interventions — but never local hits. Mutually exclusive with
	// delegation/updates (it replaces them as the optimization).
	SelfInvalidate bool

	// Latencies, in 2 GHz processor cycles (Table 1).
	L1Latency   sim.Time // 2
	L2Latency   sim.Time // 10
	DirLatency  sim.Time // hub/directory occupancy per request
	DRAMLatency sim.Time // 200

	// RetryBackoff is the NACK retry delay.
	RetryBackoff sim.Time

	// MaxStores is the store-buffer depth: how many store misses a CPU
	// may have outstanding before it stalls (Table 1: max 16
	// outstanding L2C misses).
	MaxStores int

	// BarrierLatency models the (idealized) synchronization cost.
	BarrierLatency sim.Time

	// Network is the interconnect configuration; Network.Nodes is
	// forced to Nodes.
	Network network.Config

	// WatchdogSteps bounds how many engine events one run may execute
	// before it is aborted as a runaway (a protocol livelock would
	// otherwise hang the process forever inside sim.Engine.Run). 0
	// disables the guard. The guard never changes event order, so any
	// run that finishes under budget is unaffected.
	WatchdogSteps uint64

	// CheckInvariants enables the runtime coherence checks of §2.5
	// ("single writer exists" and "consistency within the directory",
	// checked at the completion of every transaction that incurs an L2
	// miss). Tests enable it; benchmark sweeps disable it for speed.
	CheckInvariants bool

	// Shards partitions the machine into contiguous node groups, each
	// owning a private event engine (timing wheel, message pool) and its
	// nodes' slice of directory/home state. Shards advance in
	// conservative time windows whose width is the minimum cross-shard
	// network latency (see network.MinLookahead). 0 or 1 keeps the
	// classic single-engine scheduler, whose event order is the
	// bit-for-bit reproducibility reference.
	Shards int

	// ShardsParallel executes the shards on worker goroutines (the fast
	// mode). When false, a sharded system runs its shards round-robin on
	// one goroutine — the deterministic scheduler, which produces
	// results identical to the parallel mode at the same shard count.
	// Ignored when Shards <= 1.
	ShardsParallel bool

	// AdaptiveWindows lets the sharded schedulers widen the conservative
	// window beyond the fixed network lookahead while no cross-shard
	// traffic is in flight: quiet barriers double the allowance, any
	// drained traffic resets it. Per-shard deadlines stay bounded by the
	// earliest possible cross-shard arrival, so event timing — and the
	// serial ≡ parallel guarantee — is unchanged; only the barrier count
	// drops. Growth additionally requires BarrierLatency >= lookahead-1
	// and is suppressed when EnableUpdates is set (the cross-shard update
	// staging re-prices deliveries against the producer's progress, which
	// wider windows would shift). Ignored when Shards <= 1.
	AdaptiveWindows bool
}

// NoIntervention is an InterventionDelay value that disables the delayed
// intervention entirely (the "Infinite" point of Figure 9): the producer
// keeps the line EXCL until a consumer's request forces a downgrade.
const NoIntervention = ^sim.Time(0)

// DefaultConfig returns the Table 1 system: 16 nodes, 2-way 32 KB L1,
// 4-way 2 MB L2 with 128 B lines, 100-cycle network hops, 200-cycle DRAM,
// and all paper mechanisms disabled (the baseline). Turn on the RAC,
// delegation and updates per experiment.
func DefaultConfig() Config {
	return Config{
		Nodes:             16,
		L1Bytes:           32 * 1024,
		L1Ways:            2,
		L1LineBytes:       32,
		L2Bytes:           2 * 1024 * 1024,
		L2Ways:            4,
		L2LineBytes:       128,
		RACBytes:          0,
		RACWays:           4,
		DelegateEntries:   0,
		DirCacheEntries:   8192,
		EnableUpdates:     false,
		InterventionDelay: 50,
		L1Latency:         2,
		L2Latency:         10,
		DirLatency:        20,
		DRAMLatency:       200,
		RetryBackoff:      100,
		MaxStores:         16,
		BarrierLatency:    200,
		Network:           network.DefaultConfig(),
	}
}

// Option mutates a Config; see With. Options are the composable way to
// size the paper's mechanisms — each one enables exactly one feature, so
// ablations read as the presence or absence of an option rather than as
// positional argument puzzles.
type Option func(*Config)

// WithRAC enables the remote access cache with the given capacity in
// kilobytes (the paper's §2.4 consumer-side structure; Figure 7 sizes it
// at 32 KB). For capacities that are not whole kilobytes, set
// Config.RACBytes directly.
func WithRAC(kiloBytes int) Option {
	return func(c *Config) { c.RACBytes = kiloBytes * 1024 }
}

// WithDelegation enables directory delegation (§2.3) with a producer
// table of the given entry count. Delegation requires a RAC (the producer
// pins delegated lines there): combine with WithRAC or Validate fails.
func WithDelegation(entries int) Option {
	return func(c *Config) { c.DelegateEntries = entries }
}

// WithSpeculativeUpdates enables speculative updates driven by delayed
// interventions (§2.4). delay is the intervention interval in cycles:
// 0 keeps the current setting (default 50), NoIntervention disables the
// timer (the "infinite" point of Figure 9). Requires delegation and a
// RAC.
func WithSpeculativeUpdates(delay sim.Time) Option {
	return func(c *Config) {
		c.EnableUpdates = true
		if delay != 0 {
			c.InterventionDelay = delay
		}
	}
}

// WithSelfInvalidation selects the related-work baseline (dynamic
// self-invalidation) instead of delegation/updates.
func WithSelfInvalidation() Option {
	return func(c *Config) { c.SelfInvalidate = true }
}

// WithAdaptiveDelay enables the §5 per-line learned intervention delay.
func WithAdaptiveDelay() Option {
	return func(c *Config) { c.AdaptiveDelay = true }
}

// WithProtocol selects a registered coherence protocol by name (see
// internal/protocol; the empty name keeps the default "adaptive").
// Validate rejects unknown names and mechanism settings outside the
// protocol's capabilities.
func WithProtocol(name string) Option {
	return func(c *Config) { c.Protocol = name }
}

// WithShards partitions the machine into n engine shards executed on
// worker goroutines (the fast scheduler). n <= 1 keeps the classic
// single engine; n must not exceed Nodes.
func WithShards(n int) Option {
	return func(c *Config) {
		c.Shards = n
		c.ShardsParallel = n > 1
	}
}

// WithDeterministicShards partitions like WithShards but keeps the
// serial round-robin scheduler: same shard topology, same results, one
// goroutine. This is the reference the fast mode is validated against
// and the mode to use when reproducing a parallel-run failure.
func WithDeterministicShards(n int) Option {
	return func(c *Config) {
		c.Shards = n
		c.ShardsParallel = false
	}
}

// WithAdaptiveWindows lets a sharded run widen its conservative windows
// while no cross-shard traffic is in flight (see Config.AdaptiveWindows).
// A no-op without WithShards/WithDeterministicShards.
func WithAdaptiveWindows() Option {
	return func(c *Config) { c.AdaptiveWindows = true }
}

// With returns a copy of c with the options applied, in order.
func (c Config) With(opts ...Option) Config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithMechanisms returns a copy of c with the paper's mechanisms sized as
// given: racBytes of RAC, delegateEntries of delegate cache, and updates
// enabled if both are nonzero. This is the configuration axis of Figure 7.
//
// Deprecated: the positional triple is easy to misread. Use the
// functional options instead:
//
//	cfg.With(WithRAC(32), WithDelegation(32), WithSpeculativeUpdates(0))
func (c Config) WithMechanisms(racBytes, delegateEntries int, updates bool) Config {
	c.RACBytes = racBytes
	c.DelegateEntries = delegateEntries
	c.EnableUpdates = updates && racBytes > 0 && delegateEntries > 0
	return c
}

// ErrBadConfig is wrapped by every Validate failure, so callers can class
// configuration mistakes with errors.Is without matching message text.
var ErrBadConfig = errors.New("core: invalid configuration")

// Validate checks the configuration for consistency. All failures wrap
// ErrBadConfig.
func (c *Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > msg.MaxNodes {
		return fmt.Errorf("%w: Nodes = %d, want 1..%d (full-map sharing vector width)",
			ErrBadConfig, c.Nodes, msg.MaxNodes)
	}
	if c.L2LineBytes <= 0 || c.L1LineBytes <= 0 || c.L2LineBytes%c.L1LineBytes != 0 {
		return fmt.Errorf("%w: L2 line (%d) must be a multiple of L1 line (%d)",
			ErrBadConfig, c.L2LineBytes, c.L1LineBytes)
	}
	if c.DelegateEntries > 0 && c.RACBytes == 0 {
		return fmt.Errorf("%w: delegation requires a RAC (the producer pins delegated lines there)", ErrBadConfig)
	}
	if c.EnableUpdates && (c.DelegateEntries == 0 || c.RACBytes == 0) {
		return fmt.Errorf("%w: speculative updates require delegation and a RAC", ErrBadConfig)
	}
	if c.DirCacheEntries <= 0 {
		return fmt.Errorf("%w: DirCacheEntries must be positive", ErrBadConfig)
	}
	if c.MaxStores <= 0 {
		return fmt.Errorf("%w: MaxStores must be positive", ErrBadConfig)
	}
	if c.DetectorWriters < 0 || c.DetectorWriters > 2 {
		return fmt.Errorf("%w: DetectorWriters = %d, want 0 (default), 1 or 2", ErrBadConfig, c.DetectorWriters)
	}
	if c.SelfInvalidate && (c.DelegateEntries > 0 || c.EnableUpdates) {
		return fmt.Errorf("%w: SelfInvalidate is an alternative baseline; disable delegation/updates", ErrBadConfig)
	}
	if c.Shards < 0 || c.Shards > c.Nodes {
		return fmt.Errorf("%w: Shards = %d, want 0..Nodes (%d)", ErrBadConfig, c.Shards, c.Nodes)
	}
	proto, err := protocol.Lookup(c.Protocol)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	caps := proto.Capabilities()
	if c.DelegateEntries > 0 && !caps.Delegation {
		return fmt.Errorf("%w: protocol %q does not support delegation (DelegateEntries = %d)",
			ErrBadConfig, proto.Name(), c.DelegateEntries)
	}
	if c.EnableUpdates && !caps.SpeculativeUpdates {
		return fmt.Errorf("%w: protocol %q does not support speculative updates", ErrBadConfig, proto.Name())
	}
	if c.SelfInvalidate && !caps.SelfInvalidation {
		return fmt.Errorf("%w: protocol %q does not support self-invalidation", ErrBadConfig, proto.Name())
	}
	if c.AdaptiveDelay && !caps.AdaptiveDelay {
		return fmt.Errorf("%w: protocol %q does not support the adaptive intervention delay", ErrBadConfig, proto.Name())
	}
	return nil
}

// protocolImpl resolves the configured protocol; it must only be called
// after a successful Validate.
func (c *Config) protocolImpl() protocol.Protocol {
	p, err := protocol.Lookup(c.Protocol)
	if err != nil {
		panic(err) // unreachable after Validate
	}
	return p
}

// consumerEntries resolves the consumer-table size.
func (c *Config) consumerEntries() int {
	if c.ConsumerEntries > 0 {
		return c.ConsumerEntries
	}
	sets := 1
	for sets < c.DelegateEntries {
		sets <<= 1
	}
	return 4 * sets // set count must be a power of two
}

// interventionDelay resolves the delayed-intervention interval.
func (c *Config) interventionDelay() sim.Time {
	if c.InterventionDelay == 0 {
		return 50
	}
	return c.InterventionDelay
}
