package core

import (
	"sync/atomic"
	"time"

	"pccsim/internal/mem"
	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/obs"
	"pccsim/internal/protocol"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Observer receives lifecycle notifications from a System's event loop.
// Both hooks are optional (nil funcs are skipped). Start fires when the
// event loop begins draining; Done fires when it stops (drained, or cut
// short by the watchdog) with the number of engine events executed by
// this run and the host wall time it took. Observers must not mutate the
// system; they exist so long experiment sweeps can report per-cell
// progress.
type Observer struct {
	Start func(sys *System)
	Done  func(sys *System, steps uint64, wall time.Duration)
}

// System is one simulated cc-NUMA machine: an event engine (or a group
// of shard engines), the fat-tree interconnect, distributed memory, and
// one hub per node.
type System struct {
	Cfg Config
	// Eng is the single-engine scheduler. It is nil when the system is
	// sharded (Cfg.Shards > 1); use EngFor, Now and Steps, which work in
	// both modes.
	Eng  *sim.Engine
	Net  *network.Network
	Mem  *mem.Memory
	Hubs []*Hub
	// Observer optionally watches the event loop; see Observer.
	Observer Observer
	// Obs, when non-nil, receives structured protocol events from every
	// hub (miss lifecycle, delegation lifecycle, speculative-update
	// outcomes). Attach it with AttachObs so the interconnect emits into
	// the same sink; a nil Obs costs one pointer check per potential
	// event. On a sharded system events are staged in per-shard buffers
	// and merged into this sink at window barriers, ordered by (time,
	// shard).
	Obs *obs.Sink
	// NodeStats holds each node's counters; Aggregate folds them.
	NodeStats []*stats.Stats
	// proto is the resolved coherence protocol (Cfg.Protocol) and caps
	// its declared capabilities; both are fixed at construction.
	proto protocol.Protocol
	caps  protocol.Capabilities
	// NetStats accumulates interconnect traffic (shared by all sends).
	// It is nil on a sharded system, where each shard collects its own
	// slice; Aggregate folds them in either mode.
	NetStats *stats.Stats
	glob     *global

	// Sharded-mode state (nil/empty on the classic single engine).
	grp      *sim.Group
	shardOf  []int
	shards   []*shardState
	netStats []*stats.Stats
	obsBufs  []*obs.Sink
	// checkSeen dedupes deferred invariant checks within one barrier.
	checkSeen map[msg.Addr]struct{}

	// intr is the cooperative-cancellation flag armed on both schedulers
	// at construction; see Interrupt.
	intr atomic.Bool
}

// shardState is one shard's core-layer staging area: cross-shard hub
// calls and invariant checks deferred during a window. Appended only by
// the owning shard's goroutine, drained only by the coordinator at
// barriers.
type shardState struct {
	xcalls []xcall
	checks []msg.Addr
}

// xcall is a deferred cross-shard hub call — the link-level
// update-delivered notification, the one place a hub pokes a hub on
// another shard directly instead of through a network message.
type xcall struct {
	at   sim.Time
	node msg.NodeID
	addr msg.Addr
}

// adaptiveAllowanceCap bounds the adaptive window allowance to this many
// lookaheads (Config.AdaptiveWindows): ten quiet barriers of doubling
// reach it. Beyond the cap wider windows stop helping — the remaining
// barrier rate is set by actual traffic, not by the allowance.
const adaptiveAllowanceCap = 1024

// NewSystem builds a machine from cfg. With cfg.Shards > 1 the machine
// is partitioned into contiguous node groups, each with a private event
// engine, synchronized through conservative time windows; see the
// package comments on sim.Group and network's sharded mode.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Network.Nodes = cfg.Nodes
	sys := &System{
		Cfg:       cfg,
		Mem:       mem.New(mem.FirstTouch, cfg.Nodes, 4096),
		glob:      newGlobal(cfg.CheckInvariants),
		NodeStats: make([]*stats.Stats, cfg.Nodes),
		proto:     cfg.protocolImpl(),
	}
	sys.caps = sys.proto.Capabilities()
	if n := cfg.Shards; n > 1 {
		sys.shardOf = make([]int, cfg.Nodes)
		for i := range sys.shardOf {
			sys.shardOf[i] = i * n / cfg.Nodes
		}
		look := network.MinLookahead(cfg.Network, sys.shardOf)
		sys.grp = sim.NewGroup(n, look, cfg.ShardsParallel)
		if cfg.AdaptiveWindows && cfg.BarrierLatency >= look-1 && !cfg.EnableUpdates {
			// Safe to grow: every cross-shard channel then respects the
			// per-shard deadline bound (see Config.AdaptiveWindows). The
			// allowance cap only bounds how far a lone straggler shard
			// runs between barriers; 1024 lookaheads (~200k cycles at the
			// default radix) dwarfs the longest compute block in the
			// bundled workloads.
			sys.grp.SetAdaptive(look * adaptiveAllowanceCap)
		}
		sys.netStats = make([]*stats.Stats, n)
		sys.shards = make([]*shardState, n)
		for i := 0; i < n; i++ {
			sys.netStats[i] = stats.New()
			sys.shards[i] = &shardState{}
		}
		sys.Net = network.NewSharded(sys.grp, cfg.Network, sys.shardOf, sys.netStats)
		sys.glob.enableSharing()
		sys.Mem.EnableSharedAccess()
		if cfg.CheckInvariants {
			sys.checkSeen = make(map[msg.Addr]struct{})
		}
		// Registered after the network's mailbox drain: staged messages
		// land before deferred checks and the obs merge run.
		sys.grp.OnBarrier(sys.shardBarrier)
		sys.grp.SetInterrupt(&sys.intr)
	} else {
		eng := sim.NewEngine()
		netStats := stats.New()
		sys.Eng = eng
		sys.Net = network.New(eng, cfg.Network, netStats)
		sys.NetStats = netStats
		sys.netStats = []*stats.Stats{netStats}
		eng.SetInterrupt(&sys.intr)
	}
	sys.Hubs = make([]*Hub, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		sys.NodeStats[i] = stats.New()
		sys.Hubs[i] = newHub(sys, msg.NodeID(i), sys.NodeStats[i])
	}
	return sys, nil
}

// MustNewSystem is NewSystem for callers with static configurations.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Protocol returns the machine's resolved coherence protocol.
func (s *System) Protocol() protocol.Protocol { return s.proto }

// Sharded reports whether the system runs on the shard-group scheduler.
func (s *System) Sharded() bool { return s.grp != nil }

// ShardOf returns the shard owning node n (always 0 when not sharded).
func (s *System) ShardOf(n msg.NodeID) int {
	if s.shardOf == nil {
		return 0
	}
	return s.shardOf[n]
}

// EngFor returns the engine that owns node n's events — the single
// engine, or n's shard's.
func (s *System) EngFor(n msg.NodeID) *sim.Engine {
	if s.grp == nil {
		return s.Eng
	}
	return s.grp.Engine(s.shardOf[n])
}

// Steps reports engine events executed, summed across shards.
func (s *System) Steps() uint64 {
	if s.grp != nil {
		return s.grp.Steps()
	}
	return s.Eng.Steps()
}

// Now reports the simulation clock (the furthest shard when sharded).
func (s *System) Now() sim.Time {
	if s.grp != nil {
		return s.grp.Now()
	}
	return s.Eng.Now()
}

// Group exposes the shard group (nil on a single-engine system); layers
// above use it to register barrier hooks and to drive guarded runs.
func (s *System) Group() *sim.Group { return s.grp }

// AttachObs points both the hubs and the interconnect at sink. If a sink
// was already attached and had a Tap (e.g. a trace recorder riding it),
// the old tap is chained onto the new sink so no consumer goes deaf.
//
// On a sharded system the hubs and the network emit into per-shard
// staging buffers instead, and the coordinator merges them into sink at
// every window barrier ordered by (time, shard) — an order identical
// under the serial and parallel schedulers.
func (s *System) AttachObs(sink *obs.Sink) {
	if prev := s.Obs; prev != nil && prev.Tap != nil && prev != sink {
		pt := prev.Tap
		if sink.Tap == nil {
			sink.Tap = pt
		} else {
			nt := sink.Tap
			sink.Tap = func(e obs.Event) { nt(e); pt(e) }
		}
	}
	s.Obs = sink
	s.Net.Obs = sink
	if s.grp != nil {
		if s.obsBufs == nil {
			s.obsBufs = make([]*obs.Sink, s.grp.Shards())
			for i := range s.obsBufs {
				s.obsBufs[i] = obs.NewBuffer()
			}
			s.Net.SetShardObs(s.obsBufs)
		}
		for i, h := range s.Hubs {
			h.obs = s.obsBufs[s.shardOf[i]]
		}
		return
	}
	for _, h := range s.Hubs {
		h.obs = sink
	}
}

// deferUpdateDelivered stages a cross-shard updateDelivered notification
// from the consumer's shard; shardBarrier injects it into the producer's
// engine at the next window boundary, timestamped with the consumer's
// clock (the producer's engine clamps it into its own present).
func (s *System) deferUpdateDelivered(consumer, producer msg.NodeID, addr msg.Addr) {
	sh := s.shards[s.shardOf[consumer]]
	sh.xcalls = append(sh.xcalls, xcall{
		at:   s.EngFor(consumer).Now(),
		node: producer,
		addr: addr,
	})
}

// shardBarrier is the core layer's window-barrier hook. It runs on the
// coordinator with every shard parked (so it may touch any shard's
// state), after the network has drained its mailboxes: inject deferred
// cross-shard hub calls, run the invariant checks deferred during the
// window, and merge the shard-local observability buffers.
func (s *System) shardBarrier() {
	for _, sh := range s.shards {
		for i := range sh.xcalls {
			c := sh.xcalls[i]
			h, addr := s.Hubs[c.node], c.addr
			s.EngFor(c.node).Schedule(c.at, func() { h.updateDeliveredLine(addr) })
			sh.xcalls[i] = xcall{}
		}
		sh.xcalls = sh.xcalls[:0]
	}
	if s.checkSeen != nil {
		checked := false
		for _, sh := range s.shards {
			for _, a := range sh.checks {
				if _, dup := s.checkSeen[a]; dup {
					continue
				}
				s.checkSeen[a] = struct{}{}
				checked = true
				s.CheckLine(a)
			}
			sh.checks = sh.checks[:0]
		}
		if checked {
			clear(s.checkSeen)
		}
	}
	s.flushShardObs()
}

// flushShardObs merges the per-shard staging buffers into the user sink,
// ordered by (event time, shard index). Each buffer is already
// time-sorted (a shard's clock is monotonic), so this is a linear k-way
// merge; its result does not depend on which scheduler ran the window,
// because the buffer contents do not.
func (s *System) flushShardObs() {
	if s.Obs == nil || s.obsBufs == nil {
		return
	}
	total := 0
	for _, b := range s.obsBufs {
		total += len(b.Buffered())
	}
	if total == 0 {
		return
	}
	pos := make([]int, len(s.obsBufs))
	for emitted := 0; emitted < total; emitted++ {
		best := -1
		var bestAt sim.Time
		for i, b := range s.obsBufs {
			evs := b.Buffered()
			if pos[i] >= len(evs) {
				continue
			}
			if at := evs[pos[i]].At; best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		s.Obs.Emit(s.obsBufs[best].Buffered()[pos[best]])
		pos[best]++
	}
	for _, b := range s.obsBufs {
		b.ResetBuffer()
	}
}

// Access issues one memory operation on node n's hub.
func (s *System) Access(n msg.NodeID, addr msg.Addr, write bool, done func()) {
	s.Hubs[n].Access(addr, write, done)
}

// Run drains the event queue and returns the finishing time.
func (s *System) Run() sim.Time {
	if s.grp != nil {
		t := s.grp.Run()
		s.flushShardObs()
		return t
	}
	return s.Eng.Run()
}

// RunGuarded drains the event queue under the configured watchdog budget
// (Config.WatchdogSteps; 0 = unlimited), notifying the Observer around the
// loop. On a runaway it returns the wrapped *sim.RunawayError with the
// pending-event context intact (aggregated across shards when sharded).
func (s *System) RunGuarded() (sim.Time, error) {
	if s.Observer.Start != nil {
		s.Observer.Start(s)
	}
	start := time.Now()
	before := s.Steps()
	var t sim.Time
	var err error
	if s.grp != nil {
		// A protocol panic aborts mid-window with events still staged in
		// the shard obs buffers; flush them so post-mortem consumers (the
		// fuzzer's repro trace) see the run's full event tail. This runs
		// after the group has parked its workers, so the buffers are
		// quiescent.
		defer func() {
			if r := recover(); r != nil {
				s.flushShardObs()
				panic(r)
			}
		}()
		t, err = s.grp.RunGuarded(s.Cfg.WatchdogSteps)
		// A watchdog abort leaves the killed window's events staged.
		s.flushShardObs()
	} else {
		t, err = s.Eng.RunGuarded(s.Cfg.WatchdogSteps)
	}
	if s.Observer.Done != nil {
		s.Observer.Done(s, s.Steps()-before, time.Since(start))
	}
	return t, err
}

// Interrupt asks a running simulation to stop cooperatively: the event
// loop notices the flag between events (single engine) or at the next
// window barrier (sharded) and RunGuarded returns sim.ErrInterrupted.
// Safe to call from any goroutine, before or during a run; calling it
// after a run merely makes the next run stop immediately. It never
// perturbs event order, so a run that finishes before the flag is seen
// is bit-identical to an uninterrupted one.
func (s *System) Interrupt() { s.intr.Store(true) }

// LatestVersion exposes the data-version oracle (tests and the workload
// validators use it to confirm consumers saw produced values).
func (s *System) LatestVersion(addr msg.Addr) uint64 {
	return s.glob.latestVersion(s.Hubs[0].line(addr))
}

// Aggregate folds per-node and interconnect statistics into one report.
// ExecCycles is set to the engine's current time.
func (s *System) Aggregate() *stats.Stats {
	agg := stats.New()
	for _, st := range s.NodeStats {
		agg.Add(st)
	}
	for _, st := range s.netStats {
		agg.Add(st)
	}
	agg.ExecCycles = uint64(s.Now())
	return agg
}
