package core

import (
	"time"

	"pccsim/internal/mem"
	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Observer receives lifecycle notifications from a System's event loop.
// Both hooks are optional (nil funcs are skipped). Start fires when the
// event loop begins draining; Done fires when it stops (drained, or cut
// short by the watchdog) with the number of engine events executed by
// this run and the host wall time it took. Observers must not mutate the
// system; they exist so long experiment sweeps can report per-cell
// progress.
type Observer struct {
	Start func(sys *System)
	Done  func(sys *System, steps uint64, wall time.Duration)
}

// System is one simulated cc-NUMA machine: an event engine, the fat-tree
// interconnect, distributed memory, and one hub per node.
type System struct {
	Cfg  Config
	Eng  *sim.Engine
	Net  *network.Network
	Mem  *mem.Memory
	Hubs []*Hub
	// Observer optionally watches the event loop; see Observer.
	Observer Observer
	// Obs, when non-nil, receives structured protocol events from every
	// hub (miss lifecycle, delegation lifecycle, speculative-update
	// outcomes). Attach it with AttachObs so the interconnect emits into
	// the same sink; a nil Obs costs one pointer check per potential
	// event.
	Obs *obs.Sink
	// NodeStats holds each node's counters; Aggregate folds them.
	NodeStats []*stats.Stats
	// NetStats accumulates interconnect traffic (shared by all sends).
	NetStats *stats.Stats
	glob     *global
}

// NewSystem builds a machine from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Network.Nodes = cfg.Nodes
	eng := sim.NewEngine()
	netStats := stats.New()
	sys := &System{
		Cfg:       cfg,
		Eng:       eng,
		Net:       network.New(eng, cfg.Network, netStats),
		Mem:       mem.New(mem.FirstTouch, cfg.Nodes, 4096),
		NetStats:  netStats,
		glob:      newGlobal(cfg.CheckInvariants),
		NodeStats: make([]*stats.Stats, cfg.Nodes),
	}
	sys.Hubs = make([]*Hub, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		sys.NodeStats[i] = stats.New()
		sys.Hubs[i] = newHub(sys, msg.NodeID(i), sys.NodeStats[i])
	}
	return sys, nil
}

// MustNewSystem is NewSystem for callers with static configurations.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AttachObs points both the hubs and the interconnect at sink. If a sink
// was already attached and had a Tap (e.g. a trace recorder riding it),
// the old tap is chained onto the new sink so no consumer goes deaf.
func (s *System) AttachObs(sink *obs.Sink) {
	if prev := s.Obs; prev != nil && prev.Tap != nil && prev != sink {
		pt := prev.Tap
		if sink.Tap == nil {
			sink.Tap = pt
		} else {
			nt := sink.Tap
			sink.Tap = func(e obs.Event) { nt(e); pt(e) }
		}
	}
	s.Obs = sink
	s.Net.Obs = sink
}

// Access issues one memory operation on node n's hub.
func (s *System) Access(n msg.NodeID, addr msg.Addr, write bool, done func()) {
	s.Hubs[n].Access(addr, write, done)
}

// Run drains the event queue and returns the finishing time.
func (s *System) Run() sim.Time { return s.Eng.Run() }

// RunGuarded drains the event queue under the configured watchdog budget
// (Config.WatchdogSteps; 0 = unlimited), notifying the Observer around the
// loop. On a runaway it returns the wrapped *sim.RunawayError with the
// pending-event context intact.
func (s *System) RunGuarded() (sim.Time, error) {
	if s.Observer.Start != nil {
		s.Observer.Start(s)
	}
	start := time.Now()
	before := s.Eng.Steps()
	t, err := s.Eng.RunGuarded(s.Cfg.WatchdogSteps)
	if s.Observer.Done != nil {
		s.Observer.Done(s, s.Eng.Steps()-before, time.Since(start))
	}
	return t, err
}

// LatestVersion exposes the data-version oracle (tests and the workload
// validators use it to confirm consumers saw produced values).
func (s *System) LatestVersion(addr msg.Addr) uint64 {
	return s.glob.latestVersion(s.Hubs[0].line(addr))
}

// Aggregate folds per-node and interconnect statistics into one report.
// ExecCycles is set to the engine's current time.
func (s *System) Aggregate() *stats.Stats {
	agg := stats.New()
	for _, st := range s.NodeStats {
		agg.Add(st)
	}
	agg.Add(s.NetStats)
	agg.ExecCycles = uint64(s.Eng.Now())
	return agg
}
