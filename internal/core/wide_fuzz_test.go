package core

import (
	"math/rand"
	"testing"

	"pccsim/internal/msg"
)

// TestWideFuzz sweeps many seeds of random traffic through a system with
// every paper mechanism enabled and every runtime invariant check on: the
// simulator-side analogue of the paper's exhaustive Murphi verification.
func TestWideFuzz(t *testing.T) {
	last := int64(160)
	if testing.Short() {
		last = 110
	}
	for seed := int64(100); seed < last; seed++ {
		cfg := testConfig().WithMechanisms(2*1024, 8, true)
		cfg.Nodes = 6
		cfg.L2Bytes = 4 * 128
		cfg.L2Ways = 2
		cfg.L1Bytes = 128
		cfg.L1Ways = 2
		cfg.L1LineBytes = 32
		sys := newTestSystem(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		n := 0
		for step := 0; step < 2500; step++ {
			node := msg.NodeID(rng.Intn(cfg.Nodes))
			addr := msg.Addr(rng.Intn(48)) * 128
			write := rng.Intn(3) == 0
			sys.Access(node, addr, write, func() { n++ })
			if rng.Intn(3) == 0 {
				sys.Run()
			}
		}
		sys.Run()
		if n != 2500 {
			t.Fatalf("seed %d: %d/2500 completed", seed, n)
		}
		sys.CheckAll()
		if err := sys.QuiesceCheck(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
