package core

import (
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/stats"
)

// Directed tests for protocol corner cases: structure exhaustion, hint
// thrash, detector pressure, and the home-is-producer update path.

// When every way of the RAC set a new delegation maps to is already pinned,
// the delegation cannot be hosted: the write completes and the line is
// immediately undelegated (§2.3.3 reason 2). The system must stay coherent.
func TestRACPinExhaustionUndelegates(t *testing.T) {
	cfg := testConfig().WithMechanisms(4*128, 32, true) // single-set, 4-way RAC
	sys := newTestSystem(t, cfg)
	// Delegate five distinct lines to producer 0 (homes elsewhere); all
	// five map to the one RAC set, so the fifth pin must fail.
	for i := 0; i < 5; i++ {
		addr := msg.Addr(0x10000 * (i + 1))
		home := msg.NodeID(3 + i%4)
		pcRounds(t, sys, addr, home, 0, []msg.NodeID{1, 2}, 5)
	}
	st := sys.Aggregate()
	if st.Delegations < 5 {
		t.Fatalf("expected 5 delegations, got %d", st.Delegations)
	}
	if st.Undelegations[stats.UndelFlush] == 0 {
		t.Fatal("no flush undelegation despite pin exhaustion")
	}
	if got := sys.Hubs[0].rc.PinnedCount(); got > 4 {
		t.Fatalf("%d pinned entries in a 4-way set", got)
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}

// A tiny consumer table thrashes hints; consumers must still reach
// delegated lines through the home's forwarding path.
func TestConsumerTableThrash(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	cfg.ConsumerEntries = 4 // one set, constant eviction
	sys := newTestSystem(t, cfg)
	for i := 0; i < 6; i++ {
		addr := msg.Addr(0x20000 * (i + 1))
		pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1, 2, 4}, 5)
	}
	// Fresh consumers (not in any update set) must route through the
	// home, which forwards and hints; the tiny table then evicts most
	// hints, and later reads repeat the forward path.
	for i := 0; i < 6; i++ {
		addr := msg.Addr(0x20000 * (i + 1))
		for _, c := range []msg.NodeID{5, 6, 7, 8} {
			access(t, sys, c, addr, false)
		}
	}
	st := sys.Aggregate()
	if st.Delegations == 0 {
		t.Fatal("no delegations")
	}
	if st.MsgCount[msg.NewHomeHint] == 0 {
		t.Fatal("no hints issued despite forwarding")
	}
	if got := sys.Hubs[5].cons.Count(); got > 4 {
		t.Fatalf("consumer table holds %d entries, cap 4", got)
	}
	sys.CheckAll()
}

// A starved directory cache loses detector history between rounds, so
// fewer lines are ever marked producer-consumer than with the 8K-entry
// cache; correctness is unaffected.
func TestDirCachePressureLimitsDetection(t *testing.T) {
	run := func(entries int) *stats.Stats {
		cfg := testConfig().WithMechanisms(32*1024, 32, true)
		cfg.DirCacheEntries = entries
		sys := newTestSystem(t, cfg)
		// Interleave rounds over many lines homed at node 3 so their
		// detector entries compete for the same directory cache.
		lines := make([]msg.Addr, 24)
		for i := range lines {
			lines[i] = msg.Addr(0x100000 + i*128)
			access(t, sys, 3, lines[i], false)
		}
		for round := 0; round < 5; round++ {
			for _, a := range lines {
				access(t, sys, 0, a, true)
			}
			for _, a := range lines {
				access(t, sys, 1, a, false)
			}
		}
		sys.CheckAll()
		return sys.Aggregate()
	}
	big := run(8192)
	small := run(4) // 1 set of 4 in the pressure range
	if big.PCLinesMarked == 0 {
		t.Fatal("big dircache detected nothing")
	}
	if small.PCLinesMarked >= big.PCLinesMarked {
		t.Fatalf("tiny dircache detected as much as the big one: %d >= %d",
			small.PCLinesMarked, big.PCLinesMarked)
	}
	if small.DirCacheEvicts == 0 {
		t.Fatal("tiny dircache recorded no evictions")
	}
}

// Two simultaneous upgrades: the loser's copy is invalidated, its upgrade
// NACKed, and the retry must fall back to a full GetExcl. Both writes
// complete and versions are exact.
func TestUpgradeRaceFallsBackToGetExcl(t *testing.T) {
	sys := newTestSystem(t, testConfig())
	addr := msg.Addr(0x30000)
	access(t, sys, 0, addr, false) // home = 0
	access(t, sys, 1, addr, false)
	access(t, sys, 2, addr, false) // both hold Shared copies
	done := 0
	sys.Access(1, addr, true, func() { done++ })
	sys.Access(2, addr, true, func() { done++ })
	sys.Run()
	if done != 2 {
		t.Fatalf("%d of 2 racing upgrades completed", done)
	}
	if v := sys.LatestVersion(addr); v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}
	st := sys.Aggregate()
	if st.Retries == 0 {
		t.Fatal("no retry recorded for the losing upgrade")
	}
	sys.CheckAll()
}

// With updates enabled but the intervention disabled (infinite delay), a
// consumer read finds the producer still exclusive and forces an immediate
// downgrade; data must be current.
func TestInfiniteDelayConsumerForcesDowngrade(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	cfg.InterventionDelay = NoIntervention
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0x40000)
	pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1, 2}, 6)
	st := sys.Aggregate()
	if st.UpdatesSent != 0 {
		t.Fatalf("updates sent with infinite delay: %d", st.UpdatesSent)
	}
	if st.Delegations == 0 {
		t.Fatal("no delegation")
	}
	// The consumers' observe() checks inside pcRounds already assert
	// they saw current data; verify the final version too.
	if v := sys.LatestVersion(addr); v != 6 {
		t.Fatalf("version = %d, want 6", v)
	}
}

// When the producer IS the home node, no delegation is needed: the home
// directory entry itself runs the delayed-intervention/update flow (§2.4.2
// describes exactly this ownerID + old-sharing-vector mechanism on the
// directory entry).
func TestHomeProducerUpdatesWithoutDelegation(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0x50000)
	// Producer 0 first-touches: home == producer.
	for round := 0; round < 6; round++ {
		access(t, sys, 0, addr, true)
		access(t, sys, 1, addr, false)
		access(t, sys, 2, addr, false)
	}
	st := sys.Aggregate()
	if st.Delegations != 0 {
		t.Fatalf("home-producer line was delegated %d times", st.Delegations)
	}
	if st.UpdatesSent == 0 {
		t.Fatal("home-producer path sent no updates")
	}
	if st.Misses[stats.MissLocalRAC] == 0 {
		t.Fatal("consumers never hit pushed updates")
	}
	sys.CheckAll()
}

// A delegated line evicted from the producer's L2 lives on in the pinned
// RAC entry; consumer reads are served from it and producer rewrites
// re-acquire it silently.
func TestDelegatedLineSurvivesL2Eviction(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	cfg.L2Bytes = 2 * 128 // two-line L2 forces eviction
	cfg.L2Ways = 1
	cfg.L1Bytes = 64
	cfg.L1Ways = 1
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0x60000)
	pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1}, 5)
	if sys.Hubs[0].prod.Peek(addr) == nil {
		t.Fatal("line not delegated")
	}
	// Producer touches conflicting lines, evicting the delegated one.
	access(t, sys, 0, addr+0x100000, true)
	access(t, sys, 0, addr+0x200000, true)
	if l := sys.Hubs[0].l2.Lookup(addr); l != nil {
		t.Fatal("delegated line still in the tiny L2; test geometry wrong")
	}
	rl := sys.Hubs[0].rc.Lookup(addr)
	if rl == nil || !rl.Pinned {
		t.Fatal("pinned RAC entry lost after L2 eviction")
	}
	// Consumer read served by the producer from the RAC master copy.
	access(t, sys, 1, addr, false)
	// Producer rewrite silently re-acquires through the delegated flow.
	access(t, sys, 0, addr, true)
	if v := sys.LatestVersion(addr); v != 6 {
		t.Fatalf("version = %d, want 6", v)
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}

// The em3d "reload flurry" under updates: after the producer's write, all
// fifteen consumers reload; with updates most reloads hit their RACs and
// NACK traffic drops relative to the baseline flurry.
func TestReloadFlurryWithUpdates(t *testing.T) {
	run := func(mech bool) *stats.Stats {
		cfg := testConfig()
		if mech {
			cfg = cfg.WithMechanisms(32*1024, 32, true)
		}
		sys := newTestSystem(t, cfg)
		addr := msg.Addr(0x70000)
		access(t, sys, 3, addr, false)
		// Establish the pattern (and the consumer set).
		for round := 0; round < 4; round++ {
			access(t, sys, 0, addr, true)
			done := 0
			for n := msg.NodeID(1); n < 16; n++ {
				if n == 3 {
					continue
				}
				sys.Access(n, addr, false, func() { done++ })
			}
			sys.Run()
			if done != 14 {
				t.Fatalf("flurry incomplete: %d", done)
			}
		}
		sys.CheckAll()
		return sys.Aggregate()
	}
	base := run(false)
	mech := run(true)
	if mech.Misses[stats.MissLocalRAC] == 0 {
		t.Fatal("updates never absorbed the flurry")
	}
	if mech.RemoteMisses() >= base.RemoteMisses() {
		t.Fatalf("flurry remote misses did not drop: %d >= %d",
			mech.RemoteMisses(), base.RemoteMisses())
	}
}

// Version correctness across an undelegation: a consumer that last read
// via an update must still observe newer versions after the line moves
// back home and a third node writes.
func TestVersionsAcrossUndelegation(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0x80000)
	pcRounds(t, sys, addr, 3, 0, []msg.NodeID{1, 2}, 6)
	access(t, sys, 9, addr, true) // forces undelegation
	access(t, sys, 1, addr, false)
	access(t, sys, 2, addr, false)
	access(t, sys, 0, addr, false) // the old producer reads the new data
	if v := sys.LatestVersion(addr); v != 7 {
		t.Fatalf("version = %d, want 7", v)
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}
