package core

import (
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/stats"
)

// Tests for the dynamic-self-invalidation baseline (related work the paper
// compares against: eager downgrades convert 3-hop reads to 2-hop home
// hits, but never to local hits).

func selfInvalConfig() Config {
	cfg := testConfig()
	cfg.SelfInvalidate = true
	return cfg
}

func TestSelfInvalidateConverts3HopTo2Hop(t *testing.T) {
	runCfg := func(cfg Config) *stats.Stats {
		sys := newTestSystem(t, cfg)
		addr := msg.Addr(0x8000)
		access(t, sys, 3, addr, false) // home = 3, producer = 0: 3-hop shape
		// Rounds chained through simulated time: consumers read 2000
		// cycles after each write (enough for the 50-cycle downgrade to
		// land, off the critical path), next write 3000 later.
		const rounds = 10
		finished := false
		var round func(r int)
		round = func(r int) {
			if r == rounds {
				finished = true
				return
			}
			sys.Access(0, addr, true, func() {
				sys.Eng.After(2000, func() {
					pending := 2
					rdone := func() {
						pending--
						if pending == 0 {
							sys.Eng.After(3000, func() { round(r + 1) })
						}
					}
					sys.Access(1, addr, false, rdone)
					sys.Access(2, addr, false, rdone)
				})
			})
		}
		round(0)
		sys.Run()
		if !finished {
			t.Fatal("round chain incomplete")
		}
		sys.CheckAll()
		return sys.Aggregate()
	}
	base := runCfg(testConfig())
	dsi := runCfg(selfInvalConfig())

	if dsi.SelfDowngrades == 0 {
		t.Fatal("no eager downgrades recorded")
	}
	if dsi.Misses[stats.MissRemote3Hop] >= base.Misses[stats.MissRemote3Hop] {
		t.Fatalf("self-invalidation did not cut 3-hop misses: %d >= %d",
			dsi.Misses[stats.MissRemote3Hop], base.Misses[stats.MissRemote3Hop])
	}
	// The defining contrast with the paper's updates: consumer reads
	// stay remote (2-hop), never local.
	if dsi.Misses[stats.MissLocalRAC] != 0 {
		t.Fatalf("self-invalidation produced local RAC hits: %d", dsi.Misses[stats.MissLocalRAC])
	}
	if dsi.RemoteMisses() < base.RemoteMisses() {
		// Remote-miss *count* stays (they get cheaper, not fewer);
		// allow equality but not reduction.
		t.Fatalf("self-invalidation reduced remote-miss count: %d < %d",
			dsi.RemoteMisses(), base.RemoteMisses())
	}
	if dsi.ExecCycles >= base.ExecCycles {
		t.Fatalf("self-invalidation not faster: %d >= %d", dsi.ExecCycles, base.ExecCycles)
	}
}

func TestSelfInvalidateExclusiveWithMechanisms(t *testing.T) {
	cfg := DefaultConfig().WithMechanisms(32*1024, 32, true)
	cfg.SelfInvalidate = true
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("self-invalidation combined with delegation accepted")
	}
}

// An eager downgrade crossing a read intervention: the home completes the
// read from the pushed data; no deadlock, data current.
func TestSelfInvalidateCrossingRead(t *testing.T) {
	cfg := selfInvalConfig()
	cfg.InterventionDelay = 400 // wide window for the crossing
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0x9000)
	access(t, sys, 3, addr, false)
	// Establish detection.
	for round := 0; round < 4; round++ {
		access(t, sys, 0, addr, true)
		access(t, sys, 1, addr, false)
	}
	// Producer writes; a consumer read is issued inside the downgrade
	// window so the intervention and the eager writeback cross.
	done := 0
	sys.Access(0, addr, true, func() {
		sys.Eng.After(100, func() {
			sys.Access(1, addr, false, func() { done++ })
		})
	})
	sys.Run()
	if done != 1 {
		t.Fatal("crossing read never completed")
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
	if v := sys.LatestVersion(addr); v != 5 {
		t.Fatalf("version = %d, want 5", v)
	}
}

// An eager downgrade crossing a write transfer: the pending writer is
// granted from the pushed data and the downgraded owner's retained copy is
// invalidated.
func TestSelfInvalidateCrossingWrite(t *testing.T) {
	cfg := selfInvalConfig()
	cfg.InterventionDelay = 400
	sys := newTestSystem(t, cfg)
	addr := msg.Addr(0xa000)
	access(t, sys, 3, addr, false)
	for round := 0; round < 4; round++ {
		access(t, sys, 0, addr, true)
		access(t, sys, 1, addr, false)
	}
	done := 0
	sys.Access(0, addr, true, func() {
		sys.Eng.After(100, func() {
			sys.Access(5, addr, true, func() { done++ })
		})
	})
	sys.Run()
	if done != 1 {
		t.Fatal("crossing write never completed")
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
	if v := sys.LatestVersion(addr); v != 6 {
		t.Fatalf("version = %d, want 6", v)
	}
}

// Random stress under self-invalidation with all invariants on.
func TestSelfInvalidateStress(t *testing.T) {
	cfg := selfInvalConfig()
	cfg.Nodes = 6
	cfg.InterventionDelay = 200
	sys := newTestSystem(t, cfg)
	issued, completed := 0, 0
	for step := 0; step < 3000; step++ {
		n := msg.NodeID(step * 5 % cfg.Nodes)
		addr := msg.Addr(step*11%40) * 128
		write := step%3 == 0
		issued++
		sys.Access(n, addr, write, func() { completed++ })
		if step%4 == 0 {
			sys.Run()
		}
	}
	sys.Run()
	if completed != issued {
		t.Fatalf("%d of %d accesses completed", completed, issued)
	}
	sys.CheckAll()
	if err := sys.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
}
