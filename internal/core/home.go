package core

import (
	"fmt"

	"pccsim/internal/cache"
	"pccsim/internal/directory"
	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/predictor"
	"pccsim/internal/protocol"
	"pccsim/internal/sim"
)

// homeRequest processes a coherence request at the line's home node.
func (h *Hub) homeRequest(req *msg.Message) {
	e := h.dir.Entry(req.Addr)

	// Busy states and update drains NACK everything (§2.3.4, NACK and
	// retry is how all races resolve).
	if e.State.Busy() {
		h.nack(req, false)
		return
	}

	if e.State == directory.Dele {
		h.forwardToDelegated(req, e)
		return
	}

	det := h.dirc.Detector(req.Addr)
	h.st.DirCacheEvicts = h.dirc.Evicts

	switch req.Type {
	case msg.GetShared:
		h.homeRead(req, e, det)
	case msg.GetExcl, msg.Upgrade:
		h.homeWrite(req, e, det)
	default:
		panic(fmt.Sprintf("core: homeRequest got %s", req))
	}
}

// forwardToDelegated relays a request to the delegated home and tells the
// requester where the line now lives (§2.3.2).
func (h *Hub) forwardToDelegated(req *msg.Message, e *directory.Entry) {
	if req.Requester == e.Owner {
		// The producer raced its own delegation: NACK; on retry it
		// will find itself the acting home (§2.3.4).
		h.nack(req, false)
		return
	}
	h.emitAfter(h.cfg.DirLatency, msg.Message{
		Type: req.Type, Src: h.id, Dst: e.Owner, Addr: req.Addr, Requester: req.Requester,
		Txn: req.Txn,
	})
	if req.Requester != h.id {
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.NewHomeHint, Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, Owner: e.Owner,
		})
	}
}

// homeRead handles GetShared at the home.
func (h *Hub) homeRead(req *msg.Message, e *directory.Entry, det *predictor.Detector) {
	switch e.State {
	case directory.Unowned:
		det.OnRead(req.Requester)
		e.State = directory.Shared
		e.Sharers = msg.Vector{}.Set(req.Requester)
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.SharedReply, Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, Version: e.MemVersion, Txn: req.Txn,
		})
	case directory.Shared:
		if h.caps.HybridUpdates && e.UpdatesInFlight > 0 {
			// A hybrid update round is settling: an ack that drops a
			// sharer must not cross a re-read installing a fresh copy
			// (the cleared presence bit would orphan that copy), so
			// reads wait out the round like writes do.
			h.nack(req, false)
			return
		}
		det.OnRead(req.Requester)
		e.Sharers = e.Sharers.Set(req.Requester)
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.SharedReply, Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, Version: e.MemVersion, Txn: req.Txn,
		})
	case directory.Excl:
		if e.Owner == req.Requester {
			// Writeback race: the owner's copy is on its way home.
			h.nack(req, false)
			return
		}
		det.OnRead(req.Requester)
		e.State = directory.BusyShared
		e.Pending = req.Requester
		e.PendingExcl = false
		e.PendingTxn = req.Txn
		h.st.Interventions++
		if o := h.obs; o != nil {
			o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindIntervention, Node: h.id,
				Addr: req.Addr, Arg: uint64(e.Owner), Arg2: 0})
		}
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.Intervention, Src: h.id, Dst: e.Owner, Addr: req.Addr,
			Requester: req.Requester, Txn: req.Txn, GrantTxn: e.OwnerTxn,
		})
	default:
		panic(fmt.Sprintf("core: homeRead in state %s", e.State))
	}
}

// homeWrite handles GetExcl/Upgrade at the home. This is where the
// producer-consumer detector is consulted and delegation triggered (§2.3.1).
func (h *Hub) homeWrite(req *msg.Message, e *directory.Entry, det *predictor.Detector) {
	switch e.State {
	case directory.Unowned:
		if req.Type == msg.Upgrade {
			// The requester's copy must have been invalidated while
			// the upgrade was in flight; make it re-request.
			h.nack(req, false)
			return
		}
		det.OnWrite(req.Requester)
		e.State = directory.Excl
		e.Owner = req.Requester
		e.OwnerID = req.Requester
		e.OwnerTxn = req.Txn
		e.Sharers = msg.Vector{}
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.ExclReply, Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, Version: e.MemVersion, AckCount: 0, Txn: req.Txn,
		})

	case directory.Shared:
		if req.Type == msg.Upgrade && !e.Sharers.Has(req.Requester) {
			h.nack(req, false)
			return
		}
		if e.UpdatesInFlight > 0 {
			// Keep updates ordered behind the next invalidation
			// round: defer all writes until pushes are acknowledged.
			h.nack(req, false)
			return
		}
		if marked := det.OnWrite(req.Requester); marked {
			e.PC = true
			h.st.PCLinesMarked++
			if o := h.obs; o != nil {
				o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindPCDetect, Node: h.id, Addr: req.Addr})
			}
		}
		sharers := e.Sharers.Clear(req.Requester)
		if det.IsProducerConsumer() {
			h.st.RecordConsumers(sharers.Count())
		}

		// The registered protocol decides the shared-write flow. The
		// paper's adaptive protocol returns Delegate under exactly the
		// §2.3.1 rule this FSM hard-wired before the plugin interface
		// (a stable producer-consumer pattern with a remote producer
		// hands the directory to it); mesi/dsi always invalidate; the
		// hybrid protocol pushes updates to stable sharers.
		decision := h.proto.SharedWrite(protocol.WriteView{
			Entry: e, Requester: req.Requester, Home: h.id, Targets: sharers,
			IsPC: det.IsProducerConsumer(), DelegationOn: h.cfg.DelegateEntries > 0,
		})

		if decision == protocol.PushUpdates {
			h.hybridSharedWrite(req, e, sharers)
			return
		}

		// Delegation decision (§2.3.1).
		if decision == protocol.Delegate {
			h.st.Delegations++
			if o := h.obs; o != nil {
				o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindDelegate, Node: h.id,
					Addr: req.Addr, Arg: uint64(req.Requester)})
			}
			e.State = directory.Dele
			e.Owner = req.Requester
			h.invalidateSharers(req.Addr, sharers, req.Requester, req.Txn)
			h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
				Type: msg.Delegate, Src: h.id, Dst: req.Requester, Addr: req.Addr,
				Requester: req.Requester, Version: e.MemVersion,
				AckCount: sharers.Count(), Sharers: sharers, Txn: req.Txn,
			})
			return
		}

		// Normal write-invalidate path. Per §2.4.2 the old sharing
		// vector is preserved (Sharers) and the writer recorded in
		// OwnerID; UpdateSet snapshots the push targets for the
		// home-is-producer update flow.
		e.State = directory.Excl
		e.Owner = req.Requester
		e.OwnerID = req.Requester
		e.OwnerTxn = req.Txn
		e.Sharers = sharers
		e.UpdateSet = sharers
		h.invalidateSharers(req.Addr, sharers, req.Requester, req.Txn)
		reply := h.newMsg()
		*reply = msg.Message{
			Src: h.id, Dst: req.Requester, Addr: req.Addr,
			Requester: req.Requester, AckCount: sharers.Count(), Txn: req.Txn,
			PCHint: h.cfg.SelfInvalidate && det.IsProducerConsumer() && req.Requester != h.id,
		}
		if req.Type == msg.Upgrade {
			reply.Type = msg.UpgradeAck
			h.sendAfter(h.cfg.DirLatency, reply)
		} else {
			reply.Type = msg.ExclReply
			reply.Version = e.MemVersion
			h.sendAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, reply)
		}

	case directory.Excl:
		if req.Type == msg.Upgrade {
			h.nack(req, false)
			return
		}
		if e.Owner == req.Requester {
			h.nack(req, false) // writeback race
			return
		}
		det.OnWrite(req.Requester)
		e.State = directory.BusyExcl
		e.Pending = req.Requester
		e.PendingExcl = true
		e.PendingTxn = req.Txn
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.TransferReq, Src: h.id, Dst: e.Owner, Addr: req.Addr,
			Requester: req.Requester, Txn: req.Txn, GrantTxn: e.OwnerTxn,
		})

	default:
		panic(fmt.Sprintf("core: homeWrite in state %s", e.State))
	}
}

// invalidateSharers sends invalidations on behalf of requester; the acks
// flow directly to the requester.
func (h *Hub) invalidateSharers(addr msg.Addr, sharers msg.Vector, requester msg.NodeID, txn uint64) {
	for vec := sharers; !vec.Empty(); vec = vec.ClearLowest() {
		h.st.Invalidations++
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.Invalidate, Src: h.id, Dst: vec.Lowest(), Addr: addr,
			Requester: requester, Txn: txn,
		})
	}
}

// homeSharedWriteback completes a 3-hop read: the old owner downgraded and
// sent the home fresh data.
func (h *Hub) homeSharedWriteback(m *msg.Message) {
	e := h.dir.Entry(m.Addr)
	if e.State != directory.BusyShared {
		panic(fmt.Sprintf("core: SharedWriteback in state %s for %#x", e.State, uint64(m.Addr)))
	}
	e.MemVersion = m.Version
	e.State = directory.Shared
	// A new read arrived: overwrite the old sharing vector (§2.4.2).
	e.Sharers = msg.Vector{}.Set(m.Src).Set(e.Pending)
	e.Pending = msg.None
}

// homeTransferAck completes a 3-hop ownership transfer. A stale ack — the
// new owner's writeback arrived first and already resolved the transfer —
// is recognized by its transaction number and dropped.
func (h *Hub) homeTransferAck(m *msg.Message) {
	e := h.dir.Entry(m.Addr)
	// Transaction numbers are per-requester counters, so the stale-ack
	// match must be on the (requester, txn) pair.
	if e.State != directory.BusyExcl || e.PendingTxn != m.Txn || e.Pending != m.Requester {
		return
	}
	e.State = directory.Excl
	e.Owner = e.Pending
	e.OwnerID = e.Pending
	e.OwnerTxn = e.PendingTxn
	e.Sharers = msg.Vector{}
	e.Pending = msg.None
}

// homeWriteback retires an owner's eviction, including the races where the
// writeback crosses an in-flight intervention: the home then completes the
// pending request itself from the written-back data.
func (h *Hub) homeWriteback(m *msg.Message) {
	e := h.dir.Entry(m.Addr)
	ack := h.newMsg()
	*ack = msg.Message{Type: msg.WBAck, Src: h.id, Dst: m.Src, Addr: m.Addr, Requester: m.Src}
	switch {
	case e.State == directory.Excl && e.Owner == m.Src:
		if m.Dirty {
			e.MemVersion = m.Version
		}
		e.State = directory.Unowned
		e.Owner = msg.None
		h.sendAfter(h.cfg.DirLatency, ack)

	case e.State == directory.BusyShared && e.Owner == m.Src:
		if m.Dirty {
			e.MemVersion = m.Version
		}
		e.State = directory.Shared
		e.Sharers = msg.Vector{}.Set(e.Pending)
		pending := e.Pending
		e.Pending = msg.None
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.SharedReply, Src: h.id, Dst: pending, Addr: m.Addr,
			Requester: pending, Version: e.MemVersion, Txn: e.PendingTxn,
		})
		h.sendAfter(h.cfg.DirLatency, ack)

	case e.State == directory.BusyExcl && e.Owner == m.Src:
		if m.Dirty {
			e.MemVersion = m.Version
		}
		e.State = directory.Excl
		e.Owner = e.Pending
		e.OwnerID = e.Pending
		e.OwnerTxn = e.PendingTxn
		e.Sharers = msg.Vector{}
		pending := e.Pending
		e.Pending = msg.None
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.ExclReply, Src: h.id, Dst: pending, Addr: m.Addr,
			Requester: pending, Version: e.MemVersion, AckCount: 0, Txn: e.PendingTxn,
		})
		h.sendAfter(h.cfg.DirLatency, ack)

	case e.State == directory.BusyExcl && e.Pending == m.Src:
		// The transfer's new owner evicted before the old owner's
		// TransferAck reached us: ownership came and went. Fold the
		// data home; the stale TransferAck is dropped by its txn.
		if m.Dirty {
			e.MemVersion = m.Version
		}
		e.State = directory.Unowned
		e.Owner = msg.None
		e.OwnerID = msg.None
		e.Pending = msg.None
		h.sendAfter(h.cfg.DirLatency, ack)

	default:
		panic(fmt.Sprintf("core: Writeback from %d in state %s owner=%d for %#x",
			m.Src, e.State, e.Owner, uint64(m.Addr)))
	}
}

// homeEagerWriteback retires a voluntary downgrade under dynamic
// self-invalidation: the owner keeps a Shared copy and the home becomes
// the fresh data source. Stale eager writebacks (an older ownership epoch)
// are dropped; ones that cross an in-flight intervention or transfer
// complete the pending request from the pushed data.
func (h *Hub) homeEagerWriteback(m *msg.Message) {
	e := h.dir.Entry(m.Addr)
	switch {
	case e.State == directory.Excl && e.Owner == m.Src && e.OwnerTxn == m.GrantTxn:
		e.MemVersion = m.Version
		e.State = directory.Shared
		e.Sharers = msg.Vector{}.Set(m.Src)

	case e.State == directory.BusyShared && e.Owner == m.Src && e.OwnerTxn == m.GrantTxn:
		// The downgrade crossed our intervention (which the owner will
		// drop): complete the pending read from the pushed data.
		e.MemVersion = m.Version
		e.State = directory.Shared
		e.Sharers = msg.Vector{}.Set(m.Src).Set(e.Pending)
		pending := e.Pending
		e.Pending = msg.None
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.SharedReply, Src: h.id, Dst: pending, Addr: m.Addr,
			Requester: pending, Version: e.MemVersion, Txn: e.PendingTxn,
		})

	case e.State == directory.BusyExcl && e.Owner == m.Src && e.OwnerTxn == m.GrantTxn:
		// Crossed a transfer: grant the pending writer from the pushed
		// data, invalidating the downgraded owner's retained copy.
		e.MemVersion = m.Version
		pending := e.Pending
		e.State = directory.Excl
		e.Owner = pending
		e.OwnerID = pending
		e.OwnerTxn = e.PendingTxn
		e.Sharers = msg.Vector{}
		e.Pending = msg.None
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.Invalidate, Src: h.id, Dst: m.Src, Addr: m.Addr,
			Requester: pending, Txn: e.PendingTxn,
		})
		h.st.Invalidations++
		h.emitAfter(h.cfg.DirLatency+h.cfg.DRAMLatency, msg.Message{
			Type: msg.ExclReply, Src: h.id, Dst: pending, Addr: m.Addr,
			Requester: pending, Version: e.MemVersion, AckCount: 1, Txn: e.PendingTxn,
		})

	default:
		// Stale epoch (the line moved on): drop.
	}
}

// homeUndelegate restores directory control to the home (§2.3.3) and, if
// the undelegation was triggered by another node's write, handles that
// request immediately.
func (h *Hub) homeUndelegate(m *msg.Message) {
	e := h.dir.Entry(m.Addr)
	if e.State != directory.Dele || e.Owner != m.Src {
		panic(fmt.Sprintf("core: Undelegate from %d in state %s owner=%d", m.Src, e.State, e.Owner))
	}
	if o := h.obs; o != nil {
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUndelegateCommit, Node: h.id,
			Addr: m.Addr, Arg: uint64(m.Src)})
	}
	e.MemVersion = m.Version
	e.Sharers = m.Sharers
	e.Owner = msg.None
	e.OwnerID = msg.None
	e.UpdatePending = false
	e.UpdatesInFlight = 0
	// While the line was delegated the home saw none of its traffic, so
	// the directory-cache detector entry has aged out of its history:
	// the producer-consumer pattern must be re-established before the
	// line can be delegated again. This is what makes an undersized
	// delegate cache expensive (Figure 11).
	if h.dirc.Resident(m.Addr) {
		h.dirc.Detector(m.Addr).Reset()
	}
	if m.Sharers.Empty() {
		e.State = directory.Unowned
	} else {
		e.State = directory.Shared
	}
	h.emitAfter(h.cfg.DirLatency, msg.Message{
		Type: msg.UndelegateAck, Src: h.id, Dst: m.Src, Addr: m.Addr, Requester: m.Src,
	})
	if m.Requester != msg.None && m.Fwd != 0 {
		fwd := h.newMsg()
		*fwd = msg.Message{Type: m.Fwd, Src: h.id, Dst: h.id, Addr: m.Addr,
			Requester: m.Requester, Txn: m.Txn}
		h.eng.AfterMsg(h.cfg.DirLatency, h, opHomeReq, fwd)
	}
}

// armHomeIntervention starts the delayed intervention for a line whose
// producer is the home node itself: §2.4 with the home directory entry
// playing the producer-table role and home memory the surrogate RAC.
func (h *Hub) armHomeIntervention(addr msg.Addr) {
	e := h.dir.Entry(addr)
	if !e.PC || e.UpdateSet.Clear(h.id).Empty() {
		return
	}
	e.WriteSeq++
	e.UpdatePending = true
	seq := e.WriteSeq
	h.eng.After(h.delayFor(e), func() { h.fireIntervention(addr, e, seq, false) })
}

// fireIntervention is the delayed-intervention timer body, shared by the
// home-producer and delegated-producer flows. It downgrades the producer's
// still-exclusive copy, lands the data in the surrogate memory (home memory
// or pinned RAC entry), and pushes updates to the last consumer set.
func (h *Hub) fireIntervention(addr msg.Addr, e *directory.Entry, seq uint64, delegated bool) {
	if !e.UpdatePending || e.WriteSeq != seq {
		return // superseded by a newer write or an undelegation
	}
	if h.mshr(addr) != nil {
		// The producer's own next transaction on the line is already in
		// flight (e.g. an upgrade mid-invalidation has flipped the entry
		// to EXCL while the L2 copy is still SHARED). Downgrading now
		// would clobber that transaction's directory state and push a
		// stale version; its completion re-arms the timer instead.
		return
	}
	e.UpdatePending = false
	e.DowngradeAt = uint64(h.eng.Now())

	var v uint64
	switch {
	case e.State == directory.Excl && e.Owner == h.id:
		h.st.Interventions++
		if o := h.obs; o != nil {
			o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindIntervention, Node: h.id,
				Addr: addr, Arg: uint64(h.id), Arg2: 1})
		}
		if l2l := h.l2.Lookup(addr); l2l != nil && l2l.State == cache.Excl {
			l2l.State = cache.Shared
			v = l2l.Version
		} else if delegated {
			rl := h.rc.Lookup(addr)
			if rl == nil {
				return // lost the copy; undelegation is on its way
			}
			v = rl.Version
		} else {
			v = e.MemVersion // evicted: memory already has it
		}
		if delegated {
			if rl, rv, ok := h.rc.Insert(addr, cache.Shared); ok {
				rl.Version = v
				rl.Dirty = true
				h.handleRACVictim(rv)
			}
		} else {
			e.MemVersion = v
		}
		e.State = directory.Shared
		targets := e.UpdateSet.Clear(h.id)
		e.Sharers = targets.Set(h.id)
		h.pushUpdates(addr, e, targets, v)

	case e.State == directory.Shared:
		// An early consumer read already forced the downgrade; push
		// to the consumers that have not re-read yet.
		v = h.producerVersion(addr, e, delegated)
		targets := e.UpdateSet.Clear(h.id).AndNot(e.Sharers)
		e.Sharers = e.Sharers.Or(targets)
		h.pushUpdates(addr, e, targets, v)
	}
}

// producerVersion finds the current data version at the producer.
func (h *Hub) producerVersion(addr msg.Addr, e *directory.Entry, delegated bool) uint64 {
	if l2l := h.l2.Lookup(addr); l2l != nil {
		return l2l.Version
	}
	if delegated {
		if rl := h.rc.Lookup(addr); rl != nil {
			return rl.Version
		}
	}
	return e.MemVersion
}

// delayFor resolves the intervention delay for a line: the configured
// fixed interval, or — with the §5 adaptive extension — the line's learned
// hint.
func (h *Hub) delayFor(e *directory.Entry) sim.Time {
	if h.cfg.AdaptiveDelay && e.DelayHint > 0 {
		return sim.Time(e.DelayHint)
	}
	return h.cfg.interventionDelay()
}

// Adaptation bounds for the learned per-line delay.
const (
	minAdaptiveDelay = 5
	maxAdaptiveDelay = 50_000
	// rewriteWindow: a producer write this soon after a downgrade means
	// the intervention interrupted an ongoing burst.
	rewriteWindow = 400
)

// adaptDelayDown halves a line's delay hint: a consumer read arrived while
// the producer still held the line exclusively, so updates are too late.
func (h *Hub) adaptDelayDown(e *directory.Entry) {
	if !h.cfg.AdaptiveDelay {
		return
	}
	cur := e.DelayHint
	if cur == 0 {
		cur = uint64(h.cfg.interventionDelay())
	}
	cur /= 2
	if cur < minAdaptiveDelay {
		cur = minAdaptiveDelay
	}
	e.DelayHint = cur
}

// adaptDelayUpIfRewrite doubles a line's delay hint when the producer
// rewrites it immediately after a downgrade: the fixed delay cut a write
// burst short and caused an avoidable ownership round trip.
func (h *Hub) adaptDelayUpIfRewrite(e *directory.Entry) {
	if !h.cfg.AdaptiveDelay || e.DowngradeAt == 0 {
		return
	}
	if uint64(h.eng.Now())-e.DowngradeAt > rewriteWindow {
		return
	}
	cur := e.DelayHint
	if cur == 0 {
		cur = uint64(h.cfg.interventionDelay())
	}
	cur *= 2
	if cur > maxAdaptiveDelay {
		cur = maxAdaptiveDelay
	}
	e.DelayHint = cur
}

// hybridSharedWrite commits a shared write at the home and pushes the
// fresh data to the current sharers instead of invalidating them (the
// protocol.PushUpdates decision — hybrid update/invalidate). The line
// stays Shared with home memory as the single ordering point: the
// writer's store commits here on its behalf, each sharer gets an
// UpdateData push and acknowledges to the home whether it kept its copy,
// and the last ack grants the writer a clean Shared copy of the new
// version. Until the round drains, both reads and writes to the line
// NACK (see homeRead/homeWrite), which is what makes clearing a
// dropped sharer's presence bit sound under message reordering.
func (h *Hub) hybridSharedWrite(req *msg.Message, e *directory.Entry, targets msg.Vector) {
	// In the Shared state home memory holds the latest version, so the
	// oracle sees a legal store by the requester.
	v := h.gl.write(req.Requester, req.Addr, e.MemVersion)
	e.MemVersion = v
	e.Sharers = targets.Set(req.Requester)
	e.Pending = req.Requester
	e.PendingExcl = false
	e.PendingTxn = req.Txn
	e.UpdatesInFlight = targets.Count()
	for vec := targets; !vec.Empty(); vec = vec.ClearLowest() {
		c := vec.Lowest()
		h.st.UpdatesSent++
		if o := h.obs; o != nil {
			o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUpdatePush, Node: h.id,
				Addr: req.Addr, Arg: uint64(c), Arg2: v})
		}
		h.emitAfter(h.cfg.DirLatency, msg.Message{
			Type: msg.UpdateData, Src: h.id, Dst: c, Addr: req.Addr,
			Requester: req.Requester, Version: v, Txn: req.Txn,
		})
	}
}

// homeUpdateAck settles one sharer's response to a hybrid update round.
// Sharers that dropped their copy leave the sharing vector; the last ack
// grants the waiting writer.
func (h *Hub) homeUpdateAck(m *msg.Message) {
	e := h.dir.Entry(m.Addr)
	if e.State != directory.Shared || e.UpdatesInFlight == 0 || e.PendingTxn != m.Txn {
		return // not a round this entry is running
	}
	if !m.Kept {
		e.Sharers = e.Sharers.Clear(m.Src)
	}
	e.UpdatesInFlight--
	if e.UpdatesInFlight > 0 {
		return
	}
	writer := e.Pending
	e.Pending = msg.None
	h.emitAfter(h.cfg.DirLatency, msg.Message{
		Type: msg.UpdateGrant, Src: h.id, Dst: writer, Addr: m.Addr,
		Requester: writer, Version: e.MemVersion, Txn: e.PendingTxn,
	})
}

// pushUpdates sends speculative updates to the target set.
func (h *Hub) pushUpdates(addr msg.Addr, e *directory.Entry, targets msg.Vector, v uint64) {
	for vec := targets; !vec.Empty(); vec = vec.ClearLowest() {
		c := vec.Lowest()
		h.st.UpdatesSent++
		e.UpdatesInFlight++
		if o := h.obs; o != nil {
			o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUpdatePush, Node: h.id,
				Addr: addr, Arg: uint64(c), Arg2: v})
		}
		h.emit(msg.Message{
			Type: msg.Update, Src: h.id, Dst: c, Addr: addr, Requester: c, Version: v,
		})
	}
}
