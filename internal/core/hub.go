package core

import (
	"fmt"

	"pccsim/internal/addrtab"
	"pccsim/internal/cache"
	"pccsim/internal/delegate"
	"pccsim/internal/directory"
	"pccsim/internal/mem"
	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/obs"
	"pccsim/internal/protocol"
	"pccsim/internal/rac"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Hub is one node's coherence engine: the processor-side cache controller
// (L1/L2/RAC, MSHRs) and the directory controller for lines homed here,
// extended with the delegate cache and the speculative-update machinery.
type Hub struct {
	id  msg.NodeID
	sys *System
	cfg *Config
	eng *sim.Engine
	net *network.Network
	mm  *mem.Memory
	st  *stats.Stats
	gl  *global
	// proto/caps are the machine's resolved coherence protocol and its
	// capabilities, copied here so home-FSM decision points dispatch
	// without an indirection through sys.
	proto protocol.Protocol
	caps  protocol.Capabilities
	// obs receives this hub's protocol events: the system sink when
	// single-engine, the hub's shard staging buffer when sharded, nil
	// when observability is off (AttachObs wires it either way).
	obs *obs.Sink

	l1   *cache.Cache
	l2   *cache.Cache
	rc   *rac.RAC // nil when the RAC is disabled
	dir  *directory.Directory
	dirc *directory.DirCache
	prod *delegate.ProducerTable // nil when delegation is disabled
	cons *delegate.ConsumerTable // nil when delegation is disabled

	// mshrs tracks outstanding L2-miss transactions in an open-addressed
	// line-indexed table (one lookup per delivered message — the hot
	// path PR 2 moved off map[msg.Addr]).
	mshrs  addrtab.Table[*mshr]
	txnSeq uint64
}

// Engine event opcodes for the hub's closure-free schedulers (see
// HandleMsgEvent). The delayed-send and delivery paths carry every
// protocol hop, so they ride in typed events instead of closures.
const (
	opDispatch uint8 = iota // deliver a message to the protocol handlers
	opSend                  // delayed send (directory occupancy, DRAM)
	opHomeReq               // re-inject a request at the home directory
)

// HandleMsgEvent is the sim.MsgHandler entry point for the hub's typed
// events.
func (h *Hub) HandleMsgEvent(op uint8, m *msg.Message) {
	switch op {
	case opDispatch:
		h.dispatch(m)
	case opSend:
		h.send(m)
	case opHomeReq:
		h.homeRequest(m)
		h.eng.FreeMsg(m)
	}
}

// newMsg allocates a message from the engine's free list. Every message a
// hub sends is returned to the pool by the receiving hub's dispatch once
// the protocol handlers are done with it.
func (h *Hub) newMsg() *msg.Message { return h.eng.NewMsg() }

// mshr returns the outstanding transaction for line, or nil.
func (h *Hub) mshr(line msg.Addr) *mshr {
	m, _ := h.mshrs.Get(uint64(line))
	return m
}

// mshr tracks one outstanding L2-miss transaction.
type mshr struct {
	addr     msg.Addr
	txn      uint64 // current attempt's transaction number
	wantExcl bool
	upgrade  bool   // current attempt is an Upgrade (have a Shared copy)
	upgVer   uint64 // version of the Shared copy at upgrade issue time
	done     func()

	// updateWrite marks a write completed by a hybrid UpdateGrant: the
	// store committed at the home, so the fill is a clean Shared copy
	// and the local store/ownership steps are skipped.
	updateWrite bool

	dataReady  bool
	version    uint64
	fillState  cache.State
	acksNeeded int // -1: no ack count received yet
	acksGot    int

	// Classification of the eventual miss (see stats.MissClass).
	homeRemote     bool
	ownerForwarded bool
	viaRAC         bool
	invalsRemote   bool

	// invalidated is set when an Invalidate arrives while this read is
	// pending: the fill satisfies the waiting load once but must not be
	// cached (the copy is already stale under the home's serialization).
	invalidated bool

	// target is where the current attempt's request was sent (the home,
	// the delegated home, or this node); the miss classification counts
	// network legs from it.
	target msg.NodeID

	// deferred holds an Intervention or TransferReq that arrived while
	// our own exclusive fill was still in flight; it is serviced right
	// after the fill completes (the home is busy until then).
	deferred *msg.Message

	// pcHint marks a grant for a detected producer-consumer line; under
	// dynamic self-invalidation the owner arms an eager downgrade.
	pcHint bool

	// undelegateOnDone defers an undelegation that could not be hosted
	// (the RAC set for the line is fully pinned) until the write that
	// triggered the delegation completes.
	undelegateOnDone bool

	waiters []func()
}

// class counts the network legs on the transaction's critical path:
// request to the (delegated) home, a forward to a third-party owner, and
// the response. Local writes that only needed remote invalidations are
// 2-hop (invalidation out, acknowledgement back).
func (m *mshr) class() stats.MissClass {
	switch {
	case m.viaRAC:
		return stats.MissLocalRAC
	case m.ownerForwarded && m.homeRemote:
		return stats.MissRemote3Hop
	case m.ownerForwarded || m.homeRemote || m.invalsRemote:
		return stats.MissRemote2Hop
	default:
		return stats.MissLocalHome
	}
}

func newHub(sys *System, id msg.NodeID, st *stats.Stats) *Hub {
	cfg := &sys.Cfg
	h := &Hub{
		id:    id,
		sys:   sys,
		cfg:   cfg,
		eng:   sys.EngFor(id),
		net:   sys.Net,
		mm:    sys.Mem,
		st:    st,
		gl:    sys.glob,
		proto: sys.proto,
		caps:  sys.caps,
		l1:    cache.New(cfg.L1Bytes, cfg.L1Ways, cfg.L1LineBytes),
		l2:    cache.New(cfg.L2Bytes, cfg.L2Ways, cfg.L2LineBytes),
		dir:   directory.New(),
		dirc:  directory.NewDirCache(cfg.DirCacheEntries, 4),
	}
	if cfg.RACBytes > 0 {
		h.rc = rac.New(cfg.RACBytes, cfg.RACWays, cfg.L2LineBytes)
	}
	if cfg.DelegateEntries > 0 {
		h.prod = delegate.NewProducerTable(cfg.DelegateEntries)
		h.cons = delegate.NewConsumerTable(cfg.consumerEntries())
	}
	if cfg.DetectorWriters == 2 {
		h.dirc.SetPairMode(true)
	}
	sys.Net.Register(id, h.dispatch)
	return h
}

// ID returns the node identifier.
func (h *Hub) ID() msg.NodeID { return h.id }

// Outstanding reports the number of in-flight L2 miss transactions.
func (h *Hub) Outstanding() int { return h.mshrs.Len() }

// send routes a message; node-to-self transfers use the hub-internal
// crossbar and are not network traffic.
func (h *Hub) send(m *msg.Message) {
	if m.Dst == h.id {
		h.eng.AfterMsg(h.cfg.Network.LocalLatency, h, opDispatch, m)
		return
	}
	h.net.Send(m)
}

// sendAfter delays a send (directory occupancy, DRAM access).
func (h *Hub) sendAfter(d sim.Time, m *msg.Message) {
	h.eng.AfterMsg(d, h, opSend, m)
}

// emit sends a pooled copy of tmpl immediately. The template stays on the
// caller's stack; the wire copy comes from the engine's free list.
func (h *Hub) emit(tmpl msg.Message) {
	m := h.newMsg()
	*m = tmpl
	h.send(m)
}

// emitAfter sends a pooled copy of tmpl after delay d.
func (h *Hub) emitAfter(d sim.Time, tmpl msg.Message) {
	m := h.newMsg()
	*m = tmpl
	h.sendAfter(d, m)
}

// noteUpdateUseful counts a speculative update consumed by a read, in
// both the run statistics and the observability stream.
func (h *Hub) noteUpdateUseful(addr msg.Addr, version uint64) {
	h.st.UpdatesUseful++
	if o := h.obs; o != nil {
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUpdateHit, Node: h.id, Addr: addr, Arg2: version})
	}
}

// noteUpdateWasted counts a speculative update that died unread
// (overwritten, evicted, or refused for lack of RAC space).
func (h *Hub) noteUpdateWasted(addr msg.Addr) {
	h.st.UpdatesWasted++
	if o := h.obs; o != nil {
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindUpdateWaste, Node: h.id, Addr: addr})
	}
}

// line returns the L2-line-aligned address of addr.
func (h *Hub) line(addr msg.Addr) msg.Addr { return h.l2.Align(addr) }

// home returns the line's home node, applying first-touch placement.
func (h *Hub) home(addr msg.Addr) msg.NodeID { return h.mm.Home(addr, h.id) }

// Access performs one processor memory operation. done runs when the
// access is architecturally complete (data returned for loads, ownership
// and the store commit for stores).
func (h *Hub) Access(addr msg.Addr, write bool, done func()) {
	if write {
		h.st.Stores++
	} else {
		h.st.Loads++
	}
	line := h.line(addr)

	// L1 hit path. Writes additionally require L2 exclusivity (write
	// permission is held at the coherence granularity).
	if h.l1.Touch(addr) != nil {
		if !write {
			l2l := h.l2.Touch(line)
			if l2l == nil {
				// Inclusion violation would be a bug; L1 valid
				// implies L2 valid.
				panic(fmt.Sprintf("core: node %d L1 hit without L2 line %#x", h.id, uint64(line)))
			}
			h.st.L1Hits++
			if h.caps.HybridUpdates && l2l.Streak > 0 {
				// A pushed update is being read: the hybrid protocol's
				// win case (the read would have missed under
				// write-invalidate).
				h.noteUpdateUseful(line, l2l.Version)
				l2l.Streak = 0
			}
			h.gl.observe(h.id, line, l2l.Version)
			h.eng.After(h.cfg.L1Latency, done)
			return
		}
		if l2l := h.l2.Touch(line); l2l != nil && l2l.State == cache.Excl {
			h.st.L1Hits++
			h.doStore(l2l)
			h.eng.After(h.cfg.L1Latency, done)
			return
		}
		// Write to a Shared line: fall through to the upgrade path.
	}

	// L2 hit path.
	if l2l := h.l2.Touch(line); l2l != nil {
		if !write {
			h.st.L2Hits++
			if h.caps.HybridUpdates && l2l.Streak > 0 {
				h.noteUpdateUseful(line, l2l.Version)
				l2l.Streak = 0
			}
			h.fillL1(addr)
			h.gl.observe(h.id, line, l2l.Version)
			h.eng.After(h.cfg.L2Latency, done)
			return
		}
		if l2l.State == cache.Excl {
			h.st.L2Hits++
			h.doStore(l2l)
			h.fillL1(addr)
			h.eng.After(h.cfg.L2Latency, done)
			return
		}
		// Shared: upgrade transaction. Updates pushed to this copy and
		// never read die here (the write overwrites them).
		if h.caps.HybridUpdates && l2l.Streak > 0 {
			h.st.UpdatesWasted += uint64(l2l.Streak)
			l2l.Streak = 0
		}
		h.startMiss(addr, line, true, done)
		return
	}

	// L2 miss: the RAC may satisfy it locally.
	if h.rc != nil {
		if rl := h.rc.Touch(line); rl != nil {
			if h.serveFromRAC(addr, line, rl, write, done) {
				return
			}
		}
	}
	h.startMiss(addr, line, write, done)
}

// serveFromRAC tries to satisfy an L2 miss from the local RAC, reporting
// whether the access was fully handled.
func (h *Hub) serveFromRAC(addr, line msg.Addr, rl *rac.Line, write bool, done func()) bool {
	// Writes to delegated lines must run the delegated-home write flow
	// (invalidating consumers); never short-circuit them here.
	if write && h.prod != nil && h.prod.Peek(line) != nil {
		return false
	}
	if !write {
		if rl.FromUpdate && !rl.Consumed {
			rl.Consumed = true
			h.noteUpdateUseful(line, rl.Version)
		}
		st, v, dirty, g := rl.State, rl.Version, rl.Dirty, rl.Grant
		if !rl.Pinned {
			h.rc.Invalidate(line) // victim-cache move into L2
		} else {
			// Pinned master copy stays authoritative in the RAC;
			// the processor-side copy is a clean Shared one.
			st = cache.Shared
			dirty = false
		}
		l2l := h.fillL2(line, st, v, dirty)
		l2l.Grant = g
		h.fillL1(addr)
		h.st.RACHits++
		h.st.RecordMiss(stats.MissLocalRAC)
		h.gl.observe(h.id, line, v)
		h.eng.After(h.cfg.L2Latency+h.cfg.DirLatency, done)
		return true
	}
	if rl.State == cache.Excl && !rl.Pinned {
		// Victim-cached owner copy: silently re-acquire.
		v, g := rl.Version, rl.Grant
		h.rc.Invalidate(line)
		l2l := h.fillL2(line, cache.Excl, v, true)
		l2l.Grant = g
		h.doStore(l2l)
		h.fillL1(addr)
		h.st.RACHits++
		h.st.RecordMiss(stats.MissLocalRAC)
		h.eng.After(h.cfg.L2Latency+h.cfg.DirLatency, done)
		return true
	}
	if rl.State == cache.Shared && !rl.Pinned {
		// Promote to L2 Shared, then upgrade for ownership.
		if rl.FromUpdate && !rl.Consumed {
			// The producer pushed data we are about to overwrite.
			h.noteUpdateWasted(line)
		}
		v, dirty := rl.Version, rl.Dirty
		h.rc.Invalidate(line)
		h.fillL2(line, cache.Shared, v, dirty)
		h.startMiss(addr, line, true, done)
		return true
	}
	return false
}

// doStore commits a store to an exclusively held L2 line.
func (h *Hub) doStore(l2l *cache.Line) {
	l2l.Version = h.gl.write(h.id, l2l.Addr, l2l.Version)
	l2l.Dirty = true
}

// fillL1 installs the 32-byte L1 line containing addr.
func (h *Hub) fillL1(addr msg.Addr) {
	h.l1.Insert(addr, cache.Shared) // L1 victims are clean copies; drop silently
}

// fillL2 installs a line into L2 and handles the displaced victim. dirty
// marks data newer than the home's memory copy (e.g. a dirty owner line
// moving back from the RAC) so a later eviction writes it back.
func (h *Hub) fillL2(line msg.Addr, st cache.State, version uint64, dirty bool) *cache.Line {
	// L2 and (unpinned) RAC never hold the same line: a stale victim
	// copy left behind would survive later invalidations and transfers
	// that find and act on the L2 copy first. Pinned entries are the
	// delegated master copies, maintained by the delegation flow.
	if h.rc != nil {
		if rl := h.rc.Lookup(line); rl != nil && !rl.Pinned {
			v := h.rc.Invalidate(line)
			if v.FromUpdate && !v.Consumed {
				h.noteUpdateWasted(line)
			}
		}
	}
	l, victim := h.l2.Insert(line, st)
	l.Version = version
	l.Dirty = dirty
	if victim.Valid {
		h.evictL2(victim)
	}
	return l
}

// evictL2 disposes of an L2 victim line: back-invalidate L1 (inclusion),
// victim-cache remote lines in the RAC, write dirty data home.
func (h *Hub) evictL2(v cache.Victim) {
	h.l1.InvalidateRange(v.Addr, h.cfg.L2LineBytes)
	home := h.home(v.Addr)

	// Delegated lines: the pinned RAC entry is the surrogate memory.
	if h.prod != nil {
		if pe := h.prod.Peek(v.Addr); pe != nil {
			if v.State == cache.Excl {
				if rl, rv, ok := h.rc.Insert(v.Addr, cache.Excl); ok {
					rl.Version = v.Version
					rl.Dirty = true
					h.handleRACVictim(rv)
					return
				}
				// No room to host the master copy: undelegate
				// with the data (§2.3.3 reason 2).
				h.undelegate(pe, stats.UndelFlush, v.Version, nil)
				return
			}
			// Shared copy of a delegated line: the RAC retains the
			// master copy; nothing to do.
			return
		}
	}

	if home == h.id {
		// Locally homed: an exclusive victim retires exactly like a
		// writeback message, including the races where the directory
		// is busy with an intervention aimed at us.
		if v.State == cache.Excl {
			wb := h.newMsg()
			*wb = msg.Message{
				Type: msg.Writeback, Src: h.id, Dst: h.id, Addr: v.Addr,
				Requester: h.id, Version: v.Version, Dirty: v.Dirty,
			}
			h.homeWriteback(wb)
			h.eng.FreeMsg(wb)
		}
		// A Shared victim leaves a stale sharer bit; later
		// invalidations to it are acknowledged without a copy.
		return
	}

	// Remote line: prefer the RAC as a victim cache.
	if h.rc != nil {
		if rl, rv, ok := h.rc.Insert(v.Addr, v.State); ok {
			rl.Version = v.Version
			rl.Dirty = v.Dirty
			rl.Grant = v.Grant
			h.handleRACVictim(rv)
			return
		}
	}
	if v.State == cache.Excl {
		h.emit(msg.Message{
			Type: msg.Writeback, Src: h.id, Dst: home, Addr: v.Addr,
			Requester: h.id, Version: v.Version, Dirty: v.Dirty,
		})
	}
	// Clean Shared victims drop silently.
}

// handleRACVictim disposes of an entry displaced from the RAC.
func (h *Hub) handleRACVictim(v rac.Victim) {
	if !v.Valid {
		return
	}
	if v.FromUpdate && !v.Consumed {
		h.noteUpdateWasted(v.Addr)
	}
	if v.State == cache.Excl {
		h.emit(msg.Message{
			Type: msg.Writeback, Src: h.id, Dst: h.home(v.Addr), Addr: v.Addr,
			Requester: h.id, Version: v.Version, Dirty: v.Dirty,
		})
	}
}

// startMiss begins (or merges into) an L2-miss transaction for line.
func (h *Hub) startMiss(addr, line msg.Addr, write bool, done func()) {
	if m := h.mshr(line); m != nil {
		// Merge: replay the access after the current transaction.
		m.waiters = append(m.waiters, func() { h.Access(addr, write, done) })
		return
	}
	m := &mshr{addr: line, wantExcl: write, done: done, acksNeeded: -1}
	h.mshrs.Put(uint64(line), m)
	if o := h.obs; o != nil {
		var w uint64
		if write {
			w = 1
		}
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindMissStart, Node: h.id, Addr: line,
			Arg: uint64(h.mshrs.Len()), Arg2: w})
	}
	h.issue(m)
}

// issue (re)issues the request for an MSHR, re-evaluating the route each
// time: local producer table first, then consumer-table hint, then home.
func (h *Hub) issue(m *mshr) {
	m.upgrade = false
	m.homeRemote = false
	m.ownerForwarded = false
	m.invalsRemote = false
	m.dataReady = false
	m.acksNeeded = -1
	m.acksGot = 0
	m.invalidated = false
	m.pcHint = false
	m.updateWrite = false
	m.target = h.id
	h.txnSeq++
	m.txn = h.txnSeq

	reqType := msg.GetShared
	if m.wantExcl {
		reqType = msg.GetExcl
		if l := h.l2.Lookup(m.addr); l != nil && l.State == cache.Shared {
			reqType = msg.Upgrade
			m.upgrade = true
			// The MSHR stashes the data (hardware: the CRB holds the
			// line) in case the Shared copy is evicted while the
			// upgrade is in flight.
			m.upgVer = l.Version
		}
	}

	// Delegated to us: handle at the local delegate cache.
	if h.prod != nil {
		if pe := h.prod.Lookup(m.addr); pe != nil {
			h.eng.After(h.cfg.L2Latency+h.cfg.DirLatency, func() {
				h.localDelegated(m, reqType)
			})
			return
		}
	}

	home := h.home(m.addr)
	target := home
	if h.cons != nil && home != h.id {
		if hint, ok := h.cons.Lookup(m.addr); ok && hint != h.id {
			target = hint
		}
	}
	if target != h.id {
		m.homeRemote = true
	}
	m.target = target
	h.emitAfter(h.cfg.L2Latency, msg.Message{
		Type: reqType, Src: h.id, Dst: target, Addr: m.addr, Requester: h.id, Txn: m.txn,
	})
}

// retry schedules a re-issue after a NACK, with a per-node stagger to
// break symmetric livelock between competing requesters.
func (h *Hub) retry(m *mshr) {
	h.st.Retries++
	backoff := h.cfg.RetryBackoff + sim.Time(h.id)*7
	h.eng.After(backoff, func() {
		if h.mshr(m.addr) == m {
			h.issue(m)
		}
	})
}

// tryComplete finishes the transaction once data and all invalidation
// acknowledgements have arrived.
func (h *Hub) tryComplete(m *mshr) {
	if !m.dataReady || m.acksNeeded < 0 || m.acksGot < m.acksNeeded {
		return
	}
	h.mshrs.Delete(uint64(m.addr))
	cls := m.class()
	h.st.RecordMiss(cls)
	if o := h.obs; o != nil {
		o.Emit(obs.Event{At: h.eng.Now(), Kind: obs.KindMissEnd, Node: h.id, Addr: m.addr,
			Arg: uint64(h.mshrs.Len()), Arg2: uint64(cls)})
	}

	if m.invalidated && !m.wantExcl {
		// Use-once fill: satisfy the load without caching stale data.
		h.gl.observe(h.id, m.addr, m.version)
		h.eng.After(h.cfg.L2Latency, m.done)
		for _, w := range m.waiters {
			w()
		}
		h.checkInvariants(m.addr)
		return
	}

	l2l := h.fillL2(m.addr, m.fillState, m.version, false)
	if m.wantExcl && !m.updateWrite {
		l2l.Grant = m.txn // ownership epoch (see msg.Message.GrantTxn)
		h.doStore(l2l)
	}
	h.fillL1(m.addr)
	h.gl.observe(h.id, m.addr, l2l.Version)

	// A freshly written producer-consumer line arms the delayed
	// intervention (§2.4.1), which will downgrade the line and push
	// updates. Lines homed here run the same flow against the home
	// directory entry; delegated lines against the producer table.
	// Dynamic self-invalidation: a granted producer-consumer line arms
	// an eager downgrade after the (same) delayed-intervention interval.
	if m.wantExcl && h.cfg.SelfInvalidate && m.pcHint &&
		h.cfg.InterventionDelay != NoIntervention {
		h.armSelfDowngrade(m.addr, l2l.Grant)
	}

	updatesOn := h.cfg.EnableUpdates && h.cfg.InterventionDelay != NoIntervention
	if m.wantExcl && h.prod != nil {
		if pe := h.prod.Peek(m.addr); pe != nil {
			if m.undelegateOnDone {
				h.undelegate(pe, stats.UndelFlush, l2l.Version, nil)
			} else if updatesOn {
				h.armIntervention(pe)
			}
		} else if m.undelegateOnDone {
			h.undelegateNoEntry(m.addr, l2l.Version)
		} else if updatesOn && h.home(m.addr) == h.id {
			h.armHomeIntervention(m.addr)
		}
	}

	h.eng.After(h.cfg.L2Latency, m.done)
	for _, w := range m.waiters {
		w()
	}

	// Service an intervention or ownership transfer that arrived while
	// our fill was in flight (the home serialized it after us and is
	// busy waiting for this node). The re-dispatch frees it.
	if m.deferred != nil {
		h.eng.AfterMsg(h.cfg.DirLatency, h, opDispatch, m.deferred)
	}

	h.checkInvariants(m.addr)
}

// armSelfDowngrade schedules the dynamic-self-invalidation eager
// downgrade: after the delay, if we still own the line under the same
// epoch, downgrade to Shared and push the data home.
func (h *Hub) armSelfDowngrade(line msg.Addr, grant uint64) {
	h.eng.After(h.cfg.interventionDelay(), func() {
		l2l := h.l2.Lookup(line)
		if l2l == nil || l2l.State != cache.Excl || l2l.Grant != grant {
			return // evicted, transferred, or re-granted since
		}
		l2l.State = cache.Shared
		l2l.Dirty = false // the eager writeback cleans it
		h.st.SelfDowngrades++
		h.emit(msg.Message{
			Type: msg.EagerWriteback, Src: h.id, Dst: h.home(line), Addr: line,
			Requester: h.id, Version: l2l.Version, Dirty: true, GrantTxn: grant,
		})
	})
}

// nack sends a NACK for a request message back to its requester.
func (h *Hub) nack(req *msg.Message, notHome bool) {
	t := msg.Nack
	if notHome {
		t = msg.NackNotHome
	}
	h.emitAfter(h.cfg.DirLatency, msg.Message{
		Type: t, Src: h.id, Dst: req.Requester, Addr: req.Addr, Requester: req.Requester,
		Txn: req.Txn,
	})
}
