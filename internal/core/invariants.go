package core

import (
	"fmt"

	"pccsim/internal/cache"
	"pccsim/internal/directory"
	"pccsim/internal/msg"
)

// checkInvariants runs the §2.5 runtime checks for one line at the
// completion of an L2-miss transaction: "single writer exists" and
// "consistency within the directory". Version checks (no stale writes, no
// backwards reads) run continuously in global.write/observe.
func (h *Hub) checkInvariants(addr msg.Addr) {
	if !h.cfg.CheckInvariants {
		return
	}
	if h.sys.grp != nil {
		// CheckLine scans every hub's caches, which other shards may be
		// mutating mid-window; defer the check to the next barrier. The
		// invariants are state invariants — they hold at every instant —
		// so checking at the barrier loses only the exact blame instant,
		// not soundness. The version oracle's write/observe panics still
		// fire inline at the faulting event.
		sh := h.sys.shards[h.sys.shardOf[h.id]]
		sh.checks = append(sh.checks, addr)
		return
	}
	h.sys.CheckLine(addr)
}

// CheckLine verifies the coherence invariants for one line across the
// whole machine, panicking on violation. Exported for tests and for the
// simulator-side invariant checking the paper describes.
func (s *System) CheckLine(addr msg.Addr) {
	var exclusive, shared msg.Vector
	for _, hub := range s.Hubs {
		if l := hub.l2.Lookup(addr); l != nil {
			if l.State == cache.Excl {
				exclusive = exclusive.Set(hub.id)
			} else {
				shared = shared.Set(hub.id)
			}
		}
		if hub.rc != nil {
			if rl := hub.rc.Lookup(addr); rl != nil {
				if rl.State == cache.Excl && !rl.Pinned {
					exclusive = exclusive.Set(hub.id)
				} else {
					shared = shared.Set(hub.id)
				}
			}
		}
	}

	// Single-writer-multiple-reader: at most one node exclusive, and no
	// other node may hold any copy while one does.
	if exclusive.Count() > 1 {
		panic(fmt.Sprintf("core: SWMR violation on %#x: exclusive at nodes %v",
			uint64(addr), exclusive.Nodes()))
	}
	if exclusive.Count() == 1 {
		owner := exclusive.Only("CheckLine SWMR owner")
		if others := shared.Clear(owner); !others.Empty() {
			panic(fmt.Sprintf("core: SWMR violation on %#x: owner %d with copies at %v",
				uint64(addr), owner, others.Nodes()))
		}
	}

	// Directory consistency: a home entry in SHARED or UNOWNED must not
	// coexist with an exclusive holder anywhere. (EXCL-without-holder is
	// a legal transient while a writeback is in flight, so it is not
	// checked; DELE entries are validated against the producer table.)
	home, ok := s.Mem.HomeIfPlaced(addr)
	if !ok {
		return
	}
	e := s.Hubs[home].dir.Peek(addr)
	if e == nil {
		return
	}
	switch e.State {
	case directory.Shared, directory.Unowned:
		if !exclusive.Empty() {
			panic(fmt.Sprintf("core: directory inconsistency on %#x: home says %s but node %d is exclusive",
				uint64(addr), e.State, exclusive.Only("CheckLine dir-consistency")))
		}
	case directory.Excl:
		// The owner recorded at the directory must be the only possible
		// exclusive holder. Single is the recoverable form of Only here:
		// a multi-member exclusive set is itself the inconsistency being
		// diagnosed, so the typed error folds into this check's own
		// report instead of crashing inside the msg package.
		if !exclusive.Empty() {
			if holder, err := exclusive.Single(); err != nil || holder != e.Owner {
				panic(fmt.Sprintf("core: directory inconsistency on %#x: home owner %d but exclusive set is %v (%v)",
					uint64(addr), e.Owner, exclusive.Nodes(), err))
			}
		}
	}
}

// CheckAll runs CheckLine over every line the system has touched; tests
// call it after a workload drains.
func (s *System) CheckAll() {
	seen := make(map[msg.Addr]bool)
	for _, hub := range s.Hubs {
		hub.dir.ForEach(func(a msg.Addr, _ *directory.Entry) {
			if !seen[a] {
				seen[a] = true
				s.CheckLine(a)
			}
		})
	}
}

// VerifyValue checks that the newest written version of line is still
// recoverable somewhere in the machine: a cache or RAC copy, the home's
// memory image, or a delegated producer-table entry. Call it only on a
// quiesced system (after the event queue drains); transients legitimately
// keep the latest data in flight. A failure means the protocol lost an
// update — the end-state analogue of the stale-write runtime check.
func (s *System) VerifyValue(line msg.Addr) error {
	latest := s.glob.latestVersion(line)
	if latest == 0 {
		return nil // never written; nothing to lose
	}
	for _, hub := range s.Hubs {
		if l := hub.l2.Lookup(line); l != nil && l.Version == latest {
			return nil
		}
		if hub.rc != nil {
			if rl := hub.rc.Lookup(line); rl != nil && rl.Version == latest {
				return nil
			}
		}
		if hub.prod != nil {
			if pe := hub.prod.Peek(line); pe != nil && pe.Dir.MemVersion == latest {
				return nil
			}
		}
	}
	if home, ok := s.Mem.HomeIfPlaced(line); ok {
		if e := s.Hubs[home].dir.Peek(line); e != nil && e.MemVersion == latest {
			return nil
		}
	}
	return fmt.Errorf("core: lost update on %#x: version %d was written but no cache, RAC or memory copy holds it",
		uint64(line), latest)
}

// VerifyValues runs VerifyValue over every line the data-version oracle has
// seen written. The fuzzer calls it at the end of every case; a clean run
// proves no store was silently dropped by a race.
func (s *System) VerifyValues() error {
	for _, line := range s.glob.writtenLines() {
		if err := s.VerifyValue(line); err != nil {
			return err
		}
	}
	return nil
}

// QuiesceCheck verifies that a drained system holds no transient state:
// no MSHRs, no busy directory entries, no in-flight updates.
func (s *System) QuiesceCheck() error {
	for _, hub := range s.Hubs {
		if n := hub.mshrs.Len(); n != 0 {
			return fmt.Errorf("node %d still has %d outstanding transactions", hub.id, n)
		}
		var err error
		hub.dir.ForEach(func(a msg.Addr, e *directory.Entry) {
			if err != nil {
				return
			}
			if e.State.Busy() {
				err = fmt.Errorf("node %d directory entry %#x stuck in %s", hub.id, uint64(a), e.State)
			}
			if e.UpdatesInFlight != 0 {
				err = fmt.Errorf("node %d entry %#x has %d updates in flight", hub.id, uint64(a), e.UpdatesInFlight)
			}
		})
		if err != nil {
			return err
		}
	}
	if s.Net.InFlight() != 0 {
		return fmt.Errorf("%d messages still in flight", s.Net.InFlight())
	}
	return nil
}
