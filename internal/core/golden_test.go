package core

import (
	"fmt"
	"strings"
	"testing"

	"pccsim/internal/msg"
	"pccsim/internal/obs"
)

// TestGoldenTranscript locks the protocol's canonical message sequence for
// the producer-consumer scenario: any change to routing, message types, or
// the adaptation points shows up as a transcript diff. (Timing is omitted
// so latency tuning does not churn the golden text; ordering is exact
// because the simulator is deterministic.)
func TestGoldenTranscript(t *testing.T) {
	cfg := testConfig().WithMechanisms(32*1024, 32, true)
	cfg.Nodes = 4
	sys := newTestSystem(t, cfg)
	var log []string
	sink := obs.NewSink(0)
	sink.Tap = func(e obs.Event) {
		if e.Kind == obs.KindSend {
			log = append(log, fmt.Sprintf("%s %d->%d", e.Msg.Type, e.Msg.Src, e.Msg.Dst))
		}
	}
	sys.AttachObs(sink)
	addr := msg.Addr(0x4000)
	access(t, sys, 3, addr, false) // home = 3
	for round := 0; round < 4; round++ {
		access(t, sys, 0, addr, true)
		access(t, sys, 1, addr, false)
		access(t, sys, 2, addr, false)
	}

	got := strings.Join(log, "\n")
	// Note two subtleties the transcript pins down: the home's
	// invalidation of its own copy travels the hub-internal crossbar
	// (not the network), so only its InvAck appears; and the DELEGATE
	// departs after the invalidation acks because it pays the DRAM
	// access for the data it carries.
	want := strings.TrimSpace(`
GetExcl 0->3
InvAck 3->0
ExclReply 3->0
GetShared 1->3
Intervention 3->0
SharedResponse 0->1
SharedWriteback 0->3
GetShared 2->3
SharedReply 3->2
Upgrade 0->3
Invalidate 3->1
Invalidate 3->2
UpgradeAck 3->0
InvAck 1->0
InvAck 2->0
GetShared 1->3
Intervention 3->0
SharedResponse 0->1
SharedWriteback 0->3
GetShared 2->3
SharedReply 3->2
Upgrade 0->3
Invalidate 3->1
Invalidate 3->2
UpgradeAck 3->0
InvAck 1->0
InvAck 2->0
GetShared 1->3
Intervention 3->0
SharedResponse 0->1
SharedWriteback 0->3
GetShared 2->3
SharedReply 3->2
Upgrade 0->3
Invalidate 3->1
Invalidate 3->2
InvAck 1->0
InvAck 2->0
Delegate 3->0
Update 0->1
Update 0->2
`)
	if got != want {
		t.Fatalf("protocol transcript changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
