package mcheck

import (
	"fmt"
	"testing"
)

// applyTrace drives the model through a labeled rule sequence, checking
// every invariant along the way. It fails if a label has no matching
// enabled transition (protocol behavior changed) or an invariant breaks.
func applyTrace(t *testing.T, cfg Config, labels []string) *State {
	t.Helper()
	st := NewState(cfg)
	for i, want := range labels {
		if inv := CheckInvariants(cfg, st); inv != "" {
			t.Fatalf("step %d: invariant %s violated in %s", i, inv, st)
		}
		found := false
		for _, sc := range Successors(cfg, st) {
			if sc.Rule == want {
				st = sc.State
				found = true
				break
			}
		}
		if !found {
			var avail []string
			for _, sc := range Successors(cfg, st) {
				avail = append(avail, sc.Rule)
			}
			t.Fatalf("step %d: rule %q not enabled in %s\navailable: %v", i, want, st, avail)
		}
	}
	if inv := CheckInvariants(cfg, st); inv != "" {
		t.Fatalf("final state: invariant %s violated in %s", inv, st)
	}
	return st
}

// drain delivers everything outstanding (any order the model picks first)
// until quiescent, checking invariants at each step.
func drain(t *testing.T, cfg Config, st *State) *State {
	t.Helper()
	for steps := 0; steps < 10000; steps++ {
		if inv := CheckInvariants(cfg, st); inv != "" {
			t.Fatalf("drain: invariant %s violated in %s", inv, st)
		}
		// Only take delivery/timer transitions, not new issues, so the
		// system settles.
		var next *State
		for _, sc := range Successors(cfg, st) {
			if isDelivery(sc.Rule) {
				next = sc.State
				break
			}
		}
		if next == nil {
			return st
		}
		st = next
	}
	t.Fatal("drain did not settle")
	return nil
}

func isDelivery(rule string) bool {
	// Delivery rules look like "1->0.WB"; issue rules like "n1.GetX->0".
	return rule[0] != 'n'
}

// Regression: the transaction-number collision in the TransferAck match
// (model-checker finding #3). Node 1's stale TransferAck — left over after
// its writeback resolved the transfer early — must not complete node 2's
// unrelated pending transfer that happens to carry the same per-node txn
// number. This is the literal counterexample trace the checker produced.
func TestRegressionTransferAckTxnCollision(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWrites = 3
	cfg.MaxIssues = 3
	cfg.DetThresh = 1

	st := applyTrace(t, cfg, []string{
		"n0.GetX->0",
		"n1.GetX->0",
		"n2.GetX->0",
		"0->0.GetX",    // home grants node 0
		"0->0.XRep",    // node 0 exclusive
		"1->0.GetX",    // node 1's transfer begins: home busy
		"0->0.XferReq", // node 0 hands over
		"0->1.XResp",   // node 1 exclusive (TransferAck still in flight)
		"n1.Evict(WB)", // node 1 evicts before the ack lands
		"n1.GetX->0",
		"1->0.WB", // home: WB from the *pending* requester resolves the transfer
		"1->0.GetX",
		"0->1.XRep",    // node 1 exclusive again (fresh epoch)
		"2->0.GetX",    // node 2's transfer begins: home busy, pending txn collides
		"0->0.XferAck", // the STALE ack arrives: must be dropped
	})
	// Before the fix this state had home EXCL owner=2 while node 1 held
	// the line exclusively and node 2 was still waiting.
	if st.H[0].Dir != DBX {
		t.Fatalf("home should still be busy on node 2's transfer, got %s", st.H[0].Dir)
	}
	drain(t, cfg, st)
}

// Regression: the new owner's writeback overtaking the old owner's
// TransferAck (model-checker finding #2). The home must treat the
// writeback from the pending requester as "ownership came and went".
func TestRegressionTransferWritebackRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWrites = 2
	cfg.MaxIssues = 2
	cfg.DetThresh = 3 // keep delegation out of this scenario

	st := applyTrace(t, cfg, []string{
		"n0.GetX->0",
		"0->0.GetX",
		"0->0.XRep", // node 0 exclusive
		"n1.GetX->0",
		"1->0.GetX",    // home busy: transfer to node 1
		"0->0.XferReq", // node 0 responds
		"0->1.XResp",   // node 1 exclusive
		"n1.Evict(WB)",
		"1->0.WB",      // arrives while home is still DBX
		"0->0.XferAck", // stale, dropped
	})
	if st.H[0].Dir != DU {
		t.Fatalf("home should be UNOWNED after ownership came and went, got %s", st.H[0].Dir)
	}
	if st.H[0].MemVal != st.Latest[0] {
		t.Fatalf("memory lost the written-back data: mem v%d latest v%d", st.H[0].MemVal, st.Latest[0])
	}
}

// Regression: a stale intervention must be dropped by ownership epoch
// (model-checker finding #1). The intervention for node 1's *first*
// ownership sits in the home->1 channel when node 1's *second* grant is
// queued behind it; acting on it would downgrade the new ownership and
// corrupt the home with an unexpected SharedWriteback.
func TestRegressionStaleInterventionEpoch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWrites = 3
	cfg.MaxIssues = 3
	cfg.DetThresh = 3 // no delegation

	st := applyTrace(t, cfg, []string{
		"n1.GetX->0",
		"1->0.GetX",
		"0->1.XRep", // node 1 exclusive, epoch 1
		"n2.GetS->0",
		"2->0.GetS", // home busy-shared: intervention to node 1 queued
		"n1.Evict(WB)",
		"1->0.WB", // home completes node 2 from the writeback
		"n1.GetX->0",
		"1->0.GetX",  // node 1's second grant; XRep queues behind the stale Int
		"0->1.Int",   // the STALE intervention: epoch mismatch, dropped
		"0->1.XRep",  // the fresh grant's data (ack from node 2 pending)
		"0->2.SRep",  // node 2's read completes from the writeback data
		"0->2.Inval", // node 2 invalidated for node 1's second write
		"2->1.InvAck",
	})
	if st.N[1].Cache != CE {
		t.Fatalf("node 1 should hold the line exclusively, got %s", st.N[1].Cache)
	}
	drain(t, cfg, st)
}

// Regression: the stale pinned-RAC copy surviving undelegation
// (model-checker finding #4) — after an undelegation the producer's
// leftover RAC copy must hold the current version. Covered end-to-end by
// exploration; here we assert the invariant directly on the delegated
// write + undelegate path.
func TestRegressionUndelegationRefreshesRAC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWrites = 3
	cfg.MaxIssues = 4
	cfg.DetThresh = 1

	// Drive: node1 writes twice with node2 reading between (detected and
	// delegated on the second write), then intervention fires, then node1
	// writes again (delegated write), then node2 writes, forcing
	// undelegation with the RAC copy present.
	st := applyTrace(t, cfg, []string{
		"n1.GetX->0",
		"1->0.GetX",
		"0->1.XRep", // write 1
		"n2.GetS->0",
		"2->0.GetS", // 3-hop read: intervention to the owner
		"0->1.Int",
		"1->2.SResp",
		"1->0.SWB", // home SHARED {1,2}
		"n1.Upg->0",
		"1->0.Upg",   // detector saturates: home delegates
		"0->2.Inval", // consumer invalidated on the home's behalf
		"0->1.Dele",  // delegation installed; write 2 pending acks
		"2->1.InvAck",
		"n1.Intervention", // delayed intervention: downgrade + push
		"1->2.Upd",        // update lands at node 2
	})
	p := &st.N[1]
	if !p.HasProd || !p.RACOk {
		t.Fatalf("precondition failed: producer state %s", st)
	}
	if p.RACVal != st.Latest[0] {
		t.Fatalf("pinned RAC copy stale after intervention: v%d latest v%d", p.RACVal, st.Latest[0])
	}
	drain(t, cfg, st)
}

func TestApplyTraceRejectsUnknownRule(t *testing.T) {
	cfg := DefaultConfig()
	// Verify the harness catches drifted protocol behavior.
	defer func() {
		if recover() == nil {
			// applyTrace uses t.Fatalf, which is not recoverable
			// here; run it in a subtest instead.
		}
	}()
	ok := t.Run("inner", func(t *testing.T) {
		t.Skip("probed via the label check below")
	})
	_ = ok
	st := NewState(cfg)
	found := false
	for _, sc := range Successors(cfg, st) {
		if sc.Rule == "n9.Teleport" {
			found = true
		}
	}
	if found {
		t.Fatal("impossible rule enabled")
	}
	_ = fmt.Sprint(st)
}
