// Package mcheck is the reproduction of the paper's §2.5 verification: an
// explicit-state model checker in the style of Murphi, run over an abstract
// model of the protocol — the base directory write-invalidate protocol
// extended with directory delegation and speculative updates. The model is
// an independent, second encoding of the protocol rules (the simulator in
// internal/core is the first), so exhaustive reachability over it checks
// the *design*, and disagreements between the two encodings surface as
// invariant violations here or runtime-check panics there.
//
// The checked properties mirror the paper's: the DASH-style "single writer
// exists" and "consistency within the directory" invariants, a data-value
// invariant (every readable copy holds the latest written value — the
// single-location guarantee sequential consistency needs from coherence),
// absence of deadlock (no reachable state with outstanding work and no
// enabled transition), and scripted litmus tests for ordering.
package mcheck

import (
	"fmt"
	"strings"
)

// CacheState is a node's cached-copy state.
type CacheState uint8

const (
	CI CacheState = iota // invalid
	CS                   // shared
	CE                   // exclusive (dirty)
)

var cacheNames = [...]string{"I", "S", "E"}

func (c CacheState) String() string { return cacheNames[c] }

// MshrState is a node's outstanding-request state.
type MshrState uint8

const (
	MNone MshrState = iota
	MWantS
	MWantX   // GetExcl issued
	MWantUpg // Upgrade issued
	MWaitAck // data granted, invalidation acks still arriving
)

var mshrNames = [...]string{"-", "wS", "wX", "wU", "wA"}

func (m MshrState) String() string { return mshrNames[m] }

// DirState is the home directory state for the line.
type DirState uint8

const (
	DU  DirState = iota // unowned
	DS                  // shared
	DE                  // exclusive
	DBS                 // busy-shared (intervention outstanding)
	DBX                 // busy-exclusive (transfer outstanding)
	DD                  // delegated
)

var dirNames = [...]string{"U", "S", "E", "BS", "BX", "D"}

func (d DirState) String() string { return dirNames[d] }

// MsgType enumerates model messages (a compressed version of msg.Type).
type MsgType uint8

const (
	MGetS MsgType = iota
	MGetX
	MUpg
	MInval
	MInvAck
	MSRep    // shared reply (data)
	MXRep    // exclusive reply (data + ack count)
	MUpgAck  // upgrade ack (ack count)
	MInt     // intervention
	MSResp   // shared response from owner
	MSWB     // shared writeback to home
	MXferReq // ownership transfer request
	MXResp   // exclusive response from owner
	MXferAck // ownership transfer done
	MWB      // writeback
	MWBAck
	MNack
	MNackNH // "not home": drop the hint
	MDele   // delegate (directory handoff, doubles as exclusive reply)
	MUndele // undelegate (directory handback)
	MUndAck
	MHint // new-home hint
	MUpd  // speculative update
	numMsgTypes
)

var msgNames = [...]string{
	"GetS", "GetX", "Upg", "Inval", "InvAck", "SRep", "XRep", "UpgAck",
	"Int", "SResp", "SWB", "XferReq", "XResp", "XferAck", "WB", "WBAck",
	"Nack", "NackNH", "Dele", "Undele", "UndAck", "Hint", "Upd",
}

func (t MsgType) String() string { return msgNames[t] }

// Msg is one in-flight message. Val is the abstract data version.
type Msg struct {
	Type MsgType
	Req  int8 // requester the message serves
	Val  int8
	Acks int8
	Shr  uint8 // sharer bitmask (Dele/Undele)
	Fwd  MsgType
	// RTxn is the requester's transaction number, echoed by replies,
	// NACKs and invalidation acks (the simulator's msg.Message.Txn).
	RTxn int8
	// GEp is the ownership epoch an intervention or transfer refers to
	// (the simulator's msg.Message.GrantTxn): the RTxn of the request
	// that granted the current owner its copy.
	GEp int8
}

// Node is one processor/hub in the model.
type Node struct {
	Cache CacheState
	Val   int8
	Mshr  MshrState
	Acks  int8 // invalidation acks still owed to this requester
	// MVal is the data version parked in the MSHR (upgrade stash or an
	// early reply awaiting acks); MHave marks it valid.
	MVal  int8
	MHave bool
	// Inv marks a read whose reply must be used once and not cached.
	Inv bool
	// Hint: the node believes the line is delegated to Prod.
	Hint     bool
	HintProd int8
	// RAC holds an update-landed or surrogate copy (valid when >= 0).
	RACVal int8
	RACOk  bool

	// Txn is the current transaction number (bounded by Config.MaxIssues
	// so the state space stays finite); GEp is the epoch under which an
	// exclusive copy was granted.
	Txn    int8
	Issues int8
	GEp    int8

	// Delegated directory (valid when HasProd). Mirrors the producer
	// table entry: delegated state, sharer mask, update bookkeeping.
	HasProd bool
	PDir    DirState // DS or DE
	PShr    uint8
	PUpdSet uint8
	PArmed  bool // delayed intervention armed
	PInFlt  int8 // update pushes not yet delivered
}

// Home is the home node's directory view of the line.
type Home struct {
	Dir     DirState
	Shr     uint8
	Owner   int8
	Pend    int8
	PendX   bool
	PendFwd MsgType
	MemVal  int8
	// OwnTxn is the current ownership epoch (the grant's RTxn); PendTxn
	// is the pending requester's transaction while busy.
	OwnTxn  int8
	PendTxn int8
	// Detector state: last writer and the write-repeat counter (the
	// model uses a threshold of 2 to keep state spaces small).
	DetW   int8
	DetRep int8
	DetRd  bool // a foreign read happened since the last write
}

// Config parameterizes the model.
type Config struct {
	Nodes      int  // processors (the home directory lives beside node 0)
	MaxWrites  int  // bound on data versions
	QueueDepth int  // per src->dst channel bound
	Delegation bool // enable the delegation + update extensions
	DetThresh  int8 // write-repeat saturation threshold (paper: 3)
	// MaxIssues bounds each node's total request issues (including
	// NACK-forced retries), which bounds transaction numbers — the
	// usual bounded-model-checking compromise for retry protocols.
	MaxIssues int8

	// Scripts, when non-nil, switches the model to litmus mode: instead
	// of free processor actions, node i executes Scripts[i] in program
	// order (reads record the observed version) and spontaneous cache
	// evictions are disabled. Used by Litmus.
	Scripts [][]LitOp
}

// LitOp is one scripted litmus operation.
type LitOp struct {
	Write bool
}

// DefaultConfig is the paper-style small configuration: 3 nodes, bounded
// writes and retries, delegation and updates on.
func DefaultConfig() Config {
	return Config{Nodes: 3, MaxWrites: 2, QueueDepth: 2, Delegation: true,
		DetThresh: 2, MaxIssues: 3}
}

// State is one global model state. Channels are per (src,dst) FIFO queues,
// matching the pairwise-ordered fabric of internal/network (index
// src*Nodes+dst; the home shares node 0's hub).
type State struct {
	N      []Node
	H      Home
	Ch     [][]Msg
	Latest int8 // newest written version (checker bookkeeping)
	Writes int8

	// Litmus-mode bookkeeping: per-node program counters and the
	// versions each node's reads observed, in program order.
	PC  []int8
	Obs [][]int8
}

// NewState returns the initial state: line unowned, memory holds version 0.
func NewState(cfg Config) *State {
	s := &State{
		N:  make([]Node, cfg.Nodes),
		Ch: make([][]Msg, cfg.Nodes*cfg.Nodes),
		H:  Home{Owner: -1, Pend: -1, DetW: -1},
	}
	for i := range s.N {
		s.N[i].HintProd = -1
	}
	if cfg.Scripts != nil {
		s.PC = make([]int8, cfg.Nodes)
		s.Obs = make([][]int8, cfg.Nodes)
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	ns := &State{
		N:      append([]Node(nil), s.N...),
		H:      s.H,
		Ch:     make([][]Msg, len(s.Ch)),
		Latest: s.Latest,
		Writes: s.Writes,
	}
	for i, q := range s.Ch {
		if len(q) > 0 {
			ns.Ch[i] = append([]Msg(nil), q...)
		}
	}
	if s.PC != nil {
		ns.PC = append([]int8(nil), s.PC...)
		ns.Obs = make([][]int8, len(s.Obs))
		for i, o := range s.Obs {
			if len(o) > 0 {
				ns.Obs[i] = append([]int8(nil), o...)
			}
		}
	}
	return ns
}

// Key returns a canonical binary encoding for the visited-set hash.
func (s *State) Key() string {
	b := make([]byte, 0, 24*len(s.N)+16+9*8)
	bl := func(v bool) byte {
		if v {
			return 1
		}
		return 0
	}
	for i := range s.N {
		n := &s.N[i]
		b = append(b,
			byte(n.Cache), byte(n.Val), byte(n.Mshr), byte(n.Acks), byte(n.MVal),
			bl(n.MHave)|bl(n.Inv)<<1|bl(n.Hint)<<2|bl(n.RACOk)<<3|bl(n.HasProd)<<4|bl(n.PArmed)<<5,
			byte(n.HintProd), byte(n.RACVal), byte(n.Txn), byte(n.Issues), byte(n.GEp),
			byte(n.PDir), n.PShr, n.PUpdSet, byte(n.PInFlt))
	}
	h := &s.H
	b = append(b, byte(h.Dir), h.Shr, byte(h.Owner), byte(h.Pend),
		bl(h.PendX)|bl(h.DetRd)<<1, byte(h.PendFwd), byte(h.MemVal),
		byte(h.OwnTxn), byte(h.PendTxn), byte(h.DetW), byte(h.DetRep))
	for i, q := range s.Ch {
		if len(q) == 0 {
			continue
		}
		b = append(b, 0xFE, byte(i))
		for _, m := range q {
			b = append(b, byte(m.Type), byte(m.Req), byte(m.Val), byte(m.Acks),
				m.Shr, byte(m.Fwd), byte(m.RTxn), byte(m.GEp))
		}
	}
	b = append(b, byte(s.Latest), byte(s.Writes))
	for i := range s.PC {
		b = append(b, 0xFD, byte(s.PC[i]))
		for _, o := range s.Obs[i] {
			b = append(b, byte(o))
		}
	}
	return string(b)
}

// CanonicalKey is Key modulo the symmetry of the non-home nodes: in the
// generic (scriptless) model every node behaves identically, so states
// differing only by a permutation of nodes 1..N-1 are equivalent. The
// canonical key is the lexicographically smallest Key over pairwise swaps
// (N is small). Litmus mode has distinguished scripts and must use Key.
func (s *State) CanonicalKey() string {
	best := s.Key()
	n := len(s.N)
	for a := 1; a < n; a++ {
		for b := a + 1; b < n; b++ {
			sw := s.swapped(a, b)
			if k := sw.Key(); k < best {
				best = k
			}
		}
	}
	return best
}

// swapped returns the state with node identities a and b exchanged.
func (s *State) swapped(a, b int) *State {
	ns := s.Clone()
	ns.N[a], ns.N[b] = ns.N[b], ns.N[a]
	ren := func(id int8) int8 {
		switch int(id) {
		case a:
			return int8(b)
		case b:
			return int8(a)
		}
		return id
	}
	renMask := func(m uint8) uint8 {
		out := m &^ (bit(int8(a)) | bit(int8(b)))
		if m&bit(int8(a)) != 0 {
			out |= bit(int8(b))
		}
		if m&bit(int8(b)) != 0 {
			out |= bit(int8(a))
		}
		return out
	}
	for i := range ns.N {
		nd := &ns.N[i]
		nd.HintProd = ren(nd.HintProd)
		nd.PShr = renMask(nd.PShr)
		nd.PUpdSet = renMask(nd.PUpdSet)
	}
	h := &ns.H
	h.Owner = ren(h.Owner)
	h.Pend = ren(h.Pend)
	h.DetW = ren(h.DetW)
	h.Shr = renMask(h.Shr)
	n := len(ns.N)
	old := ns.Ch
	ns.Ch = make([][]Msg, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			q := old[src*n+dst]
			if len(q) == 0 {
				continue
			}
			nsrc, ndst := int(ren(int8(src))), int(ren(int8(dst)))
			nq := append([]Msg(nil), q...)
			for i := range nq {
				nq[i].Req = ren(nq[i].Req)
				nq[i].Shr = renMask(nq[i].Shr)
				if nq[i].Type == MHint {
					nq[i].Val = ren(nq[i].Val) // Hint reuses Val as a node id
				}
			}
			ns.Ch[nsrc*n+ndst] = nq
		}
	}
	return ns
}

// String renders the state for counterexample traces.
func (s *State) String() string {
	var b strings.Builder
	for i := range s.N {
		n := &s.N[i]
		fmt.Fprintf(&b, "n%d[%s v%d %s", i, n.Cache, n.Val, n.Mshr)
		if n.RACOk {
			fmt.Fprintf(&b, " rac:v%d", n.RACVal)
		}
		if n.HasProd {
			fmt.Fprintf(&b, " prod:%s shr=%b upd=%b inflt=%d", n.PDir, n.PShr, n.PUpdSet, n.PInFlt)
		}
		b.WriteString("] ")
	}
	fmt.Fprintf(&b, "home[%s shr=%b own=%d mem=v%d] latest=v%d", s.H.Dir, s.H.Shr, s.H.Owner, s.H.MemVal, s.Latest)
	for i, q := range s.Ch {
		for _, m := range q {
			fmt.Fprintf(&b, " {%d->%d %s v%d}", i/len(s.N), i%len(s.N), m.Type, m.Val)
		}
	}
	return b.String()
}

// send enqueues a message on the src->dst channel; it reports false when
// the channel bound would be exceeded (the rule is then disabled).
func (s *State) send(src, dst int, m Msg, depth int) bool {
	i := src*len(s.N) + dst
	if len(s.Ch[i]) >= depth {
		return false
	}
	s.Ch[i] = append(s.Ch[i], m)
	return true
}

func bit(n int8) uint8 { return 1 << uint8(n) }

func popcount(x uint8) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
