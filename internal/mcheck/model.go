// Package mcheck is the reproduction of the paper's §2.5 verification: an
// explicit-state model checker in the style of Murphi, run over an abstract
// model of the protocol — the base directory write-invalidate protocol
// extended with directory delegation and speculative updates. The model is
// an independent, second encoding of the protocol rules (the simulator in
// internal/core is the first), so exhaustive reachability over it checks
// the *design*, and disagreements between the two encodings surface as
// invariant violations here or runtime-check panics there.
//
// The checked properties mirror the paper's: the DASH-style "single writer
// exists" and "consistency within the directory" invariants, a data-value
// invariant (every readable copy holds the latest written value — the
// single-location guarantee sequential consistency needs from coherence),
// absence of deadlock (no reachable state with outstanding work and no
// enabled transition), and scripted litmus tests for ordering.
//
// The model covers one or more cache lines (Config.Lines). All lines are
// homed at node 0's hub, sharing the pairwise FIFO channels, so cross-line
// interactions — a delegation on one line racing traffic for another
// through the same ordered fabric — are part of the explored space. The
// exploration core is the parallel engine in parallel.go: canonical state
// encoding with symmetry reduction (canon.go), a sharded open-addressed
// visited table (visited.go), and work-stealing BFS with deterministic
// counterexample selection.
package mcheck

import (
	"fmt"
	"strings"
)

// CacheState is a node's cached-copy state.
type CacheState uint8

const (
	CI CacheState = iota // invalid
	CS                   // shared
	CE                   // exclusive (dirty)
)

var cacheNames = [...]string{"I", "S", "E"}

func (c CacheState) String() string { return cacheNames[c] }

// MshrState is a node's outstanding-request state.
type MshrState uint8

const (
	MNone MshrState = iota
	MWantS
	MWantX   // GetExcl issued
	MWantUpg // Upgrade issued
	MWaitAck // data granted, invalidation acks still arriving
)

var mshrNames = [...]string{"-", "wS", "wX", "wU", "wA"}

func (m MshrState) String() string { return mshrNames[m] }

// DirState is the home directory state for the line.
type DirState uint8

const (
	DU  DirState = iota // unowned
	DS                  // shared
	DE                  // exclusive
	DBS                 // busy-shared (intervention outstanding)
	DBX                 // busy-exclusive (transfer outstanding)
	DD                  // delegated
)

var dirNames = [...]string{"U", "S", "E", "BS", "BX", "D"}

func (d DirState) String() string { return dirNames[d] }

// MsgType enumerates model messages (a compressed version of msg.Type).
type MsgType uint8

const (
	MGetS MsgType = iota
	MGetX
	MUpg
	MInval
	MInvAck
	MSRep    // shared reply (data)
	MXRep    // exclusive reply (data + ack count)
	MUpgAck  // upgrade ack (ack count)
	MInt     // intervention
	MSResp   // shared response from owner
	MSWB     // shared writeback to home
	MXferReq // ownership transfer request
	MXResp   // exclusive response from owner
	MXferAck // ownership transfer done
	MWB      // writeback
	MWBAck
	MNack
	MNackNH // "not home": drop the hint
	MDele   // delegate (directory handoff, doubles as exclusive reply)
	MUndele // undelegate (directory handback)
	MUndAck
	MHint // new-home hint
	MUpd  // speculative update
	numMsgTypes
)

var msgNames = [...]string{
	"GetS", "GetX", "Upg", "Inval", "InvAck", "SRep", "XRep", "UpgAck",
	"Int", "SResp", "SWB", "XferReq", "XResp", "XferAck", "WB", "WBAck",
	"Nack", "NackNH", "Dele", "Undele", "UndAck", "Hint", "Upd",
}

func (t MsgType) String() string { return msgNames[t] }

// Msg is one in-flight message. Val is the abstract data version. Line
// selects the cache line the message concerns; channels are shared by all
// lines, so messages for different lines order through one FIFO exactly as
// they do on the simulator's pairwise-ordered fabric.
type Msg struct {
	Type MsgType
	Line int8
	Req  int8 // requester the message serves
	Val  int8
	Acks int8
	Shr  uint8 // sharer bitmask (Dele/Undele)
	Fwd  MsgType
	// RTxn is the requester's transaction number, echoed by replies,
	// NACKs and invalidation acks (the simulator's msg.Message.Txn).
	RTxn int8
	// GEp is the ownership epoch an intervention or transfer refers to
	// (the simulator's msg.Message.GrantTxn): the RTxn of the request
	// that granted the current owner its copy.
	GEp int8
}

// Node is one processor/hub's per-line state in the model. The full model
// state holds Nodes×Lines of these (State.N, line-major).
type Node struct {
	Cache CacheState
	Val   int8
	Mshr  MshrState
	Acks  int8 // invalidation acks still owed to this requester
	// MVal is the data version parked in the MSHR (upgrade stash or an
	// early reply awaiting acks); MHave marks it valid.
	MVal  int8
	MHave bool
	// Inv marks a read whose reply must be used once and not cached.
	Inv bool
	// Hint: the node believes the line is delegated to Prod.
	Hint     bool
	HintProd int8
	// RAC holds an update-landed or surrogate copy (valid when >= 0).
	RACVal int8
	RACOk  bool

	// Txn is the transaction number of this line's outstanding request
	// (issue numbers are allocated per node across lines, so they stay
	// unique); GEp is the epoch under which an exclusive copy was
	// granted.
	Txn int8
	GEp int8

	// Delegated directory (valid when HasProd). Mirrors the producer
	// table entry: delegated state, sharer mask, update bookkeeping.
	HasProd bool
	PDir    DirState // DS or DE
	PShr    uint8
	PUpdSet uint8
	PArmed  bool // delayed intervention armed
	PInFlt  int8 // update pushes not yet delivered
}

// Home is the home node's directory view of one line.
type Home struct {
	Dir     DirState
	Shr     uint8
	Owner   int8
	Pend    int8
	PendX   bool
	PendFwd MsgType
	MemVal  int8
	// OwnTxn is the current ownership epoch (the grant's RTxn); PendTxn
	// is the pending requester's transaction while busy.
	OwnTxn  int8
	PendTxn int8
	// Detector state: last writer and the write-repeat counter (the
	// model uses a threshold of 2 to keep state spaces small).
	DetW   int8
	DetRep int8
	DetRd  bool // a foreign read happened since the last write
}

// Config parameterizes the model.
type Config struct {
	Nodes      int  // processors (the home directory lives beside node 0)
	Lines      int  // modeled cache lines, all homed at node 0 (0 = 1)
	MaxWrites  int  // bound on data versions, totaled across lines
	QueueDepth int  // per src->dst channel bound (shared by all lines)
	Delegation bool // enable the delegation + update extensions
	DetThresh  int8 // write-repeat saturation threshold (paper: 3)
	// MaxIssues bounds each node's total request issues across all lines
	// (including NACK-forced retries), which bounds transaction
	// numbers — the usual bounded-model-checking compromise for retry
	// protocols.
	MaxIssues int8
	// MaxTotalIssues, when positive, additionally bounds the sum of
	// issues across all nodes. The per-node bound alone multiplies the
	// interleaving space per extra line; the global bound keeps
	// multi-line configurations tractable while still letting any node
	// (and in particular a repeat producer) spend the shared budget.
	MaxTotalIssues int8

	// Scripts, when non-nil, switches the model to litmus mode: instead
	// of free processor actions, node i executes Scripts[i] in program
	// order on line 0 (reads record the observed version) and
	// spontaneous cache evictions are disabled. Used by Litmus.
	Scripts [][]LitOp
}

// LitOp is one scripted litmus operation.
type LitOp struct {
	Write bool
}

// lines resolves the line count (a zero value means one line, matching the
// single-location model of earlier revisions).
func (c Config) lines() int {
	if c.Lines <= 0 {
		return 1
	}
	return c.Lines
}

// DefaultConfig is the paper-style small configuration: 3 nodes, one line,
// bounded writes and retries, delegation and updates on.
func DefaultConfig() Config {
	return Config{Nodes: 3, MaxWrites: 2, QueueDepth: 2, Delegation: true,
		DetThresh: 2, MaxIssues: 3}
}

// DeepConfig is the ROADMAP's deep verification target: 4 nodes × 2 lines
// with delegation and speculative updates enabled simultaneously, both
// lines homed at node 0, a detector threshold low enough that delegation
// is reachable within the write bound, and a global issue budget that
// keeps the space explorable to a fixpoint (404,959 canonical states)
// inside the CI budget, race detector included. One step looser bounds
// (MaxTotalIssues: 5) exceed 9M canonical states; without the global
// budget the 3-node × 2-line space alone passes 26M.
func DeepConfig() Config {
	return Config{Nodes: 4, Lines: 2, MaxWrites: 2, QueueDepth: 2,
		Delegation: true, DetThresh: 1, MaxIssues: 2, MaxTotalIssues: 4}
}

// BenchConfig is the 3-node × 2-line throughput benchmark configuration
// recorded in BENCH_pr9.json: 1,140,851 raw states (285,914 canonical) —
// large enough that exploration runs for seconds, small enough that the
// serial map-based baseline finishes at every worker count comparison.
func BenchConfig() Config {
	return Config{Nodes: 3, Lines: 2, MaxWrites: 2, QueueDepth: 2,
		Delegation: true, DetThresh: 1, MaxIssues: 2, MaxTotalIssues: 4}
}

// State is one global model state. N holds per-line node state, line-major
// (line l, node i at N[l*Nodes+i]); H the per-line home directory; Iss the
// per-node issue budget consumed. Channels are per (src,dst) FIFO queues
// shared by every line, matching the pairwise-ordered fabric of
// internal/network (index src*Nodes+dst; the home shares node 0's hub).
type State struct {
	N      []Node // [line*Nodes + node]
	H      []Home // per line
	Iss    []int8 // per node, lines share the issue budget
	Ch     [][]Msg
	Latest []int8 // newest written version per line (checker bookkeeping)
	Writes int8   // total writes across lines

	// Litmus-mode bookkeeping: per-node program counters and the
	// versions each node's reads observed, in program order.
	PC  []int8
	Obs [][]int8
}

// node returns the per-line state of node i for line l.
func (s *State) node(l, i int) *Node { return &s.N[l*s.nodes()+i] }

// nodes returns the node count (derived, so State needs no Config).
func (s *State) nodes() int { return len(s.Iss) }

// NewState returns the initial state: lines unowned, memory holds
// version 0 of every line.
func NewState(cfg Config) *State {
	n, lines := cfg.Nodes, cfg.lines()
	if n > 8 {
		panic("mcheck: node masks are 8-bit; Nodes must be <= 8")
	}
	s := &State{
		N:      make([]Node, lines*n),
		H:      make([]Home, lines),
		Iss:    make([]int8, n),
		Ch:     make([][]Msg, n*n),
		Latest: make([]int8, lines),
	}
	for i := range s.N {
		s.N[i].HintProd = -1
	}
	for l := range s.H {
		s.H[l] = Home{Owner: -1, Pend: -1, DetW: -1}
	}
	if cfg.Scripts != nil {
		s.PC = make([]int8, n)
		s.Obs = make([][]int8, n)
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	ns := &State{
		N:      append([]Node(nil), s.N...),
		H:      append([]Home(nil), s.H...),
		Iss:    append([]int8(nil), s.Iss...),
		Ch:     make([][]Msg, len(s.Ch)),
		Latest: append([]int8(nil), s.Latest...),
		Writes: s.Writes,
	}
	for i, q := range s.Ch {
		if len(q) > 0 {
			ns.Ch[i] = append([]Msg(nil), q...)
		}
	}
	if s.PC != nil {
		ns.PC = append([]int8(nil), s.PC...)
		ns.Obs = make([][]int8, len(s.Obs))
		for i, o := range s.Obs {
			if len(o) > 0 {
				ns.Obs[i] = append([]int8(nil), o...)
			}
		}
	}
	return ns
}

// Key returns the binary state encoding as a string, for map-keyed visited
// sets (the reference serial checker and tests; the parallel engine works
// on the raw canonical bytes instead).
func (s *State) Key() string { return string(s.Encode(nil)) }

// CanonicalKey is Key modulo the symmetry of the non-home nodes and of the
// identically-configured lines: in the generic (scriptless) model every
// node except the home behaves identically and all lines are homed at
// node 0, so states differing only by a permutation of nodes 1..N-1 and/or
// of lines are equivalent. The canonical key is the lexicographically
// smallest encoding over the full permutation group (node counts are tiny,
// so enumerating it is cheap). Litmus mode has distinguished scripts and
// must use Key.
func (s *State) CanonicalKey() string {
	if s.PC != nil {
		return s.Key()
	}
	c := newCanonicalizer(s.nodes(), len(s.H), false)
	return string(c.canonical(s))
}

// String renders the state for counterexample traces.
func (s *State) String() string {
	var b strings.Builder
	n := s.nodes()
	for l := range s.H {
		if len(s.H) > 1 {
			fmt.Fprintf(&b, "L%d: ", l)
		}
		for i := 0; i < n; i++ {
			nd := s.node(l, i)
			fmt.Fprintf(&b, "n%d[%s v%d %s", i, nd.Cache, nd.Val, nd.Mshr)
			if nd.RACOk {
				fmt.Fprintf(&b, " rac:v%d", nd.RACVal)
			}
			if nd.HasProd {
				fmt.Fprintf(&b, " prod:%s shr=%b upd=%b inflt=%d", nd.PDir, nd.PShr, nd.PUpdSet, nd.PInFlt)
			}
			b.WriteString("] ")
		}
		h := &s.H[l]
		fmt.Fprintf(&b, "home[%s shr=%b own=%d mem=v%d] latest=v%d ", h.Dir, h.Shr, h.Owner, h.MemVal, s.Latest[l])
	}
	for i, q := range s.Ch {
		for _, m := range q {
			if len(s.H) > 1 {
				fmt.Fprintf(&b, " {L%d %d->%d %s v%d}", m.Line, i/n, i%n, m.Type, m.Val)
			} else {
				fmt.Fprintf(&b, " {%d->%d %s v%d}", i/n, i%n, m.Type, m.Val)
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// send enqueues a message on the src->dst channel; it reports false when
// the channel bound would be exceeded (the rule is then disabled).
func (s *State) send(src, dst int, m Msg, depth int) bool {
	i := src*s.nodes() + dst
	if len(s.Ch[i]) >= depth {
		return false
	}
	s.Ch[i] = append(s.Ch[i], m)
	return true
}

func bit(n int8) uint8 { return 1 << uint8(n) }

func popcount(x uint8) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
