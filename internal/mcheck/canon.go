package mcheck

// Canonical state encoding: a compact, hash-friendly byte serialization of
// the full model state — per-line node records, per-line directory, issue
// budgets, channel contents, litmus bookkeeping — that round-trips through
// Decode, so the exploration frontier can hold encoded bytes instead of
// live *State values (about 4× smaller and allocation-flat).
//
// Symmetry reduction happens at the encoding layer: every node except the
// home (node 0) behaves identically in the generic model, and all lines
// are identically configured and homed at node 0, so the symmetry group is
// Sym(nodes 1..N-1) × Sym(lines). A state's canonical form is the
// lexicographically smallest encoding over that group, computed by
// encoding under each permutation directly — ids, masks and channel
// indices are renamed on the fly, no permuted State is ever materialized.
// The group is tiny at model-checking scale (6 node perms × 2 line perms
// for the 4-node × 2-line deep configuration), and states in delegated
// configurations — where one node is distinguished as producer — reject
// most non-identity permutations within the first few bytes of the
// comparison.

// boolByte packs booleans into flag bits.
func boolByte(v bool, shift uint) byte {
	if v {
		return 1 << shift
	}
	return 0
}

// Encode appends the state's identity-permutation encoding to buf and
// returns the extended slice. The encoding is complete: Decode inverts it.
func (s *State) Encode(buf []byte) []byte {
	return encodePerm(buf, s, identityPerm(s.nodes()), identityPerm(len(s.H)))
}

// identityPerms caches small identity permutations.
var identityPerms = [9][]int{
	{}, {0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}, {0, 1, 2, 3, 4},
	{0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5, 6}, {0, 1, 2, 3, 4, 5, 6, 7},
}

func identityPerm(n int) []int {
	if n < len(identityPerms) {
		return identityPerms[n]
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// encodePerm appends the encoding of s under a node permutation p and line
// permutation lp (both old-index → new-index; p[0] must be 0) to buf. The
// encoding walks the state in *new* index order so that two states in the
// same orbit produce byte-identical output under the right permutations.
func encodePerm(buf []byte, s *State, p, lp []int) []byte {
	n := s.nodes()
	ren := func(id int8) int8 {
		if id < 0 {
			return id
		}
		return int8(p[id])
	}
	renMask := func(m uint8) uint8 {
		if m == 0 {
			return 0
		}
		var out uint8
		for i := 0; i < n; i++ {
			if m&bit(int8(i)) != 0 {
				out |= bit(int8(p[i]))
			}
		}
		return out
	}

	for nl := range s.H {
		ol := nl
		if len(lp) > 1 {
			ol = lineIndexUnder(lp, nl)
		}
		for nj := 0; nj < n; nj++ {
			nd := s.node(ol, nodeIndexUnder(p, nj))
			buf = append(buf,
				byte(nd.Cache), byte(nd.Val), byte(nd.Mshr), byte(nd.Acks), byte(nd.MVal),
				boolByte(nd.MHave, 0)|boolByte(nd.Inv, 1)|boolByte(nd.Hint, 2)|
					boolByte(nd.RACOk, 3)|boolByte(nd.HasProd, 4)|boolByte(nd.PArmed, 5),
				byte(ren(nd.HintProd)), byte(nd.RACVal), byte(nd.Txn), byte(nd.GEp),
				byte(nd.PDir), renMask(nd.PShr), renMask(nd.PUpdSet), byte(nd.PInFlt))
		}
		h := &s.H[ol]
		buf = append(buf, byte(h.Dir), renMask(h.Shr), byte(ren(h.Owner)), byte(ren(h.Pend)),
			boolByte(h.PendX, 0)|boolByte(h.DetRd, 1), byte(h.PendFwd), byte(h.MemVal),
			byte(h.OwnTxn), byte(h.PendTxn), byte(ren(h.DetW)), byte(h.DetRep))
		buf = append(buf, byte(s.Latest[ol]))
	}
	for nj := 0; nj < n; nj++ {
		buf = append(buf, byte(s.Iss[nodeIndexUnder(p, nj)]))
	}
	buf = append(buf, byte(s.Writes))
	for nsrc := 0; nsrc < n; nsrc++ {
		osrc := nodeIndexUnder(p, nsrc)
		for ndst := 0; ndst < n; ndst++ {
			q := s.Ch[osrc*n+nodeIndexUnder(p, ndst)]
			buf = append(buf, byte(len(q)))
			for _, m := range q {
				val := m.Val
				if m.Type == MHint {
					val = ren(val) // Hint reuses Val as a node id
				}
				line := int8(m.Line)
				if len(lp) > 1 {
					line = int8(lp[m.Line])
				}
				buf = append(buf, byte(m.Type), byte(line), byte(ren(m.Req)), byte(val),
					byte(m.Acks), renMask(m.Shr), byte(m.Fwd), byte(m.RTxn), byte(m.GEp))
			}
		}
	}
	if s.PC != nil {
		for i := range s.PC {
			buf = append(buf, byte(s.PC[i]), byte(len(s.Obs[i])))
			for _, o := range s.Obs[i] {
				buf = append(buf, byte(o))
			}
		}
	}
	return buf
}

// nodeIndexUnder returns the old index that permutation p maps to new
// index nj. Permutations are tiny, so a linear scan beats keeping inverse
// arrays alongside every permutation.
func nodeIndexUnder(p []int, nj int) int {
	for oi, v := range p {
		if v == nj {
			return oi
		}
	}
	panic("mcheck: not a permutation")
}

func lineIndexUnder(lp []int, nl int) int { return nodeIndexUnder(lp, nl) }

// DecodeState reconstructs a State from its identity encoding. cfg must be
// the configuration the state was encoded under (it sizes every array and
// selects litmus mode).
func DecodeState(cfg Config, data []byte) *State {
	n, lines := cfg.Nodes, cfg.lines()
	s := &State{
		N:      make([]Node, lines*n),
		H:      make([]Home, lines),
		Iss:    make([]int8, n),
		Ch:     make([][]Msg, n*n),
		Latest: make([]int8, lines),
	}
	k := 0
	next := func() byte { b := data[k]; k++; return b }
	for l := 0; l < lines; l++ {
		for i := 0; i < n; i++ {
			nd := s.node(l, i)
			nd.Cache = CacheState(next())
			nd.Val = int8(next())
			nd.Mshr = MshrState(next())
			nd.Acks = int8(next())
			nd.MVal = int8(next())
			fl := next()
			nd.MHave = fl&1 != 0
			nd.Inv = fl&2 != 0
			nd.Hint = fl&4 != 0
			nd.RACOk = fl&8 != 0
			nd.HasProd = fl&16 != 0
			nd.PArmed = fl&32 != 0
			nd.HintProd = int8(next())
			nd.RACVal = int8(next())
			nd.Txn = int8(next())
			nd.GEp = int8(next())
			nd.PDir = DirState(next())
			nd.PShr = next()
			nd.PUpdSet = next()
			nd.PInFlt = int8(next())
		}
		h := &s.H[l]
		h.Dir = DirState(next())
		h.Shr = next()
		h.Owner = int8(next())
		h.Pend = int8(next())
		fl := next()
		h.PendX = fl&1 != 0
		h.DetRd = fl&2 != 0
		h.PendFwd = MsgType(next())
		h.MemVal = int8(next())
		h.OwnTxn = int8(next())
		h.PendTxn = int8(next())
		h.DetW = int8(next())
		h.DetRep = int8(next())
		s.Latest[l] = int8(next())
	}
	for i := 0; i < n; i++ {
		s.Iss[i] = int8(next())
	}
	s.Writes = int8(next())
	for ci := 0; ci < n*n; ci++ {
		qlen := int(next())
		if qlen == 0 {
			continue
		}
		q := make([]Msg, qlen)
		for mi := range q {
			m := &q[mi]
			m.Type = MsgType(next())
			m.Line = int8(next())
			m.Req = int8(next())
			m.Val = int8(next())
			m.Acks = int8(next())
			m.Shr = next()
			m.Fwd = MsgType(next())
			m.RTxn = int8(next())
			m.GEp = int8(next())
		}
		s.Ch[ci] = q
	}
	if cfg.Scripts != nil {
		s.PC = make([]int8, n)
		s.Obs = make([][]int8, n)
		for i := 0; i < n; i++ {
			s.PC[i] = int8(next())
			olen := int(next())
			if olen > 0 {
				o := make([]int8, olen)
				for j := range o {
					o[j] = int8(next())
				}
				s.Obs[i] = o
			}
		}
	}
	if k != len(data) {
		panic("mcheck: trailing bytes in state encoding")
	}
	return s
}

// canonicalizer computes canonical encodings. One instance per worker; the
// scratch buffers are reused across states so the hot path allocates only
// when an encoding outgrows its buffer.
type canonicalizer struct {
	perms  [][]int // node permutations (p[0] = 0), identity first
	lperms [][]int // line permutations, identity first
	buf    []byte
	best   []byte
}

// newCanonicalizer builds the permutation group for n nodes and `lines`
// lines. Litmus mode (distinguished scripts) collapses the group to the
// identity: canonical == plain encoding.
func newCanonicalizer(n, lines int, litmus bool) *canonicalizer {
	c := &canonicalizer{}
	if litmus {
		c.perms = [][]int{identityPerm(n)}
		c.lperms = [][]int{identityPerm(lines)}
		return c
	}
	c.perms = homeFixedPerms(n)
	c.lperms = allPerms(lines)
	return c
}

// homeFixedPerms enumerates permutations of 0..n-1 that fix 0, identity
// first.
func homeFixedPerms(n int) [][]int {
	rest := allPerms(n - 1)
	out := make([][]int, len(rest))
	for i, r := range rest {
		p := make([]int, n)
		for j, v := range r {
			p[j+1] = v + 1
		}
		out[i] = p
	}
	return out
}

// allPerms enumerates permutations of 0..n-1, identity first.
func allPerms(n int) [][]int {
	if n <= 1 {
		return [][]int{identityPerm(n)}
	}
	var out [][]int
	p := identityPerm(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), p...))
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	// The recursion yields identity first by construction (i == k on the
	// first branch at every level).
	return out
}

// canonical returns the lexicographically smallest encoding of s over the
// symmetry group. The returned slice is owned by the canonicalizer and
// valid until the next call.
func (c *canonicalizer) canonical(s *State) []byte {
	c.best = encodePerm(c.best[:0], s, c.perms[0], c.lperms[0])
	if len(c.perms) == 1 && len(c.lperms) == 1 {
		return c.best
	}
	for pi, p := range c.perms {
		for li, lp := range c.lperms {
			if pi == 0 && li == 0 {
				continue
			}
			c.buf = encodePerm(c.buf[:0], s, p, lp)
			if lexLess(c.buf, c.best) {
				c.buf, c.best = c.best, c.buf
			}
		}
	}
	return c.best
}

// lexLess reports a < b. Encodings of one configuration always have equal
// length, so the byte compare settles it.
func lexLess(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// fpOffset is the fingerprint of the all-zero hash, remapped so the
// visited table can use 0 as its empty-slot sentinel.
const fpOffset = 0x9E3779B97F4A7C15

// fingerprint hashes an encoding to the 64-bit key the visited table
// stores (FNV-1a). Two states colliding at 64 bits would be merged
// silently — the standard hash-compaction trade — but the collision
// probability at model-checking scale (~10^7 states) is below 10^-5, and
// because the hash is deterministic, serial and parallel runs agree
// exactly even in that event.
func fingerprint(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	if h == 0 {
		return fpOffset
	}
	return h
}
