package mcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures the parallel reachability engine.
type Options struct {
	// Workers is the exploration worker count; 0 means GOMAXPROCS.
	Workers int
	// MaxStates bounds the search as a safety net (0 = unbounded);
	// exceeding it panics, since a truncated verification proves nothing.
	MaxStates int
	// NoCanon disables symmetry reduction so state counts are comparable
	// with the serial reference checker (oracle tests, throughput
	// baselines). Litmus mode always runs without reduction — scripts
	// distinguish the nodes.
	NoCanon bool
}

// Explore runs the parallel reachability engine at GOMAXPROCS workers with
// symmetry reduction on — the production entry point, same contract as the
// old serial Explore.
func Explore(cfg Config, maxStates int) *Result {
	return ExploreOpts(cfg, Options{MaxStates: maxStates})
}

// maxReported bounds how many violations/deadlocks a Result carries (the
// lexicographically smallest canonical ones win).
const maxReported = 8

// ExploreOpts runs a work-stealing parallel BFS over the model's state
// graph: per-worker frontier deques of canonical state encodings
// (decode-on-pop), batched probes into the sharded visited table, and an
// atomic in-flight counter for termination.
//
// Determinism: the reachable set modulo symmetry, and with it every
// verdict-bearing number (States, Transitions, Delegated, MaxQueue,
// DedupHits, violation and deadlock sets), is a property of the state
// graph, not of scheduling — any worker count reports identical values.
// Unlike the serial checker, the engine does not stop at the first few
// violations: violating states are not expanded, but the exploration runs
// to its fixpoint and then reports the lexicographically smallest
// canonical violations, so the chosen counterexample is stable across
// worker counts too. Only PeakFrontier is schedule-dependent.
func ExploreOpts(cfg Config, opt Options) *Result {
	res, _ := exploreFull(cfg, opt)
	return res
}

// exploreFull is ExploreOpts plus, in litmus mode, the sorted canonical
// encodings of every terminal state (LitmusOpts checks their observation
// vectors in deterministic order).
func exploreFull(cfg Config, opt Options) (*Result, [][]byte) {
	nw := opt.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	identity := opt.NoCanon || cfg.Scripts != nil
	e := &engine{
		cfg:   cfg,
		opt:   opt,
		table: newVisitedTable(4 * nw),
	}
	e.workers = make([]*eworker, nw)
	for i := range e.workers {
		e.workers[i] = &eworker{
			id:    i,
			canon: newCanonicalizer(cfg.Nodes, cfg.lines(), identity),
		}
	}

	init := NewState(cfg)
	w0 := e.workers[0]
	enc := append([]byte(nil), w0.canon.canonical(init)...)
	fresh, seen := []bool{false}, []bool{false}
	e.table.insertBatch([]uint64{fingerprint(enc)}, fresh, seen)
	e.pending.Store(1)
	w0.push(enc)

	var stopMon chan struct{}
	if Progress != nil {
		stopMon = make(chan struct{})
		go e.monitor(stopMon)
	}

	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *eworker) {
			defer wg.Done()
			e.run(w)
		}(w)
	}
	wg.Wait()
	if stopMon != nil {
		close(stopMon)
	}

	res := &Result{Workers: nw}
	var viols, dead []violationRec
	var terms [][]byte
	for _, w := range e.workers {
		res.States += w.states
		res.Transitions += w.transitions
		res.DedupHits += w.dedup
		res.Delegated += w.delegated
		if w.maxQueue > res.MaxQueue {
			res.MaxQueue = w.maxQueue
		}
		if w.peak > res.PeakFrontier {
			res.PeakFrontier = w.peak
		}
		viols = append(viols, w.violations...)
		dead = append(dead, w.deadlocks...)
		terms = append(terms, w.terminals...)
	}
	if e.exceeded.Load() {
		panic(fmt.Sprintf("mcheck: state bound %d exceeded (states=%d)", opt.MaxStates, res.States))
	}
	res.Violations = e.report(viols)
	res.Deadlocks = e.report(dead)
	sort.Slice(terms, func(i, j int) bool { return bytes.Compare(terms[i], terms[j]) < 0 })
	return res, terms
}

// violationRec is a violation before decoding: the invariant name and the
// state's canonical encoding (which doubles as the deterministic tiebreak).
type violationRec struct {
	inv string
	enc []byte
}

// report sorts violation records by canonical encoding, keeps the smallest
// maxReported, and decodes them into Violations. The ordering makes
// counterexample selection independent of which worker found what first.
func (e *engine) report(recs []violationRec) []*Violation {
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].enc, recs[j].enc) < 0 })
	if len(recs) > maxReported {
		recs = recs[:maxReported]
	}
	out := make([]*Violation, len(recs))
	for i, r := range recs {
		out[i] = &Violation{Invariant: r.inv, State: DecodeState(e.cfg, r.enc)}
	}
	return out
}

type engine struct {
	cfg      Config
	opt      Options
	table    *visitedTable
	pending  atomic.Int64 // states inserted but not yet expanded
	states   atomic.Int64 // expanded, flushed in batches from worker locals
	exceeded atomic.Bool
	workers  []*eworker
}

// eworker is one exploration worker: a mutex-guarded frontier deque (owner
// pops newest from the tail, thieves take a batch from the head), a
// per-worker canonicalizer and scratch, and local stat counters merged
// after the run.
type eworker struct {
	mu sync.Mutex
	q  [][]byte

	id        int
	canon     *canonicalizer
	arena     []byte
	flat      []byte
	offs      []int
	fps       []uint64
	fresh     []bool
	seen      []bool
	unflushed int

	states      int
	transitions int
	dedup       int
	delegated   int
	maxQueue    int
	peak        int
	violations  []violationRec
	deadlocks   []violationRec
	terminals   [][]byte // litmus mode: terminal-state encodings
}

func (w *eworker) push(enc []byte) {
	w.mu.Lock()
	w.q = append(w.q, enc)
	if len(w.q) > w.peak {
		w.peak = len(w.q)
	}
	w.mu.Unlock()
}

func (w *eworker) pop() []byte {
	w.mu.Lock()
	n := len(w.q)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	enc := w.q[n-1]
	w.q[n-1] = nil
	w.q = w.q[:n-1]
	w.mu.Unlock()
	return enc
}

// stealInto moves up to half of v's frontier (head end, oldest first) into
// w and returns one encoding to expand, or nil.
func (w *eworker) stealInto(v *eworker) []byte {
	v.mu.Lock()
	n := len(v.q)
	if n == 0 {
		v.mu.Unlock()
		return nil
	}
	take := (n + 1) / 2
	if take > 256 {
		take = 256
	}
	batch := make([][]byte, take)
	copy(batch, v.q[:take])
	rest := copy(v.q, v.q[take:])
	for i := rest; i < n; i++ {
		v.q[i] = nil
	}
	v.q = v.q[:rest]
	v.mu.Unlock()

	enc := batch[0]
	if len(batch) > 1 {
		w.mu.Lock()
		w.q = append(w.q, batch[1:]...)
		if len(w.q) > w.peak {
			w.peak = len(w.q)
		}
		w.mu.Unlock()
	}
	return enc
}

// arenaCopy copies enc into the worker's chunked arena: frontier
// encodings are small and extremely numerous, so individual allocations
// would dominate; the arena amortizes them to one per 64 KiB.
func (w *eworker) arenaCopy(enc []byte) []byte {
	if len(w.arena) < len(enc) {
		sz := 1 << 16
		if sz < len(enc) {
			sz = len(enc)
		}
		w.arena = make([]byte, sz)
	}
	n := copy(w.arena, enc)
	out := w.arena[:n:n]
	w.arena = w.arena[n:]
	return out
}

func (e *engine) run(w *eworker) {
	nw := len(e.workers)
	idleSpins := 0
	for {
		enc := w.pop()
		if enc == nil {
			// Steal from the next workers round-robin.
			for k := 1; k < nw && enc == nil; k++ {
				enc = w.stealInto(e.workers[(w.id+k)%nw])
			}
		}
		if enc == nil {
			if e.pending.Load() == 0 || e.exceeded.Load() {
				e.states.Add(int64(w.unflushed))
				w.unflushed = 0
				return
			}
			idleSpins++
			if idleSpins > 64 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idleSpins = 0
		e.expand(w, enc)
	}
}

func (e *engine) expand(w *eworker, enc []byte) {
	st := DecodeState(e.cfg, enc)
	w.states++
	w.unflushed++
	if w.unflushed >= 1024 {
		total := e.states.Add(int64(w.unflushed))
		w.unflushed = 0
		if e.opt.MaxStates > 0 && int(total) > e.opt.MaxStates {
			e.exceeded.Store(true)
		}
	}

	if inv := CheckInvariants(e.cfg, st); inv != "" {
		w.violations = append(w.violations, violationRec{inv, enc})
		e.pending.Add(-1)
		return
	}
	for _, q := range st.Ch {
		if len(q) > w.maxQueue {
			w.maxQueue = len(q)
		}
	}
	if delegatedAnywhere(st) {
		w.delegated++
	}

	succs := Successors(e.cfg, st)
	w.transitions += len(succs)
	if len(succs) == 0 {
		if e.cfg.Scripts != nil {
			w.terminals = append(w.terminals, enc)
		}
		if !quiescent(st) {
			w.deadlocks = append(w.deadlocks, violationRec{"deadlock-freedom", enc})
		}
		e.pending.Add(-1)
		return
	}

	// Canonicalize every successor into one flat scratch buffer, then
	// probe the visited table in a single batched call.
	w.flat = w.flat[:0]
	w.offs = w.offs[:0]
	w.fps = w.fps[:0]
	for _, sc := range succs {
		c := w.canon.canonical(sc.State)
		w.offs = append(w.offs, len(w.flat))
		w.flat = append(w.flat, c...)
		w.fps = append(w.fps, fingerprint(c))
	}
	w.offs = append(w.offs, len(w.flat))
	for len(w.fresh) < len(w.fps) {
		w.fresh = append(w.fresh, false)
		w.seen = append(w.seen, false)
	}
	e.table.insertBatch(w.fps, w.fresh, w.seen)

	for i := range w.fps {
		if !w.fresh[i] {
			w.dedup++
			continue
		}
		child := w.arenaCopy(w.flat[w.offs[i]:w.offs[i+1]])
		// Increment before push: pending only reaches zero when every
		// enqueued state has been fully expanded.
		e.pending.Add(1)
		w.push(child)
	}
	e.pending.Add(-1)
}

// monitor feeds the package Progress hook while workers run.
func (e *engine) monitor(stop chan struct{}) {
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			Progress(int(e.states.Load()), int(e.pending.Load()), e.table.size())
		}
	}
}
