package mcheck

import (
	"sync"
	"sync/atomic"
)

// visitedTable is the exploration's dedup set: a sharded, open-addressed
// hash table of 64-bit state fingerprints, following the internal/addrtab
// idiom (Fibonacci-hash probe start, linear probing, 3/4-load growth). It
// replaces the map[string]struct{} visited set of the serial checker:
// probes touch a flat uint64 array — no key allocation, no string
// hashing — and sharding by fingerprint lets workers probe disjoint
// regions without contending on one lock.
//
// Storing fingerprints instead of full encodings is hash compaction: two
// distinct states colliding at 64 bits would be merged silently. At
// model-checking scale (~10^7 states) the collision probability is below
// 10^-5, and because fingerprints are deterministic the serial and
// parallel engines agree exactly even then.
type visitedTable struct {
	shards   []visitedShard
	mask     uint64
	inserted atomic.Int64
}

type visitedShard struct {
	mu    sync.Mutex
	keys  []uint64 // 0 = empty
	count int
	// Pad shards to their own cache lines; the mutexes are hot.
	_ [40]byte
}

const visitedFib = 0x9E3779B97F4A7C15

// newVisitedTable sizes the table with `shards` rounded up to a power of
// two. Shard selection uses the top fingerprint bits, probe position the
// low bits, so the two are independent.
func newVisitedTable(shards int) *visitedTable {
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &visitedTable{shards: make([]visitedShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].keys = make([]uint64, 1024)
	}
	return t
}

func (t *visitedTable) shardOf(fp uint64) *visitedShard {
	return &t.shards[(fp>>48)&t.mask]
}

// insertBatch probes-and-inserts a batch of fingerprints, writing
// fresh[i] = true when fps[i] was not already present. The batch is
// processed shard by shard — each shard's lock is taken at most once per
// call — using seen as scratch (len(seen) >= len(fps), all false on
// entry; restored to false on return).
func (t *visitedTable) insertBatch(fps []uint64, fresh, seen []bool) {
	added := 0
	for i := range fps {
		if seen[i] {
			continue
		}
		sh := t.shardOf(fps[i])
		sh.mu.Lock()
		for j := i; j < len(fps); j++ {
			if !seen[j] && t.shardOf(fps[j]) == sh {
				seen[j] = true
				fresh[j] = sh.insert(fps[j])
				if fresh[j] {
					added++
				}
			}
		}
		sh.mu.Unlock()
	}
	for i := range seen[:len(fps)] {
		seen[i] = false
	}
	if added > 0 {
		t.inserted.Add(int64(added))
	}
}

// insert adds fp (never 0; fingerprint remaps 0) and reports whether it
// was new. Caller holds the shard lock.
func (sh *visitedShard) insert(fp uint64) bool {
	if sh.count >= len(sh.keys)/4*3 {
		sh.grow()
	}
	mask := uint64(len(sh.keys) - 1)
	i := (fp * visitedFib) & mask
	for {
		switch sh.keys[i] {
		case 0:
			sh.keys[i] = fp
			sh.count++
			return true
		case fp:
			return false
		}
		i = (i + 1) & mask
	}
}

func (sh *visitedShard) grow() {
	old := sh.keys
	sh.keys = make([]uint64, len(old)*2)
	mask := uint64(len(sh.keys) - 1)
	for _, fp := range old {
		if fp == 0 {
			continue
		}
		i := (fp * visitedFib) & mask
		for sh.keys[i] != 0 {
			i = (i + 1) & mask
		}
		sh.keys[i] = fp
	}
}

// size returns the total entries inserted so far (safe to read while
// workers run).
func (t *visitedTable) size() int { return int(t.inserted.Load()) }
