package mcheck

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// TestEncodeDecodeRoundTrip drives the model a few steps and checks the
// canonical byte encoding inverts exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), DeepConfig()} {
		st := NewState(cfg)
		for depth := 0; depth < 6; depth++ {
			enc := st.Encode(nil)
			rt := DecodeState(cfg, enc)
			if !bytes.Equal(rt.Encode(nil), enc) {
				t.Fatalf("round-trip mismatch at depth %d: %s vs %s", depth, st, rt)
			}
			if rt.String() != st.String() {
				t.Fatalf("decoded state renders differently: %s vs %s", rt, st)
			}
			succs := Successors(cfg, st)
			if len(succs) == 0 {
				break
			}
			st = succs[depth%len(succs)].State
		}
	}
}

// TestEncodeDecodeRoundTripLitmus covers the PC/Obs tail of the encoding.
func TestEncodeDecodeRoundTripLitmus(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scripts = StandardLitmusShapes()[0].Scripts
	st := NewState(cfg)
	for depth := 0; depth < 8; depth++ {
		enc := st.Encode(nil)
		rt := DecodeState(cfg, enc)
		if !bytes.Equal(rt.Encode(nil), enc) {
			t.Fatalf("litmus round-trip mismatch at depth %d", depth)
		}
		if !reflect.DeepEqual(rt.PC, st.PC) || !reflect.DeepEqual(rt.Obs, st.Obs) {
			t.Fatalf("litmus bookkeeping mismatch: PC %v/%v Obs %v/%v", rt.PC, st.PC, rt.Obs, st.Obs)
		}
		succs := Successors(cfg, st)
		if len(succs) == 0 {
			break
		}
		st = succs[depth%len(succs)].State
	}
}

// TestCanonicalLineSymmetry: two states differing only by a line swap must
// canonicalize identically.
func TestCanonicalLineSymmetry(t *testing.T) {
	cfg := BenchConfig()
	a := NewState(cfg)
	a.node(0, 1).Cache = CE
	a.node(0, 1).Val = 1
	a.H[0].Dir = DE
	a.H[0].Owner = 1
	a.Latest[0] = 1

	b := NewState(cfg)
	b.node(1, 1).Cache = CE
	b.node(1, 1).Val = 1
	b.H[1].Dir = DE
	b.H[1].Owner = 1
	b.Latest[1] = 1

	if a.Key() == b.Key() {
		t.Fatal("plain keys should differ")
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("line-symmetric states have different canonical keys")
	}
}

// TestParallelMatchesSerial: with symmetry reduction off, the parallel
// engine must reproduce the serial map-based checker's numbers exactly —
// same reachable set, transitions, dedup hits, delegation count, queue
// peak — at every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		// 2 nodes, delegation reachable: the delegated paths at a size
		// -race can afford.
		{Nodes: 2, MaxWrites: 2, QueueDepth: 2, Delegation: true, DetThresh: 1, MaxIssues: 2},
		// 3 nodes × 2 lines: cross-line channel interleavings.
		{Nodes: 3, Lines: 2, MaxWrites: 2, QueueDepth: 2, Delegation: true, DetThresh: 1, MaxIssues: 1},
	} {
		want := ExploreSerial(cfg, 0)
		for _, workers := range []int{1, 2, 4} {
			got := ExploreOpts(cfg, Options{Workers: workers, NoCanon: true})
			if got.States != want.States || got.Transitions != want.Transitions ||
				got.DedupHits != want.DedupHits || got.Delegated != want.Delegated ||
				got.MaxQueue != want.MaxQueue || !got.Ok() {
				t.Fatalf("workers=%d: %+v != serial %+v", workers, got, want)
			}
		}
	}
}

// TestWorkerCountInvariance: the canonical engine's verdict-bearing
// numbers are identical at any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	cfg := Config{Nodes: 2, Lines: 2, MaxWrites: 2, QueueDepth: 2,
		Delegation: true, DetThresh: 1, MaxIssues: 2}
	var base *Result
	for _, workers := range []int{1, 2, 3, 8} {
		r := ExploreOpts(cfg, Options{Workers: workers})
		if base == nil {
			base = r
			continue
		}
		if r.States != base.States || r.Transitions != base.Transitions ||
			r.DedupHits != base.DedupHits || r.Delegated != base.Delegated ||
			r.MaxQueue != base.MaxQueue ||
			len(r.Violations) != len(base.Violations) || len(r.Deadlocks) != len(base.Deadlocks) {
			t.Fatalf("workers=%d: %+v != workers=%d: %+v", workers, r, base.Workers, base)
		}
	}
}

// TestCanonicalReduction: symmetry reduction shrinks the state count
// without changing the verdict.
func TestCanonicalReduction(t *testing.T) {
	cfg := Config{Nodes: 3, Lines: 2, MaxWrites: 2, QueueDepth: 2,
		Delegation: true, DetThresh: 1, MaxIssues: 1}
	full := ExploreOpts(cfg, Options{NoCanon: true})
	red := ExploreOpts(cfg, Options{})
	if !full.Ok() || !red.Ok() {
		t.Fatalf("verdicts differ: full %v red %v", full.Ok(), red.Ok())
	}
	if red.States >= full.States {
		t.Fatalf("no reduction: canonical %d vs full %d", red.States, full.States)
	}
	t.Logf("reduction: %d -> %d states (%.2fx)", full.States, red.States,
		float64(full.States)/float64(red.States))
}

// TestDeterministicLitmusFailureSelection forces a litmus failure (a
// check that rejects outcomes reachable in some interleavings) and
// requires the reported counterexample — down to the state embedded in
// the error text — to be identical across worker counts.
func TestDeterministicLitmusFailureSelection(t *testing.T) {
	shape := StandardLitmusShapes()[0] // CoRR
	reject := func(obs [][]int8) error {
		// Reject any outcome where node 2 saw version 2: guaranteed to
		// occur in some interleavings, so the suite "fails"
		// deterministically.
		for _, reads := range obs {
			for _, v := range reads {
				if v == 2 {
					return fmt.Errorf("saw v2")
				}
			}
		}
		return nil
	}
	var msgs []string
	for _, workers := range []int{1, 3} {
		cfg := DefaultConfig()
		cfg.MaxWrites = 3
		cfg.MaxIssues = 6
		cfg.Scripts = shape.Scripts
		res := LitmusOpts("corr-reject", cfg, reject, Options{Workers: workers})
		if res.Err == nil {
			t.Fatal("expected a rejected outcome")
		}
		msgs = append(msgs, res.Err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("failure selection depends on workers:\n  w1: %s\n  wN: %s", msgs[0], msgs[1])
	}
}

// TestLitmusWorkersEquivalent runs the standard litmus suite at workers=1
// and workers=4 and requires identical verdicts, state counts and outcome
// counts.
func TestLitmusWorkersEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("litmus suite is slow")
	}
	for _, sh := range StandardLitmusShapes() {
		cfg := DefaultConfig()
		cfg.MaxWrites = 2
		cfg.MaxIssues = 4
		cfg.Scripts = sh.Scripts
		one := LitmusOpts(sh.Name, cfg, monotonic, Options{Workers: 1})
		many := LitmusOpts(sh.Name, cfg, monotonic, Options{Workers: 4})
		if one.States != many.States || one.Outcomes != many.Outcomes ||
			(one.Err == nil) != (many.Err == nil) {
			t.Fatalf("%s: workers=1 %+v != workers=4 %+v", sh.Name, one, many)
		}
		if one.Err != nil && one.Err.Error() != many.Err.Error() {
			t.Fatalf("%s: error text differs:\n  %s\n  %s", sh.Name, one.Err, many.Err)
		}
	}
}

// TestVisitedTableBasics exercises insert/dup/grow paths directly.
func TestVisitedTableBasics(t *testing.T) {
	tab := newVisitedTable(4)
	fps := make([]uint64, 0, 4096)
	for i := 1; i <= 4096; i++ {
		fps = append(fps, fingerprint([]byte(fmt.Sprint(i))))
	}
	fresh := make([]bool, len(fps))
	seen := make([]bool, len(fps))
	tab.insertBatch(fps, fresh, seen)
	for i, f := range fresh {
		if !f {
			t.Fatalf("entry %d reported duplicate on first insert", i)
		}
	}
	if tab.size() != len(fps) {
		t.Fatalf("size %d != %d", tab.size(), len(fps))
	}
	tab.insertBatch(fps, fresh, seen)
	for i, f := range fresh {
		if f {
			t.Fatalf("entry %d reported fresh on re-insert", i)
		}
	}
	if tab.size() != len(fps) {
		t.Fatalf("size grew on duplicates: %d", tab.size())
	}
}

// BenchmarkExploreSerial / BenchmarkExploreParallel: the BENCH_pr9
// throughput pair on the benchmark configuration (see cmd/pccbench
// -mcheck for the recorded stats line).
func BenchmarkExploreSerialMap(b *testing.B) {
	cfg := small()
	for i := 0; i < b.N; i++ {
		if r := ExploreSerial(cfg, 0); !r.Ok() {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkExploreEngineNoCanon(b *testing.B) {
	cfg := small()
	for i := 0; i < b.N; i++ {
		if r := ExploreOpts(cfg, Options{NoCanon: true}); !r.Ok() {
			b.Fatal("verification failed")
		}
	}
}
