package mcheck

import "fmt"

// LitmusResult reports one litmus exploration.
type LitmusResult struct {
	Name     string
	States   int
	Outcomes int // distinct terminal observation vectors
	Err      error
}

// Litmus explores every interleaving of the scripted programs in
// cfg.Scripts and calls check on the observation vector of each terminal
// state (per node, the versions its reads returned in program order; a
// script stalled by the issue bound contributes its prefix).
func Litmus(name string, cfg Config, check func(obs [][]int8) error) *LitmusResult {
	return LitmusOpts(name, cfg, check, Options{})
}

// LitmusOpts is Litmus on the parallel engine with explicit Options. The
// verdict is deterministic at any worker count: the exploration runs to
// its fixpoint, terminal states are visited in canonical-encoding order,
// and an invariant violation is reported from the lexicographically
// smallest violating state, so the error text — including the embedded
// state — is identical at workers=1 and workers=N. (Litmus mode never
// applies symmetry reduction; the scripts distinguish the nodes.)
func LitmusOpts(name string, cfg Config, check func(obs [][]int8) error, opt Options) *LitmusResult {
	if cfg.Scripts == nil {
		panic("mcheck: Litmus needs cfg.Scripts")
	}
	res := &LitmusResult{Name: name}
	r, terms := exploreFull(cfg, opt)
	res.States = r.States
	if len(r.Violations) > 0 {
		v := r.Violations[0]
		res.Err = fmt.Errorf("litmus %s: invariant %s in %s", name, v.Invariant, v.State)
		return res
	}
	outcomes := map[string]bool{}
	for _, enc := range terms {
		st := DecodeState(cfg, enc)
		key := fmt.Sprint(st.Obs)
		if outcomes[key] {
			continue
		}
		outcomes[key] = true
		if err := check(st.Obs); err != nil {
			res.Err = fmt.Errorf("litmus %s: %w (state %s)", name, err, st)
			res.Outcomes = len(outcomes)
			return res
		}
	}
	res.Outcomes = len(outcomes)
	return res
}

// monotonic asserts a node's successive reads never observe versions going
// backwards — the per-location ordering guarantee (CoRR) that sequential
// consistency requires of the coherence protocol.
func monotonic(obs [][]int8) error {
	for n, reads := range obs {
		for i := 1; i < len(reads); i++ {
			if reads[i] < reads[i-1] {
				return fmt.Errorf("node %d read v%d after v%d", n, reads[i], reads[i-1])
			}
		}
	}
	return nil
}

// LitmusShape is one scripted multi-node program shape: per node, the
// sequence of reads and writes it performs on the single contended line.
// The exhaustive explorer runs each shape over every interleaving; the
// fault-injection fuzzer reuses the same shapes as case skeletons, so the
// races the model checker proves safe on tiny configurations are also the
// races the full simulator is stressed on at scale.
type LitmusShape struct {
	Name    string
	Scripts [][]LitOp
}

// StandardLitmusShapes returns the classic per-location ordering shapes:
// CoRR (read-read coherence), CoWR (write-read coherence) and the paper's
// own producer-consumer round pattern. Node 0 is always the home node.
func StandardLitmusShapes() []LitmusShape {
	r := LitOp{}
	w := LitOp{Write: true}
	return []LitmusShape{
		// CoRR: two reads on one node never go backwards while another
		// node writes twice.
		{Name: "CoRR", Scripts: [][]LitOp{
			{},        // node 0 (home) idle
			{w, w},    // writer
			{r, r, r}, // reader: monotonic observations
		}},
		// CoWR: a node reads its own write at least as new as written.
		{Name: "CoWR", Scripts: [][]LitOp{
			{},
			{w, r, r},
			{r, w},
		}},
		// Producer-consumer rounds: the delegation/update pattern
		// itself — writer bursts, two consumers poll.
		{Name: "PC-rounds", Scripts: [][]LitOp{
			{r, r}, // home also consumes
			{w, w, w},
			{r, r, r},
		}},
	}
}

// StandardLitmusTests returns the suite run by cmd/pccverify: the standard
// shapes, each explored under the full protocol with delegation and
// updates enabled (and once disabled, as a control).
func StandardLitmusTests() []func() *LitmusResult {
	mk := func(name string, deleg bool, scripts [][]LitOp, check func([][]int8) error) func() *LitmusResult {
		return func() *LitmusResult {
			cfg := DefaultConfig()
			cfg.MaxWrites = 3
			cfg.MaxIssues = 6
			cfg.Delegation = deleg
			cfg.Scripts = scripts
			return Litmus(name, cfg, check)
		}
	}
	var tests []func() *LitmusResult
	for _, deleg := range []bool{false, true} {
		suffix := "/base"
		if deleg {
			suffix = "/delegation+updates"
		}
		for _, sh := range StandardLitmusShapes() {
			tests = append(tests, mk(sh.Name+suffix, deleg, sh.Scripts, monotonic))
		}
	}
	return tests
}
