package mcheck

import "fmt"

// ApplyTrace replays a rule-label sequence from the initial state and
// returns the final state. It is the replay half of counterexample
// emission: a violation's TraceTo labels, stored as corpus JSON, drive the
// model back into the violating state. Invariants are not checked along
// the way — a counterexample trace ends in a violating state by design;
// the caller asserts whatever the repro recorded.
func ApplyTrace(cfg Config, labels []string) (*State, error) {
	st := NewState(cfg)
	for i, want := range labels {
		found := false
		for _, sc := range Successors(cfg, st) {
			if sc.Rule == want {
				st = sc.State
				found = true
				break
			}
		}
		if !found {
			var avail []string
			for _, sc := range Successors(cfg, st) {
				avail = append(avail, sc.Rule)
			}
			return nil, fmt.Errorf("mcheck: trace step %d: rule %q not enabled in %s (available: %v)",
				i, want, st, avail)
		}
	}
	return st, nil
}

// Terminal reports whether s has no enabled transitions under cfg.
func Terminal(cfg Config, s *State) bool { return len(Successors(cfg, s)) == 0 }

// Quiescent reports whether s is a legitimate fixpoint (no in-flight
// messages, no outstanding requests, no busy directories) — a terminal
// state that is not quiescent is a deadlock.
func Quiescent(s *State) bool { return quiescent(s) }
