package mcheck

import (
	"strings"
	"testing"
)

// small returns a fast configuration for unit tests.
func small() Config {
	cfg := DefaultConfig()
	cfg.MaxWrites = 2
	cfg.MaxIssues = 2
	return cfg
}

func TestExploreBaseProtocol(t *testing.T) {
	cfg := small()
	cfg.Delegation = false
	res := Explore(cfg, 0)
	t.Logf("base: %s", res)
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("violation: %s in %s", v.Invariant, v.State)
		}
		for _, d := range res.Deadlocks {
			t.Errorf("deadlock: %s", d.State)
		}
	}
	if res.States < 1000 {
		t.Fatalf("suspiciously small state space: %d", res.States)
	}
}

func TestExploreWithDelegation(t *testing.T) {
	// Detection needs DetThresh+1 same-producer writes; lower the
	// threshold so delegation is reachable at these small bounds.
	cfg := small()
	cfg.MaxWrites = 2
	cfg.MaxIssues = 2
	cfg.DetThresh = 1
	res := Explore(cfg, 0)
	t.Logf("delegation+updates: %s (delegated states: %d)", res, res.Delegated)
	if res.Delegated == 0 {
		t.Fatal("exploration never reached a delegated state")
	}
	if !res.Ok() {
		for i, v := range res.Violations {
			if i >= 3 {
				break
			}
			t.Errorf("violation: %s in %s", v.Invariant, v.State)
		}
		for i, d := range res.Deadlocks {
			if i >= 3 {
				break
			}
			t.Errorf("deadlock: %s", d.State)
		}
	}
	if res.States < 10000 {
		t.Fatalf("delegation space too small: %d (delegation not reached?)", res.States)
	}
}

func TestExploreTwoNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MaxWrites = 3
	cfg.MaxIssues = 4
	res := Explore(cfg, 0)
	t.Logf("2 nodes: %s", res)
	if !res.Ok() {
		t.Fatalf("2-node exploration failed: %s", res)
	}
}

func TestLitmusSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("litmus suite takes ~10s")
	}
	for _, f := range StandardLitmusTests() {
		res := f()
		t.Logf("%s: states=%d outcomes=%d", res.Name, res.States, res.Outcomes)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Outcomes == 0 {
			t.Fatalf("%s: no terminal outcomes reached", res.Name)
		}
	}
}

// A broken invariant must be reported: corrupt a state by hand.
func TestInvariantsDetectCorruption(t *testing.T) {
	cfg := small()
	s := NewState(cfg)
	s.N[1].Cache = CE
	s.N[2].Cache = CE
	if inv := CheckInvariants(cfg, s); !strings.Contains(inv, "single-writer") {
		t.Fatalf("two owners not detected: %q", inv)
	}

	s = NewState(cfg)
	s.N[1].Cache = CS
	s.N[1].Val = 1 // claims v1, but Latest is 0
	s.Latest[0] = 0
	if inv := CheckInvariants(cfg, s); !strings.Contains(inv, "data-value") {
		t.Fatalf("stale copy not detected: %q", inv)
	}

	s = NewState(cfg)
	s.N[2].Cache = CE
	s.H[0].Dir = DS
	if inv := CheckInvariants(cfg, s); !strings.Contains(inv, "directory") {
		t.Fatalf("dir inconsistency not detected: %q", inv)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A state with an outstanding MSHR and empty channels has no enabled
	// transitions -> it must be flagged as a deadlock, not quiescence.
	cfg := small()
	s := NewState(cfg)
	s.N[1].Mshr = MWantS
	s.Iss[1] = cfg.MaxIssues // cannot reissue
	if quiescent(s) {
		t.Fatal("state with outstanding MSHR reported quiescent")
	}
}

func TestCanonicalKeySymmetry(t *testing.T) {
	cfg := small()
	a := NewState(cfg)
	a.N[1].Cache = CE
	a.N[1].Val = 1
	a.H[0].Dir = DE
	a.H[0].Owner = 1
	a.Latest[0] = 1

	b := NewState(cfg)
	b.N[2].Cache = CE
	b.N[2].Val = 1
	b.H[0].Dir = DE
	b.H[0].Owner = 2
	b.Latest[0] = 1

	if a.Key() == b.Key() {
		t.Fatal("plain keys should differ")
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("symmetric states have different canonical keys")
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := small()
	s := NewState(cfg)
	s.send(0, 1, Msg{Type: MGetS}, 2)
	c := s.Clone()
	c.N[0].Cache = CE
	c.Ch[1] = append(c.Ch[1], Msg{Type: MInval})
	if s.N[0].Cache == CE {
		t.Fatal("clone shares node state")
	}
	if len(s.Ch[1]) != 1 {
		t.Fatal("clone shares channels")
	}
}

func TestStateStringNonEmpty(t *testing.T) {
	s := NewState(small())
	if s.String() == "" {
		t.Fatal("empty state string")
	}
}

func TestTraceTo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MaxWrites = 1
	cfg.MaxIssues = 1
	// Find some reachable non-initial state, then reconstruct a path.
	init := NewState(cfg)
	succs := Successors(cfg, init)
	if len(succs) == 0 {
		t.Fatal("no successors from initial state")
	}
	target := succs[0].State
	path := TraceTo(cfg, target)
	if len(path) != 1 {
		t.Fatalf("trace to depth-1 state has %d steps", len(path))
	}
}

func BenchmarkVerifyReachability(b *testing.B) {
	cfg := small()
	for i := 0; i < b.N; i++ {
		res := Explore(cfg, 0)
		if !res.Ok() {
			b.Fatal("verification failed")
		}
	}
}
