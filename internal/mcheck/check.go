package mcheck

import (
	"fmt"
	"strings"
)

// Violation is one invariant failure with its counterexample trace.
type Violation struct {
	Invariant string
	State     *State
	Trace     []string // rule labels from the initial state
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mcheck: %s violated in state %s (trace: %s)",
		v.Invariant, v.State, strings.Join(v.Trace, " ; "))
}

// Progress, when non-nil, receives periodic exploration progress
// (states expanded, frontier size, visited size).
var Progress func(states, frontier, visited int)

// Result summarizes an exhaustive reachability analysis.
type Result struct {
	States      int
	Transitions int
	Violations  []*Violation
	Deadlocks   []*Violation
	// MaxQueue is the deepest channel occupancy observed.
	MaxQueue int
	// Delegated counts reachable states with a line delegated — a
	// sanity signal that the exploration actually exercised the
	// extension (bounds that are too tight never reach DELE).
	Delegated int
	// DedupHits counts successor states dropped because their (canonical)
	// key was already in the visited set; PeakFrontier is the largest
	// frontier observed. Together with wall time they make the
	// `pccbench -mcheck` stats line.
	DedupHits    int
	PeakFrontier int
	// Workers records how many exploration workers ran (1 for the serial
	// reference checker).
	Workers int
}

// Ok reports whether the analysis found no violations and no deadlocks.
func (r *Result) Ok() bool { return len(r.Violations) == 0 && len(r.Deadlocks) == 0 }

func (r *Result) String() string {
	return fmt.Sprintf("states=%d transitions=%d violations=%d deadlocks=%d",
		r.States, r.Transitions, len(r.Violations), len(r.Deadlocks))
}

// delegatedAnywhere reports whether any line of s is in DELE at the home.
func delegatedAnywhere(s *State) bool {
	for l := range s.H {
		if s.H[l].Dir == DD {
			return true
		}
	}
	return false
}

// ExploreSerial runs the reference breadth-first exhaustive reachability
// analysis from the initial state: single-threaded, map-keyed visited set,
// no symmetry reduction. It is the oracle the parallel engine is tested
// against (Explore in parallel.go is the production path). maxStates
// bounds the search as a safety net (0 = unbounded); exceeding it panics,
// since a truncated verification proves nothing. To keep the search
// memory-lean no traces are stored; a violation's counterexample path can
// be reconstructed with TraceTo.
func ExploreSerial(cfg Config, maxStates int) *Result {
	res := &Result{Workers: 1}
	init := NewState(cfg)
	visited := map[string]struct{}{init.Key(): {}}
	queue := []*State{init}

	for len(queue) > 0 {
		st := queue[0]
		queue[0] = nil
		queue = queue[1:]
		res.States++
		if len(queue) > res.PeakFrontier {
			res.PeakFrontier = len(queue)
		}
		if Progress != nil && res.States%1_000_000 == 0 {
			Progress(res.States, len(queue), len(visited))
		}
		if maxStates > 0 && res.States > maxStates {
			panic(fmt.Sprintf("mcheck: state bound %d exceeded (%s)", maxStates, res))
		}

		if inv := CheckInvariants(cfg, st); inv != "" {
			res.Violations = append(res.Violations, &Violation{inv, st, nil})
			if len(res.Violations) >= 8 {
				return res
			}
			continue
		}
		for _, q := range st.Ch {
			if len(q) > res.MaxQueue {
				res.MaxQueue = len(q)
			}
		}
		if delegatedAnywhere(st) {
			res.Delegated++
		}

		succs := Successors(cfg, st)
		res.Transitions += len(succs)
		if len(succs) == 0 {
			if !quiescent(st) {
				res.Deadlocks = append(res.Deadlocks, &Violation{"deadlock-freedom", st, nil})
			}
			continue
		}
		for _, sc := range succs {
			k := sc.State.Key()
			if _, ok := visited[k]; ok {
				res.DedupHits++
				continue
			}
			visited[k] = struct{}{}
			queue = append(queue, sc.State)
		}
	}
	return res
}

// TraceTo reconstructs a rule path from the initial state to target, for
// counterexample reporting. The goal test is modulo symmetry — the trace
// may land on a symmetric twin of target, which the (symmetric) invariants
// flag identically — but the search itself runs over concrete states, so
// the returned labels replay from the initial state. It re-runs the BFS
// with parent tracking, so use it only after exploration found a
// violation. The result is deterministic: plain BFS over the concrete
// state graph in rule order, independent of how many workers found the
// violation.
func TraceTo(cfg Config, target *State) []string {
	type link struct {
		parent string
		rule   string
	}
	canon := newCanonicalizer(target.nodes(), len(target.H), target.PC != nil)
	goal := string(canon.canonical(target))
	init := NewState(cfg)
	if string(canon.canonical(init)) == goal {
		return nil
	}
	parents := map[string]link{init.Key(): {}}
	queue := []*State{init}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		for _, sc := range Successors(cfg, st) {
			k := sc.State.Key()
			if _, ok := parents[k]; ok {
				continue
			}
			parents[k] = link{st.Key(), sc.Rule}
			if string(canon.canonical(sc.State)) == goal {
				var path []string
				for k != init.Key() {
					l := parents[k]
					path = append([]string{l.rule}, path...)
					k = l.parent
				}
				return path
			}
			queue = append(queue, sc.State)
		}
	}
	return nil
}

// quiescent reports whether a terminal state is a legitimate fixpoint: no
// in-flight messages, no outstanding requests, no pending pushes on any
// line.
func quiescent(s *State) bool {
	for _, q := range s.Ch {
		if len(q) != 0 {
			return false
		}
	}
	for i := range s.N {
		n := &s.N[i]
		if n.Mshr != MNone || n.PInFlt != 0 {
			return false
		}
	}
	for l := range s.H {
		if s.H[l].Dir == DBS || s.H[l].Dir == DBX {
			return false
		}
	}
	return true
}

// CheckInvariants evaluates the paper's invariants on one state, returning
// the name of the first violated invariant or "". Each line is checked
// independently (the invariants are per-line properties); multi-line
// configurations prefix the line to the name.
func CheckInvariants(cfg Config, s *State) string {
	lines := len(s.H)
	for l := 0; l < lines; l++ {
		if v := checkLineInvariants(s, l); v != "" {
			if lines > 1 {
				return fmt.Sprintf("L%d:%s", l, v)
			}
			return v
		}
	}
	return ""
}

func checkLineInvariants(s *State, l int) string {
	n := s.nodes()
	// Invariant 1 — "single writer exists" (the Murphi DASH invariant):
	// at most one node holds the line exclusively, and no other node
	// holds any readable copy while one does.
	owner := -1
	for i := 0; i < n; i++ {
		if s.node(l, i).Cache == CE {
			if owner >= 0 {
				return "single-writer (two exclusive holders)"
			}
			owner = i
		}
	}
	if owner >= 0 {
		for i := 0; i < n; i++ {
			if i == owner {
				continue
			}
			if s.node(l, i).Cache != CI {
				return "single-writer (copy beside the owner)"
			}
			if s.node(l, i).RACOk {
				return "single-writer (RAC copy beside the owner)"
			}
		}
	}

	// Invariant 2 — data-value coherence: every readable copy holds the
	// latest written version. (Write-invalidate with acks collected
	// before commit makes this exact, not just eventual; see the
	// argument in DESIGN.md §4.)
	latest := s.Latest[l]
	for i := 0; i < n; i++ {
		nd := s.node(l, i)
		if nd.Cache != CI && nd.Val != latest {
			return fmt.Sprintf("data-value (node %d caches v%d, latest v%d)", i, nd.Val, latest)
		}
		if nd.RACOk && nd.RACVal != latest {
			// The producer's pinned surrogate-memory copy is stale by
			// design while the line is exclusive at the producer: the
			// cache copy shadows it for every read, and the delayed
			// intervention refreshes it before the downgrade exposes
			// it. Any other stale RAC copy is a real violation.
			if !(nd.HasProd && nd.PDir == DE) {
				return fmt.Sprintf("data-value (node %d RAC has v%d, latest v%d)", i, nd.RACVal, latest)
			}
		}
	}

	// Invariant 3 — "consistency within the directory": a home entry in
	// UNOWNED/SHARED must not coexist with an exclusive holder, and in
	// those states memory must hold the latest data.
	h := &s.H[l]
	if (h.Dir == DU || h.Dir == DS) && owner >= 0 {
		return fmt.Sprintf("directory (home %s with exclusive holder %d)", h.Dir, owner)
	}
	if (h.Dir == DU || h.Dir == DS) && h.MemVal != latest {
		return fmt.Sprintf("directory (home %s memory v%d, latest v%d)", h.Dir, h.MemVal, latest)
	}
	// An exclusive holder must be the directory's (or the delegated
	// entry's) registered owner.
	if owner >= 0 {
		legit := false
		if h.Dir == DE && int(h.Owner) == owner {
			legit = true
		}
		if h.Dir == DBS || h.Dir == DBX { // transfer in progress away from owner
			legit = true
		}
		if h.Dir == DD {
			p := s.node(l, int(h.Owner))
			if int(h.Owner) == owner {
				legit = true
			} else if p.HasProd && p.PDir == DE {
				legit = false // delegated entry says producer owns it, someone else is E
			}
		}
		if h.Dir == DD && int(h.Owner) == owner {
			legit = true
		}
		if !legit && h.Dir != DD {
			return fmt.Sprintf("directory (node %d exclusive, home %s owner %d)", owner, h.Dir, h.Owner)
		}
	}

	// Invariant 4 — delegation consistency: while the home is in DELE,
	// nothing else claims the producer role, and vice versa at most one
	// producer-table entry exists for the line.
	producers := 0
	for i := 0; i < n; i++ {
		if s.node(l, i).HasProd {
			producers++
			if h.Dir != DD {
				// Legal transient: the UNDELE is in flight. Then the
				// home must still be DELE... it is not, so the entry
				// must be freshly installed while DELEGATE was in
				// flight — but installs only happen on delivery,
				// after the home entered DELE. Violation.
				return fmt.Sprintf("delegation (node %d has entry, home %s)", i, h.Dir)
			}
			if int(h.Owner) != i {
				return fmt.Sprintf("delegation (entry at %d, home delegated to %d)", i, h.Owner)
			}
		}
	}
	if producers > 1 {
		return "delegation (two producer entries)"
	}
	return ""
}
