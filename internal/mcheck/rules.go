package mcheck

import "fmt"

// Succ is one labeled successor state.
type Succ struct {
	Rule  string
	State *State
}

// home is the node whose hub hosts the directory for every modeled line.
const home = 0

// lbl prefixes a rule label with its line for multi-line configurations.
// Single-line labels are byte-identical to earlier revisions — regression
// tests pin exact label sequences.
func lbl(lines, l int, s string) string {
	if lines > 1 {
		return fmt.Sprintf("L%d:%s", l, s)
	}
	return s
}

// Successors enumerates every enabled transition of s: spontaneous
// processor actions on each line, message deliveries (any channel head),
// and the nondeterministically timed delayed interventions.
func Successors(cfg Config, s *State) []Succ {
	var out []Succ
	add := func(rule string, ns *State) { out = append(out, Succ{rule, ns}) }

	n := s.nodes()
	lines := len(s.H)
	for i := 0; i < n; i++ {
		if cfg.Scripts != nil {
			scriptStep(cfg, s, i, add)
			continue
		}
		for l := 0; l < lines; l++ {
			node := s.node(l, i)

			// Issue a read miss.
			if node.Cache == CI && node.Mshr == MNone && !node.RACOk && canIssue(cfg, s, i) {
				ns := s.Clone()
				nn := ns.node(l, i)
				nn.Mshr = MWantS
				nn.Inv = false
				ns.Iss[i]++
				nn.Txn = ns.Iss[i]
				dst := home
				if nn.Hint {
					dst = int(nn.HintProd)
				}
				if ns.send(i, dst, Msg{Type: MGetS, Line: int8(l), Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
					add(lbl(lines, l, fmt.Sprintf("n%d.GetS->%d", i, dst)), ns)
				}
			}

			// Read a locally available copy (cache or RAC): no transition
			// needed for cache hits; a RAC hit promotes the copy, which is
			// a state change worth exploring.
			if node.Cache == CI && node.Mshr == MNone && node.RACOk {
				ns := s.Clone()
				nn := ns.node(l, i)
				nn.Cache = CS
				nn.Val = nn.RACVal
				if !nn.HasProd {
					nn.RACOk = false // victim-cache move; pinned master stays
				}
				add(lbl(lines, l, fmt.Sprintf("n%d.RACHit", i)), ns)
			}

			// Issue a write (GetX on invalid, Upgrade on shared), bounded.
			if s.Writes < int8(cfg.MaxWrites) && node.Mshr == MNone && canIssue(cfg, s, i) {
				if node.HasProd && node.PDir == DS && node.PInFlt == 0 {
					// Producer write on a delegated line (Figure 6).
					ns := s.Clone()
					nn := ns.node(l, i)
					ns.Iss[i]++
					nn.Txn = ns.Iss[i]
					cons := nn.PShr &^ bit(int8(i))
					nn.PDir = DE
					nn.PUpdSet = cons
					nn.PArmed = false
					nn.Mshr = MWaitAck
					nn.MHave = true
					nn.MVal = nn.val(i)
					nn.Acks = int8(popcount(cons))
					ok := true
					for j := 0; j < n; j++ {
						if cons&bit(int8(j)) != 0 {
							if !ns.send(i, j, Msg{Type: MInval, Line: int8(l), Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
								ok = false
							}
						}
					}
					if ok {
						if nn.Acks == 0 {
							completeWrite(cfg, ns, l, i)
						}
						add(lbl(lines, l, fmt.Sprintf("n%d.DelegatedWrite", i)), ns)
					}
				} else if !node.HasProd {
					switch node.Cache {
					case CI:
						ns := s.Clone()
						nn := ns.node(l, i)
						nn.Mshr = MWantX
						nn.Acks = 0
						nn.MHave = false
						ns.Iss[i]++
						nn.Txn = ns.Iss[i]
						dst := home
						if nn.Hint {
							dst = int(nn.HintProd)
						}
						if ns.send(i, dst, Msg{Type: MGetX, Line: int8(l), Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
							add(lbl(lines, l, fmt.Sprintf("n%d.GetX->%d", i, dst)), ns)
						}
					case CS:
						ns := s.Clone()
						nn := ns.node(l, i)
						nn.Mshr = MWantUpg
						nn.Acks = 0
						nn.MHave = false
						nn.MVal = nn.Val // MSHR stashes the shared data
						ns.Iss[i]++
						nn.Txn = ns.Iss[i]
						dst := home
						if nn.Hint {
							dst = int(nn.HintProd)
						}
						if ns.send(i, dst, Msg{Type: MUpg, Line: int8(l), Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
							add(lbl(lines, l, fmt.Sprintf("n%d.Upg->%d", i, dst)), ns)
						}
					}
				}
			}

			// Evict an exclusive line (writeback) — not while transacting
			// and not for delegated lines (those fold into the RAC).
			if node.Cache == CE && node.Mshr == MNone && !node.HasProd {
				ns := s.Clone()
				nn := ns.node(l, i)
				v := nn.Val
				nn.Cache = CI
				if ns.send(i, home, Msg{Type: MWB, Line: int8(l), Req: int8(i), Val: v}, cfg.QueueDepth) {
					add(lbl(lines, l, fmt.Sprintf("n%d.Evict(WB)", i)), ns)
				}
			}

			// Silently evict a shared line.
			if node.Cache == CS && node.Mshr == MNone && !node.HasProd {
				ns := s.Clone()
				ns.node(l, i).Cache = CI
				add(lbl(lines, l, fmt.Sprintf("n%d.EvictS", i)), ns)
			}

			// Delayed intervention fires (§2.4.1); its timing is fully
			// nondeterministic in the model.
			genericTimerStep(cfg, s, l, i, add)
		}
	}

	// Message deliveries: the head of any nonempty channel.
	for ci, q := range s.Ch {
		if len(q) == 0 {
			continue
		}
		src, dst := ci/n, ci%n
		ns := s.Clone()
		m := ns.Ch[ci][0]
		ns.Ch[ci] = ns.Ch[ci][1:]
		if len(ns.Ch[ci]) == 0 {
			ns.Ch[ci] = nil
		}
		if deliver(cfg, ns, src, dst, m) {
			add(lbl(lines, int(m.Line), fmt.Sprintf("%d->%d.%s", src, dst, m.Type)), ns)
		}
	}
	return out
}

// val returns the node's current data for the line: cache copy first, then
// the RAC master copy.
func (nd *Node) val(self int) int8 {
	if nd.Cache != CI {
		return nd.Val
	}
	if nd.RACOk {
		return nd.RACVal
	}
	return nd.Val
}

func pushAll(cfg Config, s *State, l, src int, targets uint8, v int8) bool {
	nn := s.node(l, src)
	for j := 0; j < s.nodes(); j++ {
		if targets&bit(int8(j)) != 0 {
			if !s.send(src, j, Msg{Type: MUpd, Line: int8(l), Req: int8(j), Val: v}, cfg.QueueDepth) {
				return false
			}
			nn.PInFlt++
		}
	}
	return true
}

// completeWrite commits a write at node i on line l: the line's version
// advances and, for delegated lines, the delayed intervention is armed.
func completeWrite(cfg Config, s *State, l, i int) {
	nn := s.node(l, i)
	nn.Cache = CE
	if nn.RACOk && !nn.HasProd {
		nn.RACOk = false // cache and unpinned RAC never hold the same line
	}
	nn.GEp = nn.Txn // ownership epoch = the granting request's txn
	s.Latest[l]++
	s.Writes++
	nn.Val = s.Latest[l]
	nn.Mshr = MNone
	nn.MHave = false
	nn.Inv = false
	if nn.HasProd && nn.PUpdSet&^bit(int8(i)) != 0 {
		nn.PArmed = true
	}
}

// completeRead commits a read at node i on line l with version v.
func completeRead(s *State, l, i int, v int8) {
	nn := s.node(l, i)
	if nn.Inv {
		// Use-once fill: satisfy the load, do not cache.
		nn.Inv = false
	} else {
		nn.Cache = CS
		nn.Val = v
		if nn.RACOk && !nn.HasProd {
			nn.RACOk = false // cache and unpinned RAC never hold the same line
		}
	}
	nn.Mshr = MNone
	if s.Obs != nil && l == 0 {
		s.Obs[i] = append(s.Obs[i], v)
	}
}

// scriptStep emits the litmus-mode transition for node i: execute the next
// scripted operation (on line 0) when the node is idle. Local hits complete
// immediately; misses issue protocol transactions whose completions record
// the observation.
func scriptStep(cfg Config, s *State, i int, add func(string, *State)) {
	node := s.node(0, i)
	script := cfg.Scripts[i]
	// Delayed interventions fire nondeterministically alongside ops.
	genericTimerStep(cfg, s, 0, i, add)
	if int(s.PC[i]) >= len(script) || node.Mshr != MNone || !canIssue(cfg, s, i) {
		return
	}
	op := script[s.PC[i]]
	if !op.Write {
		// Read: cache hit, RAC hit, or a GetS transaction.
		if node.Cache != CI {
			ns := s.Clone()
			ns.PC[i]++
			ns.Obs[i] = append(ns.Obs[i], ns.node(0, i).Val)
			add(fmt.Sprintf("n%d.ReadHit", i), ns)
			return
		}
		if node.RACOk {
			ns := s.Clone()
			nn := ns.node(0, i)
			nn.Cache = CS
			nn.Val = nn.RACVal
			if !nn.HasProd {
				nn.RACOk = false
			}
			ns.PC[i]++
			ns.Obs[i] = append(ns.Obs[i], nn.Val)
			add(fmt.Sprintf("n%d.ReadRAC", i), ns)
			return
		}
		ns := s.Clone()
		nn := ns.node(0, i)
		nn.Mshr = MWantS
		nn.Inv = false
		ns.Iss[i]++
		nn.Txn = ns.Iss[i]
		ns.PC[i]++ // the observation lands at completion
		dst := home
		if nn.Hint {
			dst = int(nn.HintProd)
		}
		if ns.send(i, dst, Msg{Type: MGetS, Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
			add(fmt.Sprintf("n%d.GetS->%d", i, dst), ns)
		}
		return
	}
	// Write: silent on an exclusive copy, otherwise a transaction.
	if node.Cache == CE {
		ns := s.Clone()
		nn := ns.node(0, i)
		ns.Latest[0]++
		ns.Writes++
		nn.Val = ns.Latest[0]
		ns.PC[i]++
		add(fmt.Sprintf("n%d.WriteHit", i), ns)
		return
	}
	if node.HasProd && node.PDir == DS && node.PInFlt == 0 {
		ns := s.Clone()
		nn := ns.node(0, i)
		ns.Iss[i]++
		nn.Txn = ns.Iss[i]
		cons := nn.PShr &^ bit(int8(i))
		nn.PDir = DE
		nn.PUpdSet = cons
		nn.PArmed = false
		nn.Mshr = MWaitAck
		nn.MHave = true
		nn.MVal = nn.val(i)
		nn.Acks = int8(popcount(cons))
		ok := true
		for j := 0; j < s.nodes(); j++ {
			if cons&bit(int8(j)) != 0 {
				if !ns.send(i, j, Msg{Type: MInval, Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
					ok = false
				}
			}
		}
		if ok {
			ns.PC[i]++
			if nn.Acks == 0 {
				completeWrite(cfg, ns, 0, i)
			}
			add(fmt.Sprintf("n%d.DelegatedWrite", i), ns)
		}
		return
	}
	ns := s.Clone()
	nn := ns.node(0, i)
	ns.Iss[i]++
	nn.Txn = ns.Iss[i]
	nn.Acks = 0
	nn.MHave = false
	t := MGetX
	if nn.Cache == CS {
		t = MUpg
		nn.Mshr = MWantUpg
		nn.MVal = nn.Val
	} else {
		nn.Mshr = MWantX
	}
	ns.PC[i]++
	dst := home
	if nn.Hint {
		dst = int(nn.HintProd)
	}
	if ns.send(i, dst, Msg{Type: t, Req: int8(i), RTxn: nn.Txn}, cfg.QueueDepth) {
		add(fmt.Sprintf("n%d.%s->%d", i, t, dst), ns)
	}
}

// genericTimerStep emits the delayed-intervention transitions for line l
// (shared by both modes).
func genericTimerStep(cfg Config, s *State, l, i int, add func(string, *State)) {
	node := s.node(l, i)
	if !(node.HasProd && node.PArmed && node.Mshr == MNone) {
		return
	}
	lines := len(s.H)
	if node.PDir == DE {
		ns := s.Clone()
		nn := ns.node(l, i)
		nn.PArmed = false
		v := nn.val(i)
		if nn.Cache == CE {
			nn.Cache = CS
		}
		nn.RACOk = true
		nn.RACVal = v
		targets := nn.PUpdSet &^ bit(int8(i))
		nn.PDir = DS
		nn.PShr = targets | bit(int8(i))
		if pushAll(cfg, ns, l, i, targets, v) {
			add(lbl(lines, l, fmt.Sprintf("n%d.Intervention", i)), ns)
		}
	} else {
		ns := s.Clone()
		nn := ns.node(l, i)
		nn.PArmed = false
		v := nn.val(i)
		targets := nn.PUpdSet &^ nn.PShr &^ bit(int8(i))
		nn.PShr |= targets
		if pushAll(cfg, ns, l, i, targets, v) {
			add(lbl(lines, l, fmt.Sprintf("n%d.LatePush", i)), ns)
		}
	}
}

// deliver applies one message at its destination; it reports false when a
// required send would exceed the channel bound (the delivery is then
// disabled rather than half-applied). The message's Line field selects
// which line's state it touches.
func deliver(cfg Config, s *State, src, dst int, m Msg) bool {
	l := int(m.Line)
	nd := s.node(l, dst)
	switch m.Type {
	case MGetS, MGetX, MUpg:
		return deliverRequest(cfg, s, src, dst, m)

	case MInval:
		if nd.Cache == CS {
			nd.Cache = CI
		}
		if nd.RACOk && !nd.HasProd {
			nd.RACOk = false
		}
		if nd.Mshr == MWantS {
			nd.Inv = true
		}
		return s.send(dst, int(m.Req), Msg{Type: MInvAck, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)

	case MInvAck:
		if (nd.Mshr == MWantX || nd.Mshr == MWantUpg || nd.Mshr == MWaitAck) && m.RTxn == nd.Txn {
			nd.Acks--
			if nd.Acks == 0 && nd.MHave {
				completeWrite(cfg, s, l, dst)
			}
		}
		return true

	case MSRep, MSResp:
		if nd.Mshr == MWantS && m.RTxn == nd.Txn {
			completeRead(s, l, dst, m.Val)
		}
		return true

	case MXRep:
		if nd.Mshr == MWantX && m.RTxn == nd.Txn {
			nd.MHave = true
			nd.MVal = m.Val
			nd.Acks += m.Acks
			if nd.Acks == 0 {
				completeWrite(cfg, s, l, dst)
			}
		}
		return true

	case MUpgAck:
		if nd.Mshr == MWantUpg && m.RTxn == nd.Txn {
			nd.MHave = true
			nd.Acks += m.Acks
			if nd.Acks == 0 {
				completeWrite(cfg, s, l, dst)
			}
		}
		return true

	case MXResp:
		if nd.Mshr == MWantX && m.RTxn == nd.Txn {
			nd.MHave = true
			nd.MVal = m.Val
			if nd.Acks == 0 {
				completeWrite(cfg, s, l, dst)
			}
		}
		return true

	case MInt:
		if (nd.Mshr == MWantX || nd.Mshr == MWantUpg || nd.Mshr == MWaitAck) && m.GEp == nd.Txn {
			// The intervention refers to the ownership our in-flight
			// fill establishes: requeue behind it (the implementation
			// parks it in the MSHR; the model re-delivers later —
			// same observable behavior).
			return s.send(src, dst, m, cfg.QueueDepth)
		}
		if nd.Cache == CE && nd.GEp == m.GEp {
			nd.Cache = CS
			v := nd.Val
			if !s.send(dst, int(m.Req), Msg{Type: MSResp, Line: m.Line, Val: v, RTxn: m.RTxn}, cfg.QueueDepth) {
				return false
			}
			return s.send(dst, home, Msg{Type: MSWB, Line: m.Line, Val: v}, cfg.QueueDepth)
		}
		return true // stale epoch: home completes from the crossing WB

	case MXferReq:
		if (nd.Mshr == MWantX || nd.Mshr == MWantUpg || nd.Mshr == MWaitAck) && m.GEp == nd.Txn {
			return s.send(src, dst, m, cfg.QueueDepth)
		}
		if nd.Cache == CE && nd.GEp == m.GEp {
			v := nd.Val
			nd.Cache = CI
			if !s.send(dst, int(m.Req), Msg{Type: MXResp, Line: m.Line, Val: v, RTxn: m.RTxn}, cfg.QueueDepth) {
				return false
			}
			return s.send(dst, home, Msg{Type: MXferAck, Line: m.Line, Req: m.Req, RTxn: m.RTxn}, cfg.QueueDepth)
		}
		return true

	case MSWB:
		h := &s.H[l]
		h.MemVal = m.Val
		h.Dir = DS
		h.Shr = bit(int8(src)) | bit(h.Pend)
		h.Pend = -1
		return true

	case MXferAck:
		h := &s.H[l]
		if h.Dir != DBX || h.PendTxn != m.RTxn || h.Pend != m.Req {
			return true // stale: an early writeback resolved the transfer
		}
		h.Dir = DE
		h.Owner = h.Pend
		h.OwnTxn = h.PendTxn
		h.Shr = 0
		h.Pend = -1
		return true

	case MWB:
		return deliverWriteback(cfg, s, src, m)

	case MNack:
		if nd.Mshr != MNone && nd.Mshr != MWaitAck && m.RTxn == nd.Txn {
			nd.Mshr = MNone
			nd.MHave = false
			nd.Acks = 0
			if s.PC != nil {
				s.PC[dst]-- // litmus mode: retry the scripted op
			}
		}
		return true

	case MNackNH:
		nd.Hint = false
		nd.HintProd = -1
		if nd.Mshr != MNone && nd.Mshr != MWaitAck && m.RTxn == nd.Txn {
			nd.Mshr = MNone
			nd.MHave = false
			nd.Acks = 0
			if s.PC != nil {
				s.PC[dst]--
			}
		}
		return true

	case MHint:
		nd.Hint = true
		nd.HintProd = m.Val // reuse Val as the producer id
		return true

	case MDele:
		if (nd.Mshr != MWantX && nd.Mshr != MWantUpg) || m.RTxn != nd.Txn {
			panic("mcheck: unsolicited delegate")
		}
		// Directory handoff doubling as the exclusive reply.
		nd.HasProd = true
		nd.PDir = DE
		nd.PShr = m.Shr
		nd.PUpdSet = m.Shr
		nd.PInFlt = 0
		nd.PArmed = false
		nd.RACOk = true // pinned surrogate-memory entry
		nd.RACVal = m.Val
		nd.MHave = true
		if nd.Mshr == MWantX {
			nd.MVal = m.Val
		}
		nd.Acks += m.Acks
		if nd.Acks == 0 {
			completeWrite(cfg, s, l, dst)
		} else {
			nd.Mshr = MWaitAck
		}
		return true

	case MUndele:
		h := &s.H[l]
		h.Dir = DS
		if m.Shr == 0 {
			h.Dir = DU
		}
		h.Shr = m.Shr
		h.Owner = -1
		h.MemVal = m.Val
		h.DetW = -1 // detector history lost while delegated
		h.DetRep = 0
		h.DetRd = false
		if m.Fwd != 0 && m.Req >= 0 {
			return deliverRequest(cfg, s, home, home, Msg{Type: m.Fwd, Line: m.Line, Req: m.Req, RTxn: m.RTxn})
		}
		return true

	case MUpd:
		// Link-level delivery notification to the producer.
		if p := s.node(l, src); p.PInFlt > 0 {
			p.PInFlt--
		}
		if nd.Mshr == MWantS {
			completeRead(s, l, dst, m.Val)
			return true
		}
		if nd.Cache == CI && !nd.RACOk {
			nd.RACOk = true
			nd.RACVal = m.Val
		}
		return true
	}
	panic(fmt.Sprintf("mcheck: deliver %s unhandled", m.Type))
}

// deliverRequest routes a coherence request at its destination node:
// delegated lines first, the home directory second, NACK otherwise.
func deliverRequest(cfg Config, s *State, src, dst int, m Msg) bool {
	nd := s.node(int(m.Line), dst)
	if nd.HasProd {
		return delegatedRequest(cfg, s, src, dst, m)
	}
	if dst == home {
		return homeRequest(cfg, s, src, m)
	}
	// Stale hint or a request that crossed an undelegation.
	t := MNack
	if src == int(m.Req) {
		t = MNackNH
	}
	return s.send(dst, int(m.Req), Msg{Type: t, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
}

func delegatedRequest(cfg Config, s *State, src, dst int, m Msg) bool {
	nd := s.node(int(m.Line), dst)
	req := int(m.Req)
	if req == dst {
		// The producer's own request looped back (hint to self after
		// undelegation+redelegation); treat as a home-side NACK.
		return s.send(dst, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
	}
	if nd.Mshr != MNone {
		return s.send(dst, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
	}
	switch m.Type {
	case MGetS:
		switch nd.PDir {
		case DS:
			nd.PShr |= bit(int8(req))
			return s.send(dst, req, Msg{Type: MSResp, Line: m.Line, Val: nd.val(dst), RTxn: m.RTxn}, cfg.QueueDepth)
		case DE:
			// Early read: immediate downgrade; an armed timer will
			// push to the remaining consumers later.
			v := nd.val(dst)
			if nd.Cache == CE {
				nd.Cache = CS
			}
			nd.RACOk = true
			nd.RACVal = v
			nd.PDir = DS
			nd.PShr = bit(int8(dst)) | bit(int8(req))
			return s.send(dst, req, Msg{Type: MSResp, Line: m.Line, Val: v, RTxn: m.RTxn}, cfg.QueueDepth)
		}
	case MGetX, MUpg:
		if nd.PInFlt > 0 {
			return s.send(dst, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
		}
		// Undelegation reason 3: downgrade our copy, hand the entry
		// and the pending request back to the home.
		v := nd.val(dst)
		if nd.Cache == CE {
			nd.Cache = CS
		}
		holders := uint8(0)
		if nd.PDir == DS {
			holders = nd.PShr &^ bit(int8(dst))
		}
		if nd.Cache != CI || nd.RACOk {
			holders |= bit(int8(dst))
		}
		nd.HasProd = false
		nd.PArmed = false
		// The RAC copy stops being the master; it stays as a clean
		// shared copy refreshed to the current version.
		if nd.RACOk {
			nd.RACVal = v
		}
		return s.send(dst, home, Msg{
			Type: MUndele, Line: m.Line, Val: v, Shr: holders, Fwd: m.Type, Req: m.Req, RTxn: m.RTxn,
		}, cfg.QueueDepth)
	}
	panic("mcheck: delegatedRequest unhandled")
}

func homeRequest(cfg Config, s *State, src int, m Msg) bool {
	l := int(m.Line)
	h := &s.H[l]
	req := int(m.Req)
	if h.Dir == DBS || h.Dir == DBX {
		return s.send(home, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
	}
	if h.Dir == DD {
		if int8(req) == h.Owner {
			return s.send(home, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
		}
		if !s.send(home, int(h.Owner), m, cfg.QueueDepth) {
			return false
		}
		if req != home {
			return s.send(home, req, Msg{Type: MHint, Line: m.Line, Val: h.Owner}, cfg.QueueDepth)
		}
		return true
	}

	switch m.Type {
	case MGetS:
		if req != int(h.DetW) {
			h.DetRd = true
		}
		switch h.Dir {
		case DU:
			h.Dir = DS
			h.Shr = bit(int8(req))
			return s.send(home, req, Msg{Type: MSRep, Line: m.Line, Val: h.MemVal, RTxn: m.RTxn}, cfg.QueueDepth)
		case DS:
			h.Shr |= bit(int8(req))
			return s.send(home, req, Msg{Type: MSRep, Line: m.Line, Val: h.MemVal, RTxn: m.RTxn}, cfg.QueueDepth)
		case DE:
			if int(h.Owner) == req {
				return s.send(home, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
			}
			h.Dir = DBS
			h.Pend = int8(req)
			h.PendX = false
			h.PendTxn = m.RTxn
			return s.send(home, int(h.Owner), Msg{Type: MInt, Line: m.Line, Req: m.Req, RTxn: m.RTxn, GEp: h.OwnTxn}, cfg.QueueDepth)
		}

	case MGetX, MUpg:
		switch h.Dir {
		case DU:
			if m.Type == MUpg {
				return s.send(home, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
			}
			detectorWrite(h, req)
			h.Dir = DE
			h.Owner = int8(req)
			h.Shr = 0
			h.OwnTxn = m.RTxn
			return s.send(home, req, Msg{Type: MXRep, Line: m.Line, Val: h.MemVal, RTxn: m.RTxn}, cfg.QueueDepth)
		case DS:
			if m.Type == MUpg && h.Shr&bit(int8(req)) == 0 {
				return s.send(home, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
			}
			detectorWrite(h, req)
			sharers := h.Shr &^ bit(int8(req))
			acks := int8(popcount(sharers))
			if cfg.Delegation && h.DetRep >= cfg.DetThresh && req != home {
				h.Dir = DD
				h.Owner = int8(req)
				h.OwnTxn = m.RTxn
				for j := 0; j < s.nodes(); j++ {
					if sharers&bit(int8(j)) != 0 {
						if !s.send(home, j, Msg{Type: MInval, Line: m.Line, Req: m.Req, RTxn: m.RTxn}, cfg.QueueDepth) {
							return false
						}
					}
				}
				return s.send(home, req, Msg{
					Type: MDele, Line: m.Line, Val: h.MemVal, Acks: acks, Shr: sharers, RTxn: m.RTxn,
				}, cfg.QueueDepth)
			}
			h.Dir = DE
			h.Owner = int8(req)
			h.OwnTxn = m.RTxn
			h.Shr = sharers // §2.4.2: old sharing vector preserved
			for j := 0; j < s.nodes(); j++ {
				if sharers&bit(int8(j)) != 0 {
					if !s.send(home, j, Msg{Type: MInval, Line: m.Line, Req: m.Req, RTxn: m.RTxn}, cfg.QueueDepth) {
						return false
					}
				}
			}
			t := MXRep
			if m.Type == MUpg {
				t = MUpgAck
			}
			return s.send(home, req, Msg{Type: t, Line: m.Line, Val: h.MemVal, Acks: acks, RTxn: m.RTxn}, cfg.QueueDepth)
		case DE:
			if m.Type == MUpg || int(h.Owner) == req {
				return s.send(home, req, Msg{Type: MNack, Line: m.Line, RTxn: m.RTxn}, cfg.QueueDepth)
			}
			detectorWrite(h, req)
			h.Dir = DBX
			h.Pend = int8(req)
			h.PendX = true
			h.PendTxn = m.RTxn
			return s.send(home, int(h.Owner), Msg{Type: MXferReq, Line: m.Line, Req: m.Req, RTxn: m.RTxn, GEp: h.OwnTxn}, cfg.QueueDepth)
		}
	}
	panic("mcheck: homeRequest unhandled")
}

func detectorWrite(h *Home, req int) {
	if int(h.DetW) == req && h.DetRd {
		h.DetRep++
	} else if int(h.DetW) != req {
		h.DetRep = 0
	}
	h.DetW = int8(req)
	h.DetRd = false
}

func deliverWriteback(cfg Config, s *State, src int, m Msg) bool {
	h := &s.H[m.Line]
	switch {
	case h.Dir == DE && int(h.Owner) == src:
		h.MemVal = m.Val
		h.Dir = DU
		h.Owner = -1
		return true
	case h.Dir == DBS && int(h.Owner) == src:
		h.MemVal = m.Val
		h.Dir = DS
		pend := h.Pend
		h.Shr = bit(pend)
		h.Pend = -1
		return s.send(home, int(pend), Msg{Type: MSRep, Line: m.Line, Val: h.MemVal, RTxn: h.PendTxn}, cfg.QueueDepth)
	case h.Dir == DBX && int(h.Owner) == src:
		h.MemVal = m.Val
		h.Dir = DE
		pend := h.Pend
		h.Owner = pend
		h.OwnTxn = h.PendTxn
		h.Shr = 0
		h.Pend = -1
		return s.send(home, int(pend), Msg{Type: MXRep, Line: m.Line, Val: h.MemVal, RTxn: h.PendTxn}, cfg.QueueDepth)
	case h.Dir == DBX && int(h.Pend) == src:
		// The new owner's writeback beat the old owner's TransferAck:
		// ownership came and went; the stale ack is dropped by txn.
		h.MemVal = m.Val
		h.Dir = DU
		h.Owner = -1
		h.Pend = -1
		return true
	}
	panic(fmt.Sprintf("mcheck: writeback from %d in dir %s owner %d", src, h.Dir, h.Owner))
}

// canIssue reports whether node i may issue another request: under its
// per-node budget and, when Config.MaxTotalIssues is set, under the global
// budget shared by all nodes.
func canIssue(cfg Config, s *State, i int) bool {
	if s.Iss[i] >= cfg.MaxIssues {
		return false
	}
	if cfg.MaxTotalIssues > 0 {
		var tot int8
		for _, v := range s.Iss {
			tot += v
		}
		if tot >= cfg.MaxTotalIssues {
			return false
		}
	}
	return true
}
