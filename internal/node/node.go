// Package node composes a full machine: the coherence system of
// internal/core plus one modeled processor per hub, and runs complete
// shared-memory programs on it.
package node

import (
	"fmt"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Machine is a simulated multiprocessor ready to execute programs.
type Machine struct {
	Sys  *core.System
	CPUs []*cpu.CPU
	Bars *cpu.BarrierSet
}

// Option customizes a Machine at construction time.
type Option func(*Machine)

// WithObserver threads a progress observer down to the core.System event
// loop, so a long run reports when its simulation starts and finishes,
// how many engine events it executed, and how long it took in host time.
func WithObserver(obs core.Observer) Option {
	return func(m *Machine) { m.Sys.Observer = obs }
}

// WithSink attaches a structured-event sink (internal/obs) to the
// machine's protocol layers and interconnect before any program runs, so
// the sink sees the whole execution. A nil sink is ignored.
func WithSink(s *obs.Sink) Option {
	return func(m *Machine) {
		if s != nil {
			m.Sys.AttachObs(s)
		}
	}
}

// New builds a machine from cfg.
func New(cfg core.Config, opts ...Option) (*Machine, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	m := &Machine{Sys: sys}
	if sys.Sharded() {
		// Cores arrive at barriers from different shard goroutines;
		// completed barriers release at the group's window boundaries.
		m.Bars = cpu.NewShardedBarrierSet(sys.EngFor, cfg.Nodes, cfg.BarrierLatency)
		sys.Group().OnBarrier(m.Bars.Flush)
		if sys.Group().Adaptive() {
			// Barrier releases land at the last arrival time plus the
			// barrier latency. Under a grown window the one shard that
			// could outrun that instant is the shard executing the
			// completing arrival itself, so cut its window there; every
			// other shard is held back by the per-shard deadline bound.
			m.Bars.SetOnComplete(func(core msg.NodeID) {
				sys.EngFor(core).CutWindow()
			})
		}
	} else {
		m.Bars = cpu.NewBarrierSet(sys.Eng, cfg.Nodes, cfg.BarrierLatency)
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// prefetchOps is how many operations a lazy stream is pulled ahead at
// machine setup so its first touches can be pre-resolved (see
// preplaceFirstTouch). Prefilling happens before any event runs, so the
// pull order — and therefore placement — is identical under every
// scheduler.
const prefetchOps = 4096

// prefetchStream wraps a lazy Stream for a sharded run: construction
// pulls up to prefetchOps operations into a replay buffer, which Next
// serves back before delegating to the source again. The buffer is what
// preplaceFirstTouch scans; a generator shorter than the buffer is
// consumed whole and behaves exactly like a SliceStream.
type prefetchStream struct {
	src  cpu.Stream
	buf  []cpu.Op
	pos  int
	done bool // src exhausted during prefill
}

func newPrefetchStream(src cpu.Stream, n int) *prefetchStream {
	p := &prefetchStream{src: src}
	for len(p.buf) < n {
		op, ok := src.Next()
		if !ok {
			p.done = true
			break
		}
		p.buf = append(p.buf, op)
	}
	return p
}

func (p *prefetchStream) Next() (cpu.Op, bool) {
	if p.pos < len(p.buf) {
		op := p.buf[p.pos]
		p.pos++
		return op, true
	}
	if p.done {
		return cpu.Op{}, false
	}
	return p.src.Next()
}

// wrapLazyStreams returns streams with every non-SliceStream replaced by
// a prefetchStream over it, so a sharded run can pre-scan at least a
// bounded prefix of every program.
func wrapLazyStreams(streams []cpu.Stream) []cpu.Stream {
	out := make([]cpu.Stream, len(streams))
	for i, s := range streams {
		if _, ok := s.(*cpu.SliceStream); ok {
			out[i] = s
		} else {
			out[i] = newPrefetchStream(s, prefetchOps)
		}
	}
	return out
}

// preplaceFirstTouch resolves first-touch page placement ahead of a
// sharded run. On one engine simulated time totally orders every access,
// so dynamic first touch is well-defined; across shards two nodes can
// first-touch the same page inside one conservative time window (barnes'
// octree build does exactly that: a cell array's pages are stored by both
// the owner and a remote builder before the first barrier), and the
// winner would depend on which shard the scheduler ran first — breaking
// serial/parallel equivalence. Pre-resolving with a scheduler-independent
// rule — earliest barrier epoch wins, ties to the lowest node id — keeps
// placement identical under every scheduler and shard count.
//
// Slice streams are scanned whole. Lazy streams contribute their
// prefetched prefix (Run wraps them in prefetchStream first): pages
// first touched beyond the prefix keep dynamic first touch, which stays
// deterministic as long as those late first touches are barrier-
// separated — the prefix exists to shrink that exposure to programs
// thousands of operations in.
func (m *Machine) preplaceFirstTouch(streams []cpu.Stream) {
	type claim struct {
		epoch int
		node  msg.NodeID
	}
	mask := ^msg.Addr(m.Sys.Mem.PageBytes() - 1)
	best := make(map[msg.Addr]claim)
	for i, s := range streams {
		var ops []cpu.Op
		switch st := s.(type) {
		case *cpu.SliceStream:
			ops = st.Ops
		case *prefetchStream:
			ops = st.buf
		default:
			return
		}
		epoch := 0
		for _, op := range ops {
			switch op.Kind {
			case cpu.Barrier:
				epoch++
			case cpu.Load, cpu.Store:
				page := op.Addr & mask
				c, seen := best[page]
				if !seen || epoch < c.epoch || (epoch == c.epoch && msg.NodeID(i) < c.node) {
					best[page] = claim{epoch: epoch, node: msg.NodeID(i)}
				}
			}
		}
	}
	for page, c := range best {
		m.Sys.Mem.Place(page, c.node)
	}
}

// Interrupt asks an in-flight Run to stop cooperatively: the event loop
// notices between events and Run returns an error wrapping
// sim.ErrInterrupted. Safe from any goroutine; see core.System.Interrupt.
func (m *Machine) Interrupt() { m.Sys.Interrupt() }

// Run executes one stream per node to completion and returns aggregated
// statistics; ExecCycles is the parallel-phase makespan (the time the last
// core finishes). It returns an error if the program deadlocks (the event
// queue drains with unfinished cores), livelocks (the configured watchdog
// budget is exhausted before the queue drains) or leaves transient
// protocol state.
func (m *Machine) Run(streams []cpu.Stream) (*stats.Stats, error) {
	if len(streams) != m.Sys.Cfg.Nodes {
		return nil, fmt.Errorf("node: %d streams for %d nodes", len(streams), m.Sys.Cfg.Nodes)
	}
	if m.Sys.Sharded() {
		streams = wrapLazyStreams(streams)
		m.preplaceFirstTouch(streams)
	}
	m.CPUs = make([]*cpu.CPU, len(streams))
	for i, s := range streams {
		m.CPUs[i] = cpu.New(m.Sys.EngFor(msg.NodeID(i)), msg.NodeID(i), m.Sys.Hubs[i], s, m.Bars, m.Sys.Cfg.MaxStores)
		m.CPUs[i].Start()
	}
	if _, err := m.Sys.RunGuarded(); err != nil {
		unfinished := 0
		for _, c := range m.CPUs {
			if !c.Done() {
				unfinished++
			}
		}
		return nil, fmt.Errorf("node: %d/%d cores unfinished: %w",
			unfinished, len(m.CPUs), err)
	}

	var makespan sim.Time
	for i, c := range m.CPUs {
		if !c.Done() {
			return nil, fmt.Errorf("node: core %d did not finish (deadlock?)", i)
		}
		if c.Finish() > makespan {
			makespan = c.Finish()
		}
	}
	if err := m.Sys.QuiesceCheck(); err != nil {
		return nil, fmt.Errorf("node: program drained dirty: %w", err)
	}
	agg := m.Sys.Aggregate()
	agg.ExecCycles = uint64(makespan)
	var bars uint64
	for _, c := range m.CPUs {
		bars += c.Barriers()
	}
	agg.Barriers = bars
	return agg, nil
}
