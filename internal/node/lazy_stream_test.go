package node

import (
	"reflect"
	"testing"

	"pccsim/internal/cpu"
	"pccsim/internal/sim"
	"pccsim/internal/workload"
)

// TestPrefetchStreamReplays checks the wrapper's two phases: the
// prefilled buffer replays in order, then the source resumes exactly
// where the prefill stopped, for buffers shorter and longer than the
// stream.
func TestPrefetchStreamReplays(t *testing.T) {
	mk := func(n int) cpu.Stream {
		i := 0
		return cpu.FuncStream(func() (cpu.Op, bool) {
			if i >= n {
				return cpu.Op{}, false
			}
			i++
			return cpu.Op{Kind: cpu.Compute, Cycles: sim.Time(i)}, true
		})
	}
	for _, tc := range []struct{ ops, prefetch int }{{10, 4}, {4, 10}, {4, 4}, {0, 4}} {
		p := newPrefetchStream(mk(tc.ops), tc.prefetch)
		var got []cpu.Op
		for {
			op, ok := p.Next()
			if !ok {
				break
			}
			got = append(got, op)
		}
		if len(got) != tc.ops {
			t.Fatalf("ops=%d prefetch=%d: replayed %d operations", tc.ops, tc.prefetch, len(got))
		}
		for i, op := range got {
			if want := sim.Time(i + 1); op.Cycles != want {
				t.Fatalf("ops=%d prefetch=%d: op %d cycles %d, want %d (order broken at the buffer seam)",
					tc.ops, tc.prefetch, i, op.Cycles, want)
			}
		}
	}
}

// TestLazyStreamShardEquivalence runs the same program once as slice
// streams and once as lazy generators on identical sharded machines.
// em3d's per-node programs fit inside the prefetch buffer, so placement
// pre-resolution sees the whole program either way and the stats must
// match exactly — including between the serial and parallel schedulers
// driving lazy streams.
func TestLazyStreamShardEquivalence(t *testing.T) {
	wl, _ := workload.ByName("em3d")
	cfg := wideConfig(16, 4, false, false)
	ops := wl.Build(workload.Params{Nodes: cfg.Nodes, Iters: 1})

	run := func(lazy, parallel bool) interface{} {
		c := cfg
		c.ShardsParallel = parallel
		m, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		streams := make([]cpu.Stream, len(ops))
		for i := range ops {
			if lazy {
				prog, pos := ops[i], 0
				streams[i] = cpu.FuncStream(func() (cpu.Op, bool) {
					if pos >= len(prog) {
						return cpu.Op{}, false
					}
					op := prog[pos]
					pos++
					return op, true
				})
			} else {
				streams[i] = &cpu.SliceStream{Ops: ops[i]}
			}
		}
		st, err := m.Run(streams)
		if err != nil {
			t.Fatalf("lazy=%v parallel=%v: %v", lazy, parallel, err)
		}
		return st
	}

	slice := run(false, false)
	lazySerial := run(true, false)
	lazyParallel := run(true, true)
	if !reflect.DeepEqual(slice, lazySerial) {
		t.Errorf("lazy streams diverge from slice streams under the serial scheduler")
	}
	if !reflect.DeepEqual(lazySerial, lazyParallel) {
		t.Errorf("lazy streams: parallel scheduler diverges from serial")
	}
}
