package node

import (
	"fmt"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/msg"
	"pccsim/internal/protocol"
	"pccsim/internal/workload"
)

// protocolConfig builds a mechanism configuration for proto that enables
// everything its capabilities allow, mirroring how the compare harness
// provisions each contender: the adaptive protocol gets a RAC,
// delegation and speculative updates; dsi gets self-invalidation; plain
// write-invalidate protocols (mesi, hybrid) run the base machine.
func protocolConfig(nodes int, proto protocol.Protocol) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Protocol = proto.Name()
	cfg.CheckInvariants = true
	caps := proto.Capabilities()
	if caps.Delegation {
		cfg = cfg.With(core.WithRAC(32), core.WithDelegation(32))
		if caps.SpeculativeUpdates {
			cfg = cfg.With(core.WithSpeculativeUpdates(0))
		}
	}
	if caps.SelfInvalidation && !caps.Delegation {
		cfg.SelfInvalidate = true
	}
	return cfg
}

// TestAllWorkloadsAllProtocols is the cross-protocol invariant suite:
// every registered protocol runs every bundled workload with runtime
// coherence checking armed (stale-write and backwards-read panics in the
// version oracle), then the whole-machine SWMR/directory sweep and the
// end-state value check. The protocol name is in the subtest path, so a
// failure names its protocol.
func TestAllWorkloadsAllProtocols(t *testing.T) {
	const nodes = 8
	params := workload.Params{Nodes: nodes, Scale: 1, Iters: 2}
	for _, proto := range protocol.All() {
		for _, wl := range workload.All() {
			t.Run(fmt.Sprintf("%s/%s", proto.Name(), wl.Name), func(t *testing.T) {
				cfg := protocolConfig(nodes, proto)
				m, err := New(cfg)
				if err != nil {
					t.Fatalf("protocol %s: %v", proto.Name(), err)
				}
				ops := wl.Build(params)
				streams := make([]cpu.Stream, len(ops))
				for i := range ops {
					streams[i] = &cpu.SliceStream{Ops: ops[i]}
				}
				st, err := m.Run(streams)
				if err != nil {
					t.Fatalf("protocol %s on %s: %v", proto.Name(), wl.Name, err)
				}
				if st.ExecCycles == 0 {
					t.Fatalf("protocol %s on %s: zero makespan", proto.Name(), wl.Name)
				}
				m.Sys.CheckAll()
				if err := m.Sys.VerifyValues(); err != nil {
					t.Fatalf("protocol %s on %s: %v", proto.Name(), wl.Name, err)
				}
			})
		}
	}
}

// TestHybridPushesUpdates drives a stable producer-consumer pattern and
// checks the hybrid protocol actually exercises its update path: pushes
// go out, stable readers consume them as local hits, and the round
// bookkeeping drains (Machine.Run's QuiesceCheck).
func TestHybridPushesUpdates(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Protocol = "hybrid"
	cfg.CheckInvariants = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 writes a line, nodes 1..3 read it, repeatedly with
	// barriers: the detector marks it producer-consumer and every later
	// write becomes an update round.
	const line = msg.Addr(0x4000)
	const rounds = 12
	streams := make([]cpu.Stream, 4)
	for i := 0; i < 4; i++ {
		var ops []cpu.Op
		for r := 0; r < rounds; r++ {
			if i == 0 {
				ops = append(ops, cpu.Op{Kind: cpu.Store, Addr: line})
			} else {
				ops = append(ops, cpu.Op{Kind: cpu.Load, Addr: line})
			}
			ops = append(ops, cpu.Op{Kind: cpu.Barrier, Bar: r})
		}
		streams[i] = &cpu.SliceStream{Ops: ops}
	}
	st, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesSent == 0 {
		t.Fatal("hybrid protocol sent no updates on a stable producer-consumer pattern")
	}
	if st.UpdatesUseful == 0 {
		t.Fatal("no pushed update was consumed by a read")
	}
	m.Sys.CheckAll()
	if err := m.Sys.VerifyValues(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Sys.LatestVersion(line), uint64(rounds); got != want {
		t.Fatalf("line reached version %d, want %d", got, want)
	}
}

// TestProtocolCapabilityRejection pins the capability-degradation
// contract: a configuration that switches on a mechanism outside the
// selected protocol's capabilities is rejected at construction with an
// error wrapping both core.ErrBadConfig and protocol.ErrUnknown (for
// unknown names) — not silently ignored.
func TestProtocolCapabilityRejection(t *testing.T) {
	base := core.DefaultConfig()
	base.Nodes = 4
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"mesi-delegation", base.With(core.WithProtocol("mesi"), core.WithRAC(32), core.WithDelegation(32))},
		{"hybrid-updates", base.With(core.WithProtocol("hybrid"), core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))},
		{"mesi-selfinval", base.With(core.WithProtocol("mesi"), core.WithSelfInvalidation())},
		{"dsi-adaptive-delay", base.With(core.WithProtocol("dsi"), core.WithAdaptiveDelay())},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Fatalf("%s: configuration outside protocol capabilities was accepted", c.name)
			}
		})
	}
	if _, err := New(base.With(core.WithProtocol("mosi"))); err == nil {
		t.Fatal("unknown protocol name was accepted")
	}
}
