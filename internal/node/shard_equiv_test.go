package node

import (
	"reflect"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// runSharded executes one workload on a fresh machine with the given
// shard configuration and returns the aggregated stats.
func runSharded(t *testing.T, wl *workload.Workload, shards int, parallel bool) *stats.Stats {
	t.Helper()
	cfg := core.DefaultConfig().With(
		core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
	cfg.CheckInvariants = true
	cfg.WatchdogSteps = 50_000_000
	cfg.Shards = shards
	cfg.ShardsParallel = parallel
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("shards=%d parallel=%v: %v", shards, parallel, err)
	}
	ops := wl.Build(workload.Params{Nodes: cfg.Nodes, Iters: 1})
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	st, err := m.Run(streams)
	if err != nil {
		t.Fatalf("%s shards=%d parallel=%v: %v", wl.Name, shards, parallel, err)
	}
	return st
}

// TestShardEquivalenceAllWorkloads asserts the acceptance property of the
// sharded engine: for every workload and every shard count, the parallel
// scheduler's end-state Stats are identical to the deterministic serial
// scheduler's — same misses, same messages, same cycles, everything.
func TestShardEquivalenceAllWorkloads(t *testing.T) {
	shardCounts := []int{2, 4, 8}
	if testing.Short() {
		shardCounts = []int{4}
	}
	for _, wl := range workload.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			for _, shards := range shardCounts {
				det := runSharded(t, wl, shards, false)
				fast := runSharded(t, wl, shards, true)
				if !reflect.DeepEqual(det, fast) {
					t.Errorf("%s at %d shards: parallel stats diverge from deterministic\nserial:   %+v\nparallel: %+v",
						wl.Name, shards, det, fast)
				}
			}
		})
	}
}

// TestShardedSmoke runs one workload across the full shard-count range,
// including the single-shard degenerate group, and checks the run
// completes with coherent end state (Run already quiesce-checks).
func TestShardedSmoke(t *testing.T) {
	wl, _ := workload.ByName("em3d")
	for _, shards := range []int{2, 16} {
		runSharded(t, wl, shards, true)
	}
}
