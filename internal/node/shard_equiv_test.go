package node

import (
	"reflect"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// runMachine executes one workload on a fresh machine built from cfg and
// returns the aggregated stats plus the number of conservative windows
// the sharded scheduler dispatched (0 on a single engine).
func runMachine(t *testing.T, wl *workload.Workload, cfg core.Config) (*stats.Stats, uint64) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("%s nodes=%d shards=%d: %v", wl.Name, cfg.Nodes, cfg.Shards, err)
	}
	ops := wl.Build(workload.Params{Nodes: cfg.Nodes, Iters: 1})
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	st, err := m.Run(streams)
	if err != nil {
		t.Fatalf("%s nodes=%d shards=%d parallel=%v: %v", wl.Name, cfg.Nodes, cfg.Shards, cfg.ShardsParallel, err)
	}
	var windows uint64
	if m.Sys.Sharded() {
		windows = m.Sys.Group().Windows()
	}
	return st, windows
}

// runSharded executes one workload on a fresh machine with the given
// shard configuration and returns the aggregated stats.
func runSharded(t *testing.T, wl *workload.Workload, shards int, parallel bool) *stats.Stats {
	t.Helper()
	cfg := core.DefaultConfig().With(
		core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
	cfg.CheckInvariants = true
	cfg.WatchdogSteps = 50_000_000
	cfg.Shards = shards
	cfg.ShardsParallel = parallel
	st, _ := runMachine(t, wl, cfg)
	return st
}

// TestShardEquivalenceAllWorkloads asserts the acceptance property of the
// sharded engine: for every workload and every shard count, the parallel
// scheduler's end-state Stats are identical to the deterministic serial
// scheduler's — same misses, same messages, same cycles, everything.
func TestShardEquivalenceAllWorkloads(t *testing.T) {
	shardCounts := []int{2, 4, 8}
	if testing.Short() {
		shardCounts = []int{4}
	}
	for _, wl := range workload.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			for _, shards := range shardCounts {
				det := runSharded(t, wl, shards, false)
				fast := runSharded(t, wl, shards, true)
				if !reflect.DeepEqual(det, fast) {
					t.Errorf("%s at %d shards: parallel stats diverge from deterministic\nserial:   %+v\nparallel: %+v",
						wl.Name, shards, det, fast)
				}
			}
		})
	}
}

// TestShardedSmoke runs one workload across the full shard-count range,
// including the single-shard degenerate group, and checks the run
// completes with coherent end state (Run already quiesce-checks).
func TestShardedSmoke(t *testing.T) {
	wl, _ := workload.ByName("em3d")
	for _, shards := range []int{2, 16} {
		runSharded(t, wl, shards, true)
	}
}

// wideConfig is the 128-node delegation-only machine the wide-vector and
// adaptive-window tests run on (updates stay off: cross-shard update
// staging suppresses window growth by design).
func wideConfig(nodes, shards int, parallel, adaptive bool) core.Config {
	cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32))
	cfg.Nodes = nodes
	cfg.CheckInvariants = true
	cfg.WatchdogSteps = 200_000_000
	cfg.Shards = shards
	cfg.ShardsParallel = parallel
	cfg.AdaptiveWindows = adaptive
	return cfg
}

// TestShardEquivalence128Nodes scales the acceptance property past the
// old 64-node sharing-vector limit: at 128 nodes, for every workload,
// the parallel scheduler matches the deterministic serial one exactly.
func TestShardEquivalence128Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("128-node sweep is long; run without -short")
	}
	shardCounts := []int{4, 16}
	for _, wl := range workload.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			for _, shards := range shardCounts {
				det, _ := runMachine(t, wl, wideConfig(128, shards, false, false))
				fast, _ := runMachine(t, wl, wideConfig(128, shards, true, false))
				if !reflect.DeepEqual(det, fast) {
					t.Errorf("%s at 128 nodes, %d shards: parallel stats diverge from deterministic",
						wl.Name, shards)
				}
			}
		})
	}
}

// TestWideSmoke256 runs the full vector width: a 256-node machine (all
// four words of msg.Vector populated) under the parallel adaptive
// scheduler, quiesce-checked by Run.
func TestWideSmoke256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node run is long; run without -short")
	}
	wl, _ := workload.ByName("em3d")
	runMachine(t, wl, wideConfig(256, 16, true, true))
}

// TestAdaptiveWindowsEquivalence asserts the adaptive scheduler's
// contract: identical end-state stats to the fixed-window scheduler
// (growth may only remove barriers, never reorder or retime events), in
// both serial and parallel modes, with a strictly lower window count on
// the barrier-heavy workload the optimization targets.
func TestAdaptiveWindowsEquivalence(t *testing.T) {
	for _, wl := range workload.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			fixed, fixedWin := runMachine(t, wl, wideConfig(16, 4, false, false))
			adapt, adaptWin := runMachine(t, wl, wideConfig(16, 4, false, true))
			if !reflect.DeepEqual(fixed, adapt) {
				t.Errorf("%s: adaptive windows drift from fixed windows\nfixed:    %+v\nadaptive: %+v",
					wl.Name, fixed, adapt)
			}
			if adaptWin > fixedWin {
				t.Errorf("%s: adaptive dispatched more windows (%d) than fixed (%d)",
					wl.Name, adaptWin, fixedWin)
			}
			par, parWin := runMachine(t, wl, wideConfig(16, 4, true, true))
			if !reflect.DeepEqual(adapt, par) {
				t.Errorf("%s: adaptive parallel stats diverge from adaptive serial", wl.Name)
			}
			if parWin != adaptWin {
				t.Errorf("%s: adaptive window count differs: serial %d, parallel %d", wl.Name, adaptWin, parWin)
			}
			if wl.Name == "em3d" && adaptWin >= fixedWin {
				t.Errorf("em3d: adaptive windows did not reduce barriers: %d >= %d", adaptWin, fixedWin)
			}
		})
	}
}
