package node

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/msg"
	"pccsim/internal/sim"
)

func cfg4() core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.CheckInvariants = true
	return cfg
}

func TestRunSimpleProgram(t *testing.T) {
	m, err := New(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]cpu.Stream, 4)
	for i := range streams {
		ops := []cpu.Op{
			{Kind: cpu.Store, Addr: msg.Addr(0x1000 * (i + 1))},
			{Kind: cpu.Barrier, Bar: 0},
			{Kind: cpu.Load, Addr: msg.Addr(0x1000 * ((i+1)%4 + 1))},
		}
		streams[i] = &cpu.SliceStream{Ops: ops}
	}
	st, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCycles == 0 {
		t.Fatal("zero makespan")
	}
	if st.Loads != 4 || st.Stores != 4 {
		t.Fatalf("loads=%d stores=%d, want 4/4", st.Loads, st.Stores)
	}
	if st.Barriers != 4 {
		t.Fatalf("barriers=%d, want 4", st.Barriers)
	}
}

func TestRunWrongStreamCount(t *testing.T) {
	m, err := New(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(make([]cpu.Stream, 2))
	if err == nil || !strings.Contains(err.Error(), "streams") {
		t.Fatalf("stream-count mismatch not rejected: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// One core waits at a barrier no other core reaches.
	m, err := New(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]cpu.Stream, 4)
	streams[0] = &cpu.SliceStream{Ops: []cpu.Op{{Kind: cpu.Barrier, Bar: 9}}}
	for i := 1; i < 4; i++ {
		streams[i] = &cpu.SliceStream{Ops: nil}
	}
	_, err = m.Run(streams)
	if err == nil || !strings.Contains(err.Error(), "did not finish") {
		t.Fatalf("deadlocked program not reported: %v", err)
	}
}

// pcStreams builds a small producer-consumer program for 4 nodes.
func pcStreams() []cpu.Stream {
	streams := make([]cpu.Stream, 4)
	for i := range streams {
		ops := []cpu.Op{
			{Kind: cpu.Store, Addr: msg.Addr(0x1000 * (i + 1))},
			{Kind: cpu.Barrier, Bar: 0},
			{Kind: cpu.Load, Addr: msg.Addr(0x1000 * ((i+1)%4 + 1))},
		}
		streams[i] = &cpu.SliceStream{Ops: ops}
	}
	return streams
}

func TestWatchdogAbortsRunaway(t *testing.T) {
	cfg := cfg4()
	cfg.WatchdogSteps = 10 // far below what any real program needs
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(pcStreams())
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	var runaway *sim.RunawayError
	if !errors.As(err, &runaway) {
		t.Fatalf("error %v does not wrap *sim.RunawayError", err)
	}
	if runaway.Pending == 0 {
		t.Fatal("runaway error lacks pending-event context")
	}
	if !strings.Contains(err.Error(), "cores unfinished") {
		t.Fatalf("error lacks core context: %v", err)
	}
}

func TestWatchdogUnderBudgetIdentical(t *testing.T) {
	// A generous budget must not perturb the simulation at all.
	unguarded, err := New(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	st1, err := unguarded.Run(pcStreams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfg4()
	cfg.WatchdogSteps = 1 << 30
	guarded, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := guarded.Run(pcStreams())
	if err != nil {
		t.Fatal(err)
	}
	if st1.ExecCycles != st2.ExecCycles || st1.TotalMessages() != st2.TotalMessages() {
		t.Fatalf("guard changed results: %d/%d cycles, %d/%d messages",
			st1.ExecCycles, st2.ExecCycles, st1.TotalMessages(), st2.TotalMessages())
	}
}

func TestObserverThreadedToCore(t *testing.T) {
	var started, finished bool
	var steps uint64
	obs := core.Observer{
		Start: func(*core.System) { started = true },
		Done: func(_ *core.System, n uint64, _ time.Duration) {
			finished = true
			steps = n
		},
	}
	m, err := New(cfg4(), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(pcStreams()); err != nil {
		t.Fatal(err)
	}
	if !started || !finished {
		t.Fatalf("observer hooks: started=%v finished=%v", started, finished)
	}
	if steps == 0 {
		t.Fatal("observer reported zero engine events")
	}
}

func TestBadConfigRejected(t *testing.T) {
	bad := core.DefaultConfig()
	bad.Nodes = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMakespanIsMaxFinish(t *testing.T) {
	m, err := New(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]cpu.Stream, 4)
	streams[0] = &cpu.SliceStream{Ops: []cpu.Op{{Kind: cpu.Compute, Cycles: 50_000}}}
	for i := 1; i < 4; i++ {
		streams[i] = &cpu.SliceStream{Ops: []cpu.Op{{Kind: cpu.Compute, Cycles: 10}}}
	}
	st, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCycles < 50_000 {
		t.Fatalf("makespan %d < slowest core's 50000", st.ExecCycles)
	}
}
