// Package rac implements the remote access cache of §2.1: a per-hub cache
// for remote data that plays three roles. It is (1) a victim cache for
// remote lines evicted from the processor caches, (2) the landing zone for
// speculative updates pushed by producers — the location researchers usually
// assume can be "pushed into the processor cache", which real processors do
// not allow — and (3) a surrogate main memory for lines delegated to this
// node: for each delegated line the corresponding RAC entry is pinned.
package rac

import (
	"pccsim/internal/cache"
	"pccsim/internal/msg"
)

// Line is one RAC entry.
type Line struct {
	Addr    msg.Addr
	State   cache.State // Shared (clean copy) or Excl (owner copy)
	Dirty   bool
	Version uint64
	Grant   uint64 // ownership epoch for Excl victim copies
	Pinned  bool   // surrogate-memory entry for a delegated line
	// FromUpdate marks data that arrived via a speculative push;
	// Consumed is set at the first local read, letting the statistics
	// distinguish useful updates from wasted ones.
	FromUpdate bool
	Consumed   bool
	valid      bool
	lastUse    uint64
}

// Victim describes an entry displaced by Insert.
type Victim struct {
	Valid      bool
	Addr       msg.Addr
	State      cache.State
	Dirty      bool
	Version    uint64
	Grant      uint64
	FromUpdate bool
	Consumed   bool
}

// RAC is a set-associative remote access cache with entry pinning.
type RAC struct {
	lineBytes int
	numSets   int
	ways      int
	sets      []Line
	useClock  uint64
}

// New creates a RAC of totalBytes capacity. Geometry rules match
// cache.New: the set count must be a power of two.
func New(totalBytes, ways, lineBytes int) *RAC {
	if totalBytes%(ways*lineBytes) != 0 {
		panic("rac: capacity not divisible into sets")
	}
	numSets := totalBytes / (ways * lineBytes)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("rac: set count must be a positive power of two")
	}
	return &RAC{
		lineBytes: lineBytes,
		numSets:   numSets,
		ways:      ways,
		sets:      make([]Line, numSets*ways),
	}
}

// Capacity returns total capacity in bytes.
func (r *RAC) Capacity() int { return r.numSets * r.ways * r.lineBytes }

func (r *RAC) align(addr msg.Addr) msg.Addr { return addr &^ msg.Addr(r.lineBytes-1) }

func (r *RAC) set(addr msg.Addr) []Line {
	idx := (uint64(addr) / uint64(r.lineBytes)) & uint64(r.numSets-1)
	return r.sets[idx*uint64(r.ways) : (idx+1)*uint64(r.ways)]
}

// Lookup returns the entry for addr, or nil.
func (r *RAC) Lookup(addr msg.Addr) *Line {
	addr = r.align(addr)
	set := r.set(addr)
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Touch refreshes recency for addr and returns its entry.
func (r *RAC) Touch(addr msg.Addr) *Line {
	l := r.Lookup(addr)
	if l != nil {
		r.useClock++
		l.lastUse = r.useClock
	}
	return l
}

// Insert places addr in the RAC, evicting the LRU unpinned entry of the set
// if needed. It reports ok=false — without modifying the cache — when every
// way of the set is pinned, which is the signal that a delegation must be
// dropped before more delegated lines can be pinned here.
func (r *RAC) Insert(addr msg.Addr, st cache.State) (*Line, Victim, bool) {
	addr = r.align(addr)
	set := r.set(addr)
	slot := -1
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			slot = i
			break
		}
		if slot < 0 && !set[i].valid {
			slot = i
		}
	}
	var victim Victim
	if slot < 0 {
		for i := range set {
			if set[i].Pinned {
				continue
			}
			if slot < 0 || set[i].lastUse < set[slot].lastUse {
				slot = i
			}
		}
		if slot < 0 {
			return nil, Victim{}, false // every way pinned
		}
		v := &set[slot]
		victim = Victim{Valid: true, Addr: v.Addr, State: v.State, Dirty: v.Dirty, Version: v.Version,
			Grant: v.Grant, FromUpdate: v.FromUpdate, Consumed: v.Consumed}
	}
	r.useClock++
	pinned := set[slot].valid && set[slot].Addr == addr && set[slot].Pinned
	set[slot] = Line{Addr: addr, State: st, valid: true, Pinned: pinned, lastUse: r.useClock}
	return &set[slot], victim, true
}

// Pin marks addr as a surrogate-memory entry that Insert may not evict.
// It reports false if addr is not present.
func (r *RAC) Pin(addr msg.Addr) bool {
	l := r.Lookup(addr)
	if l == nil {
		return false
	}
	l.Pinned = true
	return true
}

// Unpin clears the pin on addr, making it evictable again.
func (r *RAC) Unpin(addr msg.Addr) {
	if l := r.Lookup(addr); l != nil {
		l.Pinned = false
	}
}

// Invalidate removes addr, returning its prior contents.
func (r *RAC) Invalidate(addr msg.Addr) Victim {
	l := r.Lookup(addr)
	if l == nil {
		return Victim{}
	}
	v := Victim{Valid: true, Addr: l.Addr, State: l.State, Dirty: l.Dirty, Version: l.Version,
		Grant: l.Grant, FromUpdate: l.FromUpdate, Consumed: l.Consumed}
	*l = Line{}
	return v
}

// Count returns the number of valid entries.
func (r *RAC) Count() int {
	n := 0
	for i := range r.sets {
		if r.sets[i].valid {
			n++
		}
	}
	return n
}

// PinnedCount returns the number of pinned entries.
func (r *RAC) PinnedCount() int {
	n := 0
	for i := range r.sets {
		if r.sets[i].valid && r.sets[i].Pinned {
			n++
		}
	}
	return n
}

// ForEach calls fn on every valid entry.
func (r *RAC) ForEach(fn func(*Line)) {
	for i := range r.sets {
		if r.sets[i].valid {
			fn(&r.sets[i])
		}
	}
}
