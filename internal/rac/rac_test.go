package rac

import (
	"testing"
	"testing/quick"

	"pccsim/internal/cache"
	"pccsim/internal/msg"
)

func TestInsertLookup(t *testing.T) {
	r := New(32*1024, 4, 128)
	l, v, ok := r.Insert(0x4000, cache.Shared)
	if !ok || v.Valid {
		t.Fatalf("insert: ok=%v victim=%+v", ok, v)
	}
	l.Version = 7
	got := r.Lookup(0x4008)
	if got == nil || got.Version != 7 {
		t.Fatal("lookup within line failed")
	}
}

func TestPinnedNotEvicted(t *testing.T) {
	r := New(2*128, 2, 128) // one set, two ways
	r.Insert(0x0000, cache.Excl)
	if !r.Pin(0x0000) {
		t.Fatal("Pin failed on present line")
	}
	r.Insert(0x1000, cache.Shared)
	// Third insert must evict the unpinned 0x1000, not the pinned line.
	_, v, ok := r.Insert(0x2000, cache.Shared)
	if !ok {
		t.Fatal("insert with one unpinned way failed")
	}
	if !v.Valid || v.Addr != 0x1000 {
		t.Fatalf("victim = %+v, want 0x1000", v)
	}
	if r.Lookup(0x0000) == nil {
		t.Fatal("pinned line was evicted")
	}
}

func TestAllWaysPinnedInsertFails(t *testing.T) {
	r := New(2*128, 2, 128)
	r.Insert(0x0000, cache.Excl)
	r.Insert(0x1000, cache.Excl)
	r.Pin(0x0000)
	r.Pin(0x1000)
	_, _, ok := r.Insert(0x2000, cache.Shared)
	if ok {
		t.Fatal("insert succeeded with every way pinned")
	}
	if r.Count() != 2 || r.PinnedCount() != 2 {
		t.Fatal("failed insert modified the cache")
	}
}

func TestReinsertKeepsPin(t *testing.T) {
	r := New(2*128, 2, 128)
	r.Insert(0x0000, cache.Shared)
	r.Pin(0x0000)
	l, _, ok := r.Insert(0x0000, cache.Excl)
	if !ok || !l.Pinned {
		t.Fatalf("reinsert dropped pin: ok=%v line=%+v", ok, l)
	}
	if l.State != cache.Excl {
		t.Fatal("reinsert did not update state")
	}
}

func TestUnpinAllowsEviction(t *testing.T) {
	r := New(128, 1, 128)
	r.Insert(0x0000, cache.Excl)
	r.Pin(0x0000)
	if _, _, ok := r.Insert(0x1000, cache.Shared); ok {
		t.Fatal("insert over pinned direct-mapped entry succeeded")
	}
	r.Unpin(0x0000)
	if _, _, ok := r.Insert(0x1000, cache.Shared); !ok {
		t.Fatal("insert after unpin failed")
	}
}

func TestPinAbsent(t *testing.T) {
	r := New(1024, 4, 128)
	if r.Pin(0x5000) {
		t.Fatal("Pin of absent address reported success")
	}
	r.Unpin(0x5000) // must not panic
}

func TestInvalidate(t *testing.T) {
	r := New(1024, 4, 128)
	l, _, _ := r.Insert(0x100, cache.Excl)
	l.Dirty = true
	l.Version = 3
	v := r.Invalidate(0x100)
	if !v.Valid || !v.Dirty || v.Version != 3 {
		t.Fatalf("victim = %+v", v)
	}
	if r.Lookup(0x100) != nil {
		t.Fatal("still present after Invalidate")
	}
}

func TestLRUAmongUnpinned(t *testing.T) {
	r := New(4*128, 4, 128)
	for i := 0; i < 4; i++ {
		r.Insert(msg.Addr(i)*0x1000, cache.Shared)
	}
	r.Pin(0x0000)
	r.Touch(0x1000) // 0x2000 becomes LRU among unpinned
	_, v, _ := r.Insert(0x9000, cache.Shared)
	if v.Addr != 0x2000 {
		t.Fatalf("evicted %#x, want 0x2000", uint64(v.Addr))
	}
}

func TestCapacity(t *testing.T) {
	r := New(32*1024, 4, 128)
	if r.Capacity() != 32*1024 {
		t.Fatalf("Capacity = %d", r.Capacity())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad geometry")
		}
	}()
	New(100, 3, 128)
}

// Property: pinned entries survive arbitrary insert storms; Count never
// exceeds capacity; no duplicate addresses.
func TestPropertyPinnedSurvive(t *testing.T) {
	f := func(addrs []uint16) bool {
		r := New(8*2*128, 2, 128)
		r.Insert(0x0, cache.Excl)
		r.Pin(0x0)
		r.Insert(0x80*3, cache.Excl)
		r.Pin(0x80 * 3)
		for _, a := range addrs {
			r.Insert(msg.Addr(a)*128, cache.Shared)
		}
		if r.Lookup(0x0) == nil || r.Lookup(0x80*3) == nil {
			return false
		}
		if r.Count() > 16 {
			return false
		}
		seen := map[msg.Addr]bool{}
		dup := false
		r.ForEach(func(l *Line) {
			if seen[l.Addr] {
				dup = true
			}
			seen[l.Addr] = true
		})
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
