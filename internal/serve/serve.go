// Package serve is the multi-tenant simulation service behind
// `pccsim serve`: a stdlib net/http JSON API that accepts simulation
// runs, harness experiments, fuzz campaigns and benchmark measurements
// as jobs on a bounded queue, executes them on a fixed worker pool over
// the shared internal/runner memo (duplicate submissions — across
// requests and tenants — simulate once and return byte-identical
// bodies), streams progress over SSE, exports Perfetto traces, and
// drains gracefully on shutdown.
//
// Determinism is the API contract: a run job's result body is
// byte-identical to the equivalent pccsim CLI invocation's stdout,
// including under -shards and -adaptive-windows, because both paths
// build the same core.Config and render through the same
// harness.WriteRunReport.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pccsim/internal/cpu"
	"pccsim/internal/node"
	"pccsim/internal/obs"
	"pccsim/internal/protocol"
	"pccsim/internal/runner"
	"pccsim/internal/sim"
)

// Config sizes the server. The zero value is usable: every field has a
// serving default applied by New.
type Config struct {
	// Addr is the listen address (cmd-layer concern; carried here so the
	// flag>file>default loader has one struct to fill).
	Addr string
	// QueueDepth bounds queued-but-not-running jobs; a full queue makes
	// submission return 429. Default 64.
	QueueDepth int
	// Workers is the number of concurrent job executors. Default 2 —
	// jobs themselves parallelize internally (experiment batches, fuzz
	// campaigns), so a small executor count keeps memory bounded.
	Workers int
	// TenantQuota caps one tenant's queued+running jobs; over quota is
	// 429. Default 8; negative = unlimited.
	TenantQuota int
	// RunnerWorkers sizes the shared simulation pool batches fan out on
	// (0 = GOMAXPROCS).
	RunnerWorkers int
	// DrainTimeout bounds Drain: jobs still running when it expires are
	// cancelled cooperatively. Default 2 minutes.
	DrainTimeout time.Duration
	// Log receives one line per lifecycle event (nil = log.Default).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = 8
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * time.Minute
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the job service. Create with New, expose via Handler, stop
// with Drain.
type Server struct {
	cfg    Config
	runner *runner.Runner
	mux    *http.ServeMux
	wg     sync.WaitGroup
	queue  chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	tenants  map[string]int
	draining bool
	nextID   int

	// Submission-level result accounting (the runner's CacheStats counts
	// simulation cells; these count whole jobs, which is what the soak
	// test's "duplicate submissions were memoized" assertion reads).
	jobsDone   uint64
	jobsCached uint64
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  runner.New(cfg.RunnerWorkers, nil),
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		tenants: make(map[string]int),
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
}

// tenant resolves the requesting tenant; quotas key on this. Absent
// header = the shared "anon" tenant.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anon"
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job. Responses: 202 with the job's status, 400
// on a malformed spec, 429 when the queue is full or the tenant is over
// quota (with Retry-After), 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var env struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		httpError(w, http.StatusBadRequest, "parsing job: %v", err)
		return
	}
	// Strict per-kind decode: unknown fields are almost always typos of
	// real spec fields, and a silently ignored knob would submit a
	// different cell than the client thinks it did.
	var spec any
	switch env.Kind {
	case "run", "":
		env.Kind, spec = "run", &runSpec{}
	case "experiment":
		spec = &experimentSpec{}
	case "fuzz":
		spec = &fuzzSpec{}
	case "bench":
		spec = &benchSpec{}
	default:
		httpError(w, http.StatusBadRequest, "unknown kind %q (run|experiment|fuzz|bench)", env.Kind)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		httpError(w, http.StatusBadRequest, "parsing %s spec: %v", env.Kind, err)
		return
	}
	// Validate what can be validated up front, so a bad spec is a 400 at
	// submission, not a failed job minutes later.
	switch sp := spec.(type) {
	case *runSpec:
		if _, err := sp.build(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case *fuzzSpec:
		if sp.Budget != "" {
			if _, err := time.ParseDuration(sp.Budget); err != nil {
				httpError(w, http.StatusBadRequest, "fuzz budget: %v", err)
				return
			}
		}
		if sp.Protocol != "" {
			if _, err := protocol.Lookup(sp.Protocol); err != nil {
				httpError(w, http.StatusBadRequest, "fuzz protocol: %v", err)
				return
			}
		}
	}

	ten := tenant(r)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		Tenant: ten, Kind: env.Kind, Created: time.Now(),
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		state: StateQueued,
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if q := s.cfg.TenantQuota; q > 0 && s.tenants[ten] >= q {
		s.mu.Unlock()
		cancel()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %q over quota (%d active jobs)", ten, q)
		return
	}
	s.nextID++
	j.ID = "j" + strconv.Itoa(s.nextID)
	j.specv = spec
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full (%d jobs)", s.cfg.QueueDepth)
		return
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.tenants[ten]++
	s.mu.Unlock()

	s.cfg.Log.Printf("serve: %s accepted %s job %s", ten, j.Kind, j.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.status())
}

// worker drains the queue until it is closed (drain) and empty. Each
// dequeued job runs to a terminal state before the next is taken, so
// closing the queue and waiting for the workers is exactly "no dropped
// in-flight jobs".
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state == StateCancelled {
		j.mu.Unlock()
		return // cancelled while queued; slot already released
	}
	spec := j.specv
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	var err error
	switch sp := spec.(type) {
	case *runSpec:
		err = s.execRun(j, sp)
	case *experimentSpec:
		err = s.execExperiment(j, sp)
	case *fuzzSpec:
		err = s.execFuzz(j, sp)
	case *benchSpec:
		err = s.execBench(j, sp)
	default:
		err = fmt.Errorf("no spec attached")
	}

	st := StateDone
	if err != nil {
		st = StateFailed
		if errors.Is(err, sim.ErrInterrupted) || j.ctx.Err() != nil {
			st = StateCancelled
		}
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
	}
	j.setState(st)
	s.release(j)
	close(j.done)
	j.cancel()
	status := j.status()
	s.mu.Lock()
	s.jobsDone++
	if status.Cached {
		s.jobsCached++
	}
	s.mu.Unlock()
	s.cfg.Log.Printf("serve: job %s (%s/%s) %s cached=%v bytes=%d err=%q",
		j.ID, j.Tenant, j.Kind, status.State, status.Cached, status.Bytes, status.Error)
}

// release returns the job's tenant-quota slot exactly once.
func (s *Server) release(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.released {
		j.released = true
		s.tenants[j.Tenant]--
	}
}

func (s *Server) job(r *http.Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

// handleResult serves the finished body with the job's content type —
// for run jobs, the bytes the CLI would have printed. 409 until the job
// reaches a terminal state; 410 for cancelled jobs; 424 for failed ones.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state, errMsg, body, ctype := j.state, j.errMsg, j.body, j.ctype
	j.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		httpError(w, http.StatusConflict, "job is %s; poll status or stream events", state)
	case StateCancelled:
		httpError(w, http.StatusGone, "job was cancelled: %s", errMsg)
	case StateFailed:
		httpError(w, http.StatusFailedDependency, "job failed: %s", errMsg)
	default:
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	}
}

// handleCancel cancels a queued or running job. Queued jobs flip straight
// to cancelled; running run-jobs get a cooperative interrupt and report
// cancelled once the simulation notices (experiment/fuzz/bench jobs
// complete — their batches have no per-cell cancellation).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state := j.state
	if state == StateQueued {
		j.state = StateCancelled
		j.errMsg = "cancelled while queued"
		j.finished = time.Now()
	}
	j.mu.Unlock()
	switch state {
	case StateQueued:
		s.release(j)
		j.cancel()
		close(j.done)
		s.cfg.Log.Printf("serve: job %s cancelled while queued", j.ID)
	case StateRunning:
		j.cancel()
		s.cfg.Log.Printf("serve: job %s interrupt requested", j.ID)
	default:
		httpError(w, http.StatusConflict, "job already %s", state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

// handleTrace re-runs a finished run job with an unbounded obs sink and
// exports the protocol event stream as Perfetto/Chrome trace JSON. The
// re-run's report must byte-match the stored result — the simulator is
// deterministic, so a mismatch is a server bug worth a 500, not a quiet
// shrug (the same hard cross-check `pccsim trace` makes).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state, cell, want := j.state, j.cell, j.body
	j.mu.Unlock()
	if j.Kind != "run" {
		httpError(w, http.StatusBadRequest, "traces exist for run jobs only")
		return
	}
	if state != StateDone {
		httpError(w, http.StatusConflict, "job is %s; trace needs a finished run", state)
		return
	}
	m, err := node.New(cell.cfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sink := obs.NewSink(-1)
	m.Sys.AttachObs(sink)
	ops := cell.wl.Build(cell.params)
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	st, err := m.Run(streams)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "trace re-run: %v", err)
		return
	}
	var got bytes.Buffer
	// Imported here from job.go's exec path: identical rendering.
	writeRunReport(&got, cell, st)
	if !bytes.Equal(got.Bytes(), want) {
		httpError(w, http.StatusInternalServerError,
			"trace re-run diverged from stored result (%d vs %d bytes) — determinism bug", got.Len(), len(want))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", "attachment; filename="+j.ID+"-trace.json")
	if err := obs.WritePerfetto(w, sink); err != nil {
		s.cfg.Log.Printf("serve: job %s trace write: %v", j.ID, err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{"ok": !draining, "draining": draining})
}

// Stats is the /v1/stats body.
type Stats struct {
	Jobs       map[string]int `json:"jobs"`
	QueueLen   int            `json:"queue_len"`
	QueueCap   int            `json:"queue_cap"`
	Tenants    map[string]int `json:"tenants"`
	Draining   bool           `json:"draining"`
	JobsDone   uint64         `json:"jobs_done"`
	JobsCached uint64         `json:"jobs_cached"`
	MemoHits   uint64         `json:"memo_hits"`
	MemoMisses uint64         `json:"memo_misses"`
	MemoCells  int            `json:"memo_cells"`
}

func (s *Server) snapshotStats() Stats {
	hits, misses := s.runner.CacheStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Jobs:     map[string]int{},
		QueueLen: len(s.queue), QueueCap: cap(s.queue),
		Tenants: map[string]int{}, Draining: s.draining,
		JobsDone: s.jobsDone, JobsCached: s.jobsCached,
		MemoHits: hits, MemoMisses: misses, MemoCells: s.runner.Cells(),
	}
	for _, j := range s.jobs {
		st.Jobs[j.status().State]++
	}
	for t, n := range s.tenants {
		if n > 0 {
			st.Tenants[t] = n
		}
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.snapshotStats())
}

// Drain gracefully stops the job layer: new submissions get 503, queued
// and running jobs finish, and when ctx (bounded by Config.DrainTimeout
// at the cmd layer) expires first, the stragglers are cancelled
// cooperatively and still waited for. Safe to call once; the HTTP
// listener's own Shutdown runs after this, so event streams attached to
// in-flight jobs survive until those jobs finish.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.cfg.Log.Printf("serve: draining (%d queued)", len(s.queue))

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Log.Printf("serve: drain timeout; interrupting in-flight jobs")
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
	}
	s.cfg.Log.Printf("serve: drained")
}
