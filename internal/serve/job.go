package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pccsim/internal/core"
	"pccsim/internal/fault"
	"pccsim/internal/harness"
	"pccsim/internal/node"
	"pccsim/internal/obs"
	"pccsim/internal/perf"
	"pccsim/internal/runner"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// Job states. A job moves queued → running → one of the terminal states;
// cancelled can also be reached straight from queued.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is one unit of server work: a simulation run, a harness experiment,
// a fuzz campaign, or a benchmark measurement.
type Job struct {
	ID      string
	Tenant  string
	Kind    string
	Created time.Time

	// ctx is cancelled by DELETE and by drain timeouts; run jobs
	// propagate it into the runner's cooperative interrupt.
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state.
	done chan struct{}

	// Live progress, written by the simulation's obs tap (run jobs) or
	// the campaign logger; read by the SSE stream without locks.
	obsEvents atomic.Uint64
	simTime   atomic.Uint64

	// run-job cell, kept for the trace endpoint's deterministic re-run.
	cell *runCell

	mu       sync.Mutex
	specv    any // decoded kind-specific spec, set before enqueue
	state    string
	started  time.Time
	finished time.Time
	cached   bool // result came from the memo, not a fresh simulation
	errMsg   string
	body     []byte
	ctype    string
	released bool // tenant quota slot given back
}

type runCell struct {
	cfg    core.Config
	wl     *workload.Workload
	params workload.Params
}

func (j *Job) setState(s string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	switch s {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCancelled:
		j.finished = time.Now()
	}
}

// Status is the wire form of a job's state, served by GET /v1/jobs/{id}
// and embedded in SSE progress events.
type Status struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
	ObsEvents uint64 `json:"obs_events,omitempty"`
	SimTime   uint64 `json:"sim_time,omitempty"`
	Bytes     int    `json:"result_bytes,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Kind: j.Kind, Tenant: j.Tenant, State: j.state,
		Cached: j.cached, Error: j.errMsg,
		ObsEvents: j.obsEvents.Load(), SimTime: j.simTime.Load(),
		Bytes: len(j.body),
	}
}

// runSpec mirrors the pccsim CLI's root flags, default for default, so a
// job body and a command line describe the same cell. Delay and Hop are
// pointers because 0 is a meaningful override (nil = the CLI default).
type runSpec struct {
	Kind            string  `json:"kind"`
	Workload        string  `json:"workload"`
	Protocol        string  `json:"protocol"`
	Nodes           int     `json:"nodes"`
	Scale           int     `json:"scale"`
	Iters           int     `json:"iters"`
	RAC             int     `json:"rac"`
	Deledc          int     `json:"deledc"`
	Updates         bool    `json:"updates"`
	Delay           *uint64 `json:"delay"`
	Hop             *uint64 `json:"hop"`
	Check           bool    `json:"check"`
	Shards          int     `json:"shards"`
	Deterministic   bool    `json:"deterministic"`
	AdaptiveWindows bool    `json:"adaptive_windows"`
}

// build produces exactly the configuration the pccsim CLI would build for
// the equivalent flags — the first half of the CLI/HTTP byte-identity
// contract (the second half is rendering through WriteRunReport).
func (sp *runSpec) build() (*runCell, error) {
	if sp.Workload == "" {
		sp.Workload = "em3d"
	}
	if sp.Nodes == 0 {
		sp.Nodes = 16
	}
	if sp.Scale == 0 {
		sp.Scale = 1
	}
	delay, hop := uint64(50), uint64(100)
	if sp.Delay != nil {
		delay = *sp.Delay
	}
	if sp.Hop != nil {
		hop = *sp.Hop
	}
	wl, err := workload.Lookup(sp.Workload)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Nodes = sp.Nodes
	cfg.Protocol = sp.Protocol
	cfg.RACBytes = sp.RAC
	cfg.DelegateEntries = sp.Deledc
	cfg.EnableUpdates = sp.Updates && sp.RAC > 0 && sp.Deledc > 0
	cfg.InterventionDelay = sim.Time(delay)
	cfg.Network.HopLatency = sim.Time(hop)
	cfg.CheckInvariants = sp.Check
	if sp.Deterministic {
		cfg = cfg.With(core.WithDeterministicShards(sp.Shards))
	} else {
		cfg = cfg.With(core.WithShards(sp.Shards))
	}
	if sp.AdaptiveWindows {
		cfg = cfg.With(core.WithAdaptiveWindows())
	}
	// Full config validation here means an unknown protocol name or a
	// mechanism the protocol can't honor is a 400 at submission, not a
	// failed job later.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &runCell{cfg: cfg, wl: wl,
		params: workload.Params{Nodes: sp.Nodes, Scale: sp.Scale, Iters: sp.Iters}}, nil
}

// execRun simulates one cell through the shared runner (so duplicates —
// within this server's lifetime, across tenants — are served from the
// memo) and renders the canonical run report.
func (s *Server) execRun(j *Job, sp *runSpec) error {
	cell, err := sp.build()
	if err != nil {
		return err
	}
	j.cell = cell
	rj := runner.Job{
		Label: "serve/" + j.ID, Cfg: cell.cfg, Workload: cell.wl, Params: cell.params,
		Attach: func(m *node.Machine) {
			// Progress rides the obs stream: a metrics-only sink whose tap
			// counts protocol events and tracks the simulation clock. The
			// sink never feeds back into the simulation, so attaching it
			// keeps the run bit-identical to an unobserved one.
			sink := obs.NewSink(0)
			sink.Tap = func(e obs.Event) {
				j.obsEvents.Add(1)
				j.simTime.Store(uint64(e.At))
			}
			m.Sys.AttachObs(sink)
		},
	}
	st, cached, err := s.runner.RunOneCtx(j.ctx, rj)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	writeRunReport(&buf, cell, st)
	j.mu.Lock()
	j.body, j.ctype, j.cached = buf.Bytes(), "text/plain; charset=utf-8", cached
	j.mu.Unlock()
	return nil
}

// experimentSpec selects one harness experiment; rendered as the same CSV
// bytes pccbench writes.
type experimentSpec struct {
	Kind            string `json:"kind"`
	Exp             string `json:"exp"`
	Nodes           int    `json:"nodes"`
	Scale           int    `json:"scale"`
	Iters           int    `json:"iters"`
	Shards          int    `json:"shards"`
	Deterministic   bool   `json:"deterministic"`
	AdaptiveWindows bool   `json:"adaptive_windows"`
}

// execExperiment runs one figure/table through a throwaway Session on the
// server's shared runner: every cell an earlier request already simulated
// is free. The session carries the job's context, so DELETE (and drain
// timeout) interrupts the cells currently simulating and skips the rest
// of the batch instead of letting it run to completion.
func (s *Server) execExperiment(j *Job, sp *experimentSpec) error {
	if sp.Nodes == 0 {
		sp.Nodes = 16
	}
	if sp.Scale == 0 {
		sp.Scale = 1
	}
	sess := harness.NewSessionOn(s.runner, harness.Options{
		Nodes: sp.Nodes, Scale: sp.Scale, Iters: sp.Iters,
		Shards: sp.Shards, Deterministic: sp.Deterministic,
		AdaptiveWindows: sp.AdaptiveWindows,
	}).WithContext(j.ctx)
	var buf bytes.Buffer
	var err error
	switch sp.Exp {
	case "fig7":
		var rows []harness.Row
		if rows, err = sess.Fig7(); err == nil {
			err = harness.WriteFig7CSV(&buf, rows)
		}
	case "fig8":
		var rows []harness.Fig8Row
		if rows, err = sess.Fig8(); err == nil {
			err = harness.WriteFig8CSV(&buf, rows)
		}
	case "fig9":
		var rows []harness.Fig9Row
		if rows, err = sess.Fig9(); err == nil {
			err = harness.WriteFig9CSV(&buf, rows)
		}
	case "fig10":
		var rows []harness.Fig10Row
		if rows, err = sess.Fig10(); err == nil {
			err = harness.WriteFig10CSV(&buf, rows)
		}
	case "fig11", "fig12":
		var rows []harness.SweepRow
		if sp.Exp == "fig11" {
			rows, err = sess.Fig11()
		} else {
			rows, err = sess.Fig12()
		}
		if err == nil {
			err = harness.WriteSweepCSV(&buf, rows)
		}
	case "table3":
		var dist map[string][5]float64
		if dist, err = sess.Table3(); err == nil {
			err = harness.WriteTable3CSV(&buf, dist)
		}
	case "ablation":
		var rows []harness.AblationRow
		if rows, err = sess.Ablation(); err == nil {
			err = harness.WriteAblationCSV(&buf, rows)
		}
	default:
		return fmt.Errorf("unknown experiment %q (fig7|fig8|fig9|fig10|fig11|fig12|table3|ablation)", sp.Exp)
	}
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.body, j.ctype = buf.Bytes(), "text/csv; charset=utf-8"
	j.mu.Unlock()
	return nil
}

// fuzzSpec describes a seeded fuzz campaign — the nightly workflow's
// 20-minute run is exactly this job with a date seed.
type fuzzSpec struct {
	Kind        string `json:"kind"`
	Seed        int64  `json:"seed"`
	Cases       int    `json:"cases"`
	Budget      string `json:"budget"` // Go duration, e.g. "20m"
	Workers     int    `json:"workers"`
	Shrink      *int   `json:"shrink"`
	MaxFailures *int   `json:"max_failures"`
	Protocol    string `json:"protocol"` // pin generation to one protocol ("" = mixed)
}

// fuzzResult is a fuzz job's JSON body. Shrunk reproductions ride along
// so a thin client can write corpus-format repro files on failure.
type fuzzResult struct {
	Ok        bool          `json:"ok"`
	Cases     int           `json:"cases"`
	Perturbed int           `json:"perturbed"`
	Events    uint64        `json:"events"`
	WallSecs  float64       `json:"wall_seconds"`
	Failures  []fuzzFailure `json:"failures,omitempty"`
}

type fuzzFailure struct {
	Seed    int64      `json:"seed"`
	Failure string     `json:"failure"`
	Shrunk  fault.Case `json:"shrunk"`
}

// execFuzz runs a campaign. The campaign itself is already bounded by
// Cases/Budget and parallel across private engines; like experiments it
// cancels only while queued. A campaign that finds failures still
// completes as "done" — the verdict is in the body's ok field, where a
// thin client turns it into an exit code after saving the repros.
func (s *Server) execFuzz(j *Job, sp *fuzzSpec) error {
	var budget time.Duration
	if sp.Budget != "" {
		var err error
		if budget, err = time.ParseDuration(sp.Budget); err != nil {
			return fmt.Errorf("budget: %w", err)
		}
	}
	if sp.Cases == 0 && budget == 0 {
		sp.Cases = 200
	}
	shrink, maxFail := 2000, 5
	if sp.Shrink != nil {
		shrink = *sp.Shrink
	}
	if sp.MaxFailures != nil {
		maxFail = *sp.MaxFailures
	}
	cr := fault.RunCampaign(fault.CampaignOpts{
		Seed: sp.Seed, Cases: sp.Cases, Budget: budget, Workers: sp.Workers,
		ShrinkRuns: shrink, MaxFailures: maxFail,
		Gen: fault.GenOpts{Protocol: sp.Protocol}, Log: jobLog{j},
	})
	res := fuzzResult{
		Ok: len(cr.Failures) == 0, Cases: cr.Cases, Perturbed: cr.Perturbed,
		Events: cr.Events, WallSecs: cr.Wall.Seconds(),
	}
	for _, f := range cr.Failures {
		f.Shrunk.Note = fmt.Sprintf("shrunk from seed %d: %s", f.Seed, f.Result.Failure)
		res.Failures = append(res.Failures, fuzzFailure{
			Seed: f.Seed, Failure: f.Result.Failure, Shrunk: f.Shrunk,
		})
	}
	return j.finishJSON(res)
}

// benchSpec describes a benchmark job: the engine/suite measurement
// (optionally gated against a committed baseline) or the shard sweep.
type benchSpec struct {
	Kind        string  `json:"kind"`
	Quick       bool    `json:"quick"`
	Events      uint64  `json:"events"`
	Chains      int     `json:"chains"`
	Parallel    int     `json:"parallel"`
	Scale       int     `json:"scale"`
	Check       string  `json:"check"`        // baseline path, e.g. "BENCH_pr2.json"
	Tolerance   float64 `json:"tolerance"`    // gate factor (0 = 2.0)
	Sweep       bool    `json:"sweep"`        // run the shard sweep instead
	SweepNodes  []int   `json:"sweep_nodes"`  // sweep grid override
	SweepShards []int   `json:"sweep_shards"` // sweep grid override
	CheckShards string  `json:"check_shards"` // reduced-sweep gate baseline path
}

// benchResult is a bench job's JSON body: the fresh measurement plus the
// gate verdict when a baseline was named. Baseline paths resolve in the
// server's working directory — the server runs in a repo checkout, so
// "BENCH_pr2.json" means the committed record.
type benchResult struct {
	Ok     bool              `json:"ok"`
	Report *perf.Report      `json:"report,omitempty"`
	Sweep  *perf.ShardReport `json:"sweep,omitempty"`
	Log    string            `json:"log"`
}

func (s *Server) execBench(j *Job, sp *benchSpec) error {
	tol := sp.Tolerance
	if tol == 0 {
		tol = 2.0
	}
	res := benchResult{Ok: true}
	var log bytes.Buffer
	if sp.CheckShards != "" {
		res.Ok = perf.CheckShards(sp.CheckShards, tol, &log)
	} else if sp.Sweep {
		nodes, shards := sp.SweepNodes, sp.SweepShards
		if len(nodes) == 0 {
			nodes = perf.SweepNodeCounts()
		}
		if len(shards) == 0 {
			shards = perf.SweepShardCounts()
		}
		rep, err := perf.RunShardSweep(nodes, shards, &log)
		if err != nil {
			return err
		}
		res.Sweep = rep
	} else {
		rep, err := perf.Measure(perf.Options{
			Events: sp.Events, Chains: sp.Chains,
			Parallel: sp.Parallel, Scale: sp.Scale, Quick: sp.Quick,
		}, &log)
		if err != nil {
			return err
		}
		res.Report = rep
		if sp.Check != "" {
			res.Ok = perf.CheckBaseline(sp.Check, rep, tol, sp.Quick, &log)
		}
	}
	res.Log = log.String()
	return j.finishJSON(res)
}

// finishJSON stores v as the job's application/json result body.
func (j *Job) finishJSON(v any) error {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	j.mu.Lock()
	j.body, j.ctype = enc, "application/json"
	j.mu.Unlock()
	return nil
}

// writeRunReport renders a run cell's canonical report — one call site
// for execRun and the trace cross-check so they cannot drift apart.
func writeRunReport(w io.Writer, cell *runCell, st *stats.Stats) {
	harness.WriteRunReport(w, cell.wl.Name, cell.params.Nodes, cell.params.Scale, st)
}

// jobLog adapts a job's progress counter into the campaign's io.Writer
// logger: each log write bumps the obs-event counter so SSE watchers see
// a heartbeat (the campaign's engines are private; their event totals
// arrive with the final summary).
type jobLog struct{ j *Job }

func (l jobLog) Write(p []byte) (int, error) {
	l.j.obsEvents.Add(1)
	return len(p), nil
}
