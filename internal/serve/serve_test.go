package serve

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pccsim/internal/runner"
)

// idleServer builds a server whose worker pool is never started, so
// accepted jobs stay queued forever. That makes queue-full and
// over-quota behavior deterministic: no race against a worker draining
// the queue between two submissions.
func idleServer(queueDepth, quota int) *Server {
	s := &Server{
		cfg:     Config{QueueDepth: queueDepth, TenantQuota: quota, Log: log.New(io.Discard, "", 0)}.withDefaults(),
		runner:  runner.New(1, nil),
		queue:   make(chan *Job, queueDepth),
		jobs:    make(map[string]*Job),
		tenants: make(map[string]int),
	}
	s.routes()
	return s
}

// liveServer is a real New() server with a quiet logger, torn down by
// draining (which also verifies Drain never hangs on these workloads).
func liveServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Log = log.New(io.Discard, "", 0)
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func do(h http.Handler, method, path, tenant, body string) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func submit(t *testing.T, s *Server, tenant, body string) Status {
	t.Helper()
	rr := do(s.Handler(), "POST", "/v1/jobs", tenant, body)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: got %d: %s", rr.Code, rr.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return st
}

func getStatus(t *testing.T, s *Server, id string) Status {
	t.Helper()
	rr := do(s.Handler(), "GET", "/v1/jobs/"+id, "", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %s: got %d: %s", id, rr.Code, rr.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("status response: %v", err)
	}
	return st
}

func waitFor(t *testing.T, s *Server, id string, pred func(Status) bool, what string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, s, id)
		if pred(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for job %s to be %s", id, what)
	return Status{}
}

func isTerminal(st Status) bool {
	return st.State == StateDone || st.State == StateFailed || st.State == StateCancelled
}

const fastRun = `{"workload":"em3d","nodes":8,"scale":1,"iters":2}`

// slowRun must outlive the polling that cancels or detaches from it;
// the cooperative interrupt stops it quickly afterwards either way.
const slowRun = `{"workload":"em3d","nodes":8,"scale":8,"iters":64}`

func TestSubmitQueueFull(t *testing.T) {
	s := idleServer(1, -1)
	submit(t, s, "", fastRun)
	rr := do(s.Handler(), "POST", "/v1/jobs", "", fastRun)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit on full queue: got %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(rr.Body.String(), "queue full") {
		t.Errorf("429 body = %q, want queue-full explanation", rr.Body.String())
	}
}

func TestSubmitOverQuota(t *testing.T) {
	s := idleServer(16, 2)
	submit(t, s, "alice", fastRun)
	submit(t, s, "alice", fastRun)
	rr := do(s.Handler(), "POST", "/v1/jobs", "alice", fastRun)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit over quota: got %d, want 429", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "over quota") {
		t.Errorf("429 body = %q, want over-quota explanation", rr.Body.String())
	}
	// Quotas are per tenant: another tenant still gets in.
	submit(t, s, "bob", fastRun)
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := idleServer(4, -1)
	for name, body := range map[string]string{
		"malformed json":        `{"workload"`,
		"unknown kind":          `{"kind":"exploit"}`,
		"unknown field":         `{"workload":"em3d","nodse":8}`,
		"unknown workload":      `{"workload":"quicksort"}`,
		"bad fuzz budget":       `{"kind":"fuzz","budget":"yesterday"}`,
		"unknown protocol":      `{"workload":"em3d","protocol":"mosi"}`,
		"illegal mechanisms":    `{"workload":"em3d","protocol":"mesi","rac":32768,"deledc":32}`,
		"unknown fuzz protocol": `{"kind":"fuzz","cases":1,"protocol":"mosi"}`,
	} {
		rr := do(s.Handler(), "POST", "/v1/jobs", "", body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (body %q)", name, rr.Code, rr.Body.String())
		}
	}
	// Nothing malformed should have been enqueued.
	if n := len(s.queue); n != 0 {
		t.Errorf("queue holds %d jobs after rejected submissions", n)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := idleServer(4, 2)
	st := submit(t, s, "alice", fastRun)
	rr := do(s.Handler(), "DELETE", "/v1/jobs/"+st.ID, "", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("cancel queued: got %d: %s", rr.Code, rr.Body.String())
	}
	if got := getStatus(t, s, st.ID); got.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want %s", got.State, StateCancelled)
	}
	if rr := do(s.Handler(), "GET", "/v1/jobs/"+st.ID+"/result", "", ""); rr.Code != http.StatusGone {
		t.Errorf("result of cancelled job: got %d, want 410", rr.Code)
	}
	if rr := do(s.Handler(), "DELETE", "/v1/jobs/"+st.ID, "", ""); rr.Code != http.StatusConflict {
		t.Errorf("double cancel: got %d, want 409", rr.Code)
	}
	// The quota slot was released: two more submissions fit.
	submit(t, s, "alice", fastRun)
	submit(t, s, "alice", fastRun)
}

func TestResultBeforeTerminal(t *testing.T) {
	s := idleServer(4, -1)
	st := submit(t, s, "", fastRun)
	if rr := do(s.Handler(), "GET", "/v1/jobs/"+st.ID+"/result", "", ""); rr.Code != http.StatusConflict {
		t.Errorf("result of queued job: got %d, want 409", rr.Code)
	}
	if rr := do(s.Handler(), "GET", "/v1/jobs/nope/result", "", ""); rr.Code != http.StatusNotFound {
		t.Errorf("result of unknown job: got %d, want 404", rr.Code)
	}
}

func TestCancelMidRun(t *testing.T) {
	s := liveServer(t, Config{Workers: 1, QueueDepth: 4, RunnerWorkers: 1})
	st := submit(t, s, "", slowRun)
	// Wait until the simulation is demonstrably in flight (the obs tap
	// has counted events), then interrupt it.
	waitFor(t, s, st.ID, func(st Status) bool {
		return isTerminal(st) || (st.State == StateRunning && st.ObsEvents > 0)
	}, "running with progress")
	rr := do(s.Handler(), "DELETE", "/v1/jobs/"+st.ID, "", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("cancel running: got %d: %s", rr.Code, rr.Body.String())
	}
	got := waitFor(t, s, st.ID, isTerminal, "terminal")
	if got.State != StateCancelled {
		t.Fatalf("state after mid-run cancel = %s, want %s", got.State, StateCancelled)
	}
	if rr := do(s.Handler(), "GET", "/v1/jobs/"+st.ID+"/result", "", ""); rr.Code != http.StatusGone {
		t.Errorf("result of cancelled job: got %d, want 410", rr.Code)
	}
}

func TestEventsClientDisconnectMidStream(t *testing.T) {
	s := liveServer(t, Config{Workers: 1, QueueDepth: 4, RunnerWorkers: 1})
	st := submit(t, s, "", slowRun)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/events", nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	returned := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rr, req)
		close(returned)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel() // client goes away mid-stream
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("events handler did not return after client disconnect")
	}
	if !strings.Contains(rr.Body.String(), "event: progress") {
		t.Errorf("stream body %q lacks an initial progress event", rr.Body.String())
	}
	// The disconnect must not have cancelled the job.
	if got := getStatus(t, s, st.ID); got.State == StateCancelled {
		t.Fatal("client disconnect cancelled the job")
	}
	// Clean up the long run so Drain in cleanup is quick.
	do(s.Handler(), "DELETE", "/v1/jobs/"+st.ID, "", "")
	waitFor(t, s, st.ID, isTerminal, "terminal")
}

func TestEventsStreamEndsWithDone(t *testing.T) {
	s := liveServer(t, Config{Workers: 1, QueueDepth: 4, RunnerWorkers: 1})
	st := submit(t, s, "", fastRun)
	waitFor(t, s, st.ID, isTerminal, "terminal")
	rr := do(s.Handler(), "GET", "/v1/jobs/"+st.ID+"/events", "", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("events: got %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "event: done") {
		t.Errorf("stream body %q lacks the final done event", rr.Body.String())
	}
}

func TestTraceMatchesStoredResult(t *testing.T) {
	s := liveServer(t, Config{Workers: 1, QueueDepth: 4, RunnerWorkers: 1})
	st := submit(t, s, "", fastRun)
	waitFor(t, s, st.ID, isTerminal, "terminal")
	rr := do(s.Handler(), "GET", "/v1/jobs/"+st.ID+"/trace", "", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("trace: got %d: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "traceEvents") {
		t.Error("trace body is not Perfetto trace-event JSON")
	}
}

// TestRunWithProtocol submits the same cell under two protocols; both
// complete, and the reports differ (different protocols really ran).
func TestRunWithProtocol(t *testing.T) {
	s := liveServer(t, Config{Workers: 2, QueueDepth: 8, RunnerWorkers: 1})
	// Four iterations: enough rounds for hybrid's update streak to engage,
	// so the two reports are observably different protocols.
	a := submit(t, s, "", `{"workload":"em3d","nodes":8,"scale":1,"iters":4,"protocol":"mesi"}`)
	b := submit(t, s, "", `{"workload":"em3d","nodes":8,"scale":1,"iters":4,"protocol":"hybrid"}`)
	sa := waitFor(t, s, a.ID, isTerminal, "terminal")
	sb := waitFor(t, s, b.ID, isTerminal, "terminal")
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("states = %s, %s, want both %s (%s / %s)",
			sa.State, sb.State, StateDone, sa.Error, sb.Error)
	}
	ra := do(s.Handler(), "GET", "/v1/jobs/"+a.ID+"/result", "", "")
	rb := do(s.Handler(), "GET", "/v1/jobs/"+b.ID+"/result", "", "")
	if ra.Code != http.StatusOK || rb.Code != http.StatusOK {
		t.Fatalf("results: got %d and %d", ra.Code, rb.Code)
	}
	if ra.Body.String() == rb.Body.String() {
		t.Error("mesi and hybrid runs returned identical reports")
	}
}

func TestDrainFinishesInFlightJobsAndRefusesNew(t *testing.T) {
	s := liveServer(t, Config{Workers: 2, QueueDepth: 8, RunnerWorkers: 1})
	ids := []string{
		submit(t, s, "ci", fastRun).ID,
		submit(t, s, "ci", fastRun).ID, // duplicate: exercises the memo under drain
		submit(t, s, "ci", `{"workload":"em3d","nodes":8,"scale":1,"iters":4}`).ID,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)

	for _, id := range ids {
		if got := getStatus(t, s, id); got.State != StateDone {
			t.Errorf("job %s after drain = %s, want %s", id, got.State, StateDone)
		}
	}
	if rr := do(s.Handler(), "POST", "/v1/jobs", "", fastRun); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: got %d, want 503", rr.Code)
	}
	if rr := do(s.Handler(), "GET", "/v1/healthz", "", ""); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: got %d, want 503", rr.Code)
	}
	stats := s.snapshotStats()
	if stats.JobsDone != 3 {
		t.Errorf("jobs_done = %d, want 3", stats.JobsDone)
	}
	if stats.JobsCached == 0 {
		t.Error("duplicate submission was not served from the memo")
	}
}

func TestDuplicateJobsAreByteIdentical(t *testing.T) {
	s := liveServer(t, Config{Workers: 2, QueueDepth: 8, RunnerWorkers: 1})
	a := submit(t, s, "alice", fastRun)
	b := submit(t, s, "bob", fastRun)
	waitFor(t, s, a.ID, isTerminal, "terminal")
	waitFor(t, s, b.ID, isTerminal, "terminal")
	ra := do(s.Handler(), "GET", "/v1/jobs/"+a.ID+"/result", "", "")
	rb := do(s.Handler(), "GET", "/v1/jobs/"+b.ID+"/result", "", "")
	if ra.Code != http.StatusOK || rb.Code != http.StatusOK {
		t.Fatalf("results: got %d and %d", ra.Code, rb.Code)
	}
	if ra.Body.String() != rb.Body.String() {
		t.Error("duplicate submissions returned different bytes")
	}
	if len(ra.Body.String()) == 0 {
		t.Error("empty result body")
	}
}
