package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxBody bounds a submission body; specs are a few hundred bytes.
const maxBody = 1 << 20

func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(io.LimitReader(r.Body, maxBody))
}

// progressTick is how often the event stream re-samples a running job.
// Progress counters are written lock-free by the simulation's obs tap;
// the stream just snapshots them.
const progressTick = 250 * time.Millisecond

// handleEvents streams a job's lifecycle as Server-Sent Events: a
// `progress` event whenever the snapshot changes (state transitions, the
// obs-event counter advancing, the simulation clock moving) and one
// final `done` event when the job reaches a terminal state, after which
// the stream closes. A client that disconnects mid-stream just detaches;
// the job keeps running (other claimants may be waiting on its cell).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, st Status) {
		payload, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload)
		fl.Flush()
	}

	last := j.status()
	emit("progress", last)
	ticker := time.NewTicker(progressTick)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return // client went away; the job does not care
		case <-j.done:
			emit("done", j.status())
			return
		case <-ticker.C:
			if cur := j.status(); cur != last {
				last = cur
				emit("progress", cur)
			}
		}
	}
}
