package directory

import (
	"testing"

	"pccsim/internal/msg"
)

// BenchmarkDirectoryEntry measures the steady-state entry lookup that runs
// once per request arriving at a home node, over a touched set comparable
// to one node's share of a workload.
func BenchmarkDirectoryEntry(b *testing.B) {
	d := New()
	const lines = 4096
	for i := 0; i < lines; i++ {
		d.Entry(msg.Addr(i) * 128)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := d.Entry(msg.Addr(i&(lines-1)) * 128)
		if e.State > Dele {
			b.Fatal("bad state")
		}
	}
}

// BenchmarkDirCacheDetector measures the set-associative detector lookup
// on the same path.
func BenchmarkDirCacheDetector(b *testing.B) {
	c := NewDirCache(1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Detector(msg.Addr(i&1023) * 128)
	}
}

func TestDirectoryEntryStableAcrossArenaChunks(t *testing.T) {
	d := New()
	var ptrs []*Entry
	for i := 0; i < entryChunk*4+7; i++ {
		e := d.Entry(msg.Addr(i) * 128)
		e.MemVersion = uint64(i)
		ptrs = append(ptrs, e)
	}
	for i, p := range ptrs {
		if got := d.Entry(msg.Addr(i) * 128); got != p {
			t.Fatalf("entry %d moved: %p vs %p", i, got, p)
		}
		if p.MemVersion != uint64(i) {
			t.Fatalf("entry %d lost state: MemVersion=%d", i, p.MemVersion)
		}
	}
	if d.Len() != entryChunk*4+7 {
		t.Fatalf("Len = %d, want %d", d.Len(), entryChunk*4+7)
	}
}
