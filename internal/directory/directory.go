// Package directory implements the home-node directory state of a cc-NUMA
// hub: the per-line directory entries of a distributed write-invalidate
// protocol (with the paper's extra DELE state and ownerID field), and the
// directory cache whose entries are extended with the producer-consumer
// sharing detector. Only lines with entries resident in the directory
// cache have their access histories tracked (§2.2); the detector bits are
// discarded on eviction.
package directory

import (
	"fmt"

	"pccsim/internal/addrtab"
	"pccsim/internal/msg"
	"pccsim/internal/predictor"
)

// State is the global coherence state of a line at its home node.
type State uint8

const (
	// Unowned: memory has the only copy.
	Unowned State = iota
	// Shared: one or more nodes hold read-only copies; memory is clean.
	Shared
	// Excl: exactly one node owns the line; memory may be stale.
	Excl
	// BusyShared: a 3-hop read is in flight (intervention outstanding).
	BusyShared
	// BusyExcl: a 3-hop ownership transfer is in flight.
	BusyExcl
	// Dele: directory management is delegated to the producer (§2.3.1);
	// Owner records the delegated home node.
	Dele
)

var stateNames = [...]string{
	Unowned:    "UNOWNED",
	Shared:     "SHARED",
	Excl:       "EXCL",
	BusyShared: "BUSY_S",
	BusyExcl:   "BUSY_X",
	Dele:       "DELE",
}

func (s State) String() string { return stateNames[s] }

// Busy reports whether the state is one of the transient busy states.
func (s State) Busy() bool { return s == BusyShared || s == BusyExcl }

// Entry is the directory record for one line.
type Entry struct {
	State   State
	Sharers msg.Vector // read-only copy holders (Shared) or last consumer set
	Owner   msg.NodeID // exclusive owner (Excl/Busy) or delegated home (Dele)
	// OwnerID is the paper's §2.4.2 extension: when a producer-consumer
	// line goes SHARED->EXCL the old sharing vector is preserved in
	// Sharers and the new owner recorded here, so updates can target the
	// most recent consumer set.
	OwnerID msg.NodeID
	// Pending is the requester being served while the entry is busy.
	Pending msg.NodeID
	// PendingExcl records whether the busy transaction grants exclusivity.
	PendingExcl bool
	// PendingTxn is the pending requester's transaction number, echoed
	// in the reply if the home completes the request itself after a
	// writeback race.
	PendingTxn uint64
	// OwnerTxn is the current ownership epoch: the Txn of the request
	// that granted Owner its exclusive copy. Interventions carry it so
	// owners can recognize stale ones (see msg.Message.GrantTxn).
	OwnerTxn uint64
	// MemVersion is the abstract version of the line held in home memory
	// (runtime invariant checking).
	MemVersion uint64
	// PC marks the line as detected producer-consumer. It survives
	// directory-cache eviction (in hardware it would be rediscovered;
	// keeping it models the "stable pattern" the paper requires).
	PC bool

	// Speculative-update machinery (§2.4). While the producer holds the
	// line EXCL, Sharers preserves the old sharing vector and UpdateSet
	// snapshots it as the push target set. UpdatePending is set between
	// the write and the delayed intervention; WriteSeq cancels stale
	// intervention timers; UpdatesInFlight counts unacknowledged pushes
	// — further writes to the line are deferred until it drains, which
	// keeps updates ordered behind invalidations.
	UpdateSet       msg.Vector
	UpdatePending   bool
	WriteSeq        uint64
	UpdatesInFlight int

	// Adaptive-delay extension (§5 / §3.3.2): DelayHint is the line's
	// learned intervention delay (0 = use the configured default) and
	// DowngradeAt records when the last delayed intervention fired, so
	// a too-early downgrade (producer rewrites immediately) can be
	// recognized and the hint grown.
	DelayHint   uint64
	DowngradeAt uint64
}

func (e *Entry) String() string {
	return fmt.Sprintf("%s sharers=%v owner=%d pending=%d pc=%v",
		e.State, e.Sharers.Nodes(), e.Owner, e.Pending, e.PC)
}

// entryChunk sizes the arena blocks entries are allocated from: one
// allocation per 64 lines instead of one per line. Entry pointers handed
// out stay stable because a full chunk is retired (still referenced by the
// table) rather than reallocated.
const entryChunk = 64

// Directory is the full per-home-node directory. Entries are materialized
// on first use (hardware keeps them in memory next to the data) into an
// open-addressed, line-indexed table sized to the touched address range.
type Directory struct {
	entries addrtab.Table[*Entry]
	arena   []Entry
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{}
}

// Entry returns the directory entry for the line, creating an Unowned one
// on first reference.
func (d *Directory) Entry(addr msg.Addr) *Entry {
	if e, ok := d.entries.Get(uint64(addr)); ok {
		return e
	}
	if len(d.arena) == cap(d.arena) {
		d.arena = make([]Entry, 0, entryChunk)
	}
	d.arena = append(d.arena, Entry{State: Unowned, Owner: msg.None, OwnerID: msg.None, Pending: msg.None})
	e := &d.arena[len(d.arena)-1]
	d.entries.Put(uint64(addr), e)
	return e
}

// Peek returns the entry if it exists, without creating one.
func (d *Directory) Peek(addr msg.Addr) *Entry {
	e, _ := d.entries.Get(uint64(addr))
	return e
}

// Len returns the number of materialized entries.
func (d *Directory) Len() int { return d.entries.Len() }

// ForEach visits every materialized entry.
func (d *Directory) ForEach(fn func(msg.Addr, *Entry)) {
	d.entries.Range(func(k uint64, e *Entry) bool {
		fn(msg.Addr(k), e)
		return true
	})
}

// DirCache is the directory cache: a set-associative cache of recently
// referenced directory entries whose (and only whose) access histories are
// tracked by the producer-consumer detector. Evicting an entry discards the
// detector bits, exactly as §2.2 prescribes ("these extra 8 bits ... are
// not saved if the directory entry is flushed from the directory cache").
type DirCache struct {
	numSets  int
	ways     int
	tags     []msg.Addr
	valid    []bool
	lastUse  []uint64
	dets     []predictor.Detector
	useClock uint64
	Evicts   uint64 // capacity evictions (stats)
}

// NewDirCache creates a directory cache with the given total entry count
// and associativity; entries must be a power-of-two multiple of ways.
func NewDirCache(entries, ways int) *DirCache {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("directory: bad dircache geometry")
	}
	numSets := entries / ways
	if numSets&(numSets-1) != 0 {
		panic("directory: dircache set count must be a power of two")
	}
	return &DirCache{
		numSets: numSets,
		ways:    ways,
		tags:    make([]msg.Addr, entries),
		valid:   make([]bool, entries),
		lastUse: make([]uint64, entries),
		dets:    make([]predictor.Detector, entries),
	}
}

// SetPairMode switches every detector to the two-writer extension (§5).
func (c *DirCache) SetPairMode(on bool) {
	for i := range c.dets {
		c.dets[i].SetPairMode(on)
	}
}

// Entries returns the total capacity in entries.
func (c *DirCache) Entries() int { return c.numSets * c.ways }

func (c *DirCache) setBase(addr msg.Addr) int {
	// Directory entries are per 128-byte line; hash on the line number.
	idx := int((uint64(addr) >> 7) & uint64(c.numSets-1))
	return idx * c.ways
}

// Detector returns the sharing detector for addr, allocating a
// directory-cache entry (and possibly evicting another, losing its
// history) if addr is not resident.
func (c *DirCache) Detector(addr msg.Addr) *predictor.Detector {
	base := c.setBase(addr)
	slot := -1
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == addr {
			c.useClock++
			c.lastUse[i] = c.useClock
			return &c.dets[i]
		}
		if slot < 0 && !c.valid[i] {
			slot = i
		}
	}
	if slot < 0 {
		slot = base
		for i := base + 1; i < base+c.ways; i++ {
			if c.lastUse[i] < c.lastUse[slot] {
				slot = i
			}
		}
		c.Evicts++
	}
	c.useClock++
	c.tags[slot] = addr
	c.valid[slot] = true
	c.lastUse[slot] = c.useClock
	c.dets[slot].Reset()
	return &c.dets[slot]
}

// Resident reports whether addr currently has a directory-cache entry.
func (c *DirCache) Resident(addr msg.Addr) bool {
	base := c.setBase(addr)
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == addr {
			return true
		}
	}
	return false
}
