package directory

import (
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
)

func TestEntryCreation(t *testing.T) {
	d := New()
	if d.Peek(0x1000) != nil {
		t.Fatal("Peek created an entry")
	}
	e := d.Entry(0x1000)
	if e.State != Unowned || e.Owner != msg.None || e.Pending != msg.None {
		t.Fatalf("fresh entry = %s", e)
	}
	if d.Entry(0x1000) != e {
		t.Fatal("Entry not idempotent")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestForEach(t *testing.T) {
	d := New()
	d.Entry(0x0)
	d.Entry(0x80)
	n := 0
	d.ForEach(func(a msg.Addr, e *Entry) { n++ })
	if n != 2 {
		t.Fatalf("ForEach visited %d, want 2", n)
	}
}

func TestStateStringsAndBusy(t *testing.T) {
	for s := Unowned; s <= Dele; s++ {
		if s.String() == "" {
			t.Fatalf("state %d unnamed", s)
		}
	}
	if !BusyShared.Busy() || !BusyExcl.Busy() {
		t.Fatal("busy states not Busy()")
	}
	if Unowned.Busy() || Shared.Busy() || Excl.Busy() || Dele.Busy() {
		t.Fatal("non-busy state reports Busy()")
	}
}

func TestEntryString(t *testing.T) {
	e := &Entry{State: Shared, Sharers: msg.Vector{}.Set(1).Set(3), Owner: msg.None, Pending: msg.None}
	if e.String() == "" {
		t.Fatal("empty entry string")
	}
}

func TestDirCacheHitKeepsHistory(t *testing.T) {
	c := NewDirCache(8, 2)
	det := c.Detector(0x1000)
	det.OnWrite(0)
	det.OnRead(1)
	det2 := c.Detector(0x1000)
	if det2 != det {
		t.Fatal("hit returned a different detector")
	}
	if det2.ReaderCount() != 1 {
		t.Fatal("history lost on hit")
	}
}

func TestDirCacheEvictionLosesHistory(t *testing.T) {
	c := NewDirCache(2, 2) // one set, two ways
	d0 := c.Detector(0 << 7)
	d0.OnWrite(0)
	d0.OnRead(1)
	d0.OnWrite(0)
	c.Detector(2 << 7) // fills second way (same set)
	c.Detector(4 << 7) // evicts LRU = addr 0
	if c.Resident(0 << 7) {
		t.Fatal("addr 0 still resident after eviction")
	}
	if c.Evicts != 1 {
		t.Fatalf("Evicts = %d, want 1", c.Evicts)
	}
	// Re-allocating addr 0 must come back with a reset detector.
	d0b := c.Detector(0 << 7)
	if d0b.WriteRepeat() != 0 || d0b.ReaderCount() != 0 {
		t.Fatal("detector history survived eviction")
	}
}

func TestDirCacheLRU(t *testing.T) {
	c := NewDirCache(2, 2)
	c.Detector(0 << 7)
	c.Detector(2 << 7)
	c.Detector(0 << 7) // refresh 0
	c.Detector(4 << 7) // should evict 2, not 0
	if !c.Resident(0 << 7) {
		t.Fatal("recently used entry evicted")
	}
	if c.Resident(2 << 7) {
		t.Fatal("LRU entry survived")
	}
}

func TestDirCacheSetsIsolated(t *testing.T) {
	c := NewDirCache(8, 2) // 4 sets
	// Addresses in different sets must not evict each other.
	for i := 0; i < 4; i++ {
		c.Detector(msg.Addr(i) << 7)
	}
	for i := 0; i < 4; i++ {
		if !c.Resident(msg.Addr(i) << 7) {
			t.Fatalf("addr in set %d evicted by other sets", i)
		}
	}
	if c.Evicts != 0 {
		t.Fatalf("Evicts = %d, want 0", c.Evicts)
	}
}

func TestDirCacheBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewDirCache(0, 1) },
		func() { NewDirCache(7, 2) },
		func() { NewDirCache(6, 2) }, // 3 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: the dircache never reports residency for more entries than its
// capacity, and a detector fetched twice in a row without interference is
// the same storage.
func TestPropertyDirCacheCapacity(t *testing.T) {
	f := func(lines []uint16) bool {
		c := NewDirCache(16, 4)
		resident := 0
		seen := map[msg.Addr]bool{}
		for _, ln := range lines {
			a := msg.Addr(ln) << 7
			c.Detector(a)
			seen[a] = true
		}
		for a := range seen {
			if c.Resident(a) {
				resident++
			}
		}
		return resident <= c.Entries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
