package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pccsim/internal/msg"
)

func TestNextAtAndRunWindow(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("empty engine reports a next event")
	}
	var got []int
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Schedule(31, func() { got = append(got, 3) })
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = %d,%v, want 10,true", at, ok)
	}
	if n := e.RunWindow(30, 0); n != 2 {
		t.Fatalf("RunWindow ran %d events, want 2", n)
	}
	if want := []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("window executed %v, want %v", got, want)
	}
	if at, ok := e.NextAt(); !ok || at != 31 {
		t.Fatalf("NextAt after window = %d,%v, want 31,true", at, ok)
	}
	if n := e.RunWindow(100, 0); n != 1 {
		t.Fatalf("second window ran %d events, want 1", n)
	}
}

func TestRunWindowBudget(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {})
	}
	if n := e.RunWindow(100, 4); n != 4 {
		t.Fatalf("budgeted window ran %d events, want 4", n)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending after budget cut = %d, want 6", e.Pending())
	}
}

// mailbox is a minimal cross-shard channel for tests: sends stage into
// lanes, and a barrier hook drains them into the destination engines —
// the same shape internal/network gives the real system.
type mailbox struct {
	g     *Group
	look  Time
	lanes [][]mailslot
}

type mailslot struct {
	at Time
	fn func()
}

func newMailbox(g *Group) *mailbox {
	mb := &mailbox{g: g, look: g.Lookahead(), lanes: make([][]mailslot, g.Shards())}
	g.OnBarrier(mb.drain)
	return mb
}

// sendFrom schedules fn on dst's engine at the sender's now+look (the
// minimum legal cross-shard latency), via the barrier lanes.
func (mb *mailbox) sendFrom(src, dst int, fn func()) {
	at := mb.g.Engine(src).Now() + mb.look
	mb.lanes[dst] = append(mb.lanes[dst], mailslot{at: at, fn: fn})
}

func (mb *mailbox) drain() {
	for d := range mb.lanes {
		for _, s := range mb.lanes[d] {
			mb.g.Engine(d).Schedule(s.at, s.fn)
		}
		mb.lanes[d] = mb.lanes[d][:0]
	}
}

func TestGroupCrossShardPingPong(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := NewGroup(2, 100, parallel)
		mb := newMailbox(g)
		var mu sync.Mutex
		hops := 0
		var ping, pong func()
		ping = func() {
			mu.Lock()
			hops++
			n := hops
			mu.Unlock()
			if n < 10 {
				mb.sendFrom(0, 1, pong)
			}
		}
		pong = func() {
			mu.Lock()
			hops++
			n := hops
			mu.Unlock()
			if n < 10 {
				mb.sendFrom(1, 0, ping)
			}
		}
		g.Engine(0).Schedule(0, ping)
		end := g.Run()
		if hops != 10 {
			t.Fatalf("parallel=%v: %d hops, want 10", parallel, hops)
		}
		// Each hop adds exactly one lookahead of latency.
		if want := Time(9 * 100); end != want {
			t.Fatalf("parallel=%v: finished at %d, want %d", parallel, end, want)
		}
		if g.Steps() != 10 {
			t.Fatalf("parallel=%v: Steps = %d, want 10", parallel, g.Steps())
		}
	}
}

func TestGroupRunUntilAcrossShards(t *testing.T) {
	g := NewGroup(2, 50, false)
	mb := newMailbox(g)
	var fired []string
	g.Engine(0).Schedule(10, func() {
		fired = append(fired, "a")
		mb.sendFrom(0, 1, func() { fired = append(fired, "b@60") })
	})
	g.Engine(1).Schedule(200, func() { fired = append(fired, "c") })

	if done := g.RunUntil(100); done {
		t.Fatal("RunUntil(100) reported drained with work at 200 left")
	}
	// The cross-shard event at 60 must have run; the one at 200 not.
	if want := []string{"a", "b@60"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("after RunUntil(100): fired = %v, want %v", fired, want)
	}
	if at, ok := g.NextAt(); !ok || at != 200 {
		t.Fatalf("NextAt = %d,%v, want 200,true", at, ok)
	}
	if done := g.RunUntil(1000); !done {
		t.Fatal("RunUntil(1000) did not drain")
	}
	if want := []string{"a", "b@60", "c"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestGroupForEachPendingAndCensus(t *testing.T) {
	g := NewGroup(3, 10, false)
	h := &nullHandler{}
	// Shard 0: two GetShared; shard 1: a Nack and a closure; shard 2: empty.
	for i := 0; i < 2; i++ {
		m := g.Engine(0).NewMsg()
		m.Type = msg.GetShared
		g.Engine(0).AfterMsg(Time(10+i), h, 0, m)
	}
	m := g.Engine(1).NewMsg()
	m.Type = msg.Nack
	g.Engine(1).AfterMsg(5, h, 0, m)
	g.Engine(1).Schedule(7, func() {})

	if g.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", g.Pending())
	}
	seen := 0
	var closures int
	g.ForEachPending(func(at Time, m *msg.Message) {
		seen++
		if m == nil {
			closures++
		}
	})
	if seen != 4 || closures != 1 {
		t.Fatalf("ForEachPending visited %d (%d closures), want 4 (1)", seen, closures)
	}
	census := g.PendingCensus()
	want := map[string]int{"GetShared": 2, "Nack": 1, "closure": 1}
	if len(census) != len(want) {
		t.Fatalf("census = %+v, want %v", census, want)
	}
	for _, mc := range census {
		if want[mc.Type] != mc.Count {
			t.Fatalf("census[%s] = %d, want %d", mc.Type, mc.Count, want[mc.Type])
		}
	}
	if census[0].Type != "GetShared" {
		t.Fatalf("census not sorted by count: %+v", census)
	}
	if at, ok := g.NextAt(); !ok || at != 5 {
		t.Fatalf("NextAt = %d,%v, want 5,true", at, ok)
	}
}

func TestGroupRunGuardedRunaway(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := NewGroup(2, 10, parallel)
		for s := 0; s < 2; s++ {
			e := g.Engine(s)
			var spin func()
			spin = func() { e.After(1, spin) }
			e.Schedule(0, spin)
		}
		_, err := g.RunGuarded(100)
		if !errors.Is(err, ErrRunaway) {
			t.Fatalf("parallel=%v: err = %v, want ErrRunaway", parallel, err)
		}
		var re *RunawayError
		if !errors.As(err, &re) {
			t.Fatalf("parallel=%v: err = %T, want *RunawayError", parallel, err)
		}
		if re.Pending != 2 {
			t.Fatalf("parallel=%v: aggregated Pending = %d, want 2 (one per shard)", parallel, re.Pending)
		}
		if re.Steps < 100 {
			t.Fatalf("parallel=%v: Steps = %d, want >= budget 100", parallel, re.Steps)
		}
		if len(re.Census) != 1 || re.Census[0].Type != "closure" || re.Census[0].Count != 2 {
			t.Fatalf("parallel=%v: census = %+v, want closure=2", parallel, re.Census)
		}
	}
}

func TestGroupPanicPropagates(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := NewGroup(4, 10, parallel)
		// Two shards panic in the same window; the lowest shard's value
		// must win under both schedulers.
		g.Engine(3).Schedule(5, func() { panic("shard3 boom") })
		g.Engine(1).Schedule(5, func() { panic("shard1 boom") })
		g.Engine(0).Schedule(5, func() {})
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallel=%v: no panic", parallel)
				}
				if s, _ := r.(string); s != "shard1 boom" {
					t.Fatalf("parallel=%v: recovered %v, want shard1 boom", parallel, r)
				}
			}()
			g.Run()
		}()
	}
}

func TestGroupSerialParallelEquivalent(t *testing.T) {
	// A deterministic multi-shard workload: every shard runs a local
	// event chain and occasionally posts to its neighbour. The serial
	// and parallel schedulers must produce identical per-shard event
	// logs, clocks and step counts.
	type result struct {
		logs  [][]string
		now   Time
		steps uint64
	}
	build := func(parallel bool) result {
		const shards = 4
		g := NewGroup(shards, 100, parallel)
		mb := newMailbox(g)
		logs := make([][]string, shards)
		var mu sync.Mutex
		var chain func(s, depth int) func()
		chain = func(s, depth int) func() {
			return func() {
				e := g.Engine(s)
				mu.Lock()
				logs[s] = append(logs[s], fmt.Sprintf("s%d d%d @%d", s, depth, e.Now()))
				mu.Unlock()
				if depth >= 12 {
					return
				}
				e.After(Time(3+depth), chain(s, depth+1))
				if depth%3 == 0 {
					dst := (s + 1) % shards
					mb.sendFrom(s, dst, chain(dst, depth+1))
				}
			}
		}
		for s := 0; s < shards; s++ {
			g.Engine(s).Schedule(Time(s), chain(s, 0))
		}
		now := g.Run()
		return result{logs: logs, now: now, steps: g.Steps()}
	}
	serial := build(false)
	parallel := build(true)
	if serial.now != parallel.now || serial.steps != parallel.steps {
		t.Fatalf("serial (now %d, steps %d) != parallel (now %d, steps %d)",
			serial.now, serial.steps, parallel.now, parallel.steps)
	}
	if !reflect.DeepEqual(serial.logs, parallel.logs) {
		t.Fatalf("per-shard logs diverge:\nserial:   %v\nparallel: %v", serial.logs, parallel.logs)
	}
}

func TestGroupSingleShardMatchesEngine(t *testing.T) {
	// One shard is the degenerate case: the window loop must reproduce a
	// plain engine run exactly.
	build := func(run func(*Engine) (Time, uint64)) ([]string, Time, uint64) {
		e := NewEngine()
		var log []string
		var chain func(depth int) func()
		chain = func(depth int) func() {
			return func() {
				log = append(log, fmt.Sprintf("d%d @%d", depth, e.Now()))
				if depth < 20 {
					e.After(Time(1+depth%7), chain(depth+1))
				}
			}
		}
		e.Schedule(0, chain(0))
		e.Schedule(0, chain(100))
		now, steps := run(e)
		return log, now, steps
	}
	wantLog, wantNow, wantSteps := build(func(e *Engine) (Time, uint64) {
		return e.Run(), e.Steps()
	})
	// Group with one pre-existing engine is not constructible, so rebuild
	// the same program inside a fresh group's engine via the same seed
	// structure: NewGroup(1,...) then schedule identically.
	g := NewGroup(1, 100, false)
	e := g.Engine(0)
	var log []string
	var chain func(depth int) func()
	chain = func(depth int) func() {
		return func() {
			log = append(log, fmt.Sprintf("d%d @%d", depth, e.Now()))
			if depth < 20 {
				e.After(Time(1+depth%7), chain(depth+1))
			}
		}
	}
	e.Schedule(0, chain(0))
	e.Schedule(0, chain(100))
	now := g.Run()
	if now != wantNow || g.Steps() != wantSteps {
		t.Fatalf("group run (now %d, steps %d) != engine run (now %d, steps %d)",
			now, g.Steps(), wantNow, wantSteps)
	}
	if !reflect.DeepEqual(log, wantLog) {
		t.Fatalf("event order diverges:\ngroup:  %v\nengine: %v", log, wantLog)
	}
}
