// Package sim provides the discrete-event simulation engine underlying the
// coherence simulator: a cycle-granular clock and a deterministic event
// queue. All hardware components (caches, directory controllers, network
// links, processors) are modeled as callbacks scheduled on a single Engine,
// which plays the role UVSIM's execution-driven core plays in the paper.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is the simulation clock, measured in processor cycles (2 GHz in the
// default configuration, so one cycle is 0.5 ns).
type Time uint64

// Event is a callback scheduled to run at a specific cycle. Events at the
// same cycle run in the order they were scheduled, which keeps every
// simulation fully deterministic regardless of map iteration or scheduling
// jitter in the host.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// ready to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	nSteps uint64
	// free is a small free list to reduce allocation churn: protocol
	// simulations schedule hundreds of millions of events.
	free []*event
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{queue: make(eventQueue, 0, 1024)}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at absolute cycle at. Scheduling in the past is treated
// as scheduling for the current cycle; the event still runs after all events
// scheduled earlier for this cycle, preserving causal order.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.queue, ev)
}

// After runs fn delay cycles from now.
func (e *Engine) After(delay Time, fn func()) { e.Schedule(e.now+delay, fn) }

// Step executes the next event, advancing the clock to its timestamp.
// It reports false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	if len(e.free) < 4096 {
		e.free = append(e.free, ev)
	}
	e.nSteps++
	fn()
	return true
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunawayError reports that a guarded run exhausted its step budget before
// the event queue drained — the signature of a protocol livelock (e.g. an
// endless NACK/retry cycle). It retains enough queue context to diagnose
// what the simulation was doing when the watchdog fired.
type RunawayError struct {
	Steps   uint64 // events executed by the guarded run before aborting
	Now     Time   // simulation clock at the abort
	Pending int    // events still queued
	NextAt  Time   // timestamp of the next pending event
}

func (e *RunawayError) Error() string {
	return fmt.Sprintf("sim: watchdog: %d events executed without draining (now cycle %d, %d events pending, next at cycle %d)",
		e.Steps, uint64(e.Now), e.Pending, uint64(e.NextAt))
}

// RunGuarded executes events until the queue drains, like Run, but aborts
// with a *RunawayError after maxSteps events (counted from this call) if
// the queue still holds work. maxSteps == 0 means unlimited and never
// fails. The guard does not perturb event order, so a run that finishes
// under budget is bit-for-bit identical to an unguarded one.
func (e *Engine) RunGuarded(maxSteps uint64) (Time, error) {
	if maxSteps == 0 {
		return e.Run(), nil
	}
	for executed := uint64(0); ; executed++ {
		if len(e.queue) == 0 {
			return e.now, nil
		}
		if executed >= maxSteps {
			return e.now, &RunawayError{
				Steps:   executed,
				Now:     e.now,
				Pending: len(e.queue),
				NextAt:  e.queue[0].at,
			}
		}
		e.Step()
	}
}

// RunUntil executes events with timestamps <= deadline. It reports whether
// the queue drained (true) or the deadline cut the run short (false).
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.queue) > 0 {
		if e.queue[0].at > deadline {
			return false
		}
		e.Step()
	}
	return true
}

// RunSteps executes at most n events, reporting whether the queue drained.
func (e *Engine) RunSteps(n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !e.Step() {
			return true
		}
	}
	return e.Pending() == 0
}
