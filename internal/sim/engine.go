// Package sim provides the discrete-event simulation engine underlying the
// coherence simulator: a cycle-granular clock and a deterministic event
// queue. All hardware components (caches, directory controllers, network
// links, processors) are modeled as callbacks scheduled on a single Engine,
// which plays the role UVSIM's execution-driven core plays in the paper.
//
// The queue is a hierarchical timing wheel (a calendar queue): nearly every
// protocol delay is a small constant (hop latency 100, local crossbar 20,
// DRAM 200, delayed intervention 50), so near-future events live in
// ring-buffer buckets — one cycle per bucket, found through a bitmap scan —
// and only far-future timestamps (adaptive intervention hints, barrier
// waits) fall back to a binary heap. Events are value-typed inside the
// buckets and the heap, so steady-state scheduling allocates nothing.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"pccsim/internal/msg"
)

// Time is the simulation clock, measured in processor cycles (2 GHz in the
// default configuration, so one cycle is 0.5 ns).
type Time uint64

const (
	// wheelBits sizes the timing wheel. 1024 cycles comfortably covers
	// every constant protocol delay (the worst common case is a remote
	// DRAM reply: 2 hops * 100 + DRAM 200 + serialization ≈ 440 cycles);
	// only adaptive-delay hints (up to 50k cycles) and synthetic far
	// timers take the heap path.
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1

	// MsgPoolCap bounds the engine's message free list. Beyond this many
	// parked messages the pool stops growing and lets the garbage
	// collector take the excess; the bound exists so a pathological burst
	// (e.g. a full-system invalidation storm) does not pin memory for the
	// rest of the run.
	MsgPoolCap = 4096
)

// MsgHandler is the closure-free event target: components that schedule
// many message-carrying events (the network's delivery pipeline, the hubs'
// protocol dispatch) implement it once and receive the opcode they passed
// to ScheduleMsg back at fire time. Dispatching through the opcode instead
// of a captured closure keeps the per-event footprint to three words and
// the steady-state allocation rate at zero.
type MsgHandler interface {
	HandleMsgEvent(op uint8, m *msg.Message)
}

// event is one queue entry. Exactly one of fn and h is set: fn for the
// generic closure API (Schedule/After), h+op+m for the typed message API
// (ScheduleMsg/AfterMsg).
type event struct {
	at  Time
	seq uint64
	fn  func()
	h   MsgHandler
	m   *msg.Message
	op  uint8
}

// bucket is one wheel slot: a FIFO of the events due at a single cycle.
// head indexes the next event to run; the slice is reset (retaining its
// capacity) once drained.
type bucket struct {
	head int
	evs  []event
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// ready to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	nSteps uint64

	// wbase anchors the wheel window: every wheel-resident event has a
	// timestamp in [wbase, wbase+wheelSize), which makes bucket index
	// at&wheelMask a bijection onto cycles and keeps each bucket
	// single-cycle. wbase advances with the clock (and jumps forward
	// across idle gaps); far-heap events migrate into the wheel whenever
	// an advance brings them inside the window, before any event body
	// runs, which preserves the global (at, seq) execution order.
	wbase      Time
	wheelCount int
	occ        [wheelSize / 64]uint64
	buckets    [wheelSize]bucket

	far farHeap

	// msgFree recycles message structs between protocol hops (see
	// Engine.NewMsg); capped at MsgPoolCap entries.
	msgFree []*msg.Message

	// cut, when set by an event body, ends the current RunWindow after
	// that event (see CutWindow). Adaptive shard windows use it to stop a
	// shard the instant it completes a machine-wide barrier, before it can
	// outrun the release it just scheduled.
	cut bool

	// intr, when armed via SetInterrupt, lets another goroutine ask a
	// guarded run to stop between events (see RunGuarded). nil keeps the
	// historical zero-overhead drain loop.
	intr *atomic.Bool
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return e.wheelCount + len(e.far) }

// enqueue places ev in the wheel if its timestamp falls inside the current
// window, else in the far heap. ev.at >= e.wbase always holds here: at is
// clamped to now by the callers and wbase <= now whenever user code runs.
func (e *Engine) enqueue(ev event) {
	if ev.at-e.wbase < wheelSize {
		i := int(ev.at) & wheelMask
		b := &e.buckets[i]
		b.evs = append(b.evs, ev)
		e.occ[i>>6] |= 1 << (uint(i) & 63)
		e.wheelCount++
	} else {
		e.far.push(ev)
	}
}

// Schedule runs fn at absolute cycle at. Scheduling in the past is treated
// as scheduling for the current cycle; the event still runs after all events
// scheduled earlier for this cycle, preserving causal order.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.enqueue(event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After runs fn delay cycles from now.
func (e *Engine) After(delay Time, fn func()) { e.Schedule(e.now+delay, fn) }

// ScheduleMsg runs h.HandleMsgEvent(op, m) at absolute cycle at, with the
// same past-clamping and FIFO tie-break as Schedule, but without allocating
// a closure: the handler, opcode and payload ride in the event itself.
func (e *Engine) ScheduleMsg(at Time, h MsgHandler, op uint8, m *msg.Message) {
	if at < e.now {
		at = e.now
	}
	e.enqueue(event{at: at, seq: e.seq, h: h, op: op, m: m})
	e.seq++
}

// AfterMsg runs h.HandleMsgEvent(op, m) delay cycles from now.
func (e *Engine) AfterMsg(delay Time, h MsgHandler, op uint8, m *msg.Message) {
	e.ScheduleMsg(e.now+delay, h, op, m)
}

// NewMsg returns a zeroed message, recycled from the engine's free list
// when one is parked there. Protocol layers allocate every hop's packet
// through this and hand it back with FreeMsg once delivered, so the
// simulation's dominant allocation disappears in steady state.
func (e *Engine) NewMsg() *msg.Message {
	if n := len(e.msgFree); n > 0 {
		m := e.msgFree[n-1]
		e.msgFree[n-1] = nil
		e.msgFree = e.msgFree[:n-1]
		return m
	}
	return &msg.Message{}
}

// FreeMsg parks a delivered message for reuse. The message must not be
// referenced again by the caller. Freeing nil is a no-op; the pool stops
// growing at MsgPoolCap entries.
func (e *Engine) FreeMsg(m *msg.Message) {
	if m == nil || len(e.msgFree) >= MsgPoolCap {
		return
	}
	*m = msg.Message{}
	e.msgFree = append(e.msgFree, m)
}

// migrate moves far-heap events whose timestamps entered the wheel window
// into their buckets. Heap pops come out in (at, seq) order and bucket
// appends preserve arrival order, so per-bucket FIFO order stays globally
// seq-sorted: every event still in the heap was scheduled before anything
// scheduled after this call.
func (e *Engine) migrate() {
	for len(e.far) > 0 && e.far[0].at-e.wbase < wheelSize {
		ev := e.far.pop()
		i := int(ev.at) & wheelMask
		b := &e.buckets[i]
		b.evs = append(b.evs, ev)
		e.occ[i>>6] |= 1 << (uint(i) & 63)
		e.wheelCount++
	}
}

// nextWheel finds the earliest occupied bucket at or after wbase, returning
// its cycle and index. The occupancy bitmap makes this a handful of word
// scans regardless of how sparse the window is. Must only be called with
// wheelCount > 0.
func (e *Engine) nextWheel() (Time, int) {
	s := int(e.wbase) & wheelMask
	w := s >> 6
	word := e.occ[w] &^ (1<<(uint(s)&63) - 1)
	for i := 0; i <= len(e.occ); i++ {
		if word != 0 {
			b := w<<6 + bits.TrailingZeros64(word)
			d := (Time(b) - e.wbase) & wheelMask
			return e.wbase + d, b
		}
		w++
		if w == len(e.occ) {
			w = 0
		}
		word = e.occ[w]
	}
	panic("sim: wheel count positive but no occupied bucket")
}

// nextAt returns the timestamp of the next pending event. Wheel events are
// always earlier than anything in the far heap (the heap holds only
// timestamps at or beyond the window's end). Must only be called with
// Pending() > 0.
func (e *Engine) nextAt() Time {
	if e.wheelCount > 0 {
		t, _ := e.nextWheel()
		return t
	}
	return e.far[0].at
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports false if the queue is empty.
func (e *Engine) Step() bool {
	if e.wheelCount == 0 {
		if len(e.far) == 0 {
			return false
		}
		// Idle gap: jump the window to the next far event and pull
		// everything that now fits.
		e.wbase = e.far[0].at
		e.migrate()
	}
	t, bi := e.nextWheel()
	e.now = t
	if e.wbase != t {
		// The window end moved forward with the clock; far events may
		// have become schedulable at cycles the running event can now
		// reach. They must be in place before the event body runs so
		// that later same-cycle Schedules keep larger sequence numbers.
		e.wbase = t
		e.migrate()
	}
	b := &e.buckets[bi]
	ev := b.evs[b.head]
	b.evs[b.head] = event{}
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		e.occ[bi>>6] &^= 1 << (uint(bi) & 63)
	}
	e.wheelCount--
	e.nSteps++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.HandleMsgEvent(ev.op, ev.m)
	}
	return true
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// MsgCount is one row of a pending-message census: how many queued events
// carry a message of the named type. Closure events (Schedule/After) are
// tallied under "closure".
type MsgCount struct {
	Type  string
	Count int
}

// ForEachPending visits every queued event in the wheel and the far heap,
// in no particular order. m is nil for closure events. The visit callback
// must not schedule or run events. Intended for post-mortem diagnostics
// (the watchdog census); it walks the live queue without disturbing it.
func (e *Engine) ForEachPending(visit func(at Time, m *msg.Message)) {
	for i := range e.buckets {
		b := &e.buckets[i]
		for j := b.head; j < len(b.evs); j++ {
			visit(b.evs[j].at, b.evs[j].m)
		}
	}
	for i := range e.far {
		visit(e.far[i].at, e.far[i].m)
	}
}

// PendingCensus tallies the queued events by message type, most frequent
// first (ties broken by name). A livelocked protocol shows up here as a
// census dominated by the message types of the spinning exchange — e.g. a
// NACK/retry storm is all requests and Nacks.
func (e *Engine) PendingCensus() []MsgCount {
	counts := make(map[string]int)
	e.ForEachPending(func(_ Time, m *msg.Message) {
		if m == nil {
			counts["closure"]++
		} else {
			counts[m.Type.String()]++
		}
	})
	out := make([]MsgCount, 0, len(counts))
	for t, c := range counts {
		out = append(out, MsgCount{Type: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// RunawayError reports that a guarded run exhausted its step budget before
// the event queue drained — the signature of a protocol livelock (e.g. an
// endless NACK/retry cycle). It retains enough queue context to diagnose
// what the simulation was doing when the watchdog fired, including a
// census of the messages still queued.
type RunawayError struct {
	Steps      uint64     // events executed by the guarded run before aborting
	TotalSteps uint64     // engine-lifetime events (Engine.Steps) at the abort
	Now        Time       // simulation clock at the abort
	Pending    int        // events still queued
	NextAt     Time       // timestamp of the next pending event
	Census     []MsgCount // pending events by message type, most frequent first
}

// ErrRunaway is the class sentinel for watchdog aborts: any wrapped
// *RunawayError satisfies errors.Is(err, ErrRunaway), and errors.As
// still recovers the full diagnostic struct.
var ErrRunaway = errors.New("sim: runaway simulation")

// Is makes every *RunawayError match ErrRunaway under errors.Is.
func (e *RunawayError) Is(target error) bool { return target == ErrRunaway }

func (e *RunawayError) Error() string {
	s := fmt.Sprintf("sim: watchdog: %d events executed without draining (%d total this engine, now cycle %d, %d events pending, next at cycle %d)",
		e.Steps, e.TotalSteps, uint64(e.Now), e.Pending, uint64(e.NextAt))
	if len(e.Census) > 0 {
		s += "; pending:"
		for _, mc := range e.Census {
			s += fmt.Sprintf(" %s=%d", mc.Type, mc.Count)
		}
	}
	return s
}

// ErrInterrupted reports that a guarded run stopped because its interrupt
// flag was raised (see Engine.SetInterrupt, Group.SetInterrupt) — the
// cooperative-cancellation signal a job server uses to abandon a
// simulation mid-run. An interrupted run leaves the engine consistent
// (events past the stop stay queued) but its results are incomplete and
// must be discarded.
var ErrInterrupted = errors.New("sim: run interrupted")

// SetInterrupt arms the engine with a cancellation flag shared with other
// goroutines: a guarded run polls it between events (every 1024 events,
// so the per-event cost is one branch) and stops with ErrInterrupted when
// it is set. nil (the default) disarms the check entirely. The flag never
// perturbs event order — a run that finishes without the flag set is
// bit-for-bit identical to an unarmed one.
func (e *Engine) SetInterrupt(flag *atomic.Bool) { e.intr = flag }

// RunGuarded executes events until the queue drains, like Run, but aborts
// with a *RunawayError after maxSteps events (counted from this call) if
// the queue still holds work. maxSteps == 0 means unlimited and never
// fails. The guard does not perturb event order, so a run that finishes
// under budget is bit-for-bit identical to an unguarded one. An armed
// interrupt flag (SetInterrupt) additionally stops the run with
// ErrInterrupted.
func (e *Engine) RunGuarded(maxSteps uint64) (Time, error) {
	if maxSteps == 0 && e.intr == nil {
		return e.Run(), nil
	}
	for executed := uint64(0); ; executed++ {
		if e.Pending() == 0 {
			return e.now, nil
		}
		if e.intr != nil && executed&1023 == 0 && e.intr.Load() {
			return e.now, ErrInterrupted
		}
		if maxSteps > 0 && executed >= maxSteps {
			return e.now, &RunawayError{
				Steps:      executed,
				TotalSteps: e.nSteps,
				Now:        e.now,
				Pending:    e.Pending(),
				NextAt:     e.nextAt(),
				Census:     e.PendingCensus(),
			}
		}
		e.Step()
	}
}

// NextAt reports the timestamp of the earliest pending event and whether
// one exists. Group uses it to pick the next conservative time window;
// diagnostics use it to see how far a stalled simulation would jump.
func (e *Engine) NextAt() (Time, bool) {
	if e.Pending() == 0 {
		return 0, false
	}
	return e.nextAt(), true
}

// RunWindow executes pending events with timestamps <= deadline, in the
// usual (at, seq) order, and returns how many ran. budget > 0 caps the
// count (the watchdog's share for this window); 0 means uncapped. The
// engine's clock never advances past the last executed event, so a later
// Schedule from outside still lands in this engine's future.
func (e *Engine) RunWindow(deadline Time, budget uint64) uint64 {
	var n uint64
	for e.Pending() > 0 && e.nextAt() <= deadline {
		if budget > 0 && n >= budget {
			break
		}
		e.Step()
		n++
		if e.cut {
			e.cut = false
			break
		}
	}
	return n
}

// CutWindow asks the engine to end the RunWindow in progress after the
// event currently executing. It must be called from an event body on this
// engine (equivalently: from the goroutine running the window), so there
// is no cross-goroutine handoff. Cutting is semantically invisible —
// events past the cut stay queued and run at the same (at, seq) position
// in a later window — so callers use it purely to tighten a window that
// was speculatively opened too wide.
func (e *Engine) CutWindow() { e.cut = true }

// RunUntil executes events with timestamps <= deadline. It reports whether
// the queue drained (true) or the deadline cut the run short (false).
func (e *Engine) RunUntil(deadline Time) bool {
	for e.Pending() > 0 {
		if e.nextAt() > deadline {
			return false
		}
		e.Step()
	}
	return true
}

// RunSteps executes at most n events, reporting whether the queue drained.
func (e *Engine) RunSteps(n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !e.Step() {
			return true
		}
	}
	return e.Pending() == 0
}

// farHeap is the overflow queue for events beyond the wheel window: a plain
// binary min-heap on (at, seq), value-typed so pushes and pops churn no
// allocations once the backing array has grown.
type farHeap []event

func (h *farHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].at < q[i].at || (q[p].at == q[i].at && q[p].seq < q[i].seq) {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
}

func (h *farHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (q[l].at < q[s].at || (q[l].at == q[s].at && q[l].seq < q[s].seq)) {
			s = l
		}
		if r < n && (q[r].at < q[s].at || (q[r].at == q[s].at && q[r].seq < q[s].seq)) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}
