// Shard-group scheduling: conservative parallel discrete-event simulation
// over several Engines.
//
// A Group owns N shards, each a private Engine (its own timing wheel,
// sequence counter and message pool). Shards advance in lock-stepped
// conservative windows: at every barrier the coordinator computes
// T = min over shards of the next pending timestamp, then lets every
// shard execute its events in [T, T+lookahead) with no synchronization.
// The caller guarantees (by construction of the cross-shard channels,
// see internal/network's mailboxes) that an event created on shard A for
// shard B during a window carries a timestamp >= window end, and is only
// injected into B at the next barrier — so no shard ever receives work
// in its past, and a window's execution on shard B is independent of how
// far shard A has gotten within the same window.
//
// Windows may also be adaptive (SetAdaptive): barriers that inject no
// cross-shard work widen the next window, bounded per shard by one
// lookahead past the earliest event still pending on any other shard —
// the same horizon the fixed window enforces — so the event order, and
// therefore the simulation, is identical; only the number of barriers
// changes.
//
// Two execution modes share this window structure:
//
//   - serial (the deterministic reference): the coordinator runs the
//     shards round-robin on its own goroutine;
//   - parallel: one worker goroutine per shard executes the window.
//
// Both produce identical results for the same shard count: a shard's
// window execution depends only on its own queue (deterministic (at,
// seq) order), and barrier work runs single-threaded on the coordinator
// in registration order either way.
package sim

import (
	"sort"
	"sync"
	"sync/atomic"

	"pccsim/internal/msg"
)

// Group coordinates a set of shard Engines through conservative time
// windows. Methods on Group are coordinator-side: they must not be
// called while a parallel window is executing (Engine methods on a shard
// mid-window belong exclusively to that shard's worker).
type Group struct {
	engs     []*Engine
	look     Time
	parallel bool
	hooks    []func()

	// Adaptive conservative windows (see SetAdaptive). allow is the
	// current window allowance: it equals look until consecutive quiet
	// barriers grow it, and snaps back to look whenever a barrier injects
	// cross-shard work. deads holds the per-shard deadlines of the window
	// being dispatched, reused across windows.
	adaptive bool
	maxAllow Time
	allow    Time
	windows  uint64
	deads    []Time

	// Parallel-run machinery, alive only inside RunGuarded.
	cmds    []chan windowJob
	results chan windowResult

	// intr, when armed via SetInterrupt, is polled at every window
	// barrier; see Engine.SetInterrupt for the contract.
	intr *atomic.Bool
}

type windowJob struct {
	deadline Time
	budget   uint64
}

type windowResult struct {
	shard int
	steps uint64
	pan   any // non-nil if the window panicked on this shard
}

// NewGroup creates a group of shards fresh Engines synchronized with the
// given lookahead (clamped up to 1). parallel selects worker-goroutine
// execution; with one shard or parallel=false the group runs serially on
// the caller's goroutine.
func NewGroup(shards int, lookahead Time, parallel bool) *Group {
	if shards < 1 {
		panic("sim: group needs at least one shard")
	}
	if lookahead < 1 {
		lookahead = 1
	}
	g := &Group{
		engs:     make([]*Engine, shards),
		look:     lookahead,
		parallel: parallel && shards > 1,
	}
	for i := range g.engs {
		g.engs[i] = NewEngine()
	}
	return g
}

// Shards returns the number of shards.
func (g *Group) Shards() int { return len(g.engs) }

// Engine returns shard i's private engine.
func (g *Group) Engine(i int) *Engine { return g.engs[i] }

// Lookahead returns the conservative window width.
func (g *Group) Lookahead() Time { return g.look }

// Parallel reports whether windows execute on worker goroutines.
func (g *Group) Parallel() bool { return g.parallel }

// Adaptive reports whether SetAdaptive has enabled window growth.
func (g *Group) Adaptive() bool { return g.adaptive }

// OnBarrier registers fn to run at every window barrier, before the next
// window is chosen. Hooks run on the coordinator goroutine with no shard
// executing, in registration order; they are where cross-shard mailboxes
// drain and per-shard buffers merge. A hook may schedule new events into
// any shard's engine.
func (g *Group) OnBarrier(fn func()) { g.hooks = append(g.hooks, fn) }

// SetAdaptive enables adaptive conservative windows: whenever a window
// barrier drains no cross-shard traffic (the hooks inject zero events),
// the next window's allowance doubles, up to maxAllowance; any injection
// snaps it back to the base lookahead. Compute-heavy phases with no
// coherence traffic then cross in O(log) barriers instead of one barrier
// per lookahead.
//
// Growth never admits an event out of order: each shard's deadline is
// additionally capped one lookahead past the earliest event any other
// shard could still execute (see computeDeadlines), which is exactly the
// horizon the base protocol's fixed window guarantees. The caller must
// ensure every cross-shard interaction outside the mailbox protocol —
// barrier releases, deferred calls — also respects that horizon, or keep
// adaptation off (see core.Config.AdaptiveWindows for the gating).
//
// Call before RunGuarded; a Group with adaptation enabled still runs
// serial and parallel schedules identically, because the allowance and
// deadlines are computed on the coordinator from barrier-time state.
func (g *Group) SetAdaptive(maxAllowance Time) {
	if maxAllowance < g.look {
		maxAllowance = g.look
	}
	g.adaptive = true
	g.maxAllow = maxAllowance
	g.allow = g.look
}

// SetInterrupt arms the group with a cancellation flag shared with other
// goroutines: RunGuarded polls it at every window barrier and stops with
// ErrInterrupted when it is set. nil (the default) disarms the check. The
// flag never perturbs event order within or across windows.
func (g *Group) SetInterrupt(flag *atomic.Bool) { g.intr = flag }

// Windows reports how many conservative windows have been dispatched.
// With adaptive windows enabled this is the direct measure of barrier
// overhead saved: fewer windows for the same event count means less
// coordinator synchronization per simulated cycle.
func (g *Group) Windows() uint64 { return g.windows }

// Now reports the simulation clock: the furthest shard's local time.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engs {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Steps reports events executed, summed over shards.
func (g *Group) Steps() uint64 {
	var n uint64
	for _, e := range g.engs {
		n += e.Steps()
	}
	return n
}

// Pending reports queued events, summed over shards.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.engs {
		n += e.Pending()
	}
	return n
}

// NextAt reports the earliest pending timestamp across all shards.
func (g *Group) NextAt() (Time, bool) {
	var best Time
	ok := false
	for _, e := range g.engs {
		if at, has := e.NextAt(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// ForEachPending visits every queued event on every shard, in shard
// order (queue order within a shard, as Engine.ForEachPending). m is nil
// for closure events.
func (g *Group) ForEachPending(visit func(at Time, m *msg.Message)) {
	for _, e := range g.engs {
		e.ForEachPending(visit)
	}
}

// PendingCensus aggregates Engine.PendingCensus over all shards: counts
// per message type plus the closure pseudo-entry, most frequent first
// (ties by name), matching the single-engine ordering.
func (g *Group) PendingCensus() []MsgCount {
	merged := map[string]int{}
	for _, e := range g.engs {
		for _, c := range e.PendingCensus() {
			merged[c.Type] += c.Count
		}
	}
	out := make([]MsgCount, 0, len(merged))
	for t, c := range merged {
		out = append(out, MsgCount{Type: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// Run executes until every shard's queue is empty and returns the final
// clock (max over shards).
func (g *Group) Run() Time {
	t, _ := g.RunGuarded(0)
	return t
}

// RunUntil executes events with timestamps <= deadline across all
// shards, honoring the window protocol (barrier hooks run between
// windows so cross-shard traffic keeps flowing). It reports whether
// every queue drained. RunUntil always executes serially — it is a
// debugging/stepping interface, and serial execution keeps the pause
// points deterministic.
func (g *Group) RunUntil(deadline Time) bool {
	for {
		for _, fn := range g.hooks {
			fn()
		}
		next, ok := g.NextAt()
		if !ok {
			return true
		}
		if next > deadline {
			return false
		}
		end := next + g.look - 1
		if end > deadline {
			end = deadline
		}
		g.setDeadlines(end)
		g.windows++
		g.runWindowSerial(0)
	}
}

// RunGuarded executes windows until every queue drains or maxSteps total
// events have run (0 = unlimited). On a runaway it returns a
// *RunawayError aggregated across shards: summed pending counts, merged
// census, min next timestamp, max clock.
func (g *Group) RunGuarded(maxSteps uint64) (Time, error) {
	run := g.runWindowSerial
	if g.parallel {
		stop := g.startWorkers()
		defer stop()
		run = g.runWindowParallel
	}
	var executed uint64
	for {
		// Hooks first: they drain cross-shard mailboxes, so a group
		// whose engines look empty may still have work in flight. The
		// pending-count delta across the hooks is the barrier's injected
		// traffic: zero means every shard is working from its own queue,
		// which is the adaptive scheduler's cue to widen the window.
		pend := g.Pending()
		for _, fn := range g.hooks {
			fn()
		}
		if g.adaptive {
			if g.Pending() != pend {
				g.allow = g.look
			} else if g.allow < g.maxAllow {
				g.allow *= 2
				if g.allow > g.maxAllow {
					g.allow = g.maxAllow
				}
			}
		}
		next, ok := g.NextAt()
		if !ok {
			return g.Now(), nil
		}
		if g.intr != nil && g.intr.Load() {
			return g.Now(), ErrInterrupted
		}
		if maxSteps > 0 && executed >= maxSteps {
			return g.Now(), g.runawayError(executed, next)
		}
		var budget uint64
		if maxSteps > 0 {
			budget = maxSteps - executed
		}
		g.computeDeadlines(next)
		g.windows++
		// In parallel mode each worker receives the full remaining
		// budget, so the group can overshoot maxSteps by up to
		// (shards-1)x within one window. The watchdog is a hang
		// detector, not an exact accountant; the overshoot is bounded
		// and the next barrier still trips the guard.
		executed += run(budget)
	}
}

// setDeadlines gives every shard the same window deadline (the base,
// non-adaptive schedule).
func (g *Group) setDeadlines(deadline Time) {
	if g.deads == nil {
		g.deads = make([]Time, len(g.engs))
	}
	for i := range g.deads {
		g.deads[i] = deadline
	}
}

// computeDeadlines fills g.deads for the window opening at next (the
// earliest pending timestamp across shards).
//
// Base schedule: every shard gets next+look-1, the classic conservative
// window — no event another shard sends this window can arrive inside it.
//
// Adaptive schedule (allow > look): shard i's deadline is
//
//	min(next+allow-1, minOther(i)+look-1)
//
// where minOther(i) is the earliest pending timestamp on any other
// shard. The second term is what makes any allowance sound: a message
// another shard j sends is stamped no earlier than j's next event, and
// arrives no earlier than lookahead later, so events up to
// minOther(i)+look-1 are beyond interference from every other shard no
// matter how wide their windows are. A lone busy shard (minOther = none)
// runs to the full allowance — the straggler case adaptation exists for.
func (g *Group) computeDeadlines(next Time) {
	if g.deads == nil {
		g.deads = make([]Time, len(g.engs))
	}
	base := next + g.look - 1
	if !g.adaptive || g.allow <= g.look {
		for i := range g.deads {
			g.deads[i] = base
		}
		return
	}
	// Track the two smallest next-timestamps so minOther(i) is O(1):
	// it is min1 for every shard except the one holding min1, which
	// sees min2.
	const none = ^Time(0)
	min1, min2 := none, none
	arg1 := -1
	for i, e := range g.engs {
		at, ok := e.NextAt()
		if !ok {
			continue
		}
		if at < min1 {
			min1, min2, arg1 = at, min1, i
		} else if at < min2 {
			min2 = at
		}
	}
	grown := next + g.allow - 1
	for i := range g.deads {
		minOther := min1
		if i == arg1 {
			minOther = min2
		}
		d := grown
		if minOther != none {
			if bound := minOther + g.look - 1; bound < d {
				d = bound
			}
		}
		g.deads[i] = d
	}
}

func (g *Group) runawayError(executed uint64, next Time) error {
	return &RunawayError{
		Steps:      executed,
		TotalSteps: g.Steps(),
		Now:        g.Now(),
		Pending:    g.Pending(),
		NextAt:     next,
		Census:     g.PendingCensus(),
	}
}

// runWindowSerial executes one window (per-shard deadlines in g.deads)
// round-robin on the calling goroutine, giving each shard at most the
// remaining budget.
func (g *Group) runWindowSerial(budget uint64) uint64 {
	var total uint64
	for i, e := range g.engs {
		if budget > 0 && total >= budget {
			break
		}
		var b uint64
		if budget > 0 {
			b = budget - total
		}
		total += e.RunWindow(g.deads[i], b)
	}
	return total
}

// startWorkers launches one goroutine per shard, parked on a private
// command channel. The returned stop function closes the channels and
// joins the workers; RunGuarded defers it so workers never outlive a
// run (including a panicking one).
func (g *Group) startWorkers() (stop func()) {
	g.cmds = make([]chan windowJob, len(g.engs))
	g.results = make(chan windowResult, len(g.engs))
	var wg sync.WaitGroup
	for i := range g.engs {
		g.cmds[i] = make(chan windowJob, 1)
		wg.Add(1)
		go func(shard int, e *Engine, cmds <-chan windowJob) {
			defer wg.Done()
			for job := range cmds {
				steps, pan := runWindowCatch(e, job)
				g.results <- windowResult{shard: shard, steps: steps, pan: pan}
			}
		}(i, g.engs[i], g.cmds[i])
	}
	return func() {
		for _, c := range g.cmds {
			close(c)
		}
		wg.Wait()
		g.cmds, g.results = nil, nil
	}
}

// runWindowCatch runs one window on a worker, converting a panic into a
// value so the coordinator can re-raise it after every shard has parked
// (re-raising immediately would leave sibling workers running over
// state the panic handler may inspect).
func runWindowCatch(e *Engine, job windowJob) (steps uint64, pan any) {
	defer func() {
		if r := recover(); r != nil {
			pan = r
		}
	}()
	return e.RunWindow(job.deadline, job.budget), nil
}

// runWindowParallel dispatches the window (per-shard deadlines in
// g.deads) to every shard that has work inside it and waits for all of
// them. If any shard panicked, the lowest-numbered shard's panic is
// re-raised — a deterministic choice, so a failure reproduces identically
// under the serial scheduler (which reaches the lowest shard's panic
// first by construction).
func (g *Group) runWindowParallel(budget uint64) uint64 {
	dispatched := 0
	for i, e := range g.engs {
		if at, ok := e.NextAt(); ok && at <= g.deads[i] {
			g.cmds[i] <- windowJob{deadline: g.deads[i], budget: budget}
			dispatched++
		}
	}
	var total uint64
	panShard, panVal := -1, any(nil)
	for k := 0; k < dispatched; k++ {
		r := <-g.results
		total += r.steps
		if r.pan != nil && (panShard < 0 || r.shard < panShard) {
			panShard, panVal = r.shard, r.pan
		}
	}
	if panShard >= 0 {
		panic(panVal)
	}
	return total
}
