package sim

import (
	"container/heap"
	"math/rand"
	"testing"

	"pccsim/internal/msg"
)

// refEngine is the pre-timing-wheel engine kept as the ordering reference:
// a container/heap priority queue over (at, seq), exactly the seed
// implementation. The determinism regression test replays identical
// schedules on it and on Engine and requires identical execution orders.
type refEngine struct {
	now   Time
	seq   uint64
	queue refQueue
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

func (e *refEngine) Now() Time { return e.now }

func (e *refEngine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.queue, &refEvent{at: at, seq: e.seq, fn: fn})
	e.seq++
}

func (e *refEngine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

func (e *refEngine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*refEvent)
	e.now = ev.at
	ev.fn()
	return true
}

func (e *refEngine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// clock abstracts the two engines for the replay harness.
type clock interface {
	Now() Time
	Schedule(at Time, fn func())
	After(d Time, fn func())
	Run() Time
}

// replaySchedule drives a deterministic, adversarial workload against eng:
// a recorded mix of near-constant protocol delays, far-future timestamps
// (beyond the wheel window so the heap fallback engages), same-cycle ties,
// and past-time scheduling, with events spawning children. It returns the
// execution order as (id, now) pairs.
type replayRecord struct {
	id int
	at Time
}

func replaySchedule(eng clock, seed int64) []replayRecord {
	rng := rand.New(rand.NewSource(seed))
	var order []replayRecord
	nextID := 0
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := nextID
		nextID++
		return func() {
			order = append(order, replayRecord{id: id, at: eng.Now()})
			if depth <= 0 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				var d Time
				switch rng.Intn(6) {
				case 0:
					d = 0 // same-cycle tie
				case 1:
					d = Time(rng.Intn(5)) // tiny jitter
				case 2:
					d = 100 // hop latency
				case 3:
					d = 20 // local crossbar
				case 4:
					d = Time(1000 + rng.Intn(60000)) // beyond the wheel window
				case 5:
					// Past-time scheduling: clamps to the current cycle.
					at := eng.Now()
					if at > 50 {
						at -= Time(rng.Intn(50))
					}
					eng.Schedule(at, spawn(depth-1))
					continue
				}
				eng.After(d, spawn(depth-1))
			}
		}
	}
	for i := 0; i < 40; i++ {
		var at Time
		switch rng.Intn(3) {
		case 0:
			at = Time(rng.Intn(30)) // dense near-zero ties
		case 1:
			at = Time(rng.Intn(1024)) // inside the initial window
		case 2:
			at = Time(1024 + rng.Intn(100000)) // heap fallback
		}
		eng.Schedule(at, spawn(5))
	}
	eng.Run()
	return order
}

// TestWheelMatchesHeapReference is the determinism regression test: the
// timing-wheel engine must replay a recorded schedule — mixed near/far
// timestamps, same-cycle ties, past-time scheduling, nested spawning — in
// exactly the order the seed heap implementation produced.
func TestWheelMatchesHeapReference(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		want := replaySchedule(&refEngine{}, seed)
		got := replaySchedule(NewEngine(), seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, reference executed %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: order diverged at event %d: wheel ran id=%d at cycle %d, reference id=%d at cycle %d",
					seed, i, got[i].id, uint64(got[i].at), want[i].id, uint64(want[i].at))
			}
		}
	}
}

// TestWheelFarMigrationOrdering pins the trickiest wheel invariant: a
// far-heap event must run before a same-cycle event scheduled later
// (smaller sequence number wins), even though it enters its bucket by
// migration rather than directly.
func TestWheelFarMigrationOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2000, func() { order = append(order, 1) }) // far at schedule time
	e.Schedule(1500, func() {
		// Window now reaches 1500+1024: schedule directly at 2000.
		e.Schedule(2000, func() { order = append(order, 2) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("far/near same-cycle order = %v, want [1 2]", order)
	}
	if e.Now() != 2000 {
		t.Fatalf("Now = %d, want 2000", e.Now())
	}
}

// TestWheelBucketReuseAcrossEpochs exercises bucket aliasing: cycles that
// map to the same bucket (delta of exactly wheelSize) must not mix.
func TestWheelBucketReuseAcrossEpochs(t *testing.T) {
	e := NewEngine()
	var order []Time
	rec := func() { order = append(order, e.Now()) }
	e.Schedule(5, rec)
	e.Schedule(5+wheelSize, rec)
	e.Schedule(5+2*wheelSize, rec)
	e.Schedule(5, rec)
	e.Run()
	want := []Time{5, 5, 5 + wheelSize, 5 + 2*wheelSize}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// benchSink implements MsgHandler for the typed-dispatch benchmarks; it
// reschedules each message with a protocol-like constant delay, modeling
// the steady-state churn of network delivery.
type benchSink struct {
	e     *Engine
	count int
	limit int
}

func (s *benchSink) HandleMsgEvent(op uint8, m *msg.Message) {
	s.count++
	if s.count < s.limit {
		// Cycle through the common protocol delays.
		d := Time(20)
		switch s.count & 3 {
		case 1:
			d = 100
		case 2:
			d = 50
		case 3:
			d = 200
		}
		s.e.ScheduleMsg(s.e.Now()+d, s, op, m)
	} else {
		s.e.FreeMsg(m)
	}
}

// TestScheduleMsgZeroAlloc proves the pooled typed path stays allocation
// free in steady state (acceptance criterion: 0 allocs/op for
// Schedule+Step).
func TestScheduleMsgZeroAlloc(t *testing.T) {
	e := NewEngine()
	sink := &benchSink{e: e, limit: 1 << 30}
	m := e.NewMsg()
	e.ScheduleMsg(1, sink, 0, m)
	for i := 0; i < 2000; i++ { // warm bucket capacity and the far heap
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Step+ScheduleMsg allocated %v allocs/op, want 0", allocs)
	}
}

// churnMix is the delay mix both churn benchmarks replay: the constant
// protocol latencies that dominate real cells.
var churnMix = [8]Time{20, 100, 50, 200, 100, 20, 100, 10}

// BenchmarkEngineChurn measures steady-state events/second on the timing
// wheel: a fixed population of self-rescheduling events with protocol
// delays. Compare against BenchmarkHeapReferenceChurn for the PR's
// headline single-cell ratio.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		e.After(churnMix[n&7], tick)
		n++
	}
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), tick)
	}
	for i := 0; i < 1024; i++ { // warm up bucket capacities
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkHeapReferenceChurn is the identical workload on the seed
// container/heap engine.
func BenchmarkHeapReferenceChurn(b *testing.B) {
	e := &refEngine{}
	n := 0
	var tick func()
	tick = func() {
		e.After(churnMix[n&7], tick)
		n++
	}
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), tick)
	}
	for i := 0; i < 1024; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineChurnTyped is the churn workload on the closure-free
// ScheduleMsg path with pooled messages — the configuration the protocol
// layers actually run.
func BenchmarkEngineChurnTyped(b *testing.B) {
	e := NewEngine()
	sink := &benchSink{e: e, limit: 1 << 62}
	for i := 0; i < 64; i++ {
		e.ScheduleMsg(Time(i), sink, 0, e.NewMsg())
	}
	for i := 0; i < 1024; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
