package sim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events reordered at %d: %v", i, got[:i+1])
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(100, func() {
		e.Schedule(10, func() { fired = true }) // in the past: clamp to now
		if e.Now() != 100 {
			t.Fatalf("Now = %d inside event, want 100", e.Now())
		}
	})
	e.Run()
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if e.Now() != 100 {
		t.Fatalf("final Now = %d, want 100", e.Now())
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(40, func() {
		e.After(7, func() { at = e.Now() })
	})
	e.Run()
	if at != 47 {
		t.Fatalf("After fired at %d, want 47", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, tm := range []Time{5, 10, 15, 20} {
		tm := tm
		e.Schedule(tm, func() { fired = append(fired, tm) })
	}
	if e.RunUntil(12) {
		t.Fatal("RunUntil(12) reported drained with events pending")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if !e.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain")
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want 4 events", fired)
	}
}

func TestRunSteps(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() { count++ })
	}
	if e.RunSteps(4) {
		t.Fatal("RunSteps(4) reported drained")
	}
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if !e.RunSteps(100) {
		t.Fatal("RunSteps(100) should drain")
	}
}

func TestCascadedEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 1000 {
			e.After(1, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if e.Now() != 999 {
		t.Fatalf("Now = %d, want 999", e.Now())
	}
	if e.Steps() != 1000 {
		t.Fatalf("Steps = %d, want 1000", e.Steps())
	}
}

// Property: events always execute in nondecreasing time order and the engine
// visits every scheduled event exactly once, for arbitrary schedules.
func TestPropertyTimeMonotonic(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var ran []Time
		for _, tm := range times {
			tm := Time(tm)
			e.Schedule(tm, func() { ran = append(ran, tm) })
		}
		e.Run()
		if len(ran) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(ran, func(i, j int) bool { return ran[i] < ran[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduling-from-within-events preserves ordering.
func TestPropertyNestedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	var last Time
	violations := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		if e.Now() < last {
			violations++
		}
		last = e.Now()
		if depth > 0 {
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				e.After(Time(rng.Intn(50)), func() { spawn(depth - 1) })
			}
		}
	}
	for i := 0; i < 20; i++ {
		e.Schedule(Time(rng.Intn(100)), func() { spawn(6) })
	}
	e.Run()
	if violations != 0 {
		t.Fatalf("%d time-order violations", violations)
	}
}

func TestRunGuardedDrains(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() { count++ })
	}
	at, err := e.RunGuarded(100)
	if err != nil {
		t.Fatalf("run under budget failed: %v", err)
	}
	if count != 10 || at != 9 {
		t.Fatalf("count=%d at=%d, want 10 at 9", count, at)
	}
}

func TestRunGuardedUnlimited(t *testing.T) {
	e := NewEngine()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 5000 {
			e.After(1, chain)
		}
	}
	e.Schedule(0, chain)
	if _, err := e.RunGuarded(0); err != nil {
		t.Fatalf("maxSteps=0 must never fail: %v", err)
	}
	if depth != 5000 {
		t.Fatalf("depth = %d, want 5000", depth)
	}
}

func TestRunGuardedAbortsRunaway(t *testing.T) {
	e := NewEngine()
	// Execute some events before the guarded run so the error's
	// engine-lifetime total is distinguishable from the guarded window.
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	// A livelock: the event reschedules itself forever.
	var spin func()
	spin = func() { e.After(3, spin) }
	e.Schedule(0, spin)
	_, err := e.RunGuarded(1000)
	if err == nil {
		t.Fatal("runaway loop not aborted")
	}
	re, ok := err.(*RunawayError)
	if !ok {
		t.Fatalf("error type %T, want *RunawayError", err)
	}
	if re.Steps != 1000 {
		t.Fatalf("Steps = %d, want 1000", re.Steps)
	}
	if re.TotalSteps != e.Steps() || re.TotalSteps != 1007 {
		t.Fatalf("TotalSteps = %d, want engine total %d (= 1007)", re.TotalSteps, e.Steps())
	}
	if re.Pending != 1 {
		t.Fatalf("Pending = %d, want 1 (the self-rescheduling event)", re.Pending)
	}
	if re.NextAt < re.Now {
		t.Fatalf("NextAt %d before Now %d", re.NextAt, re.Now)
	}
	if re.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestRunGuardedMatchesRun(t *testing.T) {
	// The guard must not perturb event order or timing.
	build := func() (*Engine, *[]Time) {
		e := NewEngine()
		var ran []Time
		for _, tm := range []Time{9, 3, 3, 7, 1} {
			tm := tm
			e.Schedule(tm, func() { ran = append(ran, tm) })
		}
		return e, &ran
	}
	e1, r1 := build()
	e2, r2 := build()
	t1 := e1.Run()
	t2, err := e2.RunGuarded(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 || len(*r1) != len(*r2) {
		t.Fatalf("guarded run diverged: %d/%v vs %d/%v", t1, *r1, t2, *r2)
	}
	for i := range *r1 {
		if (*r1)[i] != (*r2)[i] {
			t.Fatalf("event order diverged at %d", i)
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}

func TestPendingCensus(t *testing.T) {
	e := NewEngine()
	h := &nullHandler{}
	for i := 0; i < 3; i++ {
		m := e.NewMsg()
		m.Type = msg.GetShared
		e.AfterMsg(Time(10+i), h, 0, m)
	}
	m := e.NewMsg()
	m.Type = msg.Nack
	e.AfterMsg(2000, h, 0, m) // lands in the far heap
	e.Schedule(5, func() {})

	census := e.PendingCensus()
	want := map[string]int{"GetShared": 3, "Nack": 1, "closure": 1}
	if len(census) != len(want) {
		t.Fatalf("census = %+v, want %v", census, want)
	}
	for _, mc := range census {
		if want[mc.Type] != mc.Count {
			t.Fatalf("census[%s] = %d, want %d", mc.Type, mc.Count, want[mc.Type])
		}
	}
	// Sorted by descending count.
	if census[0].Type != "GetShared" {
		t.Fatalf("census not sorted by count: %+v", census)
	}
}

func TestRunawayErrorCarriesCensus(t *testing.T) {
	e := NewEngine()
	h := &nullHandler{}
	var spin func()
	spin = func() {
		m := e.NewMsg()
		m.Type = msg.Intervention
		e.AfterMsg(100_000, h, 0, m) // far enough out to still be queued at abort
		e.After(3, spin)
	}
	e.Schedule(0, spin)
	_, err := e.RunGuarded(50)
	re, ok := err.(*RunawayError)
	if !ok {
		t.Fatalf("err = %v, want *RunawayError", err)
	}
	if len(re.Census) == 0 {
		t.Fatal("runaway error has no pending-message census")
	}
	if s := re.Error(); !strings.Contains(s, "pending:") || !strings.Contains(s, "Intervention=") {
		t.Fatalf("error string lacks census: %q", s)
	}
}

type nullHandler struct{}

func (nullHandler) HandleMsgEvent(op uint8, m *msg.Message) {}
