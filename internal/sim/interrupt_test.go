package sim

import (
	"errors"
	"sync/atomic"
	"testing"
)

// chain schedules a self-perpetuating event chain of n links on e.
func chain(e *Engine, n int) {
	var step func()
	left := n
	step = func() {
		if left--; left > 0 {
			e.After(1, step)
		}
	}
	e.After(1, step)
}

func TestEngineInterrupt(t *testing.T) {
	e := NewEngine()
	var flag atomic.Bool
	e.SetInterrupt(&flag)
	chain(e, 100000)
	// Trip the flag from inside the run so the stop point is exact: the
	// poll fires on the next multiple-of-1024 event boundary.
	e.Schedule(5000, func() { flag.Store(true) })
	at, err := e.RunGuarded(0)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("RunGuarded = (%d, %v), want ErrInterrupted", at, err)
	}
	if e.Pending() == 0 {
		t.Fatal("interrupted run drained the queue anyway")
	}
	// The run can resume (the flag is owned by the caller): clear it and
	// the same engine drains to completion.
	flag.Store(false)
	if _, err := e.RunGuarded(0); err != nil {
		t.Fatalf("resumed RunGuarded: %v", err)
	}
	if e.Pending() != 0 {
		t.Fatalf("resumed run left %d events pending", e.Pending())
	}
}

func TestEngineInterruptBeforeRun(t *testing.T) {
	e := NewEngine()
	var flag atomic.Bool
	flag.Store(true)
	e.SetInterrupt(&flag)
	chain(e, 4096)
	if _, err := e.RunGuarded(0); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("RunGuarded = %v, want ErrInterrupted", err)
	}
	if got := e.Steps(); got != 0 {
		t.Fatalf("pre-armed interrupt still executed %d events", got)
	}
}

func TestEngineInterruptNilKeepsFastPath(t *testing.T) {
	e := NewEngine()
	chain(e, 512)
	if _, err := e.RunGuarded(0); err != nil {
		t.Fatalf("RunGuarded with nil interrupt: %v", err)
	}
	if e.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestGroupInterrupt(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := NewGroup(2, 8, parallel)
		var flag atomic.Bool
		g.SetInterrupt(&flag)
		for s := 0; s < 2; s++ {
			chain(g.Engine(s), 100000)
		}
		g.Engine(0).Schedule(500, func() { flag.Store(true) })
		at, err := g.RunGuarded(0)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("parallel=%v: RunGuarded = (%d, %v), want ErrInterrupted",
				parallel, at, err)
		}
		if _, ok := g.NextAt(); !ok {
			t.Fatalf("parallel=%v: interrupted group drained anyway", parallel)
		}
		flag.Store(false)
		if _, err := g.RunGuarded(0); err != nil {
			t.Fatalf("parallel=%v: resumed RunGuarded: %v", parallel, err)
		}
	}
}
