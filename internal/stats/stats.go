// Package stats collects the counters the paper's evaluation reports:
// execution cycles, remote misses broken down by how many network hops they
// needed, interconnect messages and bytes by type, NACKs, delegation and
// speculative-update activity, and the consumer-count distribution of
// Table 3.
package stats

import (
	"fmt"
	"io"
	"sort"

	"pccsim/internal/msg"
)

// MissClass classifies how a processor-visible L2 miss was satisfied.
type MissClass uint8

const (
	// MissLocalRAC: satisfied by the node's own remote access cache
	// (a speculative update landed in time) — the "0-hop" miss the
	// paper's update mechanism creates.
	MissLocalRAC MissClass = iota
	// MissLocalHome: satisfied by local memory (the line's home is this
	// node and no remote owner intervened).
	MissLocalHome
	// MissRemote2Hop: requester -> home (or delegated home) -> requester.
	MissRemote2Hop
	// MissRemote3Hop: requester -> home -> owner -> requester.
	MissRemote3Hop
	numMissClasses
)

var missClassNames = [...]string{
	MissLocalRAC:   "local-RAC",
	MissLocalHome:  "local-home",
	MissRemote2Hop: "remote-2hop",
	MissRemote3Hop: "remote-3hop",
}

func (c MissClass) String() string { return missClassNames[c] }

// UndelegateReason enumerates the three undelegation causes of §2.3.3.
type UndelegateReason uint8

const (
	// UndelCapacity: the producer table ran out of space.
	UndelCapacity UndelegateReason = iota
	// UndelFlush: the producer lost its local copy (RAC pin dropped).
	UndelFlush
	// UndelRemoteWrite: another node requested exclusive ownership.
	UndelRemoteWrite
	numUndelReasons
)

var undelReasonNames = [...]string{
	UndelCapacity:    "capacity",
	UndelFlush:       "flush",
	UndelRemoteWrite: "remote-write",
}

func (r UndelegateReason) String() string { return undelReasonNames[r] }

// NumMissClasses and NumUndelegateReasons export the enum sizes for
// layers that index arrays by them (internal/obs).
const (
	NumMissClasses       = int(numMissClasses)
	NumUndelegateReasons = int(numUndelReasons)
)

// Stats aggregates every counter for one simulation run. The zero value is
// ready to use.
type Stats struct {
	// Execution.
	ExecCycles uint64 // parallel-phase cycles (max over nodes)
	Loads      uint64
	Stores     uint64
	Barriers   uint64

	// Cache behaviour.
	L1Hits  uint64
	L2Hits  uint64
	Misses  [numMissClasses]uint64
	RACHits uint64 // RAC hits that satisfied an L2 miss (== Misses[MissLocalRAC] plus victim-cache hits)

	// Interconnect.
	MsgCount [msg.NumTypes]uint64
	MsgBytes [msg.NumTypes]uint64
	HopSum   uint64 // total network hops over all packets (0 for node-local)

	// Protocol events.
	Retries        uint64 // request retries after a NACK
	Interventions  uint64
	Invalidations  uint64
	Delegations    uint64
	Undelegations  [numUndelReasons]uint64
	UpdatesSent    uint64
	UpdatesUseful  uint64 // consumed by a read (RAC hit or matched an outstanding miss)
	UpdatesWasted  uint64 // overwritten or evicted before any read
	PCLinesMarked  uint64 // lines the detector flagged producer-consumer
	DirCacheEvicts uint64
	SelfDowngrades uint64 // eager downgrades under dynamic self-invalidation

	// ConsumerDist histograms the sharer count seen at each producer
	// write to a detected producer-consumer line (Table 3): index 0 =
	// one consumer, ... index 4 = more than four consumers.
	ConsumerDist [5]uint64
}

// New returns an empty Stats.
func New() *Stats { return &Stats{} }

// RecordMsg accounts one message on the wire.
func (s *Stats) RecordMsg(m *msg.Message) {
	s.MsgCount[m.Type]++
	s.MsgBytes[m.Type] += uint64(m.Bytes())
}

// RecordHops accounts the network distance one packet travelled.
func (s *Stats) RecordHops(n int) { s.HopSum += uint64(n) }

// RecordMiss accounts a satisfied L2 miss.
func (s *Stats) RecordMiss(c MissClass) { s.Misses[c]++ }

// RecordConsumers buckets the consumer count of one producer write interval.
func (s *Stats) RecordConsumers(n int) {
	switch {
	case n <= 0:
		return
	case n >= 5:
		s.ConsumerDist[4]++
	default:
		s.ConsumerDist[n-1]++
	}
}

// RecordUndelegation accounts one undelegation by cause.
func (s *Stats) RecordUndelegation(r UndelegateReason) { s.Undelegations[r]++ }

// RemoteMisses is the total number of misses that required network traffic.
func (s *Stats) RemoteMisses() uint64 {
	return s.Misses[MissRemote2Hop] + s.Misses[MissRemote3Hop]
}

// LocalMisses is the number of L2 misses satisfied without remote traffic.
func (s *Stats) LocalMisses() uint64 {
	return s.Misses[MissLocalRAC] + s.Misses[MissLocalHome]
}

// TotalMisses is all L2 misses.
func (s *Stats) TotalMisses() uint64 { return s.RemoteMisses() + s.LocalMisses() }

// RACMisses counts L2 misses satisfied by the local RAC (0 network hops).
func (s *Stats) RACMisses() uint64 { return s.Misses[MissLocalRAC] }

// LocalHomeMisses counts L2 misses satisfied from local memory.
func (s *Stats) LocalHomeMisses() uint64 { return s.Misses[MissLocalHome] }

// Remote2HopMisses counts requester-home-requester misses.
func (s *Stats) Remote2HopMisses() uint64 { return s.Misses[MissRemote2Hop] }

// Remote3HopMisses counts misses forwarded through a third-party owner.
func (s *Stats) Remote3HopMisses() uint64 { return s.Misses[MissRemote3Hop] }

// TotalMessages is the total number of packets injected into the network.
func (s *Stats) TotalMessages() uint64 {
	var t uint64
	for _, c := range s.MsgCount {
		t += c
	}
	return t
}

// TotalBytes is the total wire traffic in bytes.
func (s *Stats) TotalBytes() uint64 {
	var t uint64
	for _, b := range s.MsgBytes {
		t += b
	}
	return t
}

// AvgHops is the mean network distance per packet (node-local packets
// count as zero hops).
func (s *Stats) AvgHops() float64 {
	if t := s.TotalMessages(); t > 0 {
		return float64(s.HopSum) / float64(t)
	}
	return 0
}

// Nacks is the number of NACK packets (both flavours).
func (s *Stats) Nacks() uint64 {
	return s.MsgCount[msg.Nack] + s.MsgCount[msg.NackNotHome]
}

// TotalUndelegations sums undelegations over all causes.
func (s *Stats) TotalUndelegations() uint64 {
	var t uint64
	for _, u := range s.Undelegations {
		t += u
	}
	return t
}

// UpdateAccuracy is the fraction of speculative updates that were consumed.
func (s *Stats) UpdateAccuracy() float64 {
	if s.UpdatesSent == 0 {
		return 0
	}
	return float64(s.UpdatesUseful) / float64(s.UpdatesSent)
}

// ConsumerDistPercent returns the Table 3 row: percentage of producer-write
// intervals with 1, 2, 3, 4 and >4 consumers.
func (s *Stats) ConsumerDistPercent() [5]float64 {
	var out [5]float64
	var total uint64
	for _, c := range s.ConsumerDist {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range s.ConsumerDist {
		out[i] = 100 * float64(c) / float64(total)
	}
	return out
}

// Add accumulates other into s (used to aggregate per-node stats).
func (s *Stats) Add(other *Stats) {
	if other.ExecCycles > s.ExecCycles {
		s.ExecCycles = other.ExecCycles
	}
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.Barriers += other.Barriers
	s.L1Hits += other.L1Hits
	s.L2Hits += other.L2Hits
	s.RACHits += other.RACHits
	for i := range s.Misses {
		s.Misses[i] += other.Misses[i]
	}
	for i := range s.MsgCount {
		s.MsgCount[i] += other.MsgCount[i]
		s.MsgBytes[i] += other.MsgBytes[i]
	}
	s.HopSum += other.HopSum
	s.Retries += other.Retries
	s.Interventions += other.Interventions
	s.Invalidations += other.Invalidations
	s.Delegations += other.Delegations
	for i := range s.Undelegations {
		s.Undelegations[i] += other.Undelegations[i]
	}
	s.UpdatesSent += other.UpdatesSent
	s.UpdatesUseful += other.UpdatesUseful
	s.UpdatesWasted += other.UpdatesWasted
	s.PCLinesMarked += other.PCLinesMarked
	s.DirCacheEvicts += other.DirCacheEvicts
	s.SelfDowngrades += other.SelfDowngrades
	for i := range s.ConsumerDist {
		s.ConsumerDist[i] += other.ConsumerDist[i]
	}
}

// Dump writes a human-readable report to w.
func (s *Stats) Dump(w io.Writer) {
	fmt.Fprintf(w, "execution cycles:      %d\n", s.ExecCycles)
	fmt.Fprintf(w, "loads / stores:        %d / %d (barriers %d)\n", s.Loads, s.Stores, s.Barriers)
	fmt.Fprintf(w, "L1 hits / L2 hits:     %d / %d\n", s.L1Hits, s.L2Hits)
	fmt.Fprintf(w, "misses:")
	for c := MissClass(0); c < numMissClasses; c++ {
		fmt.Fprintf(w, "  %s=%d", c, s.Misses[c])
	}
	fmt.Fprintf(w, "\nremote misses:         %d (local %d)\n", s.RemoteMisses(), s.LocalMisses())
	fmt.Fprintf(w, "network messages:      %d (%d bytes, %d NACKs, %d retries)\n",
		s.TotalMessages(), s.TotalBytes(), s.Nacks(), s.Retries)
	fmt.Fprintf(w, "delegations:           %d (undelegations:", s.Delegations)
	for r := UndelegateReason(0); r < numUndelReasons; r++ {
		fmt.Fprintf(w, " %s=%d", r, s.Undelegations[r])
	}
	fmt.Fprintf(w, ")\n")
	fmt.Fprintf(w, "updates sent/useful/wasted: %d/%d/%d (accuracy %.1f%%)\n",
		s.UpdatesSent, s.UpdatesUseful, s.UpdatesWasted, 100*s.UpdateAccuracy())
	dist := s.ConsumerDistPercent()
	fmt.Fprintf(w, "consumer distribution: 1:%.1f%% 2:%.1f%% 3:%.1f%% 4:%.1f%% 4+:%.1f%%\n",
		dist[0], dist[1], dist[2], dist[3], dist[4])
	// Message breakdown, sorted by count, nonzero only.
	type row struct {
		t     msg.Type
		count uint64
	}
	var rows []row
	for t, c := range s.MsgCount {
		if c > 0 {
			rows = append(rows, row{msg.Type(t), c})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	for _, r := range rows {
		fmt.Fprintf(w, "  msg %-16s %10d (%d bytes)\n", r.t, r.count, s.MsgBytes[r.t])
	}
}
