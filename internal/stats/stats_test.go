package stats

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
)

func TestRecordMsg(t *testing.T) {
	s := New()
	s.RecordMsg(&msg.Message{Type: msg.GetShared})
	s.RecordMsg(&msg.Message{Type: msg.SharedReply})
	s.RecordMsg(&msg.Message{Type: msg.SharedReply})
	if s.TotalMessages() != 3 {
		t.Fatalf("TotalMessages = %d, want 3", s.TotalMessages())
	}
	wantBytes := uint64(msg.HeaderBytes + 2*(msg.HeaderBytes+msg.LineBytes))
	if s.TotalBytes() != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", s.TotalBytes(), wantBytes)
	}
}

func TestMissClassification(t *testing.T) {
	s := New()
	s.RecordMiss(MissLocalRAC)
	s.RecordMiss(MissLocalHome)
	s.RecordMiss(MissRemote2Hop)
	s.RecordMiss(MissRemote2Hop)
	s.RecordMiss(MissRemote3Hop)
	if s.RemoteMisses() != 3 {
		t.Fatalf("RemoteMisses = %d, want 3", s.RemoteMisses())
	}
	if s.LocalMisses() != 2 {
		t.Fatalf("LocalMisses = %d, want 2", s.LocalMisses())
	}
	if s.TotalMisses() != 5 {
		t.Fatalf("TotalMisses = %d, want 5", s.TotalMisses())
	}
}

func TestConsumerDistBuckets(t *testing.T) {
	s := New()
	for _, n := range []int{1, 2, 2, 3, 4, 5, 9, 100, 0, -1} {
		s.RecordConsumers(n)
	}
	want := [5]uint64{1, 2, 1, 1, 3} // 0 and -1 ignored
	if s.ConsumerDist != want {
		t.Fatalf("ConsumerDist = %v, want %v", s.ConsumerDist, want)
	}
	pct := s.ConsumerDistPercent()
	var sum float64
	for _, p := range pct {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("percentages sum to %f, want 100", sum)
	}
}

func TestConsumerDistEmpty(t *testing.T) {
	s := New()
	if got := s.ConsumerDistPercent(); got != [5]float64{} {
		t.Fatalf("empty dist percent = %v, want zeros", got)
	}
}

func TestUpdateAccuracy(t *testing.T) {
	s := New()
	if s.UpdateAccuracy() != 0 {
		t.Fatal("accuracy with no updates should be 0")
	}
	s.UpdatesSent = 10
	s.UpdatesUseful = 7
	if acc := s.UpdateAccuracy(); math.Abs(acc-0.7) > 1e-12 {
		t.Fatalf("accuracy = %f, want 0.7", acc)
	}
}

func TestNacksAndUndelegations(t *testing.T) {
	s := New()
	s.RecordMsg(&msg.Message{Type: msg.Nack})
	s.RecordMsg(&msg.Message{Type: msg.NackNotHome})
	s.RecordMsg(&msg.Message{Type: msg.GetShared})
	if s.Nacks() != 2 {
		t.Fatalf("Nacks = %d, want 2", s.Nacks())
	}
	s.RecordUndelegation(UndelCapacity)
	s.RecordUndelegation(UndelRemoteWrite)
	s.RecordUndelegation(UndelRemoteWrite)
	if s.TotalUndelegations() != 3 {
		t.Fatalf("TotalUndelegations = %d, want 3", s.TotalUndelegations())
	}
	if s.Undelegations[UndelRemoteWrite] != 2 {
		t.Fatalf("remote-write undelegations = %d, want 2", s.Undelegations[UndelRemoteWrite])
	}
}

func TestAddAggregates(t *testing.T) {
	a, b := New(), New()
	a.ExecCycles = 100
	b.ExecCycles = 250
	a.Loads, b.Loads = 5, 7
	a.RecordMiss(MissRemote3Hop)
	b.RecordMiss(MissRemote3Hop)
	b.RecordMiss(MissLocalRAC)
	a.RecordMsg(&msg.Message{Type: msg.Update})
	b.RecordMsg(&msg.Message{Type: msg.Update})
	a.RecordConsumers(2)
	b.RecordConsumers(2)
	a.Add(b)
	if a.ExecCycles != 250 {
		t.Fatalf("ExecCycles = %d, want max 250", a.ExecCycles)
	}
	if a.Loads != 12 {
		t.Fatalf("Loads = %d, want 12", a.Loads)
	}
	if a.Misses[MissRemote3Hop] != 2 || a.Misses[MissLocalRAC] != 1 {
		t.Fatalf("miss aggregation wrong: %v", a.Misses)
	}
	if a.MsgCount[msg.Update] != 2 {
		t.Fatalf("msg aggregation wrong")
	}
	if a.ConsumerDist[1] != 2 {
		t.Fatalf("consumer dist aggregation wrong: %v", a.ConsumerDist)
	}
}

func TestDumpNonEmpty(t *testing.T) {
	s := New()
	s.RecordMsg(&msg.Message{Type: msg.GetShared})
	s.RecordMiss(MissRemote2Hop)
	var buf bytes.Buffer
	s.Dump(&buf)
	if buf.Len() == 0 {
		t.Fatal("Dump produced no output")
	}
}

func TestMissClassStrings(t *testing.T) {
	for c := MissClass(0); c < numMissClasses; c++ {
		if c.String() == "" {
			t.Fatalf("miss class %d has empty name", c)
		}
	}
	for r := UndelegateReason(0); r < numUndelReasons; r++ {
		if r.String() == "" {
			t.Fatalf("undelegate reason %d has empty name", r)
		}
	}
}

// Property: Add is commutative on totals.
func TestPropertyAddCommutative(t *testing.T) {
	f := func(m1, m2, b1, b2 uint16) bool {
		mk := func(m, b uint16) *Stats {
			s := New()
			for i := 0; i < int(m%50); i++ {
				s.RecordMsg(&msg.Message{Type: msg.GetExcl})
			}
			for i := 0; i < int(b%50); i++ {
				s.RecordMiss(MissRemote2Hop)
			}
			return s
		}
		x := mk(m1, b1)
		x.Add(mk(m2, b2))
		y := mk(m2, b2)
		y.Add(mk(m1, b1))
		return x.TotalMessages() == y.TotalMessages() && x.RemoteMisses() == y.RemoteMisses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
