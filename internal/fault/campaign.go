package fault

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// CampaignOpts configures a fuzzing campaign.
type CampaignOpts struct {
	Seed    int64         // base seed; case i uses Seed+i
	Cases   int           // max cases (0 = unlimited, bound by Budget)
	Budget  time.Duration // wall-clock budget (0 = unlimited, bound by Cases)
	Workers int           // concurrent runners (min 1)
	Gen     GenOpts
	// ShrinkRuns bounds each failure's shrink effort (0 = no shrinking).
	ShrinkRuns int
	// MaxFailures stops the campaign early (0 = collect them all).
	MaxFailures int
	Log         io.Writer // optional progress log
	LogEvery    int       // log a progress line every N cases (0 = 200)
}

// Failure is one failing case with its shrunk reproduction.
type Failure struct {
	Seed       int64
	Result     Result // verdict of the original case
	Case       Case   // the original generated case
	Shrunk     Case   // minimal reproduction (== Case when not shrunk)
	ShrunkOps  int
	ShrinkRuns int
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Cases    int
	Events   uint64
	Failures []Failure
	Wall     time.Duration
	// Perturbed counts cases whose schedule actually fired at least one
	// perturbation — a campaign where this stays near zero is not
	// testing what it thinks it is.
	Perturbed int
}

// RunCampaign generates and runs cases over seeds opts.Seed+i. Each case
// runs on its own private engine, so workers share nothing; results are
// folded in seed order, making the campaign summary independent of worker
// count and scheduling. Failures are shrunk before being reported.
func RunCampaign(opts CampaignOpts) CampaignResult {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	logEvery := opts.LogEvery
	if logEvery == 0 {
		logEvery = 200
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.Budget > 0 {
		deadline = start.Add(opts.Budget)
	}

	type outcome struct {
		c   Case
		res Result
	}
	var (
		mu   sync.Mutex
		next int64 // next case index to hand out
		stop bool
		outs []outcome
	)
	claim := func() (int64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if stop {
			return 0, false
		}
		if opts.Cases > 0 && next >= int64(opts.Cases) {
			return 0, false
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				c := GenCase(opts.Seed+i, opts.Gen)
				res := c.Run()
				mu.Lock()
				outs = append(outs, outcome{c, res})
				done := len(outs)
				failures := 0
				for _, o := range outs {
					if !o.res.Ok {
						failures++
					}
				}
				if opts.MaxFailures > 0 && failures >= opts.MaxFailures {
					stop = true
				}
				if opts.Log != nil && done%logEvery == 0 {
					fmt.Fprintf(opts.Log, "fuzz: %d cases, %d failures, %s elapsed\n",
						done, failures, time.Since(start).Round(time.Second))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Fold in seed order so the summary is scheduling-independent.
	bySeed := make(map[int64]outcome, len(outs))
	for _, o := range outs {
		bySeed[o.c.Seed] = o
	}
	var cr CampaignResult
	for i := int64(0); ; i++ {
		o, ok := bySeed[opts.Seed+i]
		if !ok {
			break
		}
		cr.Cases++
		cr.Events += o.res.Events
		if o.res.Perturbations > 0 {
			cr.Perturbed++
		}
		if !o.res.Ok {
			f := Failure{Seed: o.c.Seed, Result: o.res, Case: o.c, Shrunk: o.c}
			if opts.ShrinkRuns > 0 {
				f.Shrunk, f.ShrinkRuns = Shrink(o.c, opts.ShrinkRuns)
			}
			f.ShrunkOps = len(f.Shrunk.Ops)
			// One deterministic replay of the minimal case, observed:
			// the repro file carries the protocol's dying moments.
			f.Shrunk.Trace = f.Shrunk.TraceTail(TraceTailEvents)
			cr.Failures = append(cr.Failures, f)
		}
	}
	cr.Wall = time.Since(start)
	return cr
}
