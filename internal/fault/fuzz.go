package fault

import (
	"fmt"
	"sync/atomic"
	"time"

	"pccsim/internal/core"
	"pccsim/internal/msg"
	"pccsim/internal/obs"
	"pccsim/internal/protocol"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Machine is the reduced configuration space the fuzzer explores: tiny
// caches and tables so every structural pressure point (L2 conflict
// evictions, RAC pin saturation, delegate-cache churn) is reachable within
// a few hundred operations. It maps onto core.Config via BuildConfig.
type Machine struct {
	Nodes int `json:"nodes"`
	// Lines is the address-pool size. Line i lives on its own page,
	// pre-placed at node i%Nodes, so shrinking an op list never moves
	// the homes of the survivors.
	Lines int `json:"lines"`

	L2Lines  int `json:"l2_lines"`  // L2 capacity in 128 B lines (2-way)
	RACLines int `json:"rac_lines"` // RAC capacity in lines; 0 disables

	// Protocol names the coherence protocol the case runs under; empty
	// means the default ("adaptive", the paper's protocol), which is what
	// every corpus repro written before the plugin architecture replays
	// as. Part of the repro identity: a failure under one protocol must
	// replay under the same one.
	Protocol string `json:"protocol,omitempty"`

	DelegateEntries int  `json:"delegate_entries,omitempty"`
	Updates         bool `json:"updates,omitempty"`
	Adaptive        bool `json:"adaptive,omitempty"`
	SelfInvalidate  bool `json:"self_invalidate,omitempty"`
	DetectorWriters int  `json:"detector_writers,omitempty"`

	// Shards records the engine partitioning the case runs under (0 =
	// the legacy single engine) and Parallel the scheduler (false = the
	// deterministic serial round-robin). Both are part of the repro: a
	// failure found on a sharded machine must replay on one. Shards is
	// never omitted from JSON so every committed repro states its mode.
	Shards   int  `json:"shards"`
	Parallel bool `json:"parallel,omitempty"`
	// AdaptiveWindows widens the sharded schedulers' conservative
	// windows between quiet barriers. Results are identical with it on
	// or off, but it is still part of the repro so a scheduler bug in
	// the growth machinery itself replays faithfully.
	AdaptiveWindows bool `json:"adaptive_windows,omitempty"`

	// InterventionDelay in cycles (0 = the protocol default of 50);
	// NoIntervention disables the delayed intervention entirely.
	InterventionDelay uint64 `json:"intervention_delay,omitempty"`
	NoIntervention    bool   `json:"no_intervention,omitempty"`
}

// Op is one injected memory operation: node performs a load or store on
// address-pool line Line at engine cycle At. Ops are the unit the shrinker
// removes, so a minimal reproduction reads as a short program.
type Op struct {
	At    uint64 `json:"at"`
	Node  int    `json:"node"`
	Line  int    `json:"line"`
	Write bool   `json:"write,omitempty"`
}

// Case is one self-contained fuzz input: a machine, a fault schedule and a
// timed op list. Cases serialize to JSON for the replay corpus; running
// the same case always produces the same Result.
type Case struct {
	// Seed records the generator seed the case came from (provenance
	// only; replay never re-derives anything from it).
	Seed int64  `json:"seed"`
	Note string `json:"note,omitempty"`

	Machine Machine `json:"machine"`
	Faults  Config  `json:"faults"`
	Ops     []Op    `json:"ops"`

	// Trace is the last-N-protocol-events window of the failing run,
	// captured by TraceTail when a campaign writes a shrunk
	// reproduction. Purely diagnostic: replay ignores it.
	Trace []string `json:"trace,omitempty"`
}

// Result is the deterministic verdict of running a case.
type Result struct {
	Ok      bool   `json:"ok"`
	Failure string `json:"failure,omitempty"`

	Events    uint64 `json:"events"` // engine events executed
	Cycles    uint64 `json:"cycles"` // final simulation time
	Completed int    `json:"completed"`
	Ops       int    `json:"ops"`

	// Interestingness counters: how hard the case exercised the race
	// machinery. Used to select corpus-worthy cases and to assert that
	// targeted schedules actually opened their windows.
	Nacks         uint64        `json:"nacks,omitempty"`
	Retries       uint64        `json:"retries,omitempty"`
	Delegations   uint64        `json:"delegations,omitempty"`
	Undelegations uint64        `json:"undelegations,omitempty"`
	Interventions uint64        `json:"interventions,omitempty"`
	UpdatesSent   uint64        `json:"updates_sent,omitempty"`
	Perturbations uint64        `json:"perturbations,omitempty"`
	Wall          time.Duration `json:"-"`
}

// TraceTailEvents is the default window size campaigns attach to shrunk
// reproductions: long enough to show a full NACK/retry or delegation
// cycle, short enough that repro files stay reviewable.
const TraceTailEvents = 64

// poolBase anchors the fuzz address pool; each line gets its own page so
// line index i maps to a stable home node i%Nodes.
const (
	poolBase  = msg.Addr(0x1000_0000)
	poolPage  = 4096
	lineBytes = 128
)

// LineAddr returns the address of pool line i.
func LineAddr(i int) msg.Addr { return poolBase + msg.Addr(i)*poolPage }

// Validate checks the case for structural sanity (not protocol legality —
// any well-formed case is legal input).
func (c *Case) Validate() error {
	m := &c.Machine
	if m.Nodes < 2 || m.Nodes > msg.MaxNodes {
		return fmt.Errorf("fault: machine nodes = %d, want 2..%d", m.Nodes, msg.MaxNodes)
	}
	if m.Lines < 1 {
		return fmt.Errorf("fault: machine needs at least one pool line")
	}
	if m.L2Lines < 2 {
		return fmt.Errorf("fault: L2 needs at least two lines")
	}
	if m.Shards < 0 || m.Shards > m.Nodes {
		return fmt.Errorf("fault: machine shards = %d, want 0..%d", m.Shards, m.Nodes)
	}
	if m.DelegateEntries > 0 && m.RACLines == 0 {
		return fmt.Errorf("fault: delegation requires a RAC")
	}
	if m.SelfInvalidate && (m.DelegateEntries > 0 || m.Updates) {
		return fmt.Errorf("fault: self-invalidation excludes delegation/updates")
	}
	p, err := protocol.Lookup(m.Protocol)
	if err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	caps := p.Capabilities()
	if m.DelegateEntries > 0 && !caps.Delegation {
		return fmt.Errorf("fault: protocol %s has no delegation", p.Name())
	}
	if m.Updates && !caps.SpeculativeUpdates {
		return fmt.Errorf("fault: protocol %s has no speculative updates", p.Name())
	}
	if m.SelfInvalidate && !caps.SelfInvalidation {
		return fmt.Errorf("fault: protocol %s has no self-invalidation", p.Name())
	}
	if m.Adaptive && !caps.AdaptiveDelay {
		return fmt.Errorf("fault: protocol %s has no adaptive delay", p.Name())
	}
	for i, op := range c.Ops {
		if op.Node < 0 || op.Node >= m.Nodes {
			return fmt.Errorf("fault: op %d targets node %d of %d", i, op.Node, m.Nodes)
		}
		if op.Line < 0 || op.Line >= m.Lines {
			return fmt.Errorf("fault: op %d targets line %d of %d", i, op.Line, m.Lines)
		}
	}
	return nil
}

// watchdogSteps bounds one case's engine events: generous against the
// heaviest legitimate case (a few hundred events per op), tight enough
// that a livelock aborts in well under a second.
func (c *Case) watchdogSteps() uint64 {
	return 300_000 + 10_000*uint64(len(c.Ops))
}

// BuildConfig maps the machine (with the fault schedule's pressure knobs
// applied) onto a core configuration with every runtime check armed.
func (c *Case) BuildConfig() core.Config {
	m := &c.Machine
	cfg := core.DefaultConfig()
	cfg.Nodes = m.Nodes
	cfg.Protocol = m.Protocol
	cfg.L1Bytes, cfg.L1Ways, cfg.L1LineBytes = 128, 2, 32
	cfg.L2Bytes, cfg.L2Ways = m.L2Lines*lineBytes, 2
	cfg.RACBytes, cfg.RACWays = m.RACLines*lineBytes, 2
	cfg.DelegateEntries = m.DelegateEntries
	if c.Faults.DelegateCap > 0 && cfg.DelegateEntries > c.Faults.DelegateCap {
		cfg.DelegateEntries = c.Faults.DelegateCap
	}
	cfg.EnableUpdates = m.Updates && cfg.DelegateEntries > 0
	cfg.AdaptiveDelay = m.Adaptive
	cfg.SelfInvalidate = m.SelfInvalidate
	cfg.DetectorWriters = m.DetectorWriters
	if m.NoIntervention {
		cfg.InterventionDelay = core.NoIntervention
	} else if m.InterventionDelay > 0 {
		cfg.InterventionDelay = sim.Time(m.InterventionDelay)
	}
	cfg.Shards = m.Shards
	cfg.ShardsParallel = m.Parallel && m.Shards > 1
	cfg.AdaptiveWindows = m.AdaptiveWindows
	cfg.CheckInvariants = true
	cfg.WatchdogSteps = c.watchdogSteps()
	return cfg
}

// Run executes the case on a private engine and returns its verdict.
// Every check the simulator has is armed: the per-transaction invariant
// checks and the version oracle during the run, then quiescence, global
// coherence and end-state value verification once the queue drains.
// Protocol panics (the invariant checkers' failure mode) are converted
// into failing Results, so a campaign survives any verdict.
func (c *Case) Run() (res Result) { return c.run(nil) }

// TraceTail replays the case with an observer attached and returns the
// last n protocol events, rendered one per line. Replay is deterministic,
// so the tail shows exactly what the failing run was doing when it died;
// campaigns attach it to shrunk reproductions.
func (c *Case) TraceTail(n int) []string {
	if n <= 0 {
		n = 64
	}
	sink := obs.NewSink(n)
	c.run(sink)
	evs := sink.Events()
	out := make([]string, len(evs))
	for i := range evs {
		out[i] = formatEvent(&evs[i])
	}
	return out
}

// formatEvent renders one observability event for a repro's trace tail.
func formatEvent(e *obs.Event) string {
	at := uint64(e.At)
	switch e.Kind {
	case obs.KindSend:
		return fmt.Sprintf("[%8d] send %s %d->%d line %#x (%dB, %d hops)",
			at, e.Msg.Type, e.Msg.Src, e.Msg.Dst, uint64(e.Addr), e.Bytes, e.Hops)
	case obs.KindUndelegate:
		return fmt.Sprintf("[%8d] %s n%d line %#x cause=%s",
			at, e.Kind, e.Node, uint64(e.Addr), stats.UndelegateReason(e.Arg))
	default:
		return fmt.Sprintf("[%8d] %s n%d line %#x", at, e.Kind, e.Node, uint64(e.Addr))
	}
}

func (c *Case) run(sink *obs.Sink) (res Result) {
	res.Ops = len(c.Ops)
	if err := c.Validate(); err != nil {
		res.Failure = "invalid: " + err.Error()
		return res
	}

	sys, err := core.NewSystem(c.BuildConfig())
	if err != nil {
		res.Failure = "config: " + err.Error()
		return res
	}
	if sink != nil {
		sys.AttachObs(sink)
	}
	// On a sharded system every shard gets a private injector (shard 0
	// keeps the case seed, the rest derive theirs), because an injector's
	// RNG and rule budgets are consulted from the owning shard's
	// goroutine. Per-shard streams stay deterministic under both
	// schedulers; total perturbations legitimately differ from an
	// unsharded replay of the same case.
	var injs []*Injector
	if c.Faults.Enabled() {
		shards := 1
		if sys.Sharded() {
			shards = sys.Group().Shards()
		}
		injs = make([]*Injector, shards)
		for s := range injs {
			fc := c.Faults
			if s > 0 {
				fc.Seed ^= int64(uint64(s) * 0x9E3779B97F4A7C15)
			}
			injs[s], err = NewInjector(fc)
			if err != nil {
				res.Failure = "faults: " + err.Error()
				return res
			}
			if sys.Sharded() {
				sys.Net.SetShardChaos(s, injs[s])
			} else {
				sys.Net.Chaos = injs[s]
			}
		}
	}
	// Stripe the pool homes so they are independent of op order.
	for i := 0; i < c.Machine.Lines; i++ {
		sys.Mem.Place(LineAddr(i), msg.NodeID(i%c.Machine.Nodes))
	}

	start := time.Now()
	defer func() {
		res.Events = sys.Steps()
		res.Cycles = uint64(sys.Now())
		res.Wall = time.Since(start)
		for _, inj := range injs {
			res.Perturbations += inj.Perturbations()
		}
		agg := sys.Aggregate()
		res.Nacks = agg.Nacks()
		res.Retries = agg.Retries
		res.Delegations = agg.Delegations
		res.Undelegations = agg.TotalUndelegations()
		res.Interventions = agg.Interventions
		res.UpdatesSent = agg.UpdatesSent
		if r := recover(); r != nil {
			res.Ok = false
			res.Failure = fmt.Sprintf("invariant panic: %v", r)
		}
	}()

	// Ops land on the engine owning their node, and completions from
	// different shard goroutines count atomically.
	var completed atomic.Int64
	for _, op := range c.Ops {
		node, addr, write := msg.NodeID(op.Node), LineAddr(op.Line), op.Write
		sys.EngFor(node).Schedule(sim.Time(op.At), func() {
			sys.Access(node, addr, write, func() { completed.Add(1) })
		})
	}

	if _, err := sys.RunGuarded(); err != nil {
		res.Completed = int(completed.Load())
		res.Failure = fmt.Sprintf("watchdog (fault seed %d): %v", c.Faults.Seed, err)
		return res
	}
	res.Completed = int(completed.Load())
	if res.Completed != len(c.Ops) {
		res.Failure = fmt.Sprintf("deadlock (fault seed %d): %d/%d ops incomplete; outstanding per node: %s",
			c.Faults.Seed, len(c.Ops)-res.Completed, len(c.Ops), outstanding(sys))
		return res
	}
	if err := sys.QuiesceCheck(); err != nil {
		res.Failure = "quiesce: " + err.Error()
		return res
	}
	sys.CheckAll() // panics on violation; recovered above
	if err := sys.VerifyValues(); err != nil {
		res.Failure = "lost update: " + err.Error()
		return res
	}
	res.Ok = true
	return res
}

// outstanding formats the per-node outstanding-transaction census for
// deadlock reports.
func outstanding(sys *core.System) string {
	s := ""
	for i, h := range sys.Hubs {
		if n := h.Outstanding(); n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("n%d=%d", i, n)
		}
	}
	if s == "" {
		return "none"
	}
	return s
}
