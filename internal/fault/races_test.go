package fault

import "testing"

// racesMachine is the fixture for the targeted race-window tests: one
// line homed at node 0, with node 1 as the (remote) producer so the
// detector can trigger delegation.
var racesMachine = Machine{
	Nodes: 4, Lines: 1,
	L2Lines: 4, RACLines: 4,
	DelegateEntries: 2,
	Updates:         true,
}

// pcSetup emits the write/read rounds that saturate the producer-consumer
// detector and get line 0 delegated to node 1 (consumer: node 2), spaced
// far enough apart to serialize. Returns the ops and the next free time.
func pcSetup() ([]Op, uint64) {
	var ops []Op
	t := uint64(0)
	for i := 0; i < 4; i++ {
		ops = append(ops, Op{At: t, Node: 1, Line: 0, Write: true})
		t += 400
		ops = append(ops, Op{At: t, Node: 2, Line: 0})
		t += 400
	}
	return ops, t
}

// TestRaceUndelegationVsInflightRead opens the §2.3.3 window: a consumer
// re-read is steered by its (now stale) consumer-table hint to the
// producer while the undelegation handshake — held in flight by a
// targeted Undelegate delay — is still in progress. The producer must
// answer NackNotHome, the consumer must drop the hint and retry at the
// real home, and the run must end coherent.
func TestRaceUndelegationVsInflightRead(t *testing.T) {
	ops, now := pcSetup()
	// A consumer read after delegation routes through the home, which
	// forwards it and installs the new-home hint at node 2.
	ops = append(ops, Op{At: now, Node: 2, Line: 0})
	now += 400
	// A producer write invalidates node 2's copy, so its next read
	// must go back on the wire (through the stale hint).
	ops = append(ops, Op{At: now, Node: 1, Line: 0, Write: true})
	now += 400
	// A write by node 3 forces undelegation (remote-write reason)...
	ops = append(ops, Op{At: now, Node: 3, Line: 0, Write: true})
	// ...and node 2 re-reads through its stale hint while the delayed
	// Undelegate is still in flight.
	ops = append(ops, Op{At: now + 300, Node: 2, Line: 0})

	// Interventions are disabled so no speculative push refills node
	// 2's RAC and short-circuits the hinted re-read.
	m := racesMachine
	m.NoIntervention = true
	c := Case{
		Note:    "race: undelegation vs in-flight hinted read",
		Machine: m,
		Faults: Config{
			Rules: []Rule{{Type: "Undelegate", Delay: 400}},
		},
		Ops: ops,
	}
	res := c.Run()
	if !res.Ok {
		t.Fatalf("race run failed: %s", res.Failure)
	}
	if res.Delegations == 0 {
		t.Fatal("setup never delegated; the window was not opened")
	}
	if res.Undelegations == 0 {
		t.Fatal("remote write never undelegated")
	}
	if res.Nacks == 0 || res.Retries == 0 {
		t.Fatalf("stale-hint read was never bounced: nacks=%d retries=%d",
			res.Nacks, res.Retries)
	}
}

// TestRaceDelayedInterventionVsRewrite opens the §2.4 window: the
// delegated producer's delayed intervention pushes speculative updates,
// a targeted Update delay keeps the pushes in flight, and the producer
// rewrites the line meanwhile. The write must be deferred behind the
// outstanding pushes (UpdatesInFlight ordering) and retried, and the run
// must end coherent.
func TestRaceDelayedInterventionVsRewrite(t *testing.T) {
	ops, now := pcSetup()
	// Consumer read establishing the update set for the next round.
	ops = append(ops, Op{At: now, Node: 2, Line: 0})
	now += 400
	// Producer writes; the intervention delay (default 50 cycles)
	// fires and pushes updates, which the fault schedule holds in
	// flight for 600 cycles...
	ops = append(ops, Op{At: now, Node: 1, Line: 0, Write: true})
	// ...while the producer rewrites: the write must wait its turn.
	ops = append(ops, Op{At: now + 200, Node: 1, Line: 0, Write: true})
	// A final consumer read observes the settled value.
	ops = append(ops, Op{At: now + 2000, Node: 2, Line: 0})

	c := Case{
		Note:    "race: delayed-intervention update push vs producer rewrite",
		Machine: racesMachine,
		Faults: Config{
			Rules: []Rule{{Type: "Update", Delay: 600}},
		},
		Ops: ops,
	}
	res := c.Run()
	if !res.Ok {
		t.Fatalf("race run failed: %s", res.Failure)
	}
	if res.Delegations == 0 {
		t.Fatal("setup never delegated; the window was not opened")
	}
	if res.UpdatesSent == 0 {
		t.Fatal("intervention never pushed updates; the window was not opened")
	}
	if res.Retries == 0 {
		t.Fatal("rewrite was never deferred behind the in-flight pushes")
	}
}
