package fault

import "testing"

// TestCorpusReplayAcrossSchedulers replays every committed reproduction
// on sharded machines. Each case must stay clean at every shard count —
// the races they pin are timing-window races, and the sharded engine
// must resolve them just as coherently — and the parallel scheduler's
// verdict must equal the deterministic serial one bit for bit (the
// fuzz-level form of the engine's serial/parallel equivalence gate).
func TestCorpusReplayAcrossSchedulers(t *testing.T) {
	cases, names, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cases {
		for _, shards := range []int{2, 4} {
			det := c
			det.Machine.Shards, det.Machine.Parallel = shards, false
			fast := c
			fast.Machine.Shards, fast.Machine.Parallel = shards, true
			dres, fres := det.Run(), fast.Run()
			if !dres.Ok {
				t.Errorf("%s at %d shards (serial): %s", names[i], shards, dres.Failure)
			}
			dres.Wall, fres.Wall = 0, 0
			if dres != fres {
				t.Errorf("%s at %d shards: parallel verdict diverges from serial\nserial:   %+v\nparallel: %+v",
					names[i], shards, dres, fres)
			}
		}
	}
}

// TestCorpusReplayWideMachine replays every committed reproduction with
// the node count raised to 128 — four sharing-vector words wide, past
// the old uint64 limit. The ops only touch the original low node ids,
// but homes, directories and invariant sweeps all run at the full width.
// Serial and parallel must agree, and an adaptive-window replay must
// return the bit-identical verdict: growth only merges windows, so even
// the event and perturbation counts may not move.
func TestCorpusReplayWideMachine(t *testing.T) {
	cases, names, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cases {
		wide := c
		wide.Machine.Nodes = 128
		wide.Machine.Shards, wide.Machine.Parallel = 4, false
		if err := wide.Validate(); err != nil {
			t.Fatalf("%s at 128 nodes: %v", names[i], err)
		}
		det := wide.Run()
		if !det.Ok {
			t.Errorf("%s at 128 nodes (serial): %s", names[i], det.Failure)
			continue
		}
		par := wide
		par.Machine.Parallel = true
		pres := par.Run()
		det.Wall, pres.Wall = 0, 0
		if det != pres {
			t.Errorf("%s at 128 nodes: parallel verdict diverges from serial\nserial:   %+v\nparallel: %+v",
				names[i], det, pres)
		}
		ad := wide
		ad.Machine.AdaptiveWindows = true
		ares := ad.Run()
		ares.Wall = 0
		if det != ares {
			t.Errorf("%s at 128 nodes: adaptive-window verdict diverges from fixed\nfixed:    %+v\nadaptive: %+v",
				names[i], det, ares)
		}
	}
}

// TestCaseValidateShards pins the shard bounds a hand-edited repro must
// satisfy.
func TestCaseValidateShards(t *testing.T) {
	c := Case{Machine: Machine{Nodes: 4, Lines: 1, L2Lines: 4}}
	c.Machine.Shards = 5
	if err := c.Validate(); err == nil {
		t.Fatal("shards > nodes accepted")
	}
	c.Machine.Shards = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative shards accepted")
	}
	c.Machine.Shards = 4
	if err := c.Validate(); err != nil {
		t.Fatalf("shards == nodes rejected: %v", err)
	}
}
