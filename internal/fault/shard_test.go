package fault

import "testing"

// TestCorpusReplayAcrossSchedulers replays every committed reproduction
// on sharded machines. Each case must stay clean at every shard count —
// the races they pin are timing-window races, and the sharded engine
// must resolve them just as coherently — and the parallel scheduler's
// verdict must equal the deterministic serial one bit for bit (the
// fuzz-level form of the engine's serial/parallel equivalence gate).
func TestCorpusReplayAcrossSchedulers(t *testing.T) {
	cases, names, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cases {
		for _, shards := range []int{2, 4} {
			det := c
			det.Machine.Shards, det.Machine.Parallel = shards, false
			fast := c
			fast.Machine.Shards, fast.Machine.Parallel = shards, true
			dres, fres := det.Run(), fast.Run()
			if !dres.Ok {
				t.Errorf("%s at %d shards (serial): %s", names[i], shards, dres.Failure)
			}
			dres.Wall, fres.Wall = 0, 0
			if dres != fres {
				t.Errorf("%s at %d shards: parallel verdict diverges from serial\nserial:   %+v\nparallel: %+v",
					names[i], shards, dres, fres)
			}
		}
	}
}

// TestCaseValidateShards pins the shard bounds a hand-edited repro must
// satisfy.
func TestCaseValidateShards(t *testing.T) {
	c := Case{Machine: Machine{Nodes: 4, Lines: 1, L2Lines: 4}}
	c.Machine.Shards = 5
	if err := c.Validate(); err == nil {
		t.Fatal("shards > nodes accepted")
	}
	c.Machine.Shards = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative shards accepted")
	}
	c.Machine.Shards = 4
	if err := c.Validate(); err != nil {
		t.Fatalf("shards == nodes rejected: %v", err)
	}
}
