// Package fault is the simulator's chaos layer: a deterministic,
// seed-driven adversary for the interconnect, and the fuzzing harness that
// drives it. The paper validates the delegation and speculative-update
// machinery with exhaustive Murphi model checking on tiny configurations
// (§2.5); internal/mcheck reproduces that. This package attacks the same
// race windows — undelegation vs. in-flight requests, delayed
// interventions crossing writes, NACK-and-retry resolution — on the *full*
// simulator at arbitrary scale, by perturbing message timing and injecting
// spurious NACKs while every runtime invariant check is armed.
//
// All perturbations except Drop rules are semantics-preserving on this
// protocol: messages may take arbitrarily long (jitter), and any request
// may be NACKed at any time (the requester retries). A correct protocol
// must therefore pass every fault schedule; a failure is always a protocol
// bug, never a fault-model artifact. Drop rules break that contract on
// purpose — they simulate protocol bugs (a lost NACK, a swallowed ack) so
// tests can prove the fuzzer's detectors and shrinker actually work.
package fault

import (
	"fmt"
	"math/rand"

	"pccsim/internal/msg"
	"pccsim/internal/network"
	"pccsim/internal/sim"
)

// Rule is a targeted, deterministic perturbation for one message type.
// Rules are how race-window tests aim the chaos layer at a specific
// transition: "delay every GetShared by 400 cycles" opens the
// read-crosses-undelegation window on demand, with no randomness involved.
type Rule struct {
	// Type names the message type the rule matches (msg.Type.String()).
	Type string `json:"type"`
	// Delay adds this many cycles of flight time to every match.
	Delay uint64 `json:"delay,omitempty"`
	// NackEvery bounces every Nth matching request back to its requester
	// as a NACK (1 = every match). Ignored for non-request types.
	NackEvery int `json:"nack_every,omitempty"`
	// DropEvery silently discards every Nth match. This is BUG INJECTION:
	// dropping packets is not a legal fault on the modeled fabric. Only
	// tests that verify the fuzzer catches planted bugs set it.
	DropEvery int `json:"drop_every,omitempty"`
	// Count caps how many times the rule fires (0 = unlimited).
	Count int `json:"count,omitempty"`
}

// Config is one complete fault schedule: a seed plus the probabilistic and
// targeted perturbation knobs. The zero value injects nothing. Config is
// JSON-serializable so shrunk reproductions replay bit-for-bit.
type Config struct {
	// Seed drives every probabilistic decision. Two runs of the same
	// workload under the same Config are identical.
	Seed int64 `json:"seed"`

	// JitterProb is the per-message probability of extra flight delay;
	// JitterMax bounds the delay in cycles. Jitter delays one message
	// without holding back later ones, so JitterMax is also the bounded
	// reordering window: a message can be overtaken by at most
	// JitterMax cycles' worth of younger traffic on its route.
	JitterProb float64 `json:"jitter_prob,omitempty"`
	JitterMax  uint64  `json:"jitter_max,omitempty"`

	// NackProb spuriously bounces incoming requests (GetShared, GetExcl,
	// Upgrade) with this probability, up to NackBudget times — the
	// race-prone transitions all begin with a request arriving somewhere
	// stale. The budget keeps runs finite under aggressive settings
	// (every bounce costs the requester a full retry round trip).
	NackProb   float64 `json:"nack_prob,omitempty"`
	NackBudget int     `json:"nack_budget,omitempty"`

	// Rules are the targeted perturbations, applied before the
	// probabilistic ones; the first matching rule wins.
	Rules []Rule `json:"rules,omitempty"`

	// DelegateCap, when positive, clamps the delegate-cache capacity of
	// the system under test (applied by the fuzz harness via Clamp) —
	// the capacity-pressure knob that forces constant undelegation
	// churn, the paper's Figure 11 regime.
	DelegateCap int `json:"delegate_cap,omitempty"`
}

// Enabled reports whether the schedule perturbs anything at all.
func (c Config) Enabled() bool {
	return c.JitterProb > 0 || c.NackProb > 0 || len(c.Rules) > 0
}

// nackBudget resolves the spurious-NACK cap.
func (c Config) nackBudget() int {
	if c.NackBudget > 0 {
		return c.NackBudget
	}
	return 64
}

// ruleState is one compiled rule with its firing counters.
type ruleState struct {
	rule    Rule
	matches int // matches seen (drives the Every cadence)
	fired   int // perturbations applied (capped by Count)
}

// Injector implements network.Chaos for one fault schedule. It must only
// be used from the simulation goroutine that owns the engine; determinism
// follows from the engine's deterministic event order.
type Injector struct {
	cfg       Config
	rng       *rand.Rand
	nacksLeft int
	rules     [msg.NumTypes][]*ruleState

	// Counters for reporting which perturbations a run actually applied.
	Jittered uint64 // messages given probabilistic jitter
	Bounced  uint64 // requests bounced as spurious NACKs
	Dropped  uint64 // messages discarded by Drop rules (bug injection)
	RuleHits uint64 // targeted rule applications (delay, nack and drop)
}

// NewInjector compiles cfg. It fails on unknown message-type names so a
// corrupted corpus file cannot silently run with no faults.
func NewInjector(cfg Config) (*Injector, error) {
	inj := &Injector{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nacksLeft: cfg.nackBudget(),
	}
	for _, r := range cfg.Rules {
		t, ok := msg.ParseType(r.Type)
		if !ok {
			return nil, fmt.Errorf("fault: rule names unknown message type %q", r.Type)
		}
		if r.NackEvery > 0 && !t.IsRequest() {
			return nil, fmt.Errorf("fault: rule NACKs %s, but only requests can be NACKed", r.Type)
		}
		inj.rules[t] = append(inj.rules[t], &ruleState{rule: r})
	}
	return inj, nil
}

// MustInjector is NewInjector for static schedules.
func MustInjector(cfg Config) *Injector {
	inj, err := NewInjector(cfg)
	if err != nil {
		panic(err)
	}
	return inj
}

// match advances the rule's cadence counter and reports whether an
// every-N action is due and under its cap.
func (rs *ruleState) due(every int) bool {
	if every <= 0 {
		return false
	}
	if rs.rule.Count > 0 && rs.fired >= rs.rule.Count {
		return false
	}
	return rs.matches%every == 0
}

// Jitter implements network.Chaos: extra flight cycles for m.
func (i *Injector) Jitter(now sim.Time, m *msg.Message) sim.Time {
	var extra sim.Time
	for _, rs := range i.rules[m.Type] {
		if rs.rule.Delay > 0 && (rs.rule.Count == 0 || rs.fired < rs.rule.Count) {
			extra += sim.Time(rs.rule.Delay)
			rs.fired++
			i.RuleHits++
		}
	}
	if i.cfg.JitterProb > 0 && i.cfg.JitterMax > 0 && i.rng.Float64() < i.cfg.JitterProb {
		extra += sim.Time(i.rng.Int63n(int64(i.cfg.JitterMax) + 1))
		i.Jittered++
	}
	return extra
}

// Verdict implements network.Chaos: decides the fate of m at delivery.
func (i *Injector) Verdict(now sim.Time, m *msg.Message) network.Verdict {
	for _, rs := range i.rules[m.Type] {
		rs.matches++
		if rs.due(rs.rule.DropEvery) {
			rs.fired++
			i.RuleHits++
			i.Dropped++
			return network.Drop
		}
		if rs.due(rs.rule.NackEvery) {
			rs.fired++
			i.RuleHits++
			i.Bounced++
			return network.Bounce
		}
	}
	if i.cfg.NackProb > 0 && m.Type.IsRequest() && i.nacksLeft > 0 &&
		i.rng.Float64() < i.cfg.NackProb {
		i.nacksLeft--
		i.Bounced++
		return network.Bounce
	}
	return network.Deliver
}

// Perturbations summarizes what the injector actually did, for logs and
// interestingness scoring.
func (i *Injector) Perturbations() uint64 {
	return i.Jittered + i.Bounced + i.Dropped + i.RuleHits
}
