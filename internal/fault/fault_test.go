package fault

import (
	"reflect"
	"strings"
	"testing"
)

// TestInjectorValidation rejects schedules that could silently misfire.
func TestInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Config{Rules: []Rule{{Type: "NoSuchType", Delay: 10}}}); err == nil {
		t.Fatal("unknown message type accepted")
	}
	if _, err := NewInjector(Config{Rules: []Rule{{Type: "InvAck", NackEvery: 1}}}); err == nil {
		t.Fatal("NACK rule on a non-request type accepted")
	}
	if _, err := NewInjector(Config{Rules: []Rule{{Type: "GetShared", NackEvery: 2}}}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestCaseDeterminism is the acceptance gate: the same case runs to the
// same verdict, event count and counters every time.
func TestCaseDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		c := GenCase(seed, GenOpts{})
		a, b := c.Run(), c.Run()
		a.Wall, b.Wall = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenDeterminism: the generator is a pure function of its seed.
func TestGenDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 99} {
		a, b := GenCase(seed, GenOpts{}), GenCase(seed, GenOpts{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
}

// TestSmokeCampaign runs a quick seeded campaign; every case must pass,
// and the campaign must actually be perturbing most runs (a chaos layer
// that never fires tests nothing).
func TestSmokeCampaign(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	cr := RunCampaign(CampaignOpts{Seed: 1, Cases: n, Workers: 2, ShrinkRuns: 500})
	if cr.Cases != n {
		t.Fatalf("ran %d of %d cases", cr.Cases, n)
	}
	for _, f := range cr.Failures {
		t.Errorf("seed %d: %s (shrunk to %d ops)", f.Seed, f.Result.Failure, f.ShrunkOps)
	}
	if cr.Perturbed < n/2 {
		t.Fatalf("only %d/%d cases were perturbed; the chaos layer is not firing", cr.Perturbed, n)
	}
}

// TestPlantedBugCaught is the end-to-end fuzzer acceptance: inject a
// protocol bug (silently dropping NackNotHome, so a requester bounced off
// a stale delegation hint never retries and its access hangs), and prove
// the campaign finds it and shrinks it to a small reproduction that still
// fails.
func TestPlantedBugCaught(t *testing.T) {
	bug := Rule{Type: "NackNotHome", DropEvery: 1}
	cr := RunCampaign(CampaignOpts{
		Seed:        1,
		Cases:       400,
		Workers:     2,
		Gen:         GenOpts{ForceDelegation: true, ExtraRules: []Rule{bug}},
		ShrinkRuns:  3000,
		MaxFailures: 1,
	})
	if len(cr.Failures) == 0 {
		t.Fatal("planted NackNotHome drop was never caught in 400 cases")
	}
	f := cr.Failures[0]
	if res := f.Shrunk.Run(); res.Ok {
		t.Fatalf("shrunk case no longer fails: %+v", res)
	}
	if f.ShrunkOps > 20 {
		t.Errorf("shrunk reproduction has %d ops, want <= 20", f.ShrunkOps)
	}
	t.Logf("caught seed %d: %s; shrunk %d -> %d ops in %d runs",
		f.Seed, f.Result.Failure, len(f.Case.Ops), f.ShrunkOps, f.ShrinkRuns)
}

// TestZeroFaultConfigDisabled: an empty schedule installs no chaos at all,
// keeping the zero-fault path identical to a plain run.
func TestZeroFaultConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if (Config{Seed: 99}).Enabled() {
		t.Fatal("seed alone must not enable chaos")
	}
	if !(Config{NackProb: 0.1}).Enabled() {
		t.Fatal("NackProb must enable chaos")
	}
}

// TestWatchdogReportsCensus drives a case into a genuine livelock — every
// GetShared bounced, forever — and checks the watchdog failure carries
// both the fault seed and the pending-message census, the two things a
// triager needs before ever opening the replay file.
func TestWatchdogReportsCensus(t *testing.T) {
	c := Case{
		Seed: 9,
		Machine: Machine{
			Nodes: 3, Lines: 1, L2Lines: 4,
		},
		Faults: Config{
			Seed: 9,
			// Count 0 = unlimited: the read below can never complete.
			Rules: []Rule{{Type: "GetShared", NackEvery: 1}},
		},
		Ops: []Op{{At: 0, Node: 1, Line: 0}},
	}
	res := c.Run()
	if res.Ok {
		t.Fatal("endless-NACK case unexpectedly completed")
	}
	if !strings.Contains(res.Failure, "watchdog (fault seed 9)") {
		t.Fatalf("failure lacks fault seed: %q", res.Failure)
	}
	if !strings.Contains(res.Failure, "pending:") {
		t.Fatalf("failure lacks pending-message census: %q", res.Failure)
	}
}

// TestTraceTail replays a failing case observed and checks the captured
// window renders the protocol's final events — the NACK/retry churn the
// livelock above is made of.
func TestTraceTail(t *testing.T) {
	c := Case{
		Seed: 9,
		Machine: Machine{
			Nodes: 3, Lines: 1, L2Lines: 4,
		},
		Faults: Config{
			Seed:  9,
			Rules: []Rule{{Type: "GetShared", NackEvery: 1}},
		},
		Ops: []Op{{At: 0, Node: 1, Line: 0}},
	}
	tail := c.TraceTail(16)
	if len(tail) != 16 {
		t.Fatalf("tail kept %d lines, want 16", len(tail))
	}
	sawSend := false
	for _, line := range tail {
		if strings.Contains(line, "send ") && strings.Contains(line, "line 0x10000000") {
			sawSend = true
		}
	}
	if !sawSend {
		t.Fatalf("tail shows no message sends:\n%s", strings.Join(tail, "\n"))
	}
}
