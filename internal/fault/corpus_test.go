package fault

import (
	"os"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestCorpusReplay replays every committed reproduction. Each file is a
// shrunk case that once exposed a protocol bug (or exercises a race window
// worth pinning); all must now run clean under full invariant checking.
func TestCorpusReplay(t *testing.T) {
	cases, names, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("committed corpus is empty")
	}
	for i, c := range cases {
		res := c.Run()
		if !res.Ok {
			t.Errorf("%s: %s", names[i], res.Failure)
		}
	}
}

// TestCorpusRoundTrip: a case survives serialization bit-for-bit — the
// replayed verdict matches the in-memory one.
func TestCorpusRoundTrip(t *testing.T) {
	c := GenCase(77, GenOpts{})
	path := t.TempDir() + "/case.json"
	if err := WriteCase(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Run(), back.Run()
	a.Wall, b.Wall = 0, 0
	if a != b {
		t.Fatalf("round-tripped case runs differently:\n%+v\n%+v", a, b)
	}
}

// TestCorpusRejectsUnknownFields: hand-edited reproductions with typos
// must fail loudly, not silently replay a different case.
func TestCorpusRejectsUnknownFields(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := writeFile(path, `{"seed": 1, "machnie": {"nodes": 4}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCase(path); err == nil {
		t.Fatal("typo'd field accepted")
	}
}
