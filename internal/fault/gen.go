package fault

import (
	"math/rand"

	"pccsim/internal/mcheck"
	"pccsim/internal/protocol"
)

// GenOpts tunes case generation. The zero value is the nightly-campaign
// default; tests use the knobs to aim generation at specific machinery.
type GenOpts struct {
	// ForceDelegation restricts generation to delegation-capable machines
	// (most with updates), so every case can exercise the producer-table
	// races. Used by bug-injection tests targeting undelegation.
	ForceDelegation bool
	// Protocol pins every generated machine to one registered protocol,
	// restricting flavors to capability-legal mechanism sets ("mesi" never
	// draws a delegation machine). Empty = mixed, mostly adaptive. The name
	// must be valid; pccfuzz validates it before the campaign starts.
	Protocol string
	// ExtraRules are appended to every generated fault schedule — the bug
	// injection hook (e.g. a Drop rule planting a lost-NACK bug).
	ExtraRules []Rule
	// MaxOps caps the op count (0 = default range, roughly 30-200).
	MaxOps int
}

// GenCase derives one complete fuzz case from seed. The same (seed, opts)
// always yields the same case; campaigns enumerate seeds base, base+1, ….
//
// The op stream is built from three interleaved styles: producer-consumer
// rounds (bursty writes by one node polled by a consumer set — the pattern
// that trips the PC detector and drives delegation), uniform random noise
// (evictions, conflict misses, write races), and the mcheck litmus shapes
// (so the interleavings the model checker proves safe on tiny configs are
// stressed on the full simulator too).
func GenCase(seed int64, opts GenOpts) Case {
	rng := rand.New(rand.NewSource(seed))
	c := Case{Seed: seed}

	c.Machine = genMachine(rng, opts)
	c.Ops = genOps(rng, c.Machine, opts)
	c.Faults = genFaults(rng, c.Machine, opts)
	return c
}

func genMachine(rng *rand.Rand, opts GenOpts) Machine {
	m := Machine{
		Nodes:    3 + rng.Intn(6),              // 3..8
		Lines:    2 + rng.Intn(9),              // 2..10
		L2Lines:  []int{4, 8, 16}[rng.Intn(3)], // tiny: conflict evictions
		RACLines: []int{0, 2, 4, 8}[rng.Intn(4)],
	}
	flavor := rng.Intn(10)
	if opts.ForceDelegation {
		flavor = 4 + rng.Intn(6)
	}
	if opts.Protocol != "" {
		// Pinning to a protocol restricts flavors to its capabilities:
		// plain machines for invalidate/update protocols, the DSI flavor
		// for dsi, anything for the fully-capable adaptive protocol.
		p, err := protocol.Lookup(opts.Protocol)
		if err != nil {
			panic("fault: GenOpts.Protocol not validated: " + err.Error())
		}
		switch caps := p.Capabilities(); {
		case caps.Delegation:
		case caps.SelfInvalidation:
			flavor = 2
		default:
			flavor = rng.Intn(2)
		}
	}
	switch {
	case flavor <= 1: // plain directory protocol
		// Exercise the write-invalidate competitors too: the base
		// machine behaves identically under adaptive/mesi on the fast
		// path, and "hybrid" brings its update-push rounds into the
		// fuzzed surface.
		m.Protocol = []string{"", "mesi", "hybrid", "hybrid"}[rng.Intn(4)]
		if opts.Protocol != "" {
			m.Protocol = opts.Protocol
		}
	case flavor == 2: // dynamic self-invalidation baseline
		m.SelfInvalidate = true
		m.Protocol = []string{"", "dsi"}[rng.Intn(2)]
		if opts.Protocol != "" {
			m.Protocol = opts.Protocol
		}
	default: // delegation, mostly with speculative updates (adaptive only)
		if m.RACLines == 0 {
			m.RACLines = []int{2, 4, 8}[rng.Intn(3)]
		}
		m.DelegateEntries = 1 + rng.Intn(4)
		m.Updates = flavor >= 6
		m.Adaptive = m.Updates && rng.Intn(2) == 0
		m.Protocol = opts.Protocol // "" or "adaptive": the only delegation-capable protocol
	}
	if rng.Intn(100) < 15 {
		m.DetectorWriters = 2
	}
	if rng.Intn(100) < 10 {
		m.NoIntervention = true
	} else if rng.Intn(2) == 0 {
		m.InterventionDelay = []uint64{5, 20, 50, 150, 400}[rng.Intn(5)]
	}
	// A third of the cases run on the sharded engine, half of those on
	// the parallel scheduler, so the races a schedule opens are also
	// stressed across conservative window boundaries (and with the
	// watchdog, quiesce, value-verification and invariant machinery all
	// armed against the sharded code paths).
	if rng.Intn(100) < 30 {
		maxShards := m.Nodes
		if maxShards > 4 {
			maxShards = 4
		}
		m.Shards = 2 + rng.Intn(maxShards-1)
		m.Parallel = rng.Intn(2) == 0
		// Half the sharded cases run with adaptive windows, so the
		// window-growth bookkeeping faces the same chaos schedules as
		// the fixed scheduler.
		m.AdaptiveWindows = rng.Intn(2) == 0
	}
	return m
}

// genOps emits the timed op stream by appending segments until the target
// count is reached. Time advances with small per-op gaps inside a segment
// (dense overlap → in-flight races) and occasional long jumps between
// segments (quiescent phases → eviction and undelegation churn).
func genOps(rng *rand.Rand, m Machine, opts GenOpts) []Op {
	target := 30 + rng.Intn(170)
	if opts.MaxOps > 0 && target > opts.MaxOps {
		target = opts.MaxOps
	}
	var ops []Op
	var t uint64
	emit := func(node, line int, write bool) {
		ops = append(ops, Op{At: t, Node: node, Line: line, Write: write})
		t += uint64(rng.Intn(120)) // 0-gap bursts through relaxed pacing
	}

	for len(ops) < target {
		if rng.Intn(4) == 0 {
			t += uint64(rng.Intn(2000)) // quiescent gap between segments
		}
		switch roll := rng.Intn(100); {
		case roll < 50:
			pcRounds(rng, m, emit)
		case roll < 85:
			noise(rng, m, emit)
		default:
			litmus(rng, m, emit)
		}
	}
	if len(ops) > target {
		ops = ops[:target]
	}
	return ops
}

// pcRounds emits the paper's sharing pattern: one producer bursting writes
// to a small line set, a consumer set polling between bursts. Four-plus
// rounds saturate the PC detector (writeRepeat caps at 3), so on
// delegation-capable machines this is what triggers delegation — the
// producer is steered away from the lines' home nodes to keep the
// remote-producer requirement satisfied.
func pcRounds(rng *rand.Rand, m Machine, emit func(node, line int, write bool)) {
	nLines := 1 + rng.Intn(3)
	if nLines > m.Lines {
		nLines = m.Lines
	}
	base := rng.Intn(m.Lines)
	lines := make([]int, nLines)
	for i := range lines {
		lines[i] = (base + i) % m.Lines
	}
	prod := rng.Intn(m.Nodes)
	if prod == lines[0]%m.Nodes { // avoid the first line's home
		prod = (prod + 1) % m.Nodes
	}
	nCons := 1 + rng.Intn(2)
	cons := make([]int, nCons)
	for i := range cons {
		cons[i] = rng.Intn(m.Nodes)
	}
	rounds := 3 + rng.Intn(4)
	for r := 0; r < rounds; r++ {
		for _, l := range lines {
			emit(prod, l, true)
		}
		for _, cn := range cons {
			for _, l := range lines {
				emit(cn, l, false)
			}
		}
	}
}

// noise emits uniformly random ops (write probability 40%).
func noise(rng *rand.Rand, m Machine, emit func(node, line int, write bool)) {
	n := 5 + rng.Intn(16)
	for i := 0; i < n; i++ {
		emit(rng.Intn(m.Nodes), rng.Intn(m.Lines), rng.Intn(100) < 40)
	}
}

// litmus transplants one mcheck litmus shape onto the full machine: the
// shape's per-node scripts run round-robin on one contended line, mapped
// so script 0 lands on the line's home node (matching the model checker's
// convention that node 0 is home).
func litmus(rng *rand.Rand, m Machine, emit func(node, line int, write bool)) {
	shapes := mcheck.StandardLitmusShapes()
	sh := shapes[rng.Intn(len(shapes))]
	line := rng.Intn(m.Lines)
	home := line % m.Nodes
	node := func(script int) int { return (home + script) % m.Nodes }

	// Round-robin across scripts preserves each script's program order
	// while interleaving them in time.
	idx := make([]int, len(sh.Scripts))
	for {
		progress := false
		for s, script := range sh.Scripts {
			if idx[s] < len(script) {
				emit(node(s), line, script[idx[s]].Write)
				idx[s]++
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// raceTypes are the message types whose delay opens a known race window:
// requests crossing undelegation, delayed interventions crossing producer
// rewrites, update pushes crossing writes, and the delegation handshake
// itself.
var raceTypes = []string{
	"GetShared", "GetExcl", "Upgrade",
	"Intervention", "Invalidate", "SharedWriteback",
	"Delegate", "Undelegate", "UndelegateAck", "NewHomeHint",
	"Update", "UpdateAck", "UpdateData", "UpdateGrant",
}

var requestTypes = []string{"GetShared", "GetExcl", "Upgrade"}

func genFaults(rng *rand.Rand, m Machine, opts GenOpts) Config {
	f := Config{
		Seed:       rng.Int63(),
		JitterProb: []float64{0, 0.1, 0.3, 0.6}[rng.Intn(4)],
		JitterMax:  []uint64{40, 150, 600}[rng.Intn(3)],
		NackProb:   []float64{0, 0.05, 0.15}[rng.Intn(3)],
		NackBudget: 16 + rng.Intn(48),
	}
	if rng.Intn(2) == 0 { // targeted delay on a race-prone type
		f.Rules = append(f.Rules, Rule{
			Type:  raceTypes[rng.Intn(len(raceTypes))],
			Delay: uint64(100 + rng.Intn(600)),
			Count: 1 + rng.Intn(8),
		})
	}
	if rng.Intn(100) < 30 { // targeted NACK cadence on a request type
		f.Rules = append(f.Rules, Rule{
			Type:      requestTypes[rng.Intn(len(requestTypes))],
			NackEvery: 2 + rng.Intn(4),
			Count:     1 + rng.Intn(6),
		})
	}
	if m.DelegateEntries > 1 && rng.Intn(100) < 30 {
		f.DelegateCap = 1 + rng.Intn(m.DelegateEntries-1) // capacity pressure
	}
	f.Rules = append(f.Rules, opts.ExtraRules...)
	return f
}
