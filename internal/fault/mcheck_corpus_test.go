package fault

import (
	"path/filepath"
	"testing"
)

// TestMCheckCorpusReplays replays every checker-emitted counterexample in
// testdata/corpus/mcheck: the trace must drive the model from its initial
// state back into a state violating the recorded property. These files are
// written by `pccverify -repro-dir` and committed, so a checker finding
// replays under `go test` forever.
func TestMCheckCorpusReplays(t *testing.T) {
	cases, names, err := LoadMCheckCorpus(filepath.Join("testdata", "corpus", "mcheck"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("mcheck corpus is empty — the replay path is untested")
	}
	for i, c := range cases {
		c, name := c, names[i]
		t.Run(name, func(t *testing.T) {
			if err := ReplayMCheckCase(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMCheckCaseRoundTrip pins the on-disk schema: write, read back with
// unknown-field rejection, replay.
func TestMCheckCaseRoundTrip(t *testing.T) {
	cases, names, err := LoadMCheckCorpus(filepath.Join("testdata", "corpus", "mcheck"))
	if err != nil || len(cases) == 0 {
		t.Fatal("need a committed corpus case")
	}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := WriteMCheckCase(path, cases[0]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMCheckCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Invariant != cases[0].Invariant || len(got.Trace) != len(cases[0].Trace) {
		t.Fatalf("round-trip changed %s: %+v vs %+v", names[0], got, cases[0])
	}
}

func TestInvariantCategory(t *testing.T) {
	for in, want := range map[string]string{
		"deadlock-freedom":                            "deadlock-freedom",
		"single-writer (two exclusive holders)":       "single-writer",
		"L1:data-value (node 2 caches v0, latest v1)": "data-value",
		"directory (home S with exclusive holder 1)":  "directory",
	} {
		if got := invariantCategory(in); got != want {
			t.Fatalf("invariantCategory(%q) = %q, want %q", in, got, want)
		}
	}
}
