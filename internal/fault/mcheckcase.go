package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pccsim/internal/mcheck"
)

// MCheckCase is a model-checker counterexample in the same replay-forever
// spirit as the fuzzer's Case: the bounded-model configuration, the rule
// trace from the initial state, and the property the final state violates.
// The checker (cmd/pccverify -repro-dir) writes these into
// testdata/corpus/mcheck/ beside the fuzzer corpus; ReplayMCheckCase
// drives the model back into the violating state under `go test`.
type MCheckCase struct {
	Note string `json:"note,omitempty"`

	Nodes      int  `json:"nodes"`
	Lines      int  `json:"lines,omitempty"`
	MaxWrites  int  `json:"max_writes"`
	QueueDepth int  `json:"queue_depth"`
	Delegation bool `json:"delegation,omitempty"`
	DetThresh  int8 `json:"det_thresh,omitempty"`
	MaxIssues  int8 `json:"max_issues"`
	// MaxTotalIssues mirrors Config.MaxTotalIssues (0 = unbounded); older
	// corpus files omit it and replay with the bound off, as recorded.
	MaxTotalIssues int8 `json:"max_total_issues,omitempty"`

	// Invariant is the violated property as reported by the checker
	// ("deadlock-freedom", "single-writer (…)", "L1:data-value (…)", …).
	// Replay matches on the category — the part before any line prefix
	// and parenthetical — because the trace may land on a symmetric twin
	// of the recorded state.
	Invariant string   `json:"invariant"`
	Trace     []string `json:"trace"`
}

// Config converts the case back to the model-checker configuration.
func (c MCheckCase) Config() mcheck.Config {
	return mcheck.Config{
		Nodes: c.Nodes, Lines: c.Lines, MaxWrites: c.MaxWrites,
		QueueDepth: c.QueueDepth, Delegation: c.Delegation,
		DetThresh: c.DetThresh, MaxIssues: c.MaxIssues,
		MaxTotalIssues: c.MaxTotalIssues,
	}
}

// invariantCategory strips an "L<n>:" line prefix and any parenthetical
// detail: "L1:data-value (node 2 caches v0, latest v1)" -> "data-value".
func invariantCategory(inv string) string {
	if i := strings.Index(inv, ":"); i >= 0 && strings.HasPrefix(inv, "L") {
		inv = inv[i+1:]
	}
	if i := strings.Index(inv, " ("); i >= 0 {
		inv = inv[:i]
	}
	return strings.TrimSpace(inv)
}

// ReplayMCheckCase applies the trace and asserts the final state violates
// the recorded property: for "deadlock-freedom" the state must be terminal
// and not quiescent; for invariants, CheckInvariants must report the same
// category.
func ReplayMCheckCase(c MCheckCase) error {
	cfg := c.Config()
	st, err := mcheck.ApplyTrace(cfg, c.Trace)
	if err != nil {
		return err
	}
	if c.Invariant == "deadlock-freedom" {
		if !mcheck.Terminal(cfg, st) {
			return fmt.Errorf("replayed state still has enabled transitions: %s", st)
		}
		if mcheck.Quiescent(st) {
			return fmt.Errorf("replayed state is quiescent, not deadlocked: %s", st)
		}
		return nil
	}
	got := mcheck.CheckInvariants(cfg, st)
	if got == "" {
		return fmt.Errorf("replayed state violates nothing (expected %s): %s", c.Invariant, st)
	}
	if invariantCategory(got) != invariantCategory(c.Invariant) {
		return fmt.Errorf("replayed state violates %q, case records %q", got, c.Invariant)
	}
	return nil
}

// WriteMCheckCase serializes c as indented JSON at path, creating parent
// directories — same conventions as WriteCase.
func WriteMCheckCase(path string, c MCheckCase) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadMCheckCase loads one case; unknown fields are rejected so a typo in
// a hand-edited repro fails loudly.
func ReadMCheckCase(path string) (MCheckCase, error) {
	var c MCheckCase
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// LoadMCheckCorpus reads every *.json case under dir, sorted by name. A
// missing directory is an empty corpus.
func LoadMCheckCorpus(dir string) ([]MCheckCase, []string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	cases := make([]MCheckCase, 0, len(names))
	for _, n := range names {
		c, err := ReadMCheckCase(filepath.Join(dir, n))
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, c)
	}
	return cases, names, nil
}
