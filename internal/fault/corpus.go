package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WriteCase serializes c as indented JSON at path (parent directories are
// created). The files are meant to be committed, so the encoding is stable
// and human-editable.
func WriteCase(path string, c Case) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCase loads a corpus file. Unknown fields are rejected so a typo in a
// hand-edited reproduction fails loudly instead of silently running a
// different case.
func ReadCase(path string) (Case, error) {
	var c Case
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// LoadCorpus reads every *.json case under dir, sorted by name for
// deterministic iteration. A missing directory is an empty corpus.
func LoadCorpus(dir string) ([]Case, []string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	cases := make([]Case, 0, len(names))
	for _, n := range names {
		c, err := ReadCase(filepath.Join(dir, n))
		if err != nil {
			return nil, nil, err
		}
		cases = append(cases, c)
	}
	return cases, names, nil
}
