package fault

import "sort"

// Shrink reduces a failing case to a (locally) minimal reproduction while
// preserving failure, spending at most maxRuns re-executions. It applies,
// in order: ddmin over the op list (chunked removal down to single ops),
// fault-schedule simplification (drop rules, zero the probabilistic
// knobs), machine simplification, and time compaction. Any candidate that
// stops failing is discarded, so the result is always a failing case.
// Returns the shrunk case and the number of runs spent.
func Shrink(c Case, maxRuns int) (Case, int) {
	runs := 0
	// try runs cand and adopts it if it still fails, within budget.
	try := func(cand Case) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		res := cand.Run()
		return !res.Ok
	}

	// Pass 1: reduce the op list. Semantic group removal first — drop
	// every op on one line, or by one node, in a single step — which
	// collapses independently-failing clusters that element-wise ddmin
	// gets stuck between; then ddmin chunk removal down to single ops.
	// Repeat while any of it makes progress.
	for improved := true; improved; {
		improved = false
		for _, key := range []func(Op) int{
			func(o Op) int { return o.Line },
			func(o Op) int { return o.Node },
		} {
			seen := map[int]bool{}
			var groups []int
			for _, op := range c.Ops {
				if !seen[key(op)] {
					seen[key(op)] = true
					groups = append(groups, key(op))
				}
			}
			sort.Ints(groups)
			if len(groups) < 2 {
				continue
			}
			for _, g := range groups {
				cand := c
				cand.Ops = nil
				for _, op := range c.Ops {
					if key(op) != g {
						cand.Ops = append(cand.Ops, op)
					}
				}
				if len(cand.Ops) < len(c.Ops) && try(cand) {
					c = cand
					improved = true
				}
			}
		}
		for size := len(c.Ops) / 2; size >= 1; size /= 2 {
			for i := 0; i+size <= len(c.Ops); {
				cand := c
				cand.Ops = append(append([]Op{}, c.Ops[:i]...), c.Ops[i+size:]...)
				if try(cand) {
					c = cand
					improved = true
					// don't advance: the next chunk shifted into place
				} else {
					i += size
				}
			}
		}
	}

	// Pass 2: simplify the fault schedule — fewer moving parts in the
	// reproduction means a clearer bug report.
	for ri := 0; ri < len(c.Faults.Rules); {
		cand := c
		cand.Faults.Rules = append(append([]Rule{}, c.Faults.Rules[:ri]...), c.Faults.Rules[ri+1:]...)
		if try(cand) {
			c = cand
		} else {
			ri++
		}
	}
	for _, zero := range []func(*Config){
		func(f *Config) { f.JitterProb, f.JitterMax = 0, 0 },
		func(f *Config) { f.NackProb, f.NackBudget = 0, 0 },
		func(f *Config) { f.DelegateCap = 0 },
	} {
		cand := c
		zero(&cand.Faults)
		if try(cand) {
			c = cand
		}
	}

	// Pass 3: simplify the machine.
	for _, simp := range []func(*Machine){
		func(m *Machine) { m.Adaptive = false },
		func(m *Machine) { m.DetectorWriters = 0 },
		func(m *Machine) { m.Updates = false },
		func(m *Machine) { m.InterventionDelay, m.NoIntervention = 0, false },
		func(m *Machine) { m.Nodes = 3 },
		func(m *Machine) { m.Nodes = 2 },
		func(m *Machine) { m.Lines = 1 },
		func(m *Machine) { m.Lines = 2 },
	} {
		cand := c
		simp(&cand.Machine)
		if cand.Validate() != nil || !opsFit(cand) {
			continue
		}
		if try(cand) {
			c = cand
		}
	}

	// Pass 4: compact time — cap inter-op gaps so the repro runs in a
	// short window (and reads naturally).
	for _, gap := range []uint64{200, 50} {
		cand := c
		cand.Ops = append([]Op{}, c.Ops...)
		var t, prev uint64
		for i, op := range cand.Ops {
			d := op.At - prev
			if d > gap {
				d = gap
			}
			prev = op.At
			t += d
			cand.Ops[i].At = t
		}
		if try(cand) {
			c = cand
		}
	}

	return c, runs
}

// opsFit reports whether every op still addresses a valid node and line
// after a machine simplification.
func opsFit(c Case) bool {
	for _, op := range c.Ops {
		if op.Node >= c.Machine.Nodes || op.Line >= c.Machine.Lines {
			return false
		}
	}
	return true
}
