package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
)

func TestInsertLookup(t *testing.T) {
	c := New(4096, 4, 128) // 8 sets
	l, v := c.Insert(0x1000, Shared)
	if v.Valid {
		t.Fatal("insert into empty cache evicted something")
	}
	if l.State != Shared || l.Addr != 0x1000 {
		t.Fatalf("line = %+v", l)
	}
	if got := c.Lookup(0x1004); got == nil || got.Addr != 0x1000 {
		t.Fatal("lookup within line failed")
	}
	if c.Lookup(0x2000) != nil {
		t.Fatal("lookup of absent address succeeded")
	}
}

func TestAlign(t *testing.T) {
	c := New(4096, 4, 128)
	if c.Align(0x10ff) != 0x1080 {
		t.Fatalf("Align(0x10ff) = %#x, want 0x1080", uint64(c.Align(0x10ff)))
	}
	if c.Align(0x1000) != 0x1000 {
		t.Fatal("aligned address changed by Align")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2*128, 2, 128) // 1 set, 2 ways
	c.Insert(0x0000, Shared)
	c.Insert(0x1000, Shared)
	c.Touch(0x0000) // make 0x0000 most recent
	_, v := c.Insert(0x2000, Excl)
	if !v.Valid || v.Addr != 0x1000 {
		t.Fatalf("victim = %+v, want eviction of 0x1000", v)
	}
	if c.Lookup(0x0000) == nil {
		t.Fatal("recently used line was evicted")
	}
}

func TestInsertExistingReuses(t *testing.T) {
	c := New(2*128, 2, 128)
	l1, _ := c.Insert(0x1000, Shared)
	l1.Dirty = true
	l2, v := c.Insert(0x1000, Excl)
	if v.Valid {
		t.Fatal("reinserting existing line evicted something")
	}
	if l2.State != Excl {
		t.Fatalf("state = %v, want Excl", l2.State)
	}
	if l2.Dirty {
		t.Fatal("Insert must reset line metadata")
	}
	if c.Count() != 1 {
		t.Fatalf("Count = %d, want 1", c.Count())
	}
}

func TestVictimCarriesState(t *testing.T) {
	c := New(128, 1, 128) // direct-mapped, 1 set
	l, _ := c.Insert(0x0000, Excl)
	l.Dirty = true
	l.Version = 42
	_, v := c.Insert(0x1000, Shared)
	if !v.Valid || v.State != Excl || !v.Dirty || v.Version != 42 {
		t.Fatalf("victim = %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4096, 4, 128)
	l, _ := c.Insert(0x3000, Excl)
	l.Dirty = true
	v := c.Invalidate(0x3000)
	if !v.Valid || !v.Dirty || v.State != Excl {
		t.Fatalf("invalidate victim = %+v", v)
	}
	if c.Lookup(0x3000) != nil {
		t.Fatal("line still present after Invalidate")
	}
	if v2 := c.Invalidate(0x3000); v2.Valid {
		t.Fatal("double invalidate returned valid victim")
	}
}

func TestInvalidateRange(t *testing.T) {
	// 32-byte L1 lines; invalidate one 128-byte L2 line's worth.
	c := New(4096, 2, 32)
	for a := msg.Addr(0x1000); a < 0x1080; a += 32 {
		c.Insert(a, Shared)
	}
	c.Insert(0x1080, Shared) // outside the range
	c.InvalidateRange(0x1000, 128)
	if c.Count() != 1 {
		t.Fatalf("Count = %d after range invalidate, want 1", c.Count())
	}
	if c.Lookup(0x1080) == nil {
		t.Fatal("line outside range was invalidated")
	}
}

func TestForEach(t *testing.T) {
	c := New(4096, 4, 128)
	c.Insert(0x0, Shared)
	c.Insert(0x80, Excl)
	seen := map[msg.Addr]State{}
	c.ForEach(func(l *Line) { seen[l.Addr] = l.State })
	if len(seen) != 2 || seen[0x0] != Shared || seen[0x80] != Excl {
		t.Fatalf("ForEach saw %v", seen)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 128) },
		func() { New(100, 3, 128) },   // not divisible
		func() { New(3*128, 1, 128) }, // 3 sets: not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStateStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Excl.String() != "E" {
		t.Fatal("state names wrong")
	}
}

// Property: the cache never holds more lines than its capacity, never holds
// the same address twice, and a just-inserted line is always found.
func TestPropertyCacheInvariants(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		c := New(8*4*128, 4, 128)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			addr := msg.Addr(op) * 128 % 0x100000
			switch rng.Intn(3) {
			case 0:
				c.Insert(addr, Shared)
				if c.Lookup(addr) == nil {
					return false
				}
			case 1:
				c.Invalidate(addr)
				if c.Lookup(addr) != nil {
					return false
				}
			case 2:
				c.Touch(addr)
			}
			if c.Count() > c.Sets()*c.Ways() {
				return false
			}
			seen := map[msg.Addr]bool{}
			dup := false
			c.ForEach(func(l *Line) {
				if seen[l.Addr] {
					dup = true
				}
				seen[l.Addr] = true
			})
			if dup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with W ways, W distinct addresses mapping to one set all fit;
// the W+1st evicts exactly one of them.
func TestPropertyAssociativity(t *testing.T) {
	f := func(wayCount uint8) bool {
		ways := int(wayCount%8) + 1
		c := New(ways*128, ways, 128) // single set
		for i := 0; i < ways; i++ {
			_, v := c.Insert(msg.Addr(i*128), Shared)
			if v.Valid {
				return false
			}
		}
		_, v := c.Insert(msg.Addr(ways*128), Shared)
		return v.Valid && c.Count() == ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
