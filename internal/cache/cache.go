// Package cache implements the set-associative caches of the modeled node:
// L1 data cache and L2 unified cache (Table 1), with MESI-style line states
// at L2 coherence granularity, LRU replacement, and back-invalidation
// support for inclusion.
package cache

import (
	"fmt"

	"pccsim/internal/msg"
)

// State is the coherence state of a cached line as seen by the processor
// side of the protocol. Exclusive and Modified collapse into Excl with a
// dirty bit, matching the EXCL state of the SGI protocol in the paper.
type State uint8

const (
	Invalid State = iota
	Shared
	Excl
)

var stateNames = [...]string{Invalid: "I", Shared: "S", Excl: "E"}

func (s State) String() string { return stateNames[s] }

// Line is one cache line.
type Line struct {
	Addr    msg.Addr // line-aligned address; valid only when State != Invalid
	State   State
	Dirty   bool
	Version uint64 // abstract data value for runtime invariant checks
	Grant   uint64 // ownership epoch of an Excl copy (msg.Message.GrantTxn)
	// Streak counts consecutive pushed updates applied to this copy
	// since the last local read (the hybrid update/invalidate
	// protocol's sharer-stability test; always 0 elsewhere). Insert
	// resets it: a fresh fill starts a fresh streak.
	Streak  uint8
	lastUse uint64
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Valid   bool
	Addr    msg.Addr
	State   State
	Dirty   bool
	Version uint64
	Grant   uint64
}

// Cache is a set-associative cache. It is a pure state container: timing
// and protocol actions live in the controllers that use it.
type Cache struct {
	lineBytes int
	numSets   int
	ways      int
	sets      []Line // numSets * ways, row-major
	useClock  uint64
}

// New creates a cache of totalBytes capacity with the given associativity
// and line size. totalBytes must be a multiple of ways*lineBytes and the
// resulting set count must be a power of two.
func New(totalBytes, ways, lineBytes int) *Cache {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cache: sizes must be positive")
	}
	if totalBytes%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("cache: %d bytes not divisible into %d ways of %d-byte lines",
			totalBytes, ways, lineBytes))
	}
	numSets := totalBytes / (ways * lineBytes)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", numSets))
	}
	return &Cache{
		lineBytes: lineBytes,
		numSets:   numSets,
		ways:      ways,
		sets:      make([]Line, numSets*ways),
	}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Align returns the line-aligned address containing addr.
func (c *Cache) Align(addr msg.Addr) msg.Addr {
	return addr &^ msg.Addr(c.lineBytes-1)
}

func (c *Cache) set(addr msg.Addr) []Line {
	idx := (uint64(addr) / uint64(c.lineBytes)) & uint64(c.numSets-1)
	return c.sets[idx*uint64(c.ways) : (idx+1)*uint64(c.ways)]
}

// Lookup returns the line holding addr, or nil. It does not update LRU
// state; use Touch for accesses that should refresh recency.
func (c *Cache) Lookup(addr msg.Addr) *Line {
	addr = c.Align(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Touch marks addr most recently used if present and returns its line.
func (c *Cache) Touch(addr msg.Addr) *Line {
	l := c.Lookup(addr)
	if l != nil {
		c.useClock++
		l.lastUse = c.useClock
	}
	return l
}

// Insert places addr into the cache in the given state, evicting the LRU
// line of the set if necessary, and returns the new line plus the victim
// (Victim.Valid reports whether a valid line was displaced). If the address
// is already present its line is reused in place.
func (c *Cache) Insert(addr msg.Addr, st State) (*Line, Victim) {
	addr = c.Align(addr)
	set := c.set(addr)
	var victim Victim
	slot := -1
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == addr {
			slot = i
			break
		}
		if slot < 0 && set[i].State == Invalid {
			slot = i
		}
	}
	if slot < 0 {
		// Evict the least recently used way.
		slot = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[slot].lastUse {
				slot = i
			}
		}
		v := &set[slot]
		victim = Victim{Valid: true, Addr: v.Addr, State: v.State, Dirty: v.Dirty,
			Version: v.Version, Grant: v.Grant}
	}
	c.useClock++
	set[slot] = Line{Addr: addr, State: st, lastUse: c.useClock}
	return &set[slot], victim
}

// Invalidate removes addr from the cache, returning the line's prior
// contents as a Victim (Valid=false if it was not present).
func (c *Cache) Invalidate(addr msg.Addr) Victim {
	l := c.Lookup(addr)
	if l == nil {
		return Victim{}
	}
	v := Victim{Valid: true, Addr: l.Addr, State: l.State, Dirty: l.Dirty,
		Version: l.Version, Grant: l.Grant}
	*l = Line{}
	return v
}

// InvalidateRange removes every line overlapping [addr, addr+n) — used for
// back-invalidating L1 lines when their containing L2 line leaves.
func (c *Cache) InvalidateRange(addr msg.Addr, n int) {
	start := c.Align(addr)
	for a := start; a < addr+msg.Addr(n); a += msg.Addr(c.lineBytes) {
		c.Invalidate(a)
	}
}

// Count returns the number of valid lines (test and debugging aid).
func (c *Cache) Count() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].State != Invalid {
			n++
		}
	}
	return n
}

// ForEach calls fn for every valid line.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.sets {
		if c.sets[i].State != Invalid {
			fn(&c.sets[i])
		}
	}
}
