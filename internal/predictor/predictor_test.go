package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
)

// The canonical pattern of equation (1): (Wi (Rj)+)* marks the block after
// the write-repeat counter saturates at 3.
func TestCanonicalPatternMarks(t *testing.T) {
	var d Detector
	p := msg.NodeID(0)
	marksAt := -1
	for round := 0; round < 5; round++ {
		if d.OnWrite(p) && marksAt < 0 {
			marksAt = round
		}
		d.OnRead(1)
		d.OnRead(2)
	}
	if marksAt != 3 {
		t.Fatalf("marked at round %d, want 3 (after 3 repeat increments)", marksAt)
	}
	if !d.IsProducerConsumer() {
		t.Fatal("detector not marked after saturation")
	}
}

func TestWriteWithoutInterveningReadDoesNotCount(t *testing.T) {
	var d Detector
	for i := 0; i < 10; i++ {
		if d.OnWrite(0) {
			t.Fatal("write burst with no readers marked producer-consumer")
		}
	}
	if d.WriteRepeat() != 0 {
		t.Fatalf("WriteRepeat = %d, want 0", d.WriteRepeat())
	}
}

func TestDifferentWriterResetsPattern(t *testing.T) {
	var d Detector
	d.OnWrite(0)
	d.OnRead(1)
	d.OnWrite(0) // first repeat: W0 R1 W0
	d.OnRead(1)
	if d.WriteRepeat() != 1 {
		t.Fatalf("WriteRepeat = %d, want 1", d.WriteRepeat())
	}
	d.OnWrite(5) // migratory / multi-writer: reset
	if d.WriteRepeat() != 0 {
		t.Fatalf("WriteRepeat after foreign write = %d, want 0", d.WriteRepeat())
	}
	if d.IsProducerConsumer() {
		t.Fatal("marked despite writer change")
	}
}

func TestProducerReadingOwnDataIgnored(t *testing.T) {
	var d Detector
	d.OnWrite(3)
	d.OnRead(3) // producer re-reads its own data
	if d.OnWrite(3) {
		t.Fatal("marked")
	}
	if d.WriteRepeat() != 0 {
		t.Fatalf("producer self-read counted as consumption: repeat=%d", d.WriteRepeat())
	}
}

func TestReaderCountSaturatesAndCountsUnique(t *testing.T) {
	var d Detector
	d.OnWrite(0)
	d.OnRead(1)
	d.OnRead(1) // duplicate: not counted again
	if d.ReaderCount() != 1 {
		t.Fatalf("ReaderCount = %d, want 1", d.ReaderCount())
	}
	d.OnRead(2)
	d.OnRead(3)
	d.OnRead(4)
	d.OnRead(5)
	if d.ReaderCount() != 3 {
		t.Fatalf("ReaderCount = %d, want saturation at 3", d.ReaderCount())
	}
}

func TestReset(t *testing.T) {
	var d Detector
	d.OnWrite(0)
	d.OnRead(1)
	d.OnWrite(0)
	d.Reset()
	if d.WriteRepeat() != 0 || d.ReaderCount() != 0 || d.IsProducerConsumer() {
		t.Fatal("Reset did not clear state")
	}
	if _, ok := d.Producer(); ok {
		t.Fatal("Reset kept producer")
	}
}

func TestProducer(t *testing.T) {
	var d Detector
	if _, ok := d.Producer(); ok {
		t.Fatal("fresh detector reports a producer")
	}
	d.OnWrite(7)
	p, ok := d.Producer()
	if !ok || p != 7 {
		t.Fatalf("Producer = %d,%v want 7,true", p, ok)
	}
}

func TestMigratorySharingNeverMarks(t *testing.T) {
	// Migratory: each node reads then writes in turn. The writer always
	// changes, so the pattern must never be marked (the paper's detector
	// deliberately targets only producer-consumer sharing).
	var d Detector
	for round := 0; round < 20; round++ {
		n := msg.NodeID(round % 4)
		d.OnRead(n)
		if d.OnWrite(n) {
			t.Fatal("migratory pattern was marked producer-consumer")
		}
	}
}

// Property: marking requires at least 3 (Wp, R!=p) rounds by a single
// producer; random streams that never repeat a writer never mark.
func TestPropertyNoMarkWithoutRepeat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Detector
		prev := msg.NodeID(-1)
		for i := 0; i < 200; i++ {
			var n msg.NodeID
			for {
				n = msg.NodeID(rng.Intn(8))
				if n != prev {
					break
				}
			}
			if rng.Intn(2) == 0 {
				d.OnRead(n)
			} else {
				if d.OnWrite(n) {
					return false // writer always changes: must never mark
				}
				prev = n
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the canonical pattern always marks after exactly 3 rounds
// regardless of which nodes consume.
func TestPropertyCanonicalAlwaysMarks(t *testing.T) {
	f := func(seed int64, producer uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := msg.NodeID(producer % 16)
		var d Detector
		for round := 0; round < 4; round++ {
			marked := d.OnWrite(p)
			if (round == 3) != marked {
				return false
			}
			consumers := rng.Intn(3) + 1
			for c := 0; c < consumers; c++ {
				n := msg.NodeID(rng.Intn(16))
				if n == p {
					n = (n + 1) % 16
				}
				d.OnRead(n)
			}
		}
		return d.IsProducerConsumer()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
