// Package predictor implements the producer-consumer sharing detector of
// §2.2. Each directory-cache entry carries three extra fields — last writer
// (4 bits), reader count (2-bit saturating) and a write-repeat counter
// (2-bit saturating) — 8 bits total, a 25% directory-cache entry overhead.
// The write-repeat counter increments each time two consecutive writes are
// performed by the same node with at least one intervening read by another
// node; a block is marked producer-consumer when it saturates. The detector
// deliberately trades accuracy for size: multiple-writer lines and
// false-sharing-heavy lines (as in CG) never saturate the counter and are
// never marked, which is exactly the conservatism the paper describes.
package predictor

import "pccsim/internal/msg"

// Saturation values for the 2-bit counters.
const (
	readerCountMax = 3
	writeRepeatMax = 3
)

// Detector is the per-directory-cache-entry sharing pattern detector.
// The zero value is the reset state.
type Detector struct {
	lastWriter  msg.NodeID // 4-bit field in hardware; -1 encodes "none yet"
	prevWriter  msg.NodeID // pair mode only: the previous distinct writer
	hasWriter   bool
	hasPrev     bool
	readerCount uint8 // 2-bit saturating count of unique readers since last write
	writeRepeat uint8 // 2-bit saturating counter of producer-consumer rounds
	readers     msg.Vector
	marked      bool
	// pairMode is the §5 extension: tolerate a stable *pair* of writers
	// instead of resetting on every writer change (4 more bits of
	// storage per entry in hardware). It survives Reset — the mode is a
	// configuration property, not per-line history.
	pairMode bool
}

// Reset clears the detector (used when a directory-cache entry is
// reallocated to a different line; the extra bits are not written back to
// memory). The configured mode survives.
func (d *Detector) Reset() { *d = Detector{pairMode: d.pairMode} }

// SetPairMode enables the two-writer extension (§5 future work): a line
// alternating between two writers with intervening reads still counts as
// producer-consumer, and delegation follows the most recent writer.
func (d *Detector) SetPairMode(on bool) { d.pairMode = on }

// PairMode reports whether the two-writer extension is enabled.
func (d *Detector) PairMode() bool { return d.pairMode }

// OnRead observes a read-type request (GetShared) from node n.
func (d *Detector) OnRead(n msg.NodeID) {
	if d.hasWriter && n == d.lastWriter {
		// The producer re-reading its own line is not consumption.
		return
	}
	if !d.readers.Has(n) {
		d.readers = d.readers.Set(n)
		if d.readerCount < readerCountMax {
			d.readerCount++
		}
	}
}

// OnWrite observes a write-type request (GetExcl/Upgrade) from node n and
// reports whether this write causes the block to be marked
// producer-consumer (i.e. the write-repeat counter just saturated).
func (d *Detector) OnWrite(n msg.NodeID) (nowMarked bool) {
	known := d.hasWriter && n == d.lastWriter
	if d.pairMode && !known {
		known = d.hasPrev && n == d.prevWriter
	}
	if known && d.readerCount > 0 {
		if d.writeRepeat < writeRepeatMax {
			d.writeRepeat++
			if d.writeRepeat == writeRepeatMax && !d.marked {
				d.marked = true
				nowMarked = true
			}
		}
	} else if !known {
		// An unknown writer breaks the pattern.
		d.writeRepeat = 0
		d.marked = false
		d.hasPrev = false
	}
	if d.hasWriter && n != d.lastWriter {
		d.prevWriter = d.lastWriter
		d.hasPrev = true
	}
	d.lastWriter = n
	d.hasWriter = true
	d.readerCount = 0
	d.readers = msg.Vector{}
	return nowMarked
}

// IsProducerConsumer reports whether the block is currently marked.
func (d *Detector) IsProducerConsumer() bool { return d.marked }

// Producer returns the predicted producer (the last writer) and whether one
// has been observed.
func (d *Detector) Producer() (msg.NodeID, bool) { return d.lastWriter, d.hasWriter }

// ReaderCount returns the saturating unique-reader count since the last
// write (exported for the Table 3 measurement).
func (d *Detector) ReaderCount() int { return int(d.readerCount) }

// WriteRepeat returns the current write-repeat counter value (testing aid).
func (d *Detector) WriteRepeat() int { return int(d.writeRepeat) }
