package predictor

import (
	"testing"

	"pccsim/internal/msg"
)

// Tests for the §5 two-writer extension (pair mode).

func TestPairModeAlternatingWritersMark(t *testing.T) {
	var d Detector
	d.SetPairMode(true)
	if !d.PairMode() {
		t.Fatal("pair mode not set")
	}
	// Writers 0 and 1 alternate, consumer 2 reads between writes.
	marked := false
	for round := 0; round < 6; round++ {
		w := msg.NodeID(round % 2)
		if d.OnWrite(w) {
			marked = true
		}
		d.OnRead(2)
	}
	if !marked || !d.IsProducerConsumer() {
		t.Fatal("alternating writer pair never marked in pair mode")
	}
}

func TestClassicModeAlternatingWritersNeverMark(t *testing.T) {
	var d Detector // pair mode off
	for round := 0; round < 10; round++ {
		if d.OnWrite(msg.NodeID(round % 2)) {
			t.Fatal("classic detector marked an alternating-writer line")
		}
		d.OnRead(2)
	}
}

func TestPairModeThirdWriterResets(t *testing.T) {
	var d Detector
	d.SetPairMode(true)
	// A full alternation cycle is needed before the counter moves: the
	// second writer is only "known" once it is the recorded pair member.
	d.OnWrite(0)
	d.OnRead(2)
	d.OnWrite(1)
	d.OnRead(2)
	d.OnWrite(0) // 0 is the pair partner now: counts
	d.OnRead(2)
	if d.WriteRepeat() == 0 {
		t.Fatal("pair not being tracked")
	}
	d.OnWrite(5) // a third writer breaks the pair
	if d.WriteRepeat() != 0 || d.IsProducerConsumer() {
		t.Fatal("third writer did not reset the pair pattern")
	}
}

func TestPairModeSingleWriterStillWorks(t *testing.T) {
	var d Detector
	d.SetPairMode(true)
	for round := 0; round < 4; round++ {
		d.OnWrite(3)
		d.OnRead(1)
	}
	if !d.IsProducerConsumer() {
		t.Fatal("pair mode broke single-producer detection")
	}
	if p, ok := d.Producer(); !ok || p != 3 {
		t.Fatalf("producer = %d,%v", p, ok)
	}
}

func TestPairModeSurvivesReset(t *testing.T) {
	var d Detector
	d.SetPairMode(true)
	d.OnWrite(0)
	d.Reset()
	if !d.PairMode() {
		t.Fatal("Reset cleared the configured mode")
	}
	if d.WriteRepeat() != 0 {
		t.Fatal("Reset kept history")
	}
}

func TestPairModeProducerIsMostRecentWriter(t *testing.T) {
	var d Detector
	d.SetPairMode(true)
	d.OnWrite(0)
	d.OnRead(2)
	d.OnWrite(1)
	p, ok := d.Producer()
	if !ok || p != 1 {
		t.Fatalf("producer = %d, want the most recent writer 1", p)
	}
}
