package mem

import (
	"testing"
	"testing/quick"

	"pccsim/internal/msg"
)

func TestFirstTouch(t *testing.T) {
	m := New(FirstTouch, 16, 4096)
	if h := m.Home(0x1000, 3); h != 3 {
		t.Fatalf("first touch home = %d, want 3", h)
	}
	// Second toucher does not move the page.
	if h := m.Home(0x1800, 9); h != 3 {
		t.Fatalf("second touch home = %d, want 3 (same page)", h)
	}
	// A different page is assigned independently.
	if h := m.Home(0x2000, 9); h != 9 {
		t.Fatalf("new page home = %d, want 9", h)
	}
}

func TestRoundRobin(t *testing.T) {
	m := New(RoundRobin, 4, 4096)
	homes := make(map[msg.NodeID]int)
	for i := 0; i < 8; i++ {
		h := m.Home(msg.Addr(i*4096), 0)
		homes[h]++
	}
	for n := msg.NodeID(0); n < 4; n++ {
		if homes[n] != 2 {
			t.Fatalf("node %d homed %d pages, want 2", n, homes[n])
		}
	}
}

func TestHomeIfPlaced(t *testing.T) {
	m := New(FirstTouch, 16, 4096)
	if _, ok := m.HomeIfPlaced(0x1000); ok {
		t.Fatal("unplaced page reported placed")
	}
	m.Home(0x1000, 2)
	h, ok := m.HomeIfPlaced(0x1fff)
	if !ok || h != 2 {
		t.Fatalf("HomeIfPlaced = %d,%v", h, ok)
	}
}

func TestPlaceRange(t *testing.T) {
	m := New(FirstTouch, 16, 4096)
	m.PlaceRange(0x1000, 3*4096, 7)
	for _, a := range []msg.Addr{0x1000, 0x2000, 0x3000, 0x3fff} {
		if h := m.Home(a, 0); h != 7 {
			t.Fatalf("addr %#x homed at %d, want 7", uint64(a), h)
		}
	}
	if m.Pages() != 3 {
		t.Fatalf("Pages = %d, want 3 (0x1000..0x3fff spans pages 1,2,3)", m.Pages())
	}
}

func TestPlaceOverrides(t *testing.T) {
	m := New(FirstTouch, 16, 4096)
	m.Place(0x1000, 5)
	if h := m.Home(0x1000, 0); h != 5 {
		t.Fatalf("explicit placement ignored: home = %d", h)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(FirstTouch, 0, 4096) },
		func() { New(FirstTouch, 4, 0) },
		func() { New(FirstTouch, 4, 3000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

// Property: homes are stable — once assigned, any toucher sees the same
// home forever; round-robin homes are always valid node IDs.
func TestPropertyStableHomes(t *testing.T) {
	f := func(addrs []uint32, touchers []uint8) bool {
		if len(touchers) == 0 {
			return true
		}
		m := New(FirstTouch, 16, 4096)
		first := map[uint64]msg.NodeID{}
		for i, a := range addrs {
			toucher := msg.NodeID(touchers[i%len(touchers)] % 16)
			h := m.Home(msg.Addr(a), toucher)
			page := uint64(a) / 4096
			if prev, ok := first[page]; ok {
				if h != prev {
					return false
				}
			} else {
				if h != toucher {
					return false
				}
				first[page] = h
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundRobinValid(t *testing.T) {
	f := func(addrs []uint32) bool {
		m := New(RoundRobin, 5, 4096)
		for _, a := range addrs {
			h := m.Home(msg.Addr(a), 0)
			if h < 0 || int(h) >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
