// Package mem models the distributed main memory of the cc-NUMA system:
// page-granular data placement (SGI's first-touch policy, §3.2), per-line
// abstract data versions used for runtime coherence checking, and DRAM
// access timing.
package mem

import (
	"sync"

	"pccsim/internal/msg"
)

// Policy selects how pages are assigned home nodes.
type Policy uint8

const (
	// FirstTouch homes a page at the first node that accesses it (the
	// paper's placement policy, "very effective in allocating data to
	// processors that use them").
	FirstTouch Policy = iota
	// RoundRobin stripes pages across nodes (used for ablations and to
	// stress 3-hop paths in tests).
	RoundRobin
)

// Memory is the global memory image: page homes and line versions. One
// Memory is shared by all nodes of a simulated system. On a sharded
// system the page table is consulted concurrently, so lookups take a
// read-lock once sharing is enabled (EnableSharedAccess); a
// single-engine system stays lock-free.
type Memory struct {
	mu        sync.RWMutex
	shared    bool
	policy    Policy
	pageBytes uint64
	nodes     int
	pages     map[uint64]msg.NodeID
	rrNext    int
}

// New creates a memory with the given placement policy over nodes nodes.
func New(policy Policy, nodes, pageBytes int) *Memory {
	if nodes <= 0 {
		panic("mem: need at least one node")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("mem: page size must be a positive power of two")
	}
	return &Memory{
		policy:    policy,
		pageBytes: uint64(pageBytes),
		nodes:     nodes,
		pages:     make(map[uint64]msg.NodeID),
	}
}

// PageBytes returns the placement granularity.
func (m *Memory) PageBytes() int { return int(m.pageBytes) }

// EnableSharedAccess arms the page-table lock; call before any
// concurrent use. First-touch assignment remains well-defined under
// concurrency only when no two nodes race to first-touch the same page —
// the workloads guarantee that by separating placement phases with
// barriers and padding per-owner data to whole pages.
func (m *Memory) EnableSharedAccess() { m.shared = true }

// Home returns the home node of addr, assigning it on first touch by
// toucher (first-touch policy) or round-robin, per the configured policy.
func (m *Memory) Home(addr msg.Addr, toucher msg.NodeID) msg.NodeID {
	page := uint64(addr) / m.pageBytes
	if m.shared {
		m.mu.RLock()
		h, ok := m.pages[page]
		m.mu.RUnlock()
		if ok {
			return h
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if h, ok := m.pages[page]; ok {
			return h
		}
		return m.assignLocked(page, toucher)
	}
	if h, ok := m.pages[page]; ok {
		return h
	}
	return m.assignLocked(page, toucher)
}

// assignLocked applies the placement policy to an untouched page; the
// caller holds the write lock in shared mode.
func (m *Memory) assignLocked(page uint64, toucher msg.NodeID) msg.NodeID {
	var h msg.NodeID
	switch m.policy {
	case FirstTouch:
		h = toucher
	case RoundRobin:
		h = msg.NodeID(m.rrNext % m.nodes)
		m.rrNext++
	}
	m.pages[page] = h
	return h
}

// HomeIfPlaced returns the home of addr without assigning one.
func (m *Memory) HomeIfPlaced(addr msg.Addr) (msg.NodeID, bool) {
	if m.shared {
		m.mu.RLock()
		defer m.mu.RUnlock()
	}
	h, ok := m.pages[uint64(addr)/m.pageBytes]
	return h, ok
}

// Place explicitly homes the page containing addr at node (used by
// workloads that model an initialized data distribution).
func (m *Memory) Place(addr msg.Addr, node msg.NodeID) {
	if m.shared {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	m.pages[uint64(addr)/m.pageBytes] = node
}

// PlaceRange homes every page overlapping [addr, addr+n) at node.
func (m *Memory) PlaceRange(addr msg.Addr, n int, node msg.NodeID) {
	if m.shared {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	first := uint64(addr) / m.pageBytes
	last := (uint64(addr) + uint64(n) - 1) / m.pageBytes
	for p := first; p <= last; p++ {
		m.pages[p] = node
	}
}

// Pages returns how many pages have been placed.
func (m *Memory) Pages() int {
	if m.shared {
		m.mu.RLock()
		defer m.mu.RUnlock()
	}
	return len(m.pages)
}
