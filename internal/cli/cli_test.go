package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newFS() (*flag.FlagSet, *int, *string, *bool, *time.Duration) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("nodes", 16, "")
	name := fs.String("workload", "em3d", "")
	on := fs.Bool("updates", false, "")
	d := fs.Duration("budget", 0, "")
	return fs, n, name, on, d
}

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileSetsDefaults(t *testing.T) {
	fs, n, name, on, d := newFS()
	path := writeConfig(t, `{"nodes": 8, "workload": "ocean", "updates": true, "budget": "2m"}`)
	if err := Parse(fs, []string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	if *n != 8 || *name != "ocean" || !*on || *d != 2*time.Minute {
		t.Fatalf("config not applied: nodes=%d workload=%q updates=%v budget=%v", *n, *name, *on, *d)
	}
}

func TestExplicitFlagsWin(t *testing.T) {
	fs, n, name, _, _ := newFS()
	path := writeConfig(t, `{"nodes": 8, "workload": "ocean"}`)
	if err := Parse(fs, []string{"-nodes", "4", "-config", path}); err != nil {
		t.Fatal(err)
	}
	if *n != 4 {
		t.Fatalf("explicit -nodes overridden by file: %d", *n)
	}
	if *name != "ocean" {
		t.Fatalf("file default lost: %q", *name)
	}
}

func TestUnknownKeyRejected(t *testing.T) {
	fs, _, _, _, _ := newFS()
	path := writeConfig(t, `{"nodez": 8}`)
	err := Parse(fs, []string{"-config", path})
	if err == nil || !strings.Contains(err.Error(), "nodez") {
		t.Fatalf("typoed key accepted: %v", err)
	}
}

func TestNoConfigIsPlainParse(t *testing.T) {
	fs, n, _, _, _ := newFS()
	if err := Parse(fs, []string{"-nodes", "2"}); err != nil {
		t.Fatal(err)
	}
	if *n != 2 {
		t.Fatalf("plain parse broken: %d", *n)
	}
}

func TestBadValueReported(t *testing.T) {
	fs, _, _, _, _ := newFS()
	path := writeConfig(t, `{"nodes": "many"}`)
	err := Parse(fs, []string{"-config", path})
	if err == nil || !strings.Contains(err.Error(), "-nodes") {
		t.Fatalf("bad value accepted: %v", err)
	}
}
