// Package cli is the shared configuration loader of the pccsim command
// line tools. Every tool keeps its own flag set; this package adds one
// convention on top: a -config flag naming a JSON file whose keys are
// flag names and whose values become flag defaults. Precedence is
//
//	explicit command-line flag  >  config file  >  built-in default
//
// so a team can commit sweep configurations ("nightly.json" etc.) and
// still override single knobs per invocation.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Parse registers the -config flag on fs, parses args, and — when a
// config file was named — applies its entries to every flag not
// explicitly set on the command line. Unknown keys in the file are
// errors: they are almost always typos of real flag names.
func Parse(fs *flag.FlagSet, args []string) error {
	config := fs.String("config", "", "JSON file of flag defaults (explicit flags override)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *config == "" {
		return nil
	}
	return applyFile(fs, *config)
}

// applyFile loads path and sets each entry on fs unless that flag was
// given explicitly on the command line.
func applyFile(fs *flag.FlagSet, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	var entries map[string]any
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("cli: %s: %w", path, err)
	}

	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	for name, value := range entries {
		if fs.Lookup(name) == nil {
			return fmt.Errorf("cli: %s: no such flag -%s", path, name)
		}
		if explicit[name] || name == "config" {
			continue
		}
		if err := fs.Set(name, render(value)); err != nil {
			return fmt.Errorf("cli: %s: flag -%s: %w", path, name, err)
		}
	}
	return nil
}

// render converts a decoded JSON value to the string form flag.Set
// expects. JSON numbers decode as float64; integral ones must print
// without an exponent or decimal point so integer flags accept them.
func render(v any) string {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprint(v)
}
