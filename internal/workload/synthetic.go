package workload

import (
	"fmt"

	"pccsim/internal/cpu"
	"pccsim/internal/sim"
)

// SynthParams parameterizes the generic producer-consumer generator: the
// knobs the seven fixed benchmarks hard-wire, exposed for exploring the
// mechanisms on arbitrary sharing shapes (em3d's "distribution span" and
// "remote links" generalized).
type SynthParams struct {
	Nodes int
	// LinesPerProducer is each node's produced working set; sized against
	// the delegate cache it determines table pressure (Figure 11).
	LinesPerProducer int
	// Consumers is the stable consumer-set size per line; against the
	// RAC it determines consumer inflow (Figure 12) and drives the
	// Table 3 bucket.
	Consumers int
	// RemoteHomeFraction is the fraction of lines first-touched away
	// from their producer — the delegation opportunity (0 = every
	// producer is its own home; 1 = every line needs delegation).
	RemoteHomeFraction float64
	// ComputePerOp is the modeled computation per memory operation; it
	// sets where the run sits between communication- and compute-bound.
	ComputePerOp sim.Time
	// Iters is the number of write/read rounds.
	Iters int
}

// DefaultSynthParams is a communication-heavy, delegation-friendly shape.
func DefaultSynthParams(nodes int) SynthParams {
	return SynthParams{
		Nodes:              nodes,
		LinesPerProducer:   16,
		Consumers:          2,
		RemoteHomeFraction: 0.5,
		ComputePerOp:       10,
		Iters:              8,
	}
}

// Validate checks the parameters.
func (p SynthParams) Validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("workload: synthetic needs >= 2 nodes, got %d", p.Nodes)
	}
	if p.LinesPerProducer <= 0 || p.Iters <= 0 {
		return fmt.Errorf("workload: LinesPerProducer and Iters must be positive")
	}
	if p.Consumers < 1 || p.Consumers > p.Nodes-1 {
		return fmt.Errorf("workload: Consumers = %d, want 1..%d", p.Consumers, p.Nodes-1)
	}
	if p.RemoteHomeFraction < 0 || p.RemoteHomeFraction > 1 {
		return fmt.Errorf("workload: RemoteHomeFraction = %f, want [0,1]", p.RemoteHomeFraction)
	}
	return nil
}

// Synthetic builds the generic producer-consumer program: every node owns
// LinesPerProducer lines, writes them each round, and the stable consumer
// sets read them after a barrier.
func Synthetic(p SynthParams) ([][]cpu.Op, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := newRegion()
	lines := ownedArray(r, p.Nodes, p.LinesPerProducer)

	prog := newProgram(p.Nodes)
	// First touch: a deterministic slice of each producer's lines is
	// placed at the next node over (the remote-home fraction).
	remote := int(p.RemoteHomeFraction * float64(p.LinesPerProducer))
	for n := 0; n < p.Nodes; n++ {
		for i := 0; i < p.LinesPerProducer; i++ {
			toucher := n
			if i < remote {
				toucher = (n + 1) % p.Nodes
			}
			prog.store(toucher, lines(n, i))
		}
	}
	prog.barrier()
	// The owners warm their lines.
	for n := 0; n < p.Nodes; n++ {
		for i := 0; i < p.LinesPerProducer; i++ {
			prog.store(n, lines(n, i))
		}
	}
	prog.barrier()

	for it := 0; it < p.Iters; it++ {
		for n := 0; n < p.Nodes; n++ {
			for i := 0; i < p.LinesPerProducer; i++ {
				prog.compute(n, p.ComputePerOp)
				prog.store(n, lines(n, i))
			}
		}
		prog.barrier()
		for n := 0; n < p.Nodes; n++ {
			for i := 0; i < p.LinesPerProducer; i++ {
				for _, c := range consumersFor(n, p.Consumers, p.Nodes) {
					prog.load(c, lines(n, i))
					prog.compute(c, p.ComputePerOp)
				}
			}
		}
		prog.barrier()
	}
	return prog.ops, nil
}
