package workload

import (
	"fmt"
	"math/rand"

	"pccsim/internal/cpu"
)

// Barnes models the SPLASH-2 Barnes-Hut N-body simulation (16384 bodies in
// the paper). The octree's internal cells are written by their owning
// processor during tree rebuild and read by many processors during force
// computation, which makes cells producer-consumer lines with large
// consumer sets: Table 3 reports 61.7% of Barnes' patterns have more than
// four consumers. Bodies are node-private.
func Barnes() *Workload {
	return &Workload{
		Name:      "barnes",
		PaperSize: "16384 nodes, 123 seed",
		OurSize: func(p Params) string {
			return fmt.Sprintf("%d bodies, %d octree cells, seed 123",
				32*p.scale()*p.Nodes, 40*p.Nodes*p.scale())
		},
		Build: buildBarnes,
	}
}

func buildBarnes(p Params) [][]cpu.Op {
	seed := p.Seed
	if seed == 0 {
		seed = 123
	}
	rng := rand.New(rand.NewSource(seed))
	scale := p.scale()
	iters := p.iters(6)
	nodes := p.Nodes

	cellsPerNode := 40 * scale // ~27 remote-homed cells per producer
	bodiesPerNode := 32 * scale

	r := newRegion()
	cellAddr := ownedArray(r, nodes, cellsPerNode)
	bodyAddr := ownedArray(r, nodes, bodiesPerNode)

	// Octree cells: stable consumer sets drawn from the Barnes row of
	// Table 3 (13.9 / 6.8 / 9.4 / 8.1 / 61.7).
	cellConsumers := make([][][]int, nodes)
	for n := 0; n < nodes; n++ {
		cellConsumers[n] = make([][]int, cellsPerNode)
		for c := 0; c < cellsPerNode; c++ {
			k := sampleConsumerCount(rng, [4]float64{13.9, 6.8, 9.4, 8.1}, min(9, nodes-1))
			cellConsumers[n][c] = consumersFor(n, k, nodes)
		}
	}

	prog := newProgram(nodes)
	// First touch: the initial octree is built before the bodies settle
	// into their steady-state owners, so most cells are homed away from
	// the processor that rebuilds them each iteration (bodies move; the
	// cell-to-processor assignment does not follow the pages).
	for n := 0; n < nodes; n++ {
		for c := 0; c < cellsPerNode; c++ {
			builder := (n + 5) % nodes
			if c%3 == 0 {
				builder = n // some cells do land at home
			}
			prog.store(builder, cellAddr(n, c))
		}
	}
	prog.barrier()
	firstTouch(prog, nodes, bodyAddr, bodiesPerNode)

	for it := 0; it < iters; it++ {
		// Local physics (integration, cell-opening tests) abstracted
		// into one compute block per processor per iteration; sized so
		// the baseline spends the paper's share of time on remote
		// misses.
		for n := 0; n < nodes; n++ {
			prog.compute(n, 100800)
		}
		// Force computation: every consumer traverses the cells it
		// needs, interleaved with per-interaction compute.
		for n := 0; n < nodes; n++ {
			for c := 0; c < cellsPerNode; c++ {
				for _, reader := range cellConsumers[n][c] {
					prog.load(reader, cellAddr(n, c))
					prog.compute(reader, 40)
				}
			}
		}
		// Body updates are node-private work.
		for n := 0; n < nodes; n++ {
			for b := 0; b < bodiesPerNode; b++ {
				prog.load(n, bodyAddr(n, b))
				prog.compute(n, 20)
				prog.store(n, bodyAddr(n, b))
			}
		}
		prog.barrier()
		// Tree rebuild: owners rewrite their cells (a short write
		// burst per cell, as positions and bounds update together).
		for n := 0; n < nodes; n++ {
			for c := 0; c < cellsPerNode; c++ {
				prog.compute(n, 15)
				prog.store(n, cellAddr(n, c))
				prog.store(n, cellAddr(n, c)+32)
			}
		}
		prog.barrier()
	}
	return prog.ops
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
