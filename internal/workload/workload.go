// Package workload generates the seven benchmark programs of the paper's
// evaluation (Table 2) as shared-memory op streams: Barnes and Ocean from
// SPLASH-2, the Split-C Em3D, and the NAS kernels LU, CG, MG and Appbt.
//
// We cannot execute the original binaries (UVSIM runs MIPS executables);
// instead each generator reproduces the property every studied mechanism
// is driven by — the coherence-visible sharing pattern: which node writes
// each line, which stable set of nodes reads it between writes (matching
// the consumer-count distributions of Table 3), how phases are separated
// by barriers, first-touch data placement, and the compute/communication
// ratio that determines how much of the runtime remote misses can cost.
// Problem sizes are scaled down so a pure-Go simulation finishes in
// seconds; the Scale parameter restores pressure where an experiment needs
// it (delegate-cache pressure in MG, RAC pressure in Appbt).
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"pccsim/internal/cpu"
	"pccsim/internal/msg"
	"pccsim/internal/sim"
)

// Params configures a workload build.
type Params struct {
	Nodes int   // processor count (16 in the paper)
	Scale int   // problem-size multiplier; 0 means 1
	Iters int   // outer iterations; 0 means the workload default
	Seed  int64 // generator seed; 0 means a fixed per-workload seed
}

func (p Params) scale() int {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

func (p Params) iters(def int) int {
	if p.Iters <= 0 {
		return def
	}
	return p.Iters
}

// Workload is one benchmark generator.
type Workload struct {
	Name      string
	PaperSize string // Table 2's problem size
	OurSize   func(p Params) string
	Build     func(p Params) [][]cpu.Op
}

// All returns the seven benchmarks in the paper's order.
func All() []*Workload {
	return []*Workload{
		Barnes(), Ocean(), Em3D(), LU(), CG(), MG(), Appbt(),
	}
}

// ByName finds a workload by (case-sensitive) name.
func ByName(name string) (*Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// ErrUnknown is wrapped by Lookup failures, so callers can classify a
// bad workload name with errors.Is instead of matching message text.
var ErrUnknown = errors.New("workload: unknown workload")

// Lookup is ByName with a descriptive error: failures wrap ErrUnknown
// and list the valid names.
func Lookup(name string) (*Workload, error) {
	if w, ok := ByName(name); ok {
		return w, nil
	}
	names := make([]string, 0, 7)
	for _, w := range All() {
		names = append(names, w.Name)
	}
	return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknown, name, names)
}

// LineBytes is the coherence granularity used for address layout.
const LineBytes = 128

// pageBytes matches the first-touch placement granularity.
const pageBytes = 4096

// program accumulates per-node op streams with shared barrier numbering.
type program struct {
	ops   [][]cpu.Op
	nodes int
	barID int
}

func newProgram(nodes int) *program {
	return &program{ops: make([][]cpu.Op, nodes), nodes: nodes}
}

// barrier appends a global barrier to every stream.
func (p *program) barrier() {
	id := p.barID
	p.barID++
	for n := 0; n < p.nodes; n++ {
		p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Barrier, Bar: id})
	}
}

func (p *program) load(n int, addr msg.Addr) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Load, Addr: addr})
}

func (p *program) store(n int, addr msg.Addr) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Store, Addr: addr})
}

func (p *program) compute(n int, cycles sim.Time) {
	p.ops[n] = append(p.ops[n], cpu.Op{Kind: cpu.Compute, Cycles: cycles})
}

// region lays out arrays of lines at page-aligned bases so first-touch
// placement puts each owner's pages on its node.
type region struct {
	base msg.Addr
}

// newRegion returns an address-space carving helper; successive arrays are
// placed at disjoint, page-aligned bases.
func newRegion() *region { return &region{base: 0x1000_0000} }

// array reserves lines*LineBytes rounded up to whole pages and returns the
// base address of the array.
func (r *region) array(lines int) msg.Addr {
	base := r.base
	bytes := msg.Addr(lines) * LineBytes
	pages := (bytes + pageBytes - 1) / pageBytes
	r.base += pages * pageBytes
	// Keep one guard page between arrays so first-touch placement of
	// neighbouring arrays never shares a page.
	r.base += pageBytes
	return base
}

// lineAddr returns the address of line i of an array. Each logical line is
// padded to its own page when padToPage is set, so different owners' lines
// never share a first-touch page.
func lineAddr(base msg.Addr, i int) msg.Addr {
	return base + msg.Addr(i)*LineBytes
}

// ownedArray allocates per-owner arrays: lines for node n live on pages
// touched only by node n. It returns a lookup function (owner, index).
func ownedArray(r *region, nodes, linesPerNode int) func(owner, i int) msg.Addr {
	// Round each node's chunk up to whole pages so owners do not share
	// first-touch pages.
	linesPerPage := pageBytes / LineBytes
	chunkLines := ((linesPerNode + linesPerPage - 1) / linesPerPage) * linesPerPage
	base := r.array(nodes * chunkLines)
	return func(owner, i int) msg.Addr {
		if i >= linesPerNode {
			panic(fmt.Sprintf("workload: line index %d out of %d", i, linesPerNode))
		}
		return lineAddr(base, owner*chunkLines+i)
	}
}

// placedFirstTouch is firstTouch with an explicit placement schedule: the
// page containing each owner's lines is first touched by placer(owner),
// modeling initialization loops whose static schedule differs from the
// compute partitioning — the common reason the producer of a line is not
// its home node, and therefore the case directory delegation exists for.
func placedFirstTouch(p *program, nodes int, addr func(owner, i int) msg.Addr,
	lines int, placer func(owner int) int) {
	for n := 0; n < nodes; n++ {
		for i := 0; i < lines; i++ {
			p.store(placer(n), addr(n, i))
		}
	}
	p.barrier()
	// The eventual owners warm their caches (and the detector sees the
	// owner as a reader, not as noise).
	for n := 0; n < nodes; n++ {
		for i := 0; i < lines; i++ {
			p.store(n, addr(n, i))
		}
	}
	p.barrier()
}

// firstTouch makes every owner write its lines once so the memory system
// places the pages, then synchronizes (the "initialization phase" of the
// real benchmarks, excluded from the parallel phase the paper reports but
// necessary for SGI's first-touch policy to take effect).
func firstTouch(p *program, nodes int, addr func(owner, i int) msg.Addr, lines int) {
	for n := 0; n < nodes; n++ {
		for i := 0; i < lines; i++ {
			p.store(n, addr(n, i))
		}
	}
	p.barrier()
}

// consumersFor returns size stable consumers for a producer, chosen
// deterministically as the following nodes.
func consumersFor(owner, count, nodes int) []int {
	if count > nodes-1 {
		count = nodes - 1
	}
	out := make([]int, 0, count)
	for j := 1; j <= count; j++ {
		out = append(out, (owner+j)%nodes)
	}
	return out
}

// sampleConsumerCount draws a consumer-set size from a Table 3-style
// distribution: dist[0..3] are the probabilities of 1..4 consumers (in
// percent); the remainder draws uniformly from 5..max.
func sampleConsumerCount(rng *rand.Rand, dist [4]float64, max int) int {
	x := rng.Float64() * 100
	acc := 0.0
	for i, p := range dist {
		acc += p
		if x < acc {
			return i + 1
		}
	}
	if max < 5 {
		return max
	}
	return 5 + rng.Intn(max-4)
}
