package workload

import (
	"fmt"

	"pccsim/internal/cpu"
	"pccsim/internal/msg"
)

// Appbt models the NAS BT application: a 3D stencil in which the cube is
// divided into sub-cubes, one per processor, and Gaussian elimination
// sweeps all three dimensions. Sub-cube faces are producer-consumer with
// wide consumer sets (Table 3: 91.6% of patterns have >4 consumers —
// eight here, because face, edge and corner data serve several neighbours
// at once).
// The defining property (§3.2, Figure 12) is the *volume* of consumed
// data: each processor pulls in more face lines per sweep than a 32 KB RAC
// can hold, so the speculative updates thrash unless the RAC grows — the
// mirror image of MG's delegate-cache pressure.
func Appbt() *Workload {
	return &Workload{
		Name:      "appbt",
		PaperSize: "16*16*16 nodes, 60 timesteps",
		OurSize: func(p Params) string {
			return fmt.Sprintf("3x%d face lines/processor, 8 neighbours, %d timesteps",
				40*p.scale(), p.iters(4))
		},
		Build: buildAppbt,
	}
}

func buildAppbt(p Params) [][]cpu.Op {
	scale := p.scale()
	iters := p.iters(4)
	nodes := p.Nodes

	faceGroup := 40 * scale // face lines per sweep dimension per node
	interior := 32 * scale  // private interior lines per node
	neighbours := 8         // consumer-set size (>4, per Table 3)
	if neighbours > nodes-1 {
		neighbours = nodes - 1
	}

	r := newRegion()
	// One face group per sweep dimension. A sweep only rewrites the
	// faces orthogonal to its direction, so the *producer-side* working
	// set stays around one group (~32 lines, a 32-entry delegate cache
	// suffices), while the *consumer-side* inflow accumulates across all
	// three dimensions and five neighbours — which is exactly the
	// paper's Appbt: the RAC, not the delegate cache, is the bottleneck.
	faces := make([]func(owner, i int) msg.Addr, 3)
	for d := range faces {
		faces[d] = ownedArray(r, nodes, faceGroup)
	}
	inner := ownedArray(r, nodes, interior)

	prog := newProgram(nodes)
	// Face data is initialized during the setup sweep whose layout
	// follows a different dimension than the steady-state solve, so
	// face lines are homed away from their producer.
	for d := range faces {
		placedFirstTouch(prog, nodes, faces[d], faceGroup,
			func(owner int) int { return (owner + 3) % nodes })
	}
	firstTouch(prog, nodes, inner, interior)

	for it := 0; it < iters; it++ {
		// Three dimensional sweeps per timestep.
		for sweep := 0; sweep < 3; sweep++ {
			// Per-sweep Gaussian elimination compute block.
			for n := 0; n < nodes; n++ {
				prog.compute(n, 27000)
			}
			// Local elimination, then publish this dimension's faces.
			for n := 0; n < nodes; n++ {
				for i := 0; i < interior; i++ {
					prog.load(n, inner(n, i))
					prog.compute(n, 25)
					prog.store(n, inner(n, i))
				}
				for i := 0; i < faceGroup; i++ {
					prog.compute(n, 6)
					prog.store(n, faces[sweep](n, i))
				}
			}
			prog.barrier()
			// Every neighbour consumes the freshly swept faces.
			for n := 0; n < nodes; n++ {
				for i := 0; i < faceGroup; i++ {
					for _, c := range consumersFor(n, neighbours, nodes) {
						prog.load(c, faces[sweep](n, i))
						prog.compute(c, 6)
					}
				}
			}
			prog.barrier()
		}
	}
	return prog.ops
}
