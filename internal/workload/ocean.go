package workload

import (
	"fmt"

	"pccsim/internal/cpu"
	"pccsim/internal/msg"
)

// Ocean models SPLASH-2 Ocean (contiguous partitions; 258x258 in the
// paper): large-scale ocean movement with nearest-neighbour communication.
// Each processor owns a horizontal strip of the grid; only the boundary
// rows are shared, and each boundary row has exactly one consumer — the
// adjacent strip's owner. Table 3: 97.7% single-consumer.
func Ocean() *Workload {
	return &Workload{
		Name:      "ocean",
		PaperSize: "258*258 array, 1e-7 error tolerance",
		OurSize: func(p Params) string {
			return fmt.Sprintf("%d rows x %d line-columns per processor, %d processors",
				4*p.scale(), 8*p.scale(), p.Nodes)
		},
		Build: buildOcean,
	}
}

func buildOcean(p Params) [][]cpu.Op {
	scale := p.scale()
	iters := p.iters(8)
	nodes := p.Nodes

	rowsPerNode := 4 * scale
	lineCols := 8 * scale // lines per grid row

	r := newRegion()
	grid := ownedArray(r, nodes, rowsPerNode*lineCols)
	at := func(owner, row, col int) msg.Addr { return grid(owner, row*lineCols+col) }

	prog := newProgram(nodes)
	firstTouch(prog, nodes, grid, rowsPerNode*lineCols)

	for it := 0; it < iters; it++ {
		// Interior relaxation work abstracted into one compute block
		// per processor per iteration (see package comment on
		// compute/communication calibration).
		for n := 0; n < nodes; n++ {
			prog.compute(n, 24000)
		}
		// Relaxation sweep: read the neighbours' adjacent boundary
		// rows (the producer-consumer lines), then update own strip.
		for n := 0; n < nodes; n++ {
			if n > 0 {
				for c := 0; c < lineCols; c++ {
					prog.load(n, at(n-1, rowsPerNode-1, c))
					prog.compute(n, 10)
				}
			}
			if n < nodes-1 {
				for c := 0; c < lineCols; c++ {
					prog.load(n, at(n+1, 0, c))
					prog.compute(n, 10)
				}
			}
			// Interior update: node-private reads and writes.
			for row := 0; row < rowsPerNode; row++ {
				for c := 0; c < lineCols; c++ {
					prog.load(n, at(n, row, c))
					prog.compute(n, 12)
					prog.store(n, at(n, row, c))
				}
			}
		}
		prog.barrier()
	}
	return prog.ops
}
