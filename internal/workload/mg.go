package workload

import (
	"fmt"

	"pccsim/internal/cpu"
	"pccsim/internal/msg"
)

// MG models the NAS multigrid kernel: V-cycles over a hierarchy of grids.
// At the finest level boundary exchange is nearest-neighbour (single
// consumer — Table 3: 78.3% one consumer); at coarser levels dependent
// points land on different processors so consumer sets widen. The defining
// property (§3.2, Figure 11) is the *number of distinct producer-consumer
// lines*: more than a 32-entry delegate cache can hold, so the small
// configuration thrashes on capacity undelegations and only the 1K-entry
// table captures the full benefit.
func MG() *Workload {
	return &Workload{
		Name:      "mg",
		PaperSize: "32*32*32 nodes, 4 steps",
		OurSize: func(p Params) string {
			return fmt.Sprintf("4-level V-cycle, %d boundary lines/processor at the finest level",
				48*p.scale())
		},
		Build: buildMG,
	}
}

func buildMG(p Params) [][]cpu.Op {
	scale := p.scale()
	iters := p.iters(4)
	nodes := p.Nodes

	// Lines per level per node; level 0 is finest. Levels 1..3 are
	// "misplaced" (see below), so at scale 1 each node produces 144
	// remote-homed producer-consumer lines — far beyond a 32-entry
	// producer table (the Figure 11 pressure) while the per-consumer
	// inflow stays within a 32 KB RAC (MG, unlike Appbt, is not
	// RAC-bound in the paper).
	levelLines := []int{64 * scale, 64 * scale, 48 * scale, 32 * scale}
	// Consumers per line widen at the coarsest level.
	levelConsumers := []int{1, 1, 1, 2}

	r := newRegion()
	grids := make([]func(owner, i int) msg.Addr, len(levelLines))
	for l := range levelLines {
		grids[l] = ownedArray(r, nodes, levelLines[l])
	}

	prog := newProgram(nodes)
	// The finest grid is first-touched by its owners (boundary rows stay
	// home); the coarser grids are produced by restriction from finer
	// data, and their pages were first touched under the finer levels'
	// distribution — so coarse-level producers are remote from their
	// homes, which is what drives delegation and the Figure 11
	// delegate-cache pressure (144 lines per node need entries).
	firstTouch(prog, nodes, grids[0], levelLines[0])
	for l := 1; l < len(levelLines); l++ {
		l := l
		placedFirstTouch(prog, nodes, grids[l], levelLines[l],
			func(owner int) int { return (owner + nodes/2) % nodes })
	}

	// exchange runs one level's smooth-and-exchange: owners update their
	// boundary lines, then each line's consumer set reads them.
	exchange := func(l int) {
		lines, ncons := levelLines[l], levelConsumers[l]
		for n := 0; n < nodes; n++ {
			for i := 0; i < lines; i++ {
				prog.compute(n, 8)
				prog.store(n, grids[l](n, i))
			}
		}
		prog.barrier()
		for n := 0; n < nodes; n++ {
			for i := 0; i < lines; i++ {
				for _, c := range consumersFor(n, ncons, nodes) {
					prog.load(c, grids[l](n, i))
					prog.compute(c, 8)
				}
			}
		}
		prog.barrier()
	}

	for it := 0; it < iters; it++ {
		// Residual/smoothing arithmetic abstracted into one compute
		// block per V-cycle (see package comment on calibration).
		for n := 0; n < nodes; n++ {
			prog.compute(n, 432000)
		}
		// Down the V: finest to coarsest.
		for l := 0; l < len(levelLines); l++ {
			exchange(l)
		}
		// Back up: coarsest to finest.
		for l := len(levelLines) - 2; l >= 0; l-- {
			exchange(l)
		}
	}
	return prog.ops
}
