package workload

import (
	"fmt"

	"pccsim/internal/cpu"
)

// LU models the NAS LU benchmark: an SSOR solve of the 3D Navier-Stokes
// equations with a 2D partitioning that assigns vertical columns of the
// grid to processors. Each sweep propagates boundary data to the next
// processor in the pipeline, so boundary lines are producer-consumer with
// exactly one consumer (Table 3: 99.4%) and heavy factorization compute
// sits between exchanges.
func LU() *Workload {
	return &Workload{
		Name:      "lu",
		PaperSize: "16*16*16 nodes, 50 testes",
		OurSize: func(p Params) string {
			return fmt.Sprintf("%d boundary lines/processor, %d SSOR sweeps",
				8*p.scale(), p.iters(10))
		},
		Build: buildLU,
	}
}

func buildLU(p Params) [][]cpu.Op {
	scale := p.scale()
	iters := p.iters(10)
	nodes := p.Nodes

	boundaryLines := 8 * scale
	interiorLines := 24 * scale

	r := newRegion()
	// The lower- and upper-triangular sweeps propagate different data
	// (L and U factors), each with exactly one downstream consumer.
	lower := ownedArray(r, nodes, boundaryLines)
	upper := ownedArray(r, nodes, boundaryLines)
	interior := ownedArray(r, nodes, interiorLines)

	prog := newProgram(nodes)
	firstTouch(prog, nodes, lower, boundaryLines)
	firstTouch(prog, nodes, upper, boundaryLines)
	firstTouch(prog, nodes, interior, interiorLines)

	for it := 0; it < iters; it++ {
		// Block factorization compute per sweep (see package comment
		// on compute/communication calibration).
		for n := 0; n < nodes; n++ {
			prog.compute(n, 2140)
		}
		// Lower-triangular sweep: read the upstream neighbour's
		// boundary, factorize the local block, publish our boundary.
		for n := 0; n < nodes; n++ {
			if n > 0 {
				for i := 0; i < boundaryLines; i++ {
					prog.load(n, lower(n-1, i))
					prog.compute(n, 15)
				}
			}
			for i := 0; i < interiorLines; i++ {
				prog.load(n, interior(n, i))
				prog.compute(n, 30)
				prog.store(n, interior(n, i))
			}
			for i := 0; i < boundaryLines; i++ {
				prog.compute(n, 10)
				prog.store(n, lower(n, i))
			}
		}
		prog.barrier()
		// Upper-triangular sweep: the pipeline runs the other way.
		for n := 0; n < nodes; n++ {
			prog.compute(n, 2140)
		}
		for n := 0; n < nodes; n++ {
			if n < nodes-1 {
				for i := 0; i < boundaryLines; i++ {
					prog.load(n, upper(n+1, i))
					prog.compute(n, 15)
				}
			}
			for i := 0; i < interiorLines; i++ {
				prog.load(n, interior(n, i))
				prog.compute(n, 30)
				prog.store(n, interior(n, i))
			}
			for i := 0; i < boundaryLines; i++ {
				prog.compute(n, 10)
				prog.store(n, upper(n, i))
			}
		}
		prog.barrier()
	}
	return prog.ops
}
