package workload

import (
	"fmt"
	"math/rand"

	"pccsim/internal/cpu"
)

// Em3D models the Split-C electromagnetic-wave kernel: a bipartite graph
// of E and H field nodes updated in alternating half-steps. Two parameters
// govern sharing, exactly as in the paper (§3.2): the distribution span
// (how many consumers each producer has — we use 5, giving the 67.8%/32.2%
// one-or-two-consumer split of Table 3 per line) and the remote-links
// probability (15%: the fraction of graph edges crossing processors).
// Communication dominates computation, which is why the paper sees the
// largest gains here (33-40% speedup, 60% traffic reduction) including the
// removal of the post-barrier "reload flurry" NACKs.
func Em3D() *Workload {
	return &Workload{
		Name:      "em3d",
		PaperSize: "38400 nodes, degree 5, 15% remote",
		OurSize: func(p Params) string {
			return fmt.Sprintf("%d graph nodes/processor, span 5, 15%% remote",
				2*64*p.scale())
		},
		Build: buildEm3D,
	}
}

func buildEm3D(p Params) [][]cpu.Op {
	seed := p.Seed
	if seed == 0 {
		seed = 38400
	}
	rng := rand.New(rand.NewSource(seed))
	scale := p.scale()
	iters := p.iters(8)
	nodes := p.Nodes

	linesPerNode := 64 * scale // per field (E and H)

	r := newRegion()
	eField := ownedArray(r, nodes, linesPerNode)
	hField := ownedArray(r, nodes, linesPerNode)

	// Remote links: 15% of lines are consumed remotely, by 1 (67.8%) or
	// 2 (32.2%) stable neighbours.
	type link struct{ owner, line int }
	consumersOf := func() map[link][]int {
		m := make(map[link][]int)
		for n := 0; n < nodes; n++ {
			for i := 0; i < linesPerNode; i++ {
				if rng.Float64() >= 0.15 {
					continue
				}
				count := 1
				if rng.Float64() < 0.322 {
					count = 2
				}
				m[link{n, i}] = consumersFor(n, count, nodes)
			}
		}
		return m
	}
	eCons := consumersOf()
	hCons := consumersOf()

	prog := newProgram(nodes)
	firstTouch(prog, nodes, eField, linesPerNode)
	firstTouch(prog, nodes, hField, linesPerNode)

	for it := 0; it < iters; it++ {
		// Per-node field update arithmetic abstracted into one compute
		// block per iteration; em3d stays the most communication-bound
		// of the seven, as in the paper.
		for n := 0; n < nodes; n++ {
			prog.compute(n, 12400)
		}
		// E half-step: owners update E from H; consumers then read the
		// remote E lines they depend on.
		for n := 0; n < nodes; n++ {
			for i := 0; i < linesPerNode; i++ {
				prog.compute(n, 6)
				prog.store(n, eField(n, i))
			}
		}
		prog.barrier()
		for n := 0; n < nodes; n++ {
			for i := 0; i < linesPerNode; i++ {
				for _, c := range eCons[link{n, i}] {
					prog.load(c, eField(n, i))
					prog.compute(c, 6)
				}
			}
		}
		prog.barrier()
		// H half-step, symmetric.
		for n := 0; n < nodes; n++ {
			for i := 0; i < linesPerNode; i++ {
				prog.compute(n, 6)
				prog.store(n, hField(n, i))
			}
		}
		prog.barrier()
		for n := 0; n < nodes; n++ {
			for i := 0; i < linesPerNode; i++ {
				for _, c := range hCons[link{n, i}] {
					prog.load(c, hField(n, i))
					prog.compute(c, 6)
				}
			}
		}
		prog.barrier()
	}
	return prog.ops
}
