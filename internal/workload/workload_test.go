package workload

import (
	"fmt"
	"reflect"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/node"
)

func testParams(nodes int) Params { return Params{Nodes: nodes, Scale: 1} }

func TestAllSevenPresent(t *testing.T) {
	want := []string{"barnes", "ocean", "em3d", "lu", "cg", "mg", "appbt"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d workloads, want %d", len(all), len(want))
	}
	for i, w := range all {
		if w.Name != want[i] {
			t.Fatalf("workload %d = %q, want %q", i, w.Name, want[i])
		}
		if w.PaperSize == "" || w.OurSize(testParams(16)) == "" {
			t.Fatalf("%s lacks size descriptions", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("em3d"); !ok {
		t.Fatal("ByName(em3d) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestDeterministicBuilds(t *testing.T) {
	for _, w := range All() {
		a := w.Build(testParams(8))
		b := w.Build(testParams(8))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s builds are not deterministic", w.Name)
		}
	}
}

// Every stream must contain the same barrier IDs in the same order, or the
// program deadlocks.
func TestBarrierConsistency(t *testing.T) {
	for _, w := range All() {
		ops := w.Build(testParams(8))
		if len(ops) != 8 {
			t.Fatalf("%s built %d streams for 8 nodes", w.Name, len(ops))
		}
		barsOf := func(s []cpu.Op) []int {
			var out []int
			for _, op := range s {
				if op.Kind == cpu.Barrier {
					out = append(out, op.Bar)
				}
			}
			return out
		}
		ref := barsOf(ops[0])
		if len(ref) == 0 {
			t.Fatalf("%s has no barriers", w.Name)
		}
		for n := 1; n < len(ops); n++ {
			if !reflect.DeepEqual(ref, barsOf(ops[n])) {
				t.Fatalf("%s: node %d's barrier sequence differs from node 0's", w.Name, n)
			}
		}
	}
}

func TestOpsAreLineAligned(t *testing.T) {
	for _, w := range All() {
		for _, stream := range w.Build(testParams(8)) {
			for _, op := range stream {
				if op.Kind == cpu.Load || op.Kind == cpu.Store {
					if op.Addr%32 != 0 {
						t.Fatalf("%s: unaligned address %#x", w.Name, uint64(op.Addr))
					}
				}
			}
		}
	}
}

// Integration: every workload runs to completion on both the baseline and
// the fully equipped machine with all invariants enabled, and finishes
// no slower with the mechanisms on.
func TestWorkloadsRunEndToEnd(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			nodes := 8
			ops := w.Build(testParams(nodes))
			streams := make([]cpu.Stream, nodes)
			for i := range streams {
				streams[i] = &cpu.SliceStream{Ops: ops[i]}
			}

			cfg := core.DefaultConfig()
			cfg.Nodes = nodes
			cfg.CheckInvariants = true
			base, err := node.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			baseStats, err := base.Run(streams)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			if baseStats.ExecCycles == 0 || baseStats.Loads == 0 {
				t.Fatal("baseline produced no work")
			}

			ops2 := w.Build(testParams(nodes))
			streams2 := make([]cpu.Stream, nodes)
			for i := range streams2 {
				streams2[i] = &cpu.SliceStream{Ops: ops2[i]}
			}
			mcfg := cfg.With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
			mach, err := node.New(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			mechStats, err := mach.Run(streams2)
			if err != nil {
				t.Fatalf("mechanism run: %v", err)
			}
			mach.Sys.CheckAll()

			t.Logf("%s: base=%d cycles mech=%d cycles (speedup %.3f), remote %d -> %d",
				w.Name, baseStats.ExecCycles, mechStats.ExecCycles,
				float64(baseStats.ExecCycles)/float64(mechStats.ExecCycles),
				baseStats.RemoteMisses(), mechStats.RemoteMisses())
		})
	}
}

// The consumer-count distributions must qualitatively match Table 3.
func TestTable3Shapes(t *testing.T) {
	nodes := 16
	run := func(name string) [5]float64 {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		ops := w.Build(testParams(nodes))
		streams := make([]cpu.Stream, nodes)
		for i := range streams {
			streams[i] = &cpu.SliceStream{Ops: ops[i]}
		}
		cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
		cfg.Nodes = nodes
		m, err := node.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(streams)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return st.ConsumerDistPercent()
	}

	if d := run("ocean"); d[0] < 60 {
		t.Errorf("ocean single-consumer share = %.1f%%, want dominant (paper: 97.7%%)", d[0])
	}
	if d := run("barnes"); d[4] < 40 {
		t.Errorf("barnes >4-consumer share = %.1f%%, want dominant (paper: 61.7%%)", d[4])
	}
	if d := run("lu"); d[0] < 60 {
		t.Errorf("lu single-consumer share = %.1f%%, want dominant (paper: 99.4%%)", d[0])
	}
	if d := run("appbt"); d[4] < 50 {
		t.Errorf("appbt >4-consumer share = %.1f%%, want dominant (paper: 91.6%%)", d[4])
	}
	if d := run("em3d"); d[0]+d[1] < 80 {
		t.Errorf("em3d 1-2 consumer share = %.1f%%, want dominant (paper: 100%%)", d[0]+d[1])
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SynthParams{
		{Nodes: 1, LinesPerProducer: 4, Consumers: 1, Iters: 1},
		{Nodes: 4, LinesPerProducer: 0, Consumers: 1, Iters: 1},
		{Nodes: 4, LinesPerProducer: 4, Consumers: 4, Iters: 1},
		{Nodes: 4, LinesPerProducer: 4, Consumers: 1, Iters: 1, RemoteHomeFraction: 1.5},
	}
	for i, p := range bad {
		if _, err := Synthetic(p); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
	if _, err := Synthetic(DefaultSynthParams(8)); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

func TestSyntheticRunsAndDelegates(t *testing.T) {
	p := DefaultSynthParams(8)
	p.RemoteHomeFraction = 1 // every line needs delegation
	ops, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]cpu.Stream, p.Nodes)
	for i := range streams {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
	cfg.Nodes = p.Nodes
	cfg.CheckInvariants = true
	m, err := node.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delegations == 0 {
		t.Fatal("fully remote-homed synthetic never delegated")
	}
	if st.UpdatesSent == 0 {
		t.Fatal("no updates")
	}
}

func TestSyntheticConsumerKnob(t *testing.T) {
	run := func(consumers int) [5]float64 {
		p := DefaultSynthParams(16)
		p.Consumers = consumers
		ops, err := Synthetic(p)
		if err != nil {
			t.Fatal(err)
		}
		streams := make([]cpu.Stream, p.Nodes)
		for i := range streams {
			streams[i] = &cpu.SliceStream{Ops: ops[i]}
		}
		cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
		m, err := node.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		return st.ConsumerDistPercent()
	}
	if d := run(1); d[0] < 90 {
		t.Errorf("1-consumer knob gave dist %v", d)
	}
	if d := run(6); d[4] < 90 {
		t.Errorf("6-consumer knob gave dist %v", d)
	}
}

// Simulations must be bit-for-bit deterministic: two identical runs give
// identical statistics.
func TestDeterministicSimulation(t *testing.T) {
	run := func() string {
		w, _ := ByName("em3d")
		ops := w.Build(testParams(8))
		streams := make([]cpu.Stream, 8)
		for i := range streams {
			streams[i] = &cpu.SliceStream{Ops: ops[i]}
		}
		cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32), core.WithSpeculativeUpdates(0))
		cfg.Nodes = 8
		m, err := node.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d %d %d %d %d %d", st.ExecCycles, st.RemoteMisses(),
			st.TotalMessages(), st.TotalBytes(), st.UpdatesSent, st.Delegations)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic simulation:\n%s\n%s", a, b)
	}
}

// Property: every workload builds consistently at multiple scales and node
// counts: correct stream count, in-range node indices, nonzero work.
func TestWorkloadScalesAndNodeCounts(t *testing.T) {
	for _, w := range All() {
		for _, nodes := range []int{4, 16} {
			for _, scale := range []int{1, 2} {
				ops := w.Build(Params{Nodes: nodes, Scale: scale})
				if len(ops) != nodes {
					t.Fatalf("%s nodes=%d scale=%d: %d streams", w.Name, nodes, scale, len(ops))
				}
				total := 0
				for _, s := range ops {
					total += len(s)
				}
				if total == 0 {
					t.Fatalf("%s nodes=%d scale=%d: empty program", w.Name, nodes, scale)
				}
			}
		}
	}
}

// Scale must increase the working set (more ops).
func TestScaleGrowsWork(t *testing.T) {
	for _, w := range All() {
		count := func(scale int) int {
			n := 0
			for _, s := range w.Build(Params{Nodes: 8, Scale: scale}) {
				n += len(s)
			}
			return n
		}
		if count(2) <= count(1) {
			t.Errorf("%s: scale 2 not larger than scale 1", w.Name)
		}
	}
}
