package workload

import (
	"fmt"

	"pccsim/internal/cpu"
)

// CG models the NAS conjugate-gradient kernel. Three paper-documented
// properties shape it (§3.2): producer-consumer sharing appears only in
// some phases (the vector segments broadcast for the sparse matrix-vector
// product, read by nearly everyone — Table 3: 99.7% of patterns have >4
// consumers); the sparse representation causes heavy false sharing (lines
// written alternately by different processors, which the conservative
// line-grained detector must refuse to mark); and remote misses are not
// the bottleneck — per-row compute dominates — so even removing ~60% of
// them buys only a ~6% speedup.
func CG() *Workload {
	return &Workload{
		Name:      "cg",
		PaperSize: "1400 nodes, 15 iteration",
		OurSize: func(p Params) string {
			return fmt.Sprintf("%d vector lines/processor, %d CG iterations",
				4*p.scale(), p.iters(8))
		},
		Build: buildCG,
	}
}

func buildCG(p Params) [][]cpu.Op {
	scale := p.scale()
	iters := p.iters(8)
	nodes := p.Nodes

	vecLines := 4 * scale // broadcast vector segment per node
	fsLines := 2 * nodes  // falsely shared accumulator lines
	rowsPerNode := 16 * scale

	r := newRegion()
	vec := ownedArray(r, nodes, vecLines)
	fsBase := r.array(fsLines)

	prog := newProgram(nodes)
	firstTouch(prog, nodes, vec, vecLines)
	for i := 0; i < fsLines; i++ {
		prog.store(i%nodes, lineAddr(fsBase, i))
	}
	prog.barrier()

	readers := nodes - 1
	if readers > 8 {
		readers = 8
	}

	for it := 0; it < iters; it++ {
		// The sparse matvec inner loops dominate CG's runtime; remote
		// misses are a small fraction of it (the paper's explanation
		// for CG's modest 6% gain despite removing ~60% of them).
		for n := 0; n < nodes; n++ {
			prog.compute(n, 195000)
		}
		// p-vector update: each node republishes its segment.
		for n := 0; n < nodes; n++ {
			for i := 0; i < vecLines; i++ {
				prog.compute(n, 8)
				prog.store(n, vec(n, i))
			}
		}
		prog.barrier()
		// Sparse matvec: every node reads most other segments (the
		// >4-consumer broadcast) with dominant per-row compute.
		for n := 0; n < nodes; n++ {
			for j := 1; j <= readers; j++ {
				src := (n + j) % nodes
				for i := 0; i < vecLines; i++ {
					prog.load(n, vec(src, i))
					prog.compute(n, 20)
				}
			}
			for row := 0; row < rowsPerNode; row++ {
				prog.compute(n, 120) // sparse row dot product
			}
			// Reduction into falsely shared accumulators: two
			// nodes alternate writes to the same line, defeating
			// any line-grained producer-consumer detector.
			fs := (n / 2) * 2 % fsLines
			prog.load(n, lineAddr(fsBase, fs))
			prog.store(n, lineAddr(fsBase, fs))
		}
		prog.barrier()
	}
	return prog.ops
}
