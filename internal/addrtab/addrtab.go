// Package addrtab provides an open-addressed hash table keyed by physical
// line addresses, replacing the runtime map on the simulator's hottest
// metadata paths (directory entries, MSHRs). Protocol state is looked up
// once per message hop, so the table trades the generality of map[Addr]V —
// hash seeding, bucket chaining, incremental growth — for a flat
// linear-probed array with Fibonacci hashing on the line index: one
// multiply, one shift, and a near-always-first-slot hit at the load
// factors a simulation cell sustains.
package addrtab

// fib is the 64-bit Fibonacci hashing multiplier (2^64 / golden ratio).
// Line addresses are 128-byte aligned, so their low 7 bits are zero; the
// multiply diffuses the line index across the high bits the shift keeps.
const fib = 0x9E3779B97F4A7C15

// Table maps line addresses to values. The zero value is an empty table
// ready for use. Not safe for concurrent mutation (each simulated hub owns
// its tables, matching the engine's single-threaded event loop).
type Table[V any] struct {
	// keys holds search keys offset by one so the zero word marks an
	// empty slot (address 0 is a valid line address).
	keys  []uint64
	vals  []V
	n     int
	shift uint
}

// Len reports the number of stored entries.
func (t *Table[V]) Len() int { return t.n }

func (t *Table[V]) grow() {
	size := 2 * len(t.keys)
	if size == 0 {
		size = 64
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, size)
	t.vals = make([]V, size)
	t.shift = 64 - uint(len64(size))
	t.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.Put(k-1, oldVals[i])
		}
	}
}

// len64 returns log2 of the power-of-two size.
func len64(size int) int {
	b := 0
	for size > 1 {
		size >>= 1
		b++
	}
	return b
}

// home returns the preferred slot for a (stored, offset) key.
func (t *Table[V]) home(k uint64) int {
	return int(((k - 1) * fib) >> t.shift)
}

// Get returns the value stored under key and whether it was present.
func (t *Table[V]) Get(key uint64) (V, bool) {
	if t.n == 0 {
		var zero V
		return zero, false
	}
	mask := len(t.keys) - 1
	k := key + 1
	for i := t.home(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			var zero V
			return zero, false
		}
	}
}

// Put stores v under key, replacing any existing value.
func (t *Table[V]) Put(key uint64, v V) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := len(t.keys) - 1
	k := key + 1
	for i := t.home(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			t.vals[i] = v
			return
		case 0:
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
	}
}

// Delete removes key, reporting whether it was present. Removal uses
// backward-shift compaction rather than tombstones, so long-lived tables
// (MSHRs churn one entry per miss) never degrade.
func (t *Table[V]) Delete(key uint64) bool {
	if t.n == 0 {
		return false
	}
	mask := len(t.keys) - 1
	k := key + 1
	i := t.home(k)
	for {
		switch t.keys[i] {
		case k:
			goto found
		case 0:
			return false
		}
		i = (i + 1) & mask
	}
found:
	// Shift later probe-chain members back over the hole: an entry at j
	// may move to the hole at i only if its home slot lies cyclically at
	// or before i (otherwise the move would break its own chain).
	var zero V
	j := i
	for {
		j = (j + 1) & mask
		kj := t.keys[j]
		if kj == 0 {
			break
		}
		h := t.home(kj)
		// Move iff h is not in the cyclic interval (i, j].
		if (j-h)&mask >= (j-i)&mask {
			t.keys[i] = kj
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.vals[i] = zero
	t.n--
	return true
}

// Range visits every entry until fn returns false. Iteration order is
// unspecified (as with the built-in map, callers needing determinism must
// sort).
func (t *Table[V]) Range(fn func(key uint64, v V) bool) {
	for i, k := range t.keys {
		if k != 0 {
			if !fn(k-1, t.vals[i]) {
				return
			}
		}
	}
}
