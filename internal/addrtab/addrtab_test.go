package addrtab

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	var tab Table[int]
	if _, ok := tab.Get(0); ok {
		t.Fatal("empty table claims to hold address 0")
	}
	tab.Put(0, 10) // address 0 is valid
	tab.Put(128, 20)
	tab.Put(0, 11) // overwrite
	if v, ok := tab.Get(0); !ok || v != 11 {
		t.Fatalf("Get(0) = %d,%v want 11,true", v, ok)
	}
	if v, ok := tab.Get(128); !ok || v != 20 {
		t.Fatalf("Get(128) = %d,%v want 20,true", v, ok)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if !tab.Delete(0) || tab.Delete(0) {
		t.Fatal("Delete(0) should succeed exactly once")
	}
	if _, ok := tab.Get(0); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tab.Get(128); !ok || v != 20 {
		t.Fatalf("survivor lost after delete: %d,%v", v, ok)
	}
}

// TestAgainstMap cross-checks a long random op sequence — including the
// grow path and backward-shift deletion with wrap-around chains — against
// the built-in map.
func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tab Table[uint64]
	ref := make(map[uint64]uint64)
	// Line-aligned addresses from a small pool force long probe chains.
	addr := func() uint64 { return uint64(rng.Intn(4096)) * 128 }
	for op := 0; op < 200000; op++ {
		a := addr()
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			tab.Put(a, v)
			ref[a] = v
		case 1:
			_, wantOK := ref[a]
			if gotOK := tab.Delete(a); gotOK != wantOK {
				t.Fatalf("op %d: Delete(%#x) = %v, map says %v", op, a, gotOK, wantOK)
			}
			delete(ref, a)
		case 2:
			want, wantOK := ref[a]
			got, gotOK := tab.Get(a)
			if gotOK != wantOK || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v, map says %d,%v", op, a, got, gotOK, want, wantOK)
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, map has %d", op, tab.Len(), len(ref))
		}
	}
	// Full sweep via Range.
	seen := make(map[uint64]uint64)
	tab.Range(func(k, v uint64) bool {
		seen[k] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Range missed %#x=%d", k, v)
		}
	}
}

func TestGetPutZeroAlloc(t *testing.T) {
	var tab Table[*int]
	x := 5
	for i := 0; i < 100; i++ {
		tab.Put(uint64(i)*128, &x)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tab.Get(37 * 128)
		tab.Put(37*128, &x)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get+Put allocated %v allocs/op, want 0", allocs)
	}
}

func BenchmarkTableGet(b *testing.B) {
	var tab Table[*int]
	x := 0
	for i := 0; i < 1024; i++ {
		tab.Put(uint64(i)*128, &x)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Get(uint64(i&1023) * 128)
	}
}

func BenchmarkMapGet(b *testing.B) {
	ref := make(map[uint64]*int)
	x := 0
	for i := 0; i < 1024; i++ {
		ref[uint64(i)*128] = &x
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ref[uint64(i&1023)*128]
	}
}
