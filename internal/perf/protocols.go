package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"pccsim/internal/core"
	"pccsim/internal/harness"
	"pccsim/internal/protocol"
	"pccsim/internal/runner"
	"pccsim/internal/workload"
)

// ProtocolReport is the schema of BENCH_pr10.json: the per-protocol
// simulation cost record. Every registered protocol runs the same
// workload on the bake-off configuration its capabilities allow
// (harness.CompareConfig), and the record keeps each protocol's
// per-event simulation cost. The adaptive row is the paper protocol
// running through the plugin dispatch — comparing its ns/event against
// the committed baseline is the gate that keeps the Protocol interface
// indirection out of the hot path.
type ProtocolReport struct {
	Workload  string         `json:"workload"`
	Nodes     int            `json:"nodes"`
	GoVersion string         `json:"go_version"`
	CPUs      int            `json:"cpus"`
	Timestamp string         `json:"timestamp"`
	Cells     []ProtocolCell `json:"cells"`
}

// ProtocolCell is one protocol's measurement.
type ProtocolCell struct {
	Protocol     string  `json:"protocol"`
	Cycles       uint64  `json:"cycles"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// protocolBenchWorkload is the measured application: em3d is the
// clearest producer-consumer pattern, so every protocol's special
// machinery (delegation, pushed updates, self-invalidation) is actually
// on the measured path.
const protocolBenchWorkload = "em3d"

// RunProtocolBench measures every registered protocol's simulation cost
// on one workload. Cells run sequentially on a single worker so the
// wall-clock numbers are not fighting each other for cores.
func RunProtocolBench(log io.Writer) (*ProtocolReport, error) {
	if log == nil {
		log = io.Discard
	}
	wl, err := workload.Lookup(protocolBenchWorkload)
	if err != nil {
		return nil, err
	}
	base := core.DefaultConfig()
	rep := &ProtocolReport{
		Workload:  protocolBenchWorkload,
		Nodes:     base.Nodes,
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	// Scale 8 pushes each cell to ~1M events so the wall clock is
	// measuring the simulation loop, not scheduler jitter.
	params := workload.Params{Nodes: base.Nodes, Scale: 8}
	for _, p := range protocol.All() {
		cell := ProtocolCell{Protocol: p.Name()}
		r := runner.New(1, func(ev runner.Event) {
			if ev.Done && ev.Err == nil && !ev.Cached {
				cell.Events = ev.Events
				cell.WallSeconds = ev.Wall.Seconds()
			}
		})
		res, err := r.Run([]runner.Job{{
			Label:    "protobench/" + p.Name(),
			Cfg:      harness.CompareConfig(base, p),
			Workload: wl,
			Params:   params,
		}})
		if err != nil {
			return nil, fmt.Errorf("protocol %s: %w", p.Name(), err)
		}
		cell.Cycles = res[0].ExecCycles
		if cell.Events > 0 && cell.WallSeconds > 0 {
			cell.NsPerEvent = cell.WallSeconds * 1e9 / float64(cell.Events)
			cell.EventsPerSec = float64(cell.Events) / cell.WallSeconds
		}
		fmt.Fprintf(log, "pccperf: protocol %-10s %8d events in %-10v %7.1f ns/event\n",
			p.Name(), cell.Events, time.Duration(cell.WallSeconds*float64(time.Second)).Round(time.Millisecond),
			cell.NsPerEvent)
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// CheckProtocols is the protocol-dispatch gate for bench-smoke: a fresh
// per-protocol run against the committed BENCH_pr10.json. Event counts
// MUST match the baseline exactly (the simulation is deterministic — a
// drift means a protocol's behaviour changed without the golden CSVs
// catching it), and each protocol's ns/event must stay within the
// tolerance factor. A registered protocol missing from the baseline
// fails, so adding a protocol forces refreshing the record.
func CheckProtocols(path string, tol float64, log io.Writer) bool {
	if log == nil {
		log = io.Discard
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	var base ProtocolReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(log, "pccperf: %s: %v\n", path, err)
		return false
	}
	baseCell := func(name string) *ProtocolCell {
		for i := range base.Cells {
			if base.Cells[i].Protocol == name {
				return &base.Cells[i]
			}
		}
		return nil
	}

	rep, err := RunProtocolBench(log)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	ok := true
	for _, c := range rep.Cells {
		want := baseCell(c.Protocol)
		if want == nil {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: protocol missing from %s — refresh the baseline (make bench)\n",
				c.Protocol, path)
			ok = false
			continue
		}
		if want.Events != 0 && c.Events != want.Events {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: %d events vs baseline %d — protocol behaviour drifted\n",
				c.Protocol, c.Events, want.Events)
			ok = false
		}
		if want.NsPerEvent > 0 && c.NsPerEvent > want.NsPerEvent*tol {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: %.1f ns/event vs baseline %.1f (> %.1fx)\n",
				c.Protocol, c.NsPerEvent, want.NsPerEvent, tol)
			ok = false
		} else {
			fmt.Fprintf(log, "pccperf: check %-16s ok: %.1f ns/event vs baseline %.1f\n",
				c.Protocol, c.NsPerEvent, want.NsPerEvent)
		}
	}
	if ok {
		fmt.Fprintf(log, "pccperf: check-protocols OK against %s (tolerance %.1fx)\n", path, tol)
	}
	return ok
}
