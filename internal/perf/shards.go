package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/node"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// ShardReport is the schema of BENCH_pr8.json: the sharded-engine scaling
// record. Speedups are honest host measurements — on a single-CPU runner
// the parallel scheduler cannot beat the serial one, which is why CPUs is
// part of the record and the check gate treats speedup as informational
// when the host lacks cores.
type ShardReport struct {
	Workload  string      `json:"workload"`
	GoVersion string      `json:"go_version"`
	CPUs      int         `json:"cpus"`
	Timestamp string      `json:"timestamp"`
	Cells     []ShardCell `json:"cells"`
}

// ShardCell is one (nodes, shards) measurement. Shards == 1 is the serial
// baseline its row's speedups are relative to. StatsMatch reports whether
// the parallel scheduler's end-state Stats equalled the deterministic
// serial scheduler's at the same shard count — the correctness gate that
// licenses trusting the fast mode's numbers at all. The Adaptive* columns
// re-run the cell with adaptive conservative windows: AdaptiveMatch must
// hold (adaptation only removes barriers, never retimes events) and
// Windows vs AdaptiveWindows is the barrier count the optimization
// removed.
type ShardCell struct {
	Nodes       int     `json:"nodes"`
	Shards      int     `json:"shards"`
	Parallel    bool    `json:"parallel"`
	Events      uint64  `json:"events"`
	WallSeconds float64 `json:"wall_seconds"`
	NsPerEvent  float64 `json:"ns_per_event"`
	Speedup     float64 `json:"speedup_vs_1shard,omitempty"`
	StatsMatch  bool    `json:"stats_match_deterministic"`

	Windows            uint64  `json:"windows,omitempty"`
	AdaptiveWindows    uint64  `json:"adaptive_windows,omitempty"`
	AdaptiveNsPerEvent float64 `json:"adaptive_ns_per_event,omitempty"`
	AdaptiveMatch      bool    `json:"adaptive_stats_match,omitempty"`
}

// SweepNodeCounts and SweepShardCounts are the full scaling grid the
// committed BENCH baseline covers.
func SweepNodeCounts() []int  { return []int{16, 32, 64, 128, 256} }
func SweepShardCounts() []int { return []int{1, 2, 4, 8, 16} }

// shardRun executes the sweep workload once on a machine with the given
// shard configuration; the returned stats feed the serial/parallel and
// adaptive/fixed match checks, the event count and wall time feed the
// throughput columns, and the window count feeds the barrier-overhead
// column.
func shardRun(nodes, shards int, parallel, adaptive bool) (*stats.Stats, uint64, uint64, time.Duration, error) {
	cfg := core.DefaultConfig().With(core.WithRAC(32), core.WithDelegation(32))
	cfg.Nodes = nodes
	cfg.Shards = shards
	cfg.ShardsParallel = parallel && shards > 1
	cfg.AdaptiveWindows = adaptive
	m, err := node.New(cfg)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	wl, ok := workload.ByName("em3d")
	if !ok {
		return nil, 0, 0, 0, fmt.Errorf("em3d workload missing")
	}
	ops := wl.Build(workload.Params{Nodes: nodes})
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	start := time.Now()
	st, err := m.Run(streams)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	wall := time.Since(start)
	var windows uint64
	if m.Sys.Sharded() {
		windows = m.Sys.Group().Windows()
	}
	return st, m.Sys.Steps(), windows, wall, nil
}

// RunShardSweep measures em3d across the node-count × shard-count grid
// and returns the scaling report, logging one line per cell to log (nil =
// quiet). Node counts run up to msg.MaxNodes (256): the sharing vector is
// a four-word full map. Each multi-shard cell is measured three ways —
// parallel fixed-window (the headline numbers), serial fixed-window (the
// stats-match reference) and parallel adaptive (the barrier-reduction
// columns).
func RunShardSweep(nodeCounts, shardCounts []int, log io.Writer) (*ShardReport, error) {
	if log == nil {
		log = io.Discard
	}
	rep := &ShardReport{
		Workload:  "em3d",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, n := range nodeCounts {
		var baseWall time.Duration
		for _, sh := range shardCounts {
			if sh > n {
				continue
			}
			parallel := sh > 1
			st, events, windows, wall, err := shardRun(n, sh, parallel, false)
			if err != nil {
				return nil, fmt.Errorf("nodes=%d shards=%d: %w", n, sh, err)
			}
			cell := ShardCell{
				Nodes: n, Shards: sh, Parallel: parallel,
				Events:      events,
				WallSeconds: wall.Seconds(),
				NsPerEvent:  float64(wall.Nanoseconds()) / float64(events),
				StatsMatch:  true,
				Windows:     windows,
			}
			if sh == 1 {
				baseWall = wall
			} else {
				if baseWall > 0 {
					cell.Speedup = baseWall.Seconds() / wall.Seconds()
				}
				det, _, _, _, err := shardRun(n, sh, false, false)
				if err != nil {
					return nil, fmt.Errorf("nodes=%d shards=%d serial: %w", n, sh, err)
				}
				cell.StatsMatch = reflect.DeepEqual(st, det)
				ast, aevents, awindows, awall, err := shardRun(n, sh, parallel, true)
				if err != nil {
					return nil, fmt.Errorf("nodes=%d shards=%d adaptive: %w", n, sh, err)
				}
				cell.AdaptiveWindows = awindows
				cell.AdaptiveNsPerEvent = float64(awall.Nanoseconds()) / float64(aevents)
				cell.AdaptiveMatch = reflect.DeepEqual(st, ast)
			}
			fmt.Fprintf(log, "pccperf: shards nodes=%-3d shards=%-2d %9d events in %-10v %6.1f ns/ev speedup=%.2f match=%v windows=%d adaptive=%d amatch=%v\n",
				n, sh, cell.Events, wall.Round(time.Millisecond), cell.NsPerEvent, cell.Speedup,
				cell.StatsMatch, cell.Windows, cell.AdaptiveWindows, cell.AdaptiveMatch)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// CheckShards is the sharded-engine gate for bench-smoke: a reduced sweep
// (16 nodes at 1 and 4 shards) whose parallel stats MUST match the
// deterministic scheduler's, whose adaptive stats MUST match the fixed-
// window scheduler's, and whose ns/event must stay within the tolerance
// factor of the committed baseline's matching cell. Speedup is
// informational: it gates nothing unless the host actually has cores to
// parallelize over, and even then only warns — wall-clock scaling claims
// belong in the BENCH baseline with the CPU count attached, not in a CI
// gate that runs on arbitrary machines. It reports whether the gate
// passed.
func CheckShards(path string, tol float64, log io.Writer) bool {
	if log == nil {
		log = io.Discard
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	var base ShardReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(log, "pccperf: %s: %v\n", path, err)
		return false
	}
	baseNs := func(nodes, shards int) float64 {
		for _, c := range base.Cells {
			if c.Nodes == nodes && c.Shards == shards {
				return c.NsPerEvent
			}
		}
		return 0
	}

	rep, err := RunShardSweep([]int{16}, []int{1, 4}, log)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	ok := true
	for _, c := range rep.Cells {
		name := fmt.Sprintf("shards-%dn%ds", c.Nodes, c.Shards)
		if !c.StatsMatch {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: parallel stats diverge from deterministic\n", name)
			ok = false
		}
		if c.Shards > 1 && !c.AdaptiveMatch {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: adaptive-window stats diverge from fixed-window\n", name)
			ok = false
		}
		if c.Shards > 1 && c.AdaptiveWindows >= c.Windows {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: adaptive windows %d did not reduce the fixed count %d\n",
				name, c.AdaptiveWindows, c.Windows)
			ok = false
		}
		if want := baseNs(c.Nodes, c.Shards); want <= 0 {
			fmt.Fprintf(log, "pccperf: check %-16s baseline cell missing; skipped\n", name)
		} else if c.NsPerEvent > want*tol {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: %.2f ns/ev vs baseline %.2f (> %.1fx)\n",
				name, c.NsPerEvent, want, tol)
			ok = false
		} else {
			fmt.Fprintf(log, "pccperf: check %-16s ok: %.2f ns/ev vs baseline %.2f (%.2fx)\n",
				name, c.NsPerEvent, want, c.NsPerEvent/want)
		}
		if c.Shards > 1 && runtime.NumCPU() >= c.Shards && c.Speedup < 1 {
			fmt.Fprintf(log, "pccperf: check %-16s warn: speedup %.2fx on %d CPUs\n",
				name, c.Speedup, runtime.NumCPU())
		}
	}
	if ok {
		fmt.Fprintf(log, "pccperf: check-shards OK against %s (tolerance %.1fx)\n", path, tol)
	}
	return ok
}
