package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"pccsim/internal/mcheck"
)

// MCheckReport is the schema of BENCH_pr9.json: the model checker's
// state-exploration throughput record on the 3-node × 2-line benchmark
// configuration. Like the shard record, speedups are honest host
// measurements — CPUs is part of the record, and the check gate treats
// wall-clock scaling as informational on hosts without cores. The
// correctness columns (exact serial/engine state-count equality, the
// canonical-reduction factor) gate unconditionally.
type MCheckReport struct {
	Config    string       `json:"config"`
	GoVersion string       `json:"go_version"`
	CPUs      int          `json:"cpus"`
	Timestamp string       `json:"timestamp"`
	Cells     []MCheckCell `json:"cells"`
}

// MCheckCell is one exploration measurement. Mode "serial-map" is the
// pre-PR reference checker (map-keyed visited set, no symmetry
// reduction); "engine" is the work-stealing engine. NoCanon engine cells
// must match the serial baseline state-for-state (MatchesSerial); the
// canonical cell instead records how far symmetry reduction shrinks the
// space (Reduction = serial states / canonical states).
type MCheckCell struct {
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers,omitempty"`
	Canonical     bool    `json:"canonical,omitempty"`
	States        int     `json:"states"`
	Transitions   int     `json:"transitions"`
	WallSeconds   float64 `json:"wall_seconds"`
	StatesPerSec  float64 `json:"states_per_sec"`
	DedupRatio    float64 `json:"dedup_ratio"`
	PeakFrontier  int     `json:"peak_frontier"`
	Speedup       float64 `json:"speedup_vs_serial,omitempty"`
	MatchesSerial bool    `json:"matches_serial,omitempty"`
	Reduction     float64 `json:"canonical_reduction,omitempty"`
}

// MCheckWorkerCounts is the engine sweep the committed baseline covers.
func MCheckWorkerCounts() []int { return []int{1, 2, 4} }

func mcheckCell(mode string, res *mcheck.Result, wall time.Duration) MCheckCell {
	dedup := 0.0
	if res.Transitions > 0 {
		dedup = float64(res.DedupHits) / float64(res.Transitions)
	}
	return MCheckCell{
		Mode:         mode,
		Workers:      res.Workers,
		States:       res.States,
		Transitions:  res.Transitions,
		WallSeconds:  wall.Seconds(),
		StatesPerSec: float64(res.States) / wall.Seconds(),
		DedupRatio:   dedup,
		PeakFrontier: res.PeakFrontier,
	}
}

// RunMCheckBench measures state-exploration throughput on the benchmark
// configuration: the serial map-based checker as the baseline, the
// engine without symmetry reduction at each worker count (state counts
// must match the serial checker exactly — that equality is what licenses
// comparing their throughput), and one canonical engine run recording
// the symmetry-reduction factor.
func RunMCheckBench(workerCounts []int, log io.Writer) (*MCheckReport, error) {
	if log == nil {
		log = io.Discard
	}
	cfg := mcheck.BenchConfig()
	rep := &MCheckReport{
		Config: fmt.Sprintf("%dn x %dl w=%d q=%d det=%d iss=%d tot=%d delegation=%v",
			cfg.Nodes, cfg.Lines, cfg.MaxWrites, cfg.QueueDepth, cfg.DetThresh, cfg.MaxIssues, cfg.MaxTotalIssues, cfg.Delegation),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	t0 := time.Now()
	serial := mcheck.ExploreSerial(cfg, 0)
	serialWall := time.Since(t0)
	if !serial.Ok() {
		return nil, fmt.Errorf("bench config fails verification: %s", serial)
	}
	sc := mcheckCell("serial-map", serial, serialWall)
	sc.Workers = 0
	fmt.Fprintf(log, "pccperf: mcheck serial-map         %8d states in %-10v %9.0f states/s\n",
		sc.States, serialWall.Round(time.Millisecond), sc.StatesPerSec)
	rep.Cells = append(rep.Cells, sc)

	for _, w := range workerCounts {
		t0 = time.Now()
		res := mcheck.ExploreOpts(cfg, mcheck.Options{Workers: w, NoCanon: true})
		wall := time.Since(t0)
		cell := mcheckCell("engine", res, wall)
		cell.MatchesSerial = res.States == serial.States && res.Transitions == serial.Transitions
		cell.Speedup = serialWall.Seconds() / wall.Seconds()
		fmt.Fprintf(log, "pccperf: mcheck engine w=%-2d        %8d states in %-10v %9.0f states/s speedup=%.2f match=%v\n",
			w, cell.States, wall.Round(time.Millisecond), cell.StatesPerSec, cell.Speedup, cell.MatchesSerial)
		rep.Cells = append(rep.Cells, cell)
	}

	t0 = time.Now()
	canon := mcheck.ExploreOpts(cfg, mcheck.Options{Workers: 1})
	wall := time.Since(t0)
	cc := mcheckCell("engine", canon, wall)
	cc.Canonical = true
	cc.Reduction = float64(serial.States) / float64(canon.States)
	fmt.Fprintf(log, "pccperf: mcheck engine canonical   %8d states in %-10v %9.0f states/s reduction=%.2fx\n",
		cc.States, wall.Round(time.Millisecond), cc.StatesPerSec, cc.Reduction)
	rep.Cells = append(rep.Cells, cc)
	return rep, nil
}

// CheckMCheck is the model-checker gate for bench-smoke: a reduced run
// (serial baseline, engine at 2 workers without reduction, one canonical
// run) whose engine state counts MUST equal the serial checker's, whose
// canonical state count MUST equal the committed baseline's (worker
// counts must never change what is explored), and whose states/s must
// stay within the tolerance factor of the baseline's matching cell.
// Speedup is informational for the same reason as the shard gate: this
// runs on arbitrary CI hosts.
func CheckMCheck(path string, tol float64, log io.Writer) bool {
	if log == nil {
		log = io.Discard
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	var base MCheckReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(log, "pccperf: %s: %v\n", path, err)
		return false
	}
	baseCell := func(mode string, canonical bool) *MCheckCell {
		for i := range base.Cells {
			if base.Cells[i].Mode == mode && base.Cells[i].Canonical == canonical {
				return &base.Cells[i]
			}
		}
		return nil
	}

	rep, err := RunMCheckBench([]int{2}, log)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	ok := true
	for _, c := range rep.Cells {
		name := c.Mode
		if c.Canonical {
			name = "engine-canonical"
		}
		if c.Mode == "engine" && !c.Canonical && !c.MatchesSerial {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: engine state counts diverge from the serial checker\n", name)
			ok = false
		}
		want := baseCell(c.Mode, c.Canonical)
		if want == nil {
			fmt.Fprintf(log, "pccperf: check %-16s baseline cell missing; skipped\n", name)
			continue
		}
		if c.States != want.States {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: %d states vs baseline %d — exploration changed\n",
				name, c.States, want.States)
			ok = false
		}
		if want.StatesPerSec > 0 && c.StatesPerSec < want.StatesPerSec/tol {
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: %.0f states/s vs baseline %.0f (< 1/%.1fx)\n",
				name, c.StatesPerSec, want.StatesPerSec, tol)
			ok = false
		} else {
			fmt.Fprintf(log, "pccperf: check %-16s ok: %.0f states/s vs baseline %.0f\n",
				name, c.StatesPerSec, want.StatesPerSec)
		}
	}
	if ok {
		fmt.Fprintf(log, "pccperf: check-mcheck OK against %s (tolerance %.1fx)\n", path, tol)
	}
	return ok
}
