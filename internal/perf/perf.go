// Package perf measures the simulator's performance envelope: raw
// event-engine throughput on the protocol's latency mix, the wall time
// and event count of the full experiment suite, and the sharded-engine
// scaling sweep. cmd/pccperf is its CLI face; the serve layer runs the
// same measurements as HTTP jobs, which is why the logic lives here with
// an io.Writer log instead of hard-wired os.Stderr.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"pccsim/internal/harness"
	"pccsim/internal/msg"
	"pccsim/internal/runner"
	"pccsim/internal/sim"
)

// Report is the schema of BENCH_pr2.json.
type Report struct {
	// Engine is the single-cell event-engine microbenchmark: a pure
	// schedule/step churn over the protocol's characteristic delays.
	Engine struct {
		Events       uint64  `json:"events"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
		NsPerEvent   float64 `json:"ns_per_event"`
	} `json:"engine"`
	// Suite is the full pccbench -exp all run (all experiment cells).
	Suite struct {
		Cells        int     `json:"cells"`
		Events       uint64  `json:"events"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
		Parallel     int     `json:"parallel"`
		Scale        int     `json:"scale"`
	} `json:"suite"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Timestamp string `json:"timestamp"`
}

// Options sizes a Measure run.
type Options struct {
	Events   uint64 // engine microbenchmark event count (0 = 20M)
	Chains   int    // concurrent event chains in the microbenchmark (0 = 64)
	Parallel int    // suite worker-pool size (0 = GOMAXPROCS)
	Scale    int    // suite workload problem-size multiplier (0 = 1)
	Quick    bool   // skip the full suite; engine microbenchmark only
}

// churnMix mirrors the protocol's characteristic event delays (crossbar,
// hop, directory, DRAM) — the same mix BenchmarkEngineChurn in
// internal/sim uses, so the two numbers are comparable.
var churnMix = [8]sim.Time{20, 100, 50, 200, 100, 20, 100, 10}

// churner is a self-rescheduling MsgHandler: each handled event schedules
// its successor, exercising the typed, pooled hot path end to end.
type churner struct {
	eng  *sim.Engine
	n    uint64
	quit uint64
}

func (c *churner) HandleMsgEvent(op uint8, m *msg.Message) {
	c.n++
	if c.n >= c.quit {
		c.eng.FreeMsg(m)
		return
	}
	c.eng.AfterMsg(churnMix[c.n&7], c, op, m)
}

// BenchEngine measures raw engine throughput over total events with k
// independent event chains in flight.
func BenchEngine(total uint64, k int) (uint64, time.Duration) {
	eng := sim.NewEngine()
	c := &churner{eng: eng, quit: total}
	for i := 0; i < k; i++ {
		m := eng.NewMsg()
		m.Addr = msg.Addr(i) * 128
		eng.AfterMsg(churnMix[i&7], c, 0, m)
	}
	start := time.Now()
	for eng.Pending() > 0 {
		eng.Step()
	}
	return c.n, time.Since(start)
}

// Measure runs the engine microbenchmark and (unless opts.Quick) the full
// experiment suite, logging human-readable progress to log (nil = quiet).
func Measure(opts Options, log io.Writer) (*Report, error) {
	if log == nil {
		log = io.Discard
	}
	if opts.Events == 0 {
		opts.Events = 20_000_000
	}
	if opts.Chains == 0 {
		opts.Chains = 64
	}
	if opts.Scale == 0 {
		opts.Scale = 1
	}

	rep := &Report{
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	n, wall := BenchEngine(opts.Events, opts.Chains)
	rep.Engine.Events = n
	rep.Engine.WallSeconds = wall.Seconds()
	rep.Engine.EventsPerSec = float64(n) / wall.Seconds()
	rep.Engine.NsPerEvent = float64(wall.Nanoseconds()) / float64(n)
	fmt.Fprintf(log, "pccperf: engine %d events in %v (%.1f Mev/s)\n",
		n, wall.Round(time.Millisecond), rep.Engine.EventsPerSec/1e6)

	if !opts.Quick {
		var cells atomic.Int64
		var suiteEvents atomic.Uint64
		hopts := harness.Options{
			Nodes: 16, Scale: opts.Scale, Parallel: opts.Parallel,
			Progress: func(ev runner.Event) {
				if ev.Done && ev.Err == nil && !ev.Cached {
					cells.Add(1)
					suiteEvents.Add(ev.Events)
				}
			},
		}
		start := time.Now()
		if _, err := harness.RunAll(hopts); err != nil {
			return nil, err
		}
		suiteWall := time.Since(start)
		rep.Suite.Cells = int(cells.Load())
		rep.Suite.Events = suiteEvents.Load()
		rep.Suite.WallSeconds = suiteWall.Seconds()
		rep.Suite.EventsPerSec = float64(rep.Suite.Events) / suiteWall.Seconds()
		rep.Suite.Parallel = opts.Parallel
		rep.Suite.Scale = opts.Scale
		fmt.Fprintf(log, "pccperf: suite %d cells, %d events in %v (%.1f Mev/s)\n",
			rep.Suite.Cells, rep.Suite.Events, suiteWall.Round(time.Millisecond),
			rep.Suite.EventsPerSec/1e6)
	}
	return rep, nil
}

// CheckBaseline is the bench-regression gate: the fresh measurements in
// rep must not be worse than the committed baseline at path by more than
// the tolerance factor. Engine ns/event and suite wall time gate;
// event-count drift (the workload itself changed) only warns, since a
// different workload makes wall-time comparison advisory anyway. The
// generous default tolerance absorbs machine-to-machine and CI-runner
// noise — the gate exists to catch order-of-magnitude hot-loop
// regressions, not 10% wobbles. It reports whether the gate passed.
func CheckBaseline(path string, rep *Report, tol float64, quick bool, log io.Writer) bool {
	if log == nil {
		log = io.Discard
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(log, "pccperf:", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(log, "pccperf: %s: %v\n", path, err)
		return false
	}

	ok := true
	gate := func(name string, got, want float64) {
		switch {
		case want <= 0:
			fmt.Fprintf(log, "pccperf: check %-16s baseline missing; skipped\n", name)
		case got > want*tol:
			fmt.Fprintf(log, "pccperf: check %-16s FAIL: %.2f vs baseline %.2f (> %.1fx)\n",
				name, got, want, tol)
			ok = false
		default:
			fmt.Fprintf(log, "pccperf: check %-16s ok: %.2f vs baseline %.2f (%.2fx)\n",
				name, got, want, got/want)
		}
	}
	gate("engine-ns/event", rep.Engine.NsPerEvent, base.Engine.NsPerEvent)
	if !quick {
		gate("suite-wall-s", rep.Suite.WallSeconds, base.Suite.WallSeconds)
		if base.Suite.Events != 0 && rep.Suite.Events != base.Suite.Events {
			fmt.Fprintf(log, "pccperf: check suite-events       warn: %d vs baseline %d (workload changed; wall gate is advisory)\n",
				rep.Suite.Events, base.Suite.Events)
		}
	}
	if ok {
		fmt.Fprintf(log, "pccperf: check OK against %s (tolerance %.1fx)\n", path, tol)
	}
	return ok
}
