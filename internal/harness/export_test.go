package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteFig7CSV(t *testing.T) {
	rows := []Row{
		{App: "em3d", Config: "Base", Cycles: 100, Speedup: 1, Messages: 50,
			MsgRatio: 1, RemoteMisses: 10, MissRatio: 1},
		{App: "em3d", Config: "mech", Cycles: 80, Speedup: 1.25, Messages: 40,
			MsgRatio: 0.8, RemoteMisses: 4, MissRatio: 0.4, UpdateAcc: 0.9},
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "app" || recs[2][3] != "1.2500" {
		t.Fatalf("unexpected CSV contents: %v", recs)
	}
}

func TestWriteSweepAndFigCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, []SweepRow{{Config: "32", Cycles: 10, Speedup: 1.1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig9CSV(&buf, []Fig9Row{{App: "mg", Delay: "50", Cycles: 5, Normalized: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig10CSV(&buf, []Fig10Row{{HopNsec: 50, BaseCycles: 10, MechCycles: 8, Speedup: 1.25}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"config,cycles", "app,delay", "hop_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing header %q in:\n%s", want, out)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	// A tiny full run: every experiment executes and the JSON parses.
	opts := Options{Nodes: 8, Scale: 1, Iters: 2}
	rep := RunAll(opts)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Fig7) != len(rep.Fig7) || len(back.Table3) != 7 {
		t.Fatalf("round trip lost data: fig7 %d->%d table3 %d",
			len(rep.Fig7), len(back.Fig7), len(back.Table3))
	}
	if back.Options.Nodes != 8 {
		t.Fatal("options lost")
	}
}
