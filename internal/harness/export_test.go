package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteFig7CSV(t *testing.T) {
	rows := []Row{
		{App: "em3d", Config: "Base", Cycles: 100, Speedup: 1, Messages: 50,
			MsgRatio: 1, RemoteMisses: 10, MissRatio: 1},
		{App: "em3d", Config: "mech", Cycles: 80, Speedup: 1.25, Messages: 40,
			MsgRatio: 0.8, RemoteMisses: 4, MissRatio: 0.4, UpdateAcc: 0.9},
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "app" || recs[2][3] != "1.2500" {
		t.Fatalf("unexpected CSV contents: %v", recs)
	}
}

func TestWriteSweepAndFigCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, []SweepRow{{Config: "32", Cycles: 10, Speedup: 1.1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig9CSV(&buf, []Fig9Row{{App: "mg", Delay: "50", Cycles: 5, Normalized: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig10CSV(&buf, []Fig10Row{{HopNsec: 50, BaseCycles: 10, MechCycles: 8, Speedup: 1.25}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"config,cycles", "app,delay", "hop_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing header %q in:\n%s", want, out)
		}
	}
}

func TestWriteNewCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig8CSV(&buf, []Fig8Row{{App: "lu", Config: "Base (64K L2)", Cycles: 10, Speedup: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable3CSV(&buf, map[string][5]float64{"em3d": {60, 40, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAblationCSV(&buf, []AblationRow{{App: "cg", BaseCycles: 9, DelegOnly: 9, DelegUpd: 8, DelegSpeedup: 1, FullSpeedup: 1.1}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"app,config,cycles,speedup", "app,pct_1", "app,base_cycles", "em3d,60.0000", "cg,9,9,8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	// A tiny full run: every experiment executes and the JSON parses.
	opts := Options{Nodes: 8, Scale: 1, Iters: 2}
	rep, err := RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Fig7) != len(rep.Fig7) || len(back.Table3) != 7 {
		t.Fatalf("round trip lost data: fig7 %d->%d table3 %d",
			len(rep.Fig7), len(back.Fig7), len(back.Table3))
	}
	if back.Options.Nodes != 8 {
		t.Fatal("options lost")
	}
}

// TestParallelRunAllByteIdenticalJSON is the determinism proof for the
// concurrent scheduler: a parallel full report must serialize to exactly
// the bytes a sequential one does. (Parallel and Progress carry json:"-"
// precisely so scheduling knobs can never leak into the report identity.)
func TestParallelRunAllByteIdenticalJSON(t *testing.T) {
	opts := Options{Nodes: 8, Scale: 1, Iters: 2}
	render := func(parallel int) []byte {
		o := opts
		o.Parallel = parallel
		rep, err := RunAll(o)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel JSON diverged from sequential (%d vs %d bytes)", len(seq), len(par))
	}
}

// TestRunAllMemoizesAcrossFigures pins the cross-figure dedup: a full
// report issues far more jobs than it simulates cells, because e.g. the
// Base configuration recurs in Figure 7, the ablation and the extensions.
func TestRunAllMemoizesAcrossFigures(t *testing.T) {
	opts := Options{Nodes: 8, Scale: 1, Iters: 2}
	s := NewSession(opts)
	jobs := 0
	count := func(n int, err error) {
		if err != nil {
			t.Fatal(err)
		}
		jobs += n
	}
	r7, err := s.Fig7()
	count(len(r7), err)
	r3, err := s.Table3()
	count(len(r3), err)
	ra, err := s.Ablation()
	count(3*len(ra), err)
	re, err := s.Extensions()
	count(4*len(re), err)
	if s.Cells() >= jobs {
		t.Fatalf("no cross-figure memoization: %d cells for %d jobs", s.Cells(), jobs)
	}
	// Precisely: Fig7 42 cells; Table3 reuses the 1K/1M config (0 new);
	// Ablation adds only deleg-only (7); Extensions adds adaptive + pair
	// (14). 42 + 0 + 7 + 14 = 63 of 105 jobs.
	if s.Cells() != 63 {
		t.Fatalf("cells = %d for %d jobs, want 63 (did a config drift?)", s.Cells(), jobs)
	}
}
