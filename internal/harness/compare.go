package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"pccsim/internal/core"
	"pccsim/internal/protocol"
	"pccsim/internal/runner"
	"pccsim/internal/workload"
)

// The coherence bake-off: every registered protocol runs every workload
// head-to-head, each provisioned with the full mechanism set its
// capabilities allow (the same rule the cross-protocol invariant suite
// uses). "mesi" — the plain write-invalidate baseline — anchors the
// speedup column.

// CompareBaseline is the protocol every contender is normalized against.
const CompareBaseline = "mesi"

// CompareRow is one (application, protocol) cell of the bake-off.
type CompareRow struct {
	App      string
	Protocol string

	Cycles   uint64
	Speedup  float64 // baseline (mesi) cycles / this protocol's cycles
	Messages uint64
	Bytes    uint64
	AvgHops  float64 // mean network hops per packet

	// L2 miss breakdown by service class.
	MissRAC       uint64
	MissLocalHome uint64
	MissRemote2   uint64
	MissRemote3   uint64

	// Mechanism activity (zero for protocols without the capability).
	UpdateAcc   float64 // fraction of pushed/speculative updates consumed
	Delegations uint64
	NackCount   uint64
}

// CompareConfig provisions one protocol for the bake-off: the base
// machine plus every mechanism the protocol's capabilities permit. The
// adaptive protocol gets the paper's small configuration (32-entry
// delegate cache, 32K RAC, speculative updates); dsi gets dynamic
// self-invalidation; plain write-invalidate protocols run the base
// machine unmodified.
func CompareConfig(base core.Config, p protocol.Protocol) core.Config {
	cfg := base
	cfg.Protocol = p.Name()
	caps := p.Capabilities()
	if caps.Delegation {
		cfg = mech(cfg, 32*1024, 32, caps.SpeculativeUpdates)
	}
	if caps.SelfInvalidation && !caps.Delegation {
		cfg.SelfInvalidate = true
	}
	return cfg
}

// Compare runs the protocol bake-off: every registered protocol against
// every workload. Rows are grouped by application in workload order,
// protocols in registry (sorted-name) order within each group.
func Compare(opts Options) ([]CompareRow, error) { return NewSession(opts).Compare() }

// Compare runs the bake-off on this session's scheduler.
func (s *Session) Compare() ([]CompareRow, error) {
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes
	protos := protocol.All()
	apps := workload.All()

	var jobs []runner.Job
	for _, wl := range apps {
		for _, p := range protos {
			jobs = append(jobs, s.job("compare/"+wl.Name+"/"+p.Name(), CompareConfig(base, p), wl))
		}
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []CompareRow
	for i, wl := range apps {
		group := res[i*len(protos) : (i+1)*len(protos)]
		var baseline uint64
		for j, p := range protos {
			if p.Name() == CompareBaseline {
				baseline = group[j].ExecCycles
			}
		}
		for j, p := range protos {
			st := group[j]
			rows = append(rows, CompareRow{
				App:           wl.Name,
				Protocol:      p.Name(),
				Cycles:        st.ExecCycles,
				Speedup:       ratio(baseline, st.ExecCycles),
				Messages:      st.TotalMessages(),
				Bytes:         st.TotalBytes(),
				AvgHops:       st.AvgHops(),
				MissRAC:       st.RACMisses(),
				MissLocalHome: st.LocalHomeMisses(),
				MissRemote2:   st.Remote2HopMisses(),
				MissRemote3:   st.Remote3HopMisses(),
				UpdateAcc:     st.UpdateAccuracy(),
				Delegations:   st.Delegations,
				NackCount:     st.Nacks(),
			})
		}
	}
	return rows, nil
}

// WriteCompareCSV renders the bake-off table.
func WriteCompareCSV(w io.Writer, rows []CompareRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "protocol", "cycles", "speedup_vs_mesi",
		"messages", "bytes", "avg_hops",
		"miss_local_rac", "miss_local_home", "miss_remote_2hop", "miss_remote_3hop",
		"update_accuracy", "delegations", "nacks"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App, r.Protocol,
			strconv.FormatUint(r.Cycles, 10),
			f(r.Speedup),
			strconv.FormatUint(r.Messages, 10),
			strconv.FormatUint(r.Bytes, 10),
			f(r.AvgHops),
			strconv.FormatUint(r.MissRAC, 10),
			strconv.FormatUint(r.MissLocalHome, 10),
			strconv.FormatUint(r.MissRemote2, 10),
			strconv.FormatUint(r.MissRemote3, 10),
			f(r.UpdateAcc),
			strconv.FormatUint(r.Delegations, 10),
			strconv.FormatUint(r.NackCount, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintCompare renders the bake-off: one per-application block plus a
// geo-mean speedup summary line per protocol.
func PrintCompare(w io.Writer, rows []CompareRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "App\tProtocol\tCycles\tSpeedup\tMessages\tKBytes\tAvg hops\t2-hop\t3-hop\tUpd acc\tDelegs\tNACKs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%d\t%d\t%.2f\t%d\t%d\t%.2f\t%d\t%d\n",
			r.App, r.Protocol, r.Cycles, r.Speedup, r.Messages, r.Bytes/1024,
			r.AvgHops, r.MissRemote2, r.MissRemote3, r.UpdateAcc, r.Delegations, r.NackCount)
	}
	tw.Flush()

	fmt.Fprintln(w)
	for _, p := range protocol.Names() {
		prod, n := 1.0, 0
		for _, r := range rows {
			if r.Protocol == p && r.Speedup > 0 {
				prod *= r.Speedup
				n++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s geo-mean speedup vs %s: %.3f\n",
			p, CompareBaseline, pow(prod, 1/float64(n)))
	}
}
