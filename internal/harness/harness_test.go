package harness

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"pccsim/internal/core"
	"pccsim/internal/workload"
)

// tiny keeps harness tests fast: few nodes, minimal iterations.
func tiny() Options { return Options{Nodes: 8, Scale: 1, Iters: 2} }

func TestFig7ConfigsShape(t *testing.T) {
	specs := Fig7Configs()
	if len(specs) != 6 {
		t.Fatalf("Fig7 has %d configs, want 6", len(specs))
	}
	if specs[0].RAC != 0 || specs[0].Deledc != 0 {
		t.Fatal("first config must be the baseline")
	}
	base := core.DefaultConfig()
	for _, s := range specs {
		cfg := s.Apply(base)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Label, err)
		}
	}
}

func TestRunOneWorkload(t *testing.T) {
	wl, _ := workload.ByName("ocean")
	cfg := core.DefaultConfig()
	cfg.Nodes = 8
	st, err := Run(cfg, wl, workload.Params{Nodes: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCycles == 0 || st.Loads == 0 {
		t.Fatal("empty run")
	}
}

func TestFig7RowsComplete(t *testing.T) {
	rows, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	want := 7 * 6 // apps x configs
	if len(rows) != want {
		t.Fatalf("Fig7 produced %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Config == "Base" && math.Abs(r.Speedup-1) > 1e-9 {
			t.Fatalf("%s baseline speedup = %f, want 1", r.App, r.Speedup)
		}
		if r.Speedup <= 0 {
			t.Fatalf("%s/%s: non-positive speedup", r.App, r.Config)
		}
	}
	// Mechanisms must help overall even at tiny scale.
	if g := GeoMeanSpeedup(rows, "1K-entry deledc & 1M RAC"); g <= 1.0 {
		t.Fatalf("large config geo-mean speedup %f <= 1", g)
	}
	// Printing must not panic and must mention every app.
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
	for _, wl := range workload.All() {
		if !bytes.Contains(buf.Bytes(), []byte(wl.Name)) {
			t.Fatalf("Fig7 output lacks %s", wl.Name)
		}
	}
}

func TestTable3Rows(t *testing.T) {
	dist, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 7 {
		t.Fatalf("Table3 has %d rows", len(dist))
	}
	var buf bytes.Buffer
	PrintTable3(&buf, dist)
	if buf.Len() == 0 {
		t.Fatal("empty Table3 output")
	}
}

func TestFig9NormalizedToFirst(t *testing.T) {
	opts := tiny()
	rows, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7*len(Fig9Delays()) {
		t.Fatalf("Fig9 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Delay == "5" && math.Abs(r.Normalized-1) > 1e-9 {
			t.Fatalf("%s: 5-cycle point not normalized to 1", r.App)
		}
	}
	var buf bytes.Buffer
	PrintFig9(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty Fig9 output")
	}
}

func TestFig10HopScaling(t *testing.T) {
	rows, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Fig10 rows = %d, want 4", len(rows))
	}
	// Execution time must grow with hop latency (the paper: "every time
	// network hop latency doubles, execution time nearly doubles").
	for i := 1; i < len(rows); i++ {
		if rows[i].BaseCycles <= rows[i-1].BaseCycles {
			t.Fatalf("base cycles not increasing with hop latency: %+v", rows)
		}
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty Fig10 output")
	}
}

func TestFig11And12Sweeps(t *testing.T) {
	r11, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r11) != 8 {
		t.Fatalf("Fig11 rows = %d, want 8", len(r11))
	}
	r12, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r12) != 8 {
		t.Fatalf("Fig12 rows = %d, want 8", len(r12))
	}
	var buf bytes.Buffer
	PrintSweep(&buf, r11)
	PrintSweep(&buf, r12)
	if buf.Len() == 0 {
		t.Fatal("empty sweep output")
	}
}

func TestAblationDelegationOnlyNearBaseline(t *testing.T) {
	rows, err := Ablation(Options{Nodes: 16, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	for _, r := range rows {
		// §3.2: delegation-only performs within ~1% of the baseline
		// (we allow 3% at our scaled-down sizes).
		if r.DelegSpeedup < 0.97 || r.DelegSpeedup > 1.03 {
			t.Errorf("%s: delegation-only speedup %.3f outside [0.97, 1.03]",
				r.App, r.DelegSpeedup)
		}
		if r.FullSpeedup < r.DelegSpeedup-0.02 {
			t.Errorf("%s: updates made things worse: %.3f < %.3f",
				r.App, r.FullSpeedup, r.DelegSpeedup)
		}
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty ablation output")
	}
}

func TestFig8EqualArea(t *testing.T) {
	rows, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7*3 {
		t.Fatalf("Fig8 rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty Fig8 output")
	}
}

func TestPrintTables(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf, core.DefaultConfig())
	PrintTable2(&buf, tiny())
	if buf.Len() == 0 {
		t.Fatal("empty table output")
	}
}

func TestGeoMeanAndMeanRatio(t *testing.T) {
	rows := []Row{
		{Config: "x", Speedup: 2, MsgRatio: 0.5},
		{Config: "x", Speedup: 0.5, MsgRatio: 1.5},
		{Config: "y", Speedup: 3, MsgRatio: 1},
	}
	if g := GeoMeanSpeedup(rows, "x"); math.Abs(g-1) > 1e-9 {
		t.Fatalf("geomean = %f, want 1", g)
	}
	if m := MeanRatio(rows, "x", func(r Row) float64 { return r.MsgRatio }); math.Abs(m-1) > 1e-9 {
		t.Fatalf("mean = %f, want 1", m)
	}
	if g := GeoMeanSpeedup(rows, "none"); g != 0 {
		t.Fatalf("geomean of empty selection = %f", g)
	}
}

func TestExtensionsRows(t *testing.T) {
	rows, err := Extensions(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("extensions rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Fixed <= 0 || r.Adaptive <= 0 || r.Pair <= 0 {
			t.Fatalf("%s: non-positive speedup %+v", r.App, r)
		}
		if r.Accuracy > 0 && r.Bound < 1 {
			t.Fatalf("%s: bound %f below 1", r.App, r.Bound)
		}
	}
	var buf bytes.Buffer
	PrintExtensions(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty extensions output")
	}
}

func TestAccuracyBound(t *testing.T) {
	if got := AccuracyBound(0); got != 1 {
		t.Fatalf("bound(0) = %f", got)
	}
	if got := AccuracyBound(0.5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("bound(0.5) = %f", got)
	}
	if got := AccuracyBound(-1); got != 1 {
		t.Fatalf("bound(-1) = %f", got)
	}
	if !math.IsInf(AccuracyBound(1), 1) {
		t.Fatal("bound(1) not infinite")
	}
}

func TestRelatedWorkContrast(t *testing.T) {
	rows, err := RelatedWork(Options{Nodes: 16, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("related rows = %d", len(rows))
	}
	for _, r := range rows {
		// Self-invalidation may only ever reduce 3-hop misses...
		if r.DSI3Hop > r.Base3Hop {
			t.Errorf("%s: DSI increased 3-hop misses %d -> %d", r.App, r.Base3Hop, r.DSI3Hop)
		}
		// ...and never produces local hits; only updates do.
		if r.DSILocal != 0 {
			t.Errorf("%s: DSI produced %d local hits", r.App, r.DSILocal)
		}
		// Updates must dominate DSI on every app (the paper's thesis).
		if r.DelegUpd < r.SelfInval-0.01 {
			t.Errorf("%s: updates (%.3f) lost to self-invalidation (%.3f)",
				r.App, r.DelegUpd, r.SelfInval)
		}
	}
	var buf bytes.Buffer
	PrintRelated(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty related output")
	}
}

// TestSessionWithContext pins the cancel plumbing the serve layer relies
// on: a session batch under a cancelled context fails with the context
// error instead of simulating, and the underlying session is untouched —
// a live-context retry on the same session runs normally.
func TestSessionWithContext(t *testing.T) {
	s := NewSession(tiny())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.WithContext(ctx).Fig10(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled session batch returned %v, want context.Canceled", err)
	}
	if got := s.Cells(); got != 0 {
		t.Fatalf("cancelled batch simulated %d cells, want 0", got)
	}
	rows, err := s.WithContext(context.Background()).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || s.Cells() == 0 {
		t.Fatal("live-context retry on the same session did not simulate")
	}
}
