package harness

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"pccsim/internal/core"
	"pccsim/internal/runner"
	"pccsim/internal/workload"
)

// AccuracyBound is the paper's §5 analytical model: "as network latency
// grows, the achievable speedup is limited to 1/(1-accuracy)". With update
// accuracy a, at most a fraction a of remote read misses can be removed,
// so in the latency-dominated limit speedup cannot exceed 1/(1-a).
func AccuracyBound(accuracy float64) float64 {
	if accuracy >= 1 {
		return math.Inf(1)
	}
	if accuracy < 0 {
		accuracy = 0
	}
	return 1 / (1 - accuracy)
}

// ExtRow is one row of the §5-extensions ablation.
type ExtRow struct {
	App string
	// Speedups vs the same baseline.
	Fixed    float64 // paper configuration: fixed 50-cycle delay
	Adaptive float64 // adaptive per-line delay
	Pair     float64 // two-writer detector (fixed delay)
	// Update accuracy under the fixed configuration and its §5 bound.
	Accuracy float64
	Bound    float64
}

// Extensions runs the §5 future-work ablations on every workload: the
// adaptive intervention delay and the two-writer detector, against the
// paper's fixed small configuration.
func Extensions(opts Options) ([]ExtRow, error) { return NewSession(opts).Extensions() }

// Extensions runs the §5 ablations on this session.
func (s *Session) Extensions() ([]ExtRow, error) {
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes
	fixed := mech(base, 32*1024, 32, true)
	adaptive := fixed
	adaptive.AdaptiveDelay = true
	pair := fixed
	pair.DetectorWriters = 2
	apps := workload.All()

	var jobs []runner.Job
	for _, wl := range apps {
		jobs = append(jobs,
			s.job("extensions/"+wl.Name+"/base", base, wl),
			s.job("extensions/"+wl.Name+"/fixed", fixed, wl),
			s.job("extensions/"+wl.Name+"/adaptive", adaptive, wl),
			s.job("extensions/"+wl.Name+"/pair", pair, wl))
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []ExtRow
	for i, wl := range apps {
		bst, fst, ast, pst := res[i*4], res[i*4+1], res[i*4+2], res[i*4+3]
		bound := AccuracyBound(fst.UpdateAccuracy())
		if math.IsInf(bound, 1) {
			bound = 999 // JSON-safe sentinel for "unbounded"
		}
		rows = append(rows, ExtRow{
			App:      wl.Name,
			Fixed:    ratio(bst.ExecCycles, fst.ExecCycles),
			Adaptive: ratio(bst.ExecCycles, ast.ExecCycles),
			Pair:     ratio(bst.ExecCycles, pst.ExecCycles),
			Accuracy: fst.UpdateAccuracy(),
			Bound:    bound,
		})
	}
	return rows, nil
}

// RelatedRow compares the paper's mechanisms with the related-work
// baseline it cites: dynamic self-invalidation (Lebeck & Wood; Lai &
// Falsafi), which converts 3-hop reads into 2-hop home hits, where the
// paper's updates convert them into local hits.
type RelatedRow struct {
	App string
	// Speedups vs the same baseline.
	SelfInval float64
	DelegOnly float64
	DelegUpd  float64
	// Remote 3-hop miss counts (the metric self-invalidation moves).
	Base3Hop uint64
	DSI3Hop  uint64
	// Local-hit counts (the metric only updates move).
	DSILocal uint64
	UpdLocal uint64
}

// RelatedWork runs the four-way comparison per workload.
func RelatedWork(opts Options) ([]RelatedRow, error) { return NewSession(opts).RelatedWork() }

// RelatedWork runs the self-invalidation comparison on this session.
func (s *Session) RelatedWork() ([]RelatedRow, error) {
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes
	dsiCfg := base
	dsiCfg.SelfInvalidate = true
	apps := workload.All()

	var jobs []runner.Job
	for _, wl := range apps {
		jobs = append(jobs,
			s.job("related/"+wl.Name+"/base", base, wl),
			s.job("related/"+wl.Name+"/self-inval", dsiCfg, wl),
			s.job("related/"+wl.Name+"/deleg-only", mech(base, 32*1024, 32, false), wl),
			s.job("related/"+wl.Name+"/deleg-upd", mech(base, 32*1024, 32, true), wl))
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []RelatedRow
	for i, wl := range apps {
		bst, dst, dlst, dust := res[i*4], res[i*4+1], res[i*4+2], res[i*4+3]
		rows = append(rows, RelatedRow{
			App:       wl.Name,
			SelfInval: ratio(bst.ExecCycles, dst.ExecCycles),
			DelegOnly: ratio(bst.ExecCycles, dlst.ExecCycles),
			DelegUpd:  ratio(bst.ExecCycles, dust.ExecCycles),
			Base3Hop:  bst.Remote3HopMisses(),
			DSI3Hop:   dst.Remote3HopMisses(),
			DSILocal:  dst.RACMisses(),
			UpdLocal:  dust.RACMisses(),
		})
	}
	return rows, nil
}

// PrintRelated renders the related-work comparison.
func PrintRelated(w io.Writer, rows []RelatedRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tSelf-inval\tDeleg-only\tDeleg+updates\t3-hop base->DSI\tlocal hits DSI/upd")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d -> %d\t%d / %d\n",
			r.App, r.SelfInval, r.DelegOnly, r.DelegUpd,
			r.Base3Hop, r.DSI3Hop, r.DSILocal, r.UpdLocal)
	}
	tw.Flush()
}

// PrintExtensions renders the §5 ablation.
func PrintExtensions(w io.Writer, rows []ExtRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tFixed 50cy\tAdaptive delay\t2-writer detector\tUpd accuracy\t1/(1-acc) bound")
	for _, r := range rows {
		bound := fmt.Sprintf("%.2f", r.Bound)
		if r.Bound >= 999 {
			bound = "inf"
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.2f\t%s\n",
			r.App, r.Fixed, r.Adaptive, r.Pair, r.Accuracy, bound)
	}
	tw.Flush()
}
