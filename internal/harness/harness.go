// Package harness regenerates every table and figure of the paper's
// evaluation section: the six machine configurations of Figure 7, the
// equal-silicon comparison of Figure 8, the intervention-delay sweep of
// Figure 9, the hop-latency sweep of Figure 10, the delegate-cache and RAC
// size sweeps of Figures 11 and 12, the consumer-count distribution of
// Table 3, and the delegation-only ablation discussed in §3.2.
//
// Every experiment is declared as a set of runner.Jobs and executed by
// internal/runner's worker pool: independent cells simulate concurrently
// (each on a private engine, so results stay bit-for-bit deterministic),
// and cells that recur across figures — the Base configuration alone
// appears in Figure 7, the ablation and the related-work comparison —
// simulate exactly once per Session.
package harness

import (
	"context"
	"fmt"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/node"
	"pccsim/internal/runner"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// Options scales a harness run.
type Options struct {
	Nodes int // processors (16 in the paper)
	Scale int // workload problem-size multiplier
	Iters int // workload iteration override (0 = per-workload default)

	// Shards partitions each simulated machine into engine shards (0 =
	// the legacy single engine). Sharded timings differ slightly from
	// unsharded ones (conservative-window barrier release, pre-resolved
	// first-touch), so the count is part of the report identity.
	Shards int `json:",omitempty"`
	// Deterministic forces the serial round-robin shard scheduler even
	// for Shards > 1. It never changes results — the parallel scheduler
	// is gated to produce identical stats — so it is not part of the
	// report identity.
	Deterministic bool `json:"-"`
	// AdaptiveWindows lets sharded machines widen their conservative
	// windows while no cross-shard traffic is in flight. It never
	// changes results — growth is bounded so every event keeps its
	// timing — so it is not part of the report identity either.
	AdaptiveWindows bool `json:"-"`

	// Parallel is the scheduler's worker-pool size; 0 means GOMAXPROCS.
	// It affects only wall time, never results, and is therefore not
	// part of the report identity (excluded from JSON).
	Parallel int `json:"-"`

	// Progress optionally receives per-cell lifecycle events (start,
	// finish with engine event count and wall time, cache hits). It may
	// be called from multiple workers concurrently. Excluded from JSON.
	Progress runner.ProgressFunc `json:"-"`
}

// DefaultOptions mirrors the paper's 16-processor system at the scaled
// problem sizes of DESIGN.md.
func DefaultOptions() Options { return Options{Nodes: 16, Scale: 1} }

func (o Options) params() workload.Params {
	return workload.Params{Nodes: o.Nodes, Scale: o.Scale, Iters: o.Iters}
}

// Session runs experiments through one shared scheduler, so identical
// cells are simulated once no matter how many figures request them. Use
// NewSession + the Session methods when regenerating several experiments
// in one process (RunAll does this internally); the package-level
// functions are one-shot conveniences that each build a private Session.
type Session struct {
	Opts Options
	r    *runner.Runner
	ctx  context.Context // nil = Background; set by WithContext
}

// NewSession creates a session with a worker pool sized by opts.Parallel.
func NewSession(opts Options) *Session {
	return &Session{Opts: opts, r: runner.New(opts.Parallel, opts.Progress)}
}

// NewSessionOn creates a session on an existing runner instead of a
// private pool. Sessions sharing a runner share its memo, so a
// long-running server can build one throwaway Session per request and
// still have every repeated cell — across requests and tenants —
// simulate exactly once. opts.Parallel and opts.Progress are ignored;
// the runner's own pool size and hook apply.
func NewSessionOn(r *runner.Runner, opts Options) *Session {
	return &Session{Opts: opts, r: r}
}

// WithContext returns a session whose experiment batches run under ctx:
// cancelling it interrupts the cells currently simulating and skips the
// rest of the batch (runner.RunCtx semantics). The receiver is unchanged,
// so one shared-runner session can hand differently-scoped views to
// concurrent callers.
func (s *Session) WithContext(ctx context.Context) *Session {
	c := *s
	c.ctx = ctx
	return &c
}

// run executes one experiment batch under the session's context.
func (s *Session) run(jobs []runner.Job) ([]*stats.Stats, error) {
	if s.ctx != nil {
		return s.r.RunCtx(s.ctx, jobs)
	}
	return s.r.Run(jobs)
}

// Cells reports how many unique simulation cells this session has run.
func (s *Session) Cells() int { return s.r.Cells() }

// ConfigSpec is one machine configuration under study.
type ConfigSpec struct {
	Label   string
	RAC     int  // RAC bytes (0 = none)
	Deledc  int  // delegate-cache entries (0 = none)
	Updates bool // speculative updates enabled
	Mutate  func(*core.Config)
}

// mech sizes the paper's mechanisms on a config. The harness sweeps raw
// byte and entry counts (including sub-kilobyte RACs), so it sets the
// fields directly instead of going through the KB-granular core options;
// the update-enable rule matches the deprecated Config.WithMechanisms.
func mech(c core.Config, racBytes, delegateEntries int, updates bool) core.Config {
	c.RACBytes = racBytes
	c.DelegateEntries = delegateEntries
	c.EnableUpdates = updates && racBytes > 0 && delegateEntries > 0
	return c
}

// Apply produces the concrete configuration.
func (s ConfigSpec) Apply(base core.Config) core.Config {
	cfg := mech(base, s.RAC, s.Deledc, s.Updates)
	if s.Mutate != nil {
		s.Mutate(&cfg)
	}
	return cfg
}

// Fig7Configs are the six systems of Figure 7, in the paper's legend
// order: baseline, RAC only, and the four delegate-cache/RAC pairings
// (all four include directory delegation and selective updates).
func Fig7Configs() []ConfigSpec {
	return []ConfigSpec{
		{Label: "Base"},
		{Label: "32K RAC", RAC: 32 * 1024},
		{Label: "32-entry deledc & 32K RAC", RAC: 32 * 1024, Deledc: 32, Updates: true},
		{Label: "1K-entry deledc & 1M RAC", RAC: 1024 * 1024, Deledc: 1024, Updates: true},
		{Label: "1K-entry deledc & 32K RAC", RAC: 32 * 1024, Deledc: 1024, Updates: true},
		{Label: "32-entry deledc & 1M RAC", RAC: 1024 * 1024, Deledc: 32, Updates: true},
	}
}

// Run executes one workload on one configuration and returns its stats.
func Run(cfg core.Config, wl *workload.Workload, p workload.Params) (*stats.Stats, error) {
	m, err := node.New(cfg)
	if err != nil {
		return nil, err
	}
	ops := wl.Build(p)
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	return m.Run(streams)
}

// MustRun is Run for callers with static known-good configurations
// (benchmarks and tests). The experiment paths below never panic; they
// propagate errors through the runner instead.
func MustRun(cfg core.Config, wl *workload.Workload, p workload.Params) *stats.Stats {
	st, err := Run(cfg, wl, p)
	if err != nil {
		panic(fmt.Sprintf("harness: %s on %d nodes: %v", wl.Name, cfg.Nodes, err))
	}
	return st
}

// job builds one runner job for this session's parameters. Shard options
// apply here, centrally, so every experiment cell of a sharded session
// runs on the same engine partitioning.
func (s *Session) job(label string, cfg core.Config, wl *workload.Workload) runner.Job {
	cfg.Shards = s.Opts.Shards
	cfg.ShardsParallel = s.Opts.Shards > 1 && !s.Opts.Deterministic
	cfg.AdaptiveWindows = s.Opts.AdaptiveWindows
	return runner.Job{Label: label, Cfg: cfg, Workload: wl, Params: s.Opts.params()}
}

// Row is one (application, configuration) measurement normalized to that
// application's baseline, matching Figure 7's three stacked plots.
type Row struct {
	App    string
	Config string

	Cycles       uint64
	RemoteMisses uint64
	Messages     uint64
	Bytes        uint64

	Speedup   float64 // baseline cycles / this config's cycles
	MsgRatio  float64 // messages / baseline messages
	MissRatio float64 // remote misses / baseline remote misses
	UpdateAcc float64
	Delegs    uint64
	Undelegs  uint64
	NackCount uint64
}

// Fig7 runs every workload across the six Figure 7 configurations.
func Fig7(opts Options) ([]Row, error) { return NewSession(opts).Fig7() }

// Fig7 runs the Figure 7 grid on this session's scheduler.
func (s *Session) Fig7() ([]Row, error) {
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes
	specs := Fig7Configs()
	apps := workload.All()

	var jobs []runner.Job
	for _, wl := range apps {
		for _, spec := range specs {
			jobs = append(jobs, s.job("fig7/"+wl.Name+"/"+spec.Label, spec.Apply(base), wl))
		}
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for i, wl := range apps {
		baseline := res[i*len(specs)] // the Base spec leads each group
		for j, spec := range specs {
			rows = append(rows, makeRow(wl.Name, spec.Label, res[i*len(specs)+j], baseline))
		}
	}
	return rows, nil
}

func makeRow(app, label string, st, baseline *stats.Stats) Row {
	r := Row{
		App:          app,
		Config:       label,
		Cycles:       st.ExecCycles,
		RemoteMisses: st.RemoteMisses(),
		Messages:     st.TotalMessages(),
		Bytes:        st.TotalBytes(),
		UpdateAcc:    st.UpdateAccuracy(),
		Delegs:       st.Delegations,
		Undelegs:     st.TotalUndelegations(),
		NackCount:    st.Nacks(),
	}
	if baseline != nil && baseline.ExecCycles > 0 {
		r.Speedup = float64(baseline.ExecCycles) / float64(st.ExecCycles)
	}
	if baseline != nil && baseline.TotalMessages() > 0 {
		r.MsgRatio = float64(st.TotalMessages()) / float64(baseline.TotalMessages())
	}
	if baseline != nil && baseline.RemoteMisses() > 0 {
		r.MissRatio = float64(st.RemoteMisses()) / float64(baseline.RemoteMisses())
	}
	return r
}

// GeoMeanSpeedup aggregates a config's speedups across apps, the way the
// paper reports its headline numbers ("geometric mean speedup ... 21%").
func GeoMeanSpeedup(rows []Row, config string) float64 {
	prod := 1.0
	n := 0
	for _, r := range rows {
		if r.Config == config && r.Speedup > 0 {
			prod *= r.Speedup
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return pow(prod, 1/float64(n))
}

// MeanRatio averages a ratio column for a config (arithmetic mean, as the
// paper uses for traffic and remote-miss reductions).
func MeanRatio(rows []Row, config string, f func(Row) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if r.Config == config {
			sum += f(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func pow(x, y float64) float64 {
	// math.Pow without importing math in several files; tiny wrapper.
	return mathPow(x, y)
}

// Table3 measures the consumer-count distribution per application on the
// large configuration (the detector needs delegation on to track and
// classify producer-consumer lines).
func Table3(opts Options) (map[string][5]float64, error) { return NewSession(opts).Table3() }

// Table3 runs the consumer-distribution measurement on this session.
func (s *Session) Table3() (map[string][5]float64, error) {
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes
	cfg := mech(base, 1024*1024, 1024, true)
	apps := workload.All()

	jobs := make([]runner.Job, len(apps))
	for i, wl := range apps {
		jobs[i] = s.job("table3/"+wl.Name, cfg, wl)
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string][5]float64)
	for i, wl := range apps {
		out[wl.Name] = res[i].ConsumerDistPercent()
	}
	return out, nil
}

// Fig8Row is one bar of the equal-silicon-area comparison.
type Fig8Row struct {
	App     string
	Config  string
	Cycles  uint64
	Speedup float64
}

// Fig8 compares base (1 MB L2), base plus the small mechanisms (32-entry
// delegate cache + 32 KB RAC), and an equal-area 1.04 MB L2 with no
// mechanisms. The paper halves the Table 1 L2 for this experiment; we use
// a 64 KB / 66.5 KB pair scaled to our problem sizes (the comparison needs
// the working set to put pressure on L2 capacity).
func Fig8(opts Options) ([]Fig8Row, error) { return NewSession(opts).Fig8() }

// Fig8 runs the equal-silicon comparison on this session.
func (s *Session) Fig8() ([]Fig8Row, error) {
	mk := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Nodes = s.Opts.Nodes
		cfg.L2Bytes = 64 * 1024
		return cfg
	}
	big := mk()
	// Equal silicon: delegate cache (320 B) + RAC (32 KB) + dir
	// cache detector bits (~8 KB) ~= 40 KB of SRAM (§3.3.1).
	// Cache geometry needs power-of-two sets; bump ways instead.
	big.L2Bytes = 104 * 1024 // 13 ways' worth at 8K per way
	big.L2Ways = 13

	apps := workload.All()
	var jobs []runner.Job
	for _, wl := range apps {
		jobs = append(jobs,
			s.job("fig8/"+wl.Name+"/base", mk(), wl),
			s.job("fig8/"+wl.Name+"/smarter", mech(mk(), 32*1024, 32, true), wl),
			s.job("fig8/"+wl.Name+"/larger", big, wl))
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for i, wl := range apps {
		baseStats, st, st2 := res[i*3], res[i*3+1], res[i*3+2]
		rows = append(rows,
			Fig8Row{wl.Name, "Base (64K L2)", baseStats.ExecCycles, 1},
			Fig8Row{wl.Name, "Smarter (64K L2 + deledc + RAC)",
				st.ExecCycles, ratio(baseStats.ExecCycles, st.ExecCycles)},
			Fig8Row{wl.Name, "Larger (104K L2)",
				st2.ExecCycles, ratio(baseStats.ExecCycles, st2.ExecCycles)})
	}
	return rows, nil
}

func ratio(base, v uint64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// Fig9Row is one point of the intervention-delay sensitivity sweep.
type Fig9Row struct {
	App        string
	Delay      string
	Cycles     uint64
	Normalized float64 // vs the 5-cycle delay, as in Figure 9
}

// Fig9Delays are the swept intervention delays; ^0 encodes "infinite".
func Fig9Delays() []sim.Time {
	return []sim.Time{5, 50, 500, 5_000, 50_000, 500_000, core.NoIntervention}
}

func delayLabel(d sim.Time) string {
	if d == core.NoIntervention {
		return "Infinite"
	}
	return fmt.Sprintf("%d", uint64(d))
}

// Fig9 sweeps the delayed-intervention interval for every workload on the
// small configuration, reporting execution time normalized to the 5-cycle
// point exactly as the paper plots it.
func Fig9(opts Options) ([]Fig9Row, error) { return NewSession(opts).Fig9() }

// Fig9 runs the intervention-delay sweep on this session.
func (s *Session) Fig9() ([]Fig9Row, error) {
	delays := Fig9Delays()
	apps := workload.All()

	var jobs []runner.Job
	for _, wl := range apps {
		for _, d := range delays {
			cfg := mech(core.DefaultConfig(), 32*1024, 32, true)
			cfg.Nodes = s.Opts.Nodes
			cfg.InterventionDelay = d
			jobs = append(jobs, s.job("fig9/"+wl.Name+"/"+delayLabel(d), cfg, wl))
		}
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for i, wl := range apps {
		first := res[i*len(delays)].ExecCycles // the 5-cycle point
		for j, d := range delays {
			st := res[i*len(delays)+j]
			rows = append(rows, Fig9Row{wl.Name, delayLabel(d), st.ExecCycles,
				float64(st.ExecCycles) / float64(first)})
		}
	}
	return rows, nil
}

// Fig10Row is one point of the hop-latency sweep (Appbt, Figure 10).
type Fig10Row struct {
	HopNsec    int
	BaseCycles uint64
	MechCycles uint64
	Speedup    float64
}

// Fig10 sweeps network hop latency from 25 to 200 ns for Appbt, comparing
// the baseline with a 32-entry delegate cache system whose RAC is large
// enough for Appbt's consumer inflow. (The paper's Figure 10 reports 24-28%
// speedups for Appbt, which its own Figure 7 only ever shows for the
// large-RAC configurations — its 32K-RAC Appbt gains 8% — so we sweep the
// configuration its Figure 10 numbers are actually consistent with.)
func Fig10(opts Options) ([]Fig10Row, error) { return NewSession(opts).Fig10() }

// Fig10 runs the hop-latency sweep on this session.
func (s *Session) Fig10() ([]Fig10Row, error) {
	wl, _ := workload.ByName("appbt")
	hops := []int{25, 50, 100, 200}

	var jobs []runner.Job
	for _, ns := range hops {
		hop := sim.Time(ns * 2) // 2 GHz: 1 ns = 2 cycles
		base := core.DefaultConfig()
		base.Nodes = s.Opts.Nodes
		base.Network.HopLatency = hop
		mcfg := mech(base, 1024*1024, 32, true)
		jobs = append(jobs,
			s.job(fmt.Sprintf("fig10/%dns/base", ns), base, wl),
			s.job(fmt.Sprintf("fig10/%dns/mech", ns), mcfg, wl))
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for i, ns := range hops {
		bst, mst := res[i*2], res[i*2+1]
		rows = append(rows, Fig10Row{ns, bst.ExecCycles, mst.ExecCycles,
			ratio(bst.ExecCycles, mst.ExecCycles)})
	}
	return rows, nil
}

// SweepRow is one point of the Figure 11/12 structure-size sweeps.
type SweepRow struct {
	Config   string
	Cycles   uint64
	Messages uint64
	Speedup  float64
	MsgRatio float64
	Undelegs uint64
	UpdAcc   float64
}

// sweepPoint is one mechanism sizing in a Figure 11/12 sweep.
type sweepPoint struct {
	entries int
	rac     int
	label   string
}

// sweep runs a baseline plus a series of mechanism sizings for one
// workload and normalizes each point to the baseline.
func (s *Session) sweep(figure, app string, pts []sweepPoint) ([]SweepRow, error) {
	wl, err := workload.Lookup(app)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes

	jobs := []runner.Job{s.job(figure+"/"+app+"/base", base, wl)}
	for _, p := range pts {
		jobs = append(jobs, s.job(figure+"/"+app+"/"+p.label,
			mech(base, p.rac, p.entries, true), wl))
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	bst := res[0]
	rows := []SweepRow{{Config: "Base (32K RAC)", Cycles: bst.ExecCycles,
		Messages: bst.TotalMessages(), Speedup: 1, MsgRatio: 1}}
	for i, p := range pts {
		st := res[i+1]
		rows = append(rows, SweepRow{p.label, st.ExecCycles, st.TotalMessages(),
			ratio(bst.ExecCycles, st.ExecCycles),
			float64(st.TotalMessages()) / float64(bst.TotalMessages()),
			st.TotalUndelegations(), st.UpdateAccuracy()})
	}
	return rows, nil
}

// Fig11 sweeps the delegate-cache size for MG (32..1K entries at 32K RAC,
// plus the 1K/1M point), normalized to the baseline.
func Fig11(opts Options) ([]SweepRow, error) { return NewSession(opts).Fig11() }

// Fig11 runs the delegate-cache size sweep on this session.
func (s *Session) Fig11() ([]SweepRow, error) {
	return s.sweep("fig11", "mg", []sweepPoint{
		{32, 32 * 1024, "32-entry deledc & 32K RAC"},
		{64, 32 * 1024, "64-entry deledc & 32K RAC"},
		{128, 32 * 1024, "128-entry deledc & 32K RAC"},
		{256, 32 * 1024, "256-entry deledc & 32K RAC"},
		{512, 32 * 1024, "512-entry deledc & 32K RAC"},
		{1024, 32 * 1024, "1K-entry deledc & 32K RAC"},
		{1024, 1024 * 1024, "1K-entry deledc & 1M RAC"},
	})
}

// Fig12 sweeps the RAC size for Appbt (32K..1M at 32 entries, plus the
// 1K/1M point), normalized to the baseline.
func Fig12(opts Options) ([]SweepRow, error) { return NewSession(opts).Fig12() }

// Fig12 runs the RAC size sweep on this session.
func (s *Session) Fig12() ([]SweepRow, error) {
	return s.sweep("fig12", "appbt", []sweepPoint{
		{32, 32 * 1024, "32-entry deledc & 32K RAC"},
		{32, 64 * 1024, "32-entry deledc & 64K RAC"},
		{32, 128 * 1024, "32-entry deledc & 128K RAC"},
		{32, 256 * 1024, "32-entry deledc & 256K RAC"},
		{32, 512 * 1024, "32-entry deledc & 512K RAC"},
		{32, 1024 * 1024, "32-entry deledc & 1M RAC"},
		{1024, 1024 * 1024, "1K-entry deledc & 1M RAC"},
	})
}

// AblationRow compares delegation-only against the baseline (§3.2: "the
// benefit of turning 3-hop misses into 2-hop misses roughly balanced out
// the overhead of delegation ... within 1% of the baseline").
type AblationRow struct {
	App          string
	BaseCycles   uint64
	DelegOnly    uint64
	DelegUpd     uint64
	DelegSpeedup float64
	FullSpeedup  float64
}

// Ablation runs every workload under baseline, delegation-only and
// delegation+updates on the small configuration.
func Ablation(opts Options) ([]AblationRow, error) { return NewSession(opts).Ablation() }

// Ablation runs the §3.2 comparison on this session.
func (s *Session) Ablation() ([]AblationRow, error) {
	base := core.DefaultConfig()
	base.Nodes = s.Opts.Nodes
	apps := workload.All()

	var jobs []runner.Job
	for _, wl := range apps {
		jobs = append(jobs,
			s.job("ablation/"+wl.Name+"/base", base, wl),
			s.job("ablation/"+wl.Name+"/deleg-only", mech(base, 32*1024, 32, false), wl),
			s.job("ablation/"+wl.Name+"/deleg-upd", mech(base, 32*1024, 32, true), wl))
	}
	res, err := s.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, wl := range apps {
		bst, dst, ust := res[i*3], res[i*3+1], res[i*3+2]
		rows = append(rows, AblationRow{wl.Name, bst.ExecCycles, dst.ExecCycles,
			ust.ExecCycles, ratio(bst.ExecCycles, dst.ExecCycles),
			ratio(bst.ExecCycles, ust.ExecCycles)})
	}
	return rows, nil
}
