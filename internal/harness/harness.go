// Package harness regenerates every table and figure of the paper's
// evaluation section: the six machine configurations of Figure 7, the
// equal-silicon comparison of Figure 8, the intervention-delay sweep of
// Figure 9, the hop-latency sweep of Figure 10, the delegate-cache and RAC
// size sweeps of Figures 11 and 12, the consumer-count distribution of
// Table 3, and the delegation-only ablation discussed in §3.2.
package harness

import (
	"fmt"

	"pccsim/internal/core"
	"pccsim/internal/cpu"
	"pccsim/internal/node"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

// Options scales a harness run.
type Options struct {
	Nodes int // processors (16 in the paper)
	Scale int // workload problem-size multiplier
	Iters int // workload iteration override (0 = per-workload default)
}

// DefaultOptions mirrors the paper's 16-processor system at the scaled
// problem sizes of DESIGN.md.
func DefaultOptions() Options { return Options{Nodes: 16, Scale: 1} }

func (o Options) params() workload.Params {
	return workload.Params{Nodes: o.Nodes, Scale: o.Scale, Iters: o.Iters}
}

// ConfigSpec is one machine configuration under study.
type ConfigSpec struct {
	Label   string
	RAC     int  // RAC bytes (0 = none)
	Deledc  int  // delegate-cache entries (0 = none)
	Updates bool // speculative updates enabled
	Mutate  func(*core.Config)
}

// Apply produces the concrete configuration.
func (s ConfigSpec) Apply(base core.Config) core.Config {
	cfg := base.WithMechanisms(s.RAC, s.Deledc, s.Updates)
	if s.Mutate != nil {
		s.Mutate(&cfg)
	}
	return cfg
}

// Fig7Configs are the six systems of Figure 7, in the paper's legend
// order: baseline, RAC only, and the four delegate-cache/RAC pairings
// (all four include directory delegation and selective updates).
func Fig7Configs() []ConfigSpec {
	return []ConfigSpec{
		{Label: "Base"},
		{Label: "32K RAC", RAC: 32 * 1024},
		{Label: "32-entry deledc & 32K RAC", RAC: 32 * 1024, Deledc: 32, Updates: true},
		{Label: "1K-entry deledc & 1M RAC", RAC: 1024 * 1024, Deledc: 1024, Updates: true},
		{Label: "1K-entry deledc & 32K RAC", RAC: 32 * 1024, Deledc: 1024, Updates: true},
		{Label: "32-entry deledc & 1M RAC", RAC: 1024 * 1024, Deledc: 32, Updates: true},
	}
}

// Run executes one workload on one configuration and returns its stats.
func Run(cfg core.Config, wl *workload.Workload, p workload.Params) (*stats.Stats, error) {
	m, err := node.New(cfg)
	if err != nil {
		return nil, err
	}
	ops := wl.Build(p)
	streams := make([]cpu.Stream, len(ops))
	for i := range ops {
		streams[i] = &cpu.SliceStream{Ops: ops[i]}
	}
	return m.Run(streams)
}

// MustRun is Run for harness-internal static configurations.
func MustRun(cfg core.Config, wl *workload.Workload, p workload.Params) *stats.Stats {
	st, err := Run(cfg, wl, p)
	if err != nil {
		panic(fmt.Sprintf("harness: %s on %d nodes: %v", wl.Name, cfg.Nodes, err))
	}
	return st
}

// Row is one (application, configuration) measurement normalized to that
// application's baseline, matching Figure 7's three stacked plots.
type Row struct {
	App    string
	Config string

	Cycles       uint64
	RemoteMisses uint64
	Messages     uint64
	Bytes        uint64

	Speedup   float64 // baseline cycles / this config's cycles
	MsgRatio  float64 // messages / baseline messages
	MissRatio float64 // remote misses / baseline remote misses
	UpdateAcc float64
	Delegs    uint64
	Undelegs  uint64
	NackCount uint64
}

// Fig7 runs every workload across the six Figure 7 configurations.
func Fig7(opts Options) []Row {
	var rows []Row
	base := core.DefaultConfig()
	base.Nodes = opts.Nodes
	for _, wl := range workload.All() {
		var baseline *stats.Stats
		for _, spec := range Fig7Configs() {
			st := MustRun(spec.Apply(base), wl, opts.params())
			if baseline == nil {
				baseline = st
			}
			rows = append(rows, makeRow(wl.Name, spec.Label, st, baseline))
		}
	}
	return rows
}

func makeRow(app, label string, st, baseline *stats.Stats) Row {
	r := Row{
		App:          app,
		Config:       label,
		Cycles:       st.ExecCycles,
		RemoteMisses: st.RemoteMisses(),
		Messages:     st.TotalMessages(),
		Bytes:        st.TotalBytes(),
		UpdateAcc:    st.UpdateAccuracy(),
		Delegs:       st.Delegations,
		Undelegs:     st.TotalUndelegations(),
		NackCount:    st.Nacks(),
	}
	if baseline != nil && baseline.ExecCycles > 0 {
		r.Speedup = float64(baseline.ExecCycles) / float64(st.ExecCycles)
	}
	if baseline != nil && baseline.TotalMessages() > 0 {
		r.MsgRatio = float64(st.TotalMessages()) / float64(baseline.TotalMessages())
	}
	if baseline != nil && baseline.RemoteMisses() > 0 {
		r.MissRatio = float64(st.RemoteMisses()) / float64(baseline.RemoteMisses())
	}
	return r
}

// GeoMeanSpeedup aggregates a config's speedups across apps, the way the
// paper reports its headline numbers ("geometric mean speedup ... 21%").
func GeoMeanSpeedup(rows []Row, config string) float64 {
	prod := 1.0
	n := 0
	for _, r := range rows {
		if r.Config == config && r.Speedup > 0 {
			prod *= r.Speedup
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return pow(prod, 1/float64(n))
}

// MeanRatio averages a ratio column for a config (arithmetic mean, as the
// paper uses for traffic and remote-miss reductions).
func MeanRatio(rows []Row, config string, f func(Row) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if r.Config == config {
			sum += f(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func pow(x, y float64) float64 {
	// math.Pow without importing math in several files; tiny wrapper.
	return mathPow(x, y)
}

// Table3 measures the consumer-count distribution per application on the
// large configuration (the detector needs delegation on to track and
// classify producer-consumer lines).
func Table3(opts Options) map[string][5]float64 {
	base := core.DefaultConfig()
	base.Nodes = opts.Nodes
	cfg := base.WithMechanisms(1024*1024, 1024, true)
	out := make(map[string][5]float64)
	for _, wl := range workload.All() {
		st := MustRun(cfg, wl, opts.params())
		out[wl.Name] = st.ConsumerDistPercent()
	}
	return out
}

// Fig8Row is one bar of the equal-silicon-area comparison.
type Fig8Row struct {
	App     string
	Config  string
	Cycles  uint64
	Speedup float64
}

// Fig8 compares base (1 MB L2), base plus the small mechanisms (32-entry
// delegate cache + 32 KB RAC), and an equal-area 1.04 MB L2 with no
// mechanisms. The paper halves the Table 1 L2 for this experiment; we use
// a 64 KB / 66.5 KB pair scaled to our problem sizes (the comparison needs
// the working set to put pressure on L2 capacity).
func Fig8(opts Options) []Fig8Row {
	var rows []Fig8Row
	mk := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Nodes = opts.Nodes
		cfg.L2Bytes = 64 * 1024
		return cfg
	}
	for _, wl := range workload.All() {
		base := mk()
		baseStats := MustRun(base, wl, opts.params())
		rows = append(rows, Fig8Row{wl.Name, "Base (64K L2)", baseStats.ExecCycles, 1})

		smart := mk().WithMechanisms(32*1024, 32, true)
		st := MustRun(smart, wl, opts.params())
		rows = append(rows, Fig8Row{wl.Name, "Smarter (64K L2 + deledc + RAC)",
			st.ExecCycles, ratio(baseStats.ExecCycles, st.ExecCycles)})

		big := mk()
		// Equal silicon: delegate cache (320 B) + RAC (32 KB) + dir
		// cache detector bits (~8 KB) ~= 40 KB of SRAM (§3.3.1).
		big.L2Bytes = 64*1024 + 40*1024
		// Cache geometry needs power-of-two sets; bump ways instead.
		big.L2Bytes = 104 * 1024 // 13 ways' worth at 8K per way
		big.L2Ways = 13
		st2 := MustRun(big, wl, opts.params())
		rows = append(rows, Fig8Row{wl.Name, "Larger (104K L2)",
			st2.ExecCycles, ratio(baseStats.ExecCycles, st2.ExecCycles)})
	}
	return rows
}

func ratio(base, v uint64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// Fig9Row is one point of the intervention-delay sensitivity sweep.
type Fig9Row struct {
	App        string
	Delay      string
	Cycles     uint64
	Normalized float64 // vs the 5-cycle delay, as in Figure 9
}

// Fig9Delays are the swept intervention delays; ^0 encodes "infinite".
func Fig9Delays() []sim.Time {
	return []sim.Time{5, 50, 500, 5_000, 50_000, 500_000, core.NoIntervention}
}

func delayLabel(d sim.Time) string {
	if d == core.NoIntervention {
		return "Infinite"
	}
	return fmt.Sprintf("%d", uint64(d))
}

// Fig9 sweeps the delayed-intervention interval for every workload on the
// small configuration, reporting execution time normalized to the 5-cycle
// point exactly as the paper plots it.
func Fig9(opts Options) []Fig9Row {
	var rows []Fig9Row
	for _, wl := range workload.All() {
		var first uint64
		for _, d := range Fig9Delays() {
			cfg := core.DefaultConfig().WithMechanisms(32*1024, 32, true)
			cfg.Nodes = opts.Nodes
			cfg.InterventionDelay = d
			st := MustRun(cfg, wl, opts.params())
			if first == 0 {
				first = st.ExecCycles
			}
			rows = append(rows, Fig9Row{wl.Name, delayLabel(d), st.ExecCycles,
				float64(st.ExecCycles) / float64(first)})
		}
	}
	return rows
}

// Fig10Row is one point of the hop-latency sweep (Appbt, Figure 10).
type Fig10Row struct {
	HopNsec    int
	BaseCycles uint64
	MechCycles uint64
	Speedup    float64
}

// Fig10 sweeps network hop latency from 25 to 200 ns for Appbt, comparing
// the baseline with a 32-entry delegate cache system whose RAC is large
// enough for Appbt's consumer inflow. (The paper's Figure 10 reports 24-28%
// speedups for Appbt, which its own Figure 7 only ever shows for the
// large-RAC configurations — its 32K-RAC Appbt gains 8% — so we sweep the
// configuration its Figure 10 numbers are actually consistent with.)
func Fig10(opts Options) []Fig10Row {
	wl, _ := workload.ByName("appbt")
	var rows []Fig10Row
	for _, ns := range []int{25, 50, 100, 200} {
		hop := sim.Time(ns * 2) // 2 GHz: 1 ns = 2 cycles
		base := core.DefaultConfig()
		base.Nodes = opts.Nodes
		base.Network.HopLatency = hop
		bst := MustRun(base, wl, opts.params())

		mech := base.WithMechanisms(1024*1024, 32, true)
		mst := MustRun(mech, wl, opts.params())
		rows = append(rows, Fig10Row{ns, bst.ExecCycles, mst.ExecCycles,
			ratio(bst.ExecCycles, mst.ExecCycles)})
	}
	return rows
}

// SweepRow is one point of the Figure 11/12 structure-size sweeps.
type SweepRow struct {
	Config   string
	Cycles   uint64
	Messages uint64
	Speedup  float64
	MsgRatio float64
	Undelegs uint64
	UpdAcc   float64
}

// Fig11 sweeps the delegate-cache size for MG (32..1K entries at 32K RAC,
// plus the 1K/1M point), normalized to the baseline.
func Fig11(opts Options) []SweepRow {
	wl, _ := workload.ByName("mg")
	base := core.DefaultConfig()
	base.Nodes = opts.Nodes
	bst := MustRun(base, wl, opts.params())

	rows := []SweepRow{{Config: "Base (32K RAC)", Cycles: bst.ExecCycles,
		Messages: bst.TotalMessages(), Speedup: 1, MsgRatio: 1}}
	type pt struct {
		entries int
		rac     int
		label   string
	}
	pts := []pt{
		{32, 32 * 1024, "32-entry deledc & 32K RAC"},
		{64, 32 * 1024, "64-entry deledc & 32K RAC"},
		{128, 32 * 1024, "128-entry deledc & 32K RAC"},
		{256, 32 * 1024, "256-entry deledc & 32K RAC"},
		{512, 32 * 1024, "512-entry deledc & 32K RAC"},
		{1024, 32 * 1024, "1K-entry deledc & 32K RAC"},
		{1024, 1024 * 1024, "1K-entry deledc & 1M RAC"},
	}
	for _, p := range pts {
		cfg := base.WithMechanisms(p.rac, p.entries, true)
		st := MustRun(cfg, wl, opts.params())
		rows = append(rows, SweepRow{p.label, st.ExecCycles, st.TotalMessages(),
			ratio(bst.ExecCycles, st.ExecCycles),
			float64(st.TotalMessages()) / float64(bst.TotalMessages()),
			st.TotalUndelegations(), st.UpdateAccuracy()})
	}
	return rows
}

// Fig12 sweeps the RAC size for Appbt (32K..1M at 32 entries, plus the
// 1K/1M point), normalized to the baseline.
func Fig12(opts Options) []SweepRow {
	wl, _ := workload.ByName("appbt")
	base := core.DefaultConfig()
	base.Nodes = opts.Nodes
	bst := MustRun(base, wl, opts.params())

	rows := []SweepRow{{Config: "Base (32K RAC)", Cycles: bst.ExecCycles,
		Messages: bst.TotalMessages(), Speedup: 1, MsgRatio: 1}}
	type pt struct {
		entries int
		rac     int
		label   string
	}
	pts := []pt{
		{32, 32 * 1024, "32-entry deledc & 32K RAC"},
		{32, 64 * 1024, "32-entry deledc & 64K RAC"},
		{32, 128 * 1024, "32-entry deledc & 128K RAC"},
		{32, 256 * 1024, "32-entry deledc & 256K RAC"},
		{32, 512 * 1024, "32-entry deledc & 512K RAC"},
		{32, 1024 * 1024, "32-entry deledc & 1M RAC"},
		{1024, 1024 * 1024, "1K-entry deledc & 1M RAC"},
	}
	for _, p := range pts {
		cfg := base.WithMechanisms(p.rac, p.entries, true)
		st := MustRun(cfg, wl, opts.params())
		rows = append(rows, SweepRow{p.label, st.ExecCycles, st.TotalMessages(),
			ratio(bst.ExecCycles, st.ExecCycles),
			float64(st.TotalMessages()) / float64(bst.TotalMessages()),
			st.TotalUndelegations(), st.UpdateAccuracy()})
	}
	return rows
}

// AblationRow compares delegation-only against the baseline (§3.2: "the
// benefit of turning 3-hop misses into 2-hop misses roughly balanced out
// the overhead of delegation ... within 1% of the baseline").
type AblationRow struct {
	App          string
	BaseCycles   uint64
	DelegOnly    uint64
	DelegUpd     uint64
	DelegSpeedup float64
	FullSpeedup  float64
}

// Ablation runs every workload under baseline, delegation-only and
// delegation+updates on the small configuration.
func Ablation(opts Options) []AblationRow {
	var rows []AblationRow
	for _, wl := range workload.All() {
		base := core.DefaultConfig()
		base.Nodes = opts.Nodes
		bst := MustRun(base, wl, opts.params())

		dl := base.WithMechanisms(32*1024, 32, false)
		dst := MustRun(dl, wl, opts.params())

		du := base.WithMechanisms(32*1024, 32, true)
		ust := MustRun(du, wl, opts.params())

		rows = append(rows, AblationRow{wl.Name, bst.ExecCycles, dst.ExecCycles,
			ust.ExecCycles, ratio(bst.ExecCycles, dst.ExecCycles),
			ratio(bst.ExecCycles, ust.ExecCycles)})
	}
	return rows
}
