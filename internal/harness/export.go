package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Exportable experiment results: every experiment's rows can be written as
// CSV (for plotting the figures) or JSON (for downstream tooling).

// WriteFig7CSV renders Figure 7's rows.
func WriteFig7CSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "config", "cycles", "speedup",
		"messages", "msg_ratio", "remote_misses", "miss_ratio",
		"update_accuracy", "delegations", "undelegations", "nacks"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App, r.Config,
			strconv.FormatUint(r.Cycles, 10),
			f(r.Speedup),
			strconv.FormatUint(r.Messages, 10),
			f(r.MsgRatio),
			strconv.FormatUint(r.RemoteMisses, 10),
			f(r.MissRatio),
			f(r.UpdateAcc),
			strconv.FormatUint(r.Delegs, 10),
			strconv.FormatUint(r.Undelegs, 10),
			strconv.FormatUint(r.NackCount, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV renders a Figure 11/12 sweep.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "cycles", "messages", "speedup",
		"msg_ratio", "undelegations", "update_accuracy"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Config,
			strconv.FormatUint(r.Cycles, 10),
			strconv.FormatUint(r.Messages, 10),
			f(r.Speedup), f(r.MsgRatio),
			strconv.FormatUint(r.Undelegs, 10),
			f(r.UpdAcc),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig9CSV renders the intervention-delay sweep.
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "delay", "cycles", "normalized"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.App, r.Delay,
			strconv.FormatUint(r.Cycles, 10), f(r.Normalized)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV renders the hop-latency sweep.
func WriteFig10CSV(w io.Writer, rows []Fig10Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hop_ns", "base_cycles", "mech_cycles", "speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{strconv.Itoa(r.HopNsec),
			strconv.FormatUint(r.BaseCycles, 10),
			strconv.FormatUint(r.MechCycles, 10), f(r.Speedup)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report bundles every experiment for one JSON document.
type Report struct {
	Options    Options               `json:"options"`
	Fig7       []Row                 `json:"fig7,omitempty"`
	Fig8       []Fig8Row             `json:"fig8,omitempty"`
	Fig9       []Fig9Row             `json:"fig9,omitempty"`
	Fig10      []Fig10Row            `json:"fig10,omitempty"`
	Fig11      []SweepRow            `json:"fig11,omitempty"`
	Fig12      []SweepRow            `json:"fig12,omitempty"`
	Table3     map[string][5]float64 `json:"table3,omitempty"`
	Ablation   []AblationRow         `json:"ablation,omitempty"`
	Extensions []ExtRow              `json:"extensions,omitempty"`
}

// RunAll executes every experiment and bundles the results.
func RunAll(opts Options) *Report {
	return &Report{
		Options:    opts,
		Fig7:       Fig7(opts),
		Fig8:       Fig8(opts),
		Fig9:       Fig9(opts),
		Fig10:      Fig10(opts),
		Fig11:      Fig11(opts),
		Fig12:      Fig12(opts),
		Table3:     Table3(opts),
		Ablation:   Ablation(opts),
		Extensions: Extensions(opts),
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
