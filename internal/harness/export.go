package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"pccsim/internal/workload"
)

// Exportable experiment results: every experiment's rows can be written as
// CSV (for plotting the figures) or JSON (for downstream tooling).

// WriteFig7CSV renders Figure 7's rows.
func WriteFig7CSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "config", "cycles", "speedup",
		"messages", "msg_ratio", "remote_misses", "miss_ratio",
		"update_accuracy", "delegations", "undelegations", "nacks"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App, r.Config,
			strconv.FormatUint(r.Cycles, 10),
			f(r.Speedup),
			strconv.FormatUint(r.Messages, 10),
			f(r.MsgRatio),
			strconv.FormatUint(r.RemoteMisses, 10),
			f(r.MissRatio),
			f(r.UpdateAcc),
			strconv.FormatUint(r.Delegs, 10),
			strconv.FormatUint(r.Undelegs, 10),
			strconv.FormatUint(r.NackCount, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV renders a Figure 11/12 sweep.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "cycles", "messages", "speedup",
		"msg_ratio", "undelegations", "update_accuracy"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Config,
			strconv.FormatUint(r.Cycles, 10),
			strconv.FormatUint(r.Messages, 10),
			f(r.Speedup), f(r.MsgRatio),
			strconv.FormatUint(r.Undelegs, 10),
			f(r.UpdAcc),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig8CSV renders the equal-silicon-area comparison.
func WriteFig8CSV(w io.Writer, rows []Fig8Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "config", "cycles", "speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.App, r.Config,
			strconv.FormatUint(r.Cycles, 10), f(r.Speedup)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV renders the consumer-count distribution, rows in the
// paper's application order.
func WriteTable3CSV(w io.Writer, dist map[string][5]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "pct_1", "pct_2", "pct_3", "pct_4", "pct_4plus"}); err != nil {
		return err
	}
	for _, wl := range workload.All() {
		d, ok := dist[wl.Name]
		if !ok {
			continue
		}
		if err := cw.Write([]string{wl.Name,
			f(d[0]), f(d[1]), f(d[2]), f(d[3]), f(d[4])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAblationCSV renders the §3.2 delegation-only comparison.
func WriteAblationCSV(w io.Writer, rows []AblationRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "base_cycles", "deleg_only_cycles",
		"deleg_upd_cycles", "deleg_speedup", "full_speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.App,
			strconv.FormatUint(r.BaseCycles, 10),
			strconv.FormatUint(r.DelegOnly, 10),
			strconv.FormatUint(r.DelegUpd, 10),
			f(r.DelegSpeedup), f(r.FullSpeedup)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig9CSV renders the intervention-delay sweep.
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "delay", "cycles", "normalized"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.App, r.Delay,
			strconv.FormatUint(r.Cycles, 10), f(r.Normalized)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV renders the hop-latency sweep.
func WriteFig10CSV(w io.Writer, rows []Fig10Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hop_ns", "base_cycles", "mech_cycles", "speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{strconv.Itoa(r.HopNsec),
			strconv.FormatUint(r.BaseCycles, 10),
			strconv.FormatUint(r.MechCycles, 10), f(r.Speedup)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report bundles every experiment for one JSON document.
type Report struct {
	Options    Options               `json:"options"`
	Fig7       []Row                 `json:"fig7,omitempty"`
	Fig8       []Fig8Row             `json:"fig8,omitempty"`
	Fig9       []Fig9Row             `json:"fig9,omitempty"`
	Fig10      []Fig10Row            `json:"fig10,omitempty"`
	Fig11      []SweepRow            `json:"fig11,omitempty"`
	Fig12      []SweepRow            `json:"fig12,omitempty"`
	Table3     map[string][5]float64 `json:"table3,omitempty"`
	Ablation   []AblationRow         `json:"ablation,omitempty"`
	Extensions []ExtRow              `json:"extensions,omitempty"`
	Compare    []CompareRow          `json:"compare,omitempty"`
}

// RunAll executes every experiment on one shared session — so cells that
// recur across figures (the Base configuration, the small and large
// mechanism configurations) simulate exactly once — and bundles the
// results. The report is deterministic: for fixed Options it is
// byte-identical as JSON no matter how many workers ran it.
func RunAll(opts Options) (*Report, error) {
	s := NewSession(opts)
	rep := &Report{Options: opts}
	var err error
	if rep.Fig7, err = s.Fig7(); err != nil {
		return nil, err
	}
	if rep.Fig8, err = s.Fig8(); err != nil {
		return nil, err
	}
	if rep.Fig9, err = s.Fig9(); err != nil {
		return nil, err
	}
	if rep.Fig10, err = s.Fig10(); err != nil {
		return nil, err
	}
	if rep.Fig11, err = s.Fig11(); err != nil {
		return nil, err
	}
	if rep.Fig12, err = s.Fig12(); err != nil {
		return nil, err
	}
	if rep.Table3, err = s.Table3(); err != nil {
		return nil, err
	}
	if rep.Ablation, err = s.Ablation(); err != nil {
		return nil, err
	}
	if rep.Extensions, err = s.Extensions(); err != nil {
		return nil, err
	}
	if rep.Compare, err = s.Compare(); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
