package harness

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"pccsim/internal/core"
	"pccsim/internal/stats"
	"pccsim/internal/workload"
)

func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// WriteRunReport renders the canonical single-run report: the header line
// followed by the full stats dump. The pccsim CLI and the serve result
// path both render through here, which is what makes an HTTP-submitted
// run's body byte-identical to the equivalent CLI invocation's stdout.
func WriteRunReport(w io.Writer, workload string, nodes, scale int, st *stats.Stats) {
	fmt.Fprintf(w, "workload %s on %d nodes (scale %d)\n", workload, nodes, scale)
	st.Dump(w)
}

// PrintTable1 renders the system configuration (the paper's Table 1).
func PrintTable1(w io.Writer, cfg core.Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Parameter\tValue")
	fmt.Fprintf(tw, "Processors\t%d nodes, in-order, %d outstanding stores, 2GHz\n", cfg.Nodes, cfg.MaxStores)
	fmt.Fprintf(tw, "L1 D-cache\t%d-way, %dKB, %dB lines, %d-cycle lat.\n",
		cfg.L1Ways, cfg.L1Bytes/1024, cfg.L1LineBytes, cfg.L1Latency)
	fmt.Fprintf(tw, "L2 cache\t%d-way, %dKB, %dB lines, %d-cycle lat.\n",
		cfg.L2Ways, cfg.L2Bytes/1024, cfg.L2LineBytes, cfg.L2Latency)
	fmt.Fprintf(tw, "Directory cache\t%d entries (+8b detector per entry)\n", cfg.DirCacheEntries)
	fmt.Fprintf(tw, "DRAM\t%d processor cycles latency\n", cfg.DRAMLatency)
	fmt.Fprintf(tw, "Network\t%d processor cycles latency per hop, fat tree radix %d\n",
		cfg.Network.HopLatency, cfg.Network.Radix)
	fmt.Fprintf(tw, "RAC\t%dKB (0 = absent)\n", cfg.RACBytes/1024)
	fmt.Fprintf(tw, "Delegate cache\t%d entries (0 = absent)\n", cfg.DelegateEntries)
	fmt.Fprintf(tw, "Speculative updates\t%v (intervention delay %d cycles)\n",
		cfg.EnableUpdates, cfg.InterventionDelay)
	tw.Flush()
}

// PrintTable2 renders the application data sets (the paper's Table 2,
// with our scaled problem sizes alongside the originals).
func PrintTable2(w io.Writer, opts Options) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tPaper problem size\tThis reproduction")
	for _, wl := range workload.All() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", wl.Name, wl.PaperSize, wl.OurSize(opts.params()))
	}
	tw.Flush()
}

// PrintTable3 renders the consumer-count distribution.
func PrintTable3(w io.Writer, dist map[string][5]float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\t1\t2\t3\t4\t4+   (% of producer-consumer write rounds)")
	for _, wl := range workload.All() {
		d := dist[wl.Name]
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			wl.Name, d[0], d[1], d[2], d[3], d[4])
	}
	tw.Flush()
}

// PrintFig7 renders the three Figure 7 panels: speedup, normalized network
// messages, and normalized remote misses.
func PrintFig7(w io.Writer, rows []Row) {
	configs := Fig7Configs()
	apps := workload.All()

	panel := func(title string, f func(Row) float64) {
		fmt.Fprintf(w, "\n%s\n", title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Config")
		for _, a := range apps {
			fmt.Fprintf(tw, "\t%s", a.Name)
		}
		fmt.Fprintln(tw)
		for _, c := range configs {
			fmt.Fprint(tw, c.Label)
			for _, a := range apps {
				for _, r := range rows {
					if r.App == a.Name && r.Config == c.Label {
						fmt.Fprintf(tw, "\t%.3f", f(r))
					}
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	panel("Speedup (relative to Base)", func(r Row) float64 { return r.Speedup })
	panel("Network messages (normalized to Base)", func(r Row) float64 { return r.MsgRatio })
	panel("Remote misses (normalized to Base)", func(r Row) float64 { return r.MissRatio })

	fmt.Fprintln(w)
	for _, c := range configs[1:] {
		fmt.Fprintf(w, "%-28s geo-mean speedup %.3f, mean traffic ratio %.3f, mean remote-miss ratio %.3f\n",
			c.Label, GeoMeanSpeedup(rows, c.Label),
			MeanRatio(rows, c.Label, func(r Row) float64 { return r.MsgRatio }),
			MeanRatio(rows, c.Label, func(r Row) float64 { return r.MissRatio }))
	}
}

// PrintFig8 renders the equal-silicon-area comparison.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tConfig\tCycles\tSpeedup vs base")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\n", r.App, r.Config, r.Cycles, r.Speedup)
	}
	tw.Flush()
}

// PrintFig9 renders the intervention-delay sensitivity matrix.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Application")
	for _, d := range Fig9Delays() {
		fmt.Fprintf(tw, "\t%s", delayLabel(d))
	}
	fmt.Fprintln(tw, "\t(execution time normalized to 5-cycle delay)")
	for _, wl := range workload.All() {
		fmt.Fprint(tw, wl.Name)
		for _, r := range rows {
			if r.App == wl.Name {
				fmt.Fprintf(tw, "\t%.3f", r.Normalized)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PrintFig10 renders the hop-latency sensitivity for Appbt.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Hop latency (ns)\tBase cycles\tMech cycles\tSpeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.3f\n", r.HopNsec, r.BaseCycles, r.MechCycles, r.Speedup)
	}
	tw.Flush()
}

// PrintSweep renders a Figure 11/12 structure-size sweep.
func PrintSweep(w io.Writer, rows []SweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Config\tSpeedup\tMsg ratio\tUndelegations\tUpdate accuracy")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\t%.2f\n",
			r.Config, r.Speedup, r.MsgRatio, r.Undelegs, r.UpdAcc)
	}
	tw.Flush()
}

// PrintAblation renders the delegation-only comparison.
func PrintAblation(w io.Writer, rows []AblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tBase\tDelegation-only\tDeleg+updates\tDeleg speedup\tFull speedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.3f\n",
			r.App, r.BaseCycles, r.DelegOnly, r.DelegUpd, r.DelegSpeedup, r.FullSpeedup)
	}
	tw.Flush()
}
