package obs

import (
	"pccsim/internal/msg"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Metrics aggregates every event a sink has seen. Counters are updated
// live on each Emit, so they stay exact even after the event ring wraps;
// the per-line timelines cover the delegation and update lifecycle only
// (rare events), never per-message state.
type Metrics struct {
	// Events counts every emitted event; ByKind breaks them down.
	Events uint64
	ByKind [NumKinds]uint64

	// Per-message-class traffic accounting, mirroring stats.Stats but
	// derived independently from KindSend events (the two must agree;
	// tests and `pccsim trace` cross-check them).
	MsgCount [msg.NumTypes]uint64
	MsgBytes [msg.NumTypes]uint64

	// Hop accounting: packets and bytes by fat-tree route length
	// (index 1 = same leaf router, 2 = across the root; index 0 unused —
	// self-sends never reach the network).
	HopCount [3]uint64
	HopBytes [3]uint64

	// Miss transactions: starts, ends by stats.MissClass, and the peak
	// number outstanding across all nodes at once.
	MissStarts  uint64
	MissEnds    [stats.NumMissClasses]uint64
	MSHRPeak    uint64
	outstanding uint64

	// Delegation lifecycle (§2.3) and speculative updates (§2.4).
	PCDetects         uint64
	Delegations       uint64
	DelegateInstalls  uint64
	Undelegations     [stats.NumUndelegateReasons]uint64
	UndelegateCommits uint64
	// Interventions by flavour: [0] demand 3-hop at the home, [1] the
	// delayed intervention fired, [2] early consumer read at the
	// delegated home.
	Interventions [3]uint64
	UpdatesPushed uint64
	UpdateHits    uint64
	UpdateWastes  uint64

	// Lines holds the per-line timelines, keyed by line address.
	Lines map[msg.Addr]*Line
}

// Line is the observed lifecycle of one cache line.
type Line struct {
	Addr msg.Addr
	// PCDetected records the first time the home's detector classified
	// the line producer-consumer.
	PCDetected   bool
	PCDetectAt   sim.Time
	// Spans is the delegation history in time order.
	Spans []Span
	// Speculative-update outcomes for this line.
	Pushes, Hits, Wastes uint64
}

// Span is one delegation: home detect -> DELE install at the producer ->
// undelegate (with its §2.3.3 cause) -> commit back at the home. The
// *At fields are valid when the corresponding flag is set; a span whose
// Undelegated flag is clear was still delegated when the run ended.
type Span struct {
	Producer msg.NodeID

	Detected   bool
	DetectedAt sim.Time

	Installed   bool
	InstalledAt sim.Time

	Undelegated   bool
	UndelegatedAt sim.Time
	Cause         stats.UndelegateReason

	Committed   bool
	CommittedAt sim.Time
}

// Complete reports whether the span covers the full
// detect -> DELE -> undelegate sequence.
func (s *Span) Complete() bool { return s.Detected && s.Installed && s.Undelegated }

func (m *Metrics) init() {
	m.Lines = make(map[msg.Addr]*Line)
}

// line returns (allocating if needed) the timeline for addr.
func (m *Metrics) line(addr msg.Addr) *Line {
	l := m.Lines[addr]
	if l == nil {
		l = &Line{Addr: addr}
		m.Lines[addr] = l
	}
	return l
}

// observe folds one event into the aggregates.
func (m *Metrics) observe(e *Event) {
	m.Events++
	m.ByKind[e.Kind]++
	switch e.Kind {
	case KindSend:
		m.MsgCount[e.Msg.Type]++
		m.MsgBytes[e.Msg.Type] += uint64(e.Bytes)
		if int(e.Hops) < len(m.HopCount) {
			m.HopCount[e.Hops]++
			m.HopBytes[e.Hops] += uint64(e.Bytes)
		}
	case KindMissStart:
		m.MissStarts++
		m.outstanding++
		if m.outstanding > m.MSHRPeak {
			m.MSHRPeak = m.outstanding
		}
	case KindMissEnd:
		if int(e.Arg2) < len(m.MissEnds) {
			m.MissEnds[e.Arg2]++
		}
		if m.outstanding > 0 {
			m.outstanding--
		}
	case KindPCDetect:
		m.PCDetects++
		l := m.line(e.Addr)
		if !l.PCDetected {
			l.PCDetected = true
			l.PCDetectAt = e.At
		}
	case KindDelegate:
		m.Delegations++
		l := m.line(e.Addr)
		l.Spans = append(l.Spans, Span{
			Producer: msg.NodeID(e.Arg), Detected: true, DetectedAt: e.At,
		})
	case KindDelegateInstall:
		m.DelegateInstalls++
		if s := m.openSpan(e.Addr, e.Node, func(s *Span) bool { return !s.Installed }); s != nil {
			s.Installed = true
			s.InstalledAt = e.At
		}
	case KindUndelegate:
		if int(e.Arg) < len(m.Undelegations) {
			m.Undelegations[e.Arg]++
		}
		if s := m.openSpan(e.Addr, e.Node, func(s *Span) bool { return !s.Undelegated }); s != nil {
			s.Undelegated = true
			s.UndelegatedAt = e.At
			s.Cause = stats.UndelegateReason(e.Arg)
		}
	case KindUndelegateCommit:
		m.UndelegateCommits++
		if s := m.openSpan(e.Addr, msg.NodeID(e.Arg), func(s *Span) bool { return !s.Committed }); s != nil {
			s.Committed = true
			s.CommittedAt = e.At
		}
	case KindIntervention:
		if int(e.Arg2) < len(m.Interventions) {
			m.Interventions[e.Arg2]++
		}
	case KindUpdatePush:
		m.UpdatesPushed++
		m.line(e.Addr).Pushes++
	case KindUpdateHit:
		m.UpdateHits++
		m.line(e.Addr).Hits++
	case KindUpdateWaste:
		m.UpdateWastes++
		m.line(e.Addr).Wastes++
	}
}

// openSpan finds the earliest span for (addr, producer) still matching
// open, so lifecycle stages attach to their own delegation even when a
// line is re-delegated to the same producer.
func (m *Metrics) openSpan(addr msg.Addr, producer msg.NodeID, open func(*Span) bool) *Span {
	l := m.Lines[addr]
	if l == nil {
		return nil
	}
	for i := range l.Spans {
		if l.Spans[i].Producer == producer && open(&l.Spans[i]) {
			return &l.Spans[i]
		}
	}
	return nil
}

// TotalMessages is the number of packets observed on the wire.
func (m *Metrics) TotalMessages() uint64 {
	var t uint64
	for _, c := range m.MsgCount {
		t += c
	}
	return t
}

// TotalBytes is the observed wire traffic in bytes.
func (m *Metrics) TotalBytes() uint64 {
	var t uint64
	for _, b := range m.MsgBytes {
		t += b
	}
	return t
}

// AvgHops is the mean fat-tree route length per packet — the traffic-cost
// view behind the paper's 3-hop-to-2-hop conversion claim.
func (m *Metrics) AvgHops() float64 {
	var hops, n uint64
	for h, c := range m.HopCount {
		hops += uint64(h) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(hops) / float64(n)
}

// UpdateAccuracy is the fraction of speculative updates that were
// consumed before dying — the y-axis of the paper's §2.4 accuracy
// discussion (Fig. 9's delay sweep trades this against staleness).
func (m *Metrics) UpdateAccuracy() float64 {
	if m.UpdatesPushed == 0 {
		return 0
	}
	return float64(m.UpdateHits) / float64(m.UpdatesPushed)
}

// CompleteDelegations counts full detect -> DELE -> undelegate sequences.
func (m *Metrics) CompleteDelegations() int {
	n := 0
	for _, l := range m.Lines {
		for i := range l.Spans {
			if l.Spans[i].Complete() {
				n++
			}
		}
	}
	return n
}

// TotalUndelegations sums undelegations over the three §2.3.3 causes.
func (m *Metrics) TotalUndelegations() uint64 {
	var t uint64
	for _, u := range m.Undelegations {
		t += u
	}
	return t
}
