package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pccsim/internal/msg"
	"pccsim/internal/sim"
	"pccsim/internal/stats"
)

// Perfetto export: the Chrome trace_event JSON format, readable by
// https://ui.perfetto.dev and chrome://tracing. The document carries two
// processes: "nodes" (one track per hub: message sends, miss spans, MSHR
// occupancy counters) and "lines" (one track per cache line: delegation
// spans with their §2.3.3 cause, update pushes and their fate).
//
// Timestamps are simulated processor cycles written into the format's
// microsecond field — absolute values are exact, only the unit label in
// the UI reads "us" instead of "cycles".

const (
	pidNodes = 1
	pidLines = 2
)

// traceEvent is one record of the trace_event format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto renders the sink's retained events and complete metrics
// as a trace_event JSON document. Instant-level detail (message sends,
// miss spans, MSHR counters) comes from the event ring and covers its
// retention window; delegation spans come from the live metrics and are
// complete for the whole run even if the ring wrapped.
func WritePerfetto(w io.Writer, s *Sink) error {
	events := s.Events()
	m := &s.M

	var out []traceEvent
	emit := func(e traceEvent) { out = append(out, e) }

	// Process/track names.
	emit(traceEvent{Name: "process_name", Ph: "M", Pid: pidNodes,
		Args: map[string]any{"name": "protocol nodes"}})
	emit(traceEvent{Name: "process_name", Ph: "M", Pid: pidLines,
		Args: map[string]any{"name": "cache lines"}})

	nodes := map[int]bool{}
	noteNode := func(n msg.NodeID) {
		if int(n) >= 0 {
			nodes[int(n)] = true
		}
	}
	for i := range events {
		noteNode(events[i].Node)
	}

	// One track per cache line that has lifecycle activity, ordered by
	// address so the layout is deterministic.
	lineTid := map[msg.Addr]int{}
	var lineAddrs []msg.Addr
	for addr := range m.Lines {
		lineAddrs = append(lineAddrs, addr)
	}
	for i := range events {
		if events[i].Kind != KindSend && events[i].Kind != KindMissStart &&
			events[i].Kind != KindMissEnd {
			if _, ok := m.Lines[events[i].Addr]; !ok {
				if _, seen := lineTid[events[i].Addr]; !seen {
					lineTid[events[i].Addr] = 0 // placeholder; assigned below
					lineAddrs = append(lineAddrs, events[i].Addr)
				}
			}
		}
	}
	sort.Slice(lineAddrs, func(i, j int) bool { return lineAddrs[i] < lineAddrs[j] })
	for i, addr := range lineAddrs {
		lineTid[addr] = i
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidLines, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("line %#x", uint64(addr))}})
	}

	var lastTs sim.Time
	for i := range events {
		if events[i].At > lastTs {
			lastTs = events[i].At
		}
	}

	// Node tracks: sends as instants, misses as spans, MSHR counters.
	type missKey struct {
		node msg.NodeID
		addr msg.Addr
	}
	missStart := map[missKey]sim.Time{}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindSend:
			emit(traceEvent{
				Name: e.Msg.Type.String(), Cat: "msg", Ph: "i", S: "t",
				Ts: uint64(e.At), Pid: pidNodes, Tid: int(e.Node),
				Args: map[string]any{
					"addr": fmt.Sprintf("%#x", uint64(e.Addr)),
					"dst":  int(e.Msg.Dst), "bytes": e.Bytes, "hops": e.Hops,
					"v": e.Msg.Version,
				},
			})
		case KindMissStart:
			missStart[missKey{e.Node, e.Addr}] = e.At
			emit(traceEvent{
				Name: "mshr", Ph: "C", Ts: uint64(e.At), Pid: pidNodes, Tid: int(e.Node),
				Args: map[string]any{fmt.Sprintf("node %d outstanding", int(e.Node)): e.Arg},
			})
		case KindMissEnd:
			k := missKey{e.Node, e.Addr}
			if start, ok := missStart[k]; ok {
				delete(missStart, k)
				emit(traceEvent{
					Name: fmt.Sprintf("miss %#x", uint64(e.Addr)),
					Cat:  "miss", Ph: "X", Ts: uint64(start), Dur: uint64(e.At - start),
					Pid: pidNodes, Tid: int(e.Node),
					Args: map[string]any{"class": stats.MissClass(e.Arg2).String()},
				})
			}
			emit(traceEvent{
				Name: "mshr", Ph: "C", Ts: uint64(e.At), Pid: pidNodes, Tid: int(e.Node),
				Args: map[string]any{fmt.Sprintf("node %d outstanding", int(e.Node)): e.Arg},
			})
		default:
			// Lifecycle events land on the line track as instants.
			name := e.Kind.String()
			args := map[string]any{"node": int(e.Node)}
			switch e.Kind {
			case KindUndelegate:
				args["cause"] = stats.UndelegateReason(e.Arg).String()
			case KindUpdatePush:
				args["consumer"] = int(e.Arg)
				args["v"] = e.Arg2
			case KindIntervention:
				args["flavour"] = [...]string{"demand", "delayed", "early-read"}[min(int(e.Arg2), 2)]
			}
			emit(traceEvent{
				Name: name, Cat: "lifecycle", Ph: "i", S: "t",
				Ts: uint64(e.At), Pid: pidLines, Tid: lineTid[e.Addr], Args: args,
			})
		}
	}
	// Misses still outstanding at the end of the window render as spans
	// clamped to the last timestamp.
	for k, start := range missStart {
		emit(traceEvent{
			Name: fmt.Sprintf("miss %#x", uint64(k.addr)),
			Cat:  "miss", Ph: "X", Ts: uint64(start), Dur: uint64(lastTs - start),
			Pid: pidNodes, Tid: int(k.node),
			Args: map[string]any{"class": "unresolved"},
		})
	}

	// Delegation spans from the metrics: complete for the whole run.
	for _, addr := range lineAddrs {
		l := m.Lines[addr]
		if l == nil {
			continue
		}
		for i := range l.Spans {
			sp := &l.Spans[i]
			end := lastTs
			cause := "still-delegated"
			if sp.Undelegated {
				end = sp.UndelegatedAt
				cause = sp.Cause.String()
			}
			args := map[string]any{"producer": int(sp.Producer), "cause": cause}
			if sp.Installed {
				args["installed_at"] = uint64(sp.InstalledAt)
			}
			if sp.Committed {
				args["committed_at"] = uint64(sp.CommittedAt)
			}
			emit(traceEvent{
				Name: fmt.Sprintf("delegated to n%d", int(sp.Producer)),
				Cat:  "delegation", Ph: "X",
				Ts: uint64(sp.DetectedAt), Dur: uint64(end - sp.DetectedAt),
				Pid: pidLines, Tid: lineTid[addr], Args: args,
			})
		}
	}

	// Sorted, not map order: the golden tests pin the document bytes.
	var nodeIDs []int
	for n := range nodes {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidNodes, Tid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)}})
	}

	doc := struct {
		TraceEvents []traceEvent   `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}{
		TraceEvents: out,
		Metadata:    metadata(m),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// metadata summarizes the run's per-class traffic so a trace file is
// self-describing (and cross-checkable against stats.Stats).
func metadata(m *Metrics) map[string]any {
	count := map[string]uint64{}
	bytes := map[string]uint64{}
	for t := 0; t < msg.NumTypes; t++ {
		if m.MsgCount[t] > 0 {
			count[msg.Type(t).String()] = m.MsgCount[t]
			bytes[msg.Type(t).String()] = m.MsgBytes[t]
		}
	}
	return map[string]any{
		"events":               m.Events,
		"msg_count":            count,
		"msg_bytes":            bytes,
		"total_messages":       m.TotalMessages(),
		"total_bytes":          m.TotalBytes(),
		"avg_hops":             m.AvgHops(),
		"delegations":          m.Delegations,
		"complete_delegations": m.CompleteDelegations(),
		"update_accuracy":      m.UpdateAccuracy(),
		"mshr_peak":            m.MSHRPeak,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
